package repro

// One benchmark per table/figure of the paper (BenchmarkFig1..9), plus
// micro-benchmarks, ablation benches for the numeric substrate, and the
// old-vs-new Monte-Carlo kernel comparison (BenchmarkRealizations*,
// BenchmarkKernel*). Run: go test -bench=. -benchmem

import (
	"math/rand"
	"testing"

	"repro/internal/experiment"
	"repro/internal/graphgen"
	"repro/internal/heuristics"
	"repro/internal/makespan"
	"repro/internal/numeric"
	"repro/internal/platform"
	"repro/internal/robustness"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

// benchScenario builds the Fig. 3 case (Cholesky 10 tasks, 3 procs).
func benchScenario(b *testing.B) *Scenario {
	b.Helper()
	scen, err := NewCholeskyScenario(3, 3, 1.1, 42)
	if err != nil {
		b.Fatal(err)
	}
	return scen
}

// --- Figure benches -----------------------------------------------------

func BenchmarkFig1(b *testing.B) {
	cfg := experiment.BenchConfig()
	cfg.MCRealizations = 2000
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig1(cfg, []int{10, 30}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	cfg := experiment.BenchConfig()
	cfg.MCRealizations = 2000
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCase(b *testing.B, spec experiment.CaseSpec) {
	b.Helper()
	cfg := experiment.BenchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunCase(spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) { benchCase(b, experiment.Fig3Case(1)) }
func BenchmarkFig4(b *testing.B) { benchCase(b, experiment.Fig4Case(1)) }
func BenchmarkFig5(b *testing.B) { benchCase(b, experiment.Fig5Case(1)) }

func BenchmarkFig6(b *testing.B) {
	cfg := experiment.BenchConfig()
	cfg.Schedules = 15
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig6(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Fig7(256)
	}
}

func BenchmarkFig8(b *testing.B) {
	cfg := experiment.BenchConfig()
	for i := 0; i < b.N; i++ {
		experiment.Fig8(cfg, 10)
	}
}

func BenchmarkFig9(b *testing.B) {
	cfg := experiment.BenchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig9(cfg, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benches ---------------------------------------------

func BenchmarkFFT1024(b *testing.B) {
	re := make([]float64, 1024)
	im := make([]float64, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range re {
		re[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = numeric.FFT(re, im, false)
		_ = numeric.FFT(re, im, true)
	}
}

// BenchmarkAblationConvolution contrasts the three convolution
// strategies on the 64-point densities the evaluation uses.
func BenchmarkAblationConvolution(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a64 := make([]float64, 64)
	c64 := make([]float64, 64)
	long := make([]float64, 2048)
	for i := range a64 {
		a64[i] = rng.Float64()
		c64[i] = rng.Float64()
	}
	for i := range long {
		long[i] = rng.Float64()
	}
	b.Run("direct-64x64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			numeric.ConvolveDirect(a64, c64)
		}
	})
	b.Run("fft-64x64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			numeric.ConvolveFFT(a64, c64)
		}
	})
	b.Run("fft-2048x64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			numeric.ConvolveFFT(long, a64)
		}
	})
	b.Run("overlapadd-2048x64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			numeric.ConvolveOverlapAdd(long, a64, 0)
		}
	})
}

// BenchmarkAblationGridSize sweeps the density grid resolution (the
// paper settled on 64 points).
func BenchmarkAblationGridSize(b *testing.B) {
	scen := benchScenario(b)
	s := RandomSchedule(scen, 7)
	for _, grid := range []int{32, 64, 128, 256} {
		b.Run(itoa(grid), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := makespan.EvaluateClassic(scen, s, grid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMaxMethod contrasts the numeric CDF-product maximum
// with Clark's two-moment approximation.
func BenchmarkAblationMaxMethod(b *testing.B) {
	x := stochastic.FromDist(stochastic.NewBetaUL(10, 1.4), 64)
	y := stochastic.FromDist(stochastic.NewBetaUL(11, 1.3), 64)
	b.Run("cdf-product", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x.MaxWith(y, 64)
		}
	})
	scen := benchScenario(b)
	s := RandomSchedule(scen, 3)
	b.Run("clark-spelde-full-dag", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := makespan.EvaluateSpelde(scen, s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkNumericAdd(b *testing.B) {
	x := stochastic.FromDist(stochastic.NewBetaUL(10, 1.4), 64)
	y := stochastic.FromDist(stochastic.NewBetaUL(11, 1.3), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Add(y, 64)
	}
}

// --- Scheduling benches ----------------------------------------------------

func benchRandom30(b *testing.B) *Scenario {
	b.Helper()
	scen, err := NewRandomScenario(30, 8, 1.1, 4)
	if err != nil {
		b.Fatal(err)
	}
	return scen
}

func BenchmarkHEFT(b *testing.B) {
	scen := benchRandom30(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.HEFT(scen); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBIL(b *testing.B) {
	scen := benchRandom30(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.BIL(scen); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHBMCT(b *testing.B) {
	scen := benchRandom30(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.HBMCT(scen); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPOP(b *testing.B) {
	scen := benchRandom30(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.CPOP(scen); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSDHEFT(b *testing.B) {
	scen := benchRandom30(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.SDHEFT(scen, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Scheduler kernels: old vs new at scale --------------------------------
//
// The acceptance pair of the compiled scheduling layer (mirroring the
// Monte-Carlo kernel benches below): BenchmarkScheduler*Reference are
// the retained Model-based implementations, BenchmarkScheduler* the
// compiled CostModel/timeline rewrites. Both run on the same
// 8-processor Cholesky scenarios; cmd/benchguard compares the pairs in
// CI and fails on speedup regressions. Gated behind -short: the 50k
// graphs take seconds per iteration.

var schedulerBenchSizes = []int{1000, 10000, 50000}

func benchSchedulerScenario(b *testing.B, n int) *Scenario {
	b.Helper()
	scen, err := NewScenario("cholesky", n, 8, 1.1, 42)
	if err != nil {
		b.Fatal(err)
	}
	return scen
}

func benchSchedulerSizes(b *testing.B, fn func(*Scenario) (HeuristicResult, error), sizes []int) {
	b.Helper()
	if testing.Short() {
		b.Skip("large-N scheduler benches are skipped with -short")
	}
	for _, n := range sizes {
		b.Run("N="+itoa(n), func(b *testing.B) {
			scen := benchSchedulerScenario(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fn(scen); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSchedulerHEFT(b *testing.B) {
	benchSchedulerSizes(b, heuristics.HEFT, schedulerBenchSizes)
}

func BenchmarkSchedulerHEFTReference(b *testing.B) {
	benchSchedulerSizes(b, heuristics.ReferenceHEFT, schedulerBenchSizes)
}

func BenchmarkSchedulerHBMCT(b *testing.B) {
	benchSchedulerSizes(b, heuristics.HBMCT, schedulerBenchSizes)
}

// Reference HBMCT replays the whole placement sequence after every
// tentative move (quadratic) and materializes the n² reachability
// bitset (314 MB at n=50k), so its bench stops at n=1000; the ratio at
// that size already tells the story (~300×).
func BenchmarkSchedulerHBMCTReference(b *testing.B) {
	benchSchedulerSizes(b, heuristics.ReferenceHBMCT, []int{1000})
}

func BenchmarkRandomSchedule(b *testing.B) {
	scen := benchRandom30(b)
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heuristics.RandomSchedule(scen, rng)
	}
}

// --- Case evaluation: old vs new at scale ----------------------------------
//
// The acceptance pair of the compiled evaluation layer (mirroring the
// scheduler and MC-kernel pairs): BenchmarkEvalCaseReference is the
// retained per-schedule pipeline — ReferenceEvaluateClassic plus
// robustness.FromDistribution, each call re-validating, re-building the
// disjunctive graph (three times across the two calls), re-discretizing
// every distribution and allocating every intermediate density —
// BenchmarkEvalCase the compiled EvalCache/EvalModel pipeline. Each
// iteration evaluates the full metric vector of evalCaseSchedules
// random schedules of one Cholesky case, the per-case unit of work of
// the paper's core experiment. cmd/benchguard compares the pairs in CI
// (-series '^EvalCase') and fails on regressions. Gated behind -short:
// a 10k iteration is tens of seconds.

var evalBenchSizes = []int{1000, 10000}

const evalCaseSchedules = 2

func benchEvalSchedules(b *testing.B, n int) (*Scenario, []*schedule.Schedule) {
	b.Helper()
	scen, err := NewScenario("cholesky", n, 8, 1.1, 42)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	return scen, heuristics.RandomSchedules(scen, evalCaseSchedules, rng)
}

func benchEvalCaseSizes(b *testing.B, compiled bool, sizes []int) {
	b.Helper()
	if testing.Short() {
		b.Skip("large-N evaluation benches are skipped with -short")
	}
	p := robustness.DefaultParams()
	for _, n := range sizes {
		b.Run("N="+itoa(n), func(b *testing.B) {
			scen, scheds := benchEvalSchedules(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if compiled {
					cache := makespan.NewEvalCache(scen, 64)
					for _, s := range scheds {
						m, err := cache.Model(s)
						if err != nil {
							b.Fatal(err)
						}
						_ = m.Metrics(p)
					}
				} else {
					for _, s := range scheds {
						rv, err := makespan.ReferenceEvaluateClassic(scen, s, 64)
						if err != nil {
							b.Fatal(err)
						}
						if _, err := robustness.FromDistribution(scen, s, rv, p); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

func BenchmarkEvalCase(b *testing.B) { benchEvalCaseSizes(b, true, evalBenchSizes) }

func BenchmarkEvalCaseReference(b *testing.B) { benchEvalCaseSizes(b, false, evalBenchSizes) }

// --- Dodin reduction: compiled vs legacy at scale ---------------------------
//
// The acceptance pairs of the compiled series-parallel reduction:
// Benchmark*Reference is the retained map-based rvGraph reducer,
// Benchmark* the flat edge-id spGraph on stochastic.Ops. Both run
// strictly (no classic fallback) on a fully series-reducible case — a
// task chain on one processor — at two uncertainty levels:
//
//   - BenchmarkDodin (UL = 1): every duration is deterministic, so each
//     reduction step is pure graph work and the pair isolates the
//     reduction machinery the rewrite replaced (map graph + quadratic
//     rescans vs flat arrays + worklist). Measured ~3x at n=1000, ~6x
//     at n=5000; cmd/benchguard (-series '^Dodin$') fails below 2x.
//   - BenchmarkDodinStochastic (UL = 1.3): the end-to-end evaluation,
//     dominated by the work-grid spline fit + convolution inside Add
//     that both legs share bit-identically under the reference
//     accuracy, so the floor is the measured ~1.3x machinery margin
//     (-series '^DodinStochastic$', 1.2x); the convolution cost itself
//     is the EvalAccuracy work-grid knob's lever, guarded by the
//     BenchmarkEvalAccuracyFast pair below.
//
// Gated behind -short like the other large-N pairs.

var dodinBenchSizes = []int{1000, 5000}

func benchDodinCase(b *testing.B, n int, ul float64) (*Scenario, *Schedule) {
	b.Helper()
	g := graphgen.Chain(n, 0)
	etc := make([][]float64, n)
	for i := range etc {
		etc[i] = []float64{10, 10}
	}
	tau, lat := platform.NewUniformNetwork(2, 1, 0)
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: 2, ETC: etc, Tau: tau, Lat: lat},
		UL: ul,
	}
	s := schedule.New(n, 2)
	for i := 0; i < n; i++ {
		s.Assign(Task(i), 0)
	}
	return scen, s
}

func benchDodinSizes(b *testing.B, compiled bool, ul float64) {
	b.Helper()
	if testing.Short() {
		b.Skip("large-N Dodin benches are skipped with -short")
	}
	for _, n := range dodinBenchSizes {
		b.Run("N="+itoa(n), func(b *testing.B) {
			scen, s := benchDodinCase(b, n, ul)
			cache := makespan.NewEvalCache(scen, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if compiled {
					m, err := cache.Model(s)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := m.DodinStrict(); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, err := makespan.EvaluateDodinStrict(scen, s, 64); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkDodin(b *testing.B) { benchDodinSizes(b, true, 1) }

func BenchmarkDodinReference(b *testing.B) { benchDodinSizes(b, false, 1) }

func BenchmarkDodinStochastic(b *testing.B) { benchDodinSizes(b, true, 1.3) }

func BenchmarkDodinStochasticReference(b *testing.B) { benchDodinSizes(b, false, 1.3) }

// --- Evaluation accuracy: fast preset vs reference --------------------------
//
// The acceptance pair of the EvalAccuracy knob: both legs run the
// compiled EvalCache pipeline on the 10k-task sweep case, the Reference
// leg at the paper's bit-exact contract and the other at the fast
// preset (64-point densities, 256-point work-grid cap). cmd/benchguard
// compares the pair in CI (-series '^EvalAccuracyFast') and fails below
// 2x at n = 10000.

func benchEvalAccuracy(b *testing.B, acc stochastic.EvalAccuracy) {
	b.Helper()
	if testing.Short() {
		b.Skip("large-N accuracy benches are skipped with -short")
	}
	b.Run("N=10000", func(b *testing.B) {
		scen, scheds := benchEvalSchedules(b, 10000)
		p := robustness.DefaultParams()
		p.GridSize = acc.Canon().GridSize
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache := makespan.NewEvalCacheAccuracy(scen, acc)
			for _, s := range scheds {
				m, err := cache.Model(s)
				if err != nil {
					b.Fatal(err)
				}
				_ = m.Metrics(p)
			}
		}
	})
}

func BenchmarkEvalAccuracyFast(b *testing.B) { benchEvalAccuracy(b, stochastic.AccuracyFast) }

func BenchmarkEvalAccuracyFastReference(b *testing.B) {
	benchEvalAccuracy(b, stochastic.AccuracyReference)
}

// --- Evaluation benches ------------------------------------------------------

func BenchmarkEvaluateClassic(b *testing.B) {
	scen := benchRandom30(b)
	s := RandomSchedule(scen, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := makespan.EvaluateClassic(scen, s, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateDodin(b *testing.B) {
	scen := benchRandom30(b)
	s := RandomSchedule(scen, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := makespan.EvaluateDodin(scen, s, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateSpelde(b *testing.B) {
	scen := benchRandom30(b)
	s := RandomSchedule(scen, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := makespan.EvaluateSpelde(scen, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealize(b *testing.B) {
	scen := benchRandom30(b)
	s := RandomSchedule(scen, 5)
	sim, err := schedule.NewSimulator(scen, s)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	buf := make([]float64, 2*scen.G.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RealizeTiming(rng, buf)
	}
}

// BenchmarkMonteCarloParallel measures the parallel realization
// engine's throughput (10 000 realizations per iteration).
func BenchmarkMonteCarloParallel(b *testing.B) {
	scen := benchRandom30(b)
	s := RandomSchedule(scen, 5)
	sim, err := schedule.NewSimulator(scen, s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Realizations(10000, int64(i))
	}
}

// --- Monte-Carlo kernel: old vs new ----------------------------------------
//
// The acceptance pair of the batch-kernel refactor, on the Fig. 3
// Cholesky scenario: BenchmarkRealizationsLegacy is the per-sample
// reference engine, BenchmarkKernel* the compiled batch kernel. Each
// iteration draws benchMCCount realizations, so ns/op are directly
// comparable; per-realization cost is reported as ns/real.

const benchMCCount = 10000

// benchSim builds the Fig. 3 Cholesky simulator the kernel benches
// share.
func benchSim(b *testing.B) *schedule.Simulator {
	b.Helper()
	scen := benchScenario(b)
	s := RandomSchedule(scen, 5)
	sim, err := schedule.NewSimulator(scen, s)
	if err != nil {
		b.Fatal(err)
	}
	return sim
}

func reportPerRealization(b *testing.B) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/benchMCCount, "ns/real")
}

func BenchmarkRealizationsLegacy(b *testing.B) {
	sim := benchSim(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Realizations(benchMCCount, int64(i))
	}
	reportPerRealization(b)
}

func benchKernel(b *testing.B, mode stochastic.SamplerMode) {
	sim := benchSim(b)
	k := sim.Compile(mode)
	out := make([]float64, benchMCCount)
	k.RealizationsInto(out, 0, schedule.KernelOptions{}) // warm the worker pool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RealizationsInto(out, int64(i), schedule.KernelOptions{})
	}
	reportPerRealization(b)
}

func BenchmarkKernelExact(b *testing.B) { benchKernel(b, stochastic.SamplerExact) }
func BenchmarkKernelTable(b *testing.B) { benchKernel(b, stochastic.SamplerTable) }

// BenchmarkKernelTableStats is the metric path: streaming moments and
// histogram only, never materializing the sample slice.
func BenchmarkKernelTableStats(b *testing.B) {
	sim := benchSim(b)
	k := sim.Compile(stochastic.SamplerTable)
	k.Stats(benchMCCount, 0, 0, schedule.KernelOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Stats(benchMCCount, int64(i), 0, schedule.KernelOptions{})
	}
	reportPerRealization(b)
}

func BenchmarkMetrics(b *testing.B) {
	scen := benchScenario(b)
	s := RandomSchedule(scen, 5)
	rv, err := makespan.EvaluateClassic(scen, s, 64)
	if err != nil {
		b.Fatal(err)
	}
	p := robustness.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := robustness.FromDistribution(scen, s, rv, p); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
