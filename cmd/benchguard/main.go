// Command benchguard compares old-vs-new benchmark pairs and fails
// loudly when a speedup regresses. It reads `go test -bench` output —
// either plain text or the `go test -json` stream CI archives as
// BENCH_*.json — from files or stdin, pairs every
// Benchmark<Name>Reference/... series with its Benchmark<Name>/...
// counterpart, prints a benchstat-style table, and exits non-zero when
// an enforced pair is less than -min-speedup times faster than its
// reference. A pair is enforced when its task count is at or above
// -at, or when it is the largest benchmarked size of its family — so a
// family whose reference implementation is too slow to bench at -at
// scale (HBMCT stops at n=1000) is still guarded at the largest size
// it does run. A rename cannot silently disable the guard: finding no
// pairs at all, or a family whose series never complete a single pair
// (its counterpart series detached), is an error. A family may run
// extra compiled-only sizes beyond its reference (HBMCT does) as long
// as at least one size pairs up.
//
// Usage:
//
//	go test -json -bench 'BenchmarkScheduler' -benchtime=1x -run='^$' . \
//	    | tee BENCH_scheduler.json | benchguard -min-speedup 2 -at 10000
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line, e.g.
// "BenchmarkSchedulerHEFT/N=1000-8   123   987654 ns/op   12 B/op ..."
// (the -<cpus> suffix is absent on single-CPU runners).
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// pairKey identifies one compared series: the benchmark name with any
// "Reference" suffix stripped from its first path element, plus the
// subbenchmark suffix.
var nameParts = regexp.MustCompile(`^([^/]+?)(Reference)?(/.*)?$`)

// sizeRe extracts the task count from a "/N=..." subbenchmark suffix.
var sizeRe = regexp.MustCompile(`/N=(\d+)`)

type result struct {
	newNs, refNs   float64
	hasNew, hasRef bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")
	minSpeedup := flag.Float64("min-speedup", 2, "required compiled/reference speedup factor")
	at := flag.Int("at", 10000, "enforce all pairs with N >= this task count (each family's largest size is always enforced)")
	series := flag.String("series", "", "regexp restricting which benchmark families this run considers (empty = all); lets CI apply different thresholds to e.g. the Scheduler and Eval tables over the same artifacts")
	flag.Parse()

	var filter *regexp.Regexp
	if *series != "" {
		var err error
		if filter, err = regexp.Compile(*series); err != nil {
			log.Fatalf("bad -series: %v", err)
		}
	}

	results := make(map[string]*result)
	if flag.NArg() == 0 {
		parse(os.Stdin, results)
	} else {
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			parse(f, results)
			f.Close()
		}
	}
	filterSeries(results, filter)

	report, failed := evaluate(results, *minSpeedup, *at)
	if report == "" {
		log.Fatal("no old-vs-new benchmark pairs found (did a rename detach the *Reference series, or -series match nothing?)")
	}
	fmt.Print(report)
	if failed {
		log.Fatalf("speedup regression: compiled implementations must stay >= %.2fx faster than the reference", *minSpeedup)
	}
}

// filterSeries drops every series whose family name does not match the
// filter (nil keeps everything).
func filterSeries(results map[string]*result, filter *regexp.Regexp) {
	if filter == nil {
		return
	}
	for k := range results {
		if !filter.MatchString(familyOf(k)) {
			delete(results, k)
		}
	}
}

// evaluate renders the comparison table and reports whether any
// enforced pair missed minSpeedup. Enforced pairs are those with
// N >= at plus, per family (the key with its /N=... suffix stripped),
// the largest paired size — closing the hole where a family whose
// reference cannot run at `at` scale would never be checked. A family
// with series but not a single complete pair fails outright: that is
// what a rename that detached one side looks like. Returns "" when no
// complete pairs exist.
func evaluate(results map[string]*result, minSpeedup float64, at int) (string, bool) {
	keys := make([]string, 0, len(results))
	familyMax := make(map[string]int)
	familyPaired := make(map[string]bool)
	for k, r := range results {
		fam := familyOf(k)
		if _, seen := familyPaired[fam]; !seen {
			familyPaired[fam] = false
		}
		if !r.hasNew || !r.hasRef {
			continue
		}
		familyPaired[fam] = true
		keys = append(keys, k)
		if n, ok := sizeOf(k); ok && n > familyMax[fam] {
			familyMax[fam] = n
		}
	}
	if len(keys) == 0 {
		return "", false
	}
	sort.Strings(keys)

	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %15s %15s %9s\n", "benchmark", "reference ns/op", "compiled ns/op", "speedup")
	failed := false
	for _, k := range keys {
		r := results[k]
		speedup := r.refNs / r.newNs
		mark := ""
		n, ok := sizeOf(k)
		enforced := ok && (n >= at || n == familyMax[familyOf(k)])
		if enforced && speedup < minSpeedup {
			mark = fmt.Sprintf("  << FAIL (need >= %.1fx)", minSpeedup)
			failed = true
		}
		fmt.Fprintf(&b, "%-40s %15.0f %15.0f %8.2fx%s\n", k, r.refNs, r.newNs, speedup, mark)
	}
	fams := make([]string, 0, len(familyPaired))
	for fam, paired := range familyPaired {
		if !paired {
			fams = append(fams, fam)
		}
	}
	sort.Strings(fams)
	for _, fam := range fams {
		fmt.Fprintf(&b, "%-40s  << FAIL: no size pairs up (renamed counterpart series?)\n", fam)
		failed = true
	}
	return b.String(), failed
}

// familyOf strips the /N=<count> subbenchmark suffix of a pair key.
func familyOf(key string) string {
	return sizeRe.ReplaceAllString(key, "")
}

// parse consumes bench output. test2json splits a benchmark's name
// and its measurements into separate Output events (the name is
// flushed before the bench runs), so JSON input is first reassembled
// into plain text from the Output payloads and then scanned line by
// line; non-JSON input is scanned as-is.
func parse(r io.Reader, results map[string]*result) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var text strings.Builder
	for sc.Scan() {
		line := sc.Text()
		var ev struct{ Output string }
		if err := json.Unmarshal([]byte(line), &ev); err == nil {
			text.WriteString(ev.Output) // Output carries its own newlines
		} else {
			text.WriteString(line)
			text.WriteByte('\n')
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		parts := nameParts.FindStringSubmatch(m[1])
		key := parts[1] + parts[3]
		r := results[key]
		if r == nil {
			r = &result{}
			results[key] = r
		}
		if parts[2] == "Reference" {
			r.refNs, r.hasRef = ns, true
		} else {
			r.newNs, r.hasNew = ns, true
		}
	}
}

// sizeOf extracts the /N=<count> of a pair key.
func sizeOf(key string) (int, bool) {
	m := sizeRe.FindStringSubmatch(key)
	if m == nil {
		return 0, false
	}
	n, err := strconv.Atoi(m[1])
	return n, err == nil
}
