package main

import (
	"regexp"
	"strings"
	"testing"
)

func parseText(t *testing.T, text string) map[string]*result {
	t.Helper()
	results := make(map[string]*result)
	parse(strings.NewReader(text), results)
	return results
}

func TestParsePairsPlainAndJSON(t *testing.T) {
	plain := `goos: linux
BenchmarkSchedulerHEFT/N=1000-8         	     100	   1000000 ns/op
BenchmarkSchedulerHEFTReference/N=1000-8	      10	   9000000 ns/op
`
	jsonStream := `{"Action":"output","Output":"BenchmarkSchedulerHEFT/N=1000-8 \t100\t1000000 ns/op\n"}
{"Action":"output","Output":"BenchmarkSchedulerHEFTReference/N=1000-8 \t10\t9000000 ns/op\n"}
`
	for name, input := range map[string]string{"plain": plain, "json": jsonStream} {
		results := parseText(t, input)
		r := results["SchedulerHEFT/N=1000"]
		if r == nil || !r.hasNew || !r.hasRef {
			t.Fatalf("%s: pair not assembled: %+v", name, r)
		}
		if r.newNs != 1e6 || r.refNs != 9e6 {
			t.Fatalf("%s: wrong ns/op: new=%v ref=%v", name, r.newNs, r.refNs)
		}
	}
}

func TestEvaluateEnforcesFamilyLargestSize(t *testing.T) {
	// HBMCT only pairs at N=1000 (< at), but as its family's largest
	// size it must still be enforced.
	results := map[string]*result{
		"SchedulerHEFT/N=50000":  {newNs: 1e6, refNs: 10e6, hasNew: true, hasRef: true},
		"SchedulerHBMCT/N=1000":  {newNs: 1e6, refNs: 1.5e6, hasNew: true, hasRef: true},
		"SchedulerHBMCT/N=100":   {newNs: 1e6, refNs: 1.1e6, hasNew: true, hasRef: true}, // below family max: informational
		"SchedulerHBMCT/N=50000": {newNs: 1e6, hasNew: true},                             // compiled-only size: fine, family pairs elsewhere
	}
	report, failed := evaluate(results, 2, 10000)
	if !failed {
		t.Fatalf("HBMCT at its largest size (1.5x < 2x) should fail:\n%s", report)
	}
	if !strings.Contains(report, "SchedulerHBMCT/N=1000 ") || !strings.Contains(report, "FAIL") {
		t.Fatalf("report should mark the HBMCT pair:\n%s", report)
	}
	if strings.Contains(report, "SchedulerHBMCT/N=50000") {
		t.Fatalf("incomplete pairs must not appear in the table:\n%s", report)
	}

	// Raising the HBMCT ratio above the floor clears the failure even
	// though its N stays below -at.
	results["SchedulerHBMCT/N=1000"].refNs = 3e6
	if report, failed := evaluate(results, 2, 10000); failed {
		t.Fatalf("all enforced pairs meet 2x, should pass:\n%s", report)
	}
}

func TestEvaluateAtThresholdStillApplies(t *testing.T) {
	results := map[string]*result{
		"SchedulerHEFT/N=10000": {newNs: 1e6, refNs: 1.5e6, hasNew: true, hasRef: true},
		"SchedulerHEFT/N=50000": {newNs: 1e6, refNs: 10e6, hasNew: true, hasRef: true},
	}
	if report, failed := evaluate(results, 2, 10000); !failed {
		t.Fatalf("N=10000 >= at must be enforced even though 50000 is the family max:\n%s", report)
	}
}

func TestEvaluateDetachedFamilyFails(t *testing.T) {
	// A rename that detaches one side of a family (here the reference
	// kept the old name, the compiled series moved to a new one) must
	// fail even though other families still pair up and pass.
	results := map[string]*result{
		"SchedulerHBMCT/N=1000":   {newNs: 1e6, refNs: 3e6, hasNew: true, hasRef: true},
		"SchedulerHEFT/N=50000":   {refNs: 10e6, hasRef: true},
		"SchedulerHEFTv2/N=50000": {newNs: 1e6, hasNew: true},
	}
	report, failed := evaluate(results, 2, 10000)
	if !failed {
		t.Fatalf("detached HEFT family should fail:\n%s", report)
	}
	for _, fam := range []string{"SchedulerHEFT ", "SchedulerHEFTv2 "} {
		if !strings.Contains(report, fam) {
			t.Fatalf("report should name detached family %q:\n%s", fam, report)
		}
	}
}

func TestEvaluateNoPairs(t *testing.T) {
	if report, _ := evaluate(map[string]*result{"X/N=10": {hasNew: true}}, 2, 10000); report != "" {
		t.Fatalf("expected empty report for no complete pairs, got:\n%s", report)
	}
}

func TestFilterSeries(t *testing.T) {
	results := map[string]*result{
		"SchedulerHEFT/N=10000": {newNs: 1e6, refNs: 1.5e6, hasNew: true, hasRef: true}, // would fail at 2x
		"EvalCase/N=10000":      {newNs: 1e6, refNs: 3e6, hasNew: true, hasRef: true},
	}
	filterSeries(results, regexp.MustCompile(`^EvalCase$`))
	if len(results) != 1 {
		t.Fatalf("filter kept %d series, want 1", len(results))
	}
	report, failed := evaluate(results, 2, 10000)
	if failed {
		t.Fatalf("filtered run must only judge the Eval series:\n%s", report)
	}
	if !strings.Contains(report, "EvalCase/N=10000") {
		t.Fatalf("report lost the kept series:\n%s", report)
	}
	// A nil filter keeps everything.
	all := map[string]*result{
		"A/N=1": {newNs: 1, refNs: 1, hasNew: true, hasRef: true},
		"B/N=1": {newNs: 1, refNs: 1, hasNew: true, hasRef: true},
	}
	filterSeries(all, nil)
	if len(all) != 2 {
		t.Fatal("nil filter must keep all series")
	}
}
