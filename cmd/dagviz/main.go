// Command dagviz emits the Graphviz DOT rendering of any generated
// task graph, for inspecting the workloads the experiments run on.
//
// Usage:
//
//	dagviz [-graph cholesky|gausselim|random|join|fork|chain] [-n 10] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/graphgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dagviz: ")
	graph := flag.String("graph", "cholesky", "graph kind: cholesky, gausselim, random, join, fork, chain")
	n := flag.Int("n", 10, "size parameter (tasks for random/join/fork/chain, tiles for cholesky, matrix size for gausselim)")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *dag.Graph
	switch *graph {
	case "cholesky":
		g = graphgen.Cholesky(*n, 10, 20, rng)
	case "gausselim":
		g = graphgen.GaussElim(*n, 10, 20, rng)
	case "random":
		g, _ = graphgen.Random(graphgen.DefaultRandomParams(*n), rng)
	case "join":
		g = graphgen.Join(*n, 1)
	case "fork":
		g = graphgen.Fork(*n, 1)
	case "chain":
		g = graphgen.Chain(*n, 1)
	default:
		log.Fatalf("unknown graph kind %q", *graph)
	}
	fmt.Print(g.DOT(fmt.Sprintf("%s-%d", *graph, *n), nil))
}
