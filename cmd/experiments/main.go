// Command experiments regenerates every table and figure of the
// paper's evaluation. By default it writes scaled-down results (the
// correlation structure is stable far below paper-scale sample
// counts); -full restores the paper's 10 000 schedules and 100 000
// realizations.
//
// Besides the paper's nine figures, two §VIII future-work experiments
// are available: -fig ul (variable per-task uncertainty levels) and
// -fig osc (oscillating non-Beta duration distributions).
//
// Usage:
//
//	experiments [-fig 1|...|9|ul|osc|all] [-full] [-out DIR] [-seed N]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	figFlag := flag.String("fig", "all", "figure to regenerate (1-9, ul, osc, or all)")
	full := flag.Bool("full", false, "paper-scale sample counts (slow)")
	out := flag.String("out", "", "directory for output files (default stdout)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	schedules := flag.Int("schedules", 0, "override random-schedule count per case")
	mc := flag.Int("mc", 0, "override Monte-Carlo realization count")
	flag.Parse()

	cfg := experiment.DefaultConfig()
	if *full {
		cfg = experiment.PaperConfig()
	}
	cfg.Seed = *seed
	if *schedules > 0 {
		cfg.Schedules = *schedules
	}
	if *mc > 0 {
		cfg.MCRealizations = *mc
	}

	figs := strings.Split(*figFlag, ",")
	if *figFlag == "all" {
		figs = []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "ul", "osc"}
	}
	for _, f := range figs {
		if err := runFig(strings.TrimSpace(f), cfg, *out); err != nil {
			log.Fatalf("fig %s: %v", f, err)
		}
	}
}

// output opens the destination writer for a figure.
func output(outDir, name string) (io.Writer, func(), error) {
	if outDir == "" {
		return os.Stdout, func() {}, nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, nil, err
	}
	f, err := os.Create(filepath.Join(outDir, name))
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func runFig(fig string, cfg experiment.Config, outDir string) error {
	w, closeFn, err := output(outDir, "fig"+fig+".txt")
	if err != nil {
		return err
	}
	defer closeFn()
	log.Printf("running figure %s ...", fig)
	switch fig {
	case "1":
		rows, err := experiment.Fig1(cfg, nil, 0)
		if err != nil {
			return err
		}
		experiment.WriteFig1(w, rows)
	case "2":
		res, err := experiment.Fig2(cfg)
		if err != nil {
			return err
		}
		experiment.WriteFig2(w, res)
	case "3", "4", "5":
		var spec experiment.CaseSpec
		switch fig {
		case "3":
			spec = experiment.Fig3Case(cfg.Seed)
		case "4":
			spec = experiment.Fig4Case(cfg.Seed)
		default:
			spec = experiment.Fig5Case(cfg.Seed)
		}
		res, err := experiment.RunCase(spec, cfg)
		if err != nil {
			return err
		}
		experiment.WriteCase(w, res)
		fmt.Fprintln(w)
		fmt.Fprint(w, experiment.SummarizeHeuristics(res))
	case "6":
		res, err := experiment.Fig6(cfg, func(done, total int, name string) {
			log.Printf("  case %d/%d (%s)", done, total, name)
		})
		if err != nil {
			return err
		}
		experiment.WriteFig6(w, res)
	case "7":
		experiment.WriteFig7(w, experiment.Fig7(0))
	case "8":
		experiment.WriteFig8(w, experiment.Fig8(cfg, 0))
	case "9":
		rows, err := experiment.Fig9(cfg, 0)
		if err != nil {
			return err
		}
		experiment.WriteFig9(w, rows)
	case "ul":
		res, err := experiment.VariableUL(cfg, 2)
		if err != nil {
			return err
		}
		experiment.WriteVariableUL(w, res)
	case "osc":
		res, err := experiment.OscillatingDurationsCase(cfg)
		if err != nil {
			return err
		}
		experiment.WriteCase(w, res)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}
