// Command experiments regenerates every table and figure of the
// paper's evaluation. By default it writes scaled-down results (the
// correlation structure is stable far below paper-scale sample
// counts); -full restores the paper's 10 000 schedules and 100 000
// realizations.
//
// The correlation cases (figs 3–6) run on a shared worker pool that
// streams every case×schedule evaluation as one job stream, so all
// cases progress concurrently; -workers bounds the pool. Results are
// deterministic for a fixed -seed at every worker count. With
// -resume (or an explicit -cache-dir) finished cases are stored on
// disk and an interrupted sweep picks up where it left off. -json
// switches the reports to machine-readable JSON (plus CSV matrices
// next to the case figures when -out is set).
//
// The first Ctrl-C cancels the case sweep and stops before the next
// figure; a second Ctrl-C kills the process immediately (the
// remaining figures compute without interruption points).
//
// Besides the paper's nine figures, two §VIII future-work experiments
// are available: -fig ul (variable per-task uncertainty levels) and
// -fig osc (oscillating non-Beta duration distributions) — plus
// -fig sweep, which crosses any set of registered workload families
// with -sweep-sizes × -sweep-uls × -sweep-reps and aggregates the
// correlation matrices like Fig. 6. An unachievable (family, size)
// pair fails the sweep up front instead of silently clamping the
// graph.
//
// -eval-accuracy selects the numeric evaluation accuracy for every
// figure: the default "reference" reproduces the paper's 64-point
// contract bit-for-bit, "fast" and "coarse" trade measured error for
// speed, and -fig accuracy regenerates the study quantifying that
// error per metric across all workload families and per schedule
// source (random and heuristic schedules discretize differently).
//
// Case execution is supervised: a panicking case fails with a typed
// error instead of crashing the run, -case-timeout bounds each
// attempt, -max-retries re-runs failed cases from their case seed
// (delivered results stay byte-identical to a fault-free run), and
// -degrade-on-timeout trades accuracy for completion when every timed
// attempt hits the deadline. -keep-going completes a sweep past
// permanently failed cases. Whenever anything non-clean happens — a
// retry, degradation, failure, or a cache entry that failed its
// checksum and was quarantined — a failure summary lands on stderr
// and, with -out, in failure_report.json. -chaos arms deterministic
// fault injection (panics, delays, errors, cache corruption at named
// sites) to drill exactly those paths.
//
// Usage:
//
//	experiments [-fig 1|...|9|ul|osc|sweep|accuracy|all] [-full] [-out DIR]
//	            [-seed N] [-json] [-workers N] [-resume] [-cache-dir DIR]
//	            [-sampler exact|table] [-mc-block N]
//	            [-eval-accuracy reference|fast|coarse|grid=G[,work=W]]
//	            [-families A,B,...] [-sweep-sizes N,...] [-sweep-uls U,...]
//	            [-sweep-reps R]
//	            [-case-timeout D] [-max-retries N] [-degrade-on-timeout]
//	            [-keep-going] [-chaos SPEC] [-chaos-seed N]
//
// -sampler selects the Monte-Carlo realization engine: "exact" keeps
// the bit-stable reference stream, "table" switches the Beta samplers
// to precomputed inverse-CDF tables (several times faster; -full
// defaults to it since the 100 000-realization runs are
// sampling-bound).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/resilience"
	"repro/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	figFlag := flag.String("fig", "all", "figure to regenerate (1-9, ul, osc, sweep, accuracy, or all; sweep and accuracy are never part of all)")
	full := flag.Bool("full", false, "paper-scale sample counts (slow)")
	out := flag.String("out", "", "directory for output files (default stdout)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	schedules := flag.Int("schedules", 0, "override random-schedule count per case")
	mc := flag.Int("mc", 0, "override Monte-Carlo realization count")
	sampler := flag.String("sampler", "", "Monte-Carlo sampler mode: exact (bit-stable) or table (fast); default exact, table at -full")
	mcBlock := flag.Int("mc-block", 0, "Monte-Carlo kernel block size (realizations per batch; default 256)")
	evalAcc := flag.String("eval-accuracy", "", "evaluation accuracy: reference|fast|coarse or grid=G[,work=W] (default reference; fast/coarse trade measured error for speed)")
	workers := flag.Int("workers", 0, "worker-pool size for case evaluations (default GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "write JSON reports (figN.json; CSV matrices beside case figures when -out is set)")
	resume := flag.Bool("resume", false, "cache finished cases on disk and reuse them on rerun (default dir: .experiments-cache)")
	cacheDir := flag.String("cache-dir", "", "case-result cache directory (implies -resume)")
	caseTimeout := flag.Duration("case-timeout", 0, "deadline per case attempt (0 = none)")
	maxRetries := flag.Int("max-retries", 0, "retries per failed case (attempts = 1+N, deterministic jittered backoff)")
	degradeOnTimeout := flag.Bool("degrade-on-timeout", false, "when every timed attempt hits -case-timeout, deliver the case once at the next coarser -eval-accuracy preset (marked in the result and the failure report)")
	keepGoing := flag.Bool("keep-going", false, "complete a sweep past permanently failed cases; failures are enumerated in the failure report instead of aborting siblings")
	chaos := flag.String("chaos", "", "comma-separated fault injections kind@site[:dur] with kind panic|delay|error|corrupt (e.g. 'panic@attempt0/eval/0,delay@attempt0/build:3s,corrupt@'); site is a substring of injection-site names, empty matches all")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for chaos-injection decisions")
	// The sweep defaults cover every family whose size grid reaches the
	// paper's ~{10,30,100} targets; strassen (25, 193, 1369, ... tasks)
	// is opt-in with matching -sweep-sizes.
	families := flag.String("families",
		"random,cholesky,gausselim,join,intree,outtree,seriesparallel,fft,stg",
		"comma-separated workload families for -fig sweep (registered: "+
			strings.Join(experiment.FamilyNames(), ", ")+")")
	sweepSizes := flag.String("sweep-sizes", "10,30,100", "comma-separated task counts for -fig sweep")
	sweepULs := flag.String("sweep-uls", "1.01,1.1", "comma-separated uncertainty levels for -fig sweep")
	sweepReps := flag.Int("sweep-reps", 1, "instances per (family, size, UL) cell for -fig sweep")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file after the last figure")
	flag.Parse()

	// Profiles capture real sweep runs for perf work (go tool pprof).
	// flushProfiles runs on every exit path that goes through main —
	// normal return, figure errors and the graceful single Ctrl-C all
	// yield usable profiles; only the immediate double-Ctrl-C os.Exit
	// abandons them.
	var flushers []func()
	flushProfiles := func() {
		for i := len(flushers) - 1; i >= 0; i-- {
			flushers[i]()
		}
		flushers = nil
	}
	defer flushProfiles()
	fatalf := func(format string, args ...any) {
		flushProfiles()
		log.Fatalf(format, args...)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		flushers = append(flushers, func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Printf("cpuprofile: %v", err)
			}
		})
	}
	if *memprofile != "" {
		flushers = append(flushers, func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Printf("memprofile: %v", err)
			}
		})
	}

	cfg := experiment.DefaultConfig()
	if *full {
		cfg = experiment.PaperConfig()
	}
	cfg.Seed = *seed
	if *schedules > 0 {
		cfg.Schedules = *schedules
	}
	if *mc > 0 {
		cfg.MCRealizations = *mc
	}
	if *sampler != "" {
		cfg.MCSampler = *sampler
	}
	if *mcBlock > 0 {
		cfg.MCBlockSize = *mcBlock
	}
	if *evalAcc != "" {
		cfg.EvalAccuracy = *evalAcc
	}
	if err := cfg.ValidateMC(); err != nil {
		fatalf("%v", err)
	}
	if err := cfg.ValidateEval(); err != nil {
		fatalf("%v", err)
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}

	// Fail on an unwritable output directory now, not after hours of
	// compute. MkdirAll alone is not enough: it succeeds on an
	// existing read-only directory, so probe with a real write.
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatalf("%v", err)
		}
		probe, err := os.CreateTemp(*out, ".writable-*")
		if err != nil {
			fatalf("output directory not writable: %v", err)
		}
		probe.Close()
		os.Remove(probe.Name())
	}

	// First Ctrl-C cancels the sweep context; a second one exits
	// immediately, covering figures that have no internal cancellation
	// points (figs 1, 2, 7, 8, ul, osc). The buffered channel holds
	// both signals, so a rapid double Ctrl-C cannot be swallowed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt)
	go func() {
		<-sigCh
		cancel()
		<-sigCh
		os.Exit(130)
	}()

	cfg.CaseTimeout = *caseTimeout
	cfg.MaxRetries = *maxRetries
	cfg.DegradeOnTimeout = *degradeOnTimeout

	env := &runEnv{ctx: ctx, cfg: cfg, outDir: *out, json: *jsonOut}
	var err error
	if env.sweep, err = parseSweep(*families, *sweepSizes, *sweepULs, *sweepReps); err != nil {
		fatalf("%v", err)
	}

	// Every run carries a failure report; it is only written out when
	// something non-clean happened (a retry, degradation, failure,
	// quarantined cache entry, or injected fault).
	report := experiment.NewRunReport()
	env.opts.Report = report
	env.opts.KeepGoing = *keepGoing
	var injector *resilience.Injector
	if *chaos != "" {
		if injector, err = parseChaos(*chaosSeed, *chaos); err != nil {
			fatalf("%v", err)
		}
		env.opts.Injector = injector
		report.AttachInjector(injector)
		log.Printf("chaos injection armed: %s (seed %d)", *chaos, *chaosSeed)
	}

	if *cacheDir == "" && *resume {
		*cacheDir = ".experiments-cache"
	}
	if *cacheDir != "" {
		cache, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fatalf("%v", err)
		}
		log.Printf("case cache at %s", cache.Dir())
		report.AttachCache(cache)
		if injector != nil {
			cache.SetCorruptor(injector.Corrupt)
		}
		env.opts.Cache = cache
	}

	// One pool for the whole invocation: with -fig all the cases of
	// consecutive figures share the same workers.
	pool := runner.NewPool(cfg.Workers)
	defer pool.Close()
	env.opts.Pool = pool

	figs := strings.Split(*figFlag, ",")
	if *figFlag == "all" {
		figs = []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "ul", "osc"}
	}
	for _, f := range figs {
		if ctx.Err() != nil {
			fatalf("interrupted before figure %s", f)
		}
		if err := env.runFig(strings.TrimSpace(f)); err != nil {
			fatalf("fig %s: %v", f, err)
		}
	}

	// Surface everything non-clean: the text summary on stderr always,
	// plus failure_report.json next to the figures when -out is set. A
	// sweep that survived its faults (retries, degradations, -keep-going
	// failures, quarantined cache entries) still exits 0 — the report is
	// the contract for noticing what happened.
	if report.Eventful() {
		d := report.Snapshot()
		var sb strings.Builder
		experiment.WriteRunReport(&sb, d)
		for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
			log.Print(line)
		}
		if *out != "" {
			if err := env.writeFile("failure_report.json", func(w io.Writer) error {
				return experiment.WriteJSON(w, d)
			}); err != nil {
				fatalf("failure report: %v", err)
			}
		}
	}
}

// parseChaos assembles the -chaos fault list: comma-separated
// kind@site tokens, with an optional :duration suffix on delay faults.
func parseChaos(seed int64, spec string) (*resilience.Injector, error) {
	var faults []resilience.Fault
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		kind, site, ok := strings.Cut(tok, "@")
		if !ok {
			return nil, fmt.Errorf("-chaos: %q is not kind@site", tok)
		}
		f := resilience.Fault{Site: site}
		switch kind {
		case "panic":
			f.Kind = resilience.KindPanic
		case "delay":
			f.Kind = resilience.KindDelay
			if i := strings.LastIndex(site, ":"); i >= 0 {
				d, err := time.ParseDuration(site[i+1:])
				if err != nil {
					return nil, fmt.Errorf("-chaos: delay duration in %q: %v", tok, err)
				}
				f.Delay = d
				f.Site = site[:i]
			}
		case "error":
			f.Kind = resilience.KindError
		case "corrupt":
			f.Kind = resilience.KindCorrupt
		default:
			return nil, fmt.Errorf("-chaos: unknown fault kind %q in %q (want panic|delay|error|corrupt)", kind, tok)
		}
		faults = append(faults, f)
	}
	if len(faults) == 0 {
		return nil, fmt.Errorf("-chaos: no faults in %q", spec)
	}
	return resilience.NewInjector(seed, faults...), nil
}

// runEnv carries the per-invocation state shared by every figure.
type runEnv struct {
	ctx    context.Context
	cfg    experiment.Config
	outDir string
	json   bool
	opts   experiment.RunOptions
	sweep  experiment.Sweep
}

// parseSweep assembles the -fig sweep grid from the flag values.
func parseSweep(families, sizes, uls string, reps int) (experiment.Sweep, error) {
	s := experiment.Sweep{NamePrefix: "sweep", Reps: reps}
	for _, f := range strings.Split(families, ",") {
		if f = strings.TrimSpace(f); f != "" {
			s.Families = append(s.Families, f)
		}
	}
	for _, tok := range strings.Split(sizes, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return s, fmt.Errorf("-sweep-sizes: %v", err)
			}
			s.Sizes = append(s.Sizes, n)
		}
	}
	for _, tok := range strings.Split(uls, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			ul, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return s, fmt.Errorf("-sweep-uls: %v", err)
			}
			s.ULs = append(s.ULs, ul)
		}
	}
	return s, nil
}

// output opens the destination writer for a figure.
func (e *runEnv) output(name string) (io.Writer, func() error, error) {
	if e.outDir == "" {
		return os.Stdout, func() error { return nil }, nil
	}
	if err := os.MkdirAll(e.outDir, 0o755); err != nil {
		return nil, nil, err
	}
	f, err := os.Create(filepath.Join(e.outDir, name))
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// writeFile renders one output file through render.
func (e *runEnv) writeFile(name string, render func(io.Writer) error) error {
	w, closeFn, err := e.output(name)
	if err != nil {
		return err
	}
	if err := render(w); err != nil {
		closeFn()
		return err
	}
	return closeFn()
}

// emit writes the figure's report: text by default, JSON with -json.
func (e *runEnv) emit(fig string, res any, text func(io.Writer) error) error {
	if e.json {
		return e.writeFile("fig"+fig+".json", func(w io.Writer) error {
			return experiment.WriteJSON(w, res)
		})
	}
	return e.writeFile("fig"+fig+".txt", text)
}

// emitWithCSV writes the figure's report plus — in JSON mode with an
// output directory — a companion CSV file rendered by csvRender.
func (e *runEnv) emitWithCSV(fig string, res any, text func(io.Writer) error, csvName string, csvRender func(io.Writer) error) error {
	err := e.emit(fig, res, text)
	if err != nil || !e.json || e.outDir == "" {
		return err
	}
	return e.writeFile(csvName, csvRender)
}

// emitCase writes a correlation-case figure, adding the Pearson-matrix
// CSV next to the JSON document when writing into a directory.
func (e *runEnv) emitCase(fig string, res *experiment.CaseResult) error {
	return e.emitWithCSV(fig, res, func(w io.Writer) error {
		experiment.WriteCase(w, res)
		fmt.Fprintln(w)
		fmt.Fprint(w, experiment.SummarizeHeuristics(res))
		return nil
	}, "fig"+fig+"_corr.csv", func(w io.Writer) error {
		return experiment.WriteCorrCSV(w, res)
	})
}

// progress returns the per-case progress logger of a sweep.
func (e *runEnv) progress() func(done, total int, name string) {
	return func(done, total int, name string) {
		log.Printf("  case %d/%d (%s)", done, total, name)
	}
}

// runCaseFig runs one correlation case through the orchestrator (so
// the shared pool and cache apply) and renders it.
func (e *runEnv) runCaseFig(fig string, spec experiment.CaseSpec) error {
	results, err := experiment.RunCases(e.ctx, []experiment.CaseSpec{spec}, e.cfg, e.opts)
	if err != nil {
		return err
	}
	return e.emitCase(fig, results[0])
}

func (e *runEnv) runFig(fig string) error {
	cfg := e.cfg
	log.Printf("running figure %s ...", fig)
	switch fig {
	case "1":
		rows, err := experiment.Fig1(cfg, nil, 0)
		if err != nil {
			return err
		}
		return e.emit(fig, rows, func(w io.Writer) error {
			experiment.WriteFig1(w, rows)
			return nil
		})
	case "2":
		res, err := experiment.Fig2(cfg)
		if err != nil {
			return err
		}
		return e.emit(fig, res, func(w io.Writer) error {
			experiment.WriteFig2(w, res)
			return nil
		})
	case "3":
		return e.runCaseFig(fig, experiment.Fig3Case(cfg.Seed))
	case "4":
		return e.runCaseFig(fig, experiment.Fig4Case(cfg.Seed))
	case "5":
		return e.runCaseFig(fig, experiment.Fig5Case(cfg.Seed))
	case "6":
		opts := e.opts
		opts.Progress = e.progress()
		res, err := experiment.Fig6Run(e.ctx, cfg, opts)
		if err != nil {
			return err
		}
		return e.emitWithCSV(fig, res, func(w io.Writer) error {
			experiment.WriteFig6(w, res)
			return nil
		}, "fig6_matrix.csv", func(w io.Writer) error {
			return experiment.WriteFig6CSV(w, res)
		})
	case "7":
		res := experiment.Fig7(0)
		return e.emit(fig, res, func(w io.Writer) error {
			experiment.WriteFig7(w, res)
			return nil
		})
	case "8":
		rows := experiment.Fig8(cfg, 0)
		return e.emit(fig, rows, func(w io.Writer) error {
			experiment.WriteFig8(w, rows)
			return nil
		})
	case "9":
		rows, err := experiment.Fig9(cfg, 0)
		if err != nil {
			return err
		}
		return e.emit(fig, rows, func(w io.Writer) error {
			experiment.WriteFig9(w, rows)
			return nil
		})
	case "ul":
		res, err := experiment.VariableUL(cfg, 2)
		if err != nil {
			return err
		}
		return e.emit(fig, res, func(w io.Writer) error {
			experiment.WriteVariableUL(w, res)
			return nil
		})
	case "sweep":
		opts := e.opts
		opts.Progress = e.progress()
		// Fail on an infeasible grid before spending any compute.
		specs, err := e.sweep.Cases(cfg.Seed)
		if err != nil {
			return err
		}
		log.Printf("  sweep grid: %d cases (%s)", len(specs), strings.Join(e.sweep.Families, ", "))
		res, err := experiment.AggregateCases(e.ctx, specs, cfg, opts)
		if err != nil {
			return err
		}
		return e.emitWithCSV(fig, res, func(w io.Writer) error {
			experiment.WriteFig6(w, res)
			return nil
		}, "figsweep_matrix.csv", func(w io.Writer) error {
			return experiment.WriteFig6CSV(w, res)
		})
	case "accuracy":
		res, err := experiment.AccuracyStudyRun(cfg)
		if err != nil {
			return err
		}
		return e.emit(fig, res, func(w io.Writer) error {
			experiment.WriteAccuracy(w, res)
			return nil
		})
	case "osc":
		res, err := experiment.OscillatingDurationsCase(cfg)
		if err != nil {
			return err
		}
		return e.emitWithCSV(fig, res, func(w io.Writer) error {
			experiment.WriteCase(w, res)
			return nil
		}, "fig"+fig+"_corr.csv", func(w io.Writer) error {
			return experiment.WriteCorrCSV(w, res)
		})
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}
