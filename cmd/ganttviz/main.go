// Command ganttviz prints an ASCII Gantt chart of a schedule produced
// by one of the heuristics (mean-duration timing), useful for
// eyeballing what HEFT/BIL/HBMCT decided.
//
// Usage:
//
//	ganttviz [-graph FAMILY] [-n 10] [-m 3]
//	         [-ul 1.1] [-heuristic heft|bil|hbmct|random] [-seed 1] [-width 100]
//
// -graph accepts any registered workload family (see
// experiment.FamilyNames).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/dag"
	"repro/internal/experiment"
	"repro/internal/heuristics"
	"repro/internal/schedule"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ganttviz: ")
	graph := flag.String("graph", "cholesky",
		"workload family: "+strings.Join(experiment.FamilyNames(), ", "))
	n := flag.Int("n", 10, "approximate task count")
	m := flag.Int("m", 3, "processor count")
	ul := flag.Float64("ul", 1.1, "uncertainty level")
	heuristic := flag.String("heuristic", "heft", "heft, bil, hbmct or random")
	seed := flag.Int64("seed", 1, "RNG seed")
	width := flag.Int("width", 100, "chart width in characters")
	flag.Parse()

	scen, err := experiment.CaseSpec{
		Name: "gantt", Family: *graph, N: *n, M: *m, UL: *ul, Seed: *seed,
	}.BuildScenario()
	if err != nil {
		log.Fatal(err)
	}

	var s *schedule.Schedule
	if *heuristic == "random" {
		s = heuristics.RandomSchedule(scen, rand.New(rand.NewSource(*seed)))
	} else {
		fn := heuristics.ByName(*heuristic)
		if fn == nil {
			log.Fatalf("unknown heuristic %q", *heuristic)
		}
		res, err := fn(scen)
		if err != nil {
			log.Fatal(err)
		}
		s = res.Schedule
	}

	sim, err := schedule.NewSimulator(scen, s)
	if err != nil {
		log.Fatal(err)
	}
	tm := sim.MeanTiming()
	fmt.Printf("%s schedule of %s (n=%d, m=%d, UL=%g) — mean makespan %.4g\n\n",
		strings.ToUpper(*heuristic), *graph, scen.G.N(), *m, *ul, tm.Makespan)
	printGantt(scen.G, s, tm, *width)
}

// printGantt renders one row per processor; each task occupies a span
// proportional to its duration, labelled with its index.
func printGantt(g *dag.Graph, s *schedule.Schedule, tm schedule.Timing, width int) {
	if width < 20 {
		width = 20
	}
	scale := float64(width) / tm.Makespan
	for p := 0; p < s.M; p++ {
		row := make([]byte, width+1)
		for i := range row {
			row[i] = '.'
		}
		for _, t := range s.Order[p] {
			lo := int(tm.Start[t] * scale)
			hi := int(tm.Finish[t] * scale)
			if hi >= len(row) {
				hi = len(row) - 1
			}
			label := fmt.Sprintf("%d", int(t))
			for i := lo; i <= hi; i++ {
				row[i] = '#'
			}
			for i, c := range []byte(label) {
				if lo+i <= hi && lo+i < len(row) {
					row[lo+i] = c
				}
			}
		}
		fmt.Printf("P%-2d |%s|\n", p, string(row))
	}
	fmt.Printf("     0%s%.4g\n", strings.Repeat(" ", width-len(fmt.Sprintf("%.4g", tm.Makespan))), tm.Makespan)
}
