// Command reprovet statically enforces the reproduction's correctness
// invariants: deterministic iteration (mapiter), seed-derived
// randomness only (globalrand), complete cache keys (cachekey), and no
// accidental floating-point equality (floateq).
//
// It runs two ways:
//
//	reprovet ./...                          # standalone, with allow audit
//	go vet -vettool=$(which reprovet) ./... # as a vet tool, per keystroke cost
//
// Both modes honor //reprovet:allow <analyzer> <reason> directives;
// the standalone mode prints the audit of every allowed site, so
// exemptions stay visible instead of rotting in comments. Exit status
// is non-zero when any unallowed finding exists.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	analyzers := analysis.DefaultAnalyzers()
	// The vet tool protocol (-flags, -V=full, or a single .cfg
	// argument) exits internally when it matches.
	analysis.RunUnitchecker(analyzers, os.Args[1:])

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: reprovet [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nAlso runnable as: go vet -vettool=$(which reprovet) ./...\n")
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var results []analysis.PackageResult
	for _, pkg := range pkgs {
		res, err := analysis.Check(analyzers, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results = append(results, res)
	}
	if analysis.PrintResults(os.Stdout, results) {
		os.Exit(1)
	}
}
