// Command robustness runs one scheduling case end to end: it builds a
// scenario, draws random schedules plus the three heuristics, computes
// every robustness metric and prints the Pearson correlation matrix —
// a single-case version of the paper's Figs. 3–5.
//
// Usage:
//
//	robustness [-graph FAMILY] [-n 30] [-m 8]
//	           [-ul 1.1] [-schedules 200] [-seed 1]
//
// -graph accepts any registered workload family (random, cholesky,
// gausselim, join, intree, outtree, seriesparallel, fft, strassen,
// stg, ...).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("robustness: ")
	graph := flag.String("graph", "random",
		"workload family: "+strings.Join(experiment.FamilyNames(), ", "))
	n := flag.Int("n", 30, "approximate task count")
	m := flag.Int("m", 8, "processor count")
	ul := flag.Float64("ul", 1.1, "uncertainty level (>= 1)")
	schedules := flag.Int("schedules", 200, "number of random schedules")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	if _, err := experiment.FamilyByName(*graph); err != nil {
		log.Fatal(err)
	}
	cfg := experiment.DefaultConfig()
	cfg.Schedules = *schedules
	cfg.Seed = *seed
	spec := experiment.CaseSpec{
		Name:   fmt.Sprintf("%s-n%d-m%d-ul%g", *graph, *n, *m, *ul),
		Family: *graph, N: *n, M: *m, UL: *ul, Seed: *seed,
	}
	res, err := experiment.RunCase(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	experiment.WriteCase(os.Stdout, res)
	fmt.Println()
	fmt.Print(experiment.SummarizeHeuristics(res))
}
