// Compare the robustness of the three makespan-centric heuristics of
// the paper (BIL, HEFT, Hyb.BMCT) against a population of random
// schedules on the Cholesky workload of Fig. 3.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	seed := flag.Int64("seed", 3, "base RNG seed; the random-schedule population derives from it")
	flag.Parse()

	scen, err := repro.NewCholeskyScenario(3, 3, 1.01, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cholesky 3×3 tiles: %d tasks on %d processors, UL=%.2f\n\n",
		scen.G.N(), scen.P.M, scen.UL)

	type row struct {
		name string
		m    repro.Metrics
	}
	var rows []row

	for _, h := range []struct {
		name string
		fn   func(*repro.Scenario) (repro.HeuristicResult, error)
	}{
		{"BIL", repro.BIL},
		{"HEFT", repro.HEFT},
		{"HBMCT", repro.HBMCT},
	} {
		res, err := h.fn(scen)
		if err != nil {
			log.Fatal(err)
		}
		m, err := repro.ComputeMetrics(scen, res.Schedule)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{h.name, m})
	}

	// A population of random schedules for context.
	const nRandom = 200
	var randMk, randStd []float64
	for i := 0; i < nRandom; i++ {
		s := repro.RandomSchedule(scen, *seed+int64(1000+i))
		m, err := repro.ComputeMetrics(scen, s)
		if err != nil {
			log.Fatal(err)
		}
		randMk = append(randMk, m.Makespan)
		randStd = append(randStd, m.StdDev)
	}
	sort.Float64s(randMk)
	sort.Float64s(randStd)

	fmt.Printf("%-8s %12s %12s %12s %12s %12s\n",
		"sched", "E(M)", "sigma_M", "entropy", "slack", "lateness")
	for _, r := range rows {
		fmt.Printf("%-8s %12.4f %12.5f %12.4f %12.3f %12.5f\n",
			r.name, r.m.Makespan, r.m.StdDev, r.m.Entropy, r.m.AvgSlack, r.m.Lateness)
	}
	fmt.Printf("\nrandom schedules (n=%d): best E(M) %.4f, median %.4f, worst %.4f\n",
		nRandom, randMk[0], randMk[nRandom/2], randMk[nRandom-1])
	fmt.Printf("                         best σ_M %.5f, median %.5f, worst %.5f\n",
		randStd[0], randStd[nRandom/2], randStd[nRandom-1])

	// The paper's §VII observation: the heuristics give the best
	// makespans and usually excellent σ_M.
	for _, r := range rows {
		beats := sort.SearchFloat64s(randStd, r.m.StdDev)
		fmt.Printf("%s: σ_M smaller than %d%% of random schedules\n",
			r.name, 100*(nRandom-beats)/nRandom)
	}
}
