// A miniature of the paper's Fig. 3: draw random schedules for one
// case, compute every robustness metric, and print the Pearson
// correlation matrix that shows which metrics measure the same thing.
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/experiment"
)

func main() {
	seed := flag.Int64("seed", experiment.DefaultConfig().Seed, "base RNG seed for the drawn schedules")
	flag.Parse()

	cfg := experiment.DefaultConfig()
	cfg.Seed = *seed
	cfg.Schedules = 300
	spec := experiment.Fig3Case(1) // Cholesky, 10 tasks, 3 procs, UL=1.01
	res, err := experiment.RunCase(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	experiment.WriteCase(os.Stdout, res)

	// The headline numbers of the paper: σ_M, entropy, lateness and
	// the (inverted) probabilistic metrics form one equivalence class;
	// the slack belongs to a different, conflicting family.
	os.Stdout.WriteString("\n" + experiment.SummarizeHeuristics(res))
}
