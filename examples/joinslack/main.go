// Reproduce the paper's Fig. 9 argument: on a join graph of i.i.d.
// tasks, the slack metric does not predict robustness — a schedule can
// be robust with zero slack (maximum of many i.i.d. variables) or
// fragile with plenty of slack.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiment"
)

func main() {
	seed := flag.Int64("seed", experiment.DefaultConfig().Seed, "base RNG seed")
	flag.Parse()

	cfg := experiment.DefaultConfig()
	cfg.Seed = *seed
	const n = 8 // join graph with n+1 tasks
	rows, err := experiment.Fig9(cfg, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join graph, %d identical tasks + sink, i.i.d. Beta(2,5) durations (UL=1.5)\n\n", n)
	fmt.Printf("%-22s %10s %10s %10s\n", "schedule", "slack S", "sigma_M", "E(M)")
	for _, r := range rows {
		fmt.Printf("%-22s %10.3f %10.4f %10.3f\n", r.Name, r.Slack, r.StdDev, r.Makespan)
	}
	fmt.Println(`
Reading the table:
  * "wide" runs every task on its own processor: the makespan is the
    maximum of many i.i.d. variables — tightly concentrated (small
    sigma) even though no task has any slack.
  * "imbalanced" leaves a whole processor nearly idle: huge slack, yet
    sigma stays large because the long chain dominates the makespan.
So maximizing slack neither implies nor is implied by robustness —
the paper's central argument against the slack metric (§VII, Fig. 9).`)
}
