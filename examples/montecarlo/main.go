// Validate the analytic makespan-distribution evaluation against
// Monte-Carlo ground truth (the experiment behind the paper's Figs. 1
// and 2), comparing the classical, Dodin and Spelde methods.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/makespan"
	"repro/internal/stats"
)

func main() {
	seed := flag.Int64("seed", 11, "base RNG seed; the schedule and Monte-Carlo streams derive from it")
	flag.Parse()

	scen, err := repro.NewGaussElimScenario(8, 4, 1.1, *seed)
	if err != nil {
		log.Fatal(err)
	}
	s := repro.RandomSchedule(scen, *seed+1)
	fmt.Printf("Gaussian elimination: %d tasks on %d processors, UL=%.2f, random schedule\n\n",
		scen.G.N(), scen.P.M, scen.UL)

	// Ground truth: 100 000 realizations, as in the paper.
	emp, err := repro.MonteCarlo(scen, s, 100000, *seed+2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monte Carlo (100k):  mean %8.3f   std %7.4f   [q05 %.3f, q95 %.3f]\n",
		emp.Mean(), emp.StdDev(), emp.Quantile(0.05), emp.Quantile(0.95))

	for _, method := range []makespan.Method{
		repro.MethodClassic, repro.MethodDodin, repro.MethodSpelde,
	} {
		rv, err := repro.MakespanDistribution(scen, s, method)
		if err != nil {
			log.Fatal(err)
		}
		ks := stats.KSAgainstEmpirical(rv, emp)
		lo, hi := stats.SupportUnion(rv, emp)
		cm := stats.CMArea(rv, emp, lo, hi, 1024)
		fmt.Printf("%-12s mean %8.3f   std %7.4f   KS %.4f   CM %.4f\n",
			method.String()+":", rv.Mean(), rv.StdDev(), ks, cm)
	}
	fmt.Println("\nThe paper keeps graphs of ≤100 tasks: KS ≤ ~0.1 leaves the")
	fmt.Println("metric correlations intact (see Fig. 1 and §V).")
}
