// Quickstart: build a stochastic scheduling scenario, schedule it with
// HEFT, and read the paper's robustness metrics off the makespan
// distribution.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	seed := flag.Int64("seed", 42, "base RNG seed; every random stream below derives from it")
	flag.Parse()

	// A 10-task Cholesky DAG (3×3 tiles) on 3 heterogeneous
	// processors; every duration is a Beta(2,5) random variable
	// stretched over [min, 1.1·min].
	scen, err := repro.NewCholeskyScenario(3, 3, 1.1, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %d tasks, %d edges, %d processors, UL=%.2f\n",
		scen.G.N(), scen.G.EdgeCount(), scen.P.M, scen.UL)

	// Schedule with HEFT.
	res, err := repro.HEFT(scen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HEFT mean-duration makespan estimate: %.2f\n", res.Makespan)

	// Analytic makespan distribution (classical method, 64-point
	// densities) and the eight robustness metrics.
	metrics, err := repro.ComputeMetrics(scen, res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrobustness metrics (HEFT):")
	fmt.Printf("  expected makespan   E(M) = %.3f\n", metrics.Makespan)
	fmt.Printf("  makespan std-dev    σ_M  = %.4f\n", metrics.StdDev)
	fmt.Printf("  differential entropy h   = %.4f\n", metrics.Entropy)
	fmt.Printf("  average slack       S    = %.3f\n", metrics.AvgSlack)
	fmt.Printf("  slack std-dev       σ_S  = %.3f\n", metrics.SlackStdDev)
	fmt.Printf("  average lateness    L    = %.4f\n", metrics.Lateness)
	fmt.Printf("  abs. probabilistic A(δ)  = %.4f\n", metrics.AbsProb)
	fmt.Printf("  rel. probabilistic R(γ)  = %.4f\n", metrics.RelProb)

	// Cross-check the analytic distribution against 20 000 Monte-Carlo
	// realizations of the schedule.
	emp, err := repro.MonteCarlo(scen, res.Schedule, 20000, *seed+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMonte-Carlo check (20000 realizations): mean %.3f, std %.4f\n",
		emp.Mean(), emp.StdDev())

	// Compare with a random schedule: HEFT should win on makespan and
	// usually on robustness too (§VII of the paper).
	rnd := repro.RandomSchedule(scen, *seed+2)
	rm, err := repro.ComputeMetrics(scen, rnd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrandom schedule: E(M) = %.3f, σ_M = %.4f  (HEFT: %.3f, %.4f)\n",
		rm.Makespan, rm.StdDev, metrics.Makespan, metrics.StdDev)
}
