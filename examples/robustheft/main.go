// The paper's §VIII future-work heuristic, realized: SDHEFT ranks and
// places tasks by mean + λ·σ instead of the mean alone. On a platform
// where half the machines are noisy (high UL) but equally fast on
// average, the mean-based HEFT cannot tell the machines apart while
// SDHEFT buys a large σ reduction for a small makespan premium.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	seed := flag.Int64("seed", 17, "base RNG seed; the Monte-Carlo validation stream derives from it")
	flag.Parse()

	base, err := repro.NewRandomScenario(30, 4, 1.1, *seed)
	if err != nil {
		log.Fatal(err)
	}
	// Processors 0 and 2 are stable (UL = 1.02); processors 1 and 3 are
	// noisy (UL = 2.0) with minima rescaled so the MEAN duration of any
	// task is the same on both kinds of machine.
	scen := base.WithNoisyProcessors(1.02, 2.0)
	fmt.Printf("random graph, %d tasks, %d processors (even = stable, odd = noisy)\n\n",
		scen.G.N(), scen.P.M)

	type entry struct {
		name string
		fn   func() (repro.HeuristicResult, error)
	}
	for _, e := range []entry{
		{"HEFT (mean-based)", func() (repro.HeuristicResult, error) { return repro.HEFT(scen) }},
		{"SDHEFT λ=1", func() (repro.HeuristicResult, error) { return repro.SDHEFT(scen, 1) }},
		{"SDHEFT λ=2", func() (repro.HeuristicResult, error) { return repro.SDHEFT(scen, 2) }},
		{"SDHEFT λ=4", func() (repro.HeuristicResult, error) { return repro.SDHEFT(scen, 4) }},
	} {
		res, err := e.fn()
		if err != nil {
			log.Fatal(err)
		}
		emp, err := repro.MonteCarlo(scen, res.Schedule, 50000, *seed+1)
		if err != nil {
			log.Fatal(err)
		}
		noisyTasks := 0
		for _, p := range res.Schedule.Proc {
			if p%2 == 1 {
				noisyTasks++
			}
		}
		fmt.Printf("%-18s E(M)=%8.3f  σ_M=%7.4f  q99=%8.3f  tasks on noisy procs: %d/%d\n",
			e.name, emp.Mean(), emp.StdDev(), emp.Quantile(0.99), noisyTasks, scen.G.N())
	}
	fmt.Println("\nSDHEFT shifts work onto the stable machines: a small expected-makespan")
	fmt.Println("premium buys a much narrower makespan distribution (lower σ and q99) —")
	fmt.Println("the trade the paper's §VIII proposes a robust heuristic should make.")
}
