package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// allowPrefix introduces an allow directive:
//
//	//reprovet:allow <analyzer> <reason>
//
// A directive suppresses findings of the named analyzer on its own
// line (trailing comment) or on the line immediately below (standalone
// comment above the flagged statement). The reason is mandatory —
// every exemption must be auditable — and every applied directive is
// counted and reported in reprovet's summary. A directive that
// suppresses nothing, names an unknown analyzer, or omits its reason
// is itself a finding: stale or sloppy exemptions never accumulate
// silently.
const allowPrefix = "//reprovet:allow"

// An allowDirective is one parsed //reprovet:allow comment.
type allowDirective struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	used     bool
}

// An AllowedSite records one finding suppressed by a directive; the
// set of them is the audit trail reprovet prints with its summary.
type AllowedSite struct {
	Pos      token.Position // position of the suppressed finding
	Analyzer string
	Reason   string
}

// collectAllows parses the //reprovet:allow directives of the given
// files. Malformed directives are reported as diagnostics attributed
// to the pseudo-analyzer "reprovet" (they are never suppressible).
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]*allowDirective, []Diagnostic) {
	var dirs []*allowDirective
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				pos := fset.Position(c.Pos())
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // some other reprovet:allowX token, not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{Pos: pos, Analyzer: "reprovet",
						Message: "malformed //reprovet:allow directive: missing analyzer name and reason"})
					continue
				}
				name := fields[0]
				if !known[name] {
					diags = append(diags, Diagnostic{Pos: pos, Analyzer: "reprovet",
						Message: "//reprovet:allow names unknown analyzer " + strconv.Quote(name)})
					continue
				}
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{Pos: pos, Analyzer: "reprovet",
						Message: "//reprovet:allow " + name + " is missing its reason: every exemption must say why"})
					continue
				}
				reason := strings.TrimSpace(rest[strings.Index(rest, name)+len(name):])
				dirs = append(dirs, &allowDirective{Pos: pos, Analyzer: name, Reason: reason})
			}
		}
	}
	return dirs, diags
}

// applyAllows filters diags through the directives: a finding whose
// (file, line) sits on a directive's line or the line immediately
// after it, for the directive's analyzer, is moved to the allowed
// audit. Directives that matched nothing become findings themselves.
func applyAllows(diags []Diagnostic, dirs []*allowDirective) (kept []Diagnostic, allowed []AllowedSite) {
	for _, d := range diags {
		var match *allowDirective
		for _, dir := range dirs {
			if dir.Analyzer != d.Analyzer || dir.Pos.Filename != d.Pos.Filename {
				continue
			}
			if d.Pos.Line == dir.Pos.Line || d.Pos.Line == dir.Pos.Line+1 {
				match = dir
				break
			}
		}
		if match != nil {
			match.used = true
			allowed = append(allowed, AllowedSite{Pos: d.Pos, Analyzer: d.Analyzer, Reason: match.Reason})
			continue
		}
		kept = append(kept, d)
	}
	for _, dir := range dirs {
		if !dir.used {
			kept = append(kept, Diagnostic{Pos: dir.Pos, Analyzer: "reprovet",
				Message: "unused //reprovet:allow " + dir.Analyzer + " directive: it suppresses nothing on this or the next line"})
		}
	}
	return kept, allowed
}
