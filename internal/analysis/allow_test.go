package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestAllowDirectives pins the directive's suppression and audit
// contract: a directive suppresses exactly one finding (on its own
// line or the line below — the golden file's want comment proves the
// next draw down stays flagged), and every suppressed site lands in
// the audit with its reason.
func TestAllowDirectives(t *testing.T) {
	res := analysistest.Run(t, "", filepath.Join("testdata", "src", "allowdir"), analysis.DefaultAnalyzers())
	if len(res.Allowed) != 3 {
		t.Fatalf("allowed sites = %d, want 3 (one per directive)", len(res.Allowed))
	}
	reasons := map[string]bool{}
	for _, a := range res.Allowed {
		if a.Analyzer != "globalrand" {
			t.Errorf("allowed site %s attributes analyzer %q, want globalrand", a.Pos, a.Analyzer)
		}
		if !strings.HasPrefix(a.Reason, "golden:") {
			t.Errorf("allowed site %s lost its reason: %q", a.Pos, a.Reason)
		}
		reasons[a.Reason] = true
	}
	if len(reasons) != 3 {
		t.Errorf("audit reasons = %v, want the three distinct golden reasons", reasons)
	}
}

// TestAllowDirectiveErrors checks that malformed, unknown-analyzer,
// and unused directives are findings themselves, and that a rejected
// directive suppresses nothing.
func TestAllowDirectiveErrors(t *testing.T) {
	lp, err := analysis.LoadDir("", filepath.Join("testdata", "src", "allowbad"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Check(analysis.DefaultAnalyzers(), lp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Allowed) != 0 {
		t.Errorf("allowed sites = %d, want 0: rejected directives must not suppress", len(res.Allowed))
	}
	wantSubstrings := []string{
		"missing analyzer name and reason", // bare //reprovet:allow
		`unknown analyzer "nosuchcheck"`,   // unknown name
		"missing its reason",               // name but no reason
		"unused //reprovet:allow mapiter",  // suppresses nothing
		"math/rand.Float64 draws",          // unsuppressed under missing reason
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range res.Findings {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding contains %q; findings: %v", want, res.Findings)
		}
	}
	// missing-reason + bare + unknown + unused directives, plus the two
	// rand draws the rejected directives fail to suppress.
	if len(res.Findings) != 6 {
		t.Errorf("findings = %d, want 6: %v", len(res.Findings), res.Findings)
	}
}
