// Package analysis is the repo's static-analysis framework: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus the four reprovet
// analyzers that enforce the reproduction's correctness invariants —
// deterministic iteration (mapiter), seed-derived randomness only
// (globalrand), complete cache keys (cachekey), and no accidental
// floating-point equality (floateq).
//
// The framework exists because the build environment pins the module to
// the standard library: packages are type-checked with go/types against
// compiler export data obtained from `go list -export` (see load.go),
// and cmd/reprovet speaks the `go vet -vettool` unitchecker protocol
// directly (see unitchecker.go). The analyzer API deliberately mirrors
// x/tools so the suite could migrate onto it wholesale if the
// dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //reprovet:allow directives. It must be a single lower-case word.
	Name string
	// Doc is the one-paragraph description printed by reprovet's help.
	Doc string
	// Run applies the analyzer to one package and reports findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// A Pass carries one analyzed package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // parsed non-test files of the package
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by file, line, column, analyzer — the
// stable order every reprovet output mode uses (the suite practices the
// determinism it preaches).
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// isTestFile reports whether the file at path is a _test.go file. The
// go vet driver hands the tool test variants whose GoFiles include test
// sources; reprovet's invariants are production-code invariants, so
// every analyzer skips them uniformly.
func isTestFile(path string) bool {
	return strings.HasSuffix(path, "_test.go")
}

// nonTestFiles returns the files of the pass that are not test files.
func (p *Pass) nonTestFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if !isTestFile(p.Fset.Position(f.Package).Filename) {
			out = append(out, f)
		}
	}
	return out
}
