// Package analysistest verifies reprovet analyzers against golden
// packages annotated with `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repo's
// hand-rolled driver. A golden package lives under
// internal/analysis/testdata/src/<name>; every diagnostic the suite
// reports there must match a want regexp on its own line, and every
// want regexp must be matched by a diagnostic — so the goldens pin
// both that analyzers fire and that they stay quiet.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe matches the body of a `// want` comment.
var wantRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)

// literalRe matches one Go string literal — raw or interpreted —
// inside a want comment body, so a single comment can carry several
// expectations: // want "first" "second".
var literalRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// An expectation is one want regexp pinned to a file and line.
type expectation struct {
	re      *regexp.Regexp
	text    string
	file    string
	line    int
	matched bool
}

// Run checks the golden package in dir with the given analyzers and
// reports mismatches through t. It returns the PackageResult so
// callers can additionally assert on the //reprovet:allow audit
// (allowed-site counts and reasons).
func Run(t *testing.T, moduleDir, dir string, analyzers []*analysis.Analyzer) analysis.PackageResult {
	t.Helper()
	lp, err := analysis.LoadDir(moduleDir, dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Check(analyzers, lp)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, lp)
	for _, d := range res.Findings {
		if !consume(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected finding at %s: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.text)
		}
	}
	return res
}

// collectWants extracts the expectations from the golden package's
// comments.
func collectWants(t *testing.T, lp *analysis.LoadedPackage) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range lp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := lp.Fset.Position(c.Pos())
				lits := literalRe.FindAllString(m[1], -1)
				if len(lits) == 0 {
					t.Errorf("%s: want comment carries no string literal", pos)
					continue
				}
				for _, lit := range lits {
					text, err := unquote(lit)
					if err != nil {
						t.Errorf("%s: bad want literal %s: %v", pos, lit, err)
						continue
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, text, err)
						continue
					}
					wants = append(wants, &expectation{re: re, text: text, file: pos.Filename, line: pos.Line})
				}
			}
		}
	}
	return wants
}

// consume marks the first unmatched expectation on (file, line) whose
// regexp matches msg, reporting whether one existed.
func consume(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// unquote decodes a raw or interpreted Go string literal.
func unquote(lit string) (string, error) {
	if strings.HasPrefix(lit, "`") {
		return strings.Trim(lit, "`"), nil
	}
	return strconv.Unquote(lit)
}
