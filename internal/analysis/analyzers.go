package analysis

// DefaultAnalyzers returns the reprovet suite in stable order.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{CacheKey, FloatEq, GlobalRand, MapIter}
}
