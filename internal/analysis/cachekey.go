package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// cacheKeyPrefix marks a function as the cache-key builder for a
// struct type of its package:
//
//	//reprovet:cachekey <TypeName> [-exempt F1,F2,...]
//
// placed in the function's doc comment. For each marked type, every
// exported field must either flow into the key inside the function
// (read directly, read transitively through same-package calls and
// methods invoked on the value, or passed wholesale to a hashing call
// in another package) or appear in the -exempt list. The analyzer
// also rejects stale exemption lists: an exempted field that IS read
// by the key function, or an exempt name that is not a field, is a
// finding. Net effect: adding a result-affecting knob to the struct
// without extending the key (or consciously exempting it) fails the
// build instead of silently serving stale cache entries — the class
// of bug behind PR 3's iota cache keys and PR 5's size-seed
// collisions.
const cacheKeyPrefix = "//reprovet:cachekey"

// CacheKey enforces cache-key completeness for types named in
// //reprovet:cachekey directives.
var CacheKey = &Analyzer{
	Name: "cachekey",
	Doc:  "cross-checks that every exported field of a //reprovet:cachekey type is hashed or exempted",
	Run:  runCacheKey,
}

// cachekeyDirective is one parsed directive on a key function.
type cachekeyDirective struct {
	TypeName string
	Exempt   []string
}

func runCacheKey(pass *Pass) error {
	decls := packageFuncDecls(pass)
	for _, f := range pass.nonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if !strings.HasPrefix(c.Text, cacheKeyPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, cacheKeyPrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue
				}
				dir, err := parseCachekeyDirective(rest)
				if err != nil {
					pass.Reportf(c.Pos(), "malformed %s directive: %v", cacheKeyPrefix, err)
					continue
				}
				checkCacheKeyFunc(pass, decls, fd, dir)
			}
		}
	}
	return nil
}

func parseCachekeyDirective(rest string) (cachekeyDirective, error) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return cachekeyDirective{}, fmt.Errorf("missing type name")
	}
	dir := cachekeyDirective{TypeName: fields[0]}
	switch {
	case len(fields) == 1:
	case len(fields) == 3 && fields[1] == "-exempt":
		dir.Exempt = strings.Split(fields[2], ",")
	default:
		return cachekeyDirective{}, fmt.Errorf("want %q", "<TypeName> [-exempt F1,F2,...]")
	}
	return dir, nil
}

// checkCacheKeyFunc verifies field coverage of one directive on one
// key function.
func checkCacheKeyFunc(pass *Pass, decls map[types.Object]*ast.FuncDecl, fd *ast.FuncDecl, dir cachekeyDirective) {
	target, named := cachekeyParam(pass, fd, dir.TypeName)
	if target == nil {
		pass.Reportf(fd.Pos(), "%s %s: no parameter of %s has type %s", cacheKeyPrefix, dir.TypeName, fd.Name.Name, dir.TypeName)
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(fd.Pos(), "%s %s: %s is not a struct type", cacheKeyPrefix, dir.TypeName, dir.TypeName)
		return
	}
	cov := &coverage{covered: map[string]bool{}}
	visited := map[visitKey]bool{}
	fnObj := pass.TypesInfo.Defs[fd.Name]
	coverUses(pass, decls, fd, fnObj, target, cov, visited)

	exempt := map[string]bool{}
	for _, e := range dir.Exempt {
		exempt[e] = true
	}
	fieldSet := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		fieldSet[fld.Name()] = true
		if !fld.Exported() {
			continue
		}
		switch {
		case exempt[fld.Name()] && (cov.covered[fld.Name()] && !cov.full):
			// Read by the key function yet listed as exempt: the
			// exemption is stale and hides future drift.
			pass.Reportf(fd.Pos(), "%s: exempted field %s.%s is read by the key function; drop it from -exempt", cacheKeyPrefix, dir.TypeName, fld.Name())
		case exempt[fld.Name()]:
		case cov.full || cov.covered[fld.Name()]:
		default:
			pass.Reportf(fd.Pos(), "%s: exported field %s.%s is not hashed into the cache key and not exempted; a config knob missing from the key serves stale cache entries", cacheKeyPrefix, dir.TypeName, fld.Name())
		}
	}
	names := make([]string, 0, len(exempt))
	for n := range exempt {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !fieldSet[n] {
			pass.Reportf(fd.Pos(), "%s: -exempt names unknown field %s.%s", cacheKeyPrefix, dir.TypeName, n)
		}
	}
}

// cachekeyParam finds the parameter (or receiver) of fd whose type is
// the package-local named type typeName, possibly behind a pointer.
func cachekeyParam(pass *Pass, fd *ast.FuncDecl, typeName string) (types.Object, *types.Named) {
	fields := []*ast.Field{}
	if fd.Recv != nil {
		fields = append(fields, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		fields = append(fields, fd.Type.Params.List...)
	}
	for _, f := range fields {
		for _, name := range f.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			t := obj.Type()
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() != pass.Pkg || named.Obj().Name() != typeName {
				continue
			}
			return obj, named
		}
	}
	return nil, nil
}

// coverage accumulates what the key function reads of the target
// value: individual field names, or full (the whole value flowed into
// a hash/encoder, covering every field at once).
type coverage struct {
	covered map[string]bool
	full    bool
}

// visitKey bounds the transitive walk: one (function, tracked value)
// pair is analyzed once.
type visitKey struct {
	fn     types.Object
	target types.Object
}

// coverUses walks fn's body recording reads of target: selector reads
// cover single fields; calls to same-package functions and methods
// propagate the tracking into the callee; any other whole-value use
// (an argument to another package's call — runner.Key, json.Marshal —
// an assignment, a return) counts as full coverage, matching the
// hash-the-whole-struct idiom.
func coverUses(pass *Pass, decls map[types.Object]*ast.FuncDecl, fd *ast.FuncDecl, fnObj, target types.Object, cov *coverage, visited map[visitKey]bool) {
	if fd == nil || fd.Body == nil || target == nil {
		cov.full = true // untrackable: assume covered rather than spiral
		return
	}
	key := visitKey{fn: fnObj, target: target}
	if visited[key] {
		return
	}
	visited[key] = true
	parents := parentMap(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != target {
			return true
		}
		parent := parents[id]
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
			coverSelector(pass, decls, sel, cov, visited)
			return true
		}
		if call, ok := parent.(*ast.CallExpr); ok && call.Fun != id {
			coverCallArg(pass, decls, call, id, cov, visited)
			return true
		}
		// Whole-value escape (composite literal, assignment, return,
		// index…): treat as hashed wholesale.
		cov.full = true
		return true
	})
}

// coverSelector handles target.Field (covers the field) and
// target.Method (recurses into the method body with the receiver
// tracked).
func coverSelector(pass *Pass, decls map[types.Object]*ast.FuncDecl, sel *ast.SelectorExpr, cov *coverage, visited map[visitKey]bool) {
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return
	}
	switch selection.Kind() {
	case types.FieldVal:
		cov.covered[selection.Obj().Name()] = true
	case types.MethodVal, types.MethodExpr:
		m, _ := selection.Obj().(*types.Func)
		if m == nil {
			cov.full = true
			return
		}
		md := decls[m]
		if md == nil || md.Recv == nil || len(md.Recv.List) == 0 || len(md.Recv.List[0].Names) == 0 {
			// Method without source or unnamed receiver: the body
			// cannot be tracked; unnamed receivers read nothing.
			if md == nil {
				cov.full = true
			}
			return
		}
		recv := pass.TypesInfo.Defs[md.Recv.List[0].Names[0]]
		coverUses(pass, decls, md, m, recv, cov, visited)
	}
}

// coverCallArg handles f(..., target, ...): same-package callees are
// analyzed transitively with the matching parameter tracked; anything
// else — another package's hasher or encoder — counts as full
// coverage.
func coverCallArg(pass *Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr, arg *ast.Ident, cov *coverage, visited map[visitKey]bool) {
	var callee types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		callee = pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := callee.(*types.Func)
	if !ok || fn.Pkg() != pass.Pkg {
		cov.full = true
		return
	}
	cd := decls[fn]
	if cd == nil {
		cov.full = true
		return
	}
	argIdx := -1
	for i, a := range call.Args {
		if a == arg {
			argIdx = i
			break
		}
	}
	if argIdx < 0 {
		cov.full = true
		return
	}
	// Map argument position to the callee parameter name.
	idx := 0
	for _, f := range cd.Type.Params.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			if idx == argIdx {
				if len(f.Names) == 0 {
					return // unnamed param: callee cannot read it
				}
				coverUses(pass, decls, cd, fn, pass.TypesInfo.Defs[f.Names[j]], cov, visited)
				return
			}
			idx++
		}
	}
	cov.full = true // variadic overflow or mismatch: assume hashed
}

// packageFuncDecls indexes the package's function and method
// declarations by their types object.
func packageFuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.nonTestFiles() {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

// parentMap records each node's immediate parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
