package analysis

import (
	"fmt"
	"io"
	"sort"
)

// A PackageResult is the outcome of checking one package: the findings
// that survived the allow directives, plus the audit trail of
// suppressed sites.
type PackageResult struct {
	ImportPath string
	Findings   []Diagnostic
	Allowed    []AllowedSite
}

// Check runs every analyzer over the package, applies the
// //reprovet:allow directives, and returns findings in stable
// position order.
func Check(analyzers []*Analyzer, pkg *LoadedPackage) (PackageResult, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return PackageResult{}, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		diags = append(diags, pass.diags...)
	}
	dirs, dirDiags := collectAllows(pkg.Fset, pkg.Files, known)
	kept, allowed := applyAllows(diags, dirs)
	kept = append(kept, dirDiags...)
	sortDiagnostics(kept)
	sort.Slice(allowed, func(i, j int) bool {
		a, b := allowed[i], allowed[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return PackageResult{ImportPath: pkg.ImportPath, Findings: kept, Allowed: allowed}, nil
}

// PrintResults writes findings and the allow audit for a set of
// package results and reports whether any findings were present.
func PrintResults(w io.Writer, results []PackageResult) (failed bool) {
	findings, allowed := 0, 0
	for _, r := range results {
		for _, d := range r.Findings {
			fmt.Fprintln(w, d.String())
			findings++
		}
		allowed += len(r.Allowed)
	}
	fmt.Fprintf(w, "reprovet: %d finding(s), %d allowed site(s)\n", findings, allowed)
	if allowed > 0 {
		fmt.Fprintf(w, "reprovet: allow audit (//reprovet:allow):\n")
		for _, r := range results {
			for _, a := range r.Allowed {
				fmt.Fprintf(w, "  %s: %s: %s\n", a.Pos, a.Analyzer, a.Reason)
			}
		}
	}
	return findings > 0
}
