package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point (or complex) operands
// in production code. Exact float comparison is almost always a bug —
// two mathematically equal computations differ in their last bits —
// and where it is intentional (bit-identity harnesses, exact-zero
// structural sentinels like a platform's zero diagonal), the site must
// say so with //reprovet:allow floateq <reason>, making every exact
// comparison in the repo auditable. Comparisons between two compile-
// time constants are exact by construction and pass. Test files are
// exempt wholesale: the differential suites compare bit-identity on
// purpose, file by file.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= on floating-point operands outside approved bit-identity harnesses",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, f := range pass.nonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := pass.TypesInfo.Types[be.X], pass.TypesInfo.Types[be.Y]
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant-folded: exact by construction
			}
			pass.Reportf(be.OpPos, "floating-point %s compares exact bits; use a tolerance, or justify the exact comparison with //reprovet:allow floateq <reason>", be.Op)
			return true
		})
	}
	return nil
}

// isFloat reports whether t's underlying type is a float or complex
// basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
