package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "", filepath.Join("testdata", "src", "floateq"), analysis.DefaultAnalyzers())
}
