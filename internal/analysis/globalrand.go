package analysis

import (
	"go/ast"
)

// globalRandFuncs are the math/rand (and v2) package-level functions
// that draw from the process-global generator. Constructors
// (New, NewSource, NewZipf, NewPCG, NewChaCha8) are fine: they take an
// explicit seed or source, which is exactly what the invariant wants.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// wallClockFuncs are the time package functions that read the wall
// clock — a hidden global input that breaks run-to-run reproducibility
// of anything result-producing.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// GlobalRand flags nondeterministic global inputs in result-producing
// code: package-level math/rand functions (which share one process
// seed, so results depend on call interleaving across goroutines) and
// wall-clock reads (time.Now/Since/Until). Every random stream must be
// built from an explicit seed — derived via internal/seeds where
// streams fan out — so runs are byte-identical at any worker count.
//
// Wall-clock reads are permitted in package main (progress reporting
// in CLIs is presentation, not results); elsewhere a legitimate
// wall-clock read (e.g. resilience backoff pacing) carries a
// //reprovet:allow globalrand <reason> directive.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "flags global math/rand functions and wall-clock reads in result-producing code",
	Run:  runGlobalRand,
}

func runGlobalRand(pass *Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.nonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFuncCall(pass, sel)
			if !ok {
				return true
			}
			switch {
			case (path == "math/rand" || path == "math/rand/v2") && globalRandFuncs[name]:
				pass.Reportf(call.Pos(), "%s.%s draws from the process-global generator; use rand.New with a seed derived via internal/seeds", path, name)
			case path == "time" && wallClockFuncs[name] && !isMain:
				pass.Reportf(call.Pos(), "time.%s reads the wall clock, a nondeterministic global input; thread an explicit timestamp or justify with //reprovet:allow globalrand <reason>", name)
			}
			return true
		})
	}
	return nil
}
