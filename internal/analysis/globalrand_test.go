package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, "", filepath.Join("testdata", "src", "globalrand"), analysis.DefaultAnalyzers())
}

// TestGlobalRandMainPackage checks the package-main carve-out: wall
// clock reads are presentation there and pass, global randomness is
// still flagged.
func TestGlobalRandMainPackage(t *testing.T) {
	analysistest.Run(t, "", filepath.Join("testdata", "src", "grmain"), analysis.DefaultAnalyzers())
}
