package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// A LoadedPackage is one package parsed and type-checked, ready for the
// checker.
type LoadedPackage struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File // non-test files only
	Pkg        *types.Package
	Info       *types.Info
}

// newTypesInfo allocates the full set of type-checker result maps the
// analyzers consume.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -json -deps -export` in dir over the given
// patterns and returns the decoded package stream.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "-export", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a go/types importer that resolves imports from
// compiler export data files. importMap translates source import paths
// to canonical package paths (identity for most builds); exportFiles
// maps canonical paths to export data produced by `go list -export` or
// recorded in a vet config.
func exportImporter(fset *token.FileSet, importMap, exportFiles map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Load lists, parses, and type-checks the packages matching patterns,
// resolving imports through build-cache export data so the loader works
// hermetically offline. dir is the module directory to run `go list`
// in; empty means the current directory.
func Load(dir string, patterns ...string) ([]*LoadedPackage, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exportFiles := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, nil, exportFiles)
	var out []*LoadedPackage
	for _, p := range pkgs {
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		var paths []string
		for _, g := range p.GoFiles {
			paths = append(paths, filepath.Join(p.Dir, g))
		}
		lp, err := typeCheck(fset, imp, p.ImportPath, paths)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}

// LoadDir parses and type-checks a single directory of Go files that
// is not part of the enclosing module — the analysistest layout
// (testdata/src/<pkg>). Imports are restricted to packages resolvable
// by `go list` from moduleDir (in practice: the standard library).
func LoadDir(moduleDir, dir string) (*LoadedPackage, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var paths []string
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" || isTestFile(e.Name()) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		paths = append(paths, path)
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err == nil {
				importSet[p] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	exportFiles := map[string]string{}
	if len(importSet) > 0 {
		imports := make([]string, 0, len(importSet))
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		pkgs, err := goList(moduleDir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exportFiles[p.ImportPath] = p.Export
			}
		}
	}
	imp := exportImporter(fset, nil, exportFiles)
	return typeCheckFiles(fset, imp, filepath.Base(dir), files)
}

// typeCheck parses the named files and type-checks them as one package.
func typeCheck(fset *token.FileSet, imp types.Importer, importPath string, paths []string) (*LoadedPackage, error) {
	var files []*ast.File
	for _, path := range paths {
		if isTestFile(path) {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return typeCheckFiles(fset, imp, importPath, files)
}

func typeCheckFiles(fset *token.FileSet, imp types.Importer, importPath string, files []*ast.File) (*LoadedPackage, error) {
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %v", importPath, err)
	}
	return &LoadedPackage{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}
