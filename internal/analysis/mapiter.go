package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter flags `range` statements over maps whose body performs an
// order-sensitive operation — the nondeterministic-iteration class
// behind the PR 1 dag.Clone bug and the platform.Validate first-error
// bug. Go randomizes map iteration order on purpose, so any of the
// following inside a map-range body makes output depend on the run:
//
//   - returning a value derived from the iteration variables
//     (first-match selection: which entry "wins" differs per run);
//   - writing iteration-derived data to an output or hash sink
//     (fmt.Print*/Fprint*, io.WriteString, or any Write/WriteString/
//     WriteByte/WriteRune/Sum method);
//   - appending iteration-derived values to a slice declared outside
//     the loop, unless the slice is passed to a sort.*/slices.* sort
//     call after the loop (the collect-then-sort idiom is the approved
//     fix and is recognized);
//   - assigning iteration-derived values to variables or slice
//     elements declared outside the loop. Integer accumulation
//     (+=, -=, *=, |=, &=, ^=) is commutative and associative and
//     stays legal; floating-point accumulation is not associative and
//     is flagged — bit-identical results are a repo invariant.
//
// Pure per-entry work (map writes keyed by the iteration key, integer
// counters, local computation) passes. Intentional order-insensitive
// exceptions carry a //reprovet:allow mapiter <reason> directive.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flags order-sensitive bodies of range-over-map loops (nondeterministic iteration order)",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) error {
	for _, f := range pass.nonTestFiles() {
		var funcStack []ast.Node // enclosing FuncDecl/FuncLit bodies
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					funcStack = append(funcStack, n.Body)
					ast.Inspect(n.Body, visit)
					funcStack = funcStack[:len(funcStack)-1]
				}
				return false
			case *ast.FuncLit:
				funcStack = append(funcStack, n.Body)
				ast.Inspect(n.Body, visit)
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.RangeStmt:
				var encl ast.Node
				if len(funcStack) > 0 {
					encl = funcStack[len(funcStack)-1]
				}
				checkMapRange(pass, n, encl)
			}
			return true
		}
		ast.Inspect(f, visit)
	}
	return nil
}

// checkMapRange reports the first order-sensitive sink in a map-range
// body (one diagnostic per loop keeps repeated sinks reviewable).
func checkMapRange(pass *Pass, rng *ast.RangeStmt, enclFunc ast.Node) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	tainted := taintedVars(pass, rng)
	if len(tainted) == 0 {
		return
	}
	sink := findOrderSink(pass, rng, enclFunc, tainted)
	if sink == "" {
		return
	}
	pass.Reportf(rng.For, "map iteration order is nondeterministic, but the loop body %s; iterate a sorted key slice (or justify with //reprovet:allow mapiter <reason>)", sink)
}

// taintedVars seeds the taint set with the range key/value variables
// and closes it over body-local variables assigned from tainted
// expressions.
func taintedVars(pass *Pass, rng *ast.RangeStmt) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				tainted[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				tainted[obj] = true // `for k = range m` over an existing var
			}
		}
	}
	if len(tainted) == 0 {
		return tainted
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			rhsTainted := false
			for _, r := range asg.Rhs {
				if refsTainted(pass, r, tainted) {
					rhsTainted = true
					break
				}
			}
			if !rhsTainted {
				return true
			}
			for _, l := range asg.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil && !tainted[obj] && within(obj.Pos(), rng) {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return tainted
}

// findOrderSink scans a map-range body for the first statement whose
// effect depends on iteration order; it returns a description for the
// diagnostic, or "" if the body is order-insensitive.
func findOrderSink(pass *Pass, rng *ast.RangeStmt, enclFunc ast.Node, tainted map[types.Object]bool) string {
	var sink string
	pos := func(n ast.Node) token.Position { return pass.Fset.Position(n.Pos()) }
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if refsTainted(pass, r, tainted) {
					sink = fmt.Sprintf("returns an iteration-dependent value at line %d (first-match selection)", pos(n).Line)
					return false
				}
			}
		case *ast.CallExpr:
			if desc := outputSink(pass, n, tainted); desc != "" {
				sink = fmt.Sprintf("%s at line %d", desc, pos(n).Line)
				return false
			}
		case *ast.AssignStmt:
			if desc := assignSink(pass, n, rng, enclFunc, tainted); desc != "" {
				sink = fmt.Sprintf("%s at line %d", desc, pos(n).Line)
				return false
			}
		}
		return true
	})
	return sink
}

// outputSink reports whether the call writes iteration-derived data to
// an ordered output: fmt printing, io.WriteString, or a Write-family
// or Sum method (hashing).
func outputSink(pass *Pass, call *ast.CallExpr, tainted map[types.Object]bool) string {
	argTainted := false
	for _, a := range call.Args {
		if refsTainted(pass, a, tainted) {
			argTainted = true
			break
		}
	}
	if !argTainted {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if path, name, ok := pkgFuncCall(pass, sel); ok {
		switch {
		case path == "fmt" && (name == "Print" || name == "Printf" || name == "Println" ||
			name == "Fprint" || name == "Fprintf" || name == "Fprintln"):
			return "prints iteration-dependent output via fmt." + name
		case path == "io" && name == "WriteString":
			return "writes iteration-dependent bytes via io.WriteString"
		}
		return ""
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Sum":
		return "feeds iteration-dependent bytes to " + sel.Sel.Name
	}
	return ""
}

// assignSink classifies assignments inside the body that leak
// iteration-derived values into state that outlives the loop in a
// non-commutative way.
func assignSink(pass *Pass, asg *ast.AssignStmt, rng *ast.RangeStmt, enclFunc ast.Node, tainted map[types.Object]bool) string {
	rhsTainted := false
	for _, r := range asg.Rhs {
		if refsTainted(pass, r, tainted) {
			rhsTainted = true
			break
		}
	}
	if !rhsTainted {
		return ""
	}
	// The collect-into-slice idiom: x = append(x, ...). Approved when x
	// is sorted after the loop, flagged otherwise.
	if len(asg.Rhs) == 1 && len(asg.Lhs) == 1 {
		if call, ok := asg.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
			obj := lhsObject(pass, asg.Lhs[0])
			if obj == nil || within(obj.Pos(), rng) {
				return "" // loop-local accumulation, dies with the iteration
			}
			if sortedAfter(pass, obj, rng, enclFunc) {
				return "" // collect-then-sort: order restored after the loop
			}
			return fmt.Sprintf("appends iteration-dependent values to %q without sorting it afterwards", obj.Name())
		}
	}
	for _, l := range asg.Lhs {
		switch l := l.(type) {
		case *ast.Ident:
			obj := lhsObject(pass, l)
			if obj == nil || within(obj.Pos(), rng) {
				continue
			}
			if asg.Tok != token.ASSIGN && commutativeAccumulation(pass, l, asg.Tok) {
				continue
			}
			if asg.Tok == token.ASSIGN {
				return fmt.Sprintf("assigns an iteration-dependent value to %q (last writer wins)", obj.Name())
			}
			return fmt.Sprintf("accumulates into %q with non-associative %s (float/string accumulation is order-sensitive)", obj.Name(), asg.Tok)
		case *ast.IndexExpr:
			base := pass.TypesInfo.TypeOf(l.X)
			if base == nil {
				continue
			}
			if _, isMap := base.Underlying().(*types.Map); isMap {
				continue // map writes keyed by the iteration key commute
			}
			obj := lhsObject(pass, l.X)
			if obj == nil || within(obj.Pos(), rng) {
				continue
			}
			return fmt.Sprintf("writes iteration-dependent values into elements of %q", obj.Name())
		}
	}
	return ""
}

// commutativeAccumulation reports whether `lhs op= rhs` is an
// order-insensitive accumulation: integer (or bitset/bool) arithmetic
// commutes and associates exactly; float and string accumulation do
// not.
func commutativeAccumulation(pass *Pass, lhs ast.Expr, tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	t := pass.TypesInfo.TypeOf(lhs)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// sortedAfter reports whether obj is passed to a sort.*/slices.* call
// after the range statement within the enclosing function body.
func sortedAfter(pass *Pass, obj types.Object, rng *ast.RangeStmt, enclFunc ast.Node) bool {
	if enclFunc == nil {
		return false
	}
	found := false
	ast.Inspect(enclFunc, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, _, ok := pkgFuncCall(pass, sel)
		if !ok || (path != "sort" && path != "slices") {
			return true
		}
		if len(call.Args) > 0 {
			if id, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// refsTainted reports whether the expression references any tainted
// object.
func refsTainted(pass *Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && tainted[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// lhsObject resolves the variable written by an lvalue expression.
func lhsObject(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		return lhsObject(pass, e.X)
	case *ast.IndexExpr:
		return lhsObject(pass, e.X)
	}
	return nil
}

// within reports whether pos falls inside the range statement's span.
func within(pos token.Pos, rng *ast.RangeStmt) bool {
	return pos >= rng.Pos() && pos <= rng.End()
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	b, ok := obj.(*types.Builtin)
	return ok && b.Name() == "append"
}

// pkgFuncCall resolves sel as a qualified call pkg.Func and returns
// the package path and function name.
func pkgFuncCall(pass *Pass, sel *ast.SelectorExpr) (path, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
