// Package allowbad is reprovet golden input: malformed, unknown, and
// unused //reprovet:allow directives, each of which must itself be a
// finding so exemptions never rot silently. The companion test asserts
// the exact finding set directly (the directives occupy whole lines,
// so want comments cannot share them).
package allowbad

import "math/rand"

// missingReason omits the mandatory reason: the directive is rejected
// and the draw below stays flagged.
func missingReason() float64 {
	//reprovet:allow globalrand
	return rand.Float64()
}

// unknownAnalyzer names an analyzer that does not exist.
func unknownAnalyzer() float64 {
	//reprovet:allow nosuchcheck because reasons
	return rand.Float64()
}

// unused allows a finding that never occurs: slices iterate in order.
func unused() int {
	//reprovet:allow mapiter this loop ranges a slice, nothing to suppress
	total := 0
	for _, v := range []int{1, 2, 3} {
		total += v
	}
	return total
}

// bare has neither analyzer name nor reason.
func bare() {
	//reprovet:allow
}
