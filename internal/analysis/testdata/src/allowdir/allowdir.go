// Package allowdir is reprovet golden input: the //reprovet:allow
// directive's suppression mechanics. The companion test asserts the
// audit side: exactly three allowed sites, each carrying its reason.
package allowdir

import "math/rand"

// trailing: the directive on the flagged line suppresses that finding.
func trailing() float64 {
	return rand.Float64() //reprovet:allow globalrand golden: trailing directive on the flagged line
}

// preceding: a directive on its own line covers the line below.
func preceding() float64 {
	//reprovet:allow globalrand golden: standalone directive above the flagged line
	return rand.Float64()
}

// secondLine: a directive suppresses exactly one adjacent line — the
// second draw two lines down is still flagged.
func secondLine() float64 {
	//reprovet:allow globalrand golden: covers only the next line
	a := rand.Float64()
	b := rand.Float64() // want `math/rand\.Float64 draws from the process-global generator`
	return a + b
}
