// Package cachekey is reprovet golden input: cache-key completeness
// over //reprovet:cachekey-annotated key functions.
package cachekey

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
)

// Config mimics an experiment configuration: A and B feed the key, C
// is a result-affecting knob the partial key forgets, W is a
// throughput knob that never affects results.
type Config struct {
	A int
	B string
	C float64
	W int
}

// Spec mimics a case spec, hashed wholesale.
type Spec struct {
	Name string
	Seed int64
}

// Knobs is a smaller type for the exemption-hygiene cases.
type Knobs struct {
	X int
	Y int
}

// Key covers Spec wholesale (json.Marshal escapes the value to another
// package), A directly, B through a same-package method — but forgets
// C, which is neither hashed nor exempted.
//
//reprovet:cachekey Spec
//reprovet:cachekey Config -exempt W
func Key(spec Spec, cfg Config) string { // want `exported field Config\.C is not hashed into the cache key`
	blob, _ := json.Marshal(spec)
	sum := sha256.Sum256(append(blob, fmt.Sprintf("%d/%s", cfg.A, cfg.bTag())...))
	return fmt.Sprintf("%x", sum)
}

func (c Config) bTag() string { return c.B }

// FullKey repairs Key by hashing C too: passes.
//
//reprovet:cachekey Config -exempt W
func FullKey(cfg Config) string {
	return fmt.Sprintf("%d/%s/%g", cfg.A, cfg.bTag(), cfg.C)
}

// StaleExempt exempts X yet reads it right there: the exemption is
// stale and hides future drift.
//
//reprovet:cachekey Knobs -exempt X
func StaleExempt(k Knobs) string { // want `exempted field Knobs\.X is read by the key function`
	return fmt.Sprintf("%d/%d", k.X, k.Y)
}

// UnknownExempt exempts a name that is not a field.
//
//reprovet:cachekey Knobs -exempt Z
func UnknownExempt(k Knobs) string { // want `-exempt names unknown field Knobs\.Z`
	return fmt.Sprintf("%d/%d", k.X, k.Y)
}

// TransitiveKey covers Y through a same-package helper call: passes.
//
//reprovet:cachekey Knobs
func TransitiveKey(k Knobs) string {
	return fmt.Sprintf("%d/%s", k.X, keyPart(k))
}

func keyPart(k Knobs) string { return fmt.Sprintf("%d", k.Y) }

// NoSuchParam names a type none of its parameters have.
//
//reprovet:cachekey Nope
func NoSuchParam(k Knobs) string { // want `no parameter of NoSuchParam has type Nope`
	return keyPart(k)
}
