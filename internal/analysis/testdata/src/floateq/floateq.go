// Package floateq is reprovet golden input: exact floating-point
// comparisons next to the approved alternatives.
package floateq

const eps = 1e-9

func eq(a, b float64) bool {
	return a == b // want `floating-point == compares exact bits`
}

func ne(a, b float64) bool {
	return a != b // want `floating-point != compares exact bits`
}

func isZero(x float64) bool {
	return x == 0 // want `floating-point == compares exact bits`
}

func complexEq(a, b complex128) bool {
	return a == b // want `floating-point == compares exact bits`
}

// near compares with a tolerance: the approved form, passes.
func near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

// intEq compares integers exactly, which is exact by nature: passes.
func intEq(a, b int) bool {
	return a == b
}

// constFold compares two compile-time constants: exact by
// construction, passes.
func constFold() bool {
	return 1.0 == 2.0/2.0
}

// ordered comparisons are not equality: passes.
func less(a, b float64) bool {
	return a < b
}
