// Package globalrand is reprovet golden input: process-global
// randomness and wall-clock reads in a result-producing (non-main)
// package.
package globalrand

import (
	"math/rand"
	"time"
)

// jitter draws from the shared process-global generator.
func jitter() float64 {
	return rand.Float64() // want `math/rand\.Float64 draws from the process-global generator`
}

// stamp reads the wall clock.
func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// elapsed also reads the wall clock, through Since.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// seeded builds its stream from an explicit seed: the invariant's
// approved form, passes.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
