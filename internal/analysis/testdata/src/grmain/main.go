// Command grmain is reprovet golden input: in package main the wall
// clock is presentation (progress reporting), so time.Now/Since pass —
// but global randomness is still flagged.
package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(rand.Intn(10), time.Since(start)) // want `math/rand\.Intn draws from the process-global generator`
}
