// Package mapiter is reprovet golden input: order-sensitive map
// iteration in its common disguises, next to the approved idioms.
package mapiter

import (
	"crypto/sha256"
	"fmt"
	"sort"
)

// firstError returns whichever entry iteration happens to visit first.
func firstError(errs map[string]error) error {
	for name, err := range errs { // want `returns an iteration-dependent value`
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

// sortedKeys is the approved collect-then-sort idiom.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unsortedKeys collects without restoring order.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends iteration-dependent values to "keys" without sorting`
		keys = append(keys, k)
	}
	return keys
}

// printAll streams entries in iteration order.
func printAll(m map[string]int) {
	for k, v := range m { // want `prints iteration-dependent output via fmt\.Println`
		fmt.Println(k, v)
	}
}

// sum is a commutative integer accumulation: order-free, passes.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// floatSum accumulates floats, which is not associative.
func floatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `accumulates into "total" with non-associative`
		total += v
	}
	return total
}

// digest feeds entries to a hash in iteration order.
func digest(m map[string][]byte) [32]byte {
	h := sha256.New()
	for k, v := range m { // want `feeds iteration-dependent bytes to Write`
		h.Write([]byte(k))
		h.Write(v)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// pickAny keeps whichever key iteration visits last.
func pickAny(m map[string]int) (best string) {
	for k := range m { // want `assigns an iteration-dependent value to "best"`
		best = k
	}
	return best
}

// invert writes a map keyed by the iterated values: map writes
// commute, passes.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
