package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON configuration cmd/go writes for a
// `go vet -vettool` invocation (one file per package). Unknown fields
// are ignored, so the decoder tracks the cmd/go schema loosely.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnitchecker implements the `go vet -vettool` tool protocol for
// args (the process arguments after the program name):
//
//   - `-flags` prints the tool's flag schema (none) as JSON;
//   - `-V=full` prints a version line fingerprinting the executable,
//     which cmd/go folds into its action cache key;
//   - a single `<file>.cfg` argument analyzes one package described by
//     the cmd/go-written JSON config.
//
// It reports whether the arguments matched the protocol; when they
// did, the process has exited (the protocol's responses are terminal).
// Diagnostics go to stderr with exit status 2, mirroring
// x/tools/go/analysis/unitchecker.
func RunUnitchecker(analyzers []*Analyzer, args []string) bool {
	for i, a := range args {
		switch {
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			os.Exit(0)
		case a == "-V=full" || a == "--V=full",
			(a == "-V" || a == "--V") && i+1 < len(args) && args[i+1] == "full":
			printVersionAndExit()
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		return false
	}
	os.Exit(runVetCfg(analyzers, args[0]))
	return true
}

// printVersionAndExit emits the tool fingerprint line cmd/go expects
// from -V=full: the executable path, a "devel" version, and a content
// hash that changes whenever the tool is rebuilt, so go vet's result
// caching is invalidated by tool changes.
func printVersionAndExit() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h := sha256.New()
	_, err = io.Copy(h, f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
}

// runVetCfg analyzes the single package described by the vet config
// file and returns the process exit status.
func runVetCfg(analyzers []*Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "reprovet: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go expects the facts output file to exist afterwards; the
	// suite defines no facts, so an empty file satisfies the contract.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	// The driver merges _test.go sources into GoFiles for test
	// variants; reprovet checks production files only, and external
	// test packages reduce to zero files.
	var files []string
	for _, f := range cfg.GoFiles {
		if !isTestFile(f) {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}
	lp, err := typeCheck(fset, imp, cfg.ImportPath, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	res, err := Check(analyzers, lp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if PrintResultsVet(os.Stderr, res) {
		return 2
	}
	return 0
}

// PrintResultsVet prints one package's findings and allow audit in the
// terse form go vet surfaces, returning whether any findings exist.
// The audit lines are emitted only alongside findings: on the success
// path go vet swallows tool output, and the standalone mode is the
// audit's canonical surface.
func PrintResultsVet(w io.Writer, res PackageResult) bool {
	for _, d := range res.Findings {
		fmt.Fprintf(w, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(res.Findings) > 0 && len(res.Allowed) > 0 {
		fmt.Fprintf(w, "%s: %d allowed site(s) via //reprovet:allow\n", res.ImportPath, len(res.Allowed))
	}
	return len(res.Findings) > 0
}
