package analysis_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetTool exercises the real `go vet -vettool` protocol end to
// end: the built reprovet binary must pass a clean repo package and
// fail a module that draws from the process-global generator.
func TestVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the vet tool")
	}
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "reprovet")
	build := exec.Command("go", "build", "-o", tool, "repro/cmd/reprovet")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build reprovet: %v\n%s", err, out)
	}

	clean := exec.Command("go", "vet", "-vettool="+tool, "./internal/platform")
	clean.Dir = "../.."
	if out, err := clean.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool on a clean package: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "mod")
	if err := os.MkdirAll(mod, 0o777); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"go.mod": "module tmpvet\n\ngo 1.24\n",
		"bad.go": "package bad\n\nimport \"math/rand\"\n\nfunc Jitter() float64 { return rand.Float64() }\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(mod, name), []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	dirty := exec.Command("go", "vet", "-vettool="+tool, ".")
	dirty.Dir = mod
	out, err := dirty.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed a package drawing global randomness:\n%s", out)
	}
	if !strings.Contains(string(out), "process-global generator") {
		t.Errorf("vet output lacks the globalrand diagnostic:\n%s", out)
	}
}
