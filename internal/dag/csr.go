package dag

// CSR is a compiled, flat view of a Graph: predecessor and successor
// adjacency in compressed-sparse-row form with a shared edge numbering,
// so hot scheduling loops can replace per-edge map lookups and
// pointer-chasing slices with contiguous array walks. Edge ids are
// assigned in successor-iteration order: tasks 0..n-1, each task's
// Succ() list in adjacency order. The predecessor side lists the same
// edges from the consumer's point of view, preserving the graph's
// Pred() ordering — downstream evaluators accumulate floating-point
// maxima in adjacency order, so both orderings must survive the
// flattening bit-for-bit.
type CSR struct {
	NumTasks int
	NumEdges int

	SuccStart []int32 // len NumTasks+1: task t's successors live at [SuccStart[t], SuccStart[t+1])
	SuccAdj   []int32 // successor task ids, in Succ() order
	SuccEdge  []int32 // edge id of each successor entry

	PredStart []int32 // len NumTasks+1
	PredAdj   []int32 // predecessor task ids, in Pred() order
	PredEdge  []int32 // edge id of each predecessor entry

	Vol []float64 // communication volume per edge id
}

// CSR flattens the graph. The result shares nothing with the Graph and
// stays valid if the Graph is mutated afterwards.
func (g *Graph) CSR() *CSR {
	n := g.n
	e := len(g.vol)
	c := &CSR{
		NumTasks:  n,
		NumEdges:  e,
		SuccStart: make([]int32, n+1),
		SuccAdj:   make([]int32, 0, e),
		SuccEdge:  make([]int32, 0, e),
		PredStart: make([]int32, n+1),
		PredAdj:   make([]int32, 0, e),
		PredEdge:  make([]int32, 0, e),
		Vol:       make([]float64, e),
	}
	edgeID := make(map[[2]Task]int32, e)
	var id int32
	for t := 0; t < n; t++ {
		c.SuccStart[t] = int32(len(c.SuccAdj))
		for _, s := range g.succ[t] {
			key := [2]Task{Task(t), s}
			edgeID[key] = id
			c.Vol[id] = g.vol[key]
			c.SuccAdj = append(c.SuccAdj, int32(s))
			c.SuccEdge = append(c.SuccEdge, id)
			id++
		}
	}
	c.SuccStart[n] = int32(len(c.SuccAdj))
	for t := 0; t < n; t++ {
		c.PredStart[t] = int32(len(c.PredAdj))
		for _, p := range g.pred[t] {
			c.PredAdj = append(c.PredAdj, int32(p))
			c.PredEdge = append(c.PredEdge, edgeID[[2]Task{p, Task(t)}])
		}
	}
	c.PredStart[n] = int32(len(c.PredAdj))
	return c
}

// SortedCSR flattens the graph with every adjacency row sorted by task
// index — exactly the adjacency order of g.Clone(), which inserts edges
// in Edges()'s (from, to) order. The disjunctive evaluation model is
// specified against the cloned graph's iteration order (its
// floating-point accumulations follow adjacency order), so compiled
// evaluators consume this view rather than the insertion-ordered CSR.
// Edge ids are assigned in sorted (from, to) order.
func (g *Graph) SortedCSR() *CSR {
	n := g.n
	edges := g.Edges()
	e := len(edges)
	c := &CSR{
		NumTasks:  n,
		NumEdges:  e,
		SuccStart: make([]int32, n+1),
		SuccAdj:   make([]int32, e),
		SuccEdge:  make([]int32, e),
		PredStart: make([]int32, n+1),
		PredAdj:   make([]int32, e),
		PredEdge:  make([]int32, e),
		Vol:       make([]float64, e),
	}
	for _, ed := range edges {
		c.SuccStart[ed.From+1]++
		c.PredStart[ed.To+1]++
	}
	for t := 0; t < n; t++ {
		c.SuccStart[t+1] += c.SuccStart[t]
		c.PredStart[t+1] += c.PredStart[t]
	}
	succNext := append([]int32(nil), c.SuccStart[:n]...)
	predNext := append([]int32(nil), c.PredStart[:n]...)
	for id, ed := range edges {
		c.Vol[id] = ed.Volume
		k := succNext[ed.From]
		succNext[ed.From]++
		c.SuccAdj[k] = int32(ed.To)
		c.SuccEdge[k] = int32(id)
		// Edges are sorted by (from, to), so for a fixed consumer the
		// producers arrive in ascending order — the cloned graph's
		// Pred() order.
		k = predNext[ed.To]
		predNext[ed.To]++
		c.PredAdj[k] = int32(ed.From)
		c.PredEdge[k] = int32(id)
	}
	return c
}

// Depths returns, for each task, its topological depth (the Levels()
// of the source graph): 0 for sources, otherwise 1 + max over
// predecessors. order must be a valid topological order of the CSR.
func (c *CSR) Depths(order []Task) []int32 {
	depth := make([]int32, c.NumTasks)
	for _, t := range order {
		for k := c.PredStart[t]; k < c.PredStart[t+1]; k++ {
			if d := depth[c.PredAdj[k]] + 1; d > depth[t] {
				depth[t] = d
			}
		}
	}
	return depth
}
