package dag

import (
	"math/rand"
	"testing"
)

// randomDAG builds a random DAG with edges from lower to higher index.
func randomDAG(n int, density float64, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				_ = g.AddEdge(Task(i), Task(j), rng.Float64()*10)
			}
		}
	}
	return g
}

func TestCSRMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(2+rng.Intn(40), 0.2, rng)
		c := g.CSR()
		if c.NumTasks != g.N() || c.NumEdges != g.EdgeCount() {
			t.Fatalf("CSR dims %d/%d, want %d/%d", c.NumTasks, c.NumEdges, g.N(), g.EdgeCount())
		}
		for task := 0; task < g.N(); task++ {
			succ := g.Succ(Task(task))
			lo, hi := c.SuccStart[task], c.SuccStart[task+1]
			if int(hi-lo) != len(succ) {
				t.Fatalf("task %d: %d CSR succs, want %d", task, hi-lo, len(succ))
			}
			for i, s := range succ {
				k := lo + int32(i)
				if Task(c.SuccAdj[k]) != s {
					t.Fatalf("task %d succ %d: CSR order diverges from Succ()", task, i)
				}
				if c.Vol[c.SuccEdge[k]] != g.Volume(Task(task), s) {
					t.Fatalf("edge (%d,%d): volume mismatch", task, s)
				}
			}
			pred := g.Pred(Task(task))
			plo, phi := c.PredStart[task], c.PredStart[task+1]
			if int(phi-plo) != len(pred) {
				t.Fatalf("task %d: %d CSR preds, want %d", task, phi-plo, len(pred))
			}
			for i, p := range pred {
				k := plo + int32(i)
				if Task(c.PredAdj[k]) != p {
					t.Fatalf("task %d pred %d: CSR order diverges from Pred()", task, i)
				}
				if c.Vol[c.PredEdge[k]] != g.Volume(p, Task(task)) {
					t.Fatalf("edge (%d,%d): pred-side volume mismatch", p, task)
				}
			}
		}
	}
}

// Both adjacency sides of the CSR must reference the same edge id for
// the same (from, to) pair — cost tables are indexed by edge id from
// both directions.
func TestCSREdgeIDsShared(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomDAG(30, 0.3, rng)
	c := g.CSR()
	succID := make(map[[2]int32]int32)
	for task := 0; task < c.NumTasks; task++ {
		for k := c.SuccStart[task]; k < c.SuccStart[task+1]; k++ {
			succID[[2]int32{int32(task), c.SuccAdj[k]}] = c.SuccEdge[k]
		}
	}
	for task := 0; task < c.NumTasks; task++ {
		for k := c.PredStart[task]; k < c.PredStart[task+1]; k++ {
			want, ok := succID[[2]int32{c.PredAdj[k], int32(task)}]
			if !ok || c.PredEdge[k] != want {
				t.Fatalf("edge (%d,%d): pred edge id %d, succ side %d",
					c.PredAdj[k], task, c.PredEdge[k], want)
			}
		}
	}
}

func TestCSRDepthsMatchLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomDAG(50, 0.15, rng)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	depths := g.CSR().Depths(order)
	for i := range levels {
		if int(depths[i]) != levels[i] {
			t.Fatalf("task %d: CSR depth %d, Levels %d", i, depths[i], levels[i])
		}
	}
}
