// Package dag implements the task-graph model of the paper:
// G = (V, E, C) where V are tasks, E are precedence edges and C carries
// the communication volume of each edge. It provides topological order,
// top/bottom levels, critical paths and the disjunctive-graph
// augmentation used to evaluate a schedule's makespan distribution.
package dag

import (
	"fmt"
	"sort"
)

// Task identifies a node of the graph (dense indices 0..N-1).
type Task int

// Edge is a directed dependency with a communication volume (the c_ij
// of the paper; the actual transfer time also involves the platform's
// τ and latency matrices).
type Edge struct {
	From, To Task
	Volume   float64
}

// Graph is a directed acyclic task graph. Nodes carry an abstract cost
// (interpreted by the platform model), edges carry communication
// volumes. The zero value is an empty graph; use New.
type Graph struct {
	n     int
	succ  [][]Task
	pred  [][]Task
	vol   map[[2]Task]float64
	names []string
}

// New creates a graph with n nodes and no edges.
func New(n int) *Graph {
	return &Graph{
		n:    n,
		succ: make([][]Task, n),
		pred: make([][]Task, n),
		vol:  make(map[[2]Task]float64),
	}
}

// N returns the number of tasks.
func (g *Graph) N() int { return g.n }

// SetName attaches a human-readable name to task t (used by exporters).
func (g *Graph) SetName(t Task, name string) {
	if g.names == nil {
		g.names = make([]string, g.n)
	}
	g.names[t] = name
}

// Name returns the task's name or "t<i>".
func (g *Graph) Name(t Task) string {
	if g.names != nil && g.names[t] != "" {
		return g.names[t]
	}
	return fmt.Sprintf("t%d", int(t))
}

// AddEdge inserts the dependency from → to with the given communication
// volume. Duplicate edges keep the larger volume. Self-loops and
// out-of-range tasks are rejected.
func (g *Graph) AddEdge(from, to Task, volume float64) error {
	if from == to {
		return fmt.Errorf("dag: self-loop on task %d", from)
	}
	if from < 0 || int(from) >= g.n || to < 0 || int(to) >= g.n {
		return fmt.Errorf("dag: edge (%d,%d) out of range [0,%d)", from, to, g.n)
	}
	key := [2]Task{from, to}
	if old, ok := g.vol[key]; ok {
		if volume > old {
			g.vol[key] = volume
		}
		return nil
	}
	g.vol[key] = volume
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	return nil
}

// HasEdge reports whether from → to exists.
func (g *Graph) HasEdge(from, to Task) bool {
	_, ok := g.vol[[2]Task{from, to}]
	return ok
}

// Volume returns the communication volume of edge from → to (0 if the
// edge does not exist).
func (g *Graph) Volume(from, to Task) float64 { return g.vol[[2]Task{from, to}] }

// Succ returns the successors of t (do not mutate).
func (g *Graph) Succ(t Task) []Task { return g.succ[t] }

// Pred returns the predecessors of t (do not mutate).
func (g *Graph) Pred(t Task) []Task { return g.pred[t] }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return len(g.vol) }

// Edges returns all edges sorted by (from, to).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.vol))
	for k, v := range g.vol {
		out = append(out, Edge{From: k[0], To: k[1], Volume: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Sources returns all tasks without predecessors, in index order.
func (g *Graph) Sources() []Task {
	var out []Task
	for t := 0; t < g.n; t++ {
		if len(g.pred[t]) == 0 {
			out = append(out, Task(t))
		}
	}
	return out
}

// Sinks returns all tasks without successors, in index order.
func (g *Graph) Sinks() []Task {
	var out []Task
	for t := 0; t < g.n; t++ {
		if len(g.succ[t]) == 0 {
			out = append(out, Task(t))
		}
	}
	return out
}

// TopoOrder returns a topological order of the tasks, or an error if
// the graph has a cycle (Kahn's algorithm; ties broken by task index
// for determinism).
func (g *Graph) TopoOrder() ([]Task, error) {
	indeg := make([]int, g.n)
	for t := 0; t < g.n; t++ {
		indeg[t] = len(g.pred[t])
	}
	// Min-index FIFO via sorted frontier for determinism.
	frontier := make([]Task, 0, g.n)
	for t := 0; t < g.n; t++ {
		if indeg[t] == 0 {
			frontier = append(frontier, Task(t))
		}
	}
	order := make([]Task, 0, g.n)
	for len(frontier) > 0 {
		t := frontier[0]
		frontier = frontier[1:]
		order = append(order, t)
		for _, s := range g.succ[t] {
			indeg[s]--
			if indeg[s] == 0 {
				frontier = append(frontier, s)
			}
		}
	}
	if len(order) != g.n {
		return nil, fmt.Errorf("dag: graph has a cycle (%d of %d tasks ordered)", len(order), g.n)
	}
	return order, nil
}

// IsAcyclic reports whether the graph has no cycle.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoOrder()
	return err == nil
}

// Clone returns a deep copy of the graph. Edges are inserted in
// sorted (from, to) order — NOT in map iteration order — so the
// clone's Pred/Succ adjacency orders are deterministic. Downstream
// evaluators accumulate floating-point maxima and sums in adjacency
// order; a map-ordered clone made their low-order bits vary from run
// to run.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for _, e := range g.Edges() {
		_ = c.AddEdge(e.From, e.To, e.Volume)
	}
	if g.names != nil {
		c.names = append([]string(nil), g.names...)
	}
	return c
}

// Levels returns, for each task, its depth: 0 for sources, otherwise
// 1 + max(depth of predecessors).
func (g *Graph) Levels() ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := make([]int, g.n)
	for _, t := range order {
		for _, p := range g.pred[t] {
			if depth[p]+1 > depth[t] {
				depth[t] = depth[p] + 1
			}
		}
	}
	return depth, nil
}
