package dag

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds the 4-node diamond 0→{1,2}→3 with unit volumes.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	for _, e := range [][2]Task{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(1, 1, 0); err == nil {
		t.Error("accepted self-loop")
	}
	if err := g.AddEdge(0, 5, 0); err == nil {
		t.Error("accepted out-of-range edge")
	}
	if err := g.AddEdge(-1, 0, 0); err == nil {
		t.Error("accepted negative task")
	}
	// Duplicate keeps the larger volume and does not duplicate adjacency.
	if err := g.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if g.Volume(0, 1) != 5 {
		t.Errorf("volume = %g, want 5", g.Volume(0, 1))
	}
	if len(g.Succ(0)) != 1 || len(g.Pred(1)) != 1 {
		t.Error("duplicate edge duplicated adjacency")
	}
	if g.EdgeCount() != 1 {
		t.Errorf("edge count = %d, want 1", g.EdgeCount())
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(t)
	if s := g.Sources(); len(s) != 1 || s[0] != 0 {
		t.Errorf("sources = %v, want [0]", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Errorf("sinks = %v, want [3]", s)
	}
}

func TestTopoOrder(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[Task]int)
	for i, t := range order {
		pos[t] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("topo order violates edge %v", e)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := New(3)
	_ = g.AddEdge(0, 1, 0)
	_ = g.AddEdge(1, 2, 0)
	if !g.IsAcyclic() {
		t.Error("chain reported cyclic")
	}
	_ = g.AddEdge(2, 0, 0)
	if g.IsAcyclic() {
		t.Error("cycle not detected")
	}
	if _, err := g.TopoOrder(); err == nil {
		t.Error("TopoOrder accepted a cycle")
	}
}

func TestLevels(t *testing.T) {
	g := diamond(t)
	depth, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for i := range want {
		if depth[i] != want[i] {
			t.Errorf("depth[%d] = %d, want %d", i, depth[i], want[i])
		}
	}
}

func TestTopBottomLevels(t *testing.T) {
	g := diamond(t)
	w := []float64{1, 2, 3, 4}
	edge := func(from, to Task) float64 { return 10 * g.Volume(from, to) }

	tl, err := g.TopLevels(w, edge)
	if err != nil {
		t.Fatal(err)
	}
	// Tl(0)=0; Tl(1)=Tl(2)=1+10=11; Tl(3)=max(11+2,11+3)+10=24.
	wantTl := []float64{0, 11, 11, 24}
	for i := range wantTl {
		if tl[i] != wantTl[i] {
			t.Errorf("Tl[%d] = %g, want %g", i, tl[i], wantTl[i])
		}
	}

	bl, err := g.BottomLevels(w, edge)
	if err != nil {
		t.Fatal(err)
	}
	// Bl(3)=4; Bl(1)=2+10+4=16; Bl(2)=3+10+4=17; Bl(0)=1+10+17=28.
	wantBl := []float64{28, 16, 17, 4}
	for i := range wantBl {
		if bl[i] != wantBl[i] {
			t.Errorf("Bl[%d] = %g, want %g", i, bl[i], wantBl[i])
		}
	}

	cp, err := g.CriticalPathLength(w, edge)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 28 {
		t.Errorf("critical path length = %g, want 28", cp)
	}

	path, err := g.CriticalPath(w, edge)
	if err != nil {
		t.Fatal(err)
	}
	wantPath := []Task{0, 2, 3}
	if len(path) != len(wantPath) {
		t.Fatalf("critical path = %v, want %v", path, wantPath)
	}
	for i := range wantPath {
		if path[i] != wantPath[i] {
			t.Fatalf("critical path = %v, want %v", path, wantPath)
		}
	}
}

func TestSlacks(t *testing.T) {
	g := diamond(t)
	w := []float64{1, 2, 3, 4}
	edge := func(from, to Task) float64 { return 10 * g.Volume(from, to) }
	slacks, err := g.Slacks(w, edge)
	if err != nil {
		t.Fatal(err)
	}
	// M = 28. s0 = 28-0-28 = 0; s1 = 28-11-16 = 1; s2 = 0; s3 = 0.
	want := []float64{0, 1, 0, 0}
	for i := range want {
		if slacks[i] != want[i] {
			t.Errorf("slack[%d] = %g, want %g", i, slacks[i], want[i])
		}
	}
}

func TestSlackNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					_ = g.AddEdge(Task(i), Task(j), rng.Float64()*5)
				}
			}
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64()*10 + 0.1
		}
		edge := func(from, to Task) float64 { return g.Volume(from, to) }
		slacks, err := g.Slacks(w, edge)
		if err != nil {
			return false
		}
		// At least one task must be on the critical path (slack 0) and
		// no slack may be negative.
		sawZero := false
		for _, s := range slacks {
			if s < 0 {
				return false
			}
			if s < 1e-9 {
				sawZero = true
			}
		}
		return sawZero
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	_ = c.AddEdge(1, 2, 7)
	if g.HasEdge(1, 2) {
		t.Error("clone shares edge storage with original")
	}
	if !c.HasEdge(1, 2) {
		t.Error("clone lost its own edge")
	}
}

func TestNames(t *testing.T) {
	g := New(2)
	if g.Name(1) != "t1" {
		t.Errorf("default name = %q, want t1", g.Name(1))
	}
	g.SetName(1, "pivot")
	if g.Name(1) != "pivot" {
		t.Errorf("name = %q, want pivot", g.Name(1))
	}
}

func TestDOT(t *testing.T) {
	g := diamond(t)
	dot := g.DOT("diamond", nil)
	for _, want := range []string{"digraph", "n0 -> n1", "n2 -> n3", "label=\"1\""} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestZeroEdgesHelper(t *testing.T) {
	if ZeroEdges(0, 1) != 0 {
		t.Error("ZeroEdges must return 0")
	}
	g := diamond(t)
	w := []float64{1, 1, 1, 1}
	cp, err := g.CriticalPathLength(w, nil) // nil must behave like ZeroEdges
	if err != nil {
		t.Fatal(err)
	}
	if cp != 3 {
		t.Errorf("critical path without comm = %g, want 3", cp)
	}
}
