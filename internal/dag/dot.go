package dag

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax. nodeLabel may be nil
// (names are used). Edge labels show communication volumes when
// non-zero.
func (g *Graph) DOT(title string, nodeLabel func(Task) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", title)
	for t := 0; t < g.n; t++ {
		label := g.Name(Task(t))
		if nodeLabel != nil {
			label = nodeLabel(Task(t))
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", t, label)
	}
	for _, e := range g.Edges() {
		if e.Volume != 0 { //reprovet:allow floateq zero volume is an exact sentinel for "no data transferred"
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%.3g\"];\n", e.From, e.To, e.Volume)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
