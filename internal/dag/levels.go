package dag

// EdgeWeight gives the (deterministic) cost of traversing an edge, e.g.
// the mean communication time between the processors the two tasks run
// on. Zero for co-located tasks.
type EdgeWeight func(from, to Task) float64

// ZeroEdges is an EdgeWeight that ignores communications.
func ZeroEdges(Task, Task) float64 { return 0 }

// TopLevels returns Tl(i): the length of the longest path from an entry
// node to i, excluding i's own weight (paper §IV). nodeW[i] is the
// (mean) duration of task i.
func (g *Graph) TopLevels(nodeW []float64, edgeW EdgeWeight) ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	if edgeW == nil {
		edgeW = ZeroEdges
	}
	tl := make([]float64, g.n)
	for _, t := range order {
		for _, p := range g.pred[t] {
			cand := tl[p] + nodeW[p] + edgeW(p, t)
			if cand > tl[t] {
				tl[t] = cand
			}
		}
	}
	return tl, nil
}

// BottomLevels returns Bl(i): the length of the longest path from i to
// an exit node, including i's own weight (paper §IV).
func (g *Graph) BottomLevels(nodeW []float64, edgeW EdgeWeight) ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	if edgeW == nil {
		edgeW = ZeroEdges
	}
	bl := make([]float64, g.n)
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		bl[t] = nodeW[t]
		for _, s := range g.succ[t] {
			cand := nodeW[t] + edgeW(t, s) + bl[s]
			if cand > bl[t] {
				bl[t] = cand
			}
		}
	}
	return bl, nil
}

// CriticalPathLength returns the length of the longest entry→exit path
// (node weights plus edge weights), i.e. the deterministic makespan
// lower bound of the DAG with unlimited processors.
func (g *Graph) CriticalPathLength(nodeW []float64, edgeW EdgeWeight) (float64, error) {
	bl, err := g.BottomLevels(nodeW, edgeW)
	if err != nil {
		return 0, err
	}
	var best float64
	for _, t := range g.Sources() {
		if bl[t] > best {
			best = bl[t]
		}
	}
	return best, nil
}

// CriticalPath returns one longest entry→exit path as a task sequence.
func (g *Graph) CriticalPath(nodeW []float64, edgeW EdgeWeight) ([]Task, error) {
	bl, err := g.BottomLevels(nodeW, edgeW)
	if err != nil {
		return nil, err
	}
	if edgeW == nil {
		edgeW = ZeroEdges
	}
	if g.n == 0 {
		return nil, nil
	}
	// Start at the source with the largest bottom level.
	var cur Task = -1
	best := -1.0
	for _, t := range g.Sources() {
		if bl[t] > best {
			best, cur = bl[t], t
		}
	}
	path := []Task{cur}
	for len(g.succ[cur]) > 0 {
		var next Task = -1
		bestNext := -1.0
		for _, s := range g.succ[cur] {
			cand := edgeW(cur, s) + bl[s]
			if cand > bestNext {
				bestNext, next = cand, s
			}
		}
		// The path ends when no successor continues the longest path
		// (all remaining length is cur's own weight).
		if next < 0 || nodeW[cur]+bestNext < bl[cur]-1e-12 {
			break
		}
		path = append(path, next)
		cur = next
	}
	return path, nil
}

// Slacks returns, for each task, s_i = M − Bl(i) − Tl(i) where M is the
// critical-path length (paper §IV). Tasks on a critical path have zero
// slack.
func (g *Graph) Slacks(nodeW []float64, edgeW EdgeWeight) ([]float64, error) {
	tl, err := g.TopLevels(nodeW, edgeW)
	if err != nil {
		return nil, err
	}
	bl, err := g.BottomLevels(nodeW, edgeW)
	if err != nil {
		return nil, err
	}
	var m float64
	for t := 0; t < g.n; t++ {
		if v := tl[t] + bl[t]; v > m {
			m = v
		}
	}
	out := make([]float64, g.n)
	for t := 0; t < g.n; t++ {
		s := m - bl[t] - tl[t]
		if s < 0 {
			s = 0 // guard against rounding noise
		}
		out[t] = s
	}
	return out, nil
}
