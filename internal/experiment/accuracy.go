package experiment

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"repro/internal/heuristics"
	"repro/internal/makespan"
	"repro/internal/robustness"
	"repro/internal/schedule"
	"repro/internal/seeds"
	"repro/internal/stochastic"
)

// AccuracyRow is one setting of the accuracy study: the per-metric
// relative error of evaluating every study case at this accuracy
// instead of the 64-point reference, aggregated over all registered
// workload families. Random-schedule errors (MaxErr/MeanErr) and
// heuristic-schedule errors (HeurMaxErr/HeurMeanErr) are kept apart:
// heuristic schedules are compact where random ones sprawl, so their
// discretization error profile is genuinely different.
type AccuracyRow struct {
	Accuracy    string    `json:"accuracy"` // canonical spelling (ParseEvalAccuracy round-trips it)
	GridSize    int       `json:"grid_size"`
	WorkGrid    int       `json:"work_grid"`
	MaxErr      []float64 `json:"max_rel_err"`                 // random schedules, per metric, MetricNames order
	MeanErr     []float64 `json:"mean_rel_err"`                // random schedules, per metric
	HeurMaxErr  []float64 `json:"heur_max_rel_err,omitempty"`  // heuristic schedules, per metric
	HeurMeanErr []float64 `json:"heur_mean_rel_err,omitempty"` // heuristic schedules, per metric
}

// MaxOverMetrics returns the row's worst per-metric max error across
// both schedule sources.
func (r AccuracyRow) MaxOverMetrics() float64 {
	worst := 0.0
	for _, errs := range [][]float64{r.MaxErr, r.HeurMaxErr} {
		for _, e := range errs {
			if e > worst {
				worst = e
			}
		}
	}
	return worst
}

// AccuracyStudy is the full report: the studied accuracies (the fast
// and coarse presets plus a density-grid sweep under the reference
// resampling policy) against the reference evaluation.
type AccuracyStudy struct {
	Families   []string      `json:"families"`
	Schedules  int           `json:"schedules_per_family"` // random schedules drawn per family
	Heuristics []string      `json:"heuristics"`           // heuristic schedules drawn per family
	Rows       []AccuracyRow `json:"rows"`
}

// relErr is the study's error measure: relative to the reference
// magnitude when it is meaningfully nonzero, absolute otherwise (the
// slack of a zero-slack schedule, a vanishing probability).
func relErr(got, ref float64) float64 {
	d := math.Abs(got - ref)
	if m := math.Abs(ref); m > 1e-9 {
		return d / m
	}
	return d
}

// studyAccuracies lists the settings the study measures: the named
// non-reference presets, then a density-grid sweep under the reference
// resampling policy.
func studyAccuracies() []stochastic.EvalAccuracy {
	accs := []stochastic.EvalAccuracy{stochastic.AccuracyFast, stochastic.AccuracyCoarse}
	for _, g := range []int{8, 16, 32, 48, 96} {
		accs = append(accs, stochastic.EvalAccuracy{GridSize: g}.Canon())
	}
	return accs
}

// studySchedulesPerFamily maps the configured schedule budget onto the
// study's per-family random draw: 1/18 of the budget, clamped to
// [8, 64]. The default budget (150) keeps the historical draw of 8;
// the paper-scale budget (-full, 10 000) saturates at 64 — the study's
// cost is dominated by the reference evaluations, so it scales the
// draw sub-linearly instead of inheriting the full correlation-sample
// count.
func studySchedulesPerFamily(cfg Config) int {
	n := cfg.Schedules / 18
	if n < 8 {
		n = 8
	}
	if n > 64 {
		n = 64
	}
	return n
}

// errAccumulator aggregates per-metric relative errors of one schedule
// source against the reference vectors.
type errAccumulator struct {
	maxErr  [][]float64 // [accuracy][metric]
	sumErr  [][]float64
	samples int
}

func newErrAccumulator(nAccs, nMetrics int) *errAccumulator {
	a := &errAccumulator{
		maxErr: make([][]float64, nAccs),
		sumErr: make([][]float64, nAccs),
	}
	for i := range a.maxErr {
		a.maxErr[i] = make([]float64, nMetrics)
		a.sumErr[i] = make([]float64, nMetrics)
	}
	return a
}

func (a *errAccumulator) add(i int, vec, refVec []float64) {
	for c := range vec {
		e := relErr(vec[c], refVec[c])
		a.sumErr[i][c] += e
		if e > a.maxErr[i][c] {
			a.maxErr[i][c] = e
		}
	}
}

func (a *errAccumulator) mean(i int) []float64 {
	out := make([]float64, len(a.sumErr[i]))
	for c := range out {
		out[c] = a.sumErr[i][c] / float64(a.samples)
	}
	return out
}

// AccuracyStudyRun measures the discretization error of every
// non-reference accuracy: for each registered workload family it draws
// a case, cfg-many random schedules (studySchedulesPerFamily — -full
// widens the draw), and one schedule per registered heuristic, then
// evaluates the full metric vector at the reference accuracy and at
// each studied accuracy, aggregating the per-metric relative errors
// separately for the random and the heuristic schedules. The README's
// "Evaluation accuracy" numbers come from this report (cmd/experiments
// -fig accuracy).
func AccuracyStudyRun(cfg Config) (*AccuracyStudy, error) {
	if err := cfg.ValidateEval(); err != nil {
		return nil, err
	}
	families := FamilyNames()
	sort.Strings(families)
	schedulesPerFamily := studySchedulesPerFamily(cfg)

	hs := heuristics.All()
	sort.Slice(hs, func(i, j int) bool { return hs[i].Name < hs[j].Name })

	accs := studyAccuracies()
	study := &AccuracyStudy{Families: families, Schedules: schedulesPerFamily}
	for _, h := range hs {
		study.Heuristics = append(study.Heuristics, h.Name)
	}
	k := robustness.NumMetrics
	randErr := newErrAccumulator(len(accs), k)
	heurErr := newErrAccumulator(len(accs), k)

	for _, family := range families {
		spec := CaseSpec{
			Name: "accuracy-" + family, Family: family, N: 30, M: 4, UL: 1.2,
			Seed: seeds.Derive(cfg.Seed, "accuracy/"+family),
		}
		scen, err := spec.BuildScenario()
		if err != nil {
			return nil, fmt.Errorf("experiment: accuracy study %s: %w", family, err)
		}
		rng := rand.New(rand.NewSource(seeds.Derive(spec.Seed, "accuracy-schedules")))
		scheds := heuristics.RandomSchedules(scen, schedulesPerFamily, rng)

		refCache := makespan.NewEvalCacheAccuracy(scen, stochastic.AccuracyReference)
		caches := make([]*makespan.EvalCache, len(accs))
		for i, acc := range accs {
			caches[i] = makespan.NewEvalCacheAccuracy(scen, acc)
		}
		measure := func(s *schedule.Schedule, into *errAccumulator) error {
			refModel, err := refCache.Model(s)
			if err != nil {
				return err
			}
			p := cfg.params()
			p.GridSize = stochastic.DefaultGridSize
			refVec := refModel.Metrics(p).Vector()
			into.samples++
			for i, acc := range accs {
				m, err := caches[i].Model(s)
				if err != nil {
					return err
				}
				pa := p
				pa.GridSize = acc.GridSize
				vec := m.Metrics(pa).Vector()
				into.add(i, vec[:], refVec[:])
			}
			return nil
		}
		for _, s := range scheds {
			if err := measure(s, randErr); err != nil {
				return nil, err
			}
		}
		for _, h := range hs {
			hr, err := h.Fn(scen)
			if err != nil {
				return nil, fmt.Errorf("experiment: accuracy study %s heuristic %s: %w", family, h.Name, err)
			}
			if err := measure(hr.Schedule, heurErr); err != nil {
				return nil, err
			}
		}
	}

	for i, acc := range accs {
		study.Rows = append(study.Rows, AccuracyRow{
			Accuracy:    acc.String(),
			GridSize:    acc.GridSize,
			WorkGrid:    acc.WorkGrid,
			MaxErr:      randErr.maxErr[i],
			MeanErr:     randErr.mean(i),
			HeurMaxErr:  heurErr.maxErr[i],
			HeurMeanErr: heurErr.mean(i),
		})
	}
	return study, nil
}

// WriteAccuracy renders the accuracy study as text.
func WriteAccuracy(w io.Writer, st *AccuracyStudy) {
	fmt.Fprintln(w, "# Evaluation accuracy study — per-metric relative error vs the 64-point reference")
	fmt.Fprintf(w, "families: %d, random schedules per family: %d, heuristic schedules per family: %d\n\n",
		len(st.Families), st.Schedules, len(st.Heuristics))
	for _, kind := range []struct {
		name string
		pick func(AccuracyRow) []float64
	}{
		{"max relative error (random schedules)", func(r AccuracyRow) []float64 { return r.MaxErr }},
		{"mean relative error (random schedules)", func(r AccuracyRow) []float64 { return r.MeanErr }},
		{"max relative error (heuristic schedules)", func(r AccuracyRow) []float64 { return r.HeurMaxErr }},
		{"mean relative error (heuristic schedules)", func(r AccuracyRow) []float64 { return r.HeurMeanErr }},
	} {
		rendered := false
		for _, row := range st.Rows {
			errs := kind.pick(row)
			if len(errs) == 0 {
				continue // study predates heuristic-schedule columns
			}
			if !rendered {
				fmt.Fprintf(w, "## %s\n", kind.name)
				fmt.Fprintf(w, "%-18s", "accuracy")
				for _, name := range robustness.MetricNames {
					fmt.Fprintf(w, " %9s", name)
				}
				fmt.Fprintln(w)
				rendered = true
			}
			fmt.Fprintf(w, "%-18s", row.Accuracy)
			for _, e := range errs {
				fmt.Fprintf(w, " %9.2e", e)
			}
			fmt.Fprintln(w)
		}
		if rendered {
			fmt.Fprintln(w)
		}
	}
}
