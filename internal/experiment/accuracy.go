package experiment

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"repro/internal/heuristics"
	"repro/internal/makespan"
	"repro/internal/robustness"
	"repro/internal/seeds"
	"repro/internal/stochastic"
)

// AccuracyRow is one setting of the accuracy study: the per-metric
// relative error of evaluating every study case at this accuracy
// instead of the 64-point reference, aggregated over all registered
// workload families and schedules.
type AccuracyRow struct {
	Accuracy string    `json:"accuracy"` // canonical spelling (ParseEvalAccuracy round-trips it)
	GridSize int       `json:"grid_size"`
	WorkGrid int       `json:"work_grid"`
	MaxErr   []float64 `json:"max_rel_err"`  // per metric, MetricNames order
	MeanErr  []float64 `json:"mean_rel_err"` // per metric, MetricNames order
}

// MaxOverMetrics returns the row's worst per-metric max error.
func (r AccuracyRow) MaxOverMetrics() float64 {
	worst := 0.0
	for _, e := range r.MaxErr {
		if e > worst {
			worst = e
		}
	}
	return worst
}

// AccuracyStudy is the full report: the studied accuracies (the fast
// and coarse presets plus a density-grid sweep under the reference
// resampling policy) against the reference evaluation.
type AccuracyStudy struct {
	Families  []string      `json:"families"`
	Schedules int           `json:"schedules_per_family"`
	Rows      []AccuracyRow `json:"rows"`
}

// relErr is the study's error measure: relative to the reference
// magnitude when it is meaningfully nonzero, absolute otherwise (the
// slack of a zero-slack schedule, a vanishing probability).
func relErr(got, ref float64) float64 {
	d := math.Abs(got - ref)
	if m := math.Abs(ref); m > 1e-9 {
		return d / m
	}
	return d
}

// studyAccuracies lists the settings the study measures: the named
// non-reference presets, then a density-grid sweep under the reference
// resampling policy.
func studyAccuracies() []stochastic.EvalAccuracy {
	accs := []stochastic.EvalAccuracy{stochastic.AccuracyFast, stochastic.AccuracyCoarse}
	for _, g := range []int{8, 16, 32, 48, 96} {
		accs = append(accs, stochastic.EvalAccuracy{GridSize: g}.Canon())
	}
	return accs
}

// AccuracyStudyRun measures the discretization error of every
// non-reference accuracy: for each registered workload family it draws
// a case and a handful of random schedules, evaluates the full metric
// vector at the reference accuracy and at each studied accuracy, and
// aggregates the per-metric relative errors. The README's "Evaluation
// accuracy" numbers come from this report (cmd/experiments
// -fig accuracy).
func AccuracyStudyRun(cfg Config) (*AccuracyStudy, error) {
	if err := cfg.ValidateEval(); err != nil {
		return nil, err
	}
	families := FamilyNames()
	sort.Strings(families)
	const schedulesPerFamily = 8

	accs := studyAccuracies()
	study := &AccuracyStudy{Families: families, Schedules: schedulesPerFamily}
	k := robustness.NumMetrics
	maxErr := make([][]float64, len(accs))
	sumErr := make([][]float64, len(accs))
	for i := range accs {
		maxErr[i] = make([]float64, k)
		sumErr[i] = make([]float64, k)
	}
	samples := 0

	for _, family := range families {
		spec := CaseSpec{
			Name: "accuracy-" + family, Family: family, N: 30, M: 4, UL: 1.2,
			Seed: seeds.Derive(cfg.Seed, "accuracy/"+family),
		}
		scen, err := spec.BuildScenario()
		if err != nil {
			return nil, fmt.Errorf("experiment: accuracy study %s: %w", family, err)
		}
		rng := rand.New(rand.NewSource(seeds.Derive(spec.Seed, "accuracy-schedules")))
		scheds := heuristics.RandomSchedules(scen, schedulesPerFamily, rng)

		refCache := makespan.NewEvalCacheAccuracy(scen, stochastic.AccuracyReference)
		caches := make([]*makespan.EvalCache, len(accs))
		for i, acc := range accs {
			caches[i] = makespan.NewEvalCacheAccuracy(scen, acc)
		}
		for _, s := range scheds {
			refModel, err := refCache.Model(s)
			if err != nil {
				return nil, err
			}
			p := cfg.params()
			p.GridSize = stochastic.DefaultGridSize
			refVec := refModel.Metrics(p).Vector()
			samples++
			for i, acc := range accs {
				m, err := caches[i].Model(s)
				if err != nil {
					return nil, err
				}
				pa := p
				pa.GridSize = acc.GridSize
				vec := m.Metrics(pa).Vector()
				for c := 0; c < k; c++ {
					e := relErr(vec[c], refVec[c])
					sumErr[i][c] += e
					if e > maxErr[i][c] {
						maxErr[i][c] = e
					}
				}
			}
		}
	}

	for i, acc := range accs {
		mean := make([]float64, k)
		for c := range mean {
			mean[c] = sumErr[i][c] / float64(samples)
		}
		study.Rows = append(study.Rows, AccuracyRow{
			Accuracy: acc.String(),
			GridSize: acc.GridSize,
			WorkGrid: acc.WorkGrid,
			MaxErr:   maxErr[i],
			MeanErr:  mean,
		})
	}
	return study, nil
}

// WriteAccuracy renders the accuracy study as text.
func WriteAccuracy(w io.Writer, st *AccuracyStudy) {
	fmt.Fprintln(w, "# Evaluation accuracy study — per-metric relative error vs the 64-point reference")
	fmt.Fprintf(w, "families: %d, schedules per family: %d\n\n", len(st.Families), st.Schedules)
	for _, kind := range []struct {
		name string
		pick func(AccuracyRow) []float64
	}{
		{"max relative error", func(r AccuracyRow) []float64 { return r.MaxErr }},
		{"mean relative error", func(r AccuracyRow) []float64 { return r.MeanErr }},
	} {
		fmt.Fprintf(w, "## %s\n", kind.name)
		fmt.Fprintf(w, "%-18s", "accuracy")
		for _, name := range robustness.MetricNames {
			fmt.Fprintf(w, " %9s", name)
		}
		fmt.Fprintln(w)
		for _, row := range st.Rows {
			fmt.Fprintf(w, "%-18s", row.Accuracy)
			for _, e := range kind.pick(row) {
				fmt.Fprintf(w, " %9.2e", e)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
}
