package experiment

import (
	"context"
	"testing"

	"repro/internal/stochastic"
)

func TestConfigEvalAccuracyValue(t *testing.T) {
	cfg := DefaultConfig()
	acc, err := cfg.EvalAccuracyValue()
	if err != nil {
		t.Fatal(err)
	}
	if !acc.IsReference() {
		t.Errorf("default config accuracy %+v, want reference", acc)
	}
	cfg.GridSize = 48
	if acc, _ = cfg.EvalAccuracyValue(); acc.GridSize != 48 || acc.WorkGrid != stochastic.DefaultMaxWorkGrid {
		t.Errorf("GridSize=48 resolves to %+v", acc)
	}
	// A preset overrides the legacy GridSize field.
	cfg.EvalAccuracy = "coarse"
	if acc, _ = cfg.EvalAccuracyValue(); acc != stochastic.AccuracyCoarse {
		t.Errorf("coarse preset resolves to %+v", acc)
	}
	cfg.EvalAccuracy = "speedy"
	if _, err = cfg.EvalAccuracyValue(); err == nil {
		t.Error("invalid accuracy spelling must be an error")
	}
	if cfg.ValidateEval() == nil {
		t.Error("ValidateEval must reject an invalid spelling")
	}
}

// Accuracy spellings that resolve to the reference resampling policy
// must keep emitting the pre-accuracy (v3) cache keys — introducing the
// knob must not invalidate caches written before it existed.
func TestEvalAccuracyCacheKeyStability(t *testing.T) {
	spec := CaseSpec{Name: "k", Family: RandomFamily, N: 10, M: 3, UL: 1.1, Seed: 7}
	base := DefaultConfig()
	ref, err := CaseCacheKey(spec, base)
	if err != nil {
		t.Fatal(err)
	}

	for _, spelled := range []string{"reference", "grid=64", "grid=64,work=8192"} {
		cfg := base
		cfg.EvalAccuracy = spelled
		key, err := CaseCacheKey(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if key != ref {
			t.Errorf("EvalAccuracy=%q must emit the canonical v3 key", spelled)
		}
	}

	// Changing the density grid changes the key identically whether it
	// is spelled through GridSize or EvalAccuracy.
	byField := base
	byField.GridSize = 48
	fieldKey, err := CaseCacheKey(spec, byField)
	if err != nil {
		t.Fatal(err)
	}
	bySpelling := base
	bySpelling.EvalAccuracy = "grid=48"
	spellKey, err := CaseCacheKey(spec, bySpelling)
	if err != nil {
		t.Fatal(err)
	}
	if fieldKey == ref || fieldKey != spellKey {
		t.Error("grid=48 must change the key and agree with GridSize=48")
	}

	// Non-reference resampling policies namespace into v4 keys.
	seen := map[string]string{"": ref}
	for _, preset := range []string{"fast", "coarse"} {
		cfg := base
		cfg.EvalAccuracy = preset
		key, err := CaseCacheKey(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for prev, prevKey := range seen {
			if key == prevKey {
				t.Errorf("accuracy %q and %q share a cache key", preset, prev)
			}
		}
		seen[preset] = key
	}

	bad := base
	bad.EvalAccuracy = "speedy"
	if _, err := CaseCacheKey(spec, bad); err == nil {
		t.Error("invalid accuracy spelling must be an error, not a silent namespace")
	}
}

// Every driver must reject an invalid accuracy spelling up front.
func TestInvalidAccuracyRejectedByDrivers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Schedules = 2
	cfg.EvalAccuracy = "typo"
	if _, err := Fig1(cfg, []int{6}, 1); err == nil {
		t.Error("Fig1 must reject an invalid accuracy")
	}
	if _, err := Fig2(cfg); err == nil {
		t.Error("Fig2 must reject an invalid accuracy")
	}
	if _, err := Fig9(cfg, 0); err == nil {
		t.Error("Fig9 must reject an invalid accuracy")
	}
	if _, err := VariableUL(cfg, 1); err == nil {
		t.Error("VariableUL must reject an invalid accuracy")
	}
	if _, err := OscillatingDurationsCase(cfg); err == nil {
		t.Error("OscillatingDurationsCase must reject an invalid accuracy")
	}
	spec := CaseSpec{Name: "k", Family: RandomFamily, N: 10, M: 3, UL: 1.1, Seed: 7}
	if _, err := RunCase(spec, cfg); err == nil {
		t.Error("RunCase must reject an invalid accuracy")
	}
	if _, err := RunCases(context.Background(), []CaseSpec{spec}, cfg, RunOptions{}); err == nil {
		t.Error("RunCases must reject an invalid accuracy")
	}
}
