//go:build !race

package experiment

// The end-to-end accuracy study run is too heavy for the race tier;
// the weekly full suite (no -race, no -short) exercises it.

import (
	"testing"

	"repro/internal/robustness"
)

func TestAccuracyStudyRunIncludesHeuristicSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("full accuracy study draws reference evaluations for every family")
	}
	st, err := AccuracyStudyRun(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Heuristics) == 0 {
		t.Fatal("study drew no heuristic schedules")
	}
	for i := 1; i < len(st.Heuristics); i++ {
		if st.Heuristics[i-1] >= st.Heuristics[i] {
			t.Errorf("heuristic order %v not sorted", st.Heuristics)
		}
	}
	for _, row := range st.Rows {
		if len(row.HeurMaxErr) != robustness.NumMetrics || len(row.HeurMeanErr) != robustness.NumMetrics {
			t.Fatalf("row %s lacks per-metric heuristic errors", row.Accuracy)
		}
		for c := range row.HeurMaxErr {
			if row.HeurMaxErr[c] < row.HeurMeanErr[c] {
				t.Errorf("row %s metric %d: max %v < mean %v", row.Accuracy, c, row.HeurMaxErr[c], row.HeurMeanErr[c])
			}
		}
	}
}
