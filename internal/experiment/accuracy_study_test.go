package experiment

import (
	"strings"
	"testing"
)

// -full must widen the accuracy study's draw: the per-family schedule
// count follows the configured budget (clamped), instead of the old
// hard-coded 8 that silently ignored paper-scale runs.
func TestStudySchedulesPerFamilyScalesWithBudget(t *testing.T) {
	for _, tc := range []struct {
		schedules, want int
	}{
		{0, 8},      // degenerate budgets keep the floor
		{150, 8},    // DefaultConfig: the historical draw
		{900, 50},   // scales at 1/18
		{1800, 64},  // clamped at the cap
		{10000, 64}, // PaperConfig (-full)
	} {
		cfg := DefaultConfig()
		cfg.Schedules = tc.schedules
		if got := studySchedulesPerFamily(cfg); got != tc.want {
			t.Errorf("Schedules=%d: per-family draw %d, want %d", tc.schedules, got, tc.want)
		}
	}
}

func syntheticStudy(withHeur bool) *AccuracyStudy {
	row := AccuracyRow{
		Accuracy: "coarse", GridSize: 16, WorkGrid: 512,
		MaxErr:  []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
		MeanErr: []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08},
	}
	st := &AccuracyStudy{Families: []string{"random"}, Schedules: 8}
	if withHeur {
		st.Heuristics = []string{"BIL", "HEFT"}
		row.HeurMaxErr = []float64{1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8}
		row.HeurMeanErr = []float64{0.11, 0.12, 0.13, 0.14, 0.15, 0.16, 0.17, 0.18}
	}
	st.Rows = []AccuracyRow{row}
	return st
}

// The renderer splits random- and heuristic-schedule errors into
// separate sections, and omits the heuristic sections for studies
// (e.g. decoded from pre-extension JSON) that lack those columns.
func TestWriteAccuracySections(t *testing.T) {
	var sb strings.Builder
	WriteAccuracy(&sb, syntheticStudy(true))
	out := sb.String()
	for _, want := range []string{
		"max relative error (random schedules)",
		"mean relative error (random schedules)",
		"max relative error (heuristic schedules)",
		"mean relative error (heuristic schedules)",
		"heuristic schedules per family: 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered study lacks %q", want)
		}
	}

	sb.Reset()
	WriteAccuracy(&sb, syntheticStudy(false))
	if out := sb.String(); strings.Contains(out, "(heuristic schedules)") {
		t.Error("legacy study without heuristic columns rendered heuristic sections")
	}
}

// MaxOverMetrics must consider both schedule sources.
func TestAccuracyRowMaxOverBothSources(t *testing.T) {
	st := syntheticStudy(true)
	if got := st.Rows[0].MaxOverMetrics(); got != 1.8 {
		t.Errorf("MaxOverMetrics = %v, want the heuristic-source worst 1.8", got)
	}
	st = syntheticStudy(false)
	if got := st.Rows[0].MaxOverMetrics(); got != 0.8 {
		t.Errorf("MaxOverMetrics = %v, want 0.8", got)
	}
}
