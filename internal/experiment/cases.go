package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/graphgen"
	"repro/internal/platform"
	"repro/internal/seeds"
)

// GraphKind selects a task-graph family from §V.
type GraphKind int

const (
	// RandomGraph is the layered random generator of §V.
	RandomGraph GraphKind = iota
	// CholeskyGraph is the tiled Cholesky factorization DAG.
	CholeskyGraph
	// GaussElimGraph is the Cosnard et al. Gaussian elimination DAG.
	GaussElimGraph
	// JoinGraph is the N+1-task join of Fig. 9.
	JoinGraph
)

func (k GraphKind) String() string {
	switch k {
	case RandomGraph:
		return "random"
	case CholeskyGraph:
		return "cholesky"
	case GaussElimGraph:
		return "gausselim"
	case JoinGraph:
		return "join"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// CaseSpec defines one experimental case: a graph family and target
// size, a platform size, and an uncertainty level.
type CaseSpec struct {
	Name string
	Kind GraphKind
	N    int // requested task count (generators round to their grid)
	M    int // processors
	UL   float64
	Seed int64
}

// WithDerivedSeed returns a copy of the spec whose seed is derived
// deterministically from a base seed and the spec's identity (name
// and geometry). The derivation is independent of worker count and
// submission order, so ad-hoc sweeps stay reproducible without
// hand-numbering their cases.
func (c CaseSpec) WithDerivedSeed(base int64) CaseSpec {
	c.Seed = seeds.Derive(base,
		fmt.Sprintf("%s/%s/n%d/m%d/ul%g", c.Name, c.Kind, c.N, c.M, c.UL))
	return c
}

// choleskyTiles returns the tile count whose task count is closest to
// n.
func choleskyTiles(n int) int {
	best, bestDiff := 1, 1<<30
	for b := 1; b < 40; b++ {
		c := graphgen.CholeskyTaskCount(b)
		d := c - n
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = b, d
		}
		if c > 4*n {
			break
		}
	}
	return best
}

// gaussElimSize returns the matrix size whose task count is closest to
// n.
func gaussElimSize(n int) int {
	best, bestDiff := 2, 1<<30
	for b := 2; b < 80; b++ {
		c := graphgen.GaussElimTaskCount(b)
		d := c - n
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = b, d
		}
		if c > 4*n {
			break
		}
	}
	return best
}

// BuildScenario deterministically constructs the scenario of the case:
// graph, weights and platform all derive from the case seed.
func (c CaseSpec) BuildScenario() (*platform.Scenario, error) {
	rng := rand.New(rand.NewSource(c.Seed))
	var g *dag.Graph
	var etc [][]float64
	switch c.Kind {
	case RandomGraph:
		var weights []float64
		g, weights = graphgen.Random(graphgen.DefaultRandomParams(c.N), rng)
		etc = platform.GenerateETCFromWeights(weights, c.M, 0.5, rng)
	case CholeskyGraph:
		g = graphgen.Cholesky(choleskyTiles(c.N), 10, 20, rng)
		etc = platform.GenerateETCUniform(g.N(), c.M, 10, 20, rng)
	case GaussElimGraph:
		g = graphgen.GaussElim(gaussElimSize(c.N), 10, 20, rng)
		etc = platform.GenerateETCUniform(g.N(), c.M, 10, 20, rng)
	case JoinGraph:
		g = graphgen.Join(c.N, 0)
		etc = platform.GenerateETCUniform(g.N(), c.M, 10, 20, rng)
	default:
		return nil, fmt.Errorf("experiment: unknown graph kind %v", c.Kind)
	}
	if g.N() == 0 {
		return nil, fmt.Errorf("experiment: case %q produced an empty graph", c.Name)
	}
	tau, lat := platform.NewUniformNetwork(c.M, 1, 0) // latency negligible per §V
	p := &platform.Platform{M: c.M, ETC: etc, Tau: tau, Lat: lat}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &platform.Scenario{G: g, P: p, UL: c.UL}, nil
}

// Fig3Case is the paper's Fig. 3: Cholesky, 10 tasks, 3 processors,
// UL = 1.01.
func Fig3Case(seed int64) CaseSpec {
	return CaseSpec{Name: "fig3-cholesky-10", Kind: CholeskyGraph, N: 10, M: 3, UL: 1.01, Seed: seed}
}

// Fig4Case is the paper's Fig. 4: random graph, 30 tasks, 8
// processors, UL = 1.01.
func Fig4Case(seed int64) CaseSpec {
	return CaseSpec{Name: "fig4-random-30", Kind: RandomGraph, N: 30, M: 8, UL: 1.01, Seed: seed}
}

// Fig5Case is the paper's Fig. 5: Gaussian elimination, ~103 tasks, 16
// processors, UL = 1.1.
func Fig5Case(seed int64) CaseSpec {
	return CaseSpec{Name: "fig5-gausselim-103", Kind: GaussElimGraph, N: 103, M: 16, UL: 1.1, Seed: seed}
}

// Fig6Cases returns the 24 correlation cases aggregated in Fig. 6: the
// three graph families at sizes ≈{10, 30, 100} with UL ∈ {1.01, 1.1},
// plus additional random-graph instances (the paper generated up to 10
// random graphs per size), platform sizes following the figures
// (3 procs for ~10 tasks, 8 for ~30, 16 for ~100).
func Fig6Cases(seed int64) []CaseSpec {
	sizes := []struct{ n, m int }{{10, 3}, {30, 8}, {100, 16}}
	uls := []float64{1.01, 1.1}
	var cases []CaseSpec
	id := 0
	add := func(kind GraphKind, n, m int, ul float64, rep int) {
		id++
		cases = append(cases, CaseSpec{
			Name: fmt.Sprintf("fig6-%02d-%s-n%d-ul%g-r%d", id, kind, n, ul, rep),
			Kind: kind, N: n, M: m, UL: ul,
			Seed: seed + int64(id)*1000,
		})
	}
	for _, sz := range sizes {
		for _, ul := range uls {
			add(CholeskyGraph, sz.n, sz.m, ul, 0)
			add(GaussElimGraph, sz.n, sz.m, ul, 0)
			add(RandomGraph, sz.n, sz.m, ul, 0)
			add(RandomGraph, sz.n, sz.m, ul, 1) // second random instance
		}
	}
	return cases
}
