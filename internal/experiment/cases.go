package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/platform"
	"repro/internal/seeds"
)

// CaseSpec defines one experimental case: a workload family (by its
// registered name) and target size, a platform size, and an
// uncertainty level.
type CaseSpec struct {
	Name   string
	Family string // registered workload family name (see FamilyNames)
	N      int    // requested task count (families round to their size grid)
	M      int    // processors
	UL     float64
	Seed   int64
}

// WithDerivedSeed returns a copy of the spec whose seed is derived
// deterministically from a base seed and the spec's identity (name
// and geometry). The derivation is independent of worker count and
// submission order, so ad-hoc sweeps stay reproducible without
// hand-numbering their cases.
func (c CaseSpec) WithDerivedSeed(base int64) CaseSpec {
	c.Seed = seeds.Derive(base,
		fmt.Sprintf("%s/%s/n%d/m%d/ul%g", c.Name, c.Family, c.N, c.M, c.UL))
	return c
}

// BuildScenario deterministically constructs the scenario of the case:
// graph, weights and platform all derive from the case seed. The
// workload family is resolved through the registry; a size the family
// grid cannot approximate within a factor of two is a *SizeError, not
// a silently clamped graph.
func (c CaseSpec) BuildScenario() (*platform.Scenario, error) {
	fam, err := FamilyByName(c.Family)
	if err != nil {
		return nil, err
	}
	size, err := fam.RoundSize(c.N)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	g, weights, err := fam.Generate(size, rng)
	if err != nil {
		return nil, err
	}
	if g != nil && g.N() != size {
		return nil, fmt.Errorf("experiment: family %q generated %d tasks for rounded size %d",
			c.Family, g.N(), size)
	}
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("experiment: case %q produced an empty graph", c.Name)
	}
	var etc [][]float64
	if weights != nil {
		etc = platform.GenerateETCFromWeights(weights, c.M, 0.5, rng)
	} else {
		etc = platform.GenerateETCUniform(g.N(), c.M, 10, 20, rng)
	}
	tau, lat := platform.NewUniformNetwork(c.M, 1, 0) // latency negligible per §V
	p := &platform.Platform{M: c.M, ETC: etc, Tau: tau, Lat: lat}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &platform.Scenario{G: g, P: p, UL: c.UL}, nil
}

// Fig3Case is the paper's Fig. 3: Cholesky, 10 tasks, 3 processors,
// UL = 1.01.
func Fig3Case(seed int64) CaseSpec {
	return CaseSpec{Name: "fig3-cholesky-10", Family: CholeskyFamily, N: 10, M: 3, UL: 1.01, Seed: seed}
}

// Fig4Case is the paper's Fig. 4: random graph, 30 tasks, 8
// processors, UL = 1.01.
func Fig4Case(seed int64) CaseSpec {
	return CaseSpec{Name: "fig4-random-30", Family: RandomFamily, N: 30, M: 8, UL: 1.01, Seed: seed}
}

// Fig5Case is the paper's Fig. 5: Gaussian elimination, ~103 tasks, 16
// processors, UL = 1.1.
func Fig5Case(seed int64) CaseSpec {
	return CaseSpec{Name: "fig5-gausselim-103", Family: GaussElimFamily, N: 103, M: 16, UL: 1.1, Seed: seed}
}

// Fig6Cases returns the 24 correlation cases aggregated in Fig. 6: the
// three graph families at sizes ≈{10, 30, 100} with UL ∈ {1.01, 1.1},
// plus additional random-graph instances (the paper generated up to 10
// random graphs per size), platform sizes following the figures
// (3 procs for ~10 tasks, 8 for ~30, 16 for ~100). It is the Fig. 6
// instance of the generalized Sweep grid.
func Fig6Cases(seed int64) []CaseSpec {
	cases, err := Sweep{
		NamePrefix: "fig6",
		Families:   []string{CholeskyFamily, GaussElimFamily, RandomFamily},
		Sizes:      []int{10, 30, 100},
		ULs:        []float64{1.01, 1.1},
		RepsFor:    map[string]int{RandomFamily: 2}, // second random instance
	}.Cases(seed)
	if err != nil {
		// The grid is static and covered by tests; reaching this is a
		// programming bug, not an input error.
		panic(err)
	}
	return cases
}
