// Package experiment reproduces the evaluation of the paper: the 52
// experimental cases of §V (scaled-down defaults, paper-scale behind
// Full), the correlation matrices of Figs. 3–6, the accuracy studies of
// Figs. 1–2, the central-limit studies of Figs. 7–8, and the slack
// case study of Fig. 9.
package experiment

import (
	"runtime"
	"time"

	"repro/internal/makespan"
	"repro/internal/robustness"
	"repro/internal/stochastic"
)

// Config controls the scale of every driver. The zero value is not
// usable; call DefaultConfig or PaperConfig.
type Config struct {
	Schedules      int     // random schedules per case (paper: 10000, 2000 for n=100)
	MCRealizations int     // Monte-Carlo realizations (paper: 100000)
	GridSize       int     // density samples (paper: 64)
	Workers        int     // parallel workers; <= 0 selects GOMAXPROCS
	Seed           int64   // base RNG seed
	Delta          float64 // absolute probabilistic half-width (paper: 0.1)
	Gamma          float64 // relative probabilistic factor (paper: 1.0003)

	// MCSampler selects the Monte-Carlo realization samplers: "exact"
	// (or empty) for the bit-stable reference stream, "table" for the
	// inverse-CDF Beta tables — several times faster, distributions
	// identical within 1/stochastic.BetaTableSize in Kolmogorov
	// distance.
	MCSampler string
	// MCBlockSize is the realizations-per-batch granularity of the
	// kernel (schedule.DefaultBlockSize when <= 0). Each block owns
	// one RNG stream, so changing it changes the drawn realizations
	// (never their distribution).
	MCBlockSize int

	// EvalAccuracy selects the numeric evaluation accuracy: empty keeps
	// the reference resampling policy at GridSize; otherwise a preset
	// name ("reference", "fast", "coarse") or an explicit
	// "grid=G[,work=W]" spelling (stochastic.ParseEvalAccuracy), which
	// overrides GridSize. An invalid spelling is an error, never a
	// silent fallback.
	EvalAccuracy string

	// CaseTimeout bounds the wall-clock time of one case attempt;
	// <= 0 means no per-case deadline. Result-neutral: a case either
	// completes (same bytes as without the deadline) or fails the
	// attempt with a timeout, so the timeout never enters cache keys.
	CaseTimeout time.Duration
	// MaxRetries is the number of supervised re-attempts after a
	// case's first failed attempt (panic, timeout, or error). Each
	// re-attempt is a clean re-run from the case seed, so a retried
	// case is byte-identical to one that succeeded first try.
	MaxRetries int
	// DegradeOnTimeout arms the degradation ladder: when every timed
	// attempt of a case hit CaseTimeout, one final attempt re-runs at
	// the next coarser stochastic.EvalAccuracy preset — without the
	// deadline, delivering a coarser result instead of none. The
	// degradation is recorded on the result row (CaseResult.Degraded)
	// and in the RunReport, so outputs stay honest.
	DegradeOnTimeout bool
}

// DefaultConfig returns laptop-scale settings: every driver finishes in
// seconds to a couple of minutes while preserving the paper's
// correlation structure (correlations stabilize well below 10 000
// schedules).
func DefaultConfig() Config {
	return Config{
		Schedules:      150,
		MCRealizations: 20000,
		GridSize:       64,
		Workers:        runtime.GOMAXPROCS(0),
		Seed:           1,
		Delta:          0.1,
		Gamma:          1.0003,
	}
}

// PaperConfig returns the paper-scale settings (hours of compute).
// At 100 000 realizations per schedule the Monte-Carlo cost dominates,
// so paper scale selects the table samplers.
func PaperConfig() Config {
	c := DefaultConfig()
	c.Schedules = 10000
	c.MCRealizations = 100000
	c.MCSampler = stochastic.SamplerTable.String()
	return c
}

// BenchConfig returns a minimal configuration for benchmarks.
func BenchConfig() Config {
	c := DefaultConfig()
	c.Schedules = 30
	c.MCRealizations = 3000
	return c
}

// params converts the config into metric parameters.
func (c Config) params() robustness.Params {
	return robustness.Params{Delta: c.Delta, Gamma: c.Gamma, GridSize: c.GridSize}
}

// EvalAccuracyValue resolves the effective evaluation accuracy: the
// EvalAccuracy spelling when set (its grid overrides GridSize),
// otherwise the legacy GridSize field under the reference resampling
// policy — so configs written before the accuracy knob existed resolve
// to bit-identical evaluations.
func (c Config) EvalAccuracyValue() (stochastic.EvalAccuracy, error) {
	if c.EvalAccuracy == "" {
		return stochastic.EvalAccuracy{GridSize: c.GridSize}.Canon(), nil
	}
	return stochastic.ParseEvalAccuracy(c.EvalAccuracy)
}

// ValidateEval checks the EvalAccuracy spelling.
func (c Config) ValidateEval() error {
	_, err := c.EvalAccuracyValue()
	return err
}

// resolveAccuracy resolves the effective accuracy and aligns GridSize
// with it, so drivers that resolve once keep cache construction and
// metric parameters (params) on the same grid.
func (c Config) resolveAccuracy() (Config, stochastic.EvalAccuracy, error) {
	acc, err := c.EvalAccuracyValue()
	if err != nil {
		return c, acc, err
	}
	c.GridSize = acc.GridSize
	return c, acc, nil
}

// mcOptions converts the config into Monte-Carlo kernel options. An
// invalid MCSampler spelling is an error, never a silent fallback —
// library callers get the same diagnostic the CLI's ValidateMC gives.
func (c Config) mcOptions() (makespan.MCOptions, error) {
	mode, err := stochastic.ParseSamplerMode(c.MCSampler)
	if err != nil {
		return makespan.MCOptions{}, err
	}
	return makespan.MCOptions{Sampler: mode, BlockSize: c.MCBlockSize, Workers: c.Workers}, nil
}

// ValidateMC checks the Monte-Carlo fields (currently the sampler-mode
// spelling).
func (c Config) ValidateMC() error {
	_, err := stochastic.ParseSamplerMode(c.MCSampler)
	return err
}

// workers returns the effective worker count.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// degraded steps the config one notch down the accuracy ladder
// (stochastic.EvalAccuracy.Degrade); ok is false when the spelling is
// invalid or no coarser preset exists.
func (c Config) degraded() (Config, stochastic.EvalAccuracy, bool) {
	acc, err := c.EvalAccuracyValue()
	if err != nil {
		return c, acc, false
	}
	dacc, ok := acc.Degrade()
	if !ok {
		return c, acc, false
	}
	c.EvalAccuracy = dacc.String()
	c.GridSize = dacc.GridSize
	return c, dacc, true
}

// schedulesFor scales the per-case schedule count the way the paper
// does: large graphs get a fifth of the budget (10000 → 2000).
func (c Config) schedulesFor(n int) int {
	if n >= 100 {
		s := c.Schedules / 5
		if s < 20 {
			s = 20
		}
		return s
	}
	return c.Schedules
}
