// Package experiment reproduces the evaluation of the paper: the 52
// experimental cases of §V (scaled-down defaults, paper-scale behind
// Full), the correlation matrices of Figs. 3–6, the accuracy studies of
// Figs. 1–2, the central-limit studies of Figs. 7–8, and the slack
// case study of Fig. 9.
package experiment

import (
	"runtime"

	"repro/internal/robustness"
)

// Config controls the scale of every driver. The zero value is not
// usable; call DefaultConfig or PaperConfig.
type Config struct {
	Schedules      int     // random schedules per case (paper: 10000, 2000 for n=100)
	MCRealizations int     // Monte-Carlo realizations (paper: 100000)
	GridSize       int     // density samples (paper: 64)
	Workers        int     // parallel workers; <= 0 selects GOMAXPROCS
	Seed           int64   // base RNG seed
	Delta          float64 // absolute probabilistic half-width (paper: 0.1)
	Gamma          float64 // relative probabilistic factor (paper: 1.0003)
}

// DefaultConfig returns laptop-scale settings: every driver finishes in
// seconds to a couple of minutes while preserving the paper's
// correlation structure (correlations stabilize well below 10 000
// schedules).
func DefaultConfig() Config {
	return Config{
		Schedules:      150,
		MCRealizations: 20000,
		GridSize:       64,
		Workers:        runtime.GOMAXPROCS(0),
		Seed:           1,
		Delta:          0.1,
		Gamma:          1.0003,
	}
}

// PaperConfig returns the paper-scale settings (hours of compute).
func PaperConfig() Config {
	c := DefaultConfig()
	c.Schedules = 10000
	c.MCRealizations = 100000
	return c
}

// BenchConfig returns a minimal configuration for benchmarks.
func BenchConfig() Config {
	c := DefaultConfig()
	c.Schedules = 30
	c.MCRealizations = 3000
	return c
}

// params converts the config into metric parameters.
func (c Config) params() robustness.Params {
	return robustness.Params{Delta: c.Delta, Gamma: c.Gamma, GridSize: c.GridSize}
}

// workers returns the effective worker count.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// schedulesFor scales the per-case schedule count the way the paper
// does: large graphs get a fifth of the budget (10000 → 2000).
func (c Config) schedulesFor(n int) int {
	if n >= 100 {
		s := c.Schedules / 5
		if s < 20 {
			s = 20
		}
		return s
	}
	return c.Schedules
}
