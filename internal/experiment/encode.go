package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/robustness"
)

// This file provides the machine-readable encodings of the experiment
// results: JSON documents with stable, versioned schemas for
// CaseResult and Fig6Result (the figure row types marshal directly via
// their struct tags), and CSV for the correlation matrices.
//
// Correlation entries can be NaN (degenerate columns, e.g. the slack
// of single-processor platforms), which encoding/json rejects; the
// JSONFloat wrapper encodes non-finite values as the strings "NaN",
// "+Inf" and "-Inf", so documents round-trip exactly.

// JSONFloat is a float64 whose non-finite values survive JSON: NaN and
// ±Inf encode as the strings "NaN", "+Inf", "-Inf" (plain numbers
// otherwise), and all four forms — plus null, read as NaN — decode
// back.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"NaN"`, "null":
		*f = JSONFloat(math.NaN())
		return nil
	case `"+Inf"`, `"Inf"`:
		*f = JSONFloat(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = JSONFloat(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

func toJSONFloats(xs []float64) []JSONFloat {
	out := make([]JSONFloat, len(xs))
	for i, x := range xs {
		out[i] = JSONFloat(x)
	}
	return out
}

func fromJSONFloats(xs []JSONFloat) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

func toJSONMatrix(m [][]float64) [][]JSONFloat {
	out := make([][]JSONFloat, len(m))
	for i, row := range m {
		out[i] = toJSONFloats(row)
	}
	return out
}

func fromJSONMatrix(m [][]JSONFloat) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = fromJSONFloats(row)
	}
	return out
}

// Schema tags embedded in the JSON documents; bump on breaking layout
// changes so downstream consumers can detect them.
const (
	CaseResultSchema = "repro/case-result/v1"
	Fig6Schema       = "repro/fig6/v1"
)

// caseSpecJSON mirrors CaseSpec with the workload family by its stable
// name. The JSON key stays "kind" for v1-schema compatibility — the
// old GraphKind already serialized as the same name strings, so
// documents written before the registry landed decode unchanged.
type caseSpecJSON struct {
	Name   string  `json:"name"`
	Family string  `json:"kind"`
	N      int     `json:"n"`
	M      int     `json:"m"`
	UL     float64 `json:"ul"`
	Seed   int64   `json:"seed"`
}

func specToJSON(s CaseSpec) caseSpecJSON {
	return caseSpecJSON{Name: s.Name, Family: s.Family, N: s.N, M: s.M, UL: s.UL, Seed: s.Seed}
}

func specFromJSON(s caseSpecJSON) (CaseSpec, error) {
	// Resolve through the registry so a document naming an unknown
	// family fails loudly at decode time, not at BuildScenario.
	if _, err := FamilyByName(s.Family); err != nil {
		return CaseSpec{}, err
	}
	return CaseSpec{Name: s.Name, Family: s.Family, N: s.N, M: s.M, UL: s.UL, Seed: s.Seed}, nil
}

// metricsJSON mirrors robustness.Metrics in Vector order.
type metricsJSON struct {
	Makespan    JSONFloat `json:"makespan"`
	StdDev      JSONFloat `json:"stddev"`
	Entropy     JSONFloat `json:"entropy"`
	AvgSlack    JSONFloat `json:"slack"`
	SlackStdDev JSONFloat `json:"slackstd"`
	Lateness    JSONFloat `json:"lateness"`
	AbsProb     JSONFloat `json:"absprob"`
	RelProb     JSONFloat `json:"relprob"`
}

func metricsToJSON(m robustness.Metrics) metricsJSON {
	return metricsJSON{
		Makespan:    JSONFloat(m.Makespan),
		StdDev:      JSONFloat(m.StdDev),
		Entropy:     JSONFloat(m.Entropy),
		AvgSlack:    JSONFloat(m.AvgSlack),
		SlackStdDev: JSONFloat(m.SlackStdDev),
		Lateness:    JSONFloat(m.Lateness),
		AbsProb:     JSONFloat(m.AbsProb),
		RelProb:     JSONFloat(m.RelProb),
	}
}

func metricsFromJSON(m metricsJSON) robustness.Metrics {
	return robustness.Metrics{
		Makespan:    float64(m.Makespan),
		StdDev:      float64(m.StdDev),
		Entropy:     float64(m.Entropy),
		AvgSlack:    float64(m.AvgSlack),
		SlackStdDev: float64(m.SlackStdDev),
		Lateness:    float64(m.Lateness),
		AbsProb:     float64(m.AbsProb),
		RelProb:     float64(m.RelProb),
	}
}

type heuristicJSON struct {
	Name    string      `json:"name"`
	Metrics metricsJSON `json:"metrics"`
}

type caseResultJSON struct {
	Schema             string          `json:"schema"`
	Spec               caseSpecJSON    `json:"spec"`
	MetricNames        []string        `json:"metric_names"`
	Metrics            []metricsJSON   `json:"metrics"`
	Heuristics         []heuristicJSON `json:"heuristics"`
	Corr               [][]JSONFloat   `json:"corr"`
	RelByMakespanVsStd JSONFloat       `json:"rel_by_makespan_vs_std"`
}

// MarshalJSON encodes the case with the repro/case-result/v1 schema.
func (r *CaseResult) MarshalJSON() ([]byte, error) {
	doc := caseResultJSON{
		Schema:             CaseResultSchema,
		Spec:               specToJSON(r.Spec),
		MetricNames:        metricShortNames,
		Metrics:            make([]metricsJSON, len(r.Metrics)),
		Heuristics:         make([]heuristicJSON, len(r.Heuristics)),
		Corr:               toJSONMatrix(r.Corr),
		RelByMakespanVsStd: JSONFloat(r.RelByMakespanVsStd),
	}
	for i, m := range r.Metrics {
		doc.Metrics[i] = metricsToJSON(m)
	}
	for i, h := range r.Heuristics {
		doc.Heuristics[i] = heuristicJSON{Name: h.Name, Metrics: metricsToJSON(h.Metrics)}
	}
	return json.Marshal(doc)
}

// UnmarshalJSON decodes a repro/case-result/v1 document.
func (r *CaseResult) UnmarshalJSON(b []byte) error {
	var doc caseResultJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	if doc.Schema != CaseResultSchema {
		return fmt.Errorf("experiment: case document has schema %q, want %q", doc.Schema, CaseResultSchema)
	}
	spec, err := specFromJSON(doc.Spec)
	if err != nil {
		return err
	}
	out := CaseResult{
		Spec:               spec,
		Metrics:            make([]robustness.Metrics, len(doc.Metrics)),
		Corr:               fromJSONMatrix(doc.Corr),
		RelByMakespanVsStd: float64(doc.RelByMakespanVsStd),
	}
	for i, m := range doc.Metrics {
		out.Metrics[i] = metricsFromJSON(m)
	}
	for _, h := range doc.Heuristics {
		out.Heuristics = append(out.Heuristics, HeuristicResult{Name: h.Name, Metrics: metricsFromJSON(h.Metrics)})
	}
	*r = out
	return nil
}

type fig6JSON struct {
	Schema         string        `json:"schema"`
	MetricNames    []string      `json:"metric_names"`
	Cases          []*CaseResult `json:"cases"`
	Mean           [][]JSONFloat `json:"mean"`
	Std            [][]JSONFloat `json:"std"`
	RelByMkspnMean JSONFloat     `json:"rel_by_makespan_vs_std_mean"`
	RelByMkspnStd  JSONFloat     `json:"rel_by_makespan_vs_std_std"`
}

// MarshalJSON encodes the aggregate with the repro/fig6/v1 schema.
func (r *Fig6Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(fig6JSON{
		Schema:         Fig6Schema,
		MetricNames:    metricShortNames,
		Cases:          r.Cases,
		Mean:           toJSONMatrix(r.Mean),
		Std:            toJSONMatrix(r.Std),
		RelByMkspnMean: JSONFloat(r.RelByMkspnMean),
		RelByMkspnStd:  JSONFloat(r.RelByMkspnStd),
	})
}

// UnmarshalJSON decodes a repro/fig6/v1 document.
func (r *Fig6Result) UnmarshalJSON(b []byte) error {
	var doc fig6JSON
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	if doc.Schema != Fig6Schema {
		return fmt.Errorf("experiment: fig6 document has schema %q, want %q", doc.Schema, Fig6Schema)
	}
	*r = Fig6Result{
		Cases:          doc.Cases,
		Mean:           fromJSONMatrix(doc.Mean),
		Std:            fromJSONMatrix(doc.Std),
		RelByMkspnMean: float64(doc.RelByMkspnMean),
		RelByMkspnStd:  float64(doc.RelByMkspnStd),
	}
	return nil
}

// variableULAlias strips the methods so the embedded remainder of
// VariableULResult marshals with the default field encoding.
type variableULAlias VariableULResult

// variableULJSON shadows the two Pearson correlations — the only
// fields of the report that can be NaN (degenerate metric columns) —
// with the NaN-safe wrapper; every other field passes through.
type variableULJSON struct {
	ConstCorr JSONFloat `json:"const_corr"`
	VarCorr   JSONFloat `json:"var_corr"`
	*variableULAlias
}

// MarshalJSON keeps `-fig ul -json` working when a correlation is
// NaN, which encoding/json would otherwise reject.
func (r *VariableULResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(variableULJSON{
		ConstCorr:       JSONFloat(r.ConstCorr),
		VarCorr:         JSONFloat(r.VarCorr),
		variableULAlias: (*variableULAlias)(r),
	})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (r *VariableULResult) UnmarshalJSON(b []byte) error {
	var doc variableULJSON
	doc.variableULAlias = (*variableULAlias)(r)
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	r.ConstCorr = float64(doc.ConstCorr)
	r.VarCorr = float64(doc.VarCorr)
	return nil
}

// WriteJSON renders any result value as indented JSON (one document,
// trailing newline) — the machine-readable twin of the WriteFigN text
// reports.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// formatCSVFloat renders a float for CSV with full round-trip
// precision; non-finite values use the same spellings as the JSON
// encoding.
func formatCSVFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMatrixCSV writes a labelled square matrix as CSV: a header row
// of metric names, then one row per metric with its name in the first
// column.
func WriteMatrixCSV(w io.Writer, names []string, m [][]float64) error {
	if len(m) != len(names) {
		return fmt.Errorf("experiment: matrix has %d rows for %d names", len(m), len(names))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"metric"}, names...)); err != nil {
		return err
	}
	for i, row := range m {
		if len(row) != len(names) {
			return fmt.Errorf("experiment: row %d has %d columns for %d names", i, len(row), len(names))
		}
		rec := make([]string, 0, len(names)+1)
		rec = append(rec, names[i])
		for _, v := range row {
			rec = append(rec, formatCSVFloat(v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCorrCSV writes a case's Pearson matrix as CSV.
func WriteCorrCSV(w io.Writer, res *CaseResult) error {
	return WriteMatrixCSV(w, metricShortNames, res.Corr)
}

// WriteFig6CSV writes the aggregated mean and std matrices as two CSV
// tables separated by a blank line, each preceded by a single-field
// title row.
func WriteFig6CSV(w io.Writer, res *Fig6Result) error {
	if _, err := fmt.Fprintln(w, "mean"); err != nil {
		return err
	}
	if err := WriteMatrixCSV(w, metricShortNames, res.Mean); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "\nstd"); err != nil {
		return err
	}
	return WriteMatrixCSV(w, metricShortNames, res.Std)
}
