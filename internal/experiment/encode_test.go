package experiment

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/robustness"
)

func TestJSONFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -2.25, 1e-300, math.MaxFloat64, 0.1,
		math.NaN(), math.Inf(1), math.Inf(-1)} {
		b, err := json.Marshal(JSONFloat(v))
		if err != nil {
			t.Fatalf("marshal %g: %v", v, err)
		}
		var got JSONFloat
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		g := float64(got)
		if math.IsNaN(v) {
			if !math.IsNaN(g) {
				t.Errorf("NaN round-tripped to %g", g)
			}
		} else if g != v {
			t.Errorf("%g round-tripped to %g (via %s)", v, g, b)
		}
	}
}

func TestJSONFloatAcceptsNullAndInfSpellings(t *testing.T) {
	var f JSONFloat
	if err := json.Unmarshal([]byte("null"), &f); err != nil || !math.IsNaN(float64(f)) {
		t.Errorf("null decoded to (%g, %v), want NaN", float64(f), err)
	}
	if err := json.Unmarshal([]byte(`"Inf"`), &f); err != nil || !math.IsInf(float64(f), 1) {
		t.Errorf(`"Inf" decoded to (%g, %v), want +Inf`, float64(f), err)
	}
	if err := json.Unmarshal([]byte(`"nonsense"`), &f); err == nil {
		t.Error("garbage string accepted")
	}
}

// sameFloat compares with NaN == NaN.
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

func sameMetrics(a, b robustness.Metrics) bool {
	va, vb := a.Vector(), b.Vector()
	for i := range va {
		if !sameFloat(va[i], vb[i]) {
			return false
		}
	}
	return true
}

func TestCaseResultJSONRoundTrip(t *testing.T) {
	orig := fixtureCase()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got CaseResult
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Spec != orig.Spec {
		t.Errorf("spec round-tripped to %+v, want %+v", got.Spec, orig.Spec)
	}
	if len(got.Metrics) != len(orig.Metrics) {
		t.Fatalf("got %d metric vectors, want %d", len(got.Metrics), len(orig.Metrics))
	}
	for i := range orig.Metrics {
		if !sameMetrics(got.Metrics[i], orig.Metrics[i]) {
			t.Errorf("metrics[%d] = %+v, want %+v", i, got.Metrics[i], orig.Metrics[i])
		}
	}
	if len(got.Heuristics) != len(orig.Heuristics) {
		t.Fatalf("got %d heuristics", len(got.Heuristics))
	}
	for i := range orig.Heuristics {
		if got.Heuristics[i].Name != orig.Heuristics[i].Name ||
			!sameMetrics(got.Heuristics[i].Metrics, orig.Heuristics[i].Metrics) {
			t.Errorf("heuristics[%d] mismatch", i)
		}
	}
	for i := range orig.Corr {
		for j := range orig.Corr[i] {
			if !sameFloat(got.Corr[i][j], orig.Corr[i][j]) {
				t.Errorf("corr[%d][%d] = %g, want %g", i, j, got.Corr[i][j], orig.Corr[i][j])
			}
		}
	}
	if !sameFloat(got.RelByMakespanVsStd, orig.RelByMakespanVsStd) {
		t.Errorf("rel_by_makespan_vs_std = %g", got.RelByMakespanVsStd)
	}
	// A second marshal must reproduce the exact bytes (schema-stable).
	data2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("re-marshal changed the document")
	}
}

func TestCaseResultJSONRoundTripFromRealRun(t *testing.T) {
	cfg := testConfig()
	cfg.Schedules = 10
	res, err := RunCase(Fig3Case(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var got CaseResult
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("computed case did not survive a JSON round trip bit-exactly")
	}
	// The text report must render identically from the decoded copy —
	// this is what makes cache-resumed sweeps byte-identical.
	var a, b strings.Builder
	WriteCase(&a, res)
	WriteCase(&b, &got)
	if a.String() != b.String() {
		t.Error("text report differs after JSON round trip")
	}
}

func TestFig6ResultJSONRoundTrip(t *testing.T) {
	orig := fixtureFig6()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Fig6Result
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("fig6 document did not survive a round trip")
	}
	if len(got.Cases) != len(orig.Cases) {
		t.Fatalf("got %d cases", len(got.Cases))
	}
	if !sameFloat(got.RelByMkspnMean, orig.RelByMkspnMean) || !sameFloat(got.RelByMkspnStd, orig.RelByMkspnStd) {
		t.Error("aggregate scalars mismatch")
	}
}

func TestJSONSchemaGuards(t *testing.T) {
	var cr CaseResult
	if err := json.Unmarshal([]byte(`{"schema":"bogus/v9"}`), &cr); err == nil {
		t.Error("case decoder accepted a foreign schema")
	}
	var f6 Fig6Result
	if err := json.Unmarshal([]byte(`{"schema":"bogus/v9"}`), &f6); err == nil {
		t.Error("fig6 decoder accepted a foreign schema")
	}
	if err := json.Unmarshal([]byte(`{"schema":"`+CaseResultSchema+`","spec":{"kind":"alien"}}`), &cr); err == nil {
		t.Error("case decoder accepted an unknown graph kind")
	}
}

func TestVariableULJSONRoundTripWithNaN(t *testing.T) {
	orig := &VariableULResult{
		ConstCorr: 0.875, VarCorr: math.NaN(), ULLo: 1, ULHi: 1.8,
		HEFTMakespan: 90, Lambda: 2,
		Sweep: []SDHEFTPoint{{Lambda: 2, Makespan: 92, Std: 2.5, Differs: true}},
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("NaN correlation broke the encoder: %v", err)
	}
	var got VariableULResult
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.ConstCorr != 0.875 || !math.IsNaN(got.VarCorr) {
		t.Errorf("correlations round-tripped to (%g, %g)", got.ConstCorr, got.VarCorr)
	}
	if got.HEFTMakespan != 90 || len(got.Sweep) != 1 || !got.Sweep[0].Differs {
		t.Error("pass-through fields lost")
	}
}

func TestSpecJSONRoundTripsEveryFamily(t *testing.T) {
	// Every registered family — built-in or added later — must survive
	// the spec encode/decode by name.
	for _, name := range FamilyNames() {
		spec := CaseSpec{Name: "rt-" + name, Family: name, N: 10, M: 3, UL: 1.1, Seed: 9}
		got, err := specFromJSON(specToJSON(spec))
		if err != nil || got != spec {
			t.Errorf("spec for family %q round-tripped to (%+v, %v)", name, got, err)
		}
	}
	if _, err := specFromJSON(caseSpecJSON{Family: "kind(7)"}); err == nil {
		t.Error("unregistered family accepted")
	}
}

func TestWriteMatrixCSVValidation(t *testing.T) {
	names := []string{"a", "b"}
	if err := WriteMatrixCSV(&strings.Builder{}, names, [][]float64{{1, 2}}); err == nil {
		t.Error("row count mismatch accepted")
	}
	if err := WriteMatrixCSV(&strings.Builder{}, names, [][]float64{{1}, {2, 3}}); err == nil {
		t.Error("column count mismatch accepted")
	}
	var b strings.Builder
	if err := WriteMatrixCSV(&b, names, [][]float64{{1, math.NaN()}, {0.5, math.Inf(-1)}}); err != nil {
		t.Fatal(err)
	}
	want := "metric,a,b\na,1,NaN\nb,0.5,-Inf\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}
