package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/heuristics"
	"repro/internal/runner"
)

// Fig1's seeds must derive from each size's identity, not its slice
// position: reordering the sizes cannot change any row. The historical
// cfg.Seed + index*77 scheme made row values depend on where a size
// appeared in the list (and let per-schedule MC seeds collide with the
// next size's scenario seed).
func TestFig1SizeOrderInvariance(t *testing.T) {
	cfg := testConfig()
	cfg.MCRealizations = 2000
	ab, err := Fig1(cfg, []int{10, 30}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Fig1(cfg, []int{30, 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	byN := func(rows []Fig1Row) map[int]Fig1Row {
		m := make(map[int]Fig1Row, len(rows))
		for _, r := range rows {
			m[r.N] = r
		}
		return m
	}
	a, b := byN(ab), byN(ba)
	for n, ra := range a {
		rb, ok := b[n]
		if !ok {
			t.Fatalf("size %d missing from reordered run", n)
		}
		if ra != rb {
			t.Errorf("size %d differs across orderings: %+v vs %+v", n, ra, rb)
		}
	}
}

// RunCaseOn must emit heuristic rows sorted by stable name, so the
// resulting JSON document is byte-identical no matter how (in what
// order) the heuristics were registered.
func TestRunCaseHeuristicOrderInvariance(t *testing.T) {
	runJSON := func() []byte {
		t.Helper()
		cfg := testConfig()
		cfg.Schedules = 8
		res, err := RunCase(Fig3Case(5), cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	want := runJSON()

	// Reverse the registration order and re-run: same bytes.
	orig := heuristics.SwapRegistry(nil)
	defer heuristics.SwapRegistry(orig)
	rev := make([]heuristics.Entry, len(orig))
	for i, e := range orig {
		rev[len(orig)-1-i] = e
	}
	heuristics.SwapRegistry(rev)
	if got := runJSON(); !bytes.Equal(got, want) {
		t.Error("case JSON depends on heuristic registration order")
	}

	// Sanity: the rows really are name-sorted.
	var doc struct {
		Heuristics []struct {
			Name string `json:"name"`
		} `json:"heuristics"`
	}
	if err := json.Unmarshal(want, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Heuristics) == 0 {
		t.Fatal("no heuristic rows")
	}
	for i := 1; i < len(doc.Heuristics); i++ {
		if doc.Heuristics[i-1].Name > doc.Heuristics[i].Name {
			t.Fatalf("heuristic rows not sorted: %v", doc.Heuristics)
		}
	}
}

// TestSweepCase10k is the scale gate of the compiled evaluation layer:
// a full 10 000-task sweep case — random-schedule metric vectors,
// heuristic rows, correlation matrix — must complete end to end. It is
// skipped under -short; CI runs it in a dedicated step.
func TestSweepCase10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-task case evaluation is minutes of work; run without -short")
	}
	if raceEnabled {
		t.Skip("10k-task case under the race detector would take hours; smaller cases cover the concurrency")
	}
	cfg := DefaultConfig()
	cfg.Schedules = 40 // schedulesFor(n >= 100) divides by 5 → 8 evaluations
	spec := CaseSpec{Name: "sweep-10k", Family: CholeskyFamily, N: 10000, M: 16, UL: 1.1, Seed: 42}
	pool := runner.NewPool(cfg.workers())
	defer pool.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Minute)
	defer cancel()
	start := time.Now()
	res, err := RunCaseOn(ctx, spec, cfg, pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("10k case (%d schedules + %d heuristics) in %v",
		len(res.Metrics), len(res.Heuristics), time.Since(start))
	if len(res.Metrics) == 0 || len(res.Corr) != 8 {
		t.Fatalf("malformed case result: %d metrics, %d corr rows", len(res.Metrics), len(res.Corr))
	}
	for _, m := range res.Metrics {
		if m.Makespan <= 0 {
			t.Fatal("nonpositive makespan in 10k case")
		}
	}
}
