package experiment

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/graphgen"
	"repro/internal/heuristics"
	"repro/internal/makespan"
	"repro/internal/platform"
	"repro/internal/robustness"
	"repro/internal/schedule"
	"repro/internal/stats"
)

// testConfig keeps unit tests fast.
func testConfig() Config {
	c := DefaultConfig()
	c.Schedules = 40
	c.MCRealizations = 4000
	return c
}

// shortConfig shrinks a test's config further under -short: fewer
// schedules and Monte-Carlo realizations. Statistical assertions in
// short mode should use the generous thresholds that hold at these
// sample counts; the full run keeps paper-faithful scales.
func shortConfig(c Config) Config {
	if testing.Short() {
		c.Schedules = 15
		c.MCRealizations = 1500
	}
	return c
}

func TestCaseSpecBuildScenario(t *testing.T) {
	for _, spec := range []CaseSpec{
		{Name: "r", Family: RandomFamily, N: 20, M: 4, UL: 1.1, Seed: 1},
		{Name: "c", Family: CholeskyFamily, N: 10, M: 3, UL: 1.01, Seed: 2},
		{Name: "g", Family: GaussElimFamily, N: 30, M: 8, UL: 1.1, Seed: 3},
		{Name: "j", Family: JoinFamily, N: 9, M: 4, UL: 1.5, Seed: 4},
	} {
		scen, err := spec.BuildScenario()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if scen.G.N() == 0 {
			t.Errorf("%s: empty graph", spec.Name)
		}
		if err := scen.P.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
	if _, err := (CaseSpec{Family: "no-such-family", N: 5, M: 2, UL: 1.1}).BuildScenario(); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestCaseSizesMatchPaper(t *testing.T) {
	// Fig. 3: Cholesky of exactly 10 tasks.
	scen, err := Fig3Case(1).BuildScenario()
	if err != nil {
		t.Fatal(err)
	}
	if scen.G.N() != 10 {
		t.Errorf("Fig3 graph has %d tasks, want 10", scen.G.N())
	}
	// Fig. 5: GE of ~103 tasks (our generator gives 104).
	scen, err = Fig5Case(1).BuildScenario()
	if err != nil {
		t.Fatal(err)
	}
	if scen.G.N() != 104 {
		t.Errorf("Fig5 graph has %d tasks, want 104", scen.G.N())
	}
	if scen.P.M != 16 {
		t.Errorf("Fig5 platform has %d procs, want 16", scen.P.M)
	}
}

func TestCholeskyAndGESizeSelection(t *testing.T) {
	if tiles, _, err := choleskyRound(10); err != nil || tiles != 3 {
		t.Errorf("choleskyRound(10) = (%d, %v), want tiles 3", tiles, err)
	}
	if _, got, err := choleskyRound(100); err != nil || got < 60 || got > 140 {
		t.Errorf("cholesky ~100 gave %d tasks (err %v)", got, err)
	}
	if size, _, err := gaussElimRound(103); err != nil || size != 14 {
		t.Errorf("gaussElimRound(103) = (%d, %v), want size 14", size, err)
	}
}

func TestRunCaseSmall(t *testing.T) {
	cfg := testConfig()
	res, err := RunCase(Fig3Case(cfg.Seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != cfg.Schedules {
		t.Fatalf("got %d metric vectors, want %d", len(res.Metrics), cfg.Schedules)
	}
	if len(res.Heuristics) != 3 {
		t.Fatalf("got %d heuristics, want 3", len(res.Heuristics))
	}
	if len(res.Corr) != robustness.NumMetrics {
		t.Fatalf("correlation matrix size %d", len(res.Corr))
	}
	// Core paper claim: σ_M, entropy, lateness and (inverted) A are
	// strongly positively correlated.
	pairs := [][2]int{{1, 2}, {1, 5}, {1, 6}, {2, 5}, {5, 6}}
	for _, p := range pairs {
		r := res.Corr[p[0]][p[1]]
		if math.IsNaN(r) || r < 0.8 {
			t.Errorf("corr(%s, %s) = %.3f, want > 0.8",
				metricShortNames[p[0]], metricShortNames[p[1]], r)
		}
	}
	// Makespan and inverted slack are negatively correlated (conflicting
	// objectives).
	if r := res.Corr[0][3]; !math.IsNaN(r) && r > 0 {
		t.Errorf("corr(makespan, inv slack) = %.3f, want negative", r)
	}
	// §VII: (1-R)/M tracks σ_M almost perfectly.
	if res.RelByMakespanVsStd < 0.95 {
		t.Errorf("(1-R)/M vs σ_M = %.3f, want > 0.95", res.RelByMakespanVsStd)
	}
}

func TestRunCaseHeuristicsDominateRandom(t *testing.T) {
	cfg := shortConfig(testConfig())
	res, err := RunCase(Fig4Case(cfg.Seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	best := res.BestRandomMakespan()
	for _, h := range res.Heuristics {
		if h.Metrics.Makespan > best {
			t.Errorf("%s makespan %.4g worse than best random %.4g", h.Name, h.Metrics.Makespan, best)
		}
	}
}

func TestInvertedColumns(t *testing.T) {
	ms := []robustness.Metrics{
		{Makespan: 10, AvgSlack: 3, AbsProb: 0.8, RelProb: 0.6},
		{Makespan: 20, AvgSlack: 7, AbsProb: 0.2, RelProb: 0.4},
	}
	cols := InvertedColumns(ms)
	if cols[0][0] != 10 || cols[0][1] != 20 {
		t.Error("makespan column should be raw")
	}
	if cols[3][0] != 4 || cols[3][1] != 0 {
		t.Errorf("slack column = %v, want [4 0]", cols[3])
	}
	if math.Abs(cols[6][0]-0.2) > 1e-12 || math.Abs(cols[6][1]-0.8) > 1e-12 {
		t.Errorf("absprob column = %v, want [0.2 0.8]", cols[6])
	}
	if math.Abs(cols[7][0]-0.4) > 1e-12 || math.Abs(cols[7][1]-0.6) > 1e-12 {
		t.Errorf("relprob column = %v, want [0.4 0.6]", cols[7])
	}
}

func TestFig1ShowsGrowingImprecision(t *testing.T) {
	cfg := shortConfig(testConfig())
	sizes, perSize := []int{10, 60}, 2
	if testing.Short() {
		sizes, perSize = []int{10, 30}, 1
	}
	rows, err := Fig1(cfg, sizes, perSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.KS < 0 || r.KS > 1 {
			t.Errorf("KS = %g out of range", r.KS)
		}
		if r.CM < 0 {
			t.Errorf("CM = %g negative", r.CM)
		}
	}
	// The paper's point: precision degrades with graph size.
	if rows[1].KS <= rows[0].KS {
		t.Logf("note: KS did not grow (%.3g -> %.3g) — acceptable at small sample counts", rows[0].KS, rows[1].KS)
	}
}

func TestFig2ProducesComparableDensities(t *testing.T) {
	cfg := testConfig()
	res, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.X) != len(res.Calculated) || len(res.X) != len(res.Empirical) {
		t.Fatal("series length mismatch")
	}
	// Both densities integrate to ~1 over the grid.
	h := res.X[1] - res.X[0]
	var mc, me float64
	for i := range res.X {
		mc += res.Calculated[i] * h
		me += res.Empirical[i] * h
	}
	if mc < 0.8 || mc > 1.2 {
		t.Errorf("calculated mass = %g", mc)
	}
	if me < 0.8 || me > 1.2 {
		t.Errorf("empirical mass = %g", me)
	}
	if res.KS <= 0 || res.KS > 0.8 {
		t.Errorf("KS = %g implausible", res.KS)
	}
}

func TestFig7Shapes(t *testing.T) {
	res := Fig7(128)
	if len(res.X) != 128 {
		t.Fatal("wrong point count")
	}
	// Same mean/std by construction; densities differ strongly.
	var maxDiff float64
	for i := range res.X {
		if d := math.Abs(res.Special[i] - res.Normal[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 0.01 {
		t.Errorf("special too close to normal (max diff %g)", maxDiff)
	}
}

func TestFig8Converges(t *testing.T) {
	cfg := testConfig()
	rows := Fig8(cfg, 10)
	if len(rows) != 11 {
		t.Fatalf("got %d rows, want 11", len(rows))
	}
	// Paper: after ~5 sums nearly Gaussian, after 10 negligible.
	if rows[0].KS < rows[5].KS || rows[5].KS < rows[10].KS {
		// Allow tiny non-monotonicity but the ends must order.
		if rows[10].KS >= rows[0].KS {
			t.Errorf("KS did not shrink: %g -> %g -> %g", rows[0].KS, rows[5].KS, rows[10].KS)
		}
	}
	if rows[10].KS > 0.02 {
		t.Errorf("after 10 sums KS = %g, want < 0.02", rows[10].KS)
	}
}

func TestFig9SlackVersusRobustness(t *testing.T) {
	cfg := testConfig()
	rows, err := Fig9(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byName := map[string]Fig9Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	wide := rows[0]
	chain := rows[1]
	imbal := rows[2]
	// The wide schedule (max of many i.i.d.) is the most robust.
	for _, r := range rows[1:] {
		if wide.StdDev >= r.StdDev {
			t.Errorf("wide σ=%g not smaller than %s σ=%g", wide.StdDev, r.Name, r.StdDev)
		}
	}
	// The imbalanced schedule has ample slack yet poor robustness.
	if imbal.Slack <= 0 {
		t.Error("imbalanced schedule should have positive slack")
	}
	if imbal.StdDev <= wide.StdDev {
		t.Error("imbalanced should be less robust than wide despite its slack")
	}
	// The chain has no slack.
	if chain.Slack > 1e-6 {
		t.Errorf("chain slack = %g, want 0", chain.Slack)
	}
	_ = byName
}

func TestReportsRender(t *testing.T) {
	cfg := testConfig()
	res, err := RunCase(Fig3Case(cfg.Seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	WriteCase(&b, res)
	out := b.String()
	for _, want := range []string{"Pearson", "BIL", "HEFT", "HBMCT", "makespan"} {
		if !strings.Contains(out, want) {
			t.Errorf("case report missing %q", want)
		}
	}
	if s := SummarizeHeuristics(res); !strings.Contains(s, "sigma_M") {
		t.Errorf("heuristics summary malformed: %s", s)
	}

	b.Reset()
	WriteFig1(&b, []Fig1Row{{N: 10, KS: 0.01, CM: 0.1}})
	if !strings.Contains(b.String(), "Fig. 1") {
		t.Error("fig1 report malformed")
	}
	b.Reset()
	WriteFig7(&b, Fig7(16))
	if !strings.Contains(b.String(), "special") {
		t.Error("fig7 report malformed")
	}
	b.Reset()
	WriteFig8(&b, Fig8(cfg, 2))
	if !strings.Contains(b.String(), "sums") {
		t.Error("fig8 report malformed")
	}
	rows, err := Fig9(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	WriteFig9(&b, rows)
	if !strings.Contains(b.String(), "slack") {
		t.Error("fig9 report malformed")
	}
}

func TestConfigHelpers(t *testing.T) {
	c := DefaultConfig()
	if c.workers() < 1 {
		t.Error("workers must be positive")
	}
	if c.schedulesFor(10) != c.Schedules {
		t.Error("small graphs get the full budget")
	}
	if c.schedulesFor(100) >= c.Schedules {
		t.Error("large graphs get a reduced budget")
	}
	p := PaperConfig()
	if p.Schedules != 10000 || p.MCRealizations != 100000 {
		t.Error("paper config wrong")
	}
	if BenchConfig().Schedules >= DefaultConfig().Schedules {
		t.Error("bench config should be smaller")
	}
}

func TestCaseCacheKeyCanonical(t *testing.T) {
	spec := CaseSpec{Name: "k", Family: RandomFamily, N: 10, M: 3, UL: 1.1, Seed: 7}
	base := DefaultConfig()
	ref, err := CaseCacheKey(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	explicit := base
	explicit.MCSampler = "exact"
	explicit.MCBlockSize = schedule.DefaultBlockSize
	key, err := CaseCacheKey(spec, explicit)
	if err != nil {
		t.Fatal(err)
	}
	if key != ref {
		t.Error("spelling out the default sampler/block size must not change the cache key")
	}
	table := base
	table.MCSampler = "table"
	if key, err = CaseCacheKey(spec, table); err != nil {
		t.Fatal(err)
	} else if key == ref {
		t.Error("different sampler modes must get different cache keys")
	}
	bad := base
	bad.MCSampler = "Table"
	if _, err := CaseCacheKey(spec, bad); err == nil {
		t.Error("invalid sampler spelling must be an error, not a silent namespace")
	}
}

func TestInvalidSamplerRejectedByFigures(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MCSampler = "typo"
	if _, err := Fig1(cfg, []int{6}, 1); err == nil {
		t.Error("Fig1 must reject an invalid sampler mode")
	}
	if _, err := Fig2(cfg); err == nil {
		t.Error("Fig2 must reject an invalid sampler mode")
	}
}

func TestWithDerivedSeed(t *testing.T) {
	spec := CaseSpec{Name: "x", Family: RandomFamily, N: 10, M: 3, UL: 1.1}
	a, b := spec.WithDerivedSeed(1), spec.WithDerivedSeed(1)
	if a.Seed == 0 || a.Seed != b.Seed {
		t.Errorf("derivation not deterministic: %d vs %d", a.Seed, b.Seed)
	}
	if spec.Seed != 0 {
		t.Error("receiver mutated")
	}
	if a.Seed == spec.WithDerivedSeed(2).Seed {
		t.Error("base seed ignored")
	}
	other := spec
	other.UL = 1.2
	if a.Seed == other.WithDerivedSeed(1).Seed {
		t.Error("spec identity ignored")
	}
}

func TestBuiltinFamilyNames(t *testing.T) {
	// The legacy GraphKind spellings must survive as registered family
	// names: JSON documents and cache semantics reference them.
	for _, name := range []string{"random", "cholesky", "gausselim", "join"} {
		if _, err := FamilyByName(name); err != nil {
			t.Errorf("legacy family %q not registered: %v", name, err)
		}
	}
	names := FamilyNames()
	if len(names) < 9 {
		t.Errorf("only %d families registered: %v", len(names), names)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("FamilyNames not sorted: %v", names)
	}
}

func TestPairStats(t *testing.T) {
	res := &Fig6Result{
		Mean: [][]float64{
			{1, 0.9, 0, 0, 0, 0, 0, 0},
			{0.9, 1, 0, 0, 0, 0, 0, 0},
			{0, 0, 1, 0, 0, 0, 0, 0},
			{0, 0, 0, 1, 0, 0, 0, 0},
			{0, 0, 0, 0, 1, 0, 0, 0},
			{0, 0, 0, 0, 0, 1, 0, 0},
			{0, 0, 0, 0, 0, 0, 1, 0},
			{0, 0, 0, 0, 0, 0, 0, 1},
		},
		Std: make([][]float64, 8),
	}
	for i := range res.Std {
		res.Std[i] = make([]float64, 8)
	}
	res.Std[0][1] = 0.05
	mean, std, err := res.PairStats("makespan", "stddev")
	if err != nil {
		t.Fatal(err)
	}
	if mean != 0.9 || std != 0.05 {
		t.Errorf("PairStats = (%g,%g), want (0.9,0.05)", mean, std)
	}
	if _, _, err := res.PairStats("makespan", "nope"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestRunCaseSingleProcessor(t *testing.T) {
	// Degenerate platform: one processor. Slack is all zero, several
	// correlations are NaN; the runner must not crash.
	cfg := testConfig()
	cfg.Schedules = 15
	spec := CaseSpec{Name: "m1", Family: RandomFamily, N: 10, M: 1, UL: 1.1, Seed: 5}
	res, err := RunCase(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != 15 {
		t.Fatalf("got %d metric vectors", len(res.Metrics))
	}
	for _, m := range res.Metrics {
		if math.Abs(m.AvgSlack) > 1e-6 {
			t.Errorf("single-proc slack = %g, want 0", m.AvgSlack)
		}
	}
}

// A deterministic (UL = 1, Dirac-duration) join-graph case produces
// constant metric columns — σ_M is 0 and both probabilistic metrics
// are 1 for every schedule — so the Pearson matrix must carry NaN for
// those pairs, and the Fig. 6 aggregation must skip (not propagate)
// them while keeping the defined cells.
func TestDiracJoinCaseConstantColumns(t *testing.T) {
	const n, m = 6, 3
	g := graphgen.Join(n+1, 0)
	etc := make([][]float64, n+1)
	for i := range etc {
		etc[i] = make([]float64, m)
		for j := range etc[i] {
			etc[i][j] = 10 + float64(i%3) + 2*float64(j)
		}
	}
	tau, lat := platform.NewUniformNetwork(m, 1, 0)
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: m, ETC: etc, Tau: tau, Lat: lat},
		UL: 1, // every duration and arc is a Dirac
	}
	cfg := testConfig()
	rng := rand.New(rand.NewSource(3))
	scheds := heuristics.RandomSchedules(scen, 12, rng)
	cache := makespan.NewEvalCache(scen, cfg.GridSize)
	metrics := make([]robustness.Metrics, len(scheds))
	for i, s := range scheds {
		var err error
		metrics[i], err = evaluateOne(cache, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if metrics[i].StdDev != 0 {
			t.Fatalf("Dirac case has σ_M = %g, want 0", metrics[i].StdDev)
		}
	}
	corr, err := stats.CorrMatrix(InvertedColumns(metrics))
	if err != nil {
		t.Fatal(err)
	}
	// Column 1 is σ_M (constant 0): its off-diagonal entries are NaN.
	if !math.IsNaN(corr[1][0]) || !math.IsNaN(corr[0][1]) {
		t.Errorf("σ_M correlations = %g, want NaN", corr[1][0])
	}
	// Makespans differ across random schedules, so the E(M)/slack pair
	// stays defined.
	if math.IsNaN(corr[0][3]) {
		t.Error("makespan vs slack should be defined")
	}
	// Aggregating this degenerate matrix with itself must not poison
	// defined cells and must keep the undefined ones as NaN markers.
	mean, std, err := stats.AggregateMatrices([][][]float64{corr, corr})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(mean[1][0]) || !math.IsNaN(std[1][0]) {
		t.Error("all-NaN cell should stay NaN after aggregation")
	}
	if math.IsNaN(mean[0][3]) {
		t.Error("aggregation dropped a defined cell")
	}
	// The rendering paths must survive NaN cells.
	if out := stats.FormatMatrix(robustness.MetricNames, mean, std); !strings.Contains(out, "n/a") {
		t.Error("NaN cells should render as n/a")
	}
}
