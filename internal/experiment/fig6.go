package experiment

import (
	"context"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Fig6Result aggregates the correlation matrices of the 24 cases into
// the paper's Fig. 6: element-wise mean (upper triangle when printed)
// and standard deviation (lower triangle), plus the §VII side result
// on R(γ)/M.
type Fig6Result struct {
	Cases          []*CaseResult
	Mean, Std      [][]float64
	RelByMkspnMean float64 // mean Pearson of (1-R)/M vs σ_M (paper: 0.998)
	RelByMkspnStd  float64 // its std-dev across cases (paper: 0.009)
}

// Fig6 runs all correlation cases and aggregates their Pearson
// matrices. progress, when non-nil, receives one call per finished
// case.
func Fig6(cfg Config, progress func(done, total int, name string)) (*Fig6Result, error) {
	return Fig6Run(context.Background(), cfg, RunOptions{Progress: progress})
}

// Fig6Run is Fig6 under the orchestrator: all cases progress
// concurrently through one shared worker pool (opts.Pool, or a
// temporary one), optionally resuming from opts.Cache. The
// aggregation visits cases in spec order, so the result — and any
// report rendered from it — is byte-identical to a sequential run for
// a fixed seed, at every worker count.
func Fig6Run(ctx context.Context, cfg Config, opts RunOptions) (*Fig6Result, error) {
	return AggregateCases(ctx, Fig6Cases(cfg.Seed), cfg, opts)
}

// AggregateCases runs any case list and aggregates the per-case
// Pearson matrices the way Fig. 6 does (element-wise mean and std,
// NaN cells skipped); custom Sweep grids reuse it to get the same
// report types as the paper's figure. Under RunOptions.KeepGoing,
// permanently failed cases (nil slots, enumerated in opts.Report) are
// excluded from the aggregation rather than failing it.
func AggregateCases(ctx context.Context, specs []CaseSpec, cfg Config, opts RunOptions) (*Fig6Result, error) {
	cases, err := RunCases(ctx, specs, cfg, opts)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	var mats [][][]float64
	var relVals []float64
	for _, cr := range cases {
		if cr == nil {
			continue
		}
		res.Cases = append(res.Cases, cr)
		mats = append(mats, cr.Corr)
		if !math.IsNaN(cr.RelByMakespanVsStd) {
			relVals = append(relVals, cr.RelByMakespanVsStd)
		}
	}
	mean, std, err := stats.AggregateMatrices(mats)
	if err != nil {
		return nil, err
	}
	res.Mean, res.Std = mean, std
	if len(relVals) > 0 {
		var sum float64
		for _, v := range relVals {
			sum += v
		}
		mu := sum / float64(len(relVals))
		var ss float64
		for _, v := range relVals {
			d := v - mu
			ss += d * d
		}
		res.RelByMkspnMean = mu
		res.RelByMkspnStd = math.Sqrt(ss / float64(len(relVals)))
	}
	return res, nil
}

// PairStats returns the aggregated mean and std of the correlation
// between two metrics by name (as listed in robustness.MetricNames).
func (r *Fig6Result) PairStats(nameA, nameB string) (mean, std float64, err error) {
	ia, ib := metricIndex(nameA), metricIndex(nameB)
	if ia < 0 || ib < 0 {
		return 0, 0, fmt.Errorf("experiment: unknown metric name %q or %q", nameA, nameB)
	}
	return r.Mean[ia][ib], r.Std[ia][ib], nil
}

func metricIndex(name string) int {
	for i, n := range metricShortNames {
		if n == name {
			return i
		}
	}
	return -1
}

// metricShortNames are compact labels used in reports and PairStats.
var metricShortNames = []string{
	"makespan", "stddev", "entropy", "slack", "slackstd", "lateness", "absprob", "relprob",
}
