package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/graphgen"
	"repro/internal/heuristics"
	"repro/internal/makespan"
	"repro/internal/numeric"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/seeds"
	"repro/internal/stats"
	"repro/internal/stochastic"
)

// distCDF adapts an analytic distribution to the stats.CDF interface.
type distCDF struct{ d stochastic.Dist }

func (a distCDF) CDFAt(x float64) float64 { return a.d.CDF(x) }

// Fig1Row is one point of Fig. 1: the average KS and CM distances
// between the classical (independence-assumption) makespan CDF and the
// Monte-Carlo CDF for random graphs of a given size.
type Fig1Row struct {
	N  int     `json:"n"`
	KS float64 `json:"ks"`
	CM float64 `json:"cm"`
}

// Fig1 reproduces Fig. 1 ("average precision with the independence
// assumption", UL = 1.1): for each graph size, several random
// schedules of random graphs are evaluated both analytically and by
// Monte Carlo, and the CDF distances are averaged.
func Fig1(cfg Config, sizes []int, schedulesPerSize int) ([]Fig1Row, error) {
	mcOpts, err := cfg.mcOptions()
	if err != nil {
		return nil, err
	}
	cfg, acc, err := cfg.resolveAccuracy()
	if err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		sizes = []int{10, 30, 100}
	}
	if schedulesPerSize <= 0 {
		schedulesPerSize = 5
	}
	procsFor := func(n int) int {
		switch {
		case n <= 10:
			return 3
		case n <= 30:
			return 8
		default:
			return 16
		}
	}
	var rows []Fig1Row
	for _, n := range sizes {
		// Every seed is derived from the size's identity, not its slice
		// position: reordering `sizes` cannot change any row, and the
		// per-schedule Monte-Carlo streams can never collide with
		// another size's scenario or schedule streams (the additive
		// spec.Seed+k scheme could).
		spec := CaseSpec{
			Name: fmt.Sprintf("fig1-n%d", n), Family: RandomFamily,
			N: n, M: procsFor(n), UL: 1.1,
			Seed: seeds.Derive(cfg.Seed, fmt.Sprintf("fig1/n%d", n)),
		}
		scen, err := spec.BuildScenario()
		if err != nil {
			return nil, err
		}
		cache := makespan.NewEvalCacheAccuracy(scen, acc)
		rng := rand.New(rand.NewSource(seeds.Derive(spec.Seed, "fig1-schedules")))
		mcSeeds := seeds.NewFamily(spec.Seed, "fig1-mc")
		var ksSum, cmSum float64
		for k := 0; k < schedulesPerSize; k++ {
			s := heuristics.RandomSchedule(scen, rng)
			model, err := cache.Model(s)
			if err != nil {
				return nil, err
			}
			rv := model.Classic()
			emp, err := makespan.MonteCarloWith(scen, s, cfg.MCRealizations, mcSeeds.Seed(k), mcOpts)
			if err != nil {
				return nil, err
			}
			ksSum += stats.KSAgainstEmpirical(rv, emp)
			lo, hi := stats.SupportUnion(rv, emp)
			cmSum += stats.CMArea(rv, emp, lo, hi, 1024)
		}
		rows = append(rows, Fig1Row{
			N:  scen.G.N(),
			KS: ksSum / float64(schedulesPerSize),
			CM: cmSum / float64(schedulesPerSize),
		})
	}
	return rows, nil
}

// Fig2Result carries the two density curves of Fig. 2: the calculated
// makespan distribution against the Monte-Carlo histogram, with the
// achieved KS and CM distances.
type Fig2Result struct {
	X          []float64 `json:"x"`
	Calculated []float64 `json:"calculated"`
	Empirical  []float64 `json:"empirical"`
	KS         float64   `json:"ks"`
	CM         float64   `json:"cm"`
}

// Fig2 reproduces Fig. 2 (visual comparison of the calculated and
// experimental distributions on a large case). The paper shows a
// ~100-task graph where KS ≈ 0.17 yet the curves nearly coincide.
func Fig2(cfg Config) (*Fig2Result, error) {
	mcOpts, err := cfg.mcOptions()
	if err != nil {
		return nil, err
	}
	cfg, acc, err := cfg.resolveAccuracy()
	if err != nil {
		return nil, err
	}
	spec := Fig5Case(cfg.Seed + 999)
	scen, err := spec.BuildScenario()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 4242))
	s := heuristics.RandomSchedule(scen, rng)
	model, err := makespan.NewEvalCacheAccuracy(scen, acc).Model(s)
	if err != nil {
		return nil, err
	}
	rv := model.Classic()
	emp, err := makespan.MonteCarloWith(scen, s, cfg.MCRealizations, cfg.Seed+5, mcOpts)
	if err != nil {
		return nil, err
	}
	empRV := emp.ToNumeric(acc.GridSize)
	lo, hi := stats.SupportUnion(rv, emp)
	xs := numeric.Linspace(lo, hi, 256)
	res := &Fig2Result{
		X:          xs,
		Calculated: make([]float64, len(xs)),
		Empirical:  make([]float64, len(xs)),
		KS:         stats.KSAgainstEmpirical(rv, emp),
		CM:         stats.CMArea(rv, emp, lo, hi, 1024),
	}
	for i, x := range xs {
		res.Calculated[i] = rv.PDFAt(x)
		res.Empirical[i] = empRV.PDFAt(x)
	}
	return res, nil
}

// Fig7Result carries the density curves of Fig. 7: the special
// concatenated-Beta distribution against the normal with identical
// mean and standard deviation.
type Fig7Result struct {
	X       []float64 `json:"x"`
	Special []float64 `json:"special"`
	Normal  []float64 `json:"normal"`
	Mean    float64   `json:"mean"`
	Std     float64   `json:"std"`
}

// Fig7 reproduces Fig. 7.
func Fig7(points int) *Fig7Result {
	if points <= 0 {
		points = 256
	}
	sp := stochastic.NewSpecial()
	n := sp.MatchedNormal()
	xs := numeric.Linspace(0, sp.Width, points)
	res := &Fig7Result{
		X:       xs,
		Special: make([]float64, points),
		Normal:  make([]float64, points),
		Mean:    sp.Mean(),
		Std:     stochastic.StdDev(sp),
	}
	for i, x := range xs {
		res.Special[i] = sp.PDF(x)
		res.Normal[i] = n.PDF(x)
	}
	return res
}

// Fig8Row is one point of Fig. 8: the KS and CM distance between the
// k-fold self-sum of the special distribution and the matched normal.
// CM is the paper's absolute-area variant (Fig. 1 units); because the
// support widens as the sums accumulate, the scale-free ω²
// (Cramér–von-Mises proper) is also reported and shows the steep CLT
// decay of the paper's log plot.
type Fig8Row struct {
	Sums       int     `json:"sums"` // number of summations (0 = the distribution itself)
	KS         float64 `json:"ks"`
	CM         float64 `json:"cm"`
	CvMSquared float64 `json:"cvm_squared"`
}

// Fig8 reproduces Fig. 8: convergence of repeated self-sums of the
// special distribution to normality (the CLT argument behind the
// metric equivalences). maxSums <= 0 selects the paper's 30.
func Fig8(cfg Config, maxSums int) []Fig8Row {
	if maxSums <= 0 {
		maxSums = 30
	}
	sp := stochastic.NewSpecial()
	base := stochastic.FromDist(sp, 128)
	cur := base.Clone()
	rows := make([]Fig8Row, 0, maxSums+1)
	for k := 0; k <= maxSums; k++ {
		match := stochastic.Normal{Mu: cur.Mean(), Sigma: cur.StdDev()}
		lo, hi := cur.Lo(), cur.Hi()
		rows = append(rows, Fig8Row{
			Sums:       k,
			KS:         stats.KS(cur, distCDF{match}, lo, hi, 1024),
			CM:         stats.CMArea(cur, distCDF{match}, lo, hi, 1024),
			CvMSquared: stats.CvMSquared(cur, distCDF{match}, lo, hi, 1024),
		})
		if k < maxSums {
			cur = cur.Add(base, 128)
		}
	}
	return rows
}

// Fig9Row summarizes one of the four join-graph schedules of Fig. 9.
type Fig9Row struct {
	Name     string  `json:"name"`
	Slack    float64 `json:"slack"`    // average slack S
	StdDev   float64 `json:"stddev"`   // σ_M (robustness)
	Makespan float64 `json:"makespan"` // E(M)
}

// Fig9 reproduces the Fig. 9 case study: a join graph of N+1 i.i.d.
// tasks scheduled four ways. The numbers demonstrate the paper's §VII
// argument: slack does not predict robustness — the wide (max of many
// i.i.d.) schedule is the most robust with no slack, while the
// imbalanced schedule has ample slack and poor robustness.
func Fig9(cfg Config, n int) ([]Fig9Row, error) {
	cfg, acc, err := cfg.resolveAccuracy()
	if err != nil {
		return nil, err
	}
	if n <= 2 {
		n = 8
	}
	g := graphgen.Join(n+1, 0)
	// Identical tasks: i.i.d. durations on every processor.
	etc := make([][]float64, n+1)
	for i := range etc {
		etc[i] = make([]float64, n)
		for j := range etc[i] {
			etc[i][j] = 10
		}
	}
	tau, lat := platform.NewUniformNetwork(n, 1, 0)
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: n, ETC: etc, Tau: tau, Lat: lat},
		UL: 1.5,
	}
	sink := dag.Task(n)
	cache := makespan.NewEvalCacheAccuracy(scen, acc)

	build := func(name string, assign func(s *schedule.Schedule)) (Fig9Row, error) {
		s := schedule.New(n+1, n)
		assign(s)
		model, err := cache.Model(s)
		if err != nil {
			return Fig9Row{}, fmt.Errorf("experiment: fig9 %s: %w", name, err)
		}
		m := model.Metrics(cfg.params())
		return Fig9Row{Name: name, Slack: m.AvgSlack, StdDev: m.StdDev, Makespan: m.Makespan}, nil
	}

	specs := []struct {
		name   string
		assign func(s *schedule.Schedule)
	}{
		{"wide (1 task/proc)", func(s *schedule.Schedule) {
			for i := 0; i < n; i++ {
				s.Assign(dag.Task(i), i)
			}
			s.Assign(sink, 0)
		}},
		{"chain (all on p0)", func(s *schedule.Schedule) {
			for i := 0; i < n; i++ {
				s.Assign(dag.Task(i), 0)
			}
			s.Assign(sink, 0)
		}},
		{"imbalanced (N-1 + 1)", func(s *schedule.Schedule) {
			for i := 0; i < n-1; i++ {
				s.Assign(dag.Task(i), 0)
			}
			s.Assign(dag.Task(n-1), 1)
			s.Assign(sink, 0)
		}},
		{"balanced (2 chains)", func(s *schedule.Schedule) {
			for i := 0; i < n/2; i++ {
				s.Assign(dag.Task(i), 0)
			}
			for i := n / 2; i < n; i++ {
				s.Assign(dag.Task(i), 1)
			}
			s.Assign(sink, 0)
		}},
	}
	rows := make([]Fig9Row, 0, len(specs))
	for _, sp := range specs {
		row, err := build(sp.name, sp.assign)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
