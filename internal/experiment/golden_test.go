package experiment

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/resilience"
	"repro/internal/robustness"
)

// Golden-file tests for every report writer and machine-readable
// encoder: the rendered bytes are compared against testdata/, so any
// format drift — intended or not — shows up as a diff. Regenerate
// with:
//
//	go test ./internal/experiment -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file (run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func renderGolden(t *testing.T, name string, render func(io.Writer) error) {
	t.Helper()
	var b bytes.Buffer
	if err := render(&b); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	checkGolden(t, name, b.Bytes())
}

// fixtureMetrics builds a deterministic metric vector.
func fixtureMetrics(scale float64) robustness.Metrics {
	return robustness.Metrics{
		Makespan:    100 * scale,
		StdDev:      3.25 * scale,
		Entropy:     2.5 + scale,
		AvgSlack:    40 * scale,
		SlackStdDev: 7.125 * scale,
		Lateness:    1.75 * scale,
		AbsProb:     math.Min(0.5*scale, 1),
		RelProb:     math.Min(0.25*scale, 1),
	}
}

// fixtureCase builds a fully deterministic CaseResult, including NaN
// entries, so the golden files lock the rendering of every value
// class without running a (slow) real case.
func fixtureCase() *CaseResult {
	k := robustness.NumMetrics
	corr := make([][]float64, k)
	for i := range corr {
		corr[i] = make([]float64, k)
		for j := range corr[i] {
			switch {
			case i == j:
				corr[i][j] = 1
			default:
				// Symmetric, deterministic off-diagonal pattern in [-1, 1].
				corr[i][j] = math.Round(10000*math.Cos(float64((i+1)*(j+1)))) / 10000
			}
		}
	}
	// A degenerate column (e.g. slack on one processor) yields NaN.
	corr[0][3], corr[3][0] = math.NaN(), math.NaN()
	return &CaseResult{
		Spec: CaseSpec{Name: "golden-cholesky-10", Family: CholeskyFamily, N: 10, M: 3, UL: 1.01, Seed: 42},
		Metrics: []robustness.Metrics{
			fixtureMetrics(1), fixtureMetrics(1.5), fixtureMetrics(0.75),
		},
		Heuristics: []HeuristicResult{
			{Name: "HEFT", Metrics: fixtureMetrics(0.5)},
			{Name: "BIL", Metrics: fixtureMetrics(0.625)},
			{Name: "HBMCT", Metrics: fixtureMetrics(0.5625)},
		},
		Corr:               corr,
		RelByMakespanVsStd: 0.9981,
	}
}

func fixtureFig6() *Fig6Result {
	k := robustness.NumMetrics
	mean := make([][]float64, k)
	std := make([][]float64, k)
	for i := 0; i < k; i++ {
		mean[i] = make([]float64, k)
		std[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			if i == j {
				mean[i][j] = 1
				continue
			}
			mean[i][j] = math.Round(10000*math.Sin(float64((i+2)*(j+3)))) / 10000
			std[i][j] = math.Round(1000*math.Abs(math.Sin(float64(i*j+1)))) / 10000
		}
	}
	mean[0][3], mean[3][0] = math.NaN(), math.NaN()
	return &Fig6Result{
		Cases:          []*CaseResult{fixtureCase()},
		Mean:           mean,
		Std:            std,
		RelByMkspnMean: 0.998,
		RelByMkspnStd:  0.009,
	}
}

// fixtureReport covers every failure-report value class: a recovered
// panic, a degraded delivery, a permanent failure, a quarantined cache
// entry, and the chaos-injection log.
func fixtureReport() RunReportData {
	return RunReportData{
		CasesTotal: 5, CasesClean: 2,
		Cases: []CaseReport{
			{Case: "chaos-a", Attempts: []AttemptReport{
				{Outcome: "panic", Error: "panic: resilience: injected panic at case/chaos-a/attempt0/eval/3"},
				{Outcome: "ok"},
			}},
			{Case: "chaos-b", Attempts: []AttemptReport{
				{Outcome: "timeout", Error: "context deadline exceeded"},
				{Outcome: "timeout", Error: "context deadline exceeded"},
				{Outcome: "degraded-ok"},
			}, Degraded: "coarse"},
			{Case: "chaos-c", Attempts: []AttemptReport{
				{Outcome: "error", Error: "experiment: case \"chaos-c\": boom"},
			}, Err: "experiment: case \"chaos-c\" failed after 1 attempt(s) (error): experiment: case \"chaos-c\": boom"},
		},
		Quarantines: []QuarantineReport{
			{Key: "deadbeef", Dest: "cache/quarantine/deadbeef.json"},
		},
		Injected: []resilience.Event{
			{Site: "case/chaos-a/attempt0/eval/3", Kind: "panic"},
			{Site: "case/chaos-b/attempt0/build", Kind: "delay"},
		},
	}
}

func TestGoldenTextReports(t *testing.T) {
	renderGolden(t, "case.txt", func(w io.Writer) error {
		res := fixtureCase()
		WriteCase(w, res)
		fmt.Fprintln(w)
		fmt.Fprint(w, SummarizeHeuristics(res))
		return nil
	})
	renderGolden(t, "fig1.txt", func(w io.Writer) error {
		WriteFig1(w, []Fig1Row{{N: 10, KS: 0.0123, CM: 0.456}, {N: 104, KS: 0.17, CM: 1.25}})
		return nil
	})
	renderGolden(t, "fig2.txt", func(w io.Writer) error {
		WriteFig2(w, &Fig2Result{
			X:          []float64{1, 2, 3},
			Calculated: []float64{0.125, 0.5, 0.25},
			Empirical:  []float64{0.1, 0.55, 0.2},
			KS:         0.17, CM: 0.9,
		})
		return nil
	})
	renderGolden(t, "fig6.txt", func(w io.Writer) error {
		WriteFig6(w, fixtureFig6())
		return nil
	})
	renderGolden(t, "fig7.txt", func(w io.Writer) error {
		WriteFig7(w, &Fig7Result{
			X:       []float64{0, 0.5, 1},
			Special: []float64{0.75, 1.5, 0.25},
			Normal:  []float64{0.5, 1.25, 0.5},
			Mean:    0.5, Std: 0.2,
		})
		return nil
	})
	renderGolden(t, "fig8.txt", func(w io.Writer) error {
		WriteFig8(w, []Fig8Row{
			{Sums: 0, KS: 0.09, CM: 0.01, CvMSquared: 0.002},
			{Sums: 10, KS: 0.005, CM: 0.004, CvMSquared: 1.5e-6},
		})
		return nil
	})
	renderGolden(t, "fig9.txt", func(w io.Writer) error {
		WriteFig9(w, []Fig9Row{
			{Name: "wide (1 task/proc)", Slack: 0, StdDev: 0.5, Makespan: 12.5},
			{Name: "chain (all on p0)", Slack: 0, StdDev: 2.25, Makespan: 85},
		})
		return nil
	})
	renderGolden(t, "failure_report.txt", func(w io.Writer) error {
		WriteRunReport(w, fixtureReport())
		return nil
	})
	renderGolden(t, "variableul.txt", func(w io.Writer) error {
		WriteVariableUL(w, &VariableULResult{
			ConstCorr: 0.875, VarCorr: 0.5, ULLo: 1, ULHi: 1.8,
			HEFTMakespan: 90, HEFTStd: 3, SDHEFTMakespan: 92, SDHEFTStd: 2.5, Lambda: 2,
			Sweep: []SDHEFTPoint{
				{Lambda: 0, Makespan: 90, Std: 3, Differs: false},
				{Lambda: 2, Makespan: 92, Std: 2.5, Differs: true},
			},
			NoisyHEFTMakespan: 88, NoisyHEFTStd: 9.5,
			NoisySDHEFTMakespan: 89, NoisySDHEFTStd: 4.25,
		})
		return nil
	})
}

func TestGoldenJSONReports(t *testing.T) {
	renderGolden(t, "case.json", func(w io.Writer) error {
		return WriteJSON(w, fixtureCase())
	})
	renderGolden(t, "fig6.json", func(w io.Writer) error {
		return WriteJSON(w, fixtureFig6())
	})
	renderGolden(t, "fig1.json", func(w io.Writer) error {
		return WriteJSON(w, []Fig1Row{{N: 10, KS: 0.0123, CM: 0.456}})
	})
	renderGolden(t, "fig9.json", func(w io.Writer) error {
		return WriteJSON(w, []Fig9Row{{Name: "wide", Slack: 0, StdDev: 0.5, Makespan: 12.5}})
	})
	renderGolden(t, "failure_report.json", func(w io.Writer) error {
		return WriteJSON(w, fixtureReport())
	})
	// NaN correlations (degenerate metric columns) must encode, not
	// abort the -json run.
	renderGolden(t, "variableul.json", func(w io.Writer) error {
		return WriteJSON(w, &VariableULResult{
			ConstCorr: 0.875, VarCorr: math.NaN(), ULLo: 1, ULHi: 1.8, Lambda: 2,
			Sweep: []SDHEFTPoint{{Lambda: 2, Makespan: 92, Std: 2.5, Differs: true}},
		})
	})
}

func TestGoldenCSVReports(t *testing.T) {
	renderGolden(t, "case_corr.csv", func(w io.Writer) error {
		return WriteCorrCSV(w, fixtureCase())
	})
	renderGolden(t, "fig6_matrix.csv", func(w io.Writer) error {
		return WriteFig6CSV(w, fixtureFig6())
	})
}
