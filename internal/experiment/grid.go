package experiment

import (
	"context"
	"fmt"
)

// Sweep describes a generalized case grid: every registered workload
// family crossed with requested sizes, uncertainty levels and repeated
// instances. Fig6Cases is one fixed instance of it; cmd/experiments
// exposes it directly through the -families/-sweep-* flags.
type Sweep struct {
	// NamePrefix prefixes every case name; empty means "sweep".
	NamePrefix string
	// Families are registered workload family names (FamilyNames lists
	// them). Every family must exist and achieve every requested size.
	Families []string
	// Sizes are the requested task counts (families round them to
	// their size grids; unachievable sizes fail Cases up front).
	Sizes []int
	// ULs are the uncertainty levels of the grid.
	ULs []float64
	// Reps is the number of instances per (family, size, UL) cell;
	// <= 0 means 1. Each instance gets its own derived seed.
	Reps int
	// RepsFor overrides Reps per family name (Fig. 6 runs two random
	// instances per cell but one of each structured graph).
	RepsFor map[string]int
	// Procs maps a size to a processor count; nil selects
	// DefaultSweepProcs, the paper's platform scaling.
	Procs func(n int) int
}

// DefaultSweepProcs is the paper's platform scaling: 3 processors for
// ~10-task graphs, 8 for ~30, 16 for ~100 and larger.
func DefaultSweepProcs(n int) int {
	switch {
	case n < 20:
		return 3
	case n < 60:
		return 8
	default:
		return 16
	}
}

// Cases expands the grid into concrete case specs in deterministic
// order (sizes, then ULs, then families as listed, then reps). Every
// family is resolved through the registry and every (family, size)
// pair is validated up front, so an unachievable size fails the whole
// sweep with a *SizeError before any compute is spent. Case identity
// (name and seed) derives from the position in the expansion order,
// so appending Sizes — the outermost dimension — leaves every
// existing case's name and seed (and therefore its cache entry)
// intact; changing Families, ULs or reps renumbers the cells after
// the first affected one.
func (s Sweep) Cases(seed int64) ([]CaseSpec, error) {
	if len(s.Families) == 0 {
		return nil, fmt.Errorf("experiment: sweep has no families (registered: %v)", FamilyNames())
	}
	if len(s.Sizes) == 0 {
		return nil, fmt.Errorf("experiment: sweep has no sizes")
	}
	if len(s.ULs) == 0 {
		return nil, fmt.Errorf("experiment: sweep has no uncertainty levels")
	}
	for _, name := range s.Families {
		fam, err := FamilyByName(name)
		if err != nil {
			return nil, err
		}
		for _, n := range s.Sizes {
			if _, err := fam.RoundSize(n); err != nil {
				return nil, err
			}
		}
	}
	prefix := s.NamePrefix
	if prefix == "" {
		prefix = "sweep"
	}
	procs := s.Procs
	if procs == nil {
		procs = DefaultSweepProcs
	}
	reps := func(family string) int {
		if r, ok := s.RepsFor[family]; ok && r > 0 {
			return r
		}
		if s.Reps > 0 {
			return s.Reps
		}
		return 1
	}
	var cases []CaseSpec
	id := 0
	for _, n := range s.Sizes {
		m := procs(n)
		for _, ul := range s.ULs {
			for _, family := range s.Families {
				for rep := 0; rep < reps(family); rep++ {
					id++
					cases = append(cases, CaseSpec{
						Name:   fmt.Sprintf("%s-%02d-%s-n%d-ul%g-r%d", prefix, id, family, n, ul, rep),
						Family: family, N: n, M: m, UL: ul,
						Seed: seed + int64(id)*1000,
					})
				}
			}
		}
	}
	return cases, nil
}

// Run expands the grid and executes it like Fig. 6: all cases through
// RunCases on one shared pool, their Pearson matrices aggregated
// element-wise.
func (s Sweep) Run(ctx context.Context, cfg Config, opts RunOptions) (*Fig6Result, error) {
	specs, err := s.Cases(cfg.Seed)
	if err != nil {
		return nil, err
	}
	return AggregateCases(ctx, specs, cfg, opts)
}
