//go:build !race

package experiment

// raceEnabled reports whether the binary was built with -race.
const raceEnabled = false
