//go:build race

package experiment

// raceEnabled reports that this binary was built with the race
// detector; scale-gate tests (TestSweepCase10k) skip themselves under
// it — the detector's ~10-20x slowdown turns a minutes-long case into
// hours, and the concurrency it would patrol is already covered by the
// race run of the smaller cases.
const raceEnabled = true
