package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/dag"
	"repro/internal/graphgen"
)

// GraphFamily is one registered workload: a stable string name (the
// identity hashed into disk-cache keys and written into JSON
// documents), a size-rounding function mapping requested task counts
// onto the family's achievable size grid, and a generator.
//
// Families are registered by name in a process-wide registry; the
// paper's three application structures plus the elementary join ship
// built in, and callers can RegisterFamily additional ones. Cache keys
// and JSON documents reference families only by name, so registration
// order can never alias results across families.
type GraphFamily struct {
	// Name is the stable identifier. It must be non-empty and unique;
	// it appears in case names, JSON documents, CLI flags and cache
	// keys, so renaming a family invalidates its cached results.
	Name string
	// Describe is a one-line description for CLI/README listings.
	Describe string
	// RoundSize returns the achievable task count closest to the
	// requested n. When the closest achievable count is off by more
	// than a factor of two it returns a *SizeError — never a silently
	// clamped size.
	RoundSize func(n int) (int, error)
	// Generate builds the graph with exactly n tasks plus optional
	// per-task mean computation weights. BuildScenario always passes
	// the RoundSize result, so Generate can assume n is achievable —
	// it never needs to round (or clamp) itself. Families returning
	// nil weights get the uniform [10, 20] ETC treatment of the
	// paper's structured graphs; families returning weights go through
	// platform.GenerateETCFromWeights with Vmach = 0.5.
	Generate func(n int, rng *rand.Rand) (*dag.Graph, []float64, error)
}

// SizeError reports a workload size request that the family's size
// grid cannot approximate within a factor of two. It replaces the old
// behavior of silently clamping large requests (a Cholesky case asking
// for 50 000 tasks used to get a ~10 660-task graph with no error).
type SizeError struct {
	Family    string
	Requested int
	Closest   int
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("experiment: family %q cannot build a graph of ~%d tasks (closest achievable size is %d, off by more than 2x)",
		e.Family, e.Requested, e.Closest)
}

// Stable names of the built-in workload families.
const (
	RandomFamily         = "random"
	CholeskyFamily       = "cholesky"
	GaussElimFamily      = "gausselim"
	JoinFamily           = "join"
	InTreeFamily         = "intree"
	OutTreeFamily        = "outtree"
	SeriesParallelFamily = "seriesparallel"
	FFTFamily            = "fft"
	StrassenFamily       = "strassen"
	STGFamily            = "stg"
)

var (
	familiesMu sync.RWMutex
	families   = make(map[string]GraphFamily)
)

// RegisterFamily adds a workload family to the registry. The name must
// be non-empty and not yet taken, and both closures must be set.
func RegisterFamily(f GraphFamily) error {
	if f.Name == "" {
		return fmt.Errorf("experiment: RegisterFamily: empty family name")
	}
	if f.RoundSize == nil || f.Generate == nil {
		return fmt.Errorf("experiment: RegisterFamily %q: RoundSize and Generate are required", f.Name)
	}
	familiesMu.Lock()
	defer familiesMu.Unlock()
	if _, dup := families[f.Name]; dup {
		return fmt.Errorf("experiment: RegisterFamily %q: already registered", f.Name)
	}
	families[f.Name] = f
	return nil
}

// MustRegisterFamily is RegisterFamily panicking on error, for
// package-init registration.
func MustRegisterFamily(f GraphFamily) {
	if err := RegisterFamily(f); err != nil {
		panic(err)
	}
}

// FamilyByName looks a family up by its stable name.
func FamilyByName(name string) (GraphFamily, error) {
	familiesMu.RLock()
	f, ok := families[name]
	familiesMu.RUnlock()
	if !ok {
		return GraphFamily{}, fmt.Errorf("experiment: unknown workload family %q (registered: %v)", name, FamilyNames())
	}
	return f, nil
}

// FamilyNames returns the registered family names, sorted.
func FamilyNames() []string {
	familiesMu.RLock()
	defer familiesMu.RUnlock()
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// exactSize is the RoundSize of families that achieve every task count
// from min upward: the identity above min, the smallest achievable
// size below it (still subject to the factor-two window).
func exactSize(family string, min int) func(int) (int, error) {
	return func(n int) (int, error) {
		if n >= min {
			return n, nil
		}
		if min > 2*n {
			return 0, &SizeError{Family: family, Requested: n, Closest: min}
		}
		return min, nil
	}
}

// gridRound finds the achievable count closest to n on a sparse size
// grid count(k), k = kMin, kMin+1, ... with count strictly increasing.
// It searches the grid without any arbitrary parameter cap — the old
// fixed caps are what silently clamped large requests — and returns a
// *SizeError when even the closest count is off by more than a factor
// of two.
func gridRound(family string, n, kMin int, count func(int) int) (k, c int, err error) {
	if n < 1 {
		return 0, 0, &SizeError{Family: family, Requested: n, Closest: count(kMin)}
	}
	bestK, bestC := kMin, count(kMin)
	for k := kMin; ; k++ {
		c := count(k)
		if abs(c-n) < abs(bestC-n) {
			bestK, bestC = k, c
		}
		// The grid is increasing: once past 2n nothing closer follows.
		if c >= 2*n {
			break
		}
	}
	if bestC > 2*n || 2*bestC < n {
		return 0, 0, &SizeError{Family: family, Requested: n, Closest: bestC}
	}
	return bestK, bestC, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// sizeOnly adapts a (param, count, error) rounding function to the
// RoundSize signature.
func sizeOnly(round func(int) (int, int, error)) func(int) (int, error) {
	return func(n int) (int, error) {
		_, c, err := round(n)
		return c, err
	}
}

// Built-in family parameter rounders, shared by RoundSize and Generate.
func choleskyRound(n int) (tiles, count int, err error) {
	return gridRound(CholeskyFamily, n, 1, graphgen.CholeskyTaskCount)
}

func gaussElimRound(n int) (size, count int, err error) {
	return gridRound(GaussElimFamily, n, 2, graphgen.GaussElimTaskCount)
}

func fftRound(n int) (points, count int, err error) {
	k, c, err := gridRound(FFTFamily, n, 1, func(k int) int { return (1 << k) * (k + 1) })
	return 1 << k, c, err
}

func strassenRound(n int) (levels, count int, err error) {
	return gridRound(StrassenFamily, n, 1, graphgen.StrassenTaskCount)
}

// treeArity is the branching factor of the built-in in/out-tree
// families.
const treeArity = 2

func init() {
	MustRegisterFamily(GraphFamily{
		Name:      RandomFamily,
		Describe:  "layered random DAG of §V (CCR 0.1, Gamma task/comm costs)",
		RoundSize: exactSize(RandomFamily, 1),
		Generate: func(n int, rng *rand.Rand) (*dag.Graph, []float64, error) {
			g, weights := graphgen.Random(graphgen.DefaultRandomParams(n), rng)
			return g, weights, nil
		},
	})
	MustRegisterFamily(GraphFamily{
		Name:      CholeskyFamily,
		Describe:  "tiled right-looking Cholesky factorization (paper Fig. 3)",
		RoundSize: sizeOnly(choleskyRound),
		Generate: func(n int, rng *rand.Rand) (*dag.Graph, []float64, error) {
			tiles, _, err := choleskyRound(n)
			if err != nil {
				return nil, nil, err
			}
			return graphgen.Cholesky(tiles, 10, 20, rng), nil, nil
		},
	})
	MustRegisterFamily(GraphFamily{
		Name:      GaussElimFamily,
		Describe:  "Cosnard et al. Gaussian elimination (paper Fig. 5)",
		RoundSize: sizeOnly(gaussElimRound),
		Generate: func(n int, rng *rand.Rand) (*dag.Graph, []float64, error) {
			size, _, err := gaussElimRound(n)
			if err != nil {
				return nil, nil, err
			}
			return graphgen.GaussElim(size, 10, 20, rng), nil, nil
		},
	})
	MustRegisterFamily(GraphFamily{
		Name:      JoinFamily,
		Describe:  "join of Fig. 9: n-1 independent sources feeding one sink (n tasks total)",
		RoundSize: exactSize(JoinFamily, 2),
		Generate: func(n int, rng *rand.Rand) (*dag.Graph, []float64, error) {
			return graphgen.Join(n, 0), nil, nil
		},
	})
	MustRegisterFamily(GraphFamily{
		Name:      InTreeFamily,
		Describe:  "complete binary in-tree (reduction): leaves feed the root",
		RoundSize: exactSize(InTreeFamily, 1),
		Generate: func(n int, rng *rand.Rand) (*dag.Graph, []float64, error) {
			return graphgen.InTree(n, treeArity, 10, 20, rng), nil, nil
		},
	})
	MustRegisterFamily(GraphFamily{
		Name:      OutTreeFamily,
		Describe:  "complete binary out-tree (divide): the root feeds the leaves",
		RoundSize: exactSize(OutTreeFamily, 1),
		Generate: func(n int, rng *rand.Rand) (*dag.Graph, []float64, error) {
			return graphgen.OutTree(n, treeArity, 10, 20, rng), nil, nil
		},
	})
	MustRegisterFamily(GraphFamily{
		Name:      SeriesParallelFamily,
		Describe:  "random two-terminal series-parallel DAG (fork/join programs)",
		RoundSize: exactSize(SeriesParallelFamily, 2),
		Generate: func(n int, rng *rand.Rand) (*dag.Graph, []float64, error) {
			return graphgen.SeriesParallel(n, 10, 20, rng), nil, nil
		},
	})
	MustRegisterFamily(GraphFamily{
		Name:      FFTFamily,
		Describe:  "p-point FFT butterfly, p a power of two (Topcuoglu et al.)",
		RoundSize: sizeOnly(fftRound),
		Generate: func(n int, rng *rand.Rand) (*dag.Graph, []float64, error) {
			points, _, err := fftRound(n)
			if err != nil {
				return nil, nil, err
			}
			return graphgen.FFT(points, 10, 20, rng), nil, nil
		},
	})
	MustRegisterFamily(GraphFamily{
		Name:      StrassenFamily,
		Describe:  "r-level Strassen matrix multiplication (25, 193, 1369, ... tasks)",
		RoundSize: sizeOnly(strassenRound),
		Generate: func(n int, rng *rand.Rand) (*dag.Graph, []float64, error) {
			levels, _, err := strassenRound(n)
			if err != nil {
				return nil, nil, err
			}
			return graphgen.Strassen(levels, 10, 20, rng), nil, nil
		},
	})
	MustRegisterFamily(GraphFamily{
		Name:      STGFamily,
		Describe:  "Tobita-Kasahara-style layered STG (width/regularity/density/jump)",
		RoundSize: exactSize(STGFamily, 3),
		Generate: func(n int, rng *rand.Rand) (*dag.Graph, []float64, error) {
			return graphgen.STG(graphgen.DefaultSTGParams(n), 10, 20, rng), nil, nil
		},
	})
}
