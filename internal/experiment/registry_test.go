package experiment

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/graphgen"
	"repro/internal/robustness"
	"repro/internal/runner"
	"repro/internal/schedule"
)

// Regression for the silent-clamp bug: choleskyTiles used to cap its
// search at 40 tiles (11 480 tasks) and gaussElimSize at size 80
// (3 239 tasks), so a case requesting 50 000 tasks silently got a
// ~10 660-task graph. The registry rounders search the whole grid.
func TestLargeSizeRequestsNoLongerClamp(t *testing.T) {
	tiles, count, err := choleskyRound(50000)
	if err != nil {
		t.Fatalf("choleskyRound(50000): %v", err)
	}
	if tiles != 66 || count != 50116 {
		t.Errorf("choleskyRound(50000) = (%d tiles, %d tasks), want (66, 50116)", tiles, count)
	}
	size, count, err := gaussElimRound(50000)
	if err != nil {
		t.Fatalf("gaussElimRound(50000): %v", err)
	}
	if size != 316 || count != 50085 {
		t.Errorf("gaussElimRound(50000) = (size %d, %d tasks), want (316, 50085)", size, count)
	}
}

// A size the family grid cannot approximate within a factor of two is
// a typed error, never a clamped graph.
func TestUnachievableSizeIsAnError(t *testing.T) {
	fam, err := FamilyByName(StrassenFamily)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{10, 100, 5000} {
		_, err := fam.RoundSize(n)
		var se *SizeError
		if !errors.As(err, &se) {
			t.Fatalf("strassen RoundSize(%d) = %v, want *SizeError", n, err)
		}
		if se.Family != StrassenFamily || se.Requested != n {
			t.Errorf("SizeError fields = %+v", se)
		}
		// The whole stack surfaces it: scenario build...
		spec := CaseSpec{Name: "bad", Family: StrassenFamily, N: n, M: 3, UL: 1.1, Seed: 1}
		if _, err := spec.BuildScenario(); !errors.As(err, &se) {
			t.Errorf("BuildScenario(n=%d) = %v, want *SizeError", n, err)
		}
		// ...and the sweep grid, before any compute is spent.
		_, err = Sweep{Families: []string{StrassenFamily}, Sizes: []int{n}, ULs: []float64{1.1}}.Cases(1)
		if !errors.As(err, &se) {
			t.Errorf("Sweep.Cases(n=%d) = %v, want *SizeError", n, err)
		}
	}
	// Achievable strassen sizes round normally.
	if got, err := fam.RoundSize(25); err != nil || got != 25 {
		t.Errorf("strassen RoundSize(25) = (%d, %v), want exactly 25", got, err)
	}
	if got, err := fam.RoundSize(30); err != nil || got != 25 {
		t.Errorf("strassen RoundSize(30) = (%d, %v), want 25", got, err)
	}
}

// Regression for the JoinGraph contract: the family builds exactly N
// tasks — N−1 independent sources feeding one sink — matching
// graphgen.Join; Fig. 9 (n parallel tasks + sink) passes n+1.
func TestJoinFamilyTaskCount(t *testing.T) {
	for _, n := range []int{2, 5, 9, 33} {
		scen, err := CaseSpec{Name: "join", Family: JoinFamily, N: n, M: 3, UL: 1.2, Seed: 3}.BuildScenario()
		if err != nil {
			t.Fatal(err)
		}
		if scen.G.N() != n {
			t.Errorf("join family built %d tasks for N=%d, want exactly N", scen.G.N(), n)
		}
		if got := len(scen.G.Pred(scen.G.Sinks()[0])); got != n-1 {
			t.Errorf("join sink has %d predecessors for N=%d, want N-1", got, n)
		}
	}
	// The graphgen primitive agrees: Join(n) is n tasks total.
	if g := graphgen.Join(9, 0); g.N() != 9 || len(g.Sources()) != 8 {
		t.Errorf("graphgen.Join(9) = %d tasks, %d sources; want 9 and 8", g.N(), len(g.Sources()))
	}
}

// feasibleSizes maps every built-in family to a target size its grid
// achieves, for end-to-end runs.
var feasibleSizes = map[string]int{
	RandomFamily:         12,
	CholeskyFamily:       10,
	GaussElimFamily:      12,
	JoinFamily:           10,
	InTreeFamily:         12,
	OutTreeFamily:        12,
	SeriesParallelFamily: 12,
	FFTFamily:            12,
	StrassenFamily:       25,
	STGFamily:            12,
}

// Every registered family must run end to end through RunCases and
// produce a correlation matrix with finite, meaningful entries.
func TestEveryFamilyRunsEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.Schedules = 12
	var specs []CaseSpec
	for _, name := range FamilyNames() {
		n, ok := feasibleSizes[name]
		if !ok {
			// A family registered by another test: pick a round size.
			fam, err := FamilyByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if n, err = fam.RoundSize(12); err != nil {
				t.Fatalf("no feasible size for extra family %q: %v", name, err)
			}
		}
		specs = append(specs, CaseSpec{
			Name: "e2e-" + name, Family: name, N: n, M: 3, UL: 1.1,
		}.WithDerivedSeed(cfg.Seed))
	}
	results, err := RunCases(context.Background(), specs, cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if len(res.Corr) != robustness.NumMetrics {
			t.Fatalf("%s: correlation matrix has %d rows", specs[i].Name, len(res.Corr))
		}
		finite := 0
		for _, row := range res.Corr {
			for _, v := range row {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					finite++
				}
			}
		}
		// Degenerate columns may be NaN, but a family whose whole
		// matrix is undefined never exercises the pipeline.
		if finite < robustness.NumMetrics {
			t.Errorf("%s: only %d finite correlation entries", specs[i].Name, finite)
		}
		if len(res.Metrics) != cfg.Schedules {
			t.Errorf("%s: %d metric vectors, want %d", specs[i].Name, len(res.Metrics), cfg.Schedules)
		}
	}
}

func TestRegisterFamilyValidation(t *testing.T) {
	if err := RegisterFamily(GraphFamily{}); err == nil {
		t.Error("empty family accepted")
	}
	if err := RegisterFamily(GraphFamily{Name: "half-baked"}); err == nil {
		t.Error("family without closures accepted")
	}
	if err := RegisterFamily(GraphFamily{
		Name:      RandomFamily,
		RoundSize: exactSize(RandomFamily, 1),
		Generate:  families[RandomFamily].Generate,
	}); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate registration = %v", err)
	}
}

// legacySpecV2 reproduces the pre-registry CaseSpec layout: the graph
// family as an iota-valued int. Field names and order match the old
// struct, so runner.Key hashes exactly the bytes v2 produced.
type legacySpecV2 struct {
	Name string
	Kind int
	N    int
	M    int
	UL   float64
	Seed int64
}

// cacheCfgPart mirrors the config fields hashed into the case key (the
// same struct shape both versions use).
type cacheCfgPart struct {
	Schedules   int
	GridSize    int
	Delta       float64
	Gamma       float64
	MCSampler   string
	MCBlockSize int
}

// v2 keys hashed the iota int, so inserting or reordering a family
// silently aliased disk-cache entries across families. v3 keys hash
// the stable name and must never collide with any v2 key.
func TestCacheKeyV3NeverAliasesV2(t *testing.T) {
	cfg := DefaultConfig()
	part := cacheCfgPart{cfg.Schedules, cfg.GridSize, cfg.Delta, cfg.Gamma, "exact", schedule.DefaultBlockSize}
	legacyNames := []string{"random", "cholesky", "gausselim", "join"}
	v2 := make(map[string]string)
	for kind, name := range legacyNames {
		key, err := runner.Key("repro/case/v2",
			legacySpecV2{Name: "k", Kind: kind, N: 10, M: 3, UL: 1.1, Seed: 7}, part)
		if err != nil {
			t.Fatal(err)
		}
		v2[key] = name
	}
	for _, name := range FamilyNames() {
		key, err := CaseCacheKey(CaseSpec{Name: "k", Family: name, N: 10, M: 3, UL: 1.1, Seed: 7}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if old, clash := v2[key]; clash {
			t.Errorf("v3 key for family %q aliases the v2 key of %q", name, old)
		}
	}
}

// Cache keys depend only on the stable family name, never on
// registration order: registering more families must not move any
// existing key, and distinct families must never share one.
func TestCacheKeyInvariantUnderRegistrationOrder(t *testing.T) {
	cfg := DefaultConfig()
	spec := func(family string) CaseSpec {
		return CaseSpec{Name: "k", Family: family, N: 10, M: 3, UL: 1.1, Seed: 7}
	}
	before := make(map[string]string)
	for _, name := range FamilyNames() {
		key, err := CaseCacheKey(spec(name), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prevFam, dup := before[key]; dup {
			t.Fatalf("families %q and %q share a cache key", prevFam, name)
		}
		before[key] = name
	}
	// Growing the registry — the v2 failure mode was exactly this —
	// must leave every existing key untouched.
	MustRegisterFamily(GraphFamily{
		Name:      "test-registration-order-probe",
		RoundSize: exactSize("test-registration-order-probe", 1),
		Generate:  families[JoinFamily].Generate,
	})
	for key, name := range before {
		again, err := CaseCacheKey(spec(name), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if again != key {
			t.Errorf("family %q cache key changed after registering another family", name)
		}
	}
}

// The grid builder reproduces Fig. 6 exactly: the sweep that subsumed
// the hand-rolled Fig6Cases must keep every name, seed and geometry.
func TestFig6CasesViaSweepGrid(t *testing.T) {
	cases := Fig6Cases(42)
	if len(cases) != 24 {
		t.Fatalf("Fig6Cases returned %d cases, want 24", len(cases))
	}
	// Spot-check identity against the historical enumeration.
	first := cases[0]
	if first.Name != "fig6-01-cholesky-n10-ul1.01-r0" || first.Seed != 42+1000 || first.M != 3 {
		t.Errorf("first case = %+v", first)
	}
	last := cases[23]
	if last.Name != "fig6-24-random-n100-ul1.1-r1" || last.Seed != 42+24000 || last.M != 16 {
		t.Errorf("last case = %+v", last)
	}
	for _, c := range cases {
		if _, err := FamilyByName(c.Family); err != nil {
			t.Errorf("case %s: %v", c.Name, err)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := (Sweep{Sizes: []int{10}, ULs: []float64{1.1}}).Cases(1); err == nil {
		t.Error("empty family list accepted")
	}
	if _, err := (Sweep{Families: []string{"nope"}, Sizes: []int{10}, ULs: []float64{1.1}}).Cases(1); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := (Sweep{Families: []string{RandomFamily}, ULs: []float64{1.1}}).Cases(1); err == nil {
		t.Error("empty size list accepted")
	}
	if _, err := (Sweep{Families: []string{RandomFamily}, Sizes: []int{10}}).Cases(1); err == nil {
		t.Error("empty UL list accepted")
	}
	cases, err := (Sweep{
		Families: []string{InTreeFamily, FFTFamily},
		Sizes:    []int{10, 30},
		ULs:      []float64{1.05},
		Reps:     2,
	}).Cases(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 8 {
		t.Fatalf("grid expanded to %d cases, want 2×2×1×2 = 8", len(cases))
	}
	seen := map[string]bool{}
	for _, c := range cases {
		if seen[c.Name] {
			t.Errorf("duplicate case name %s", c.Name)
		}
		seen[c.Name] = true
		if c.M != DefaultSweepProcs(c.N) {
			t.Errorf("case %s: M=%d, want %d", c.Name, c.M, DefaultSweepProcs(c.N))
		}
	}
}
