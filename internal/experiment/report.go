package experiment

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/robustness"
	"repro/internal/stats"
)

// WriteFig1 renders the Fig. 1 table.
func WriteFig1(w io.Writer, rows []Fig1Row) {
	fmt.Fprintln(w, "# Fig. 1 — average precision of the independence assumption (UL = 1.1)")
	fmt.Fprintln(w, "# graph_size  KS  CM")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d  %.4g  %.4g\n", r.N, r.KS, r.CM)
	}
}

// WriteFig2 renders the Fig. 2 density series.
func WriteFig2(w io.Writer, res *Fig2Result) {
	fmt.Fprintf(w, "# Fig. 2 — calculated vs experimental makespan density (KS = %.3g, CM = %.3g)\n", res.KS, res.CM)
	fmt.Fprintln(w, "# makespan  calculated  experimental")
	for i := range res.X {
		fmt.Fprintf(w, "%.6g  %.6g  %.6g\n", res.X[i], res.Calculated[i], res.Empirical[i])
	}
}

// WriteCase renders a correlation case in the style of Figs. 3–5: the
// Pearson matrix over the random schedules, then the heuristics'
// metric vectors.
func WriteCase(w io.Writer, res *CaseResult) {
	fmt.Fprintf(w, "# %s — %d random schedules, graph %s (n=%d, m=%d, UL=%g)\n",
		res.Spec.Name, len(res.Metrics), res.Spec.Family, res.Spec.N, res.Spec.M, res.Spec.UL)
	fmt.Fprintln(w, "# Pearson coefficients over the random schedules (slack and probabilistic metrics inverted):")
	fmt.Fprint(w, stats.FormatMatrix(metricShortNames, res.Corr, nil))
	fmt.Fprintf(w, "# (1-R)/M vs sigma_M Pearson: %.4f\n", res.RelByMakespanVsStd)
	fmt.Fprintln(w, "# heuristics:")
	fmt.Fprintf(w, "%-8s %12s %12s %12s %12s %12s %12s %12s %12s\n",
		"name", "makespan", "stddev", "entropy", "slack", "slackstd", "lateness", "absprob", "relprob")
	for _, h := range res.Heuristics {
		v := h.Metrics.Vector()
		fmt.Fprintf(w, "%-8s", h.Name)
		for _, x := range v {
			fmt.Fprintf(w, " %12.5g", x)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "# best random makespan: %.5g\n", res.BestRandomMakespan())
}

// WriteFig6 renders the aggregated matrix in the paper's layout (mean
// above the diagonal, std-dev below).
func WriteFig6(w io.Writer, res *Fig6Result) {
	fmt.Fprintf(w, "# Fig. 6 — Pearson coefficients over %d experiments (mean above diagonal, std-dev below)\n", len(res.Cases))
	fmt.Fprint(w, stats.FormatMatrix(metricShortNames, res.Mean, res.Std))
	fmt.Fprintf(w, "# (1-R)/M vs sigma_M: mean %.4f, std %.4f (paper: 0.998 ± 0.009)\n",
		res.RelByMkspnMean, res.RelByMkspnStd)
}

// WriteFig7 renders the special-vs-normal density table.
func WriteFig7(w io.Writer, res *Fig7Result) {
	fmt.Fprintf(w, "# Fig. 7 — special distribution vs normal (mean %.4g, std %.4g)\n", res.Mean, res.Std)
	fmt.Fprintln(w, "# x  special  normal")
	for i := range res.X {
		fmt.Fprintf(w, "%.6g  %.6g  %.6g\n", res.X[i], res.Special[i], res.Normal[i])
	}
}

// WriteFig8 renders the CLT convergence table.
func WriteFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "# Fig. 8 — precision of the normal approximation of n-fold self-sums")
	fmt.Fprintln(w, "# sums  KS  CM(area)  CvM(omega2)")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d  %.4g  %.4g  %.4g\n", r.Sums, r.KS, r.CM, r.CvMSquared)
	}
}

// WriteFig9 renders the slack-vs-robustness case study.
func WriteFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "# Fig. 9 — join-graph schedules: slack does not predict robustness")
	fmt.Fprintf(w, "%-22s %12s %12s %12s\n", "schedule", "slack", "sigma_M", "E(M)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %12.5g %12.5g %12.5g\n", r.Name, r.Slack, r.StdDev, r.Makespan)
	}
}

// SummarizeHeuristics produces the §VI/§VII claim check: for each
// heuristic, whether it beats the best random schedule on expected
// makespan and where its σ_M ranks among the random schedules
// (fraction of random schedules with smaller σ_M).
func SummarizeHeuristics(res *CaseResult) string {
	var b strings.Builder
	best := res.BestRandomMakespan()
	for _, h := range res.Heuristics {
		rank := sigmaRank(res.Metrics, h.Metrics.StdDev)
		fmt.Fprintf(&b, "%s: E(M)=%.5g (best random %.5g, %s), sigma_M beats %.0f%% of random schedules\n",
			h.Name, h.Metrics.Makespan, best,
			okWord(h.Metrics.Makespan <= best), 100*rank)
	}
	return b.String()
}

func sigmaRank(ms []robustness.Metrics, sigma float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	var worse int
	for _, m := range ms {
		if m.StdDev >= sigma {
			worse++
		}
	}
	return float64(worse) / float64(len(ms))
}

func okWord(ok bool) string {
	if ok {
		return "better"
	}
	return "worse"
}
