package experiment

// Chaos tests for the supervised sweep: deterministic injected panics,
// delays (→ timeouts), and cache corruption must leave a sweep that
// completes, reports every fault, and delivers byte-identical results
// for every non-faulted case at any worker count.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/runner"
)

func chaosConfig() Config {
	cfg := DefaultConfig()
	cfg.Schedules = 8
	cfg.MCRealizations = 500
	cfg.GridSize = 32
	cfg.Seed = 7
	return cfg
}

func chaosSpecs() []CaseSpec {
	return []CaseSpec{
		{Name: "chaos-a", Family: CholeskyFamily, N: 10, M: 3, UL: 1.01, Seed: 21},
		{Name: "chaos-b", Family: RandomFamily, N: 12, M: 3, UL: 1.1, Seed: 22},
		{Name: "chaos-c", Family: GaussElimFamily, N: 15, M: 4, UL: 1.1, Seed: 23},
		{Name: "chaos-d", Family: RandomFamily, N: 20, M: 4, UL: 1.01, Seed: 24},
	}
}

func encodeResults(t *testing.T, results []*CaseResult) [][]byte {
	t.Helper()
	out := make([][]byte, len(results))
	for i, r := range results {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = data
	}
	return out
}

func findCaseReport(d RunReportData, name string) (CaseReport, bool) {
	for _, c := range d.Cases {
		if c.Case == name {
			return c, true
		}
	}
	return CaseReport{}, false
}

// The acceptance chaos test: one panic, one timeout, one corrupted
// cache entry — the sweep completes at workers 1 and 8, the failure
// report enumerates every fault with attempts and outcomes, all case
// results (faulted cases recover via clean re-attempts) are
// byte-identical to a fault-free run, and the corrupted entry is
// quarantined and recomputed instead of aborting the resume.
func TestChaosSweepCompletesAndMatchesFaultFree(t *testing.T) {
	specs := chaosSpecs()
	cfg := chaosConfig()

	// Fault-free reference (results are worker-count-independent, so
	// one reference serves both chaos worker counts).
	refResults, err := RunCases(context.Background(), specs, cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref := encodeResults(t, refResults)

	corruptKey, err := CaseCacheKey(specs[2], cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		// Pre-corrupt chaos-c's cache entry (and only chaos-c — the
		// other cases must compute fresh so the injected faults hit
		// their sites): an interrupted sweep wrote it through a
		// corrupting injector, simulating disk rot before the resume.
		cache, err := runner.OpenCache(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		seedInj := resilience.NewInjector(1, resilience.Fault{
			Site: corruptKey, Kind: resilience.KindCorrupt, Times: 1})
		cache.SetCorruptor(seedInj.Corrupt)
		if _, err := RunCases(context.Background(), specs[2:3], cfg, RunOptions{Cache: cache}); err != nil {
			t.Fatal(err)
		}
		if got := len(seedInj.Events()); got != 1 {
			t.Fatalf("corruption injector fired %d times, want 1", got)
		}
		cache.SetCorruptor(nil)

		ccfg := cfg
		ccfg.Workers = workers
		// The deadline must be generous enough that only the injected
		// delay — never a legitimately computing case on a loaded or
		// race-instrumented machine — trips it.
		ccfg.CaseTimeout = 5 * time.Second
		ccfg.MaxRetries = 2
		inj := resilience.NewInjector(5,
			// Panic in the middle of chaos-a's first evaluation fan-out.
			resilience.Fault{Site: "case/chaos-a/attempt0/eval/3", Kind: resilience.KindPanic},
			// Stall chaos-b's first attempt past the case deadline.
			resilience.Fault{Site: "case/chaos-b/attempt0/build", Kind: resilience.KindDelay, Delay: 6 * time.Second},
			// Plain error from a heuristic job on chaos-d's first attempt.
			resilience.Fault{Site: "case/chaos-d/attempt0/heur/HEFT", Kind: resilience.KindError},
		)
		report := NewRunReport()
		report.AttachCache(cache)
		report.AttachInjector(inj)
		pool := runner.NewPool(workers)
		results, err := RunCases(context.Background(), specs, ccfg, RunOptions{
			Pool: pool, Cache: cache, Injector: inj, Report: report,
		})
		pool.Close()
		if err != nil {
			t.Fatalf("workers=%d: chaos sweep failed: %v", workers, err)
		}

		// Every case — faulted ones via clean re-attempts, the
		// corrupted one via quarantine + recompute — matches the
		// fault-free bytes.
		got := encodeResults(t, results)
		for i := range specs {
			if !bytes.Equal(got[i], ref[i]) {
				t.Errorf("workers=%d: case %s differs from fault-free run", workers, specs[i].Name)
			}
		}

		d := report.Snapshot()
		if d.CasesTotal != len(specs) {
			t.Errorf("workers=%d: report counts %d cases, want %d", workers, d.CasesTotal, len(specs))
		}
		wantOutcomes := map[string]string{"chaos-a": "panic", "chaos-b": "timeout", "chaos-d": "error"}
		for name, kind := range wantOutcomes {
			cr, ok := findCaseReport(d, name)
			if !ok {
				t.Errorf("workers=%d: report lacks case %s", workers, name)
				continue
			}
			// The first attempt must fail with the injected kind and the
			// last must succeed. Intermediate attempts — if any — can only
			// be genuine timeouts (a loaded machine may push a clean retry
			// past the deadline); any other outcome is a real bug.
			if len(cr.Attempts) < 2 || cr.Attempts[0].Outcome != kind || cr.Attempts[len(cr.Attempts)-1].Outcome != "ok" {
				t.Errorf("workers=%d: case %s attempts %+v, want [%s ... ok]", workers, name, cr.Attempts, kind)
			}
			for _, a := range cr.Attempts[1 : len(cr.Attempts)-1] {
				if a.Outcome != "timeout" {
					t.Errorf("workers=%d: case %s unexpected intermediate attempt %+v", workers, name, a)
				}
			}
			if cr.Failed() {
				t.Errorf("workers=%d: recovered case %s marked failed", workers, name)
			}
		}
		if len(d.Injected) != 3 {
			t.Errorf("workers=%d: %d injected faults in report, want 3", workers, len(d.Injected))
		}
		// The resume consumed the corrupted entry: exactly one
		// quarantine + recompute, enumerated in the report.
		if len(d.Quarantines) != 1 || d.Quarantines[0].Key != corruptKey {
			t.Errorf("workers=%d: quarantines %+v, want exactly the corrupted key", workers, d.Quarantines)
		}
		// chaos-c (corruption) and chaos-a/b/d recovered: nothing in
		// the report may be a permanent failure.
		if n := len(d.Failures()); n != 0 {
			t.Errorf("workers=%d: %d permanent failures reported", workers, n)
		}

		// The recomputed chaos-c entry verifies on a fresh read.
		if _, ok, err := cache.Get(corruptKey); err != nil || !ok {
			t.Errorf("workers=%d: recomputed entry not served: ok=%v err=%v", workers, ok, err)
		}
	}
}

// Every timed attempt exhausting the deadline must walk the
// degradation ladder: deliver the next coarser preset, mark the
// result, and report honestly.
func TestDegradeOnTimeoutDeliversCoarserResult(t *testing.T) {
	spec := CaseSpec{Name: "deg", Family: RandomFamily, N: 12, M: 3, UL: 1.1, Seed: 31}
	cfg := chaosConfig()
	cfg.EvalAccuracy = "fast"
	cfg.CaseTimeout = 300 * time.Millisecond
	cfg.MaxRetries = 1
	cfg.DegradeOnTimeout = true

	// Delay fires at every timed attempt's build site (unlimited
	// budget) — only the degraded attempt, whose sites carry the
	// "degraded" prefix, escapes it.
	inj := resilience.NewInjector(9, resilience.Fault{
		Site: "case/deg/attempt", Kind: resilience.KindDelay, Delay: 500 * time.Millisecond})
	report := NewRunReport()
	results, err := RunCases(context.Background(), []CaseSpec{spec}, cfg, RunOptions{
		Injector: inj, Report: report,
	})
	if err != nil {
		t.Fatalf("degraded sweep failed: %v", err)
	}
	res := results[0]
	if res.Degraded != "coarse" {
		t.Fatalf("result Degraded = %q, want coarse", res.Degraded)
	}

	// The delivered numbers are exactly a clean coarse run's.
	coarseCfg := chaosConfig()
	coarseCfg.EvalAccuracy = "coarse"
	coarse, err := RunCase(spec, coarseCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Metrics, coarse.Metrics) || !reflect.DeepEqual(res.Corr, coarse.Corr) {
		t.Error("degraded result does not match a clean coarse evaluation")
	}

	d := report.Snapshot()
	cr, ok := findCaseReport(d, "deg")
	if !ok {
		t.Fatal("report lacks the degraded case")
	}
	if cr.Degraded != "coarse" {
		t.Errorf("report Degraded = %q", cr.Degraded)
	}
	if len(cr.Attempts) != 3 ||
		cr.Attempts[0].Outcome != "timeout" || cr.Attempts[1].Outcome != "timeout" ||
		cr.Attempts[2].Outcome != "degraded-ok" {
		t.Errorf("attempts %+v, want [timeout timeout degraded-ok]", cr.Attempts)
	}
}

// A case that fails every attempt either aborts the sweep with a
// typed CaseError (default) or — under KeepGoing — leaves a nil slot
// and lets its siblings finish.
func TestPermanentFailureTypedAndKeepGoing(t *testing.T) {
	specs := chaosSpecs()[:2] // chaos-a (healthy), chaos-b (doomed)
	cfg := chaosConfig()
	cfg.MaxRetries = 1
	doom := func() *resilience.Injector {
		return resilience.NewInjector(3, resilience.Fault{
			Site: "case/chaos-b/", Kind: resilience.KindError})
	}

	_, err := RunCases(context.Background(), specs, cfg, RunOptions{Injector: doom()})
	var ce *resilience.CaseError
	if !errors.As(err, &ce) {
		t.Fatalf("sweep error %T %v, want *resilience.CaseError", err, err)
	}
	if ce.Case != "chaos-b" || ce.Kind != "error" || ce.Attempts != 2 {
		t.Errorf("CaseError %+v, want chaos-b/error/2 attempts", ce)
	}

	report := NewRunReport()
	results, err := RunCases(context.Background(), specs, cfg, RunOptions{
		Injector: doom(), Report: report, KeepGoing: true,
	})
	if err != nil {
		t.Fatalf("KeepGoing sweep failed: %v", err)
	}
	if results[0] == nil || results[1] != nil {
		t.Fatalf("KeepGoing results [%v, %v], want [result, nil]", results[0] != nil, results[1] != nil)
	}
	d := report.Snapshot()
	fails := d.Failures()
	if len(fails) != 1 || fails[0].Case != "chaos-b" {
		t.Fatalf("failures %+v, want exactly chaos-b", fails)
	}
	if !strings.Contains(fails[0].Err, "injected error") {
		t.Errorf("failure cause %q lacks the root error", fails[0].Err)
	}

	// Aggregation under KeepGoing skips the failed case.
	agg, err := AggregateCases(context.Background(), specs, cfg, RunOptions{
		Injector: doom(), KeepGoing: true,
	})
	if err != nil {
		t.Fatalf("AggregateCases under KeepGoing: %v", err)
	}
	if len(agg.Cases) != 1 || agg.Cases[0].Spec.Name != "chaos-a" {
		t.Errorf("aggregated %d cases, want only chaos-a", len(agg.Cases))
	}
}

// A panicking case without retries must surface the panic as a typed
// error carrying the stack — never crash the process.
func TestPanicWithoutRetriesIsTypedError(t *testing.T) {
	specs := chaosSpecs()[:1]
	inj := resilience.NewInjector(1, resilience.Fault{
		Site: "case/chaos-a/attempt0/eval/0", Kind: resilience.KindPanic})
	_, err := RunCases(context.Background(), specs, chaosConfig(), RunOptions{Injector: inj})
	var ce *resilience.CaseError
	if !errors.As(err, &ce) {
		t.Fatalf("got %T %v, want *resilience.CaseError", err, err)
	}
	if ce.Kind != "panic" {
		t.Errorf("kind %q, want panic", ce.Kind)
	}
	var pe *resilience.PanicError
	if !errors.As(err, &pe) || len(pe.Stack) == 0 {
		t.Error("CaseError does not carry the panic stack")
	}
}

// Degraded results are cached under the degraded accuracy's own key —
// the timed-out accuracy's key must stay empty so a later healthy run
// never resumes onto silently coarser numbers.
func TestDegradedResultNeverPoisonsOriginalCacheKey(t *testing.T) {
	spec := CaseSpec{Name: "degc", Family: RandomFamily, N: 12, M: 3, UL: 1.1, Seed: 33}
	cfg := chaosConfig()
	cfg.EvalAccuracy = "fast"
	cfg.CaseTimeout = 300 * time.Millisecond
	cfg.DegradeOnTimeout = true
	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inj := resilience.NewInjector(9, resilience.Fault{
		Site: "case/degc/attempt", Kind: resilience.KindDelay, Delay: 500 * time.Millisecond})
	results, err := RunCases(context.Background(), []CaseSpec{spec}, cfg, RunOptions{
		Cache: cache, Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Degraded == "" {
		t.Fatal("expected a degraded result")
	}
	fastKey, err := CaseCacheKey(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cache.Get(fastKey); ok {
		t.Error("timed-out accuracy's key holds a (degraded) entry")
	}
	dcfg, _, ok := cfg.degraded()
	if !ok {
		t.Fatal("config did not degrade")
	}
	coarseKey, err := CaseCacheKey(spec, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	data, ok, err := cache.Get(coarseKey)
	if err != nil || !ok {
		t.Fatalf("degraded key not cached: ok=%v err=%v", ok, err)
	}
	// The cached entry is a clean coarse result: no Degraded marker.
	var cached CaseResult
	if err := json.Unmarshal(data, &cached); err != nil {
		t.Fatal(err)
	}
	if cached.Degraded != "" {
		t.Error("cache entry carries the Degraded marker; explicit coarse runs would inherit it")
	}
}
