package experiment

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/heuristics"
	"repro/internal/makespan"
	"repro/internal/platform"
	"repro/internal/resilience"
	"repro/internal/robustness"
	"repro/internal/runner"
	"repro/internal/schedule"
	"repro/internal/stats"
)

// HeuristicResult pairs a heuristic's name with its metric vector.
type HeuristicResult struct {
	Name    string
	Metrics robustness.Metrics
}

// CaseResult is the outcome of one correlation case: the metric
// vectors of every random schedule, the three heuristics' vectors, and
// the 8×8 Pearson matrix over the random schedules (computed on the
// inverted columns, like the paper's plots).
type CaseResult struct {
	Spec       CaseSpec
	Metrics    []robustness.Metrics
	Heuristics []HeuristicResult
	Corr       [][]float64
	// RelByMakespanVsStd is the §VII side result: Pearson of the
	// (inverted) relative probabilistic metric divided by the makespan
	// against the makespan standard deviation.
	RelByMakespanVsStd float64
	// Degraded, when non-empty, names the coarser evaluation accuracy
	// this result was delivered at after every timed attempt at the
	// configured accuracy hit the case deadline (the supervised
	// runner's degradation ladder). Empty on every normal result, so
	// fault-free documents are byte-identical to pre-resilience ones.
	Degraded string `json:",omitempty"`
}

// InvertedColumns converts metric vectors into the column orientation
// of the paper's plots: the slack is subtracted from the case maximum
// and the probabilistic metrics from 1, so that every metric improves
// downward (§VI).
func InvertedColumns(ms []robustness.Metrics) [][]float64 {
	k := robustness.NumMetrics
	cols := make([][]float64, k)
	for i := range cols {
		cols[i] = make([]float64, len(ms))
	}
	maxSlack := math.Inf(-1)
	for _, m := range ms {
		if m.AvgSlack > maxSlack {
			maxSlack = m.AvgSlack
		}
	}
	for r, m := range ms {
		v := m.Vector()
		for c := 0; c < k; c++ {
			cols[c][r] = v[c]
		}
		cols[3][r] = maxSlack - m.AvgSlack // slack: maximize → minimize
		cols[6][r] = 1 - m.AbsProb         // A(δ): maximize → minimize
		cols[7][r] = 1 - m.RelProb         // R(γ): maximize → minimize
	}
	return cols
}

// evaluateOne computes the metric vector of one schedule under the
// classical makespan evaluation, through the case's shared compiled
// evaluation cache: the disjunctive structure is built once per
// schedule and every distinct duration/communication distribution is
// discretized once per case.
func evaluateOne(cache *makespan.EvalCache, s *schedule.Schedule, cfg Config) (robustness.Metrics, error) {
	m, err := cache.Model(s)
	if err != nil {
		return robustness.Metrics{}, err
	}
	return m.Metrics(cfg.params()), nil
}

// RunCase executes one correlation case: it generates the scenario,
// draws the configured number of random schedules, evaluates all
// metrics for each (in parallel on a private pool), evaluates the
// three heuristics, and assembles the Pearson matrix.
func RunCase(spec CaseSpec, cfg Config) (*CaseResult, error) {
	pool := runner.NewPool(cfg.workers())
	defer pool.Close()
	return RunCaseOn(context.Background(), spec, cfg, pool)
}

// RunCaseOn is RunCase executing its per-schedule evaluations on a
// shared worker pool. Sweeps run many cases concurrently against one
// pool, so the case×schedule evaluations form a single job stream and
// the pool stays saturated across case boundaries. Results are
// written into index-addressed slots, so they are identical for every
// worker count.
func RunCaseOn(ctx context.Context, spec CaseSpec, cfg Config, pool *runner.Pool) (*CaseResult, error) {
	cfg, acc, err := cfg.resolveAccuracy()
	if err != nil {
		return nil, err
	}
	// Chaos-injection scope: nil outside chaos runs, so the fault
	// hooks below cost one pointer check per job on the happy path.
	scope := resilience.ScopeFrom(ctx)
	// The serial phases run as (single-job) pool batches too, so the
	// whole case — generation and assembly, not just the fan-out —
	// stays inside the worker bound even when many cases are in
	// flight.
	var (
		scen   *platform.Scenario
		cache  *makespan.EvalCache
		scheds []*schedule.Schedule
	)
	err = pool.Batch(ctx, 1, func(int) error {
		if err := scope.Hit("build"); err != nil {
			return err
		}
		var err error
		scen, err = spec.BuildScenario()
		if err != nil {
			return err
		}
		cache = makespan.NewEvalCacheAccuracy(scen, acc)
		rng := rand.New(rand.NewSource(spec.Seed ^ 0x5DEECE66D))
		scheds = heuristics.RandomSchedules(scen, cfg.schedulesFor(scen.G.N()), rng)
		return nil
	})
	if err != nil {
		return nil, err
	}
	nSched := len(scheds)

	metrics := make([]robustness.Metrics, nSched)
	err = pool.Batch(ctx, nSched, func(i int) error {
		if scope != nil {
			if err := scope.Hit("eval/" + strconv.Itoa(i)); err != nil {
				return err
			}
		}
		var err error
		metrics[i], err = evaluateOne(cache, scheds[i], cfg)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: case %q: %w", spec.Name, err)
	}

	res := &CaseResult{Spec: spec, Metrics: metrics}
	// The heuristic evaluations go through the pool too: each costs as
	// much as a schedule job, and running them on the case goroutine
	// would let a wide sweep exceed the -workers bound. Rows are
	// emitted in stable-name order, so the result — and any JSON or
	// report rendered from it — does not depend on the heuristics'
	// registration order (the PR 3 iota-key lesson applied to rows).
	hs := heuristics.All()
	sort.Slice(hs, func(i, j int) bool { return hs[i].Name < hs[j].Name })
	hres := make([]HeuristicResult, len(hs))
	err = pool.Batch(ctx, len(hs), func(i int) error {
		h := hs[i]
		if err := scope.Hit("heur/" + h.Name); err != nil {
			return err
		}
		hr, err := h.Fn(scen)
		if err != nil {
			return fmt.Errorf("experiment: case %q heuristic %s: %w", spec.Name, h.Name, err)
		}
		m, err := evaluateOne(cache, hr.Schedule, cfg)
		if err != nil {
			return fmt.Errorf("experiment: case %q heuristic %s: %w", spec.Name, h.Name, err)
		}
		hres[i] = HeuristicResult{Name: h.Name, Metrics: m}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Heuristics = hres

	err = pool.Batch(ctx, 1, func(int) error {
		cols := InvertedColumns(metrics)
		corr, err := stats.CorrMatrix(cols)
		if err != nil {
			return err
		}
		res.Corr = corr

		// §VII: the relative probabilistic metric divided by the
		// makespan (then inverted like the other probabilistic metrics)
		// against σ_M.
		relBy := make([]float64, nSched)
		stds := make([]float64, nSched)
		for i, m := range metrics {
			relBy[i] = 1 - m.RelProbByMakespan()
			stds[i] = m.StdDev
		}
		res.RelByMakespanVsStd = stats.Pearson(relBy, stds)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// BestRandomMakespan returns the smallest expected makespan among the
// case's random schedules (used to check the heuristics dominate).
func (r *CaseResult) BestRandomMakespan() float64 {
	best := math.Inf(1)
	for _, m := range r.Metrics {
		if m.Makespan < best {
			best = m.Makespan
		}
	}
	return best
}
