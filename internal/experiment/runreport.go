package experiment

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/resilience"
	"repro/internal/runner"
)

// AttemptReport records one supervised attempt of a case.
type AttemptReport struct {
	// Outcome is "ok", "panic", "timeout", "error", or "degraded-ok"
	// (the final ladder attempt that delivered a coarser result).
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
}

// CaseReport is the fault history of one case: every attempt in
// order, the accuracy it was degraded to (when the ladder fired), and
// the final error when the case was abandoned.
type CaseReport struct {
	Case     string          `json:"case"`
	Attempts []AttemptReport `json:"attempts"`
	Degraded string          `json:"degraded,omitempty"` // accuracy actually delivered
	Err      string          `json:"err,omitempty"`      // set only when the case permanently failed
}

// Failed reports whether the case was abandoned after all attempts.
func (c CaseReport) Failed() bool { return c.Err != "" }

// QuarantineReport records one cache entry that failed integrity
// verification and was moved aside for recompute.
type QuarantineReport struct {
	Key  string `json:"key"`
	Dest string `json:"dest"`
}

// RunReportData is the serializable snapshot of a RunReport: the
// structured failure summary of a sweep. Clean cases (first attempt
// succeeded, nothing injected) appear only in the counters, so the
// report stays proportional to the faults, not the sweep.
type RunReportData struct {
	CasesTotal  int                `json:"cases_total"`
	CasesClean  int                `json:"cases_clean"`
	Cases       []CaseReport       `json:"cases,omitempty"`       // non-clean cases, sorted by name
	Quarantines []QuarantineReport `json:"quarantines,omitempty"` // in detection order
	Injected    []resilience.Event `json:"injected,omitempty"`    // chaos injector firing log
}

// Retried counts cases that needed more than one attempt.
func (d RunReportData) Retried() int {
	n := 0
	for _, c := range d.Cases {
		if len(c.Attempts) > 1 {
			n++
		}
	}
	return n
}

// Failures returns the permanently failed cases.
func (d RunReportData) Failures() []CaseReport {
	var out []CaseReport
	for _, c := range d.Cases {
		if c.Failed() {
			out = append(out, c)
		}
	}
	return out
}

// RunReport accumulates the failure summary of a sweep. All methods
// are safe for concurrent use; attach one via RunOptions.Report to
// have RunCases fill it.
type RunReport struct {
	mu          sync.Mutex
	total       int
	clean       int
	cases       []CaseReport
	quarantines []QuarantineReport
	injector    *resilience.Injector
}

// NewRunReport returns an empty report.
func NewRunReport() *RunReport { return &RunReport{} }

// recordCase files one finished case. Clean single-attempt successes
// only bump the counters.
func (r *RunReport) recordCase(cr CaseReport) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if !cr.Failed() && len(cr.Attempts) == 1 && cr.Degraded == "" {
		r.clean++
		return
	}
	r.cases = append(r.cases, cr)
}

// AttachCache subscribes the report to the cache's quarantine events,
// so corrupt-entry recoveries appear in the failure summary.
func (r *RunReport) AttachCache(c *runner.Cache) {
	c.OnQuarantine(func(key, dest string) {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.quarantines = append(r.quarantines, QuarantineReport{Key: key, Dest: dest})
	})
}

// AttachInjector includes the chaos injector's firing log in
// snapshots, so the report enumerates every injected fault next to
// the attempts it caused.
func (r *RunReport) AttachInjector(in *resilience.Injector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.injector = in
}

// Eventful reports whether anything non-clean happened: a retry,
// degradation, failure, quarantine, or injected fault.
func (r *RunReport) Eventful() bool {
	d := r.Snapshot()
	return len(d.Cases) > 0 || len(d.Quarantines) > 0 || len(d.Injected) > 0
}

// Snapshot returns a copy of the report, cases sorted by name so the
// document is independent of completion order.
func (r *RunReport) Snapshot() RunReportData {
	if r == nil {
		return RunReportData{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d := RunReportData{
		CasesTotal:  r.total,
		CasesClean:  r.clean,
		Cases:       append([]CaseReport(nil), r.cases...),
		Quarantines: append([]QuarantineReport(nil), r.quarantines...),
		Injected:    r.injector.Events(),
	}
	sort.Slice(d.Cases, func(i, j int) bool { return d.Cases[i].Case < d.Cases[j].Case })
	return d
}

// WriteRunReport renders the failure summary as text.
func WriteRunReport(w io.Writer, d RunReportData) {
	fmt.Fprintf(w, "# Failure report — %d case(s): %d clean, %d with faults (%d retried, %d failed)\n",
		d.CasesTotal, d.CasesClean, len(d.Cases), d.Retried(), len(d.Failures()))
	for _, c := range d.Cases {
		fmt.Fprintf(w, "case %s:\n", c.Case)
		for i, a := range c.Attempts {
			if a.Error != "" {
				fmt.Fprintf(w, "  attempt %d: %s (%s)\n", i+1, a.Outcome, a.Error)
			} else {
				fmt.Fprintf(w, "  attempt %d: %s\n", i+1, a.Outcome)
			}
		}
		if c.Degraded != "" {
			fmt.Fprintf(w, "  degraded to accuracy %q\n", c.Degraded)
		}
		if c.Failed() {
			fmt.Fprintf(w, "  FAILED: %s\n", c.Err)
		}
	}
	if len(d.Quarantines) > 0 {
		fmt.Fprintf(w, "quarantined cache entries (%d):\n", len(d.Quarantines))
		for _, q := range d.Quarantines {
			fmt.Fprintf(w, "  %s -> %s\n", q.Key, q.Dest)
		}
	}
	if len(d.Injected) > 0 {
		fmt.Fprintf(w, "injected faults (%d):\n", len(d.Injected))
		for _, ev := range d.Injected {
			fmt.Fprintf(w, "  %s at %s\n", ev.Kind, ev.Site)
		}
	}
}
