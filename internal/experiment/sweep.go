package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/resilience"
	"repro/internal/runner"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

// RunOptions configures orchestrated case execution.
type RunOptions struct {
	// Pool is the shared worker pool carrying the per-schedule
	// evaluation jobs; nil creates a temporary pool of cfg.workers()
	// workers for the duration of the call.
	Pool *runner.Pool
	// Cache, when non-nil, is consulted before computing a case and
	// filled after, making interrupted sweeps resumable.
	Cache *runner.Cache
	// Progress, when non-nil, receives one call per finished case (in
	// completion order; done counts finished cases, including
	// permanently failed ones under KeepGoing).
	Progress func(done, total int, name string)
	// Report, when non-nil, accumulates the structured failure summary
	// of the sweep: per-case attempts, degradations, quarantined cache
	// entries, injected faults.
	Report *RunReport
	// Injector, when non-nil, arms chaos injection: RunCaseOn consults
	// it at named sites (case/<name>/attempt<k>/{build,eval/<i>,
	// heur/<h>}). Production runs leave it nil — the happy path then
	// carries a single nil check per job.
	Injector *resilience.Injector
	// KeepGoing makes a case that permanently fails (after every
	// retry) record its failure and leave a nil result slot instead of
	// cancelling the sweep — completing as much work as possible under
	// adverse conditions. The failures are enumerated in Report.
	KeepGoing bool
}

// caseCacheVersion tags cache entries; bump it whenever the result
// semantics or encoding of a case change. v3: CaseSpec identifies its
// workload by the registered family name (a stable string) instead of
// the old iota-valued GraphKind, whose integer hash silently aliased
// cache entries across families whenever the enum was reordered or
// grew in the middle.
const caseCacheVersion = "repro/case/v3"

// caseCacheVersionAcc tags entries computed under a non-reference
// resampling policy (EvalAccuracy with a tightened work-grid cap). The
// reference policy keeps emitting v3 keys, so the accuracy knob's
// default never invalidates caches written before it existed.
const caseCacheVersionAcc = "repro/case/v4"

// CaseCacheKey derives the disk-cache key of a case: a hash of the
// full spec (workload family by stable name) and every configuration
// field that can affect the result. Worker count never does. The correlation cases are evaluated
// analytically today, so the Monte-Carlo realization count stays out
// of the key — but the sampler mode and block size are included, so
// any future Monte-Carlo-backed case can never serve a stale entry
// computed under a different realization stream. The Monte-Carlo
// fields are hashed in canonical form ("" and "exact" name the same
// sampler; block size <= 0 means schedule.DefaultBlockSize), so
// spelling a default out explicitly never invalidates a cache. The
// evaluation accuracy follows the same rule: any spelling that resolves
// to the reference resampling policy hashes exactly like the
// pre-accuracy configs (v3, grid size only), while a tightened
// work-grid cap moves to v4 keys that include the cap.
//
//reprovet:cachekey CaseSpec
//reprovet:cachekey Config -exempt MCRealizations,Workers,Seed,CaseTimeout,MaxRetries,DegradeOnTimeout
func CaseCacheKey(spec CaseSpec, cfg Config) (string, error) {
	mode, err := stochastic.ParseSamplerMode(cfg.MCSampler)
	if err != nil {
		return "", err
	}
	acc, err := cfg.EvalAccuracyValue()
	if err != nil {
		return "", err
	}
	blockSize := cfg.MCBlockSize
	if blockSize <= 0 {
		blockSize = schedule.DefaultBlockSize
	}
	if acc.WorkGrid == stochastic.DefaultMaxWorkGrid {
		return runner.Key(caseCacheVersion, spec, struct {
			Schedules   int
			GridSize    int
			Delta       float64
			Gamma       float64
			MCSampler   string
			MCBlockSize int
		}{cfg.Schedules, acc.GridSize, cfg.Delta, cfg.Gamma, mode.String(), blockSize})
	}
	return runner.Key(caseCacheVersionAcc, spec, struct {
		Schedules   int
		GridSize    int
		WorkGrid    int
		Delta       float64
		Gamma       float64
		MCSampler   string
		MCBlockSize int
	}{cfg.Schedules, acc.GridSize, acc.WorkGrid, cfg.Delta, cfg.Gamma, mode.String(), blockSize})
}

// RunCases executes every spec concurrently on one shared worker
// pool: each case streams its schedule-evaluation jobs into the same
// pool, so all cases progress together and the pool never idles while
// any case has work left. Results come back in spec order regardless
// of completion order, and are byte-identical for every worker count.
//
// Execution is supervised: a panicking case fails with a typed error
// instead of crashing the process, cfg.CaseTimeout bounds each
// attempt, failed attempts retry up to cfg.MaxRetries times with
// deterministic jittered backoff, and cfg.DegradeOnTimeout arms the
// accuracy-degradation ladder. Retried cases re-run from their case
// seed, so every delivered non-degraded result is byte-identical to a
// fault-free run. With opts.KeepGoing a permanently failed case
// yields a nil result slot (recorded in opts.Report) instead of
// aborting its siblings.
//
// Specs are run with exactly the seeds they carry (RunCases and
// RunCase always agree); ad-hoc sweeps that don't want to
// hand-number their cases can seed them with WithDerivedSeed first.
func RunCases(ctx context.Context, specs []CaseSpec, cfg Config, opts RunOptions) ([]*CaseResult, error) {
	pool := opts.Pool
	if pool == nil {
		pool = runner.NewPool(cfg.workers())
		defer pool.Close()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*CaseResult, len(specs))
	errs := make([]error, len(specs))
	var (
		wg         sync.WaitGroup
		progressMu sync.Mutex
		done       int
	)
	// Cases in flight are bounded by the pool size: a case's serial
	// phases (scenario build, schedule generation, matrix assembly)
	// run on its own goroutine, and admitting more cases than workers
	// would let that serial work exceed the -workers bound. Admission
	// follows spec order, so an interrupted sweep has finished — and
	// cached — a prefix of the cases instead of leaving two dozen all
	// half-done.
	caseCh := make(chan int)
	go func() {
		defer close(caseCh)
		for i := range specs {
			select {
			case caseCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	caseWorkers := pool.Workers()
	if caseWorkers > len(specs) {
		caseWorkers = len(specs)
	}
	for w := 0; w < caseWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range caseCh {
				spec := specs[i]
				res, err := runCaseSupervised(ctx, spec, cfg, pool, opts)
				results[i], errs[i] = res, err
				if err != nil {
					if opts.KeepGoing && ctx.Err() == nil {
						// The failure is recorded in opts.Report; the
						// sweep completes the remaining cases.
						errs[i] = nil
					} else {
						cancel() // fail fast: stop sibling cases
						return
					}
				}
				if opts.Progress != nil {
					progressMu.Lock()
					done++
					opts.Progress(done, len(specs), spec.Name)
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	// Prefer a root-cause error over the context.Canceled echoes the
	// fail-fast cancellation produces in sibling cases.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// All recorded errors were nil, but cancellation may have struck
	// before some cases were even admitted.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// runCaseSupervised is the fault boundary around one case: panic
// recovery, per-attempt deadlines, retry with deterministic backoff,
// and the timeout-degradation ladder. Every attempt is a clean re-run
// from the case seed through runCaseCached, so whichever attempt
// succeeds delivers exactly the bytes a fault-free run would.
func runCaseSupervised(ctx context.Context, spec CaseSpec, cfg Config, pool *runner.Pool, opts RunOptions) (*CaseResult, error) {
	attempts := 1
	if cfg.MaxRetries > 0 {
		attempts += cfg.MaxRetries
	}
	policy := resilience.DefaultRetryPolicy(cfg.MaxRetries)
	rep := CaseReport{Case: spec.Name}
	var lastErr error
	timeouts := 0
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := resilience.Sleep(ctx, policy.Backoff(attempt, spec.Seed, spec.Name)); err != nil {
				return nil, err // sweep cancelled while backing off
			}
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if cfg.CaseTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, cfg.CaseTimeout)
		}
		actx = resilience.WithScope(actx, opts.Injector,
			fmt.Sprintf("case/%s/attempt%d/", spec.Name, attempt))
		var res *CaseResult
		err := resilience.Protect(func() error {
			var err error
			res, err = runCaseCached(actx, spec, cfg, pool, opts.Cache)
			return err
		})
		cancel()
		if err == nil {
			rep.Attempts = append(rep.Attempts, AttemptReport{Outcome: "ok"})
			opts.Report.recordCase(rep)
			return res, nil
		}
		if ctx.Err() != nil {
			// The sweep itself was cancelled or timed out above us: not
			// a case fault, nothing to retry or record.
			return nil, err
		}
		kind := resilience.ClassifyKind(err)
		if kind == "timeout" {
			timeouts++
		}
		rep.Attempts = append(rep.Attempts, AttemptReport{Outcome: kind, Error: err.Error()})
		lastErr = err
	}

	// Degradation ladder: every timed attempt hit the deadline, so a
	// finer evaluation will not fit the budget either — deliver the
	// next coarser preset (deadline off: this is the last resort, and
	// the coarser run is the one sized to succeed) instead of nothing.
	if timeouts == attempts && cfg.DegradeOnTimeout {
		if dcfg, dacc, ok := cfg.degraded(); ok {
			dctx := resilience.WithScope(ctx, opts.Injector,
				fmt.Sprintf("case/%s/degraded/", spec.Name))
			var res *CaseResult
			err := resilience.Protect(func() error {
				var err error
				res, err = runCaseCached(dctx, spec, dcfg, pool, opts.Cache)
				return err
			})
			if err == nil {
				// Marked after caching: the cache entry under the
				// degraded config's own key stays a clean result any
				// explicitly-coarse run may reuse.
				res.Degraded = dacc.String()
				rep.Attempts = append(rep.Attempts, AttemptReport{Outcome: "degraded-ok"})
				rep.Degraded = dacc.String()
				opts.Report.recordCase(rep)
				return res, nil
			}
			rep.Attempts = append(rep.Attempts, AttemptReport{
				Outcome: resilience.ClassifyKind(err), Error: err.Error()})
			lastErr = err
		}
	}

	ce := &resilience.CaseError{
		Case: spec.Name, Attempts: len(rep.Attempts),
		Kind: resilience.ClassifyKind(lastErr), Err: lastErr,
	}
	rep.Err = ce.Error()
	opts.Report.recordCase(rep)
	return nil, ce
}

// runCaseCached wraps RunCaseOn with the optional disk cache: hits
// skip the computation entirely, misses are stored after computing.
// Integrity-corrupt entries are quarantined inside Cache.Get; an
// entry that verifies but no longer decodes (a legacy pre-checksum
// entry gone bad, a format drift) is quarantined here — either way
// the case is recomputed, never aborted.
func runCaseCached(ctx context.Context, spec CaseSpec, cfg Config, pool *runner.Pool, cache *runner.Cache) (*CaseResult, error) {
	var key string
	if cache != nil {
		var err error
		key, err = CaseCacheKey(spec, cfg)
		if err != nil {
			return nil, err
		}
		if data, ok, err := cache.Get(key); err != nil {
			return nil, err
		} else if ok {
			var res CaseResult
			if err := json.Unmarshal(data, &res); err == nil {
				return &res, nil
			}
			cache.Quarantine(key)
		}
	}
	res, err := RunCaseOn(ctx, spec, cfg, pool)
	if err != nil {
		return nil, err
	}
	if cache != nil {
		data, err := json.Marshal(res)
		if err != nil {
			return nil, fmt.Errorf("experiment: encode case %q for cache: %w", spec.Name, err)
		}
		if err := cache.Put(key, data); err != nil {
			return nil, err
		}
	}
	return res, nil
}
