package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/runner"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

// RunOptions configures orchestrated case execution.
type RunOptions struct {
	// Pool is the shared worker pool carrying the per-schedule
	// evaluation jobs; nil creates a temporary pool of cfg.workers()
	// workers for the duration of the call.
	Pool *runner.Pool
	// Cache, when non-nil, is consulted before computing a case and
	// filled after, making interrupted sweeps resumable.
	Cache *runner.Cache
	// Progress, when non-nil, receives one call per finished case (in
	// completion order; done counts finished cases).
	Progress func(done, total int, name string)
}

// caseCacheVersion tags cache entries; bump it whenever the result
// semantics or encoding of a case change. v3: CaseSpec identifies its
// workload by the registered family name (a stable string) instead of
// the old iota-valued GraphKind, whose integer hash silently aliased
// cache entries across families whenever the enum was reordered or
// grew in the middle.
const caseCacheVersion = "repro/case/v3"

// caseCacheVersionAcc tags entries computed under a non-reference
// resampling policy (EvalAccuracy with a tightened work-grid cap). The
// reference policy keeps emitting v3 keys, so the accuracy knob's
// default never invalidates caches written before it existed.
const caseCacheVersionAcc = "repro/case/v4"

// CaseCacheKey derives the disk-cache key of a case: a hash of the
// full spec (workload family by stable name) and every configuration
// field that can affect the result. Worker count never does. The correlation cases are evaluated
// analytically today, so the Monte-Carlo realization count stays out
// of the key — but the sampler mode and block size are included, so
// any future Monte-Carlo-backed case can never serve a stale entry
// computed under a different realization stream. The Monte-Carlo
// fields are hashed in canonical form ("" and "exact" name the same
// sampler; block size <= 0 means schedule.DefaultBlockSize), so
// spelling a default out explicitly never invalidates a cache. The
// evaluation accuracy follows the same rule: any spelling that resolves
// to the reference resampling policy hashes exactly like the
// pre-accuracy configs (v3, grid size only), while a tightened
// work-grid cap moves to v4 keys that include the cap.
func CaseCacheKey(spec CaseSpec, cfg Config) (string, error) {
	mode, err := stochastic.ParseSamplerMode(cfg.MCSampler)
	if err != nil {
		return "", err
	}
	acc, err := cfg.EvalAccuracyValue()
	if err != nil {
		return "", err
	}
	blockSize := cfg.MCBlockSize
	if blockSize <= 0 {
		blockSize = schedule.DefaultBlockSize
	}
	if acc.WorkGrid == stochastic.DefaultMaxWorkGrid {
		return runner.Key(caseCacheVersion, spec, struct {
			Schedules   int
			GridSize    int
			Delta       float64
			Gamma       float64
			MCSampler   string
			MCBlockSize int
		}{cfg.Schedules, acc.GridSize, cfg.Delta, cfg.Gamma, mode.String(), blockSize})
	}
	return runner.Key(caseCacheVersionAcc, spec, struct {
		Schedules   int
		GridSize    int
		WorkGrid    int
		Delta       float64
		Gamma       float64
		MCSampler   string
		MCBlockSize int
	}{cfg.Schedules, acc.GridSize, acc.WorkGrid, cfg.Delta, cfg.Gamma, mode.String(), blockSize})
}

// RunCases executes every spec concurrently on one shared worker
// pool: each case streams its schedule-evaluation jobs into the same
// pool, so all cases progress together and the pool never idles while
// any case has work left. Results come back in spec order regardless
// of completion order, and are byte-identical for every worker count.
//
// Specs are run with exactly the seeds they carry (RunCases and
// RunCase always agree); ad-hoc sweeps that don't want to
// hand-number their cases can seed them with WithDerivedSeed first.
func RunCases(ctx context.Context, specs []CaseSpec, cfg Config, opts RunOptions) ([]*CaseResult, error) {
	pool := opts.Pool
	if pool == nil {
		pool = runner.NewPool(cfg.workers())
		defer pool.Close()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*CaseResult, len(specs))
	errs := make([]error, len(specs))
	var (
		wg         sync.WaitGroup
		progressMu sync.Mutex
		done       int
	)
	// Cases in flight are bounded by the pool size: a case's serial
	// phases (scenario build, schedule generation, matrix assembly)
	// run on its own goroutine, and admitting more cases than workers
	// would let that serial work exceed the -workers bound. Admission
	// follows spec order, so an interrupted sweep has finished — and
	// cached — a prefix of the cases instead of leaving two dozen all
	// half-done.
	caseCh := make(chan int)
	go func() {
		defer close(caseCh)
		for i := range specs {
			select {
			case caseCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	caseWorkers := pool.Workers()
	if caseWorkers > len(specs) {
		caseWorkers = len(specs)
	}
	for w := 0; w < caseWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range caseCh {
				spec := specs[i]
				res, err := runCaseCached(ctx, spec, cfg, pool, opts.Cache)
				results[i], errs[i] = res, err
				if err != nil {
					cancel() // fail fast: stop sibling cases
					return
				}
				if opts.Progress != nil {
					progressMu.Lock()
					done++
					opts.Progress(done, len(specs), spec.Name)
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	// Prefer a root-cause error over the context.Canceled echoes the
	// fail-fast cancellation produces in sibling cases.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// All recorded errors were nil, but cancellation may have struck
	// before some cases were even admitted.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// runCaseCached wraps RunCaseOn with the optional disk cache: hits
// skip the computation entirely, misses are stored after computing. A
// corrupt entry (e.g. a partial write from a crashed kernel) is
// recomputed and overwritten rather than trusted.
func runCaseCached(ctx context.Context, spec CaseSpec, cfg Config, pool *runner.Pool, cache *runner.Cache) (*CaseResult, error) {
	var key string
	if cache != nil {
		var err error
		key, err = CaseCacheKey(spec, cfg)
		if err != nil {
			return nil, err
		}
		if data, ok, err := cache.Get(key); err != nil {
			return nil, err
		} else if ok {
			var res CaseResult
			if err := json.Unmarshal(data, &res); err == nil {
				return &res, nil
			}
		}
	}
	res, err := RunCaseOn(ctx, spec, cfg, pool)
	if err != nil {
		return nil, err
	}
	if cache != nil {
		data, err := json.Marshal(res)
		if err != nil {
			return nil, fmt.Errorf("experiment: encode case %q for cache: %w", spec.Name, err)
		}
		if err := cache.Put(key, data); err != nil {
			return nil, err
		}
	}
	return res, nil
}
