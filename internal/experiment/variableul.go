package experiment

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/heuristics"
	"repro/internal/makespan"
	"repro/internal/platform"
	"repro/internal/robustness"
	"repro/internal/stats"
	"repro/internal/stochastic"
)

// VariableULResult is the outcome of the §VIII future-work experiment:
// how the makespan↔σ_M correlation and the mean-based heuristics
// behave once the uncertainty level varies per task (breaking the
// proportionality between duration means and standard deviations), and
// whether the σ-aware SDHEFT heuristic helps.
type VariableULResult struct {
	ConstCorr float64 `json:"const_corr"` // Pearson(E(M), σ_M) with constant UL
	VarCorr   float64 `json:"var_corr"`   // Pearson(E(M), σ_M) with per-task UL in [ULLo, ULHi]
	ULLo      float64 `json:"ul_lo"`
	ULHi      float64 `json:"ul_hi"`

	// Heuristic comparison under the variable-UL scenario.
	HEFTMakespan   float64 `json:"heft_makespan"`
	HEFTStd        float64 `json:"heft_std"`
	SDHEFTMakespan float64 `json:"sdheft_makespan"`
	SDHEFTStd      float64 `json:"sdheft_std"`
	Lambda         float64 `json:"lambda"`

	// Sweep reports SDHEFT across a λ ladder (λ = 0 is HEFT's cost
	// model) so the makespan/robustness trade-off is visible.
	Sweep []SDHEFTPoint `json:"sweep"`

	// Noisy-processor study: half the machines are stable
	// (UL = 1.02), half noisy (UL = 2.0), with per-task means
	// equalized so a mean-based heuristic cannot tell them apart.
	NoisyHEFTMakespan   float64 `json:"noisy_heft_makespan"`
	NoisyHEFTStd        float64 `json:"noisy_heft_std"`
	NoisySDHEFTMakespan float64 `json:"noisy_sdheft_makespan"`
	NoisySDHEFTStd      float64 `json:"noisy_sdheft_std"`
}

// SDHEFTPoint is one λ of the SDHEFT sweep.
type SDHEFTPoint struct {
	Lambda   float64 `json:"lambda"`
	Makespan float64 `json:"makespan"`
	Std      float64 `json:"std"`
	Differs  bool    `json:"differs"` // schedule differs from HEFT's
}

// runCorr draws schedules for a prepared scenario and returns
// Pearson(E(M), σ_M) over them.
func runCorr(scen *platform.Scenario, nSched int, seed int64, cfg Config) (float64, error) {
	cfg, acc, err := cfg.resolveAccuracy()
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	cache := makespan.NewEvalCacheAccuracy(scen, acc)
	mk := make([]float64, 0, nSched)
	sd := make([]float64, 0, nSched)
	for i := 0; i < nSched; i++ {
		s := heuristics.RandomSchedule(scen, rng)
		m, err := evaluateOne(cache, s, cfg)
		if err != nil {
			return 0, err
		}
		mk = append(mk, m.Makespan)
		sd = append(sd, m.StdDev)
	}
	return stats.Pearson(mk, sd), nil
}

// VariableUL runs the paper's §VIII conjecture: with a constant UL the
// makespan is a decent robustness proxy because every σ is
// proportional to its mean; with a variable per-task UL that
// equivalence breaks, the makespan↔σ correlation drops, and a
// σ-aware heuristic (SDHEFT) can buy robustness that HEFT cannot see.
func VariableUL(cfg Config, lambda float64) (*VariableULResult, error) {
	cfg, acc, err := cfg.resolveAccuracy()
	if err != nil {
		return nil, err
	}
	if lambda <= 0 {
		lambda = 1
	}
	spec := Fig4Case(cfg.Seed + 17)
	base, err := spec.BuildScenario()
	if err != nil {
		return nil, err
	}
	base.UL = 1.1
	res := &VariableULResult{ULLo: 1.0, ULHi: 1.8, Lambda: lambda}

	nSched := cfg.schedulesFor(base.G.N())
	res.ConstCorr, err = runCorr(base, nSched, cfg.Seed+1, cfg)
	if err != nil {
		return nil, err
	}

	varScen := base.WithVariableUL(res.ULLo, res.ULHi, rand.New(rand.NewSource(cfg.Seed+2)))
	res.VarCorr, err = runCorr(varScen, nSched, cfg.Seed+3, cfg)
	if err != nil {
		return nil, err
	}

	varCache := makespan.NewEvalCacheAccuracy(varScen, acc)
	hr, err := heuristics.HEFT(varScen)
	if err != nil {
		return nil, err
	}
	hm, err := evaluateOne(varCache, hr.Schedule, cfg)
	if err != nil {
		return nil, err
	}
	sr, err := heuristics.SDHEFT(varScen, lambda)
	if err != nil {
		return nil, err
	}
	sm, err := evaluateOne(varCache, sr.Schedule, cfg)
	if err != nil {
		return nil, err
	}
	res.HEFTMakespan, res.HEFTStd = hm.Makespan, hm.StdDev
	res.SDHEFTMakespan, res.SDHEFTStd = sm.Makespan, sm.StdDev

	for _, l := range []float64{0, 0.5, 1, 2, 4, 8} {
		pr, err := heuristics.SDHEFT(varScen, l)
		if err != nil {
			return nil, err
		}
		pm, err := evaluateOne(varCache, pr.Schedule, cfg)
		if err != nil {
			return nil, err
		}
		differs := false
		for i := range pr.Schedule.Proc {
			if pr.Schedule.Proc[i] != hr.Schedule.Proc[i] {
				differs = true
				break
			}
		}
		res.Sweep = append(res.Sweep, SDHEFTPoint{
			Lambda: l, Makespan: pm.Makespan, Std: pm.StdDev, Differs: differs,
		})
	}

	// Noisy-processor study (mean-equalized stable vs noisy machines).
	noisy := base.WithNoisyProcessors(1.02, 2.0)
	noisyCache := makespan.NewEvalCacheAccuracy(noisy, acc)
	nh, err := heuristics.HEFT(noisy)
	if err != nil {
		return nil, err
	}
	nhm, err := evaluateOne(noisyCache, nh.Schedule, cfg)
	if err != nil {
		return nil, err
	}
	ns, err := heuristics.SDHEFT(noisy, lambda)
	if err != nil {
		return nil, err
	}
	nsm, err := evaluateOne(noisyCache, ns.Schedule, cfg)
	if err != nil {
		return nil, err
	}
	res.NoisyHEFTMakespan, res.NoisyHEFTStd = nhm.Makespan, nhm.StdDev
	res.NoisySDHEFTMakespan, res.NoisySDHEFTStd = nsm.Makespan, nsm.StdDev
	return res, nil
}

// OscillatingDurationsCase reruns one correlation case with the
// paper's "non-standard probability distributions (with some
// oscillations)" future-work item: durations follow a shifted
// concatenated-Beta mixture instead of Beta(2,5). Returns the Pearson
// matrix over the random schedules so callers can verify the metric
// equivalences survive the distribution swap.
func OscillatingDurationsCase(cfg Config) (*CaseResult, error) {
	cfg, acc, err := cfg.resolveAccuracy()
	if err != nil {
		return nil, err
	}
	spec := Fig3Case(cfg.Seed + 23)
	spec.Name = "oscillating-" + spec.Name
	spec.UL = 1.2 // widen the interval so the lobes are visible
	scen, err := spec.BuildScenario()
	if err != nil {
		return nil, err
	}
	scen.UL = spec.UL
	scen.DurFn = func(min, ul float64) stochastic.Dist {
		return stochastic.Shifted{
			D:   stochastic.NewSpecialWith(min*(ul-1), []float64{0.5, 0.3, 0.2}),
			Off: min,
		}
	}
	nSched := cfg.schedulesFor(scen.G.N())
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5DEECE66D))
	scheds := heuristics.RandomSchedules(scen, nSched, rng)
	cache := makespan.NewEvalCacheAccuracy(scen, acc)
	metrics := make([]robustness.Metrics, nSched)
	for i, s := range scheds {
		m, err := evaluateOne(cache, s, cfg)
		if err != nil {
			return nil, err
		}
		metrics[i] = m
	}
	cols := InvertedColumns(metrics)
	corr, err := stats.CorrMatrix(cols)
	if err != nil {
		return nil, err
	}
	relBy := make([]float64, nSched)
	stds := make([]float64, nSched)
	for i, m := range metrics {
		relBy[i] = 1 - m.RelProbByMakespan()
		stds[i] = m.StdDev
	}
	return &CaseResult{
		Spec: spec, Metrics: metrics, Corr: corr,
		RelByMakespanVsStd: stats.Pearson(relBy, stds),
	}, nil
}

// WriteVariableUL renders the variable-UL report.
func WriteVariableUL(w io.Writer, res *VariableULResult) {
	fmt.Fprintln(w, "# §VIII future work — variable uncertainty levels")
	fmt.Fprintf(w, "Pearson(E(M), sigma_M) with constant UL=1.1:        %+.4f\n", res.ConstCorr)
	fmt.Fprintf(w, "Pearson(E(M), sigma_M) with per-task UL in [%g,%g]: %+.4f\n", res.ULLo, res.ULHi, res.VarCorr)
	fmt.Fprintln(w, "\nheuristics under variable UL:")
	fmt.Fprintf(w, "  HEFT   E(M)=%.4g  sigma_M=%.4g\n", res.HEFTMakespan, res.HEFTStd)
	fmt.Fprintf(w, "  SDHEFT E(M)=%.4g  sigma_M=%.4g  (lambda=%g)\n", res.SDHEFTMakespan, res.SDHEFTStd, res.Lambda)
	fmt.Fprintln(w, "\nSDHEFT lambda sweep (lambda=0 ~ HEFT cost model):")
	fmt.Fprintf(w, "  %8s %12s %12s %10s\n", "lambda", "E(M)", "sigma_M", "differs")
	for _, p := range res.Sweep {
		fmt.Fprintf(w, "  %8g %12.5g %12.5g %10v\n", p.Lambda, p.Makespan, p.Std, p.Differs)
	}
	fmt.Fprintln(w, "\nnoisy-processor study (half stable UL=1.02, half noisy UL=2.0, means equalized):")
	fmt.Fprintf(w, "  HEFT   E(M)=%.5g  sigma_M=%.5g   (mean-based: blind to the noise)\n",
		res.NoisyHEFTMakespan, res.NoisyHEFTStd)
	fmt.Fprintf(w, "  SDHEFT E(M)=%.5g  sigma_M=%.5g   (prefers stable machines)\n",
		res.NoisySDHEFTMakespan, res.NoisySDHEFTStd)
}
