package experiment

import (
	"math"
	"strings"
	"testing"
)

func TestVariableULDropsCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("variable-UL correlation study is slow")
	}
	cfg := testConfig()
	cfg.Schedules = 50
	res, err := VariableUL(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.ConstCorr) || math.IsNaN(res.VarCorr) {
		t.Fatal("NaN correlations")
	}
	// The paper's conjecture: variable UL weakens the makespan↔σ link.
	if res.ConstCorr < 0.5 {
		t.Errorf("constant-UL correlation %g suspiciously low", res.ConstCorr)
	}
	if res.VarCorr >= res.ConstCorr {
		t.Errorf("variable UL did not reduce the correlation: %g -> %g",
			res.ConstCorr, res.VarCorr)
	}
	// Both heuristics produce sane numbers.
	if res.HEFTMakespan <= 0 || res.SDHEFTMakespan <= 0 {
		t.Error("degenerate heuristic makespans")
	}
	if res.HEFTStd <= 0 || res.SDHEFTStd <= 0 {
		t.Error("degenerate heuristic sigmas")
	}
	var b strings.Builder
	WriteVariableUL(&b, res)
	if !strings.Contains(b.String(), "variable") {
		t.Error("report malformed")
	}
}

func TestOscillatingDurationsPreserveEquivalences(t *testing.T) {
	cfg := testConfig()
	cfg.Schedules = 60
	res, err := OscillatingDurationsCase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != 60 {
		t.Fatalf("got %d metric vectors", len(res.Metrics))
	}
	// The dispersion-metric equivalence class survives the swap to an
	// oscillating duration family (CLT at work).
	pairs := [][2]int{{1, 2}, {1, 5}, {2, 5}}
	for _, p := range pairs {
		r := res.Corr[p[0]][p[1]]
		if math.IsNaN(r) || r < 0.9 {
			t.Errorf("corr(%s, %s) = %.3f under oscillating durations, want > 0.9",
				metricShortNames[p[0]], metricShortNames[p[1]], r)
		}
	}
}
