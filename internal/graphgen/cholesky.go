package graphgen

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
)

// Cholesky builds the task graph of a tiled right-looking Cholesky
// factorization of an N×N tile matrix: POTRF (diagonal factorization),
// TRSM (panel solve), SYRK (diagonal update) and GEMM (trailing
// update) kernels with their standard dependencies. N = 3 yields the
// 10-task graph used in Fig. 3 of the paper.
//
// Edge communication volumes are drawn uniformly from
// [volLo, volHi] — the paper gives real-application graphs
// communication weights "with the same order" as the computation times.
// Task counts: N(N+1)(N+2)/6.
func Cholesky(n int, volLo, volHi float64, rng *rand.Rand) *dag.Graph {
	type key struct{ kind, k, i, j int }
	const (
		potrf = iota
		trsm
		syrk
		gemm
	)
	ids := make(map[key]dag.Task)
	var count int
	add := func(kind, k, i, j int) dag.Task {
		t := dag.Task(count)
		ids[key{kind, k, i, j}] = t
		count++
		return t
	}
	// Create tasks in a deterministic order.
	for k := 0; k < n; k++ {
		add(potrf, k, 0, 0)
		for i := k + 1; i < n; i++ {
			add(trsm, k, i, 0)
		}
		for i := k + 1; i < n; i++ {
			add(syrk, k, i, 0)
		}
		for i := k + 1; i < n; i++ {
			for j := i + 1; j < n; j++ {
				add(gemm, k, i, j)
			}
		}
	}
	g := dag.New(count)
	names := []string{"POTRF", "TRSM", "SYRK", "GEMM"}
	for k, t := range ids {
		switch k.kind {
		case potrf:
			g.SetName(t, fmt.Sprintf("%s(%d)", names[k.kind], k.k))
		case trsm, syrk:
			g.SetName(t, fmt.Sprintf("%s(%d,%d)", names[k.kind], k.k, k.i))
		default:
			g.SetName(t, fmt.Sprintf("%s(%d,%d,%d)", names[k.kind], k.k, k.i, k.j))
		}
	}
	vol := func() float64 {
		if volHi <= volLo {
			return volLo
		}
		return volLo + rng.Float64()*(volHi-volLo)
	}
	edge := func(a, b dag.Task) { _ = g.AddEdge(a, b, vol()) }

	for k := 0; k < n; k++ {
		pk := ids[key{potrf, k, 0, 0}]
		// POTRF(k) ← SYRK(k-1, k): the last update of the diagonal block.
		if k > 0 {
			edge(ids[key{syrk, k - 1, k, 0}], pk)
		}
		for i := k + 1; i < n; i++ {
			tk := ids[key{trsm, k, i, 0}]
			edge(pk, tk)
			// TRSM(k,i) ← GEMM(k-1,k,i): the last update of panel block (i,k).
			if k > 0 {
				edge(ids[key{gemm, k - 1, k, i}], tk)
			}
			sk := ids[key{syrk, k, i, 0}]
			edge(tk, sk)
			// SYRK(k,i) ← SYRK(k-1,i): chained updates of diagonal block i.
			if k > 0 {
				edge(ids[key{syrk, k - 1, i, 0}], sk)
			}
			for j := i + 1; j < n; j++ {
				gm := ids[key{gemm, k, i, j}]
				edge(tk, gm)
				edge(ids[key{trsm, k, j, 0}], gm)
				if k > 0 {
					edge(ids[key{gemm, k - 1, i, j}], gm)
				}
			}
		}
	}
	return g
}

// CholeskyTaskCount returns the number of tasks of Cholesky(n):
// n(n+1)(n+2)/6.
func CholeskyTaskCount(n int) int { return n * (n + 1) * (n + 2) / 6 }
