package graphgen

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
)

// weaklyConnected reports whether g forms a single weakly connected
// component (treating edges as undirected). Empty and single-task
// graphs count as connected.
func weaklyConnected(g *dag.Graph) bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []dag.Task{0}
	seen[0] = true
	visited := 1
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, lists := range [][]dag.Task{g.Succ(t), g.Pred(t)} {
			for _, u := range lists {
				if !seen[u] {
					seen[u] = true
					visited++
					stack = append(stack, u)
				}
			}
		}
	}
	return visited == n
}

// sameGraph reports whether two graphs are byte-identical in structure:
// same node count, same sorted edge list with identical volumes, same
// task names.
func sameGraph(a, b *dag.Graph) bool {
	if a.N() != b.N() || a.EdgeCount() != b.EdgeCount() {
		return false
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	for t := 0; t < a.N(); t++ {
		if a.Name(dag.Task(t)) != b.Name(dag.Task(t)) {
			return false
		}
	}
	return true
}

// newFamilies enumerates the new generators with their exact
// task-count formulas, for the shared property sweep. Each gen must
// consume only the given rng, so a fixed seed reproduces the graph
// byte for byte.
var newFamilies = []struct {
	name  string
	sizes []int // generator-specific size parameters to sweep
	count func(size int) int
	gen   func(size int, rng *rand.Rand) *dag.Graph
}{
	{
		name:  "intree",
		sizes: []int{1, 2, 7, 20, 61},
		count: func(n int) int { return n },
		gen:   func(n int, rng *rand.Rand) *dag.Graph { return InTree(n, 2, 10, 20, rng) },
	},
	{
		name:  "outtree",
		sizes: []int{1, 2, 7, 20, 61},
		count: func(n int) int { return n },
		gen:   func(n int, rng *rand.Rand) *dag.Graph { return OutTree(n, 3, 10, 20, rng) },
	},
	{
		name:  "seriesparallel",
		sizes: []int{2, 3, 10, 40, 97},
		count: func(n int) int { return n },
		gen:   func(n int, rng *rand.Rand) *dag.Graph { return SeriesParallel(n, 10, 20, rng) },
	},
	{
		name:  "fft",
		sizes: []int{2, 4, 8, 16},
		count: FFTTaskCount,
		gen:   func(p int, rng *rand.Rand) *dag.Graph { return FFT(p, 10, 20, rng) },
	},
	{
		name:  "strassen",
		sizes: []int{0, 1, 2},
		count: StrassenTaskCount,
		gen:   func(r int, rng *rand.Rand) *dag.Graph { return Strassen(r, 10, 20, rng) },
	},
	{
		name:  "stg",
		sizes: []int{3, 4, 12, 50, 120},
		count: func(n int) int { return n },
		gen: func(n int, rng *rand.Rand) *dag.Graph {
			return STG(DefaultSTGParams(n), 10, 20, rng)
		},
	},
}

// Every new generator must produce an acyclic, weakly connected graph
// with exactly the task count its formula promises, and be
// byte-identical for a fixed seed.
func TestNewFamilyProperties(t *testing.T) {
	for _, fam := range newFamilies {
		for _, size := range fam.sizes {
			g := fam.gen(size, rand.New(rand.NewSource(77)))
			if got, want := g.N(), fam.count(size); got != want {
				t.Errorf("%s(%d): %d tasks, want %d", fam.name, size, got, want)
			}
			if !g.IsAcyclic() {
				t.Errorf("%s(%d): cyclic", fam.name, size)
			}
			if !weaklyConnected(g) {
				t.Errorf("%s(%d): not a single weakly connected component", fam.name, size)
			}
			for _, e := range g.Edges() {
				if e.Volume < 10 || e.Volume > 20 {
					t.Errorf("%s(%d): edge volume %g outside [10,20]", fam.name, size, e.Volume)
				}
			}
			again := fam.gen(size, rand.New(rand.NewSource(77)))
			if !sameGraph(g, again) {
				t.Errorf("%s(%d): not deterministic for a fixed seed", fam.name, size)
			}
			if other := fam.gen(size, rand.New(rand.NewSource(78))); g.EdgeCount() > 0 &&
				sameGraph(g, other) && fam.name != "intree" && fam.name != "outtree" && fam.name != "fft" {
				// The randomized families must actually respond to the
				// seed (trees and FFT are structurally fixed; only
				// their volumes vary, which sameGraph also catches).
				t.Errorf("%s(%d): identical graph under different seeds", fam.name, size)
			}
		}
	}
}

func TestTreeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	out := OutTree(7, 2, 1, 1, rng)
	if len(out.Sources()) != 1 || out.Sources()[0] != 0 {
		t.Errorf("out-tree sources = %v, want [0]", out.Sources())
	}
	if len(out.Sinks()) != 4 {
		t.Errorf("complete binary out-tree of 7 has %d sinks, want 4 leaves", len(out.Sinks()))
	}
	in := InTree(7, 2, 1, 1, rng)
	if len(in.Sinks()) != 1 || in.Sinks()[0] != 0 {
		t.Errorf("in-tree sinks = %v, want [0]", in.Sinks())
	}
	if len(in.Sources()) != 4 {
		t.Errorf("complete binary in-tree of 7 has %d sources, want 4 leaves", len(in.Sources()))
	}
}

func TestSeriesParallelTwoTerminal(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := SeriesParallel(30, 1, 2, rand.New(rand.NewSource(seed)))
		if s := g.Sources(); len(s) != 1 || s[0] != 0 {
			t.Fatalf("seed %d: sources = %v, want single task 0", seed, s)
		}
		if s := g.Sinks(); len(s) != 1 || s[0] != 1 {
			t.Fatalf("seed %d: sinks = %v, want single task 1", seed, s)
		}
	}
}

func TestFFTButterflyStructure(t *testing.T) {
	g := FFT(8, 1, 1, rand.New(rand.NewSource(2)))
	// 8-point FFT: 4 ranks of 8 tasks, every interior task has exactly
	// two predecessors and two successors.
	if g.N() != 32 {
		t.Fatalf("FFT(8) has %d tasks, want 32", g.N())
	}
	if len(g.Sources()) != 8 || len(g.Sinks()) != 8 {
		t.Fatalf("FFT(8) has %d sources, %d sinks, want 8 and 8", len(g.Sources()), len(g.Sinks()))
	}
	for t2 := 8; t2 < 32; t2++ {
		if len(g.Pred(dag.Task(t2))) != 2 {
			t.Fatalf("task %d has %d predecessors, want 2", t2, len(g.Pred(dag.Task(t2))))
		}
	}
	// Non-power-of-two sizes round down.
	if got := FFT(11, 1, 1, rand.New(rand.NewSource(3))).N(); got != 32 {
		t.Errorf("FFT(11) rounded to %d tasks, want 32 (p=8)", got)
	}
	if FFTTaskCount(8) != 32 || FFTTaskCount(2) != 4 {
		t.Error("FFTTaskCount formula wrong")
	}
}

func TestStrassenStructure(t *testing.T) {
	if StrassenTaskCount(0) != 1 || StrassenTaskCount(1) != 25 || StrassenTaskCount(2) != 193 {
		t.Fatalf("Strassen task counts = %d, %d, %d; want 1, 25, 193",
			StrassenTaskCount(0), StrassenTaskCount(1), StrassenTaskCount(2))
	}
	g := Strassen(1, 1, 1, rand.New(rand.NewSource(4)))
	// One level: the ten S additions are the sources, the four quadrant
	// finals the sinks.
	if len(g.Sources()) != 10 {
		t.Errorf("Strassen(1) has %d sources, want the 10 operand additions", len(g.Sources()))
	}
	if len(g.Sinks()) != 4 {
		t.Errorf("Strassen(1) has %d sinks, want the 4 quadrant results", len(g.Sinks()))
	}
}

func TestSTGRespectsJumpAndLayers(t *testing.T) {
	p := DefaultSTGParams(60)
	p.Jump = 1
	g := STG(p, 1, 1, rand.New(rand.NewSource(5)))
	if g.N() != 60 {
		t.Fatalf("STG has %d tasks, want 60", g.N())
	}
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	// With jump 1 every non-entry edge joins adjacent generator layers;
	// the level assignment can compress but never invert order, and the
	// single entry/exit must bracket everything.
	if len(g.Sources()) != 1 || g.Sources()[0] != 0 {
		t.Errorf("STG sources = %v, want the single entry", g.Sources())
	}
	if len(g.Sinks()) != 1 || g.Sinks()[0] != 59 {
		t.Errorf("STG sinks = %v, want the single exit", g.Sinks())
	}
	for _, lv := range levels {
		if lv < 0 {
			t.Fatal("negative level")
		}
	}
}
