package graphgen

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
)

// FFT builds the butterfly task graph of a p-point fast Fourier
// transform, p a power of two: log2(p)+1 ranks of p tasks each, where
// the task (l, i) of rank l feeds the rank-l+1 tasks i and i XOR 2^l —
// the two ends of the stage-l butterfly. Rank 0 holds the p input
// tasks (sources) and the last rank the p output tasks (sinks); the
// graph is weakly connected for every p ≥ 2.
//
// This is the FFT application graph used in the HEFT evaluation
// (Topcuoglu, Hariri & Wu, TPDS 2002). Task count: p·(log2(p)+1).
//
// Edge communication volumes are drawn uniformly from [volLo, volHi].
// Non-power-of-two p is rounded down to the previous power of two
// (p < 2 becomes 2).
func FFT(p int, volLo, volHi float64, rng *rand.Rand) *dag.Graph {
	if p < 2 {
		p = 2
	}
	// Round down to a power of two.
	logP := 0
	for 1<<(logP+1) <= p {
		logP++
	}
	p = 1 << logP
	n := p * (logP + 1)
	g := dag.New(n)
	vol := treeVol(volLo, volHi, rng)
	id := func(l, i int) dag.Task { return dag.Task(l*p + i) }
	for l := 0; l <= logP; l++ {
		for i := 0; i < p; i++ {
			g.SetName(id(l, i), fmt.Sprintf("B(%d,%d)", l, i))
		}
	}
	for l := 0; l < logP; l++ {
		for i := 0; i < p; i++ {
			_ = g.AddEdge(id(l, i), id(l+1, i), vol())
			_ = g.AddEdge(id(l, i), id(l+1, i^(1<<l)), vol())
		}
	}
	return g
}

// FFTTaskCount returns the number of tasks of FFT(p) for p = 2^k:
// p·(log2(p)+1).
func FFTTaskCount(p int) int {
	logP := 0
	for 1<<(logP+1) <= p {
		logP++
	}
	return (1 << logP) * (logP + 1)
}
