package graphgen

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
)

// GaussElim builds the Gaussian-elimination task graph of Cosnard,
// Marrakchi, Robert and Trystram for a matrix of size n: at each
// elimination step k there is one pivot task P(k) followed by the
// column-update tasks U(k, j) for j = k+1..n. Dependencies:
//
//	P(k)      → U(k, j)   for every j  (pivot row is needed by all updates)
//	U(k, k+1) → P(k+1)    (next pivot column must be up to date)
//	U(k, j)   → U(k+1, j) for j ≥ k+2  (same column, next step)
//
// Task count: (n-1)(n+2)/2. n = 14 gives 104 tasks — the paper's Fig. 5
// uses a 103-task GE graph, one fewer (the final trivial update),
// which does not affect the shape of the results.
func GaussElim(n int, volLo, volHi float64, rng *rand.Rand) *dag.Graph {
	if n < 2 {
		return dag.New(0)
	}
	type key struct{ k, j int } // j == 0 means pivot
	ids := make(map[key]dag.Task)
	var count int
	for k := 1; k < n; k++ {
		ids[key{k, 0}] = dag.Task(count)
		count++
		for j := k + 1; j <= n; j++ {
			ids[key{k, j}] = dag.Task(count)
			count++
		}
	}
	g := dag.New(count)
	for k, t := range ids {
		if k.j == 0 {
			g.SetName(t, fmt.Sprintf("P(%d)", k.k))
		} else {
			g.SetName(t, fmt.Sprintf("U(%d,%d)", k.k, k.j))
		}
	}
	vol := func() float64 {
		if volHi <= volLo {
			return volLo
		}
		return volLo + rng.Float64()*(volHi-volLo)
	}
	for k := 1; k < n; k++ {
		p := ids[key{k, 0}]
		for j := k + 1; j <= n; j++ {
			u := ids[key{k, j}]
			_ = g.AddEdge(p, u, vol())
			if k+1 < n {
				if j == k+1 {
					_ = g.AddEdge(u, ids[key{k + 1, 0}], vol())
				} else {
					_ = g.AddEdge(u, ids[key{k + 1, j}], vol())
				}
			}
		}
	}
	return g
}

// GaussElimTaskCount returns the number of tasks of GaussElim(n):
// (n-1)(n+2)/2.
func GaussElimTaskCount(n int) int { return (n - 1) * (n + 2) / 2 }
