package graphgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

func TestRandomBasicStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 10, 30, 100} {
		g, weights := Random(DefaultRandomParams(n), rng)
		if g.N() != n {
			t.Fatalf("n=%d: graph has %d nodes", n, g.N())
		}
		if len(weights) != n {
			t.Fatalf("n=%d: %d weights", n, len(weights))
		}
		if !g.IsAcyclic() {
			t.Fatalf("n=%d: generated graph has a cycle", n)
		}
		// Every non-root node must have at least one parent.
		for i := 1; i < n; i++ {
			if len(g.Pred(dag.Task(i))) == 0 {
				t.Fatalf("n=%d: node %d has no parent", n, i)
			}
		}
		for _, w := range weights {
			if w <= 0 {
				t.Fatalf("n=%d: non-positive weight %g", n, w)
			}
		}
	}
}

func TestRandomWeightStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := DefaultRandomParams(2000)
	_, weights := Random(p, rng)
	var sum float64
	for _, w := range weights {
		sum += w
	}
	mean := sum / float64(len(weights))
	if mean < 17 || mean > 23 {
		t.Errorf("task weight mean = %g, want ~20", mean)
	}
}

func TestRandomEdgeVolumesRespectCCR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, _ := Random(DefaultRandomParams(200), rng)
	var sum float64
	edges := g.Edges()
	for _, e := range edges {
		if e.Volume < 0 {
			t.Fatalf("negative volume on %v", e)
		}
		sum += e.Volume
	}
	mean := sum / float64(len(edges))
	// CCR = 0.1, MuTask = 20 → mean volume ~2.
	if mean < 1.5 || mean > 2.5 {
		t.Errorf("edge volume mean = %g, want ~2", mean)
	}
}

func TestRandomSeedDeterminism(t *testing.T) {
	g1, w1 := Random(DefaultRandomParams(50), rand.New(rand.NewSource(9)))
	g2, w2 := Random(DefaultRandomParams(50), rand.New(rand.NewSource(9)))
	if g1.EdgeCount() != g2.EdgeCount() {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

func TestChainForkJoin(t *testing.T) {
	c := Chain(5, 1)
	if c.EdgeCount() != 4 || len(c.Sources()) != 1 || len(c.Sinks()) != 1 {
		t.Error("chain malformed")
	}
	f := Fork(5, 1)
	if f.EdgeCount() != 4 || len(f.Succ(0)) != 4 {
		t.Error("fork malformed")
	}
	j := Join(5, 1)
	if j.EdgeCount() != 4 || len(j.Pred(4)) != 4 {
		t.Error("join malformed")
	}
	if len(j.Sources()) != 4 {
		t.Errorf("join sources = %d, want 4", len(j.Sources()))
	}
	fj := ForkJoin(3, 1)
	if fj.N() != 5 || fj.EdgeCount() != 6 {
		t.Error("fork-join malformed")
	}
	if !fj.IsAcyclic() {
		t.Error("fork-join cyclic")
	}
}

func TestLayered(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := Layered(4, 3, 0.5, 1, rng)
	if g.N() != 12 {
		t.Fatalf("layered N = %d, want 12", g.N())
	}
	if !g.IsAcyclic() {
		t.Fatal("layered graph cyclic")
	}
	// Every node in layers 1..3 must have a parent.
	for i := 3; i < 12; i++ {
		if len(g.Pred(dag.Task(i))) == 0 {
			t.Errorf("layered node %d orphaned", i)
		}
	}
	depth, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if want := i / 3; depth[i] != want {
			t.Errorf("node %d depth = %d, want %d", i, depth[i], want)
		}
	}
}

func TestCholeskyTaskCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for n := 1; n <= 6; n++ {
		g := Cholesky(n, 1, 2, rng)
		if g.N() != CholeskyTaskCount(n) {
			t.Errorf("Cholesky(%d) has %d tasks, want %d", n, g.N(), CholeskyTaskCount(n))
		}
		if !g.IsAcyclic() {
			t.Errorf("Cholesky(%d) cyclic", n)
		}
	}
	// The paper's Fig. 3 graph: N=3 → 10 tasks.
	if CholeskyTaskCount(3) != 10 {
		t.Error("Cholesky(3) should have 10 tasks (paper Fig. 3)")
	}
}

func TestCholeskyStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := Cholesky(3, 1, 1, rng)
	// Single source: POTRF(0). Single sink: POTRF(2).
	if s := g.Sources(); len(s) != 1 || g.Name(s[0]) != "POTRF(0)" {
		t.Errorf("sources = %v", s)
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || g.Name(sinks[0]) != "POTRF(2)" {
		names := make([]string, len(sinks))
		for i, s := range sinks {
			names[i] = g.Name(s)
		}
		t.Errorf("sinks = %v", names)
	}
}

func TestGaussElimTaskCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for n := 2; n <= 8; n++ {
		g := GaussElim(n, 1, 2, rng)
		if g.N() != GaussElimTaskCount(n) {
			t.Errorf("GaussElim(%d) has %d tasks, want %d", n, g.N(), GaussElimTaskCount(n))
		}
		if !g.IsAcyclic() {
			t.Errorf("GaussElim(%d) cyclic", n)
		}
	}
	// The paper's Fig. 5 graph is ~103 tasks; N=14 gives 104.
	if GaussElimTaskCount(14) != 104 {
		t.Errorf("GaussElim(14) = %d tasks, want 104", GaussElimTaskCount(14))
	}
	if GaussElim(1, 1, 1, rng).N() != 0 {
		t.Error("GaussElim(1) should be empty")
	}
}

func TestGaussElimStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := GaussElim(4, 1, 1, rng)
	// Single source P(1); single sink is the last update U(3,4).
	src := g.Sources()
	if len(src) != 1 || g.Name(src[0]) != "P(1)" {
		t.Errorf("GE sources = %v", src)
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || g.Name(sinks[0]) != "U(3,4)" {
		names := make([]string, len(sinks))
		for i, s := range sinks {
			names[i] = g.Name(s)
		}
		t.Errorf("GE sinks = %v", names)
	}
	// Depth: P(1) → U(1,2) → P(2) → U(2,3) → P(3) → U(3,4): 6 levels.
	depth, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != 5 {
		t.Errorf("GE(4) max depth = %d, want 5", maxDepth)
	}
}

// Property: generated graphs of every kind are acyclic and connected
// enough (no orphan non-source nodes for random graphs).
func TestGeneratorsAcyclicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g, _ := Random(DefaultRandomParams(n), rng)
		ch := Cholesky(1+rng.Intn(5), 1, 2, rng)
		ge := GaussElim(2+rng.Intn(6), 1, 2, rng)
		return g.IsAcyclic() && ch.IsAcyclic() && ge.IsAcyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
