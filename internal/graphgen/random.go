// Package graphgen generates the task graphs of the paper's evaluation:
// the layered random DAGs of §V, the Cholesky-factorization DAG, the
// Gaussian-elimination DAG (Cosnard et al.), and the elementary shapes
// (chain, fork, join, fork-join) used for validation and for the Fig. 9
// slack study.
package graphgen

import (
	"math/rand"

	"repro/internal/dag"
	"repro/internal/stochastic"
)

// RandomParams are the random-DAG parameters named in §V of the paper.
type RandomParams struct {
	N       int     // number of tasks
	CCR     float64 // communication-to-computation ratio (paper: 0.1)
	MuTask  float64 // average computation cost (paper: 20)
	VTask   float64 // task coefficient of variation (paper: 0.5)
	MuComm  float64 // average communication volume; 0 = MuTask·CCR
	Connect float64 // optional edge-thinning factor in (0,1]; 1 = paper's rule
}

// DefaultRandomParams returns the paper's parameter set for n tasks.
func DefaultRandomParams(n int) RandomParams {
	return RandomParams{N: n, CCR: 0.1, MuTask: 20, VTask: 0.5, Connect: 1}
}

// Random generates a layered random DAG following the construction of
// §V: nodes are created one at a time, each new node chooses its
// in-degree uniformly between 1 and the number of already-created
// ("higher-level") nodes, and connects to that many distinct higher
// nodes. Edge communication volumes are Gamma distributed with mean
// MuComm (defaulting to MuTask·CCR) and coefficient of variation VTask.
//
// The returned weights are the per-task average computation costs drawn
// from Gamma(MuTask, VTask); the platform package turns them into an
// unrelated ETC matrix with the machine CV.
func Random(p RandomParams, rng *rand.Rand) (*dag.Graph, []float64) {
	n := p.N
	g := dag.New(n)
	if p.Connect <= 0 || p.Connect > 1 {
		p.Connect = 1
	}
	muComm := p.MuComm
	if muComm <= 0 {
		muComm = p.MuTask * p.CCR
	}
	commDist := stochastic.GammaFromMeanCV(muComm, p.VTask)
	taskDist := stochastic.GammaFromMeanCV(p.MuTask, p.VTask)

	for i := 1; i < n; i++ {
		maxDeg := int(float64(i)*p.Connect + 0.5)
		if maxDeg < 1 {
			maxDeg = 1
		}
		deg := 1 + rng.Intn(maxDeg)
		for _, parent := range rng.Perm(i)[:deg] {
			vol := commDist.Sample(rng)
			if vol < 0 {
				vol = 0
			}
			_ = g.AddEdge(dag.Task(parent), dag.Task(i), vol)
		}
	}
	weights := make([]float64, n)
	for i := range weights {
		w := taskDist.Sample(rng)
		if w < 1e-3 {
			w = 1e-3
		}
		weights[i] = w
	}
	return g, weights
}

// Chain returns a linear chain of n tasks with the given uniform
// communication volume.
func Chain(n int, vol float64) *dag.Graph {
	g := dag.New(n)
	for i := 0; i+1 < n; i++ {
		_ = g.AddEdge(dag.Task(i), dag.Task(i+1), vol)
	}
	return g
}

// Fork returns a graph with one source fanning out to n-1 children.
func Fork(n int, vol float64) *dag.Graph {
	g := dag.New(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(0, dag.Task(i), vol)
	}
	return g
}

// Join returns the Fig. 9 join graph: n-1 independent tasks all feeding
// one final task (n tasks total).
func Join(n int, vol float64) *dag.Graph {
	g := dag.New(n)
	sink := dag.Task(n - 1)
	for i := 0; i < n-1; i++ {
		_ = g.AddEdge(dag.Task(i), sink, vol)
	}
	return g
}

// ForkJoin returns a source, width parallel tasks and a sink
// (width+2 tasks).
func ForkJoin(width int, vol float64) *dag.Graph {
	g := dag.New(width + 2)
	sink := dag.Task(width + 1)
	for i := 1; i <= width; i++ {
		_ = g.AddEdge(0, dag.Task(i), vol)
		_ = g.AddEdge(dag.Task(i), sink, vol)
	}
	return g
}

// Layered returns a strict layered DAG with the given number of layers
// and width; every task in layer l connects to each task of layer l+1
// with probability density, and at least one parent is guaranteed.
func Layered(layers, width int, density, vol float64, rng *rand.Rand) *dag.Graph {
	n := layers * width
	g := dag.New(n)
	id := func(l, w int) dag.Task { return dag.Task(l*width + w) }
	for l := 0; l+1 < layers; l++ {
		for w2 := 0; w2 < width; w2++ {
			connected := false
			for w1 := 0; w1 < width; w1++ {
				if rng.Float64() < density {
					_ = g.AddEdge(id(l, w1), id(l+1, w2), vol)
					connected = true
				}
			}
			if !connected {
				_ = g.AddEdge(id(l, rng.Intn(width)), id(l+1, w2), vol)
			}
		}
	}
	return g
}
