package graphgen

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
)

// SeriesParallel builds a random two-terminal series-parallel DAG with
// exactly n tasks (n ≥ 2) by random edge expansion: starting from the
// single edge source → sink, each step picks an existing edge (u, v)
// uniformly and either series-expands it (insert w: u → w → v,
// dropping u → v) or parallel-expands it (add w with u → w → v while
// keeping u → v), with equal probability. Every step adds one task, so
// any n is achievable; the result always has a single source (task 0)
// and a single sink (task 1) and is weakly connected by construction.
//
// Series-parallel DAGs model fork/join-structured parallel programs
// and are a standard family in DAG-scheduling benchmarks (see e.g. the
// STG suite of Tobita & Kasahara, JSSPP 2002).
//
// Edge communication volumes are drawn uniformly from [volLo, volHi].
func SeriesParallel(n int, volLo, volHi float64, rng *rand.Rand) *dag.Graph {
	if n < 2 {
		n = 2
	}
	vol := treeVol(volLo, volHi, rng)
	type edge struct{ from, to dag.Task }
	// Expansion runs on a symbolic edge list first; the volumes are
	// drawn once at the end so they cost one rng draw per final edge.
	edges := []edge{{0, 1}}
	for next := dag.Task(2); next < dag.Task(n); next++ {
		i := rng.Intn(len(edges))
		e := edges[i]
		if rng.Intn(2) == 0 {
			// Series: replace u → v with u → w → v.
			edges[i] = edge{e.from, next}
			edges = append(edges, edge{next, e.to})
		} else {
			// Parallel: keep u → v, add u → w → v.
			edges = append(edges, edge{e.from, next}, edge{next, e.to})
		}
	}
	g := dag.New(n)
	g.SetName(0, "SRC")
	if n > 1 {
		g.SetName(1, "SNK")
	}
	for i := 2; i < n; i++ {
		g.SetName(dag.Task(i), fmt.Sprintf("T(%d)", i))
	}
	for _, e := range edges {
		_ = g.AddEdge(e.from, e.to, vol())
	}
	return g
}
