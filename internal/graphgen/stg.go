package graphgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dag"
)

// STGParams parameterize the layered random generator in the style of
// the STG benchmark suite of Tobita & Kasahara ("A standard task graph
// set for fair evaluation of multiprocessor scheduling algorithms",
// J. Scheduling 2002): interior tasks are partitioned into layers and
// edges run forward across a bounded number of layers.
type STGParams struct {
	// N is the exact total task count, including the single entry and
	// exit tasks the STG format carries (N ≥ 3).
	N int
	// Width is the mean interior-layer width in tasks; <= 0 selects
	// sqrt(N), the customary STG shape.
	Width float64
	// Regularity in [0, 1] controls how uniform the layer widths are:
	// 1 gives every layer exactly Width tasks, 0 draws each width
	// uniformly from [1, 2·Width−1]. Out-of-range values are clamped.
	Regularity float64
	// Density in [0, 1] is the probability of an edge between a task
	// and each candidate predecessor in the previous Jump layers. Every
	// interior task is guaranteed at least one predecessor and one
	// successor regardless, so the graph is always weakly connected.
	Density float64
	// Jump is the maximum number of layers an edge may span (≥ 1);
	// 1 restricts edges to consecutive layers.
	Jump int
}

// DefaultSTGParams returns the customary shape for n total tasks:
// sqrt(n) mean width, regularity 0.5, density 0.3, jump 3.
func DefaultSTGParams(n int) STGParams {
	return STGParams{N: n, Regularity: 0.5, Density: 0.3, Jump: 3}
}

// STG generates a Tobita–Kasahara-style layered task graph with
// exactly p.N tasks: task 0 is the entry, task p.N−1 the exit, and the
// interior tasks form randomly sized layers with forward edges spanning
// at most p.Jump layers. Entry and exit edges make the graph a single
// weakly connected component with one source and one sink.
//
// Edge communication volumes are drawn uniformly from [volLo, volHi].
func STG(p STGParams, volLo, volHi float64, rng *rand.Rand) *dag.Graph {
	n := p.N
	if n < 3 {
		n = 3
	}
	interior := n - 2
	width := p.Width
	if width <= 0 {
		width = math.Max(1, math.Sqrt(float64(n)))
	}
	reg := clamp01(p.Regularity)
	density := clamp01(p.Density)
	jump := p.Jump
	if jump < 1 {
		jump = 1
	}

	// Partition the interior tasks into layers: each layer width is
	// drawn from [wLo, wHi], the regularity-scaled window around the
	// mean width, truncated by the remaining task budget.
	var layers [][]dag.Task
	next := dag.Task(1)
	remaining := interior
	for remaining > 0 {
		wLo := 1 + int(reg*(width-1)+0.5)
		wHi := int(2*width+0.5) - wLo
		if wHi < wLo {
			wHi = wLo
		}
		w := wLo
		if wHi > wLo {
			w += rng.Intn(wHi - wLo + 1)
		}
		if w > remaining {
			w = remaining
		}
		layer := make([]dag.Task, w)
		for i := range layer {
			layer[i] = next
			next++
		}
		layers = append(layers, layer)
		remaining -= w
	}

	g := dag.New(n)
	vol := treeVol(volLo, volHi, rng)
	entry, exit := dag.Task(0), dag.Task(n-1)
	g.SetName(entry, "ENTRY")
	g.SetName(exit, "EXIT")
	for l, layer := range layers {
		for _, t := range layer {
			g.SetName(t, fmt.Sprintf("L%d/%d", l, int(t)))
		}
	}

	// Forward edges: each interior task samples predecessors from the
	// previous jump layers; a task that draws none is wired to a random
	// task of the nearest previous layer (or the entry for layer 0).
	for l, layer := range layers {
		for _, t := range layer {
			connected := false
			for back := 1; back <= jump && back <= l; back++ {
				for _, cand := range layers[l-back] {
					if rng.Float64() < density {
						_ = g.AddEdge(cand, t, vol())
						connected = true
					}
				}
			}
			if !connected {
				if l == 0 {
					_ = g.AddEdge(entry, t, vol())
				} else {
					prev := layers[l-1]
					_ = g.AddEdge(prev[rng.Intn(len(prev))], t, vol())
				}
			}
		}
	}
	// Every task without a successor feeds the exit; together with the
	// guaranteed predecessors (layer 0 always hangs off the entry) this
	// makes the graph one weakly connected component.
	for _, layer := range layers {
		for _, t := range layer {
			if len(g.Succ(t)) == 0 {
				_ = g.AddEdge(t, exit, vol())
			}
		}
	}
	return g
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
