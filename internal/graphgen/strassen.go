package graphgen

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
)

// Strassen builds the task graph of r recursion levels of Strassen's
// matrix multiplication. One level consists of the ten operand
// additions S1..S10 (S1 = A11+A22, S2 = B11+B22, ... following the
// classic seven-product formulation), the seven sub-multiplications
// P1..P7, and the eight combination additions assembling the four
// result quadrants (C11 = P1+P4−P5+P7 etc., each as a chain of
// two-operand adds). Each Pi is recursively another Strassen level;
// at level 0 it is a single multiply task.
//
// Task count: T(0) = 1, T(r) = 7·T(r−1) + 18 — so 25 tasks at r = 1,
// 193 at r = 2, 1369 at r = 3. The graph is weakly connected with the
// ten level-r S tasks as sources and the four quadrant-final adds as
// sinks.
//
// Edge communication volumes are drawn uniformly from [volLo, volHi].
func Strassen(r int, volLo, volHi float64, rng *rand.Rand) *dag.Graph {
	if r < 0 {
		r = 0
	}
	g := dag.New(StrassenTaskCount(r))
	vol := treeVol(volLo, volHi, rng)
	next := dag.Task(0)
	alloc := func(name string) dag.Task {
		t := next
		g.SetName(t, name)
		next++
		return t
	}
	// build returns the entry tasks (which must receive the operand
	// edges) and exit tasks (which feed the consumer) of one
	// sub-multiplication of depth depth.
	var build func(depth int, tag string) (entries, exits []dag.Task)
	build = func(depth int, tag string) ([]dag.Task, []dag.Task) {
		if depth == 0 {
			t := alloc("MUL" + tag)
			return []dag.Task{t}, []dag.Task{t}
		}
		// operands[i] lists the S tasks feeding sub-multiplication i
		// (P2..P5 take one raw quadrant operand, which is external input
		// and costs no task).
		s := make([]dag.Task, 10)
		for i := range s {
			s[i] = alloc(fmt.Sprintf("S%d%s", i+1, tag))
		}
		operands := [7][]dag.Task{
			{s[0], s[1]}, // P1 = S1·S2
			{s[2]},       // P2 = S3·B11
			{s[3]},       // P3 = A11·S4
			{s[4]},       // P4 = A22·S5
			{s[5]},       // P5 = S6·B22
			{s[6], s[7]}, // P6 = S7·S8
			{s[8], s[9]}, // P7 = S9·S10
		}
		exitsOf := make([][]dag.Task, 7)
		for i := 0; i < 7; i++ {
			sub := depth - 1
			en, ex := build(sub, fmt.Sprintf("%s.P%d", tag, i+1))
			for _, op := range operands[i] {
				for _, e := range en {
					_ = g.AddEdge(op, e, vol())
				}
			}
			exitsOf[i] = ex
		}
		// chain emits the additions of one result quadrant: a running
		// two-operand add over the listed products.
		chain := func(name string, prods ...int) dag.Task {
			acc := dag.Task(-1)
			for step := 1; step < len(prods); step++ {
				add := alloc(fmt.Sprintf("%s+%d%s", name, step, tag))
				if acc < 0 {
					for _, e := range exitsOf[prods[0]] {
						_ = g.AddEdge(e, add, vol())
					}
				} else {
					_ = g.AddEdge(acc, add, vol())
				}
				for _, e := range exitsOf[prods[step]] {
					_ = g.AddEdge(e, add, vol())
				}
				acc = add
			}
			return acc
		}
		c11 := chain("C11", 0, 3, 4, 6) // P1+P4−P5+P7: 3 adds
		c12 := chain("C12", 2, 4)       // P3+P5: 1 add
		c21 := chain("C21", 1, 3)       // P2+P4: 1 add
		c22 := chain("C22", 0, 1, 2, 5) // P1−P2+P3+P6: 3 adds
		return s, []dag.Task{c11, c12, c21, c22}
	}
	build(r, "")
	return g
}

// StrassenTaskCount returns the number of tasks of Strassen(r):
// T(0) = 1, T(r) = 7·T(r−1) + 18.
func StrassenTaskCount(r int) int {
	count := 1
	for i := 0; i < r; i++ {
		count = 7*count + 18
	}
	return count
}
