package graphgen

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
)

// treeVol returns a volume sampler matching the convention of the
// structured generators: uniform in [volLo, volHi], collapsing to volLo
// when the interval is empty.
func treeVol(volLo, volHi float64, rng *rand.Rand) func() float64 {
	return func() float64 {
		if volHi <= volLo {
			return volLo
		}
		return volLo + rng.Float64()*(volHi-volLo)
	}
}

// OutTree builds the complete k-ary out-tree with exactly n tasks in
// heap order: task 0 is the root (single source), the parent of task i
// is (i-1)/k, and data flows root → leaves. Out-trees model divide
// phases of divide-and-conquer applications; any n ≥ 1 is achievable.
//
// Edge communication volumes are drawn uniformly from [volLo, volHi].
func OutTree(n, k int, volLo, volHi float64, rng *rand.Rand) *dag.Graph {
	if k < 1 {
		k = 2
	}
	g := dag.New(n)
	vol := treeVol(volLo, volHi, rng)
	for i := 1; i < n; i++ {
		g.SetName(dag.Task(i), fmt.Sprintf("T(%d)", i))
		_ = g.AddEdge(dag.Task((i-1)/k), dag.Task(i), vol())
	}
	if n > 0 {
		g.SetName(0, "T(0)")
	}
	return g
}

// InTree builds the complete k-ary in-tree with exactly n tasks: the
// transpose of OutTree(n, k). Task 0 is the root (single sink), the
// leaves are the sources, and data flows leaves → root — the classic
// reduction / conquer shape. Any n ≥ 1 is achievable.
//
// Edge communication volumes are drawn uniformly from [volLo, volHi].
func InTree(n, k int, volLo, volHi float64, rng *rand.Rand) *dag.Graph {
	if k < 1 {
		k = 2
	}
	g := dag.New(n)
	vol := treeVol(volLo, volHi, rng)
	for i := 1; i < n; i++ {
		g.SetName(dag.Task(i), fmt.Sprintf("T(%d)", i))
		_ = g.AddEdge(dag.Task(i), dag.Task((i-1)/k), vol())
	}
	if n > 0 {
		g.SetName(0, "T(0)")
	}
	return g
}
