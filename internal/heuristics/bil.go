package heuristics

import (
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// BIL implements the Best Imaginary Level heuristic of Oh & Ha for
// unrelated processors. The basic imaginary level of task i on
// processor p is
//
//	BIL(i,p) = w(i,p) + max_{k ∈ succ(i)} min( BIL(k,p),
//	                                           min_{q≠p} BIL(k,q) + c̄(i,k) )
//
// computed bottom-up. At every step the ready task with the highest
// priority — the k-th smallest of its basic imaginary makespans
// BIM(i,p) = EST(i,p) + BIL(i,p), with k = min(#ready, m) — is selected
// and placed on the processor minimizing its (revised) BIM. When more
// tasks are ready than processors, the BIM is inflated by the expected
// queuing factor w(i,p)·(#ready/m − 1) as in the original paper.
//
// Compiled implementation, bit-identical to ReferenceBIL.
func BIL(scen *platform.Scenario) (Result, error) {
	cm, err := NewCostModel(scen)
	if err != nil {
		return Result{}, err
	}
	n, m := cm.N, cm.M
	csr := cm.csr

	// Bottom-up computation of BIL(i,p), flat n×m row-major.
	bil := make([]float64, n*m)
	for idx := n - 1; idx >= 0; idx-- {
		t := cm.order[idx]
		row := bil[int(t)*m : int(t)*m+m]
		for p := 0; p < m; p++ {
			best := 0.0
			for j := csr.SuccStart[t]; j < csr.SuccStart[t+1]; j++ {
				k := csr.SuccAdj[j]
				krow := bil[int(k)*m : int(k)*m+m]
				// Cheapest continuation of k: stay on p (no comm) or the
				// best other processor plus the communication cost.
				minOther := -1.0
				for q := 0; q < m; q++ {
					if q == p {
						continue
					}
					if minOther < 0 || krow[q] < minOther {
						minOther = krow[q]
					}
				}
				cont := krow[p]
				if minOther >= 0 {
					if alt := minOther + cm.EdgeAvgComm[csr.SuccEdge[j]]; alt < cont {
						cont = alt
					}
				}
				if cont > best {
					best = cont
				}
			}
			row[p] = cm.MeanETC[int(t)*m+p] + best
		}
	}

	// List scheduling driven by BIM, append mode.
	sched := schedule.New(n, m)
	start := make([]float64, n)
	finish := make([]float64, n)
	procReady := make([]float64, m)
	for i := range start {
		start[i] = -1
	}
	// estAppend mirrors builder.estAppend on the flat model.
	estAppend := func(t dag.Task, p int) float64 {
		est := procReady[p]
		for k := csr.PredStart[t]; k < csr.PredStart[t+1]; k++ {
			pr := csr.PredAdj[k]
			arr := finish[pr] + cm.Comm(csr.PredEdge[k], sched.Proc[pr], p)
			if arr > est {
				est = arr
			}
		}
		return est
	}

	indeg := make([]int32, n)
	var ready []dag.Task
	for t := 0; t < n; t++ {
		indeg[t] = csr.PredStart[t+1] - csr.PredStart[t]
		if indeg[t] == 0 {
			ready = append(ready, dag.Task(t))
		}
	}
	bims := make([]float64, m)
	scratch := make([]float64, m)
	for len(ready) > 0 {
		k := len(ready)
		if k > m {
			k = m
		}
		// Select the ready task with the largest k-th smallest BIM.
		bestIdx := -1
		bestPriority := 0.0
		for idx, t := range ready {
			for p := 0; p < m; p++ {
				bims[p] = estAppend(t, p) + bil[int(t)*m+p]
			}
			prio := kthSmallest(bims, k, scratch)
			if bestIdx < 0 || prio > bestPriority ||
				(prio == bestPriority && t < ready[bestIdx]) { //reprovet:allow floateq deterministic tie-break on exactly equal priorities (paper rule)
				bestIdx, bestPriority = idx, prio
			}
		}
		t := ready[bestIdx]
		ready[bestIdx] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]

		// Processor choice: minimize the (revised) BIM.
		overload := float64(len(ready)+1)/float64(m) - 1
		bestProc := -1
		bestVal := 0.0
		bestStart := 0.0
		for p := 0; p < m; p++ {
			est := estAppend(t, p)
			val := est + bil[int(t)*m+p]
			if overload > 0 {
				val += cm.MeanETC[int(t)*m+p] * overload
			}
			if bestProc < 0 || val < bestVal {
				bestProc, bestVal, bestStart = p, val, est
			}
		}
		// Commit (append mode), mirroring builder.place.
		sched.Assign(t, bestProc)
		start[t] = bestStart
		finish[t] = bestStart + cm.MeanETC[int(t)*m+bestProc]
		if finish[t] > procReady[bestProc] {
			procReady[bestProc] = finish[t]
		}
		for j := csr.SuccStart[t]; j < csr.SuccStart[t+1]; j++ {
			s := csr.SuccAdj[j]
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, dag.Task(s))
			}
		}
	}
	var ms float64
	for i, st := range start {
		if st >= 0 && finish[i] > ms {
			ms = finish[i]
		}
	}
	return Result{Schedule: sched, Makespan: ms}, nil
}

// kthSmallest returns the k-th smallest value of xs (1-based) without
// mutating xs; k is clamped to [1, len(xs)]. A scratch buffer of
// cap ≥ len(xs) avoids the copy allocation. Selection by repeated min
// extraction — nProc is small.
func kthSmallest(xs []float64, k int, scratch []float64) float64 {
	if k < 1 {
		k = 1
	}
	if k > len(xs) {
		k = len(xs)
	}
	var tmp []float64
	if cap(scratch) >= len(xs) {
		tmp = scratch[:len(xs)]
		copy(tmp, xs)
	} else {
		tmp = append([]float64(nil), xs...)
	}
	for i := 0; i < k; i++ {
		minIdx := i
		for j := i + 1; j < len(tmp); j++ {
			if tmp[j] < tmp[minIdx] {
				minIdx = j
			}
		}
		tmp[i], tmp[minIdx] = tmp[minIdx], tmp[i]
	}
	return tmp[k-1]
}
