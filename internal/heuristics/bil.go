package heuristics

import (
	"repro/internal/dag"
	"repro/internal/platform"
)

// BIL implements the Best Imaginary Level heuristic of Oh & Ha for
// unrelated processors. The basic imaginary level of task i on
// processor p is
//
//	BIL(i,p) = w(i,p) + max_{k ∈ succ(i)} min( BIL(k,p),
//	                                           min_{q≠p} BIL(k,q) + c̄(i,k) )
//
// computed bottom-up. At every step the ready task with the highest
// priority — the k-th smallest of its basic imaginary makespans
// BIM(i,p) = EST(i,p) + BIL(i,p), with k = min(#ready, m) — is selected
// and placed on the processor minimizing its (revised) BIM. When more
// tasks are ready than processors, the BIM is inflated by the expected
// queuing factor w(i,p)·(#ready/m − 1) as in the original paper.
func BIL(scen *platform.Scenario) (Result, error) {
	m := NewModel(scen)
	g := scen.G
	n := g.N()
	nProc := scen.P.M

	order, err := g.TopoOrder()
	if err != nil {
		return Result{}, err
	}

	// Bottom-up computation of BIL(i,p).
	bil := make([][]float64, n)
	for i := range bil {
		bil[i] = make([]float64, nProc)
	}
	for idx := len(order) - 1; idx >= 0; idx-- {
		t := order[idx]
		for p := 0; p < nProc; p++ {
			best := 0.0
			for _, k := range g.Succ(t) {
				// Cheapest continuation of k: stay on p (no comm) or the
				// best other processor plus the communication cost.
				minOther := -1.0
				for q := 0; q < nProc; q++ {
					if q == p {
						continue
					}
					if minOther < 0 || bil[k][q] < minOther {
						minOther = bil[k][q]
					}
				}
				cont := bil[k][p]
				if minOther >= 0 {
					if alt := minOther + m.AvgComm(t, k); alt < cont {
						cont = alt
					}
				}
				if cont > best {
					best = cont
				}
			}
			bil[t][p] = m.MeanETC[t][p] + best
		}
	}

	// List scheduling driven by BIM.
	b := newBuilder(m)
	indeg := make([]int, n)
	var ready []dag.Task
	for t := 0; t < n; t++ {
		indeg[t] = len(g.Pred(dag.Task(t)))
		if indeg[t] == 0 {
			ready = append(ready, dag.Task(t))
		}
	}
	bims := make([]float64, nProc)
	for len(ready) > 0 {
		k := len(ready)
		if k > nProc {
			k = nProc
		}
		// Select the ready task with the largest k-th smallest BIM.
		bestIdx := -1
		bestPriority := 0.0
		for idx, t := range ready {
			for p := 0; p < nProc; p++ {
				bims[p] = b.estAppend(t, p) + bil[t][p]
			}
			prio := kthSmallest(bims, k)
			if bestIdx < 0 || prio > bestPriority ||
				(prio == bestPriority && t < ready[bestIdx]) {
				bestIdx, bestPriority = idx, prio
			}
		}
		t := ready[bestIdx]
		ready[bestIdx] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]

		// Processor choice: minimize the (revised) BIM.
		overload := float64(len(ready)+1)/float64(nProc) - 1
		bestProc := -1
		bestVal := 0.0
		bestStart := 0.0
		for p := 0; p < nProc; p++ {
			est := b.estAppend(t, p)
			val := est + bil[t][p]
			if overload > 0 {
				val += m.MeanETC[t][p] * overload
			}
			if bestProc < 0 || val < bestVal {
				bestProc, bestVal, bestStart = p, val, est
			}
		}
		b.place(t, bestProc, bestStart)
		for _, s := range g.Succ(t) {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return Result{Schedule: b.sched, Makespan: b.makespan()}, nil
}

// kthSmallest returns the k-th smallest value of xs (1-based) without
// mutating xs; k is clamped to [1, len(xs)]. Linear scan — nProc is
// small.
func kthSmallest(xs []float64, k int) float64 {
	if k < 1 {
		k = 1
	}
	if k > len(xs) {
		k = len(xs)
	}
	// Selection by repeated min extraction on a small copy.
	tmp := append([]float64(nil), xs...)
	for i := 0; i < k; i++ {
		minIdx := i
		for j := i + 1; j < len(tmp); j++ {
			if tmp[j] < tmp[minIdx] {
				minIdx = j
			}
		}
		tmp[i], tmp[minIdx] = tmp[minIdx], tmp[i]
	}
	return tmp[k-1]
}
