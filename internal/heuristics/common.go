// Package heuristics implements the schedule generators of the paper:
// the random 3-phase generator of §V and the three makespan-centric
// list heuristics compared in the evaluation — HEFT (Topcuoglu et al.),
// BIL (Oh & Ha) and Hyb.BMCT (Sakellariou & Zhao). All heuristics work
// on mean durations under the Beta(2,5)/UL uncertainty model; with a
// constant UL this is equivalent to using the minimum durations.
package heuristics

import (
	"sort"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// Model precomputes the deterministic (mean) costs every list heuristic
// needs: the mean ETC matrix, per-task processor-averaged durations and
// placement-agnostic mean communication costs.
type Model struct {
	Scen    *platform.Scenario
	MeanETC [][]float64 // n×m mean durations
	AvgDur  []float64   // mean duration averaged over processors
	avgTau  float64
	avgLat  float64
}

// NewModel builds the cost model for a scenario.
func NewModel(scen *platform.Scenario) *Model {
	n, m := scen.G.N(), scen.P.M
	meanETC := make([][]float64, n)
	avgDur := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, m)
		var sum float64
		for j := 0; j < m; j++ {
			row[j] = scen.MeanTask(dag.Task(i), j)
			sum += row[j]
		}
		meanETC[i] = row
		avgDur[i] = sum / float64(m)
	}
	return &Model{
		Scen:    scen,
		MeanETC: meanETC,
		AvgDur:  avgDur,
		avgTau:  scen.P.AvgTau(),
		avgLat:  scen.P.AvgLat(),
	}
}

// AvgComm returns the placement-agnostic mean communication cost of
// edge from→to: the mean (under UL) of lat + volume·τ with τ and lat
// averaged over distinct processor pairs.
func (m *Model) AvgComm(from, to dag.Task) float64 {
	if m.Scen.P.M <= 1 {
		return 0
	}
	min := m.avgLat + m.Scen.G.Volume(from, to)*m.avgTau
	return platform.MeanFromMin(min, m.Scen.UL)
}

// MeanComm returns the mean communication cost of edge from→to for a
// concrete placement.
func (m *Model) MeanComm(from, to dag.Task, pi, pj int) float64 {
	return m.Scen.MeanComm(from, to, pi, pj)
}

// UpwardRanks returns HEFT's rank_u: rank(i) = avgDur(i) +
// max_{s ∈ succ(i)} (avgComm(i,s) + rank(s)).
func (m *Model) UpwardRanks() ([]float64, error) {
	g := m.Scen.G
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make([]float64, g.N())
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		best := 0.0
		for _, s := range g.Succ(t) {
			cand := m.AvgComm(t, s) + rank[s]
			if cand > best {
				best = cand
			}
		}
		rank[t] = m.AvgDur[t] + best
	}
	return rank, nil
}

// RankOrder returns the tasks sorted by decreasing upward rank (ties by
// index), which is always a valid topological order.
func (m *Model) RankOrder() ([]dag.Task, error) {
	rank, err := m.UpwardRanks()
	if err != nil {
		return nil, err
	}
	tasks := make([]dag.Task, len(rank))
	for i := range tasks {
		tasks[i] = dag.Task(i)
	}
	sort.SliceStable(tasks, func(a, b int) bool {
		ra, rb := rank[tasks[a]], rank[tasks[b]]
		if ra != rb {
			return ra > rb
		}
		return tasks[a] < tasks[b]
	})
	return tasks, nil
}

// builder incrementally constructs an eager schedule while tracking
// start/finish times under mean durations. Tasks must be fed in a
// precedence-compatible order.
type builder struct {
	model  *Model
	sched  *schedule.Schedule
	start  []float64
	finish []float64
	ready  []float64 // per-processor next-free time (append mode)
}

func newBuilder(m *Model) *builder {
	n := m.Scen.G.N()
	b := &builder{
		model:  m,
		sched:  schedule.New(n, m.Scen.P.M),
		start:  make([]float64, n),
		finish: make([]float64, n),
		ready:  make([]float64, m.Scen.P.M),
	}
	for i := range b.start {
		b.start[i] = -1
	}
	return b
}

// estAppend returns the earliest start of t on p in append mode: data
// arrival from all predecessors plus the processor's free time.
func (b *builder) estAppend(t dag.Task, p int) float64 {
	est := b.ready[p]
	for _, pr := range b.model.Scen.G.Pred(t) {
		arr := b.finish[pr] + b.model.MeanComm(pr, t, b.sched.Proc[pr], p)
		if arr > est {
			est = arr
		}
	}
	return est
}

// place commits t to p with the given start time (append mode).
func (b *builder) place(t dag.Task, p int, start float64) {
	b.sched.Assign(t, p)
	b.start[t] = start
	b.finish[t] = start + b.model.MeanETC[t][p]
	if b.finish[t] > b.ready[p] {
		b.ready[p] = b.finish[t]
	}
}

// makespan returns the latest finish among placed tasks.
func (b *builder) makespan() float64 {
	var ms float64
	for i, st := range b.start {
		if st >= 0 && b.finish[i] > ms {
			ms = b.finish[i]
		}
	}
	return ms
}

// Result bundles a heuristic's schedule with its predicted (mean)
// makespan.
type Result struct {
	Schedule *schedule.Schedule
	Makespan float64 // heuristic's own mean-duration makespan estimate
}

// sortOrdersByStart normalizes each processor's order by start time
// (needed after insertion-based placement).
func sortOrdersByStart(s *schedule.Schedule, start []float64) {
	for p := range s.Order {
		ord := s.Order[p]
		sort.SliceStable(ord, func(i, j int) bool { return start[ord[i]] < start[ord[j]] })
	}
}

// almostLE is a float comparison helper tolerant to timing round-off.
func almostLE(a, b float64) bool { return a <= b+1e-9 }
