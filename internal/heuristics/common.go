// Package heuristics implements the schedule generators of the paper:
// the random 3-phase generator of §V and the three makespan-centric
// list heuristics compared in the evaluation — HEFT (Topcuoglu et al.),
// BIL (Oh & Ha) and Hyb.BMCT (Sakellariou & Zhao) — plus the CPOP and
// SDHEFT extensions. All heuristics work on mean durations under the
// Beta(2,5)/UL uncertainty model; with a constant UL this is
// equivalent to using the minimum durations.
//
// Each heuristic exists twice: the exported entry points (HEFT, BIL,
// HBMCT, CPOP, SDHEFT) run on the compiled CostModel — flat CSR
// adjacency, precomputed per-edge communication costs, gap-indexed
// processor timelines — and the Reference* functions in reference.go
// retain the original Model-based implementations. The two are
// bit-identical by construction (same float operations in the same
// order), enforced by the equivalence harness in equivalence_test.go.
package heuristics

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// Model precomputes the deterministic (mean) costs every list heuristic
// needs: the mean ETC matrix, per-task processor-averaged durations and
// placement-agnostic mean communication costs. It is the uncompiled
// counterpart of CostModel, kept as the equivalence oracle.
type Model struct {
	Scen    *platform.Scenario
	MeanETC [][]float64 // n×m mean durations
	AvgDur  []float64   // mean duration averaged over processors
	avgTau  float64
	avgLat  float64
}

// NewModel builds the cost model for a scenario.
func NewModel(scen *platform.Scenario) *Model {
	n, m := scen.G.N(), scen.P.M
	meanETC := make([][]float64, n)
	avgDur := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, m)
		var sum float64
		for j := 0; j < m; j++ {
			row[j] = scen.MeanTask(dag.Task(i), j)
			sum += row[j]
		}
		meanETC[i] = row
		avgDur[i] = sum / float64(m)
	}
	return &Model{
		Scen:    scen,
		MeanETC: meanETC,
		AvgDur:  avgDur,
		avgTau:  scen.P.AvgTau(),
		avgLat:  scen.P.AvgLat(),
	}
}

// AvgComm returns the placement-agnostic mean communication cost of
// edge from→to: the mean (under UL) of lat + volume·τ with τ and lat
// averaged over distinct processor pairs.
func (m *Model) AvgComm(from, to dag.Task) float64 {
	if m.Scen.P.M <= 1 {
		return 0
	}
	min := m.avgLat + m.Scen.G.Volume(from, to)*m.avgTau
	return platform.MeanFromMin(min, m.Scen.UL)
}

// MeanComm returns the mean communication cost of edge from→to for a
// concrete placement.
func (m *Model) MeanComm(from, to dag.Task, pi, pj int) float64 {
	return m.Scen.MeanComm(from, to, pi, pj)
}

// UpwardRanks returns HEFT's rank_u: rank(i) = avgDur(i) +
// max_{s ∈ succ(i)} (avgComm(i,s) + rank(s)).
func (m *Model) UpwardRanks() ([]float64, error) {
	g := m.Scen.G
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make([]float64, g.N())
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		best := 0.0
		for _, s := range g.Succ(t) {
			cand := m.AvgComm(t, s) + rank[s]
			if cand > best {
				best = cand
			}
		}
		rank[t] = m.AvgDur[t] + best
	}
	return rank, nil
}

// RankOrder returns the tasks sorted by decreasing upward rank. Ties
// are broken by topological position, not task index: ranks strictly
// decrease along edges only while durations are positive, so with
// zero-duration tasks an index tie-break could order a successor
// before its predecessor and break every downstream consumer that
// assumes a precedence-compatible order. The result is always a valid
// topological order.
func (m *Model) RankOrder() ([]dag.Task, error) {
	rank, err := m.UpwardRanks()
	if err != nil {
		return nil, err
	}
	pos, err := topoPositions(m.Scen.G)
	if err != nil {
		return nil, err
	}
	return sortByRankDesc(rank, pos), nil
}

// Result bundles a heuristic's schedule with its predicted (mean)
// makespan.
type Result struct {
	Schedule *schedule.Schedule
	Makespan float64 // heuristic's own mean-duration makespan estimate
}

// topoPositions returns each task's index in the deterministic
// topological order — the precedence-compatible tie-break for equal
// start times.
func topoPositions(g *dag.Graph) ([]int32, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	pos := make([]int32, len(order))
	for i, t := range order {
		pos[t] = int32(i)
	}
	return pos, nil
}

// buildFromPlacement converts a task→processor assignment plus start
// times into a Schedule whose per-processor orders follow the start
// times. Equal start times — possible only between zero-duration
// tasks, which occupy the same instant — are broken by topological
// position (pos): breaking them by placement order could emit a
// successor before its predecessor on the same processor, making the
// disjunctive graph cyclic.
func buildFromPlacement(pos []int32, nProc int, proc []int, start []float64) *schedule.Schedule {
	n := len(proc)
	s := schedule.New(n, nProc)
	byProc := make([][]dag.Task, nProc)
	for t := 0; t < n; t++ {
		byProc[proc[t]] = append(byProc[proc[t]], dag.Task(t))
	}
	for p := range byProc {
		ord := byProc[p]
		sort.SliceStable(ord, func(i, j int) bool {
			si, sj := start[ord[i]], start[ord[j]]
			if si != sj { //reprovet:allow floateq comparator falls through to a stable index tie-break only on exact equality
				return si < sj
			}
			return pos[ord[i]] < pos[ord[j]]
		})
		for _, t := range ord {
			s.Assign(t, p)
		}
	}
	return s
}

// almostLE is a float comparison helper tolerant to timing round-off.
func almostLE(a, b float64) bool { return a <= b+1e-9 }

// ByName returns the heuristic with the given name ("heft", "bil",
// "hbmct", "cpop", "sdheft"), or nil.
func ByName(name string) func(*platform.Scenario) (Result, error) {
	switch name {
	case "heft", "HEFT":
		return HEFT
	case "bil", "BIL":
		return BIL
	case "hbmct", "HBMCT", "hyb.bmct", "Hyb.BMCT":
		return HBMCT
	case "cpop", "CPOP":
		return CPOP
	case "sdheft", "SDHEFT":
		return func(s *platform.Scenario) (Result, error) { return SDHEFT(s, 1) }
	default:
		return nil
	}
}

// Entry is one registered scheduling heuristic: a stable display name
// and its entry point.
type Entry struct {
	Name string
	Fn   func(*platform.Scenario) (Result, error)
}

var (
	registryMu sync.Mutex
	registry   []Entry
)

func init() {
	// The paper's three heuristics, in presentation order.
	MustRegister("BIL", BIL)
	MustRegister("HEFT", HEFT)
	MustRegister("HBMCT", HBMCT)
}

// Register adds a heuristic to the experiment registry under a stable
// name. Registration order is NOT a stable contract: consumers that
// persist results (experiment.RunCaseOn) sort entries by name before
// emitting rows, so two builds registering in different orders produce
// identical documents.
func Register(name string, fn func(*platform.Scenario) (Result, error)) error {
	if name == "" || fn == nil {
		return fmt.Errorf("heuristics: Register needs a name and a function")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	for _, e := range registry {
		if e.Name == name {
			return fmt.Errorf("heuristics: %q already registered", name)
		}
	}
	registry = append(registry, Entry{Name: name, Fn: fn})
	return nil
}

// MustRegister is Register, panicking on error (init-time use).
func MustRegister(name string, fn func(*platform.Scenario) (Result, error)) {
	if err := Register(name, fn); err != nil {
		panic(err)
	}
}

// All returns the registered heuristics in registration order. Callers
// needing a stable order must sort by Name.
func All() []Entry {
	registryMu.Lock()
	defer registryMu.Unlock()
	return append([]Entry(nil), registry...)
}

// SwapRegistry replaces the whole registry and returns the previous
// contents. It exists for tests that prove consumers are independent of
// registration order; restore the returned slice when done.
func SwapRegistry(entries []Entry) []Entry {
	registryMu.Lock()
	defer registryMu.Unlock()
	old := registry
	registry = append([]Entry(nil), entries...)
	return old
}
