package heuristics

// Unit tests of the compiled building blocks: the gap-indexed timeline
// against the linear-scan reference, the level-pruned grouping against
// the bitset reference, and the zero-duration tie-break regression of
// buildFromPlacement.

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/graphgen"
	"repro/internal/platform"
)

// TestTimelineMatchesInsertionScan drives a timeline and the
// reference slot slice with the same random query/insert stream —
// including zero durations and ε-adjacent placements — and requires
// bit-identical answers at every step.
func TestTimelineMatchesInsertionScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var tl timeline
		var slots []slot
		for step := 0; step < 60; step++ {
			est := rng.Float64() * 50
			dur := rng.Float64() * 10
			switch rng.Intn(4) {
			case 0:
				dur = 0 // zero-duration task
			case 1:
				// Query at an existing boundary to hit the ε paths.
				if len(slots) > 0 {
					s := slots[rng.Intn(len(slots))]
					if rng.Intn(2) == 0 {
						est = s.start
					} else {
						est = s.finish
					}
				}
			}
			want := insertionStart(slots, est, dur)
			got := tl.earliest(est, dur)
			if got != want {
				t.Fatalf("trial %d step %d: earliest(%v,%v) = %v, insertionStart = %v",
					trial, step, est, dur, got, want)
			}
			s := slot{start: want, finish: want + dur}
			slots = insertSlot(slots, s)
			tl.add(s)
			if len(tl.slots) != len(slots) {
				t.Fatalf("slot counts diverge: %d vs %d", len(tl.slots), len(slots))
			}
			for i := range slots {
				if tl.slots[i] != slots[i] {
					t.Fatalf("trial %d step %d: slot %d diverges: %+v vs %+v",
						trial, step, i, tl.slots[i], slots[i])
				}
			}
		}
	}
}

// TestIndependentGroupsCSRMatchesBitset checks the level-pruned
// grouping against the reachability-bitset reference on random and
// structured DAGs.
func TestIndependentGroupsCSRMatchesBitset(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	graphs := []*dag.Graph{
		graphgen.Chain(12, 1),
		graphgen.Fork(8, 1),
		graphgen.Join(8, 1),
	}
	for i := 0; i < 10; i++ {
		g, _ := graphgen.Random(graphgen.DefaultRandomParams(5+rng.Intn(60)), rng)
		graphs = append(graphs, g)
	}
	for gi, g := range graphs {
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		// Exercise non-topo rank-like orders too: grouping must agree
		// for any input order.
		orders := [][]dag.Task{order}
		shuffled := append([]dag.Task(nil), order...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		orders = append(orders, shuffled)

		csr := g.CSR()
		depth := csr.Depths(order)
		reach := reachability(g)
		for oi, ord := range orders {
			want := independentGroups(ord, reach)
			got := independentGroupsCSR(csr, ord, depth)
			if len(got) != len(want) {
				t.Fatalf("graph %d order %d: %d groups, want %d", gi, oi, len(got), len(want))
			}
			for gi2 := range want {
				if len(got[gi2]) != len(want[gi2]) {
					t.Fatalf("graph %d order %d group %d: size %d, want %d",
						gi, oi, gi2, len(got[gi2]), len(want[gi2]))
				}
				for k := range want[gi2] {
					if got[gi2][k] != want[gi2][k] {
						t.Fatalf("graph %d order %d group %d: member %d is %d, want %d",
							gi, oi, gi2, k, got[gi2][k], want[gi2][k])
					}
				}
			}
		}
	}
}

// zeroDurScenario builds the degenerate case of the tie-break fix: a
// predecessor with a HIGHER task index than its zero-duration
// successor chain, so every start time ties at 0 and append-order
// tie-breaking would emit the successor first.
func zeroDurScenario(m int) *platform.Scenario {
	g := dag.New(4)
	// 2 → 0 → 3, plus independent 1; all durations zero.
	_ = g.AddEdge(2, 0, 0)
	_ = g.AddEdge(0, 3, 0)
	tau, lat := platform.NewUniformNetwork(m, 1, 0)
	etc := make([][]float64, 4)
	for i := range etc {
		etc[i] = make([]float64, m)
	}
	return &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: m, ETC: etc, Tau: tau, Lat: lat},
		UL: 1,
	}
}

// TestZeroDurationTieBreak is the regression test of the zero-duration
// tie-break fixes: with zero-duration tasks every start time (and
// every rank) ties at 0, so the old append-order tie-break in
// buildFromPlacement could order a successor before its predecessor on
// the same processor (cyclic disjunctive graph), the old index
// tie-break in RankOrder could feed HBMCT a non-precedence-compatible
// sequence (negative-index panic on an unplaced predecessor), and
// HBMCT's rebalancing dereferenced task -1 when a whole group finishes
// at 0. All five heuristics — compiled and reference — must emit valid
// schedules.
func TestZeroDurationTieBreak(t *testing.T) {
	for _, m := range []int{1, 3} {
		scen := zeroDurScenario(m)
		for _, h := range []struct {
			name string
			fn   func(*platform.Scenario) (Result, error)
		}{
			{"HEFT", HEFT}, {"ReferenceHEFT", ReferenceHEFT},
			{"CPOP", CPOP}, {"ReferenceCPOP", ReferenceCPOP},
			{"BIL", BIL}, {"ReferenceBIL", ReferenceBIL},
			{"HBMCT", HBMCT}, {"ReferenceHBMCT", ReferenceHBMCT},
			{"SDHEFT", func(s *platform.Scenario) (Result, error) { return SDHEFT(s, 1) }},
			{"ReferenceSDHEFT", func(s *platform.Scenario) (Result, error) { return ReferenceSDHEFT(s, 1) }},
		} {
			res, err := h.fn(scen)
			if err != nil {
				t.Fatalf("m=%d %s: %v", m, h.name, err)
			}
			if err := res.Schedule.Validate(scen.G); err != nil {
				t.Errorf("m=%d %s: zero-duration schedule invalid: %v", m, h.name, err)
			}
		}
	}
}

// TestCostModelMatchesModel pins the compiled tables against the
// Model-based values bit-for-bit on a heterogeneous scenario.
func TestCostModelMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, w := graphgen.Random(graphgen.DefaultRandomParams(40), rng)
	tau, lat := platform.NewUniformNetwork(4, 0.8, 0.2)
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: 4, ETC: platform.GenerateETCFromWeights(w, 4, 0.5, rng), Tau: tau, Lat: lat},
		UL: 1.3,
	}
	ref := NewModel(scen)
	cm, err := NewCostModel(scen)
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < cm.N; task++ {
		for p := 0; p < cm.M; p++ {
			if cm.MeanETC[task*cm.M+p] != ref.MeanETC[task][p] {
				t.Fatalf("MeanETC[%d][%d] diverges", task, p)
			}
		}
		if cm.AvgDur[task] != ref.AvgDur[task] {
			t.Fatalf("AvgDur[%d] diverges", task)
		}
	}
	csr := cm.csr
	for task := 0; task < cm.N; task++ {
		for k := csr.SuccStart[task]; k < csr.SuccStart[task+1]; k++ {
			to := dag.Task(csr.SuccAdj[k])
			e := csr.SuccEdge[k]
			if cm.EdgeAvgComm[e] != ref.AvgComm(dag.Task(task), to) {
				t.Fatalf("AvgComm(%d,%d) diverges", task, to)
			}
			for pi := 0; pi < cm.M; pi++ {
				for pj := 0; pj < cm.M; pj++ {
					if cm.Comm(e, pi, pj) != ref.MeanComm(dag.Task(task), to, pi, pj) {
						t.Fatalf("MeanComm(%d,%d,%d,%d) diverges", task, to, pi, pj)
					}
				}
			}
		}
	}
	// Rank machinery agrees bitwise as well.
	wantRank, err := ref.UpwardRanks()
	if err != nil {
		t.Fatal(err)
	}
	gotRank := cm.UpwardRanks()
	for i := range wantRank {
		if gotRank[i] != wantRank[i] {
			t.Fatalf("rank[%d] diverges", i)
		}
	}
	wantOrder, err := ref.RankOrder()
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range cm.RankOrder() {
		if task != wantOrder[i] {
			t.Fatalf("rank order position %d diverges", i)
		}
	}
}
