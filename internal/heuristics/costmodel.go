package heuristics

import (
	"sort"

	"repro/internal/dag"
	"repro/internal/platform"
)

// topology bundles the flattened graph structure every compiled
// heuristic shares: CSR adjacency with edge ids, the deterministic
// topological order (and each task's position in it, the tie-break for
// buildFromPlacement), and the platform's communication classes.
type topology struct {
	csr   *dag.CSR
	order []dag.Task
	pos   []int32
	cc    platform.CommClasses
}

func newTopology(scen *platform.Scenario) (*topology, error) {
	order, err := scen.G.TopoOrder()
	if err != nil {
		return nil, err
	}
	pos := make([]int32, len(order))
	for i, t := range order {
		pos[t] = int32(i)
	}
	return &topology{
		csr:   scen.G.CSR(),
		order: order,
		pos:   pos,
		cc:    scen.P.CommClasses(),
	}, nil
}

// CostModel is the compiled counterpart of Model: every quantity the
// list heuristics consult in their inner loops — mean ETC entries,
// processor-averaged durations, placement-agnostic and concrete mean
// communication costs — is precomputed once into flat arrays indexed
// by task, edge id and communication class, and the DAG itself is
// flattened to CSR form. Heuristics built on it run without map
// lookups, distribution construction or per-query allocations, yet
// produce bit-identical schedules to the Model-based Reference*
// implementations: every derived value is computed with the same
// floating-point operations in the same order, which the equivalence
// harness enforces across all registered workload families.
type CostModel struct {
	Scen *platform.Scenario
	N, M int

	*topology

	MeanETC []float64 // n×m row-major mean durations: entry (t,p) at t*M+p
	AvgDur  []float64 // mean duration averaged over processors

	EdgeAvgComm []float64 // per edge id: placement-agnostic mean comm (Model.AvgComm)

	classComm [][]float64 // per comm class, per edge id: concrete mean comm
}

// NewCostModel compiles the scenario's cost model. It fails only on a
// cyclic graph.
func NewCostModel(scen *platform.Scenario) (*CostModel, error) {
	topo, err := newTopology(scen)
	if err != nil {
		return nil, err
	}
	n, m := scen.G.N(), scen.P.M
	cm := &CostModel{
		Scen:     scen,
		N:        n,
		M:        m,
		topology: topo,
		MeanETC:  make([]float64, n*m),
		AvgDur:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		row := cm.MeanETC[i*m : (i+1)*m]
		var sum float64
		for j := 0; j < m; j++ {
			row[j] = scen.MeanTask(dag.Task(i), j)
			sum += row[j]
		}
		cm.AvgDur[i] = sum / float64(m)
	}
	// Placement-agnostic per-edge communication means: the same
	// expression Model.AvgComm evaluates per query, hoisted out of the
	// rank loops.
	cm.EdgeAvgComm = make([]float64, topo.csr.NumEdges)
	if m > 1 {
		avgTau, avgLat := scen.P.AvgTau(), scen.P.AvgLat()
		for e, vol := range topo.csr.Vol {
			cm.EdgeAvgComm[e] = platform.MeanFromMin(avgLat+vol*avgTau, scen.UL)
		}
	}
	cm.classComm = scen.BatchCommMeans(topo.cc, topo.csr.Vol)
	return cm, nil
}

// Comm returns the mean communication cost of edge e between
// processors pi and pj (0 when co-located) — the compiled form of
// Model.MeanComm.
func (cm *CostModel) Comm(e int32, pi, pj int) float64 {
	if c := cm.cc.Class[pi*cm.M+pj]; c >= 0 {
		return cm.classComm[c][e]
	}
	return 0
}

// UpwardRanks returns HEFT's rank_u over the compiled model (the
// topological order was already validated by NewCostModel, so no
// error).
func (cm *CostModel) UpwardRanks() []float64 {
	csr := cm.csr
	rank := make([]float64, cm.N)
	for i := cm.N - 1; i >= 0; i-- {
		t := cm.order[i]
		best := 0.0
		for k := csr.SuccStart[t]; k < csr.SuccStart[t+1]; k++ {
			cand := cm.EdgeAvgComm[csr.SuccEdge[k]] + rank[csr.SuccAdj[k]]
			if cand > best {
				best = cand
			}
		}
		rank[t] = cm.AvgDur[t] + best
	}
	return rank
}

// RankOrder returns the tasks sorted by decreasing upward rank (ties
// by topological position), matching Model.RankOrder.
func (cm *CostModel) RankOrder() []dag.Task {
	return sortByRankDesc(cm.UpwardRanks(), cm.pos)
}

// placeByInsertion is the insertion-based placement loop HEFT and
// SDHEFT share: each task, in the given priority order, goes to the
// processor minimizing its earliest finish time over the gap-indexed
// timelines, with cost the flat n×m per-(task,processor) duration
// table and comm the per-edge communication cost for a concrete
// processor pair. The two heuristics differ only in which statistic
// fills those tables (mean vs mean+λσ), so the loop itself must stay
// identical — any tie-break or timeline change propagates to both.
func placeByInsertion(csr *dag.CSR, m int, tasks []dag.Task, cost []float64,
	comm func(e int32, pi, pj int) float64) (proc []int, start, finish []float64) {
	n := len(tasks)
	tls := newTimelines(m)
	start = make([]float64, n)
	finish = make([]float64, n)
	proc = make([]int, n)
	for _, t := range tasks {
		pLo, pHi := csr.PredStart[t], csr.PredStart[t+1]
		row := cost[int(t)*m:]
		bestProc, bestStart, bestFinish := -1, 0.0, 0.0
		for p := 0; p < m; p++ {
			est := 0.0
			for k := pLo; k < pHi; k++ {
				pr := csr.PredAdj[k]
				arr := finish[pr] + comm(csr.PredEdge[k], proc[pr], p)
				if arr > est {
					est = arr
				}
			}
			dur := row[p]
			st := tls[p].earliest(est, dur)
			if ft := st + dur; bestProc < 0 || ft < bestFinish {
				bestProc, bestStart, bestFinish = p, st, ft
			}
		}
		proc[t] = bestProc
		start[t] = bestStart
		finish[t] = bestFinish
		tls[bestProc].add(slot{start: bestStart, finish: bestFinish})
	}
	return proc, start, finish
}

// sortByRankDesc sorts tasks 0..n-1 by decreasing rank — the shared
// priority ordering of HEFT-family heuristics. Ties fall back to
// topological position so the order stays precedence-compatible even
// when zero-duration tasks produce equal ranks across an edge.
func sortByRankDesc(rank []float64, pos []int32) []dag.Task {
	tasks := make([]dag.Task, len(rank))
	for i := range tasks {
		tasks[i] = dag.Task(i)
	}
	sort.SliceStable(tasks, func(a, b int) bool {
		ra, rb := rank[tasks[a]], rank[tasks[b]]
		if ra != rb { //reprovet:allow floateq comparator falls through to a stable index tie-break only on exact equality
			return ra > rb
		}
		return pos[tasks[a]] < pos[tasks[b]]
	})
	return tasks
}
