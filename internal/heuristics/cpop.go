package heuristics

import (
	"container/heap"

	"repro/internal/dag"
	"repro/internal/platform"
)

// CPOP implements the Critical-Path-on-a-Processor heuristic of
// Topcuoglu, Hariri and Wu (the paper cites it alongside HEFT as a
// makespan-centric baseline): tasks are prioritized by
// rank_u + rank_d; every task on the critical path is pinned to the
// single processor that executes the whole path fastest, and the
// remaining tasks are placed by earliest finish time with insertion.
//
// Compiled implementation, bit-identical to ReferenceCPOP.
func CPOP(scen *platform.Scenario) (Result, error) {
	cm, err := NewCostModel(scen)
	if err != nil {
		return Result{}, err
	}
	n, m := cm.N, cm.M
	csr := cm.csr

	rankU := cm.UpwardRanks()
	// rank_d: longest average-cost path from an entry node (excluding
	// the task itself).
	rankD := make([]float64, n)
	for _, t := range cm.order {
		for k := csr.PredStart[t]; k < csr.PredStart[t+1]; k++ {
			p := csr.PredAdj[k]
			cand := rankD[p] + cm.AvgDur[p] + cm.EdgeAvgComm[csr.PredEdge[k]]
			if cand > rankD[t] {
				rankD[t] = cand
			}
		}
	}
	prio := make([]float64, n)
	for t := 0; t < n; t++ {
		prio[t] = rankU[t] + rankD[t]
	}

	// The critical path: start from the highest-priority entry task,
	// repeatedly follow the highest-priority successor.
	isSource := func(t int) bool { return csr.PredStart[t] == csr.PredStart[t+1] }
	cpLen := 0.0
	for t := 0; t < n; t++ {
		if isSource(t) && prio[t] > cpLen {
			cpLen = prio[t]
		}
	}
	onCP := make([]bool, n)
	var cur dag.Task = -1
	for t := 0; t < n; t++ {
		if isSource(t) && prio[t] >= cpLen-1e-9 {
			cur = dag.Task(t)
			break
		}
	}
	for cur >= 0 {
		onCP[cur] = true
		var next dag.Task = -1
		best := -1.0
		for k := csr.SuccStart[cur]; k < csr.SuccStart[cur+1]; k++ {
			s := csr.SuccAdj[k]
			if prio[s] > best {
				best, next = prio[s], dag.Task(s)
			}
		}
		cur = next
	}

	// The critical-path processor minimizes the total execution time
	// of the critical tasks.
	cpProc, cpCost := 0, -1.0
	for p := 0; p < m; p++ {
		var sum float64
		for t := 0; t < n; t++ {
			if onCP[t] {
				sum += cm.MeanETC[t*m+p]
			}
		}
		if cpCost < 0 || sum < cpCost {
			cpProc, cpCost = p, sum
		}
	}

	// Priority-queue list scheduling with insertion-based placement.
	tls := newTimelines(m)
	start := make([]float64, n)
	finish := make([]float64, n)
	proc := make([]int, n)
	indeg := make([]int32, n)
	pq := &taskPQ{prio: prio}
	for t := 0; t < n; t++ {
		indeg[t] = csr.PredStart[t+1] - csr.PredStart[t]
		if indeg[t] == 0 {
			pq.push(dag.Task(t))
		}
	}
	var makespan float64
	for pq.Len() > 0 {
		t := pq.pop()
		pLo, pHi := csr.PredStart[t], csr.PredStart[t+1]
		est := func(p int) float64 {
			v := 0.0
			for k := pLo; k < pHi; k++ {
				pr := csr.PredAdj[k]
				arr := finish[pr] + cm.Comm(csr.PredEdge[k], proc[pr], p)
				if arr > v {
					v = arr
				}
			}
			return v
		}
		row := cm.MeanETC[int(t)*m:]
		var chosen int
		if onCP[t] {
			chosen = cpProc
		} else {
			bestFinish := -1.0
			for p := 0; p < m; p++ {
				dur := row[p]
				ft := tls[p].earliest(est(p), dur) + dur
				if bestFinish < 0 || ft < bestFinish {
					chosen, bestFinish = p, ft
				}
			}
		}
		dur := row[chosen]
		st := tls[chosen].earliest(est(chosen), dur)
		proc[t] = chosen
		start[t] = st
		finish[t] = st + dur
		tls[chosen].add(slot{start: st, finish: st + dur})
		if finish[t] > makespan {
			makespan = finish[t]
		}
		for k := csr.SuccStart[t]; k < csr.SuccStart[t+1]; k++ {
			s := csr.SuccAdj[k]
			indeg[s]--
			if indeg[s] == 0 {
				pq.push(dag.Task(s))
			}
		}
	}
	return Result{Schedule: buildFromPlacement(cm.pos, m, proc, start), Makespan: makespan}, nil
}

// taskPQ is a max-heap of tasks by priority, shared by both CPOP
// implementations.
type taskPQ struct {
	prio  []float64
	tasks []dag.Task
}

func (q *taskPQ) Len() int { return len(q.tasks) }
func (q *taskPQ) Less(i, j int) bool {
	pi, pj := q.prio[q.tasks[i]], q.prio[q.tasks[j]]
	if pi != pj { //reprovet:allow floateq heap comparator falls through to an index tie-break only on exact equality
		return pi > pj
	}
	return q.tasks[i] < q.tasks[j]
}
func (q *taskPQ) Swap(i, j int)      { q.tasks[i], q.tasks[j] = q.tasks[j], q.tasks[i] }
func (q *taskPQ) Push(x interface{}) { q.tasks = append(q.tasks, x.(dag.Task)) }
func (q *taskPQ) Pop() interface{} {
	old := q.tasks
	n := len(old)
	t := old[n-1]
	q.tasks = old[:n-1]
	return t
}

func (q *taskPQ) push(t dag.Task) { heap.Push(q, t) }
func (q *taskPQ) pop() dag.Task   { return heap.Pop(q).(dag.Task) }
