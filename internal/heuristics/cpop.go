package heuristics

import (
	"container/heap"

	"repro/internal/dag"
	"repro/internal/platform"
)

// CPOP implements the Critical-Path-on-a-Processor heuristic of
// Topcuoglu, Hariri and Wu (the paper cites it alongside HEFT as a
// makespan-centric baseline): tasks are prioritized by
// rank_u + rank_d; every task on the critical path is pinned to the
// single processor that executes the whole path fastest, and the
// remaining tasks are placed by earliest finish time with insertion.
func CPOP(scen *platform.Scenario) (Result, error) {
	m := NewModel(scen)
	g := scen.G
	n := g.N()
	nProc := scen.P.M

	rankU, err := m.UpwardRanks()
	if err != nil {
		return Result{}, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return Result{}, err
	}
	// rank_d: longest average-cost path from an entry node (excluding
	// the task itself).
	rankD := make([]float64, n)
	for _, t := range order {
		for _, p := range g.Pred(t) {
			cand := rankD[p] + m.AvgDur[p] + m.AvgComm(p, t)
			if cand > rankD[t] {
				rankD[t] = cand
			}
		}
	}
	prio := make([]float64, n)
	for t := 0; t < n; t++ {
		prio[t] = rankU[t] + rankD[t]
	}

	// The critical path: start from the highest-priority entry task,
	// repeatedly follow the highest-priority successor.
	cpLen := 0.0
	for _, t := range g.Sources() {
		if prio[t] > cpLen {
			cpLen = prio[t]
		}
	}
	onCP := make([]bool, n)
	var cur dag.Task = -1
	for _, t := range g.Sources() {
		if prio[t] >= cpLen-1e-9 {
			cur = t
			break
		}
	}
	for cur >= 0 {
		onCP[cur] = true
		var next dag.Task = -1
		best := -1.0
		for _, s := range g.Succ(cur) {
			if prio[s] > best {
				best, next = prio[s], s
			}
		}
		cur = next
	}

	// The critical-path processor minimizes the total execution time
	// of the critical tasks.
	cpProc, cpCost := 0, -1.0
	for p := 0; p < nProc; p++ {
		var sum float64
		for t := 0; t < n; t++ {
			if onCP[t] {
				sum += m.MeanETC[t][p]
			}
		}
		if cpCost < 0 || sum < cpCost {
			cpProc, cpCost = p, sum
		}
	}

	// Priority-queue list scheduling with insertion-based placement.
	slots := make([][]slot, nProc)
	start := make([]float64, n)
	finish := make([]float64, n)
	proc := make([]int, n)
	indeg := make([]int, n)
	pq := &taskPQ{prio: prio}
	for t := 0; t < n; t++ {
		indeg[t] = len(g.Pred(dag.Task(t)))
		if indeg[t] == 0 {
			heap.Push(pq, dag.Task(t))
		}
	}
	var makespan float64
	for pq.Len() > 0 {
		t := heap.Pop(pq).(dag.Task)
		est := func(p int) float64 {
			v := 0.0
			for _, pr := range g.Pred(t) {
				arr := finish[pr] + m.MeanComm(pr, t, proc[pr], p)
				if arr > v {
					v = arr
				}
			}
			return v
		}
		var chosen int
		if onCP[t] {
			chosen = cpProc
		} else {
			bestFinish := -1.0
			for p := 0; p < nProc; p++ {
				dur := m.MeanETC[t][p]
				ft := insertionStart(slots[p], est(p), dur) + dur
				if bestFinish < 0 || ft < bestFinish {
					chosen, bestFinish = p, ft
				}
			}
		}
		dur := m.MeanETC[t][chosen]
		st := insertionStart(slots[chosen], est(chosen), dur)
		proc[t] = chosen
		start[t] = st
		finish[t] = st + dur
		slots[chosen] = insertSlot(slots[chosen], slot{start: st, finish: st + dur})
		if finish[t] > makespan {
			makespan = finish[t]
		}
		for _, s := range g.Succ(t) {
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(pq, s)
			}
		}
	}
	return Result{Schedule: buildFromPlacement(n, nProc, proc, start), Makespan: makespan}, nil
}

// taskPQ is a max-heap of tasks by priority.
type taskPQ struct {
	prio  []float64
	tasks []dag.Task
}

func (q *taskPQ) Len() int { return len(q.tasks) }
func (q *taskPQ) Less(i, j int) bool {
	pi, pj := q.prio[q.tasks[i]], q.prio[q.tasks[j]]
	if pi != pj {
		return pi > pj
	}
	return q.tasks[i] < q.tasks[j]
}
func (q *taskPQ) Swap(i, j int)      { q.tasks[i], q.tasks[j] = q.tasks[j], q.tasks[i] }
func (q *taskPQ) Push(x interface{}) { q.tasks = append(q.tasks, x.(dag.Task)) }
func (q *taskPQ) Pop() interface{} {
	old := q.tasks
	n := len(old)
	t := old[n-1]
	q.tasks = old[:n-1]
	return t
}
