package heuristics_test

// The equivalence harness of the compiled scheduling layer: every
// optimized heuristic must produce a byte-identical schedule and a
// bitwise-equal makespan to its retained reference implementation, on
// every registered workload family, across sizes, uncertainty levels
// and seeds. This is what licenses the CostModel/timeline rewrites to
// claim "pure mechanical sympathy, zero behavior change".

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/experiment"
	"repro/internal/heuristics"
	"repro/internal/platform"
	"repro/internal/stochastic"
)

// heuristicPairs lists each optimized entry point with its reference
// oracle.
var heuristicPairs = []struct {
	name string
	opt  func(*platform.Scenario) (heuristics.Result, error)
	ref  func(*platform.Scenario) (heuristics.Result, error)
}{
	{"HEFT", heuristics.HEFT, heuristics.ReferenceHEFT},
	{"CPOP", heuristics.CPOP, heuristics.ReferenceCPOP},
	{"BIL", heuristics.BIL, heuristics.ReferenceBIL},
	{"HBMCT", heuristics.HBMCT, heuristics.ReferenceHBMCT},
	{"SDHEFT", func(s *platform.Scenario) (heuristics.Result, error) { return heuristics.SDHEFT(s, 1) },
		func(s *platform.Scenario) (heuristics.Result, error) { return heuristics.ReferenceSDHEFT(s, 1) }},
}

// assertIdentical fails unless the two results are exactly equal:
// same processor assignment, same per-processor orders, bitwise-equal
// makespan.
func assertIdentical(t *testing.T, label string, opt, ref heuristics.Result) {
	t.Helper()
	if !reflect.DeepEqual(opt.Schedule.Proc, ref.Schedule.Proc) {
		t.Fatalf("%s: processor assignments differ", label)
	}
	if !reflect.DeepEqual(opt.Schedule.Order, ref.Schedule.Order) {
		t.Fatalf("%s: per-processor orders differ", label)
	}
	if opt.Makespan != ref.Makespan {
		t.Fatalf("%s: makespan %v != reference %v", label, opt.Makespan, ref.Makespan)
	}
}

func runPair(t *testing.T, label string, scen *platform.Scenario,
	opt, ref func(*platform.Scenario) (heuristics.Result, error)) {
	t.Helper()
	ro, err := opt(scen)
	if err != nil {
		t.Fatalf("%s: optimized: %v", label, err)
	}
	rr, err := ref(scen)
	if err != nil {
		t.Fatalf("%s: reference: %v", label, err)
	}
	assertIdentical(t, label, ro, rr)
	if err := ro.Schedule.Validate(scen.G); err != nil {
		t.Fatalf("%s: schedule invalid: %v", label, err)
	}
}

// TestOptimizedHeuristicsMatchReference sweeps all registered workload
// families × sizes × uncertainty levels × seeds. The n=1000 tier
// exercises deep timelines and large HBMCT groups but reference HBMCT
// replays the whole sequence per trial there, so it runs only without
// -short (the weekly full CI job).
func TestOptimizedHeuristicsMatchReference(t *testing.T) {
	sizes := []int{10, 100}
	if !testing.Short() {
		sizes = append(sizes, 1000)
	}
	uls := []float64{1.0, 1.5}
	seeds := []int64{1, 2, 3}
	for _, family := range experiment.FamilyNames() {
		for _, n := range sizes {
			// Reference HBMCT is quadratic in sequence length; keep the
			// large tier to one seed × one UL per family so the full
			// suite stays in CI budget.
			cellULs, cellSeeds := uls, seeds
			if n >= 1000 {
				cellULs, cellSeeds = uls[1:], seeds[:1]
			}
			for _, ul := range cellULs {
				for _, seed := range cellSeeds {
					spec := experiment.CaseSpec{
						Name: "equiv", Family: family, N: n, M: 4, UL: ul, Seed: seed,
					}
					scen, err := spec.BuildScenario()
					var se *experiment.SizeError
					if errors.As(err, &se) {
						// Size off this family's grid (e.g. strassen at 10).
						continue
					}
					if err != nil {
						t.Fatalf("%s/n=%d: %v", family, n, err)
					}
					for _, pair := range heuristicPairs {
						label := pair.name + "/" + family + "/n=" +
							itoa(n) + "/ul=" + ftoa(ul) + "/seed=" + itoa(int(seed))
						runPair(t, label, scen, pair.opt, pair.ref)
					}
				}
			}
		}
	}
}

// TestEquivalenceUnderULExtensions pins the compiled paths against the
// reference on the §VIII scenario extensions, which exercise the
// per-task (TaskUL), per-processor (ProcUL) and custom-DurFn branches
// of the cost precomputation.
func TestEquivalenceUnderULExtensions(t *testing.T) {
	spec := experiment.CaseSpec{Name: "equiv-ext", Family: experiment.RandomFamily,
		N: 60, M: 4, UL: 1.2, Seed: 11}
	base, err := spec.BuildScenario()
	if err != nil {
		t.Fatal(err)
	}
	// The custom-DurFn branch: a uniform duration family whose mean
	// diverges from the Beta(2,5) fast path, so any compiled shortcut
	// that bypassed DurFn (comm tables, ETC tables, SDHEFT's σ) would
	// produce a different schedule than the reference.
	durfn := *base
	durfn.DurFn = func(min, ul float64) stochastic.Dist {
		return stochastic.Uniform{Lo: min, Hi: min * ul}
	}
	scens := map[string]*platform.Scenario{
		"variable-ul":  base.WithVariableUL(1.0, 2.0, rand.New(rand.NewSource(5))),
		"noisy-procs":  base.WithNoisyProcessors(1.02, 2.0),
		"custom-durfn": &durfn,
	}
	for name, scen := range scens {
		for _, pair := range heuristicPairs {
			runPair(t, pair.name+"/"+name, scen, pair.opt, pair.ref)
		}
	}
	// λ sweep for SDHEFT on the variable-UL scenario.
	for _, lambda := range []float64{0, 0.5, 2} {
		l := lambda
		runPair(t, "SDHEFT/lambda", scens["variable-ul"],
			func(s *platform.Scenario) (heuristics.Result, error) { return heuristics.SDHEFT(s, l) },
			func(s *platform.Scenario) (heuristics.Result, error) { return heuristics.ReferenceSDHEFT(s, l) })
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func ftoa(f float64) string {
	if f == float64(int(f)) {
		return itoa(int(f))
	}
	return itoa(int(f)) + "." + itoa(int(f*10)%10)
}
