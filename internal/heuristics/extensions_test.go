package heuristics

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

func TestCPOPProducesValidSchedule(t *testing.T) {
	for _, scen := range []*platform.Scenario{
		randomScenario(30, 4, 1.1, 20),
		choleskyScenario(1.01, 21),
	} {
		res, err := CPOP(scen)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(scen.G); err != nil {
			t.Fatalf("CPOP schedule invalid: %v", err)
		}
		if res.Makespan <= 0 {
			t.Error("CPOP makespan not positive")
		}
	}
}

func TestCPOPCompetitiveWithRandom(t *testing.T) {
	scen := randomScenario(40, 4, 1.1, 22)
	res, err := CPOP(scen)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := schedule.NewSimulator(scen, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	cpop := sim.MeanTiming().Makespan
	rng := rand.New(rand.NewSource(23))
	beaten := 0
	for i := 0; i < 100; i++ {
		s := RandomSchedule(scen, rng)
		rs, err := schedule.NewSimulator(scen, s)
		if err != nil {
			t.Fatal(err)
		}
		if rs.MeanTiming().Makespan > cpop {
			beaten++
		}
	}
	if beaten < 95 {
		t.Errorf("CPOP beats only %d/100 random schedules", beaten)
	}
}

func TestSDHEFTProducesValidSchedule(t *testing.T) {
	scen := randomScenario(30, 4, 1.1, 24)
	for _, lambda := range []float64{0, 1, 2, -3} {
		res, err := SDHEFT(scen, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(scen.G); err != nil {
			t.Fatalf("SDHEFT(λ=%g) schedule invalid: %v", lambda, err)
		}
	}
}

func TestSDHEFTReducesToHEFTUnderConstantUL(t *testing.T) {
	// With constant UL, σ is proportional to the mean so SDHEFT's cost
	// ordering matches HEFT's and the schedules coincide.
	scen := randomScenario(25, 3, 1.1, 25)
	h, err := HEFT(scen)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SDHEFT(scen, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h.Schedule.Proc {
		if h.Schedule.Proc[i] != s.Schedule.Proc[i] {
			t.Fatalf("task %d: HEFT proc %d vs SDHEFT proc %d (should coincide at constant UL)",
				i, h.Schedule.Proc[i], s.Schedule.Proc[i])
		}
	}
}

func TestSDHEFTDivergesUnderVariableUL(t *testing.T) {
	scen := randomScenario(40, 4, 1.1, 26)
	varScen := scen.WithVariableUL(1.0, 2.0, rand.New(rand.NewSource(27)))
	h, err := HEFT(varScen)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SDHEFT(varScen, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range h.Schedule.Proc {
		if h.Schedule.Proc[i] != s.Schedule.Proc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("SDHEFT identical to HEFT under strongly variable UL")
	}
}

func TestVariableULScenario(t *testing.T) {
	scen := randomScenario(10, 2, 1.1, 28)
	v := scen.WithVariableUL(1.2, 1.4, rand.New(rand.NewSource(29)))
	if len(v.TaskUL) != 10 {
		t.Fatalf("TaskUL length %d", len(v.TaskUL))
	}
	for i, ul := range v.TaskUL {
		if ul < 1.2 || ul > 1.4 {
			t.Errorf("task %d UL %g outside [1.2,1.4]", i, ul)
		}
		if v.ULFor(dag.Task(i)) != ul {
			t.Errorf("ULFor(%d) mismatch", i)
		}
	}
	// The base scenario is untouched.
	if scen.TaskUL != nil {
		t.Error("WithVariableUL mutated the base scenario")
	}
	// Distinct supports: a task's duration support upper bound follows
	// its own UL.
	d := v.TaskDist(0, 0)
	_, hi := d.Support()
	wantHi := v.P.ETC[0][0] * v.TaskUL[0]
	if hi != wantHi {
		t.Errorf("task 0 support hi = %g, want %g", hi, wantHi)
	}
}

func TestNoisyProcessorsEqualizeMeans(t *testing.T) {
	scen := randomScenario(10, 4, 1.1, 32)
	noisy := scen.WithNoisyProcessors(1.02, 2.0)
	if len(noisy.ProcUL) != 4 {
		t.Fatalf("ProcUL length %d", len(noisy.ProcUL))
	}
	for tsk := 0; tsk < 10; tsk++ {
		// Means on a stable and the corresponding noisy processor
		// derive from rescaled minima; the noisy column's mean per unit
		// of the ORIGINAL ETC must match the stable factor.
		for p := 0; p < 4; p++ {
			d := noisy.TaskDist(dag.Task(tsk), p)
			origMin := scen.P.ETC[tsk][p]
			wantFactor := noisy.DurationAt(1).Mean() // not used; sanity only
			_ = wantFactor
			stableFactor := 1 + (1.02-1)*2.0/7.0
			if got, want := d.Mean(), origMin*stableFactor; got < want*0.999 || got > want*1.001 {
				t.Fatalf("task %d proc %d mean %g, want %g", tsk, p, got, want)
			}
		}
	}
	// Variance differs: noisy processors are wider.
	v0 := noisy.TaskDist(0, 0).Variance()
	v1 := noisy.TaskDist(0, 1).Variance()
	if v1 <= v0 {
		t.Errorf("noisy proc variance %g not larger than stable %g", v1, v0)
	}
	// The base scenario is untouched.
	if scen.ProcUL != nil {
		t.Error("WithNoisyProcessors mutated the base scenario")
	}
}

func TestSDHEFTBeatsHEFTSigmaOnNoisyProcessors(t *testing.T) {
	scen := randomScenario(30, 4, 1.1, 33)
	noisy := scen.WithNoisyProcessors(1.02, 2.0)
	h, err := HEFT(noisy)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SDHEFT(noisy, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Compare makespan dispersion via Monte Carlo (cheap and assumption-free).
	hSim, err := schedule.NewSimulator(noisy, h.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	sSim, err := schedule.NewSimulator(noisy, s.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	hStd := stochastic.NewEmpirical(hSim.Realizations(20000, 1)).StdDev()
	sStd := stochastic.NewEmpirical(sSim.Realizations(20000, 2)).StdDev()
	if sStd >= hStd {
		t.Errorf("SDHEFT sigma %g not below HEFT sigma %g on noisy processors", sStd, hStd)
	}
}

func TestCustomDurFn(t *testing.T) {
	scen := randomScenario(5, 2, 1.3, 30)
	scen.DurFn = func(min, ul float64) stochastic.Dist {
		return stochastic.Uniform{Lo: min, Hi: min * ul}
	}
	d := scen.TaskDist(0, 0)
	if _, ok := d.(stochastic.Uniform); !ok {
		t.Fatalf("DurFn ignored: got %T", d)
	}
	// Mean matches the uniform mean, not the Beta mean.
	min := scen.P.ETC[0][0]
	want := min * (1 + 1.3) / 2
	if got := scen.MeanTask(0, 0); got != want {
		t.Errorf("mean = %g, want %g", got, want)
	}
	// Deterministic minimum still degrades to Dirac.
	scen2 := randomScenario(5, 2, 1.0, 31)
	scen2.DurFn = scen.DurFn
	if _, ok := scen2.TaskDist(0, 0).(stochastic.Dirac); !ok {
		t.Error("UL=1 should bypass DurFn with a Dirac")
	}
}

func TestHeuristicsSingleProcessor(t *testing.T) {
	scen := randomScenario(15, 1, 1.1, 40)
	for _, h := range []struct {
		name string
		fn   func(*platform.Scenario) (Result, error)
	}{
		{"HEFT", HEFT}, {"BIL", BIL}, {"HBMCT", HBMCT}, {"CPOP", CPOP},
		{"SDHEFT", func(s *platform.Scenario) (Result, error) { return SDHEFT(s, 1) }},
	} {
		res, err := h.fn(scen)
		if err != nil {
			t.Fatalf("%s: %v", h.name, err)
		}
		if err := res.Schedule.Validate(scen.G); err != nil {
			t.Fatalf("%s single-proc schedule invalid: %v", h.name, err)
		}
		// On one processor the makespan is at least the serial work.
		var serial float64
		m := NewModel(scen)
		for t2 := 0; t2 < scen.G.N(); t2++ {
			serial += m.MeanETC[t2][0]
		}
		if res.Makespan < serial-1e-6 {
			t.Errorf("%s: makespan %g below serial bound %g", h.name, res.Makespan, serial)
		}
	}
}

func TestCPOPSingleTask(t *testing.T) {
	g := dag.New(1)
	tau, lat := platform.NewUniformNetwork(2, 1, 0)
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: 2, ETC: [][]float64{{5, 3}}, Tau: tau, Lat: lat},
		UL: 1,
	}
	res, err := CPOP(scen)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 3 {
		t.Errorf("single-task CPOP makespan = %g, want 3 (fastest proc)", res.Makespan)
	}
}
