package heuristics

import (
	"repro/internal/dag"
	"repro/internal/platform"
)

// HBMCT implements the hybrid heuristic of Sakellariou & Zhao
// (Hyb.BMCT): tasks are ranked as in HEFT, split into groups of
// mutually independent tasks following the rank order, and each group
// is first assigned by minimum completion time and then rebalanced —
// tasks are moved off the processor that finishes the group last while
// that improves the group's completion time (Balanced Minimum
// Completion Time).
//
// Compiled implementation, bit-identical to ReferenceHBMCT, with two
// structural differences that change complexity but not results:
//
//   - Grouping never materializes the O(n²)-bit reachability closure.
//     Whether a task is connected to the current group is probed by a
//     depth-first search bounded by the group's topological level
//     window (independentGroupsCSR), so peak memory is O(n + e).
//   - Timings are recomputed incrementally. A tentative assignment
//     only affects tasks at or after the moved task in the placement
//     sequence, and those are exactly the current group's members
//     (groups are mutually independent internally and placed
//     group-by-group), so every trial replays just the group from the
//     processor-ready state captured at the group's start instead of
//     replaying the whole sequence.
func HBMCT(scen *platform.Scenario) (Result, error) {
	cm, err := NewCostModel(scen)
	if err != nil {
		return Result{}, err
	}
	n, m := cm.N, cm.M
	csr := cm.csr

	order := cm.RankOrder()
	depth := csr.Depths(cm.order)
	groups := independentGroupsCSR(csr, order, depth)

	proc := make([]int, n)
	for i := range proc {
		proc[i] = -1
	}
	start := make([]float64, n)
	finish := make([]float64, n)
	ready := make([]float64, m)     // committed state incl. the placed group prefix
	readyBase := make([]float64, m) // state at the start of the current group
	scratch := make([]float64, m)   // replay buffer

	// finishOn computes t's eager start/finish on p given the committed
	// predecessor timings and the supplied per-processor ready state —
	// the same arithmetic recompute performs at t's position.
	finishOn := func(t dag.Task, p int, rdy []float64) (st, ft float64) {
		st = rdy[p]
		for k := csr.PredStart[t]; k < csr.PredStart[t+1]; k++ {
			pr := csr.PredAdj[k]
			arr := finish[pr] + cm.Comm(csr.PredEdge[k], proc[pr], p)
			if arr > st {
				st = arr
			}
		}
		ft = st + cm.MeanETC[int(t)*m+p]
		return st, ft
	}

	for _, group := range groups {
		copy(readyBase, ready)
		// Phase 1: initial MCT assignment in rank order. Appending t
		// leaves every earlier timing unchanged, so each trial is a
		// single finishOn evaluation.
		for _, t := range group {
			bestProc, bestFinish := -1, 0.0
			for p := 0; p < m; p++ {
				if _, ft := finishOn(t, p, ready); bestProc < 0 || ft < bestFinish {
					bestProc, bestFinish = p, ft
				}
			}
			proc[t] = bestProc
			st, ft := finishOn(t, bestProc, ready)
			start[t], finish[t] = st, ft
			ready[bestProc] = ft
		}
		if len(group) < 2 || m < 2 {
			continue
		}
		// Phase 2: BMCT rebalancing — move the group's last-finishing
		// task while the group completion time improves. Group members
		// have no predecessors inside the group, so a trial replays
		// only the group from readyBase.
		replayGroup := func() {
			copy(scratch, readyBase)
			for _, t := range group {
				p := proc[t]
				st, ft := finishOn(t, p, scratch)
				start[t], finish[t] = st, ft
				scratch[p] = ft
			}
		}
		groupFinish := func() (dag.Task, float64) {
			var worst dag.Task = -1
			var ms float64
			for _, t := range group {
				if finish[t] > ms {
					ms, worst = finish[t], t
				}
			}
			return worst, ms
		}
		maxMoves := 2 * len(group)
		for move := 0; move < maxMoves; move++ {
			worst, cur := groupFinish()
			if worst < 0 {
				break // every task finishes at 0: nothing to improve
			}
			bestProc := proc[worst]
			bestMs := cur
			orig := proc[worst]
			for p := 0; p < m; p++ {
				if p == orig {
					continue
				}
				proc[worst] = p
				replayGroup()
				if _, ms := groupFinish(); ms < bestMs-1e-12 {
					bestMs, bestProc = ms, p
				}
			}
			proc[worst] = bestProc
			replayGroup()
			if bestProc == orig {
				break
			}
		}
		copy(ready, scratch)
	}

	var ms float64
	for _, f := range finish {
		if f > ms {
			ms = f
		}
	}
	s := buildFromPlacement(cm.pos, m, proc, start)
	return Result{Schedule: s, Makespan: ms}, nil
}

// independentGroupsCSR splits a rank-ordered task list into maximal
// consecutive groups of pairwise independent tasks — the same groups
// independentGroups derives from the full reachability closure —
// without ever materializing an n×n structure. Whether the next task
// is connected to the current group is decided by two depth-first
// probes pruned with topological depths: every ancestor of t lies on a
// strictly smaller depth, every descendant on a strictly larger one,
// so a probe abandons any branch that leaves the group's depth window
// [minDepth, maxDepth]. Visited marks are epoch-stamped, so the probe
// structures are allocated once.
func independentGroupsCSR(csr *dag.CSR, order []dag.Task, depth []int32) [][]dag.Task {
	n := csr.NumTasks
	inGroup := make([]bool, n)
	visited := make([]int32, n)
	var epoch int32
	stack := make([]int32, 0, 64)

	var groups [][]dag.Task
	var cur []dag.Task
	var minDepth, maxDepth int32

	// probe reports whether any task of the current group is reachable
	// from t along pred edges (dir < 0) or succ edges (dir > 0).
	probe := func(t dag.Task, dir int) bool {
		epoch++
		stack = stack[:0]
		if dir < 0 {
			for k := csr.PredStart[t]; k < csr.PredStart[t+1]; k++ {
				stack = append(stack, csr.PredAdj[k])
			}
		} else {
			for k := csr.SuccStart[t]; k < csr.SuccStart[t+1]; k++ {
				stack = append(stack, csr.SuccAdj[k])
			}
		}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[u] == epoch {
				continue
			}
			visited[u] = epoch
			if dir < 0 {
				if depth[u] < minDepth {
					continue // all further ancestors are shallower still
				}
				if inGroup[u] {
					return true
				}
				for k := csr.PredStart[u]; k < csr.PredStart[u+1]; k++ {
					stack = append(stack, csr.PredAdj[k])
				}
			} else {
				if depth[u] > maxDepth {
					continue // all further descendants are deeper still
				}
				if inGroup[u] {
					return true
				}
				for k := csr.SuccStart[u]; k < csr.SuccStart[u+1]; k++ {
					stack = append(stack, csr.SuccAdj[k])
				}
			}
		}
		return false
	}

	for _, t := range order {
		if len(cur) > 0 && (probe(t, -1) || probe(t, +1)) {
			groups = append(groups, cur)
			for _, u := range cur {
				inGroup[u] = false
			}
			cur = nil
		}
		if len(cur) == 0 {
			minDepth, maxDepth = depth[t], depth[t]
		} else {
			if depth[t] < minDepth {
				minDepth = depth[t]
			}
			if depth[t] > maxDepth {
				maxDepth = depth[t]
			}
		}
		cur = append(cur, t)
		inGroup[t] = true
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}
