package heuristics

import (
	"repro/internal/dag"
	"repro/internal/platform"
)

// HBMCT implements the hybrid heuristic of Sakellariou & Zhao
// (Hyb.BMCT): tasks are ranked as in HEFT, split into groups of
// mutually independent tasks following the rank order, and each group
// is first assigned by minimum completion time and then rebalanced —
// tasks are moved off the processor that finishes the group last while
// that improves the group's completion time (Balanced Minimum
// Completion Time).
func HBMCT(scen *platform.Scenario) (Result, error) {
	m := NewModel(scen)
	g := scen.G
	n := g.N()
	nProc := scen.P.M

	order, err := m.RankOrder()
	if err != nil {
		return Result{}, err
	}
	reach := reachability(g)
	groups := independentGroups(order, reach)

	proc := make([]int, n)
	for i := range proc {
		proc[i] = -1
	}
	// seq is the global placement order (rank order), used to recompute
	// eager timings after every tentative move.
	var seq []dag.Task
	start := make([]float64, n)
	finish := make([]float64, n)

	// recompute replays the eager execution of seq under the current
	// assignment, in append mode per processor.
	recompute := func() float64 {
		ready := make([]float64, nProc)
		var ms float64
		for _, t := range seq {
			p := proc[t]
			st := ready[p]
			for _, pr := range g.Pred(t) {
				arr := finish[pr] + m.MeanComm(pr, t, proc[pr], p)
				if arr > st {
					st = arr
				}
			}
			start[t] = st
			finish[t] = st + m.MeanETC[t][p]
			ready[p] = finish[t]
			if finish[t] > ms {
				ms = finish[t]
			}
		}
		return ms
	}

	for _, group := range groups {
		// Phase 1: initial MCT assignment in rank order.
		for _, t := range group {
			seq = append(seq, t)
			bestProc, bestFinish := -1, 0.0
			for p := 0; p < nProc; p++ {
				proc[t] = p
				recompute()
				if bestProc < 0 || finish[t] < bestFinish {
					bestProc, bestFinish = p, finish[t]
				}
			}
			proc[t] = bestProc
			recompute()
		}
		if len(group) < 2 || nProc < 2 {
			continue
		}
		// Phase 2: BMCT rebalancing — move the group's last-finishing
		// task while the group completion time improves.
		groupFinish := func() (dag.Task, float64) {
			var worst dag.Task = -1
			var ms float64
			for _, t := range group {
				if finish[t] > ms {
					ms, worst = finish[t], t
				}
			}
			return worst, ms
		}
		maxMoves := 2 * len(group)
		for move := 0; move < maxMoves; move++ {
			worst, cur := groupFinish()
			bestProc := proc[worst]
			bestMs := cur
			orig := proc[worst]
			for p := 0; p < nProc; p++ {
				if p == orig {
					continue
				}
				proc[worst] = p
				recompute()
				if _, ms := groupFinish(); ms < bestMs-1e-12 {
					bestMs, bestProc = ms, p
				}
			}
			proc[worst] = bestProc
			recompute()
			if bestProc == orig {
				break
			}
		}
	}

	ms := recompute()
	s := buildFromPlacement(n, nProc, proc, start)
	return Result{Schedule: s, Makespan: ms}, nil
}

// reachability computes ancestor/descendant closure as bitsets:
// reach[i] has bit j set when there is a path i → j.
func reachability(g *dag.Graph) [][]uint64 {
	n := g.N()
	words := (n + 63) / 64
	reach := make([][]uint64, n)
	for i := range reach {
		reach[i] = make([]uint64, words)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return reach
	}
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		for _, s := range g.Succ(t) {
			reach[t][int(s)/64] |= 1 << (uint(s) % 64)
			for w := 0; w < words; w++ {
				reach[t][w] |= reach[s][w]
			}
		}
	}
	return reach
}

// connected reports whether a and b are related by a path in either
// direction.
func connected(reach [][]uint64, a, b dag.Task) bool {
	if reach[a][int(b)/64]&(1<<(uint(b)%64)) != 0 {
		return true
	}
	return reach[b][int(a)/64]&(1<<(uint(a)%64)) != 0
}

// independentGroups splits a rank-ordered task list into maximal
// consecutive groups of pairwise independent tasks.
func independentGroups(order []dag.Task, reach [][]uint64) [][]dag.Task {
	var groups [][]dag.Task
	var cur []dag.Task
	for _, t := range order {
		dependent := false
		for _, u := range cur {
			if connected(reach, t, u) {
				dependent = true
				break
			}
		}
		if dependent {
			groups = append(groups, cur)
			cur = nil
		}
		cur = append(cur, t)
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

// ByName returns the heuristic with the given name ("heft", "bil",
// "hbmct", "cpop", "sdheft"), or nil.
func ByName(name string) func(*platform.Scenario) (Result, error) {
	switch name {
	case "heft", "HEFT":
		return HEFT
	case "bil", "BIL":
		return BIL
	case "hbmct", "HBMCT", "hyb.bmct", "Hyb.BMCT":
		return HBMCT
	case "cpop", "CPOP":
		return CPOP
	case "sdheft", "SDHEFT":
		return func(s *platform.Scenario) (Result, error) { return SDHEFT(s, 1) }
	default:
		return nil
	}
}

// All returns the three heuristics of the paper in presentation order.
func All() []struct {
	Name string
	Fn   func(*platform.Scenario) (Result, error)
} {
	return []struct {
		Name string
		Fn   func(*platform.Scenario) (Result, error)
	}{
		{"BIL", BIL},
		{"HEFT", HEFT},
		{"HBMCT", HBMCT},
	}
}
