package heuristics

import (
	"sort"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// slot is a busy interval on a processor, used by insertion-based
// placement.
type slot struct{ start, finish float64 }

// insertionStart returns the earliest start >= est on a processor whose
// busy slots are sorted by start time, allowing insertion into idle
// gaps large enough for dur.
func insertionStart(slots []slot, est, dur float64) float64 {
	cur := est
	for _, s := range slots {
		if almostLE(cur+dur, s.start) {
			return cur
		}
		if s.finish > cur {
			cur = s.finish
		}
	}
	return cur
}

// insertSlot adds a busy interval keeping the slice sorted by start.
func insertSlot(slots []slot, s slot) []slot {
	idx := sort.Search(len(slots), func(i int) bool { return slots[i].start >= s.start })
	slots = append(slots, slot{})
	copy(slots[idx+1:], slots[idx:])
	slots[idx] = s
	return slots
}

// buildFromPlacement converts a task→processor assignment plus start
// times into a Schedule whose per-processor orders follow the start
// times.
func buildFromPlacement(n, nProc int, proc []int, start []float64) *schedule.Schedule {
	s := schedule.New(n, nProc)
	byProc := make([][]dag.Task, nProc)
	for t := 0; t < n; t++ {
		byProc[proc[t]] = append(byProc[proc[t]], dag.Task(t))
	}
	for p := range byProc {
		ord := byProc[p]
		sort.SliceStable(ord, func(i, j int) bool { return start[ord[i]] < start[ord[j]] })
		for _, t := range ord {
			s.Assign(t, p)
		}
	}
	return s
}

// HEFT implements the Heterogeneous Earliest Finish Time heuristic of
// Topcuoglu, Hariri and Wu: tasks are prioritized by upward rank
// (computed with processor-averaged durations and pair-averaged
// communication costs) and each task is placed on the processor that
// minimizes its earliest finish time, with insertion into idle gaps.
func HEFT(scen *platform.Scenario) (Result, error) {
	m := NewModel(scen)
	order, err := m.RankOrder()
	if err != nil {
		return Result{}, err
	}
	n := scen.G.N()
	nProc := scen.P.M

	slots := make([][]slot, nProc)
	start := make([]float64, n)
	finish := make([]float64, n)
	proc := make([]int, n)

	for _, t := range order {
		bestProc, bestStart, bestFinish := -1, 0.0, 0.0
		for p := 0; p < nProc; p++ {
			est := 0.0
			for _, pr := range scen.G.Pred(t) {
				arr := finish[pr] + m.MeanComm(pr, t, proc[pr], p)
				if arr > est {
					est = arr
				}
			}
			dur := m.MeanETC[t][p]
			st := insertionStart(slots[p], est, dur)
			ft := st + dur
			if bestProc < 0 || ft < bestFinish {
				bestProc, bestStart, bestFinish = p, st, ft
			}
		}
		proc[t] = bestProc
		start[t] = bestStart
		finish[t] = bestFinish
		slots[bestProc] = insertSlot(slots[bestProc], slot{start: bestStart, finish: bestFinish})
	}

	s := buildFromPlacement(n, nProc, proc, start)
	var ms float64
	for _, f := range finish {
		if f > ms {
			ms = f
		}
	}
	return Result{Schedule: s, Makespan: ms}, nil
}
