package heuristics

import (
	"repro/internal/platform"
)

// HEFT implements the Heterogeneous Earliest Finish Time heuristic of
// Topcuoglu, Hariri and Wu: tasks are prioritized by upward rank
// (computed with processor-averaged durations and pair-averaged
// communication costs) and each task is placed on the processor that
// minimizes its earliest finish time, with insertion into idle gaps.
//
// This is the compiled implementation — CSR adjacency, precomputed
// communication costs, gap-indexed timelines — and is bit-identical to
// ReferenceHEFT.
func HEFT(scen *platform.Scenario) (Result, error) {
	cm, err := NewCostModel(scen)
	if err != nil {
		return Result{}, err
	}
	order := cm.RankOrder()
	proc, start, finish := placeByInsertion(cm.csr, cm.M, order, cm.MeanETC, cm.Comm)
	s := buildFromPlacement(cm.pos, cm.M, proc, start)
	var ms float64
	for _, f := range finish {
		if f > ms {
			ms = f
		}
	}
	return Result{Schedule: s, Makespan: ms}, nil
}
