package heuristics

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/graphgen"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// randomScenario builds a reproducible random scenario.
func randomScenario(n, m int, ul float64, seed int64) *platform.Scenario {
	rng := rand.New(rand.NewSource(seed))
	g, w := graphgen.Random(graphgen.DefaultRandomParams(n), rng)
	tau, lat := platform.NewUniformNetwork(m, 1, 0)
	p := &platform.Platform{
		M:   m,
		ETC: platform.GenerateETCFromWeights(w, m, 0.5, rng),
		Tau: tau,
		Lat: lat,
	}
	return &platform.Scenario{G: g, P: p, UL: ul}
}

// choleskyScenario mirrors the paper's Fig. 3 case (10 tasks, 3 procs).
func choleskyScenario(ul float64, seed int64) *platform.Scenario {
	rng := rand.New(rand.NewSource(seed))
	g := graphgen.Cholesky(3, 10, 20, rng)
	tau, lat := platform.NewUniformNetwork(3, 1, 0)
	p := &platform.Platform{
		M:   3,
		ETC: platform.GenerateETCUniform(g.N(), 3, 10, 20, rng),
		Tau: tau,
		Lat: lat,
	}
	return &platform.Scenario{G: g, P: p, UL: ul}
}

func TestRandomScheduleValid(t *testing.T) {
	scen := randomScenario(40, 4, 1.1, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		s := RandomSchedule(scen, rng)
		if err := s.Validate(scen.G); err != nil {
			t.Fatalf("random schedule %d invalid: %v", i, err)
		}
	}
}

func TestRandomSchedulesAreDiverse(t *testing.T) {
	scen := randomScenario(20, 4, 1.1, 3)
	rng := rand.New(rand.NewSource(4))
	ss := RandomSchedules(scen, 20, rng)
	if len(ss) != 20 {
		t.Fatalf("got %d schedules", len(ss))
	}
	distinct := false
	for i := 1; i < len(ss); i++ {
		for tsk := range ss[i].Proc {
			if ss[i].Proc[tsk] != ss[0].Proc[tsk] {
				distinct = true
			}
		}
	}
	if !distinct {
		t.Error("20 random schedules all identical")
	}
}

func TestUpwardRanksMonotone(t *testing.T) {
	scen := randomScenario(30, 3, 1.1, 5)
	m := NewModel(scen)
	rank, err := m.UpwardRanks()
	if err != nil {
		t.Fatal(err)
	}
	// A parent's rank strictly exceeds every child's rank.
	for _, e := range scen.G.Edges() {
		if rank[e.From] <= rank[e.To] {
			t.Errorf("rank[%d]=%g <= rank[%d]=%g along edge", e.From, rank[e.From], e.To, rank[e.To])
		}
	}
	// RankOrder is a topological order.
	order, err := m.RankOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(order))
	for i, task := range order {
		pos[task] = i
	}
	for _, e := range scen.G.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("rank order violates edge %v", e)
		}
	}
}

func TestHEFTProducesValidSchedule(t *testing.T) {
	for _, scen := range []*platform.Scenario{
		randomScenario(30, 4, 1.1, 6),
		choleskyScenario(1.01, 7),
	} {
		res, err := HEFT(scen)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(scen.G); err != nil {
			t.Fatalf("HEFT schedule invalid: %v", err)
		}
		if res.Makespan <= 0 {
			t.Error("HEFT makespan not positive")
		}
	}
}

func TestBILProducesValidSchedule(t *testing.T) {
	for _, scen := range []*platform.Scenario{
		randomScenario(30, 4, 1.1, 8),
		choleskyScenario(1.01, 9),
	} {
		res, err := BIL(scen)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(scen.G); err != nil {
			t.Fatalf("BIL schedule invalid: %v", err)
		}
		if res.Makespan <= 0 {
			t.Error("BIL makespan not positive")
		}
	}
}

func TestHBMCTProducesValidSchedule(t *testing.T) {
	for _, scen := range []*platform.Scenario{
		randomScenario(30, 4, 1.1, 10),
		choleskyScenario(1.01, 11),
	} {
		res, err := HBMCT(scen)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(scen.G); err != nil {
			t.Fatalf("HBMCT schedule invalid: %v", err)
		}
		if res.Makespan <= 0 {
			t.Error("HBMCT makespan not positive")
		}
	}
}

// The headline sanity check from the paper's §VII: the heuristics
// "give always the best makespan" against random schedules.
func TestHeuristicsBeatRandomSchedules(t *testing.T) {
	scen := randomScenario(40, 4, 1.1, 12)
	rng := rand.New(rand.NewSource(13))

	randBest := 1e18
	for i := 0; i < 200; i++ {
		s := RandomSchedule(scen, rng)
		sim, err := schedule.NewSimulator(scen, s)
		if err != nil {
			t.Fatal(err)
		}
		if ms := sim.MeanTiming().Makespan; ms < randBest {
			randBest = ms
		}
	}
	for _, h := range All() {
		res, err := h.Fn(scen)
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		sim, err := schedule.NewSimulator(scen, res.Schedule)
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		ms := sim.MeanTiming().Makespan
		if ms > randBest {
			t.Errorf("%s mean makespan %g worse than best of 200 random (%g)", h.Name, ms, randBest)
		}
	}
}

// The heuristic's internal makespan estimate must agree with the eager
// re-simulation of its schedule (append-mode heuristics exactly;
// insertion-based HEFT within tolerance since eager execution can only
// start tasks earlier, never later).
func TestHeuristicEstimateMatchesSimulation(t *testing.T) {
	scen := randomScenario(25, 3, 1.1, 14)
	for _, h := range All() {
		res, err := h.Fn(scen)
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		sim, err := schedule.NewSimulator(scen, res.Schedule)
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		got := sim.MeanTiming().Makespan
		if got > res.Makespan+1e-6 {
			t.Errorf("%s: simulated mean makespan %g exceeds heuristic estimate %g", h.Name, got, res.Makespan)
		}
	}
}

func TestHEFTChainCollapsesToOneProcessor(t *testing.T) {
	// A chain with heavy communication must stay on the fastest
	// processor.
	g := graphgen.Chain(5, 100)
	tau, lat := platform.NewUniformNetwork(3, 1, 0)
	etc := make([][]float64, 5)
	for i := range etc {
		etc[i] = []float64{10, 11, 12} // proc 0 fastest everywhere
	}
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: 3, ETC: etc, Tau: tau, Lat: lat},
		UL: 1,
	}
	res, err := HEFT(scen)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Schedule.Proc {
		if p != 0 {
			t.Errorf("task %d on proc %d, want 0", i, p)
		}
	}
	if res.Makespan != 50 {
		t.Errorf("HEFT chain makespan = %g, want 50", res.Makespan)
	}
}

func TestHEFTInsertionUsesGaps(t *testing.T) {
	// slots: busy [10,20]; est 0, dur 5 → fits at 0.
	slots := []slot{{10, 20}}
	if got := insertionStart(slots, 0, 5); got != 0 {
		t.Errorf("insertion start = %g, want 0", got)
	}
	// dur 15 does not fit before 10 → starts at 20.
	if got := insertionStart(slots, 0, 15); got != 20 {
		t.Errorf("insertion start = %g, want 20", got)
	}
	// est 12 inside the busy slot → 20.
	if got := insertionStart(slots, 12, 3); got != 20 {
		t.Errorf("insertion start = %g, want 20", got)
	}
}

func TestKthSmallest(t *testing.T) {
	xs := []float64{5, 1, 4, 2}
	if kthSmallest(xs, 1, nil) != 1 || kthSmallest(xs, 2, nil) != 2 || kthSmallest(xs, 4, nil) != 5 {
		t.Error("kthSmallest wrong")
	}
	if kthSmallest(xs, 0, nil) != 1 || kthSmallest(xs, 10, nil) != 5 {
		t.Error("kthSmallest clamping wrong")
	}
	// A scratch buffer must not change results and must protect xs.
	scratch := make([]float64, 4)
	if kthSmallest(xs, 3, scratch) != 4 {
		t.Error("kthSmallest with scratch wrong")
	}
	// Input must not be mutated.
	if xs[0] != 5 || xs[1] != 1 {
		t.Error("kthSmallest mutated input")
	}
}

func TestIndependentGroups(t *testing.T) {
	// Chain 0→1→2: every task is its own group.
	g := graphgen.Chain(3, 1)
	reach := reachability(g)
	groups := independentGroups([]dag.Task{0, 1, 2}, reach)
	if len(groups) != 3 {
		t.Fatalf("chain groups = %d, want 3", len(groups))
	}
	// Fork: source alone, then all children together.
	f := graphgen.Fork(4, 1)
	reach = reachability(f)
	groups = independentGroups([]dag.Task{0, 1, 2, 3}, reach)
	if len(groups) != 2 || len(groups[0]) != 1 || len(groups[1]) != 3 {
		t.Fatalf("fork groups = %v", groups)
	}
}

func TestReachability(t *testing.T) {
	g := graphgen.Chain(4, 1)
	reach := reachability(g)
	if !connected(reach, 0, 3) || !connected(reach, 3, 0) {
		t.Error("chain endpoints should be connected (transitively)")
	}
	f := graphgen.Fork(3, 1)
	reach = reachability(f)
	if connected(reach, 1, 2) {
		t.Error("fork siblings must be independent")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"heft", "HEFT", "bil", "BIL", "hbmct", "Hyb.BMCT"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName should return nil for unknown names")
	}
}

func TestModelAvgComm(t *testing.T) {
	scen := randomScenario(10, 1, 1.1, 15)
	m := NewModel(scen)
	// Single processor: no communication ever.
	for _, e := range scen.G.Edges() {
		if m.AvgComm(e.From, e.To) != 0 {
			t.Error("single-proc AvgComm must be 0")
		}
	}
}
