package heuristics

import (
	"math/rand"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// RandomSchedule generates one random eager schedule by the paper's
// three-phase process (§V): repeatedly (1) choose a ready task uniformly
// at random, (2) assign it to a uniformly random processor, (3) update
// the ready list. The resulting per-processor orders are
// precedence-compatible by construction.
func RandomSchedule(scen *platform.Scenario, rng *rand.Rand) *schedule.Schedule {
	g := scen.G
	n := g.N()
	s := schedule.New(n, scen.P.M)
	indeg := make([]int, n)
	ready := make([]dag.Task, 0, n)
	for t := 0; t < n; t++ {
		indeg[t] = len(g.Pred(dag.Task(t)))
		if indeg[t] == 0 {
			ready = append(ready, dag.Task(t))
		}
	}
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		t := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		s.Assign(t, rng.Intn(scen.P.M))
		for _, succ := range g.Succ(t) {
			indeg[succ]--
			if indeg[succ] == 0 {
				ready = append(ready, succ)
			}
		}
	}
	return s
}

// RandomSchedules generates count independent random schedules.
func RandomSchedules(scen *platform.Scenario, count int, rng *rand.Rand) []*schedule.Schedule {
	out := make([]*schedule.Schedule, count)
	for i := range out {
		out[i] = RandomSchedule(scen, rng)
	}
	return out
}
