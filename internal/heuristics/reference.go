package heuristics

import (
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// This file retains the original Model-based heuristic implementations
// verbatim (renamed Reference*). They are the oracle the compiled
// CostModel rewrites are checked against: the equivalence harness
// asserts byte-identical schedules and bitwise-equal makespans across
// every registered workload family. Keep them boring and obviously
// faithful to the papers — performance work happens in the compiled
// paths only.

// slot is a busy interval on a processor, used by insertion-based
// placement.
type slot struct{ start, finish float64 }

// insertionStart returns the earliest start >= est on a processor whose
// busy slots are sorted by start time, allowing insertion into idle
// gaps large enough for dur.
func insertionStart(slots []slot, est, dur float64) float64 {
	cur := est
	for _, s := range slots {
		if almostLE(cur+dur, s.start) {
			return cur
		}
		if s.finish > cur {
			cur = s.finish
		}
	}
	return cur
}

// insertSlot adds a busy interval keeping the slice sorted by start.
func insertSlot(slots []slot, s slot) []slot {
	idx := sort.Search(len(slots), func(i int) bool { return slots[i].start >= s.start })
	slots = append(slots, slot{})
	copy(slots[idx+1:], slots[idx:])
	slots[idx] = s
	return slots
}

// builder incrementally constructs an eager schedule while tracking
// start/finish times under mean durations. Tasks must be fed in a
// precedence-compatible order.
type builder struct {
	model  *Model
	sched  *schedule.Schedule
	start  []float64
	finish []float64
	ready  []float64 // per-processor next-free time (append mode)
}

func newBuilder(m *Model) *builder {
	n := m.Scen.G.N()
	b := &builder{
		model:  m,
		sched:  schedule.New(n, m.Scen.P.M),
		start:  make([]float64, n),
		finish: make([]float64, n),
		ready:  make([]float64, m.Scen.P.M),
	}
	for i := range b.start {
		b.start[i] = -1
	}
	return b
}

// estAppend returns the earliest start of t on p in append mode: data
// arrival from all predecessors plus the processor's free time.
func (b *builder) estAppend(t dag.Task, p int) float64 {
	est := b.ready[p]
	for _, pr := range b.model.Scen.G.Pred(t) {
		arr := b.finish[pr] + b.model.MeanComm(pr, t, b.sched.Proc[pr], p)
		if arr > est {
			est = arr
		}
	}
	return est
}

// place commits t to p with the given start time (append mode).
func (b *builder) place(t dag.Task, p int, start float64) {
	b.sched.Assign(t, p)
	b.start[t] = start
	b.finish[t] = start + b.model.MeanETC[t][p]
	if b.finish[t] > b.ready[p] {
		b.ready[p] = b.finish[t]
	}
}

// makespan returns the latest finish among placed tasks.
func (b *builder) makespan() float64 {
	var ms float64
	for i, st := range b.start {
		if st >= 0 && b.finish[i] > ms {
			ms = b.finish[i]
		}
	}
	return ms
}

// ReferenceHEFT is the original HEFT implementation (Topcuoglu, Hariri
// and Wu): tasks are prioritized by upward rank (computed with
// processor-averaged durations and pair-averaged communication costs)
// and each task is placed on the processor that minimizes its earliest
// finish time, with insertion into idle gaps.
func ReferenceHEFT(scen *platform.Scenario) (Result, error) {
	m := NewModel(scen)
	order, err := m.RankOrder()
	if err != nil {
		return Result{}, err
	}
	n := scen.G.N()
	nProc := scen.P.M

	slots := make([][]slot, nProc)
	start := make([]float64, n)
	finish := make([]float64, n)
	proc := make([]int, n)

	for _, t := range order {
		bestProc, bestStart, bestFinish := -1, 0.0, 0.0
		for p := 0; p < nProc; p++ {
			est := 0.0
			for _, pr := range scen.G.Pred(t) {
				arr := finish[pr] + m.MeanComm(pr, t, proc[pr], p)
				if arr > est {
					est = arr
				}
			}
			dur := m.MeanETC[t][p]
			st := insertionStart(slots[p], est, dur)
			ft := st + dur
			if bestProc < 0 || ft < bestFinish {
				bestProc, bestStart, bestFinish = p, st, ft
			}
		}
		proc[t] = bestProc
		start[t] = bestStart
		finish[t] = bestFinish
		slots[bestProc] = insertSlot(slots[bestProc], slot{start: bestStart, finish: bestFinish})
	}

	pos, err := topoPositions(scen.G)
	if err != nil {
		return Result{}, err
	}
	s := buildFromPlacement(pos, nProc, proc, start)
	var ms float64
	for _, f := range finish {
		if f > ms {
			ms = f
		}
	}
	return Result{Schedule: s, Makespan: ms}, nil
}

// ReferenceCPOP is the original Critical-Path-on-a-Processor
// implementation (Topcuoglu, Hariri and Wu): tasks are prioritized by
// rank_u + rank_d; every task on the critical path is pinned to the
// single processor that executes the whole path fastest, and the
// remaining tasks are placed by earliest finish time with insertion.
func ReferenceCPOP(scen *platform.Scenario) (Result, error) {
	m := NewModel(scen)
	g := scen.G
	n := g.N()
	nProc := scen.P.M

	rankU, err := m.UpwardRanks()
	if err != nil {
		return Result{}, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return Result{}, err
	}
	// rank_d: longest average-cost path from an entry node (excluding
	// the task itself).
	rankD := make([]float64, n)
	for _, t := range order {
		for _, p := range g.Pred(t) {
			cand := rankD[p] + m.AvgDur[p] + m.AvgComm(p, t)
			if cand > rankD[t] {
				rankD[t] = cand
			}
		}
	}
	prio := make([]float64, n)
	for t := 0; t < n; t++ {
		prio[t] = rankU[t] + rankD[t]
	}

	// The critical path: start from the highest-priority entry task,
	// repeatedly follow the highest-priority successor.
	cpLen := 0.0
	for _, t := range g.Sources() {
		if prio[t] > cpLen {
			cpLen = prio[t]
		}
	}
	onCP := make([]bool, n)
	var cur dag.Task = -1
	for _, t := range g.Sources() {
		if prio[t] >= cpLen-1e-9 {
			cur = t
			break
		}
	}
	for cur >= 0 {
		onCP[cur] = true
		var next dag.Task = -1
		best := -1.0
		for _, s := range g.Succ(cur) {
			if prio[s] > best {
				best, next = prio[s], s
			}
		}
		cur = next
	}

	// The critical-path processor minimizes the total execution time
	// of the critical tasks.
	cpProc, cpCost := 0, -1.0
	for p := 0; p < nProc; p++ {
		var sum float64
		for t := 0; t < n; t++ {
			if onCP[t] {
				sum += m.MeanETC[t][p]
			}
		}
		if cpCost < 0 || sum < cpCost {
			cpProc, cpCost = p, sum
		}
	}

	// Priority-queue list scheduling with insertion-based placement.
	slots := make([][]slot, nProc)
	start := make([]float64, n)
	finish := make([]float64, n)
	proc := make([]int, n)
	indeg := make([]int, n)
	pq := &taskPQ{prio: prio}
	for t := 0; t < n; t++ {
		indeg[t] = len(g.Pred(dag.Task(t)))
		if indeg[t] == 0 {
			pq.push(dag.Task(t))
		}
	}
	var makespan float64
	for pq.Len() > 0 {
		t := pq.pop()
		est := func(p int) float64 {
			v := 0.0
			for _, pr := range g.Pred(t) {
				arr := finish[pr] + m.MeanComm(pr, t, proc[pr], p)
				if arr > v {
					v = arr
				}
			}
			return v
		}
		var chosen int
		if onCP[t] {
			chosen = cpProc
		} else {
			bestFinish := -1.0
			for p := 0; p < nProc; p++ {
				dur := m.MeanETC[t][p]
				ft := insertionStart(slots[p], est(p), dur) + dur
				if bestFinish < 0 || ft < bestFinish {
					chosen, bestFinish = p, ft
				}
			}
		}
		dur := m.MeanETC[t][chosen]
		st := insertionStart(slots[chosen], est(chosen), dur)
		proc[t] = chosen
		start[t] = st
		finish[t] = st + dur
		slots[chosen] = insertSlot(slots[chosen], slot{start: st, finish: st + dur})
		if finish[t] > makespan {
			makespan = finish[t]
		}
		for _, s := range g.Succ(t) {
			indeg[s]--
			if indeg[s] == 0 {
				pq.push(s)
			}
		}
	}
	pos, err := topoPositions(g)
	if err != nil {
		return Result{}, err
	}
	return Result{Schedule: buildFromPlacement(pos, nProc, proc, start), Makespan: makespan}, nil
}

// ReferenceBIL is the original Best Imaginary Level implementation
// (Oh & Ha) for unrelated processors. The basic imaginary level of
// task i on processor p is
//
//	BIL(i,p) = w(i,p) + max_{k ∈ succ(i)} min( BIL(k,p),
//	                                           min_{q≠p} BIL(k,q) + c̄(i,k) )
//
// computed bottom-up. At every step the ready task with the highest
// priority — the k-th smallest of its basic imaginary makespans
// BIM(i,p) = EST(i,p) + BIL(i,p), with k = min(#ready, m) — is selected
// and placed on the processor minimizing its (revised) BIM. When more
// tasks are ready than processors, the BIM is inflated by the expected
// queuing factor w(i,p)·(#ready/m − 1) as in the original paper.
func ReferenceBIL(scen *platform.Scenario) (Result, error) {
	m := NewModel(scen)
	g := scen.G
	n := g.N()
	nProc := scen.P.M

	order, err := g.TopoOrder()
	if err != nil {
		return Result{}, err
	}

	// Bottom-up computation of BIL(i,p).
	bil := make([][]float64, n)
	for i := range bil {
		bil[i] = make([]float64, nProc)
	}
	for idx := len(order) - 1; idx >= 0; idx-- {
		t := order[idx]
		for p := 0; p < nProc; p++ {
			best := 0.0
			for _, k := range g.Succ(t) {
				// Cheapest continuation of k: stay on p (no comm) or the
				// best other processor plus the communication cost.
				minOther := -1.0
				for q := 0; q < nProc; q++ {
					if q == p {
						continue
					}
					if minOther < 0 || bil[k][q] < minOther {
						minOther = bil[k][q]
					}
				}
				cont := bil[k][p]
				if minOther >= 0 {
					if alt := minOther + m.AvgComm(t, k); alt < cont {
						cont = alt
					}
				}
				if cont > best {
					best = cont
				}
			}
			bil[t][p] = m.MeanETC[t][p] + best
		}
	}

	// List scheduling driven by BIM.
	b := newBuilder(m)
	indeg := make([]int, n)
	var ready []dag.Task
	for t := 0; t < n; t++ {
		indeg[t] = len(g.Pred(dag.Task(t)))
		if indeg[t] == 0 {
			ready = append(ready, dag.Task(t))
		}
	}
	bims := make([]float64, nProc)
	for len(ready) > 0 {
		k := len(ready)
		if k > nProc {
			k = nProc
		}
		// Select the ready task with the largest k-th smallest BIM.
		bestIdx := -1
		bestPriority := 0.0
		for idx, t := range ready {
			for p := 0; p < nProc; p++ {
				bims[p] = b.estAppend(t, p) + bil[t][p]
			}
			prio := kthSmallest(bims, k, nil)
			if bestIdx < 0 || prio > bestPriority ||
				(prio == bestPriority && t < ready[bestIdx]) { //reprovet:allow floateq deterministic tie-break on exactly equal priorities (paper rule)
				bestIdx, bestPriority = idx, prio
			}
		}
		t := ready[bestIdx]
		ready[bestIdx] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]

		// Processor choice: minimize the (revised) BIM.
		overload := float64(len(ready)+1)/float64(nProc) - 1
		bestProc := -1
		bestVal := 0.0
		bestStart := 0.0
		for p := 0; p < nProc; p++ {
			est := b.estAppend(t, p)
			val := est + bil[t][p]
			if overload > 0 {
				val += m.MeanETC[t][p] * overload
			}
			if bestProc < 0 || val < bestVal {
				bestProc, bestVal, bestStart = p, val, est
			}
		}
		b.place(t, bestProc, bestStart)
		for _, s := range g.Succ(t) {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return Result{Schedule: b.sched, Makespan: b.makespan()}, nil
}

// ReferenceHBMCT is the original hybrid heuristic implementation
// (Sakellariou & Zhao, Hyb.BMCT): tasks are ranked as in HEFT, split
// into groups of mutually independent tasks following the rank order,
// and each group is first assigned by minimum completion time and then
// rebalanced — tasks are moved off the processor that finishes the
// group last while that improves the group's completion time (Balanced
// Minimum Completion Time). It materializes the full n×n reachability
// bitset and replays the entire eager execution after every tentative
// move; HBMCT computes identical schedules with level-bounded
// reachability probes and group-local incremental timing.
func ReferenceHBMCT(scen *platform.Scenario) (Result, error) {
	m := NewModel(scen)
	g := scen.G
	n := g.N()
	nProc := scen.P.M

	order, err := m.RankOrder()
	if err != nil {
		return Result{}, err
	}
	reach := reachability(g)
	groups := independentGroups(order, reach)

	proc := make([]int, n)
	for i := range proc {
		proc[i] = -1
	}
	// seq is the global placement order (rank order), used to recompute
	// eager timings after every tentative move.
	var seq []dag.Task
	start := make([]float64, n)
	finish := make([]float64, n)

	// recompute replays the eager execution of seq under the current
	// assignment, in append mode per processor.
	recompute := func() float64 {
		ready := make([]float64, nProc)
		var ms float64
		for _, t := range seq {
			p := proc[t]
			st := ready[p]
			for _, pr := range g.Pred(t) {
				arr := finish[pr] + m.MeanComm(pr, t, proc[pr], p)
				if arr > st {
					st = arr
				}
			}
			start[t] = st
			finish[t] = st + m.MeanETC[t][p]
			ready[p] = finish[t]
			if finish[t] > ms {
				ms = finish[t]
			}
		}
		return ms
	}

	for _, group := range groups {
		// Phase 1: initial MCT assignment in rank order.
		for _, t := range group {
			seq = append(seq, t)
			bestProc, bestFinish := -1, 0.0
			for p := 0; p < nProc; p++ {
				proc[t] = p
				recompute()
				if bestProc < 0 || finish[t] < bestFinish {
					bestProc, bestFinish = p, finish[t]
				}
			}
			proc[t] = bestProc
			recompute()
		}
		if len(group) < 2 || nProc < 2 {
			continue
		}
		// Phase 2: BMCT rebalancing — move the group's last-finishing
		// task while the group completion time improves.
		groupFinish := func() (dag.Task, float64) {
			var worst dag.Task = -1
			var ms float64
			for _, t := range group {
				if finish[t] > ms {
					ms, worst = finish[t], t
				}
			}
			return worst, ms
		}
		maxMoves := 2 * len(group)
		for move := 0; move < maxMoves; move++ {
			worst, cur := groupFinish()
			if worst < 0 {
				break // every task finishes at 0: nothing to improve
			}
			bestProc := proc[worst]
			bestMs := cur
			orig := proc[worst]
			for p := 0; p < nProc; p++ {
				if p == orig {
					continue
				}
				proc[worst] = p
				recompute()
				if _, ms := groupFinish(); ms < bestMs-1e-12 {
					bestMs, bestProc = ms, p
				}
			}
			proc[worst] = bestProc
			recompute()
			if bestProc == orig {
				break
			}
		}
	}

	ms := recompute()
	pos, err := topoPositions(g)
	if err != nil {
		return Result{}, err
	}
	s := buildFromPlacement(pos, nProc, proc, start)
	return Result{Schedule: s, Makespan: ms}, nil
}

// reachability computes ancestor/descendant closure as bitsets:
// reach[i] has bit j set when there is a path i → j. O(n²) bits — the
// reference grouping oracle only; the compiled HBMCT path never
// materializes it.
func reachability(g *dag.Graph) [][]uint64 {
	n := g.N()
	words := (n + 63) / 64
	reach := make([][]uint64, n)
	for i := range reach {
		reach[i] = make([]uint64, words)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return reach
	}
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		for _, s := range g.Succ(t) {
			reach[t][int(s)/64] |= 1 << (uint(s) % 64)
			for w := 0; w < words; w++ {
				reach[t][w] |= reach[s][w]
			}
		}
	}
	return reach
}

// connected reports whether a and b are related by a path in either
// direction.
func connected(reach [][]uint64, a, b dag.Task) bool {
	if reach[a][int(b)/64]&(1<<(uint(b)%64)) != 0 {
		return true
	}
	return reach[b][int(a)/64]&(1<<(uint(a)%64)) != 0
}

// independentGroups splits a rank-ordered task list into maximal
// consecutive groups of pairwise independent tasks.
func independentGroups(order []dag.Task, reach [][]uint64) [][]dag.Task {
	var groups [][]dag.Task
	var cur []dag.Task
	for _, t := range order {
		dependent := false
		for _, u := range cur {
			if connected(reach, t, u) {
				dependent = true
				break
			}
		}
		if dependent {
			groups = append(groups, cur)
			cur = nil
		}
		cur = append(cur, t)
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

// ReferenceSDHEFT is the original implementation of the
// robustness-aware list heuristic the paper proposes as future work
// (§VIII): every cost in the HEFT machinery — the upward ranks and the
// finish-time objective — is replaced by the pessimistic estimate
// mean + lambda·σ of the duration's distribution. See SDHEFT for the
// full discussion.
func ReferenceSDHEFT(scen *platform.Scenario, lambda float64) (Result, error) {
	if lambda < 0 {
		lambda = 0
	}
	g := scen.G
	n := g.N()
	nProc := scen.P.M

	// Pessimistic cost tables: mean + λσ.
	cost := make([][]float64, n)
	avgCost := make([]float64, n)
	for t := 0; t < n; t++ {
		row := make([]float64, nProc)
		var sum float64
		for p := 0; p < nProc; p++ {
			d := scen.TaskDist(dag.Task(t), p)
			row[p] = d.Mean() + lambda*math.Sqrt(d.Variance())
			sum += row[p]
		}
		cost[t] = row
		avgCost[t] = sum / float64(nProc)
	}
	avgTau, avgLat := scen.P.AvgTau(), scen.P.AvgLat()
	commCost := func(from, to dag.Task, pi, pj int) float64 {
		d := scen.CommDist(from, to, pi, pj)
		return d.Mean() + lambda*math.Sqrt(d.Variance())
	}
	avgCommCost := func(from, to dag.Task) float64 {
		if nProc <= 1 {
			return 0
		}
		d := scen.DurationAt(avgLat + g.Volume(from, to)*avgTau)
		return d.Mean() + lambda*math.Sqrt(d.Variance())
	}

	// Upward ranks on pessimistic costs.
	order, err := g.TopoOrder()
	if err != nil {
		return Result{}, err
	}
	pos := make([]int32, n)
	for i, t := range order {
		pos[t] = int32(i)
	}
	rank := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		best := 0.0
		for _, s := range g.Succ(t) {
			if cand := avgCommCost(t, s) + rank[s]; cand > best {
				best = cand
			}
		}
		rank[t] = avgCost[t] + best
	}
	tasks := sortByRankDesc(rank, pos)

	// Insertion-based placement minimizing the pessimistic finish time.
	slots := make([][]slot, nProc)
	start := make([]float64, n)
	finish := make([]float64, n)
	proc := make([]int, n)
	for _, t := range tasks {
		bestProc, bestStart, bestFinish := -1, 0.0, 0.0
		for p := 0; p < nProc; p++ {
			est := 0.0
			for _, pr := range g.Pred(t) {
				arr := finish[pr] + commCost(pr, t, proc[pr], p)
				if arr > est {
					est = arr
				}
			}
			dur := cost[t][p]
			st := insertionStart(slots[p], est, dur)
			if ft := st + dur; bestProc < 0 || ft < bestFinish {
				bestProc, bestStart, bestFinish = p, st, ft
			}
		}
		proc[t] = bestProc
		start[t] = bestStart
		finish[t] = bestFinish
		slots[bestProc] = insertSlot(slots[bestProc], slot{start: bestStart, finish: bestFinish})
	}
	var ms float64
	for _, f := range finish {
		if f > ms {
			ms = f
		}
	}
	return Result{Schedule: buildFromPlacement(pos, nProc, proc, start), Makespan: ms}, nil
}
