package heuristics

import (
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/platform"
)

// SDHEFT is the robustness-aware list heuristic the paper proposes as
// future work (§VIII): "an efficient heuristic similar to classic list
// heuristics based on the standard deviation of every task duration
// rather than their mean or minimal value". Every cost in the HEFT
// machinery — the upward ranks and the finish-time objective — is
// replaced by the pessimistic estimate mean + lambda·σ of the
// duration's distribution, so high-variance tasks are prioritized and
// placed where their dispersion hurts least.
//
// With a constant uncertainty level σ is proportional to the mean and
// SDHEFT reduces to HEFT (the equivalence the paper's §VII explains);
// under variable per-task UL the two diverge and SDHEFT trades a
// little expected makespan for lower makespan variance.
func SDHEFT(scen *platform.Scenario, lambda float64) (Result, error) {
	if lambda < 0 {
		lambda = 0
	}
	g := scen.G
	n := g.N()
	nProc := scen.P.M

	// Pessimistic cost tables: mean + λσ.
	cost := make([][]float64, n)
	avgCost := make([]float64, n)
	for t := 0; t < n; t++ {
		row := make([]float64, nProc)
		var sum float64
		for p := 0; p < nProc; p++ {
			d := scen.TaskDist(dag.Task(t), p)
			row[p] = d.Mean() + lambda*math.Sqrt(d.Variance())
			sum += row[p]
		}
		cost[t] = row
		avgCost[t] = sum / float64(nProc)
	}
	avgTau, avgLat := scen.P.AvgTau(), scen.P.AvgLat()
	commCost := func(from, to dag.Task, pi, pj int) float64 {
		d := scen.CommDist(from, to, pi, pj)
		return d.Mean() + lambda*math.Sqrt(d.Variance())
	}
	avgCommCost := func(from, to dag.Task) float64 {
		if nProc <= 1 {
			return 0
		}
		d := scen.DurationAt(avgLat + g.Volume(from, to)*avgTau)
		return d.Mean() + lambda*math.Sqrt(d.Variance())
	}

	// Upward ranks on pessimistic costs.
	order, err := g.TopoOrder()
	if err != nil {
		return Result{}, err
	}
	rank := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		best := 0.0
		for _, s := range g.Succ(t) {
			if cand := avgCommCost(t, s) + rank[s]; cand > best {
				best = cand
			}
		}
		rank[t] = avgCost[t] + best
	}
	tasks := make([]dag.Task, n)
	for i := range tasks {
		tasks[i] = dag.Task(i)
	}
	sort.SliceStable(tasks, func(a, b int) bool {
		ra, rb := rank[tasks[a]], rank[tasks[b]]
		if ra != rb {
			return ra > rb
		}
		return tasks[a] < tasks[b]
	})

	// Insertion-based placement minimizing the pessimistic finish time.
	slots := make([][]slot, nProc)
	start := make([]float64, n)
	finish := make([]float64, n)
	proc := make([]int, n)
	for _, t := range tasks {
		bestProc, bestStart, bestFinish := -1, 0.0, 0.0
		for p := 0; p < nProc; p++ {
			est := 0.0
			for _, pr := range g.Pred(t) {
				arr := finish[pr] + commCost(pr, t, proc[pr], p)
				if arr > est {
					est = arr
				}
			}
			dur := cost[t][p]
			st := insertionStart(slots[p], est, dur)
			if ft := st + dur; bestProc < 0 || ft < bestFinish {
				bestProc, bestStart, bestFinish = p, st, ft
			}
		}
		proc[t] = bestProc
		start[t] = bestStart
		finish[t] = bestFinish
		slots[bestProc] = insertSlot(slots[bestProc], slot{start: bestStart, finish: bestFinish})
	}
	var ms float64
	for _, f := range finish {
		if f > ms {
			ms = f
		}
	}
	return Result{Schedule: buildFromPlacement(n, nProc, proc, start), Makespan: ms}, nil
}
