package heuristics

import (
	"math"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/stochastic"
)

// SDHEFT is the robustness-aware list heuristic the paper proposes as
// future work (§VIII): "an efficient heuristic similar to classic list
// heuristics based on the standard deviation of every task duration
// rather than their mean or minimal value". Every cost in the HEFT
// machinery — the upward ranks and the finish-time objective — is
// replaced by the pessimistic estimate mean + lambda·σ of the
// duration's distribution, so high-variance tasks are prioritized and
// placed where their dispersion hurts least.
//
// With a constant uncertainty level σ is proportional to the mean and
// SDHEFT reduces to HEFT (the equivalence the paper's §VII explains);
// under variable per-task UL the two diverge and SDHEFT trades a
// little expected makespan for lower makespan variance.
//
// Compiled implementation, bit-identical to ReferenceSDHEFT.
func SDHEFT(scen *platform.Scenario, lambda float64) (Result, error) {
	if lambda < 0 {
		lambda = 0
	}
	topo, err := newTopology(scen)
	if err != nil {
		return Result{}, err
	}
	g := scen.G
	n := g.N()
	m := scen.P.M
	csr := topo.csr

	// The pessimistic statistic that replaces the mean everywhere.
	pess := func(d stochastic.Dist) float64 {
		return d.Mean() + lambda*math.Sqrt(d.Variance())
	}

	// Pessimistic cost tables: mean + λσ, flat n×m row-major.
	cost := make([]float64, n*m)
	avgCost := make([]float64, n)
	for t := 0; t < n; t++ {
		row := cost[t*m : (t+1)*m]
		var sum float64
		for p := 0; p < m; p++ {
			row[p] = pess(scen.TaskDist(dag.Task(t), p))
			sum += row[p]
		}
		avgCost[t] = sum / float64(m)
	}
	// Pessimistic communication costs, precomputed per (class, edge) —
	// BatchCommCosts with mean+λσ instead of the classic mean.
	sdComm := scen.BatchCommCosts(topo.cc, csr.Vol, pess)
	commCost := func(e int32, pi, pj int) float64 {
		if c := topo.cc.Class[pi*m+pj]; c >= 0 {
			return sdComm[c][e]
		}
		return 0
	}
	// Placement-agnostic pessimistic comm per edge.
	edgeAvgComm := make([]float64, csr.NumEdges)
	if m > 1 {
		avgTau, avgLat := scen.P.AvgTau(), scen.P.AvgLat()
		for e, vol := range csr.Vol {
			edgeAvgComm[e] = pess(scen.DurationAt(avgLat + vol*avgTau))
		}
	}

	// Upward ranks on pessimistic costs.
	rank := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		t := topo.order[i]
		best := 0.0
		for k := csr.SuccStart[t]; k < csr.SuccStart[t+1]; k++ {
			if cand := edgeAvgComm[csr.SuccEdge[k]] + rank[csr.SuccAdj[k]]; cand > best {
				best = cand
			}
		}
		rank[t] = avgCost[t] + best
	}
	tasks := sortByRankDesc(rank, topo.pos)

	// Insertion-based placement minimizing the pessimistic finish time.
	proc, start, finish := placeByInsertion(csr, m, tasks, cost, commCost)
	var ms float64
	for _, f := range finish {
		if f > ms {
			ms = f
		}
	}
	return Result{Schedule: buildFromPlacement(topo.pos, m, proc, start), Makespan: ms}, nil
}
