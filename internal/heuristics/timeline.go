package heuristics

import "sort"

// timeline is a gap-indexed processor timeline: the busy intervals of
// one processor sorted by start time, plus the running prefix maximum
// of their finish times. earliest answers the same query as
// insertionStart — the earliest start ≥ est leaving room for dur,
// allowing insertion into idle gaps — but instead of scanning the
// whole slice it binary-searches the first interval that can interact
// with est and takes an O(1) fast path for the dominant append-at-tail
// case. add mirrors insertSlot (append fast path; copy-shift only on
// the rare mid-timeline insertion).
//
// Equivalence with the linear scan: intervals whose prefix-max finish
// is ≤ est can neither advance the scan cursor (that needs
// finish > cur ≥ est) nor produce an earlier return — the gap test
// (cur+dur ≤ start+ε with cur still est) would, at the first
// non-skipped interval, fire with the same result, because starts are
// sorted. Both facts hold for any interval layout the insertion policy
// can produce, including the ε-overlapping and zero-length intervals
// of zero-duration tasks, so earliest is bit-identical to
// insertionStart on every slot set built through add.
type timeline struct {
	slots  []slot
	maxFin []float64 // maxFin[i] = max finish over slots[0..i]
}

// earliest returns the earliest start ≥ est with room for dur.
func (tl *timeline) earliest(est, dur float64) float64 {
	k := len(tl.slots)
	if k == 0 || est >= tl.maxFin[k-1] {
		// Tail fast path: nothing finishes after est, so nothing can
		// push the start past est.
		return est
	}
	// Skip the prefix that ends by est.
	lo := sort.Search(k, func(i int) bool { return tl.maxFin[i] > est })
	cur := est
	for i := lo; i < k; i++ {
		s := &tl.slots[i]
		if almostLE(cur+dur, s.start) {
			return cur
		}
		if s.finish > cur {
			cur = s.finish
		}
	}
	return cur
}

// add records a busy interval, keeping slots sorted by start exactly
// like insertSlot (new intervals go before existing equal starts).
func (tl *timeline) add(s slot) {
	k := len(tl.slots)
	if k == 0 || s.start > tl.slots[k-1].start {
		mf := s.finish
		if k > 0 && tl.maxFin[k-1] > mf {
			mf = tl.maxFin[k-1]
		}
		tl.slots = append(tl.slots, s)
		tl.maxFin = append(tl.maxFin, mf)
		return
	}
	idx := sort.Search(k, func(i int) bool { return tl.slots[i].start >= s.start })
	tl.slots = append(tl.slots, slot{})
	copy(tl.slots[idx+1:], tl.slots[idx:])
	tl.slots[idx] = s
	tl.maxFin = append(tl.maxFin, 0)
	for i := idx; i < len(tl.slots); i++ {
		mf := tl.slots[i].finish
		if i > 0 && tl.maxFin[i-1] > mf {
			mf = tl.maxFin[i-1]
		}
		tl.maxFin[i] = mf
	}
}

// newTimelines allocates one timeline per processor.
func newTimelines(m int) []timeline {
	return make([]timeline, m)
}
