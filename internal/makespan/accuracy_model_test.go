package makespan_test

// Property tests for EvalAccuracy at the evaluation-model level: every
// preset must survive the degenerate scenarios exactly, and the full
// classical recurrence must converge toward the 64-point reference as
// the density grid grows.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/experiment"
	"repro/internal/heuristics"
	"repro/internal/makespan"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

// Degenerate scenarios (single task, all-Dirac, zero-duration chain)
// must evaluate exactly — not approximately — at every accuracy preset,
// because Dirac arithmetic never touches the grid.
func TestEvalModelDegenerateAtEveryPreset(t *testing.T) {
	single := uniformScen(dag.New(1), 2, 10, 1.4)
	s1 := schedule.New(1, 2)
	s1.Assign(0, 1)

	g := dag.New(4)
	for _, e := range [][2]dag.Task{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1], 3); err != nil {
			t.Fatal(err)
		}
	}
	det := uniformScen(g, 2, 10, 1)
	s2 := schedule.New(4, 2)
	s2.Assign(0, 0)
	s2.Assign(1, 0)
	s2.Assign(2, 1)
	s2.Assign(3, 0)
	refDet, err := makespan.EvaluateClassic(det, s2, 64)
	if err != nil {
		t.Fatal(err)
	}

	chain := dag.New(3)
	if err := chain.AddEdge(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := chain.AddEdge(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	zero := uniformScen(chain, 2, 0, 1.5)
	s3 := schedule.New(3, 2)
	s3.Assign(0, 0)
	s3.Assign(1, 1)
	s3.Assign(2, 0)

	for _, name := range stochastic.AccuracyNames() {
		acc, _ := stochastic.AccuracyByName(name)
		t.Run(name, func(t *testing.T) {
			// Single task: the makespan is the task's own distribution,
			// independent of accuracy.
			m, err := makespan.NewEvalCacheAccuracy(single, acc).Model(s1)
			if err != nil {
				t.Fatal(err)
			}
			d := single.TaskDist(0, 1)
			lo, hi := d.Support()
			for _, rv := range []*stochastic.Numeric{m.Classic(), m.Dodin()} {
				if rv.Lo() != lo || rv.Hi() != hi {
					t.Errorf("single-task support [%g,%g], want [%g,%g]", rv.Lo(), rv.Hi(), lo, hi)
				}
			}

			// All-Dirac: a point equal to the reference at every preset.
			m2, err := makespan.NewEvalCacheAccuracy(det, acc).Model(s2)
			if err != nil {
				t.Fatal(err)
			}
			for _, rv := range []*stochastic.Numeric{m2.Classic(), m2.Dodin()} {
				if !rv.IsPoint() || rv.Lo() != refDet.Lo() {
					t.Errorf("all-Dirac makespan %v, want point at %g", rv, refDet.Lo())
				}
			}

			// Zero-duration chain: point at 0 regardless of accuracy.
			m3, err := makespan.NewEvalCacheAccuracy(zero, acc).Model(s3)
			if err != nil {
				t.Fatal(err)
			}
			for _, rv := range []*stochastic.Numeric{m3.Classic(), m3.Dodin()} {
				if !rv.IsPoint() || rv.Lo() != 0 {
					t.Errorf("zero-duration chain makespan %v, want point at 0", rv)
				}
			}
		})
	}
}

// Property: the classical evaluation converges (monotonically, with 10%
// slack) toward the 64-point reference as the density grid grows, on a
// real registry case.
func TestEvalModelGridConvergence(t *testing.T) {
	spec := experiment.CaseSpec{Name: "conv", Family: experiment.CholeskyFamily,
		N: 35, M: 3, UL: 1.4, Seed: 43}
	scen, err := spec.BuildScenario()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	s := heuristics.RandomSchedule(scen, rng)
	refModel, err := makespan.NewEvalCacheAccuracy(scen, stochastic.AccuracyReference).Model(s)
	if err != nil {
		t.Fatal(err)
	}
	ref := refModel.Classic()

	errAt := func(acc stochastic.EvalAccuracy) float64 {
		m, err := makespan.NewEvalCacheAccuracy(scen, acc).Model(s)
		if err != nil {
			t.Fatal(err)
		}
		rv := m.Classic()
		e := math.Abs(rv.Mean()-ref.Mean()) / ref.Mean()
		e = math.Max(e, math.Abs(rv.StdDev()-ref.StdDev())/(ref.StdDev()+1e-12))
		for _, q := range []float64{0.1, 0.5, 0.9} {
			e = math.Max(e, math.Abs(rv.Quantile(q)-ref.Quantile(q))/ref.Mean())
		}
		return e
	}

	prev := math.Inf(1)
	for _, grid := range []int{8, 16, 32, 48} {
		e := errAt(stochastic.EvalAccuracy{GridSize: grid})
		t.Logf("grid %2d: max relative error %.3e", grid, e)
		if e > 1.1*prev+1e-12 {
			t.Errorf("grid %d error %.3e worse than coarser grid's %.3e — not converging", grid, e, prev)
		}
		prev = e
	}
	if prev > 0.02 {
		t.Errorf("grid 48 error %.3e, want < 2%%", prev)
	}

	// The named presets stay close to reference on a real case: fast
	// within 2%, coarse within 5%.
	for name, tol := range map[string]float64{"fast": 0.02, "coarse": 0.05} {
		acc, _ := stochastic.AccuracyByName(name)
		if e := errAt(acc); e > tol {
			t.Errorf("%s preset max relative error %.3e, want < %g", name, e, tol)
		}
	}
}
