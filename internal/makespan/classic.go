// Package makespan evaluates the makespan distribution of an eager
// schedule, implementing the three methods discussed in §II/§V of the
// paper: the classical algorithm (numeric densities under the
// independence assumption — the method the paper's results were
// produced with), Dodin's series-parallel reduction, and Spelde's
// central-limit approximation (realized with Clark's moment formulas
// for the maximum of normals). The Monte-Carlo ground truth lives in
// the schedule package; this package wraps it for convenience.
//
// Evaluation is compiled: EvalCache/EvalModel hold everything shared
// per scenario and per schedule, so the paper's core experiment —
// hundreds of metric vectors per case — builds the disjunctive
// structure once per schedule and discretizes each distinct
// distribution once per case. The Reference* entry points retain the
// uncompiled implementations; the equivalence harness keeps the
// compiled classic path bit-identical to them.
package makespan

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

// Method selects a makespan-distribution evaluation algorithm.
type Method int

const (
	// Classic propagates numeric densities through the disjunctive
	// graph, convolving along series arcs and multiplying CDFs at
	// joins, assuming every intermediate distribution independent.
	Classic Method = iota
	// Dodin reduces the expanded RV graph by series/parallel rules,
	// duplicating shared sub-structures when the graph is not
	// series-parallel.
	Dodin
	// Spelde reduces every random variable to (µ, σ) and propagates
	// moments only (normal algebra, Clark's max).
	Spelde
)

func (m Method) String() string {
	switch m {
	case Classic:
		return "classic"
	case Dodin:
		return "dodin"
	case Spelde:
		return "spelde"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// evalContext precomputes what the reference evaluators share: the
// disjunctive topological order and per-arc communication
// distributions.
type evalContext struct {
	scen  *platform.Scenario
	sched *schedule.Schedule
	dg    *dag.Graph
	order []dag.Task
}

func newEvalContext(scen *platform.Scenario, s *schedule.Schedule) (*evalContext, error) {
	if err := s.Validate(scen.G); err != nil {
		return nil, err
	}
	dg, err := s.Disjunctive(scen.G)
	if err != nil {
		return nil, err
	}
	order, err := dg.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &evalContext{scen: scen, sched: s, dg: dg, order: order}, nil
}

// commDist returns the communication distribution of disjunctive arc
// p→t and whether the arc drops out of the evaluation. The skip
// decision is zeroCommArc — the one place the rule lives — which
// replaced the historical minComm > 0 guard (and its duplicate inside
// the RV constructor) that silently dropped stochastic zero-minimum
// links.
func (c *evalContext) commDist(p, t dag.Task) (stochastic.Dist, bool) {
	d := c.scen.CommDist(p, t, c.sched.Proc[p], c.sched.Proc[t])
	return d, zeroCommArc(d)
}

// durRV returns the numeric duration variable of task t on its
// assigned processor.
func (c *evalContext) durRV(t dag.Task, gridSize int) *stochastic.Numeric {
	return stochastic.FromDist(c.scen.TaskDist(t, c.sched.Proc[t]), gridSize)
}

// Evaluate computes the makespan distribution of schedule s under
// scenario scen with the chosen method. gridSize <= 0 selects the
// paper's 64-point densities.
func Evaluate(scen *platform.Scenario, s *schedule.Schedule, m Method, gridSize int) (*stochastic.Numeric, error) {
	switch m {
	case Classic:
		return EvaluateClassic(scen, s, gridSize)
	case Dodin:
		return EvaluateDodin(scen, s, gridSize)
	case Spelde:
		res, err := EvaluateSpelde(scen, s)
		if err != nil {
			return nil, err
		}
		return res.RV(gridSize), nil
	default:
		return nil, fmt.Errorf("makespan: unknown method %v", m)
	}
}

// EvaluateClassic runs the classical algorithm through the compiled
// evaluation model. One-shot convenience: callers evaluating many
// schedules of one scenario should build an EvalCache once and request
// a Model per schedule, which amortizes the per-case tables.
// Bit-identical to ReferenceEvaluateClassic.
func EvaluateClassic(scen *platform.Scenario, s *schedule.Schedule, gridSize int) (*stochastic.Numeric, error) {
	m, err := NewEvalCache(scen, gridSize).Model(s)
	if err != nil {
		return nil, err
	}
	return m.Classic(), nil
}

// ReferenceEvaluateClassic is the retained uncompiled classical
// algorithm: in disjunctive topological order, each task's completion
// distribution is the maximum (CDF product) over its predecessors'
// completion-plus-communication distributions (convolutions), plus its
// own duration. All intermediate variables are treated as independent —
// exact for in-trees, an approximation otherwise (§II). It validates
// and clones the disjunctive graph and discretizes every distribution
// per call; the equivalence harness holds EvalModel.Classic
// bit-identical to it.
func ReferenceEvaluateClassic(scen *platform.Scenario, s *schedule.Schedule, gridSize int) (*stochastic.Numeric, error) {
	ctx, err := newEvalContext(scen, s)
	if err != nil {
		return nil, err
	}
	if gridSize <= 0 {
		gridSize = stochastic.DefaultGridSize
	}
	n := scen.G.N()
	completion := make([]*stochastic.Numeric, n)
	for _, t := range ctx.order {
		start := stochastic.NewPoint(0)
		for _, p := range ctx.dg.Pred(t) {
			arrival := completion[p]
			if d, skip := ctx.commDist(p, t); !skip {
				arrival = arrival.Add(stochastic.FromDist(d, gridSize), gridSize)
			}
			start = start.MaxWith(arrival, gridSize)
		}
		completion[t] = start.Add(ctx.durRV(t, gridSize), gridSize)
	}
	makespan := stochastic.NewPoint(0)
	for _, t := range ctx.dg.Sinks() {
		makespan = makespan.MaxWith(completion[t], gridSize)
	}
	return makespan, nil
}

// MonteCarlo draws count realizations of the schedule and returns the
// empirical makespan distribution (the paper's ground truth with
// count = 100 000). It runs the compiled batch kernel in exact mode,
// which is bit-identical to the per-sample reference engine; use
// MonteCarloWith to select the faster table samplers.
func MonteCarlo(scen *platform.Scenario, s *schedule.Schedule, count int, seed int64) (*stochastic.Empirical, error) {
	return MonteCarloWith(scen, s, count, seed, MCOptions{})
}
