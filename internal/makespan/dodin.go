package makespan

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

// ReductionError is the typed failure of a series-parallel reduction:
// the graph could not be contracted to a single node, either because
// cone duplication exhausted the node budget or because no reduction or
// duplication applies (stuck). It is the only error class the Dodin
// evaluators treat as "fall back to the classical method" — every other
// failure (an invalid schedule, for example) propagates, matching the
// no-silent-fallback convention of the workload registry.
type ReductionError struct {
	Live   int  // live nodes remaining
	Total  int  // total nodes ever created
	Budget int  // node budget in force
	Stuck  bool // no duplication candidate existed
}

func (e *ReductionError) Error() string {
	if e.Stuck {
		return fmt.Sprintf("makespan: series-parallel reduction stuck with %d nodes", e.Live)
	}
	return fmt.Sprintf("makespan: series-parallel reduction exceeded node budget (%d live, %d total, budget %d)",
		e.Live, e.Total, e.Budget)
}

// IsReductionError reports whether err is a series-parallel
// ReductionError — the class of Dodin failures for which the classical
// evaluation is the documented fallback.
func IsReductionError(err error) bool {
	var re *ReductionError
	return errors.As(err, &re)
}

// rvGraph is a mutable DAG used by Dodin's series-parallel reduction.
// Nodes carry activity random variables (task durations); edges carry
// path random variables (communications and contracted sub-chains).
// Deleted nodes are marked nil.
type rvGraph struct {
	rv   []*stochastic.Numeric
	pred []map[int]struct{}
	succ []map[int]struct{}
	edge map[[2]int]*stochastic.Numeric
	live int
	grid int
}

func newRVGraph(grid int) *rvGraph {
	return &rvGraph{edge: make(map[[2]int]*stochastic.Numeric), grid: grid}
}

func (g *rvGraph) addNode(rv *stochastic.Numeric) int {
	g.rv = append(g.rv, rv)
	g.pred = append(g.pred, map[int]struct{}{})
	g.succ = append(g.succ, map[int]struct{}{})
	g.live++
	return len(g.rv) - 1
}

// addEdge inserts u→v carrying rv; a pre-existing parallel edge merges
// by the maximum (both paths must complete).
func (g *rvGraph) addEdge(u, v int, rv *stochastic.Numeric) {
	key := [2]int{u, v}
	if old, ok := g.edge[key]; ok {
		g.edge[key] = old.MaxWith(rv, g.grid)
		return
	}
	g.edge[key] = rv
	g.succ[u][v] = struct{}{}
	g.pred[v][u] = struct{}{}
}

func (g *rvGraph) edgeRV(u, v int) *stochastic.Numeric { return g.edge[[2]int{u, v}] }

func (g *rvGraph) removeEdge(u, v int) {
	delete(g.edge, [2]int{u, v})
	delete(g.succ[u], v)
	delete(g.pred[v], u)
}

func (g *rvGraph) removeNode(v int) {
	for u := range g.pred[v] {
		delete(g.succ[u], v)
		delete(g.edge, [2]int{u, v})
	}
	for w := range g.succ[v] {
		delete(g.pred[w], v)
		delete(g.edge, [2]int{v, w})
	}
	g.rv[v] = nil
	g.pred[v] = nil
	g.succ[v] = nil
	g.live--
}

// addSeq convolves activity and edge variables, treating nil edges as
// zero.
func (g *rvGraph) addSeq(parts ...*stochastic.Numeric) *stochastic.Numeric {
	out := stochastic.NewPoint(0)
	for _, p := range parts {
		if p == nil {
			continue
		}
		out = out.Add(p, g.grid)
	}
	return out
}

// seriesReduceOnce merges one chain pair u→v where v is u's only
// successor and u is v's only predecessor: the merged node carries
// u ⊕ edge(u,v) ⊕ v. Returns true on success.
func (g *rvGraph) seriesReduceOnce() bool {
	for v := range g.rv {
		if g.rv[v] == nil || len(g.pred[v]) != 1 {
			continue
		}
		u := soleKey(g.pred[v])
		if len(g.succ[u]) != 1 {
			continue
		}
		g.rv[u] = g.addSeq(g.rv[u], g.edgeRV(u, v), g.rv[v])
		// u inherits v's out-edges.
		type out struct {
			w  int
			rv *stochastic.Numeric
		}
		var outs []out
		for _, w := range sortedKeys(g.succ[v]) {
			outs = append(outs, out{w, g.edgeRV(v, w)})
		}
		g.removeNode(v)
		for _, o := range outs {
			g.addEdge(u, o.w, o.rv)
		}
		return true
	}
	return false
}

// chainContractOnce removes one degree-(1,1) node v between u and w,
// replacing the path u→v→w by an edge u→w carrying
// edge(u,v) ⊕ v ⊕ edge(v,w); parallel edges merge by maximum. This is
// the series reduction of classical SP theory (nodes as activities).
func (g *rvGraph) chainContractOnce() bool {
	for v := range g.rv {
		if g.rv[v] == nil || len(g.pred[v]) != 1 || len(g.succ[v]) != 1 {
			continue
		}
		u, w := soleKey(g.pred[v]), soleKey(g.succ[v])
		if u == w {
			continue // cannot happen in a DAG, but stay safe
		}
		// Covered more cheaply by seriesReduceOnce.
		if len(g.succ[u]) == 1 {
			continue
		}
		rv := g.addSeq(g.edgeRV(u, v), g.rv[v], g.edgeRV(v, w))
		g.removeNode(v)
		g.addEdge(u, w, rv)
		return true
	}
	return false
}

// parallelReduceOnce merges one pair of degree-(≤1, ≤1) nodes sharing
// the same (possibly empty) predecessor and the same successor: the
// two parallel single-arc paths combine by the maximum of their total
// path variables. This collapses in-trees and out-trees.
func (g *rvGraph) parallelReduceOnce() bool {
	for u := range g.rv {
		if g.rv[u] == nil || len(g.pred[u]) > 1 || len(g.succ[u]) > 1 {
			continue
		}
		for v := u + 1; v < len(g.rv); v++ {
			if g.rv[v] == nil || len(g.pred[v]) > 1 || len(g.succ[v]) > 1 {
				continue
			}
			if !sameSet(g.pred[u], g.pred[v]) || !sameSet(g.succ[u], g.succ[v]) {
				continue
			}
			pathU := g.rv[u]
			pathV := g.rv[v]
			preds, succs := sortedKeys(g.pred[u]), sortedKeys(g.succ[u])
			for _, p := range preds {
				pathU = g.addSeq(g.edgeRV(p, u), pathU)
				pathV = g.addSeq(g.edgeRV(p, v), pathV)
			}
			for _, w := range succs {
				pathU = g.addSeq(pathU, g.edgeRV(u, w))
				pathV = g.addSeq(pathV, g.edgeRV(v, w))
			}
			merged := pathU.MaxWith(pathV, g.grid)
			g.removeNode(v)
			g.rv[u] = merged
			for _, p := range preds {
				g.removeEdge(p, u)
				g.addEdge(p, u, stochastic.NewPoint(0))
			}
			for _, w := range succs {
				g.removeEdge(u, w)
				g.addEdge(u, w, stochastic.NewPoint(0))
			}
			return true
		}
	}
	return false
}

// soleKey returns the single element of a one-element adjacency set
// (callers guard on len(m) == 1, so iteration order cannot matter).
func soleKey(m map[int]struct{}) int {
	//reprovet:allow mapiter single-element set: the sole iteration is order-free
	for k := range m {
		return k
	}
	panic("makespan: soleKey on empty adjacency set")
}

// sortedKeys returns the elements of an adjacency set in increasing
// order. Every reduction scans adjacency this way, so the reduction
// sequence — and with it the node numbering and the approximation the
// duplications produce — is a pure function of the input graph, not of
// Go's randomized map iteration order.
func sortedKeys(m map[int]struct{}) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// sameSet reports set equality of two adjacency maps.
func sameSet(a, b map[int]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// duplicateCone performs one Dodin-style duplication: it finds an arc
// u→v with outdeg(u) > 1 and indeg(v) > 1, detaches it, and re-routes
// it through a fresh copy of u's entire ancestor cone. The copy is
// treated as independent of the original — the approximation Dodin's
// transformation makes when unsharing common sub-structures. Returns
// the number of nodes created (0 when no candidate arc exists).
func (g *rvGraph) duplicateCone() int {
	bestU, bestV := -1, -1
	for u := range g.rv {
		if g.rv[u] == nil || len(g.succ[u]) < 2 {
			continue
		}
		for _, v := range sortedKeys(g.succ[u]) {
			if len(g.pred[v]) < 2 {
				continue
			}
			// Prefer a u with few predecessors so the copied cone stays
			// small.
			if bestU < 0 || len(g.pred[u]) < len(g.pred[bestU]) {
				bestU, bestV = u, v
			}
			break
		}
	}
	if bestU < 0 {
		return 0
	}
	carried := g.edgeRV(bestU, bestV)
	created := 0
	copies := make(map[int]int)
	var copyCone func(x int) int
	copyCone = func(x int) int {
		if d, ok := copies[x]; ok {
			return d
		}
		d := g.addNode(g.rv[x].Clone())
		created++
		copies[x] = d
		for _, p := range sortedKeys(g.pred[x]) {
			var rv *stochastic.Numeric
			if e := g.edgeRV(p, x); e != nil {
				rv = e.Clone()
			} else {
				rv = stochastic.NewPoint(0)
			}
			g.addEdge(copyCone(p), d, rv)
		}
		return d
	}
	dup := copyCone(bestU)
	g.removeEdge(bestU, bestV)
	if carried == nil {
		carried = stochastic.NewPoint(0)
	}
	g.addEdge(dup, bestV, carried)
	return created
}

// reduce runs series/chain/parallel reductions to a fixpoint,
// interleaving cone duplications when stuck, until a single node
// remains or the node budget is exhausted.
func (g *rvGraph) reduce(maxNodes int) (*stochastic.Numeric, error) {
	for g.live > 1 {
		if g.seriesReduceOnce() {
			continue
		}
		if g.chainContractOnce() {
			continue
		}
		if g.parallelReduceOnce() {
			continue
		}
		if len(g.rv) >= maxNodes {
			return nil, &ReductionError{Live: g.live, Total: len(g.rv), Budget: maxNodes}
		}
		if g.duplicateCone() == 0 {
			return nil, &ReductionError{Live: g.live, Total: len(g.rv), Budget: maxNodes, Stuck: true}
		}
	}
	for _, rv := range g.rv {
		if rv != nil {
			return rv, nil
		}
	}
	return stochastic.NewPoint(0), nil
}

// EvaluateDodin evaluates the makespan distribution by Dodin's method
// on the retained map-based reduction — the differential reference for
// the compiled EvalModel.Dodin: the disjunctive graph becomes a graph
// whose nodes carry task-duration variables and whose edges carry
// communication variables, reduced by series convolutions and parallel
// maxima; non-series-parallel remainders are unlocked by duplicating
// shared predecessors. When — and only when — the reduction itself
// fails (a *ReductionError: budget exhausted or stuck) the classical
// evaluation is used as a fallback (documented in DESIGN.md); any other
// error, such as an invalid schedule, propagates.
func EvaluateDodin(scen *platform.Scenario, s *schedule.Schedule, gridSize int) (*stochastic.Numeric, error) {
	rv, err := evaluateDodin(scen, s, gridSize)
	if err != nil {
		if IsReductionError(err) {
			// Documented fallback: the classical evaluation makes the
			// same independence approximation without needing SP
			// structure.
			return EvaluateClassic(scen, s, gridSize)
		}
		return nil, err
	}
	return rv, nil
}

// EvaluateDodinStrict is EvaluateDodin without the classical fallback:
// it fails when the series-parallel reduction cannot finish within its
// duplication budget. Tests use it to guarantee the reduction path is
// actually exercised.
func EvaluateDodinStrict(scen *platform.Scenario, s *schedule.Schedule, gridSize int) (*stochastic.Numeric, error) {
	return evaluateDodin(scen, s, gridSize)
}

func evaluateDodin(scen *platform.Scenario, s *schedule.Schedule, gridSize int) (*stochastic.Numeric, error) {
	m, err := NewEvalCache(scen, gridSize).Model(s)
	if err != nil {
		return nil, err
	}
	if gridSize <= 0 {
		gridSize = stochastic.DefaultGridSize
	}
	g := newRVGraph(gridSize)
	d := m.d
	n := d.N
	ids := make([]int, n)
	for t := 0; t < n; t++ {
		// Cached duration variables are shared, never mutated: the
		// reduction always replaces node/edge RVs with fresh results.
		ids[t] = g.addNode(m.dur[t].numeric(gridSize))
	}
	// Unique source and sink so the reduction converges to one node.
	source := g.addNode(stochastic.NewPoint(0))
	sink := g.addNode(stochastic.NewPoint(0))
	for t := 0; t < n; t++ {
		if d.PredStart[t+1] == d.PredStart[t] {
			g.addEdge(source, ids[t], stochastic.NewPoint(0))
		}
		if d.SuccStart[t+1] == d.SuccStart[t] {
			g.addEdge(ids[t], sink, stochastic.NewPoint(0))
		}
		for k := d.PredStart[t]; k < d.PredStart[t+1]; k++ {
			comm := stochastic.NewPoint(0)
			if e := m.comm[k]; e != nil {
				comm = e.numeric(gridSize)
			}
			g.addEdge(ids[d.PredTask[k]], ids[t], comm)
		}
	}
	// Node budget: generous enough to unshare small graphs completely,
	// bounded so pathological cases fall back to the classical method.
	budget := 200 * (n + 2)
	if budget > 20000 {
		budget = 20000
	}
	return g.reduce(budget)
}
