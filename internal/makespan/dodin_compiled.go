package makespan

import (
	"repro/internal/stochastic"
)

// This file is the compiled counterpart of dodin.go: the same
// series-parallel reduction semantics on flat arrays instead of
// per-node adjacency maps, with every density drawn from the cache's
// recycling workspace (stochastic.Ops) instead of fresh allocations.
//
// Three structural changes carry the speedup:
//
//   - adjacency is slices of edge ids per node (the graph mutates too
//     much for a frozen CSR, but the slices keep degree tests and
//     sibling scans O(deg) with no map iteration);
//   - an index-based reduction worklist replaces the legacy
//     full-graph rescans: a reduction pushes only the nodes whose
//     rule applicability it changed, and a single full pass is run
//     only to certify "stuck" before a cone duplication;
//   - cone duplication memoizes copies in a generation-stamped array
//     (no per-duplication map), shares un-owned (cached) densities
//     instead of cloning them, and clones owned ones through the
//     workspace free list.
//
// Ownership discipline: node and edge RVs are either owned by the
// graph (produced by its Ops, recycled when replaced or removed) or
// shared (cache entries and the structural zero point, never recycled).

// spNode is one node of the reduction graph. pred/succ hold edge ids.
type spNode struct {
	rv   *stochastic.Numeric
	pred []int32
	succ []int32
	own  bool
	dead bool
}

// spEdge is one edge of the reduction graph.
type spEdge struct {
	from, to int32
	rv       *stochastic.Numeric
	own      bool
	dead     bool
}

type spGraph struct {
	acc stochastic.EvalAccuracy
	ops *stochastic.Ops

	node []spNode
	edge []spEdge
	live int

	queue  []int32
	queued []bool

	// Generation-stamped copy memo for duplicateCone: copyID[x] is
	// x's copy iff copyGen[x] == gen.
	copyID  []int32
	copyGen []uint32
	gen     uint32

	scratch []int32 // edge-id snapshot reused across reductions
}

func newSPGraph(acc stochastic.EvalAccuracy, ops *stochastic.Ops, hint int) *spGraph {
	return &spGraph{
		acc:     acc,
		ops:     ops,
		node:    make([]spNode, 0, hint),
		queued:  make([]bool, 0, hint),
		copyID:  make([]int32, 0, hint),
		copyGen: make([]uint32, 0, hint),
	}
}

func (g *spGraph) addNode(rv *stochastic.Numeric, own bool) int32 {
	g.node = append(g.node, spNode{rv: rv, own: own})
	g.queued = append(g.queued, false)
	g.copyID = append(g.copyID, 0)
	g.copyGen = append(g.copyGen, 0)
	g.live++
	return int32(len(g.node) - 1)
}

func (g *spGraph) push(v int32) {
	if !g.queued[v] && !g.node[v].dead {
		g.queued[v] = true
		g.queue = append(g.queue, v)
	}
}

// setNodeRV replaces v's variable, recycling the old one when owned.
func (g *spGraph) setNodeRV(v int32, rv *stochastic.Numeric, own bool) {
	if n := &g.node[v]; n.own {
		g.ops.Recycle(n.rv)
	}
	g.node[v].rv = rv
	g.node[v].own = own
}

// findEdge returns the id of the live edge u→v, or -1.
func (g *spGraph) findEdge(u, v int32) int32 {
	for _, f := range g.node[u].succ {
		if g.edge[f].to == v {
			return f
		}
	}
	return -1
}

// listRemove deletes edge id f from *l by swap-remove.
func listRemove(l *[]int32, f int32) {
	s := *l
	for i, x := range s {
		if x == f {
			s[i] = s[len(s)-1]
			*l = s[:len(s)-1]
			return
		}
	}
}

// addEdge inserts u→v carrying rv; a pre-existing parallel edge merges
// by the maximum (both paths must complete), consuming rv.
func (g *spGraph) addEdge(u, v int32, rv *stochastic.Numeric, own bool) {
	if f := g.findEdge(u, v); f >= 0 {
		e := &g.edge[f]
		merged := g.ops.MaxAcc(e.rv, rv, g.acc)
		if e.own {
			g.ops.Recycle(e.rv)
		}
		if own {
			g.ops.Recycle(rv)
		}
		e.rv, e.own = merged, true
		return
	}
	g.edge = append(g.edge, spEdge{from: u, to: v, rv: rv, own: own})
	f := int32(len(g.edge) - 1)
	g.node[u].succ = append(g.node[u].succ, f)
	g.node[v].pred = append(g.node[v].pred, f)
}

// dropEdge removes edge f from both endpoint lists and recycles its
// variable when owned.
func (g *spGraph) dropEdge(f int32) {
	e := &g.edge[f]
	if e.dead {
		return
	}
	listRemove(&g.node[e.from].succ, f)
	listRemove(&g.node[e.to].pred, f)
	if e.own {
		g.ops.Recycle(e.rv)
	}
	e.rv = nil
	e.dead = true
}

// removeNode drops v with all incident edges and recycles owned
// densities.
func (g *spGraph) removeNode(v int32) {
	n := &g.node[v]
	for len(n.pred) > 0 {
		g.dropEdge(n.pred[0])
	}
	for len(n.succ) > 0 {
		g.dropEdge(n.succ[0])
	}
	if n.own {
		g.ops.Recycle(n.rv)
	}
	n.rv = nil
	n.dead = true
	g.live--
}

// moveEdgeSource re-points edge f (old→w) to start at u, merging into
// an existing u→w edge by the maximum.
func (g *spGraph) moveEdgeSource(f, u int32) {
	e := &g.edge[f]
	w := e.to
	if ex := g.findEdge(u, w); ex >= 0 {
		x := &g.edge[ex]
		merged := g.ops.MaxAcc(x.rv, e.rv, g.acc)
		if x.own {
			g.ops.Recycle(x.rv)
		}
		x.rv, x.own = merged, true
		g.dropEdge(f)
		return
	}
	listRemove(&g.node[e.from].succ, f)
	e.from = u
	g.node[u].succ = append(g.node[u].succ, f)
}

// seq convolves the given variables in order, skipping nils; the result
// is always owned.
func (g *spGraph) seq(parts ...*stochastic.Numeric) *stochastic.Numeric {
	out := stochastic.NewPoint(0)
	owned := false
	for _, p := range parts {
		if p == nil {
			continue
		}
		next := g.ops.AddAcc(out, p, g.acc)
		if owned {
			g.ops.Recycle(out)
		}
		out, owned = next, true
	}
	if !owned {
		return g.ops.Copy(out)
	}
	return out
}

// trySeriesAt merges v into its single predecessor u when u has v as
// its only successor (the merged node carries u ⊕ edge ⊕ v and
// inherits v's out-edges), mirroring rvGraph.seriesReduceOnce.
func (g *spGraph) trySeriesAt(v int32) bool {
	n := &g.node[v]
	if len(n.pred) != 1 {
		return false
	}
	f := n.pred[0]
	u := g.edge[f].from
	if len(g.node[u].succ) != 1 {
		return false
	}
	g.setNodeRV(u, g.seq(g.node[u].rv, g.edge[f].rv, n.rv), true)
	g.dropEdge(f)
	outs := append(g.scratch[:0], n.succ...)
	for _, of := range outs {
		g.moveEdgeSource(of, u)
		g.push(g.edge[of].to)
	}
	g.scratch = outs[:0]
	g.removeNode(v)
	g.push(u)
	return true
}

// tryChainAt contracts a degree-(1,1) node v between u and w into an
// edge u→w carrying edge(u,v) ⊕ v ⊕ edge(v,w), mirroring
// rvGraph.chainContractOnce (including deferring to the series rule
// when outdeg(u) == 1).
func (g *spGraph) tryChainAt(v int32) bool {
	n := &g.node[v]
	if len(n.pred) != 1 || len(n.succ) != 1 {
		return false
	}
	fin, fout := n.pred[0], n.succ[0]
	u, w := g.edge[fin].from, g.edge[fout].to
	if u == w {
		return false // cannot happen in a DAG, but stay safe
	}
	if len(g.node[u].succ) == 1 {
		return false // covered more cheaply by the series rule
	}
	rv := g.seq(g.edge[fin].rv, n.rv, g.edge[fout].rv)
	g.removeNode(v)
	g.addEdge(u, w, rv, true)
	g.push(u)
	g.push(w)
	return true
}

// pathRV returns v's total single-arc path variable (in-edge ⊕ node ⊕
// out-edge); always owned.
func (g *spGraph) pathRV(v int32) *stochastic.Numeric {
	n := &g.node[v]
	var ein, eout *stochastic.Numeric
	if len(n.pred) == 1 {
		ein = g.edge[n.pred[0]].rv
	}
	if len(n.succ) == 1 {
		eout = g.edge[n.succ[0]].rv
	}
	return g.seq(ein, n.rv, eout)
}

// paraSibling reports whether x can merge with v in a parallel
// reduction: both degree-(≤1, ≤1) with identical predecessor and
// successor nodes.
func (g *spGraph) paraSibling(v, x int32) bool {
	nv, nx := &g.node[v], &g.node[x]
	if nx.dead || len(nx.pred) != len(nv.pred) || len(nx.succ) != len(nv.succ) {
		return false
	}
	if len(nx.pred) > 1 || len(nx.succ) > 1 {
		return false
	}
	if len(nv.pred) == 1 && g.edge[nv.pred[0]].from != g.edge[nx.pred[0]].from {
		return false
	}
	if len(nv.succ) == 1 && g.edge[nv.succ[0]].to != g.edge[nx.succ[0]].to {
		return false
	}
	return true
}

// mergeParallel folds sibling x into v: the two single-arc paths
// combine by the maximum, and v's connecting edges reset to zero
// points, mirroring rvGraph.parallelReduceOnce.
func (g *spGraph) mergeParallel(v, x int32) {
	pv := g.pathRV(v)
	px := g.pathRV(x)
	merged := g.ops.MaxAcc(pv, px, g.acc)
	g.ops.Recycle(pv)
	g.ops.Recycle(px)
	g.removeNode(x)
	g.setNodeRV(v, merged, true)
	n := &g.node[v]
	if len(n.pred) == 1 {
		f := n.pred[0]
		e := &g.edge[f]
		if e.own {
			g.ops.Recycle(e.rv)
		}
		e.rv, e.own = stochastic.NewPoint(0), false
		g.push(e.from)
	}
	if len(n.succ) == 1 {
		f := n.succ[0]
		e := &g.edge[f]
		if e.own {
			g.ops.Recycle(e.rv)
		}
		e.rv, e.own = stochastic.NewPoint(0), false
		g.push(e.to)
	}
	g.push(v)
}

// tryParallelAt merges v with a sibling found through its shared
// predecessor or successor (or by scanning, for isolated nodes).
func (g *spGraph) tryParallelAt(v int32) bool {
	n := &g.node[v]
	if len(n.pred) > 1 || len(n.succ) > 1 {
		return false
	}
	switch {
	case len(n.pred) == 1:
		p := g.edge[n.pred[0]].from
		for _, f := range g.node[p].succ {
			if x := g.edge[f].to; x != v && g.paraSibling(v, x) {
				g.mergeParallel(v, x)
				return true
			}
		}
	case len(n.succ) == 1:
		w := g.edge[n.succ[0]].to
		for _, f := range g.node[w].pred {
			if x := g.edge[f].from; x != v && g.paraSibling(v, x) {
				g.mergeParallel(v, x)
				return true
			}
		}
	default:
		// Fully isolated: only another isolated node qualifies.
		for x := range g.node {
			if x32 := int32(x); x32 != v && !g.node[x].dead && g.paraSibling(v, x32) {
				g.mergeParallel(v, x32)
				return true
			}
		}
	}
	return false
}

// tryReduce applies one reduction involving v, returning whether the
// graph changed. The succ-side series check keeps the worklist hot
// (a reduction at v often enables the series rule at v's successor
// before that successor is re-queued).
func (g *spGraph) tryReduce(v int32) bool {
	if g.node[v].dead {
		return false
	}
	if g.trySeriesAt(v) || g.tryChainAt(v) || g.tryParallelAt(v) {
		return true
	}
	if n := &g.node[v]; len(n.succ) == 1 {
		if w := g.edge[n.succ[0]].to; len(g.node[w].pred) == 1 {
			return g.trySeriesAt(w)
		}
	}
	return false
}

// drain runs the worklist to exhaustion.
func (g *spGraph) drain() {
	for len(g.queue) > 0 && g.live > 1 {
		v := g.queue[len(g.queue)-1]
		g.queue = g.queue[:len(g.queue)-1]
		g.queued[v] = false
		for g.tryReduce(v) {
			if g.node[v].dead {
				break
			}
		}
	}
}

// fullPass certifies the worklist fixpoint: it scans every live node
// once and applies the first reduction found (re-seeding the worklist
// through the rules' own pushes). Returning false proves no
// series/chain/parallel rule applies anywhere — the precondition the
// legacy reducer established for cone duplication by construction.
func (g *spGraph) fullPass() bool {
	for v := range g.node {
		if !g.node[v].dead && g.tryReduce(int32(v)) {
			return true
		}
	}
	return false
}

// duplicateCone performs one Dodin-style duplication, mirroring
// rvGraph.duplicateCone: it finds an arc u→v with outdeg(u) > 1 and
// indeg(v) > 1 (preferring the u with fewest predecessors, ties to the
// lowest id — the scan order is deterministic, unlike the legacy map
// iteration), detaches it, and re-routes it through a fresh copy of u's
// ancestor cone. Returns the number of nodes created.
func (g *spGraph) duplicateCone() int {
	bestU, bestE := int32(-1), int32(-1)
	for u := range g.node {
		nu := &g.node[u]
		if nu.dead || len(nu.succ) < 2 {
			continue
		}
		for _, f := range nu.succ {
			if len(g.node[g.edge[f].to].pred) < 2 {
				continue
			}
			if bestU < 0 || len(nu.pred) < len(g.node[bestU].pred) {
				bestU, bestE = int32(u), f
			}
			break
		}
	}
	if bestU < 0 {
		return 0
	}
	g.gen++
	created := 0
	var copyCone func(x int32) int32
	copyCone = func(x int32) int32 {
		if g.copyGen[x] == g.gen {
			return g.copyID[x]
		}
		// Owned variables must be deep-copied (the original may be
		// recycled when its node reduces); shared ones — cached
		// durations, zero points — are immutable and never recycled,
		// so both nodes may reference them.
		nx := &g.node[x]
		rv, own := nx.rv, false
		if nx.own {
			rv, own = g.ops.Copy(rv), true
		}
		d := g.addNode(rv, own)
		g.copyGen[x] = g.gen
		g.copyID[x] = d
		created++
		preds := append([]int32(nil), g.node[x].pred...)
		for _, f := range preds {
			e := &g.edge[f]
			erv, eown := e.rv, false
			if e.own {
				erv, eown = g.ops.Copy(erv), true
			}
			g.addEdge(copyCone(e.from), d, erv, eown)
		}
		g.push(d)
		return d
	}
	dup := copyCone(bestU)
	bestV := g.edge[bestE].to
	carried, carriedOwn := g.edge[bestE].rv, g.edge[bestE].own
	g.edge[bestE].own = false // ownership transfers to the re-routed edge
	g.dropEdge(bestE)
	g.addEdge(dup, bestV, carried, carriedOwn)
	g.push(bestU)
	g.push(bestV)
	return created
}

// reduce contracts the graph to a single node and returns its variable,
// interleaving cone duplications when stuck, with the same budget
// semantics as the legacy reducer. Failures are *ReductionError.
func (g *spGraph) reduce(budget int) (*stochastic.Numeric, error) {
	for v := range g.node {
		g.push(int32(v))
	}
	for g.live > 1 {
		g.drain()
		if g.live <= 1 {
			break
		}
		if g.fullPass() {
			continue
		}
		if len(g.node) >= budget {
			return nil, &ReductionError{Live: g.live, Total: len(g.node), Budget: budget}
		}
		if g.duplicateCone() == 0 {
			return nil, &ReductionError{Live: g.live, Total: len(g.node), Budget: budget, Stuck: true}
		}
	}
	for v := range g.node {
		if n := &g.node[v]; !n.dead {
			if n.own {
				// Detach the buffer from the workspace: the result
				// outlives the pooled Ops (same convention as Classic).
				return n.rv, nil
			}
			return n.rv.Clone(), nil
		}
	}
	return stochastic.NewPoint(0), nil
}

// Dodin evaluates the makespan distribution by Dodin's series-parallel
// reduction on the compiled graph: flat edge-id adjacency, a worklist
// instead of full-graph rescans, and all densities drawn from the
// cache's recycling workspace. Accuracy follows the cache. When — and
// only when — the reduction fails (*ReductionError) the classical
// evaluation is the documented fallback; structural errors cannot occur
// here (the model is already compiled).
func (m *EvalModel) Dodin() *stochastic.Numeric {
	rv, err := m.DodinStrict()
	if err != nil {
		return m.Classic()
	}
	return rv
}

// DodinStrict is Dodin without the classical fallback: it returns the
// *ReductionError when the series-parallel reduction cannot finish
// within its duplication budget. Tests and the differential harness use
// it to guarantee the reduction path is actually exercised.
func (m *EvalModel) DodinStrict() (*stochastic.Numeric, error) {
	acc := m.cache.acc
	grid := acc.GridSize
	ops := m.cache.getOps()
	defer m.cache.putOps(ops)
	d := m.d
	n := d.N
	g := newSPGraph(acc, ops, n+2)
	zero := stochastic.NewPoint(0)
	for t := 0; t < n; t++ {
		// Cached duration variables are shared, never mutated or
		// recycled: reductions always replace node/edge RVs with fresh
		// owned results.
		g.addNode(m.dur[t].numeric(grid), false)
	}
	// Unique source and sink so the reduction converges to one node.
	source := g.addNode(zero, false)
	sink := g.addNode(zero, false)
	for t := 0; t < n; t++ {
		if d.PredStart[t+1] == d.PredStart[t] {
			g.addEdge(source, int32(t), zero, false)
		}
		if d.SuccStart[t+1] == d.SuccStart[t] {
			g.addEdge(int32(t), sink, zero, false)
		}
		for k := d.PredStart[t]; k < d.PredStart[t+1]; k++ {
			comm := zero
			if e := m.comm[k]; e != nil {
				comm = e.numeric(grid)
			}
			g.addEdge(d.PredTask[k], int32(t), comm, false)
		}
	}
	// Same budget as the legacy reducer: generous enough to unshare
	// small graphs completely, bounded so pathological cases fall back
	// to the classical method.
	budget := 200 * (n + 2)
	if budget > 20000 {
		budget = 20000
	}
	return g.reduce(budget)
}
