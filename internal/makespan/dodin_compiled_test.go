package makespan

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graphgen"
	"repro/internal/heuristics"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

func modelFor(t *testing.T, scen *platform.Scenario, s *schedule.Schedule) *EvalModel {
	t.Helper()
	m, err := NewEvalCache(scen, 0).Model(s)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// The compiled reduction must agree with the legacy map-based reference
// on fully series-parallel structures, where both complete strictly
// (no duplication, no fallback).
func TestCompiledDodinMatchesLegacyOnSP(t *testing.T) {
	// Chain on one processor.
	g := graphgen.Chain(4, 0)
	scen := uniformScenario(g, 1, 10, 1.3)
	s := allOnProc(t, g, 1, 0)
	got, err := modelFor(t, scen, s).DodinStrict()
	if err != nil {
		t.Fatalf("compiled strict Dodin failed on a chain: %v", err)
	}
	want, err := EvaluateDodinStrict(scen, s, 64)
	if err != nil {
		t.Fatalf("legacy strict Dodin failed on a chain: %v", err)
	}
	if !almostEqual(got.Mean(), want.Mean(), 1e-6*want.Mean()) {
		t.Errorf("chain: compiled mean %g vs legacy %g", got.Mean(), want.Mean())
	}
	if !almostEqual(got.StdDev(), want.StdDev(), 1e-6*want.StdDev()+1e-9) {
		t.Errorf("chain: compiled std %g vs legacy %g", got.StdDev(), want.StdDev())
	}

	// Fork-join across processors (parallel rule + comm arcs).
	fj := graphgen.ForkJoin(3, 0)
	scen2 := uniformScenario(fj, 3, 10, 1.5)
	s2 := schedule.New(5, 3)
	s2.Assign(0, 0)
	s2.Assign(1, 0)
	s2.Assign(2, 1)
	s2.Assign(3, 2)
	s2.Assign(4, 0)
	got2, err := modelFor(t, scen2, s2).DodinStrict()
	if err != nil {
		t.Fatalf("compiled strict Dodin failed on fork-join: %v", err)
	}
	want2, err := EvaluateDodinStrict(scen2, s2, 64)
	if err != nil {
		t.Fatalf("legacy strict Dodin failed on fork-join: %v", err)
	}
	// Reduction order differs (worklist vs index rescans), so agreement
	// is to numeric tolerance, not bit-exact.
	if !almostEqual(got2.Mean(), want2.Mean(), 1e-3*want2.Mean()) {
		t.Errorf("fork-join: compiled mean %g vs legacy %g", got2.Mean(), want2.Mean())
	}
	if !almostEqual(got2.StdDev(), want2.StdDev(), 1e-2*want2.StdDev()+1e-6) {
		t.Errorf("fork-join: compiled std %g vs legacy %g", got2.StdDev(), want2.StdDev())
	}
}

// On general random schedules (duplication path) the compiled and
// legacy reductions make the same approximation with different
// reduction orders; both must stay close to the classical evaluation
// and to each other.
func TestCompiledDodinMatchesLegacyOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	bothSucceeded := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		g, w := graphgen.Random(graphgen.DefaultRandomParams(10), rng)
		tau, lat := platform.NewUniformNetwork(3, 1, 0)
		scen := &platform.Scenario{
			G:  g,
			P:  &platform.Platform{M: 3, ETC: platform.GenerateETCFromWeights(w, 3, 0.5, rng), Tau: tau, Lat: lat},
			UL: 1.1,
		}
		s := heuristics.RandomSchedule(scen, rng)
		m := modelFor(t, scen, s)
		got, gotErr := m.DodinStrict()
		want, wantErr := EvaluateDodinStrict(scen, s, 64)
		cls := m.Classic()
		if gotErr == nil && !almostEqual(got.Mean(), cls.Mean(), 0.05*cls.Mean()) {
			t.Errorf("trial %d: compiled Dodin mean %g vs classic %g", i, got.Mean(), cls.Mean())
		}
		if gotErr != nil && !IsReductionError(gotErr) {
			t.Errorf("trial %d: compiled strict failure is not a ReductionError: %v", i, gotErr)
		}
		if gotErr == nil && wantErr == nil {
			bothSucceeded++
			if !almostEqual(got.Mean(), want.Mean(), 0.05*want.Mean()) {
				t.Errorf("trial %d: compiled mean %g vs legacy %g", i, got.Mean(), want.Mean())
			}
		}
	}
	t.Logf("compiled and legacy strict Dodin both completed %d/%d random schedules", bothSucceeded, trials)
	if bothSucceeded == 0 {
		t.Error("compiled strict Dodin never succeeded alongside legacy — reduction is dead code")
	}
}

// EvalModel.Dodin must never fail: reduction failures fall back to the
// classical result.
func TestEvalModelDodinFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	g, w := graphgen.Random(graphgen.DefaultRandomParams(20), rng)
	tau, lat := platform.NewUniformNetwork(3, 1, 0)
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: 3, ETC: platform.GenerateETCFromWeights(w, 3, 0.5, rng), Tau: tau, Lat: lat},
		UL: 1.1,
	}
	s := heuristics.RandomSchedule(scen, rng)
	m := modelFor(t, scen, s)
	rv := m.Dodin()
	cls := m.Classic()
	if !almostEqual(rv.Mean(), cls.Mean(), 0.05*cls.Mean()) {
		t.Errorf("Dodin mean %g vs classic %g", rv.Mean(), cls.Mean())
	}
}

// The compiled reduction under the fast/coarse presets must stay close
// to the reference-accuracy result.
func TestCompiledDodinAccuracyPresets(t *testing.T) {
	g := graphgen.ForkJoin(3, 0)
	scen := uniformScenario(g, 3, 10, 1.5)
	s := schedule.New(5, 3)
	s.Assign(0, 0)
	s.Assign(1, 0)
	s.Assign(2, 1)
	s.Assign(3, 2)
	s.Assign(4, 0)
	ref, err := NewEvalCacheAccuracy(scen, stochastic.AccuracyReference).Model(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.DodinStrict()
	if err != nil {
		t.Fatal(err)
	}
	for _, acc := range []stochastic.EvalAccuracy{stochastic.AccuracyFast, stochastic.AccuracyCoarse} {
		m, err := NewEvalCacheAccuracy(scen, acc).Model(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.DodinStrict()
		if err != nil {
			t.Fatalf("%v: %v", acc, err)
		}
		if !almostEqual(got.Mean(), want.Mean(), 0.02*want.Mean()) {
			t.Errorf("%v: Dodin mean %g vs reference %g", acc, got.Mean(), want.Mean())
		}
	}
}

// Reduction failures must be typed (*ReductionError) on both the legacy
// and the compiled path — the regression tests for the no-silent-
// fallback sweep. The budget path is forced with a 1-node budget on the
// smallest non-series-parallel pattern (the "N": a→c, a→d, b→d), which
// needs a duplication to reduce.
func TestReductionErrorTyped(t *testing.T) {
	build := func(add func(u, v int)) {
		// Nodes 0..3 with the N-structure; no reduction rule applies,
		// so the reducer must ask for a duplication immediately.
		add(0, 2)
		add(0, 3)
		add(1, 3)
	}

	// Legacy rvGraph.
	lg := newRVGraph(64)
	for i := 0; i < 4; i++ {
		lg.addNode(stochastic.NewPoint(float64(i + 1)))
	}
	build(func(u, v int) { lg.addEdge(u, v, stochastic.NewPoint(0)) })
	_, err := lg.reduce(1)
	var re *ReductionError
	if !errors.As(err, &re) {
		t.Fatalf("legacy reduce(1) returned %T (%v), want *ReductionError", err, err)
	}
	if re.Stuck || re.Budget != 1 || re.Live != 4 || re.Total != 4 {
		t.Errorf("legacy ReductionError fields = %+v", re)
	}
	if !IsReductionError(err) {
		t.Error("IsReductionError(legacy) = false")
	}

	// Compiled spGraph.
	ops := &stochastic.Ops{}
	cg := newSPGraph(stochastic.AccuracyReference, ops, 4)
	for i := 0; i < 4; i++ {
		cg.addNode(stochastic.NewPoint(float64(i+1)), false)
	}
	build(func(u, v int) { cg.addEdge(int32(u), int32(v), stochastic.NewPoint(0), false) })
	_, err = cg.reduce(1)
	if !errors.As(err, &re) {
		t.Fatalf("compiled reduce(1) returned %T (%v), want *ReductionError", err, err)
	}
	if re.Stuck || re.Budget != 1 || re.Live != 4 || re.Total != 4 {
		t.Errorf("compiled ReductionError fields = %+v", re)
	}

	// With a real budget both reducers clear the same structure via one
	// duplication.
	lg2 := newRVGraph(64)
	for i := 0; i < 4; i++ {
		lg2.addNode(stochastic.NewPoint(1))
	}
	build(func(u, v int) { lg2.addEdge(u, v, stochastic.NewPoint(0)) })
	if _, err := lg2.reduce(100); err != nil {
		t.Errorf("legacy reduce(100) on the N-structure: %v", err)
	}
	cg2 := newSPGraph(stochastic.AccuracyReference, ops, 4)
	for i := 0; i < 4; i++ {
		cg2.addNode(stochastic.NewPoint(1), false)
	}
	build(func(u, v int) { cg2.addEdge(int32(u), int32(v), stochastic.NewPoint(0), false) })
	if _, err := cg2.reduce(100); err != nil {
		t.Errorf("compiled reduce(100) on the N-structure: %v", err)
	}

	// Error strings: both variants must render.
	if (&ReductionError{Live: 3, Total: 9, Budget: 5}).Error() == "" ||
		(&ReductionError{Live: 3, Stuck: true}).Error() == "" {
		t.Error("ReductionError must render a message")
	}
}

// EvaluateDodin must propagate non-reduction errors (invalid schedule)
// instead of silently falling back to the classical method.
func TestEvaluateDodinPropagatesStructuralErrors(t *testing.T) {
	g := graphgen.Chain(3, 1)
	scen := uniformScenario(g, 2, 10, 1.1)
	incomplete := schedule.New(3, 2)
	_, err := EvaluateDodin(scen, incomplete, 64)
	if err == nil {
		t.Fatal("EvaluateDodin accepted an incomplete schedule")
	}
	if IsReductionError(err) {
		t.Errorf("invalid-schedule error misclassified as ReductionError: %v", err)
	}
}
