// External test package: pulls in the workload registry (experiment
// imports makespan, so the in-package tests cannot) to run the
// compiled-vs-legacy Dodin differential over every registered family.
package makespan_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/experiment"
	"repro/internal/heuristics"
	"repro/internal/makespan"
)

// Acceptance harness: on every registered workload family the compiled
// EvalModel.Dodin must match the legacy EvaluateDodin within
// differential tolerance. Both sides use their documented
// reduction-failure fallback (the classical method), so the comparison
// holds regardless of which reducer completes strictly.
func TestCompiledDodinMatchesLegacyOnAllFamilies(t *testing.T) {
	for _, family := range experiment.FamilyNames() {
		family := family
		t.Run(family, func(t *testing.T) {
			spec := experiment.CaseSpec{
				Name: family, Family: family, N: 30, M: 4, UL: 1.2, Seed: 17,
			}
			scen, err := spec.BuildScenario()
			if err != nil {
				t.Fatalf("building %s scenario: %v", family, err)
			}
			rng := rand.New(rand.NewSource(23))
			cache := makespan.NewEvalCache(scen, 0)
			for trial := 0; trial < 3; trial++ {
				s := heuristics.RandomSchedule(scen, rng)
				m, err := cache.Model(s)
				if err != nil {
					t.Fatal(err)
				}
				got := m.Dodin()
				want, err := makespan.EvaluateDodin(scen, s, 0)
				if err != nil {
					t.Fatal(err)
				}
				if d := math.Abs(got.Mean() - want.Mean()); d > 0.05*want.Mean() {
					t.Errorf("trial %d: compiled Dodin mean %g vs legacy %g", trial, got.Mean(), want.Mean())
				}
				if d := math.Abs(got.StdDev() - want.StdDev()); d > 0.10*want.StdDev()+1e-9 {
					t.Errorf("trial %d: compiled Dodin std %g vs legacy %g", trial, got.StdDev(), want.StdDev())
				}
			}
		})
	}
}
