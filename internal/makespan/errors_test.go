package makespan

import (
	"math/rand"
	"testing"

	"repro/internal/graphgen"
	"repro/internal/heuristics"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

// All three evaluators must reject schedules that do not fit the
// scenario.
func TestEvaluatorsRejectBadInput(t *testing.T) {
	g := graphgen.Chain(3, 1)
	scen := uniformScenario(g, 2, 10, 1.1)

	incomplete := schedule.New(3, 2) // nothing assigned
	if _, err := EvaluateClassic(scen, incomplete, 64); err == nil {
		t.Error("classic accepted incomplete schedule")
	}
	if _, err := EvaluateDodin(scen, incomplete, 64); err == nil {
		t.Error("dodin accepted incomplete schedule")
	}
	if _, err := EvaluateSpelde(scen, incomplete); err == nil {
		t.Error("spelde accepted incomplete schedule")
	}
	if _, err := MonteCarlo(scen, incomplete, 10, 1); err == nil {
		t.Error("monte carlo accepted incomplete schedule")
	}

	wrongSize := schedule.New(2, 2)
	wrongSize.Assign(0, 0)
	wrongSize.Assign(1, 1)
	if _, err := EvaluateClassic(scen, wrongSize, 64); err == nil {
		t.Error("classic accepted wrong-size schedule")
	}
}

// Evaluating with per-processor uncertainty must flow through every
// method (extension coverage).
func TestEvaluatorsWithProcUL(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g, w := graphgen.Random(graphgen.DefaultRandomParams(12), rng)
	tau, lat := platform.NewUniformNetwork(2, 1, 0)
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: 2, ETC: platform.GenerateETCFromWeights(w, 2, 0.5, rng), Tau: tau, Lat: lat},
		UL: 1.1,
	}
	noisy := scen.WithNoisyProcessors(1.01, 1.8)
	s := heuristics.RandomSchedule(noisy, rng)
	cls, err := EvaluateClassic(noisy, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := EvaluateSpelde(noisy, s)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := MonteCarlo(noisy, s, 30000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(cls.Mean(), emp.Mean(), 0.01*emp.Mean()) {
		t.Errorf("classic mean %g vs MC %g under ProcUL", cls.Mean(), emp.Mean())
	}
	if !almostEqual(sp.Mean, emp.Mean(), 0.02*emp.Mean()) {
		t.Errorf("spelde mean %g vs MC %g under ProcUL", sp.Mean, emp.Mean())
	}
}

// A custom oscillating duration family must propagate through the
// classic evaluation and match Monte Carlo.
func TestClassicWithCustomDurFn(t *testing.T) {
	g := graphgen.Chain(3, 0)
	scen := uniformScenario(g, 1, 10, 1.4)
	scen.DurFn = func(min, ul float64) stochastic.Dist {
		return stochastic.Shifted{
			D:   stochastic.NewSpecialWith(min*(ul-1), []float64{0.4, 0.6}),
			Off: min,
		}
	}
	s := allOnProc(t, g, 1, 0)
	rv, err := EvaluateClassic(scen, s, 128)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := MonteCarlo(scen, s, 50000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rv.Mean(), emp.Mean(), 0.02*emp.Mean()) {
		t.Errorf("classic mean %g vs MC %g with custom DurFn", rv.Mean(), emp.Mean())
	}
	if !almostEqual(rv.StdDev(), emp.StdDev(), 0.1*emp.StdDev()+0.01) {
		t.Errorf("classic std %g vs MC %g with custom DurFn", rv.StdDev(), emp.StdDev())
	}
}

// The strict Dodin reduction must succeed (no fallback) on
// series-parallel structures, proving the reduction path is exercised.
func TestDodinStrictOnSPStructures(t *testing.T) {
	// Chain on one processor.
	g := graphgen.Chain(4, 0)
	scen := uniformScenario(g, 1, 10, 1.3)
	s := allOnProc(t, g, 1, 0)
	rv, err := EvaluateDodinStrict(scen, s, 64)
	if err != nil {
		t.Fatalf("strict Dodin failed on a chain: %v", err)
	}
	if !almostEqual(rv.Mean(), 4*scen.TaskDist(0, 0).Mean(), 0.1) {
		t.Errorf("chain mean = %g", rv.Mean())
	}
	// Fork-join across processors.
	fj := graphgen.ForkJoin(3, 0)
	scen2 := uniformScenario(fj, 3, 10, 1.5)
	s2 := schedule.New(5, 3)
	s2.Assign(0, 0)
	s2.Assign(1, 0)
	s2.Assign(2, 1)
	s2.Assign(3, 2)
	s2.Assign(4, 0)
	if _, err := EvaluateDodinStrict(scen2, s2, 64); err != nil {
		t.Fatalf("strict Dodin failed on fork-join: %v", err)
	}
}

// On general random schedules the duplication mechanism should usually
// complete too; count how often it succeeds to keep the mechanism
// honest (it must work at least some of the time, or Dodin is dead
// code behind the fallback).
func TestDodinStrictOnRandomSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	succeeded := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		g, w := graphgen.Random(graphgen.DefaultRandomParams(10), rng)
		tau, lat := platform.NewUniformNetwork(3, 1, 0)
		scen := &platform.Scenario{
			G:  g,
			P:  &platform.Platform{M: 3, ETC: platform.GenerateETCFromWeights(w, 3, 0.5, rng), Tau: tau, Lat: lat},
			UL: 1.1,
		}
		s := heuristics.RandomSchedule(scen, rng)
		rv, err := EvaluateDodinStrict(scen, s, 64)
		if err != nil {
			continue
		}
		succeeded++
		// When it succeeds it must agree with classic within tolerance.
		cls, err := EvaluateClassic(scen, s, 64)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(rv.Mean(), cls.Mean(), 0.05*cls.Mean()) {
			t.Errorf("trial %d: strict Dodin mean %g vs classic %g", i, rv.Mean(), cls.Mean())
		}
	}
	t.Logf("strict Dodin completed %d/%d random 10-task schedules", succeeded, trials)
	if succeeded == 0 {
		t.Error("strict Dodin never succeeded on random schedules — reduction is dead code")
	}
}
