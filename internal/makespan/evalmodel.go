package makespan

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/robustness"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

// EvalCache is the per-scenario half of the compiled evaluation layer:
// everything metric evaluation needs that depends only on the scenario
// — not on any particular schedule — built once per case and shared by
// every schedule evaluated under it.
//
//   - the graph's sorted CSR (the adjacency order the evaluators'
//     floating-point accumulations are specified against),
//   - the platform's communication classes (PR 4's (lat, τ) pair
//     dedup),
//   - discretized duration random variables and first two moments,
//     keyed by the (min, ul) pair that fully determines a duration
//     distribution for a fixed scenario. A random-schedule case
//     re-evaluates the same (task, proc) durations and the same
//     (class, volume) communications hundreds of times; the reference
//     evaluators re-discretized them for every schedule.
//
// The cache is safe for concurrent use: RunCaseOn evaluates the
// schedules of a case in parallel against one cache. Custom DurFn
// families must be pure functions of (min, ul) — the same requirement
// the rest of the pipeline (heuristic cost models, the MC kernel)
// already places on them.
type EvalCache struct {
	scen *platform.Scenario
	acc  stochastic.EvalAccuracy // canonical

	csrOnce sync.Once
	csr     *dag.CSR
	cc      platform.CommClasses

	mu  sync.RWMutex
	rvs map[distKey]*cacheEntry

	ops sync.Pool // *stochastic.Ops
}

// distKey identifies a duration distribution of the scenario: its
// minimum value and uncertainty level.
type distKey struct {
	min, ul float64
}

// cacheEntry is one duration distribution of the scenario with its
// exact moments and skip classification. The 64-point discretization
// is materialized lazily on first use by a density consumer (Classic,
// Dodin): moments-only consumers — Spelde, Slacks — never pay for it.
type cacheEntry struct {
	d        stochastic.Dist
	mean     float64
	variance float64
	skip     bool // zeroCommArc(d): drops out of evaluation as a comm arc

	once sync.Once
	rv   *stochastic.Numeric
}

// numeric returns the entry's discretized variable, computing it once.
func (e *cacheEntry) numeric(grid int) *stochastic.Numeric {
	e.once.Do(func() { e.rv = stochastic.FromDist(e.d, grid) })
	return e.rv
}

// maxCacheEntries bounds the memoized discretizations (~700 B each).
// Past the bound the cache computes without storing — still correct,
// no longer amortized — so a pathological sweep cannot hold gigabytes
// of densities alive.
const maxCacheEntries = 1 << 18

// NewEvalCache builds the shared evaluation state for one scenario at
// the reference resampling policy. gridSize <= 0 selects the paper's
// 64-point densities.
func NewEvalCache(scen *platform.Scenario, gridSize int) *EvalCache {
	return NewEvalCacheAccuracy(scen, stochastic.EvalAccuracy{GridSize: gridSize})
}

// NewEvalCacheAccuracy builds the shared evaluation state for one
// scenario under an explicit accuracy contract. Every density the cache
// memoizes and every operator its models run uses acc, so two caches at
// different accuracies never share discretizations.
func NewEvalCacheAccuracy(scen *platform.Scenario, acc stochastic.EvalAccuracy) *EvalCache {
	return &EvalCache{
		scen: scen,
		acc:  acc.Canon(),
		rvs:  make(map[distKey]*cacheEntry),
	}
}

// Scenario returns the scenario the cache was built for.
func (c *EvalCache) Scenario() *platform.Scenario { return c.scen }

// GridSize returns the density grid size of the cache's
// discretizations.
func (c *EvalCache) GridSize() int { return c.acc.GridSize }

// Accuracy returns the cache's evaluation accuracy contract.
func (c *EvalCache) Accuracy() stochastic.EvalAccuracy { return c.acc }

// flat returns the lazily built scenario-graph CSR and comm classes.
func (c *EvalCache) flat() (*dag.CSR, platform.CommClasses) {
	c.csrOnce.Do(func() {
		c.csr = c.scen.G.SortedCSR()
		c.cc = c.scen.P.CommClasses()
	})
	return c.csr, c.cc
}

// entry returns the discretized variable and moments of the duration
// distribution with the given (min, ul), memoizing up to
// maxCacheEntries.
func (c *EvalCache) entry(min, ul float64) *cacheEntry {
	key := distKey{min, ul}
	c.mu.RLock()
	e := c.rvs[key]
	c.mu.RUnlock()
	if e != nil {
		return e
	}
	// Compute outside the lock: a racing duplicate is deterministic
	// (identical inputs give identical bits), so last-write-wins is
	// harmless.
	d := c.scen.DurDist(min, ul)
	e = &cacheEntry{
		d:        d,
		mean:     d.Mean(),
		variance: d.Variance(),
		skip:     zeroCommArc(d),
	}
	c.mu.Lock()
	if prev := c.rvs[key]; prev != nil {
		e = prev
	} else if len(c.rvs) < maxCacheEntries {
		c.rvs[key] = e
	}
	c.mu.Unlock()
	return e
}

func (c *EvalCache) getOps() *stochastic.Ops {
	if o, _ := c.ops.Get().(*stochastic.Ops); o != nil {
		return o
	}
	return &stochastic.Ops{}
}

func (c *EvalCache) putOps(o *stochastic.Ops) { c.ops.Put(o) }

// zeroCommArc is THE skip rule of the evaluation layer, shared by the
// compiled model and the reference evaluators: a disjunctive arc's
// communication drops out of the evaluation exactly when its time is
// almost surely zero — a degenerate distribution at 0 (co-located
// tasks, pure sequencing arcs, and deterministic zero-min links).
//
// The historical rule skipped on minComm > 0 failing, which also
// dropped zero-minimum links whose distribution still carries mass
// (a zero-latency network under an additive DurFn family): the
// analytic evaluators silently diverged from the Monte-Carlo ground
// truth, which samples those arcs. Guarding on the distribution itself
// cannot drop a stochastic arc.
func zeroCommArc(d stochastic.Dist) bool {
	lo, hi := d.Support()
	return lo == 0 && hi == 0 //reprovet:allow floateq an arc is droppable only when its support is exactly {0} (the PR 5 zero-min-arc fix)
}

// EvalModel is the per-(scenario, schedule) compiled evaluation
// context — the tentpole of the evaluation layer. Building it performs,
// exactly once, everything the reference evaluators repeated per
// method call (and robustness.fillSlack repeated once more): schedule
// validation, the disjunctive overlay (flat CSR via
// schedule.CompileDisjunctive — no map-graph clones), and the
// resolution of every task duration and every disjunctive arc's
// communication to a cached discretized variable plus exact moments.
//
// The three consumers then run over flat arrays:
//
//   - Classic: numeric density propagation, bit-identical to
//     ReferenceEvaluateClassic, with all intermediate densities drawn
//     from a recycling workspace (stochastic.Ops) and completion
//     densities released by successor refcount — live memory is
//     bounded by the schedule's frontier width, not n;
//   - Spelde: Clark moment propagation, equal to
//     ReferenceEvaluateSpelde;
//   - Slacks: the §IV mean-duration slack vector, equal to the
//     disjunctive-graph path robustness.FromDistribution used to
//     rebuild per call.
//
// A model is cheap (O(n+e) plus cache lookups) and single-use-or-many:
// all methods are safe to call repeatedly and concurrently, since they
// share only immutable state.
type EvalModel struct {
	cache *EvalCache
	sched *schedule.Schedule
	d     *schedule.Disjunctive

	dur     []*cacheEntry // per task, on its assigned processor
	durMean []float64
	durVar  []float64

	comm     []*cacheEntry // per disjunctive arc; nil when zeroCommArc
	commMean []float64     // 0 for skipped arcs
	commVar  []float64
}

// Model compiles the evaluation context for one schedule. The schedule
// is validated exactly like Schedule.Validate (completeness,
// assignment consistency, disjunctive acyclicity).
func (c *EvalCache) Model(s *schedule.Schedule) (*EvalModel, error) {
	csr, cc := c.flat()
	d, err := s.CompileDisjunctive(csr)
	if err != nil {
		return nil, err
	}
	n := d.N
	arcs := len(d.PredTask)
	m := &EvalModel{
		cache:    c,
		sched:    s,
		d:        d,
		dur:      make([]*cacheEntry, n),
		durMean:  make([]float64, n),
		durVar:   make([]float64, n),
		comm:     make([]*cacheEntry, arcs),
		commMean: make([]float64, arcs),
		commVar:  make([]float64, arcs),
	}
	scen := c.scen
	for t := 0; t < n; t++ {
		proc := s.Proc[t]
		e := c.entry(scen.P.ETC[t][proc], scen.ULAt(dag.Task(t), proc))
		m.dur[t] = e
		m.durMean[t] = e.mean
		m.durVar[t] = e.variance
		for k := d.PredStart[t]; k < d.PredStart[t+1]; k++ {
			pi := s.Proc[d.PredTask[k]]
			if pi == proc {
				continue // co-located: exactly free, arc skipped
			}
			cls := cc.Class[pi*cc.M+proc]
			min := cc.Lat[cls] + d.PredVol[k]*cc.Tau[cls]
			e := c.entry(min, scen.UL)
			if e.skip {
				continue
			}
			m.comm[k] = e
			m.commMean[k] = e.mean
			m.commVar[k] = e.variance
		}
	}
	return m, nil
}

// Schedule returns the schedule the model was compiled for.
func (m *EvalModel) Schedule() *schedule.Schedule { return m.sched }

// Classic runs the classical algorithm — numeric densities propagated
// through the disjunctive order, convolution along arcs, CDF products
// at joins — and returns the makespan distribution. The result is
// bit-for-bit identical to ReferenceEvaluateClassic at the cache's
// grid size (the equivalence harness enforces this across all workload
// families): the operator sequence, adjacency order and sink order are
// the reference's own, with the densities flowing through a recycling
// workspace instead of fresh allocations.
func (m *EvalModel) Classic() *stochastic.Numeric {
	acc := m.cache.acc
	grid := acc.GridSize
	ops := m.cache.getOps()
	defer m.cache.putOps(ops)
	d := m.d
	n := d.N
	completion := make([]*stochastic.Numeric, n)
	// Successor refcounts: a completion density is consumed once per
	// disjunctive successor, plus once by the final sink maximum. When
	// the count hits zero its buffer returns to the workspace.
	refs := make([]int32, n)
	for t := 0; t < n; t++ {
		refs[t] = d.SuccStart[t+1] - d.SuccStart[t]
	}
	for _, s := range d.Sinks {
		refs[s]++
	}
	release := func(p int32) {
		refs[p]--
		if refs[p] == 0 {
			ops.Recycle(completion[p])
			completion[p] = nil
		}
	}
	zero := stochastic.NewPoint(0)
	for _, t := range d.Order {
		start := zero
		startOwned := false
		for k := d.PredStart[t]; k < d.PredStart[t+1]; k++ {
			p := d.PredTask[k]
			arrival := completion[p]
			arrivalOwned := false
			if e := m.comm[k]; e != nil {
				arrival = ops.AddAcc(completion[p], e.numeric(grid), acc)
				arrivalOwned = true
			}
			next := ops.MaxAcc(start, arrival, acc)
			if startOwned {
				ops.Recycle(start)
			}
			if arrivalOwned {
				ops.Recycle(arrival)
			}
			release(p)
			start = next
			startOwned = true
		}
		completion[t] = ops.AddAcc(start, m.dur[t].numeric(grid), acc)
		if startOwned {
			ops.Recycle(start)
		}
	}
	makespan := zero
	owned := false
	for _, s := range d.Sinks {
		next := ops.MaxAcc(makespan, completion[s], acc)
		if owned {
			ops.Recycle(makespan)
		}
		release(int32(s))
		makespan = next
		owned = true
	}
	// The result keeps its buffer: it was removed from the free list
	// and is never recycled, so pooling the workspace stays safe.
	return makespan
}

// Spelde propagates (µ, σ²) through the disjunctive order with Clark's
// formulas, equal to ReferenceEvaluateSpelde (same moment values, same
// accumulation order).
func (m *EvalModel) Spelde() SpeldeResult {
	d := m.d
	n := d.N
	mu := make([]float64, n)
	variance := make([]float64, n)
	for _, t := range d.Order {
		var sMu, sVar float64
		first := true
		for k := d.PredStart[t]; k < d.PredStart[t+1]; k++ {
			p := d.PredTask[k]
			aMu, aVar := mu[p], variance[p]
			if m.comm[k] != nil {
				aMu += m.commMean[k]
				aVar += m.commVar[k]
			}
			if first {
				sMu, sVar = aMu, aVar
				first = false
			} else {
				sMu, sVar = clarkMax(sMu, sVar, aMu, aVar)
			}
		}
		if first {
			sMu, sVar = 0, 0 // entry task starts at time 0
		}
		mu[t] = sMu + m.durMean[t]
		variance[t] = sVar + m.durVar[t]
	}
	var outMu, outVar float64
	firstSink := true
	for _, t := range d.Sinks {
		if firstSink {
			outMu, outVar = mu[t], variance[t]
			firstSink = false
		} else {
			outMu, outVar = clarkMax(outMu, outVar, mu[t], variance[t])
		}
	}
	return SpeldeResult{Mean: outMu, Std: math.Sqrt(outVar)}
}

// Slacks returns the per-task slack vector of §IV on the disjunctive
// overlay with every duration and communication at its mean — the
// quantity robustness.fillSlack computed by rebuilding the disjunctive
// graph and re-deriving every mean per call. Values are identical to
// that path: top/bottom levels are pure float maxima, which are
// accumulation-order independent.
func (m *EvalModel) Slacks() []float64 {
	slacks, _ := m.slacksCP()
	return slacks
}

// slacksCP computes the slack vector together with the mean-duration
// critical-path length it is defined against (cp = max_t tl(t)+bl(t)).
func (m *EvalModel) slacksCP() ([]float64, float64) {
	d := m.d
	n := d.N
	tl := make([]float64, n)
	bl := make([]float64, n)
	for _, t := range d.Order {
		for k := d.PredStart[t]; k < d.PredStart[t+1]; k++ {
			p := d.PredTask[k]
			if cand := tl[p] + m.durMean[p] + m.commMean[k]; cand > tl[t] {
				tl[t] = cand
			}
		}
	}
	for i := range bl {
		bl[i] = m.durMean[i]
	}
	for i := n - 1; i >= 0; i-- {
		t := d.Order[i]
		for k := d.PredStart[t]; k < d.PredStart[t+1]; k++ {
			p := d.PredTask[k]
			if cand := m.durMean[p] + m.commMean[k] + bl[t]; cand > bl[p] {
				bl[p] = cand
			}
		}
	}
	var cp float64
	for t := 0; t < n; t++ {
		if v := tl[t] + bl[t]; v > cp {
			cp = v
		}
	}
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		s := cp - bl[t] - tl[t]
		if s < 0 {
			s = 0 // guard against rounding noise
		}
		out[t] = s
	}
	return out, cp
}

// Metrics evaluates the full eight-metric robustness vector of the
// model's schedule: the five distribution metrics from the classical
// makespan density and the slack metrics from the compiled slack
// vector. This is the per-schedule unit of work of the paper's core
// experiment, and the call RunCaseOn fans out over its worker pool.
func (m *EvalModel) Metrics(p robustness.Params) robustness.Metrics {
	return robustness.FromDistributionSlacks(m.Classic(), m.Slacks(), p)
}

// MetricsFromSamples evaluates the metric vector with the distribution
// metrics taken from Monte-Carlo samples and the slack metrics from
// the compiled slack vector — the model-holding form of
// robustness.FromSamples, without the per-call disjunctive rebuild.
func (m *EvalModel) MetricsFromSamples(emp *stochastic.Empirical, p robustness.Params) robustness.Metrics {
	return robustness.FromSamplesSlacks(emp, m.Slacks(), p)
}

// MetricsFromKernelStats is MetricsFromSamples for the realization
// kernel's streaming accumulator — the model-holding form of
// robustness.FromKernelStats.
func (m *EvalModel) MetricsFromKernelStats(st *schedule.MCStats, p robustness.Params) robustness.Metrics {
	return robustness.FromKernelStatsSlacks(st, m.Slacks(), p)
}

// SlackIdentity runs the paper's §V consistency test on the compiled
// slack vector — a zero-slack (critical-path) task must exist — and
// returns the critical-path length on mean durations. It is the
// model-holding form of robustness.VerifySlackIdentity, computed from
// EvalModel.Slacks instead of a rebuilt map-based disjunctive graph.
func (m *EvalModel) SlackIdentity() (float64, error) {
	slacks, cp := m.slacksCP()
	min := math.Inf(1)
	for _, v := range slacks {
		if v < min {
			min = v
		}
	}
	if min > 1e-6 {
		return 0, fmt.Errorf("makespan: no zero-slack task (min slack %g)", min)
	}
	return cp, nil
}
