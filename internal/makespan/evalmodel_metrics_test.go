package makespan_test

// Equivalence tests for the model-holding metric entry points added
// with the EvalAccuracy refactor: MetricsFromSamples,
// MetricsFromKernelStats and SlackIdentity must reproduce the retained
// robustness reference paths exactly (same slack vector, same
// distribution metrics), without the per-call disjunctive rebuild.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/experiment"
	"repro/internal/heuristics"
	"repro/internal/makespan"
	"repro/internal/robustness"
	"repro/internal/schedule"
)

func metricsScenario(t *testing.T) (*makespan.EvalCache, *schedule.Schedule) {
	t.Helper()
	spec := experiment.CaseSpec{Name: "mm", Family: experiment.CholeskyFamily,
		N: 35, M: 3, UL: 1.3, Seed: 29}
	scen, err := spec.BuildScenario()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	return makespan.NewEvalCache(scen, 64), heuristics.RandomSchedule(scen, rng)
}

func TestMetricsFromSamplesMatchesReference(t *testing.T) {
	cache, s := metricsScenario(t)
	scen := cache.Scenario()
	m, err := cache.Model(s)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := makespan.MonteCarlo(scen, s, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	p := robustness.Params{Delta: 0.1, Gamma: 1.0003, GridSize: 64}
	got := m.MetricsFromSamples(emp, p)
	want, err := robustness.FromSamples(scen, s, emp, p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("MetricsFromSamples differs from reference:\n  got  %+v\n  want %+v", got, want)
	}
}

func TestMetricsFromKernelStatsMatchesReference(t *testing.T) {
	cache, s := metricsScenario(t)
	scen := cache.Scenario()
	m, err := cache.Model(s)
	if err != nil {
		t.Fatal(err)
	}
	st, err := makespan.MonteCarloStats(scen, s, 20000, 7, makespan.MCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := robustness.Params{Delta: 0.1, Gamma: 1.0003, GridSize: 64}
	got := m.MetricsFromKernelStats(st, p)
	want, err := robustness.FromKernelStats(scen, s, st, p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("MetricsFromKernelStats differs from reference:\n  got  %+v\n  want %+v", got, want)
	}
}

func TestSlackIdentityMatchesReference(t *testing.T) {
	cache, s := metricsScenario(t)
	scen := cache.Scenario()
	m, err := cache.Model(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.SlackIdentity()
	if err != nil {
		t.Fatalf("compiled slack identity: %v", err)
	}
	want, err := robustness.VerifySlackIdentity(scen, s)
	if err != nil {
		t.Fatalf("reference slack identity: %v", err)
	}
	// cp is max(tl+bl) over all tasks; the reference maxes bl over
	// sources — equal up to summation-order rounding.
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("SlackIdentity critical path %g, reference %g", got, want)
	}
	if got <= 0 {
		t.Errorf("critical-path length %g, want > 0", got)
	}
}
