package makespan_test

// The equivalence harness of the compiled evaluation layer, in the
// style of the PR 4 scheduler harness: EvalModel must be bit-identical
// to the retained reference evaluators — Classic densities and slack
// vectors bitwise, Spelde moments exactly — on every registered
// workload family, across sizes, uncertainty levels and seeds, plus
// the §VIII scenario extensions and degenerate inputs. This is what
// licenses the shared-EvalModel refactor to claim zero behavior
// change; the zero-latency differential test at the bottom pins the
// one deliberate behavior change (the corrected zero-min comm guard)
// against the Monte-Carlo ground truth.

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dag"
	"repro/internal/experiment"
	"repro/internal/heuristics"
	"repro/internal/makespan"
	"repro/internal/platform"
	"repro/internal/robustness"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

// assertSameRV fails unless the two distributions are structurally and
// bitwise equal.
func assertSameRV(t *testing.T, label string, got, want *stochastic.Numeric) {
	t.Helper()
	if got.IsPoint() != want.IsPoint() || got.Lo() != want.Lo() || got.Hi() != want.Hi() {
		t.Fatalf("%s: support differs: point=%v [%v,%v], want point=%v [%v,%v]",
			label, got.IsPoint(), got.Lo(), got.Hi(), want.IsPoint(), want.Lo(), want.Hi())
	}
	gp, wp := got.PDFGrid(), want.PDFGrid()
	if len(gp) != len(wp) {
		t.Fatalf("%s: grid size %d != %d", label, len(gp), len(wp))
	}
	for i := range wp {
		if gp[i] != wp[i] {
			t.Fatalf("%s: density diverges at %d: %g != %g", label, i, gp[i], wp[i])
		}
	}
}

// referenceSlacks computes the slack vector exactly the way
// robustness.fillSlack does: on the re-built mean-value disjunctive
// graph.
func referenceSlacks(t *testing.T, scen *platform.Scenario, s *schedule.Schedule) []float64 {
	t.Helper()
	dg, err := s.Disjunctive(scen.G)
	if err != nil {
		t.Fatal(err)
	}
	n := scen.G.N()
	nodeW := make([]float64, n)
	for i := 0; i < n; i++ {
		nodeW[i] = scen.MeanTask(dag.Task(i), s.Proc[i])
	}
	edgeW := func(from, to dag.Task) float64 {
		return scen.MeanComm(from, to, s.Proc[from], s.Proc[to])
	}
	slacks, err := dg.Slacks(nodeW, edgeW)
	if err != nil {
		t.Fatal(err)
	}
	return slacks
}

// checkModelAgainstReferences runs every compiled evaluator against its
// reference on one (scenario, schedule) pair, through a shared cache.
func checkModelAgainstReferences(t *testing.T, label string, cache *makespan.EvalCache, s *schedule.Schedule, grid int) {
	t.Helper()
	scen := cache.Scenario()
	m, err := cache.Model(s)
	if err != nil {
		t.Fatalf("%s: model: %v", label, err)
	}
	wantRV, err := makespan.ReferenceEvaluateClassic(scen, s, grid)
	if err != nil {
		t.Fatalf("%s: reference classic: %v", label, err)
	}
	assertSameRV(t, label+"/classic", m.Classic(), wantRV)

	wantSp, err := makespan.ReferenceEvaluateSpelde(scen, s)
	if err != nil {
		t.Fatalf("%s: reference spelde: %v", label, err)
	}
	gotSp := m.Spelde()
	if gotSp.Mean != wantSp.Mean || gotSp.Std != wantSp.Std {
		t.Fatalf("%s: spelde (%v,%v) != reference (%v,%v)",
			label, gotSp.Mean, gotSp.Std, wantSp.Mean, wantSp.Std)
	}

	wantSlacks := referenceSlacks(t, scen, s)
	gotSlacks := m.Slacks()
	if len(gotSlacks) != len(wantSlacks) {
		t.Fatalf("%s: slack length %d != %d", label, len(gotSlacks), len(wantSlacks))
	}
	for i := range wantSlacks {
		if gotSlacks[i] != wantSlacks[i] {
			t.Fatalf("%s: slack diverges at task %d: %g != %g",
				label, i, gotSlacks[i], wantSlacks[i])
		}
	}

	// End-to-end metric vector: compiled model vs the reference
	// FromDistribution on the (bit-identical) reference density.
	p := robustness.Params{Delta: 0.1, Gamma: 1.0003, GridSize: grid}
	gotM := m.Metrics(p)
	wantM, err := robustness.FromDistribution(scen, s, wantRV, p)
	if err != nil {
		t.Fatalf("%s: reference metrics: %v", label, err)
	}
	if gotM != wantM {
		t.Fatalf("%s: metric vector differs:\n  got  %+v\n  want %+v", label, gotM, wantM)
	}
}

// TestEvalModelMatchesReference sweeps all registered workload families
// × sizes × uncertainty levels × seeds. The n=1000 tier is quadratic
// work for the reference evaluators, so it runs only without -short
// (the weekly full CI job), one seed × one UL per family.
func TestEvalModelMatchesReference(t *testing.T) {
	sizes := []int{10, 100}
	if !testing.Short() {
		sizes = append(sizes, 1000)
	}
	uls := []float64{1.0, 1.5}
	seeds := []int64{1, 2, 3}
	for _, family := range experiment.FamilyNames() {
		for _, n := range sizes {
			cellULs, cellSeeds, schedsPer := uls, seeds, 2
			if n >= 1000 {
				cellULs, cellSeeds, schedsPer = uls[1:], seeds[:1], 1
			}
			for _, ul := range cellULs {
				for _, seed := range cellSeeds {
					spec := experiment.CaseSpec{
						Name: "equiv", Family: family, N: n, M: 4, UL: ul, Seed: seed,
					}
					scen, err := spec.BuildScenario()
					var se *experiment.SizeError
					if errors.As(err, &se) {
						continue // size off this family's grid
					}
					if err != nil {
						t.Fatalf("%s/n=%d: %v", family, n, err)
					}
					cache := makespan.NewEvalCache(scen, 64)
					rng := rand.New(rand.NewSource(seed * 977))
					for k := 0; k < schedsPer; k++ {
						label := family + "/n=" + itoa(n) + "/ul=" + ftoa(ul) +
							"/seed=" + itoa(int(seed)) + "/sched=" + itoa(k)
						s := heuristics.RandomSchedule(scen, rng)
						checkModelAgainstReferences(t, label, cache, s, 64)
					}
				}
			}
		}
	}
}

// TestEvalModelUnderULExtensions pins the compiled evaluators against
// the references on the §VIII scenario extensions, which exercise the
// per-task (TaskUL), per-processor (ProcUL) and custom-DurFn branches
// of the cache key.
func TestEvalModelUnderULExtensions(t *testing.T) {
	spec := experiment.CaseSpec{Name: "equiv-ext", Family: experiment.RandomFamily,
		N: 60, M: 4, UL: 1.2, Seed: 11}
	base, err := spec.BuildScenario()
	if err != nil {
		t.Fatal(err)
	}
	durfn := *base
	durfn.DurFn = func(min, ul float64) stochastic.Dist {
		return stochastic.Uniform{Lo: min, Hi: min * ul}
	}
	scens := map[string]*platform.Scenario{
		"variable-ul":  base.WithVariableUL(1.0, 2.0, rand.New(rand.NewSource(5))),
		"noisy-procs":  base.WithNoisyProcessors(1.02, 2.0),
		"custom-durfn": &durfn,
	}
	for name, scen := range scens {
		cache := makespan.NewEvalCache(scen, 64)
		rng := rand.New(rand.NewSource(21))
		for k := 0; k < 2; k++ {
			s := heuristics.RandomSchedule(scen, rng)
			checkModelAgainstReferences(t, name+"/sched="+itoa(k), cache, s, 64)
		}
	}
}

// uniformScen builds a scenario with constant ETC over a uniform
// zero-latency network.
func uniformScen(g *dag.Graph, m int, etcVal, ul float64) *platform.Scenario {
	n := g.N()
	etc := make([][]float64, n)
	for i := range etc {
		row := make([]float64, m)
		for j := range row {
			row[j] = etcVal
		}
		etc[i] = row
	}
	tau, lat := platform.NewUniformNetwork(m, 1, 0)
	return &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: m, ETC: etc, Tau: tau, Lat: lat},
		UL: ul,
	}
}

// TestEvalModelDegenerateInputs covers the evaluation edge cases:
// a single-task graph, an all-Dirac (UL = 1) scenario, and a
// zero-duration chain, each asserted exactly against the references.
func TestEvalModelDegenerateInputs(t *testing.T) {
	// Single task, no edges.
	single := uniformScen(dag.New(1), 2, 10, 1.4)
	s1 := schedule.New(1, 2)
	s1.Assign(0, 1)
	checkModelAgainstReferences(t, "single-task", makespan.NewEvalCache(single, 64), s1, 64)
	rv, err := makespan.EvaluateClassic(single, s1, 64)
	if err != nil {
		t.Fatal(err)
	}
	d := single.TaskDist(0, 1)
	if lo, _ := d.Support(); rv.Lo() != lo {
		t.Errorf("single-task support starts at %g, want %g", rv.Lo(), lo)
	}

	// All-Dirac: UL = 1 collapses every distribution to a constant.
	g := dag.New(4)
	for _, e := range [][2]dag.Task{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1], 3); err != nil {
			t.Fatal(err)
		}
	}
	det := uniformScen(g, 2, 10, 1)
	s2 := schedule.New(4, 2)
	s2.Assign(0, 0)
	s2.Assign(1, 0)
	s2.Assign(2, 1)
	s2.Assign(3, 0)
	checkModelAgainstReferences(t, "all-dirac", makespan.NewEvalCache(det, 64), s2, 64)
	rv, err = makespan.EvaluateClassic(det, s2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !rv.IsPoint() {
		t.Error("all-Dirac scenario must evaluate to a point distribution")
	}

	// Zero-duration chain: ETC = 0 keeps every duration Dirac(0) even
	// under UL > 1 (the default family is multiplicative).
	chain := dag.New(3)
	if err := chain.AddEdge(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := chain.AddEdge(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	zero := uniformScen(chain, 2, 0, 1.5)
	s3 := schedule.New(3, 2)
	s3.Assign(0, 0)
	s3.Assign(1, 1)
	s3.Assign(2, 0)
	checkModelAgainstReferences(t, "zero-chain", makespan.NewEvalCache(zero, 64), s3, 64)
	rv, err = makespan.EvaluateClassic(zero, s3, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !rv.IsPoint() || rv.Lo() != 0 {
		t.Errorf("zero-duration chain makespan = %v, want point at 0", rv)
	}
}

// TestEvalCacheConcurrentSchedules evaluates many schedules of one case
// in parallel against a single shared cache — the RunCaseOn access
// pattern — and requires every result to stay bit-identical to the
// reference (races in the cache or buffer recycling would corrupt
// densities; `go test -race` patrols the locking).
func TestEvalCacheConcurrentSchedules(t *testing.T) {
	spec := experiment.CaseSpec{Name: "conc", Family: experiment.CholeskyFamily,
		N: 35, M: 3, UL: 1.3, Seed: 13}
	scen, err := spec.BuildScenario()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	scheds := heuristics.RandomSchedules(scen, 16, rng)
	cache := makespan.NewEvalCache(scen, 64)
	got := make([]*stochastic.Numeric, len(scheds))
	var wg sync.WaitGroup
	for i := range scheds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := cache.Model(scheds[i])
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = m.Classic()
		}(i)
	}
	wg.Wait()
	for i, s := range scheds {
		want, err := makespan.ReferenceEvaluateClassic(scen, s, 64)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRV(t, "concurrent/"+itoa(i), got[i], want)
	}
}

// TestZeroMinCommMatchesMonteCarlo is the differential test of the
// corrected skip rule: a zero-latency network (every cross-processor
// link has minimum time 0) under an additive DurFn still delays
// cross-processor successors stochastically. The Monte-Carlo engine
// always sampled those links; the historical `minComm > 0` guard made
// the analytic evaluators silently drop them, under-reporting the
// makespan by one mean communication per cross-processor hop. With the
// corrected guard, classic and Spelde agree with Monte Carlo (and with
// the analytic sum) on a two-hop cross-processor chain.
func TestZeroMinCommMatchesMonteCarlo(t *testing.T) {
	g := dag.New(3)
	if err := g.AddEdge(0, 1, 5); err != nil { // volumes are irrelevant at τ = 0
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 5); err != nil {
		t.Fatal(err)
	}
	n := 3
	etc := make([][]float64, n)
	for i := range etc {
		etc[i] = []float64{10, 10}
	}
	tau, lat := platform.NewUniformNetwork(2, 0, 0) // τ = 0, latency = 0
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: 2, ETC: etc, Tau: tau, Lat: lat},
		UL: 1.5,
		// Additive noise: every duration and link takes its minimum
		// plus Uniform[0, (ul-1)] — a zero-min link averages 0.25.
		DurFn: func(min, ul float64) stochastic.Dist {
			return stochastic.Uniform{Lo: min, Hi: min + (ul - 1)}
		},
	}
	s := schedule.New(n, 2)
	s.Assign(0, 0)
	s.Assign(1, 1) // both edges cross processors
	s.Assign(2, 0)

	// Analytic expectation: 3 task durations (10.25 each) plus 2
	// cross-processor links (0.25 each) = 31.25.
	const want = 3*10.25 + 2*0.25

	rv, err := makespan.EvaluateClassic(scen, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := makespan.MonteCarlo(scen, s, 100000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(emp.Mean()-want) > 0.02 {
		t.Fatalf("MC mean %g, want %g: the ground truth itself lost the zero-min links", emp.Mean(), want)
	}
	// The historical guard evaluated this chain to mean 30.75 (it
	// dropped both links) — far outside the tolerance below.
	if math.Abs(rv.Mean()-emp.Mean()) > 0.05 {
		t.Errorf("classic mean %g diverges from MC %g: zero-min comm arcs dropped", rv.Mean(), emp.Mean())
	}
	sp, err := makespan.EvaluateSpelde(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.Mean-want) > 1e-9 {
		t.Errorf("Spelde mean %g, want exactly %g on a chain", sp.Mean, want)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func ftoa(f float64) string {
	if f == float64(int(f)) {
		return itoa(int(f))
	}
	return itoa(int(f)) + "." + itoa(int(f*10)%10)
}
