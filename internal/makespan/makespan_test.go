package makespan

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dag"
	"repro/internal/graphgen"
	"repro/internal/heuristics"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// uniformScenario builds a scenario with identical ETC for every task.
func uniformScenario(g *dag.Graph, m int, etcVal, ul float64) *platform.Scenario {
	n := g.N()
	etc := make([][]float64, n)
	for i := range etc {
		row := make([]float64, m)
		for j := range row {
			row[j] = etcVal
		}
		etc[i] = row
	}
	tau, lat := platform.NewUniformNetwork(m, 1, 0)
	return &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: m, ETC: etc, Tau: tau, Lat: lat},
		UL: ul,
	}
}

// allOnProc schedules every task of g on processor p in topological
// order.
func allOnProc(t *testing.T, g *dag.Graph, m, p int) *schedule.Schedule {
	t.Helper()
	s := schedule.New(g.N(), m)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range order {
		s.Assign(task, p)
	}
	return s
}

func TestClassicChainMatchesMonteCarlo(t *testing.T) {
	// A 4-task chain on one processor: makespan = sum of 4 Beta(2,5)
	// variables — classic evaluation is exact (up to discretization).
	g := graphgen.Chain(4, 0)
	scen := uniformScenario(g, 1, 10, 1.3)
	s := allOnProc(t, g, 1, 0)

	rv, err := EvaluateClassic(scen, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := MonteCarlo(scen, s, 100000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rv.Mean(), emp.Mean(), 0.05) {
		t.Errorf("classic mean %g vs MC %g", rv.Mean(), emp.Mean())
	}
	if !almostEqual(rv.StdDev(), emp.StdDev(), 0.05) {
		t.Errorf("classic std %g vs MC %g", rv.StdDev(), emp.StdDev())
	}
	// Support: [40, 52].
	if !almostEqual(rv.Lo(), 40, 0.3) || !almostEqual(rv.Hi(), 52, 0.3) {
		t.Errorf("support [%g,%g], want [40,52]", rv.Lo(), rv.Hi())
	}
}

func TestClassicJoinMatchesMonteCarlo(t *testing.T) {
	// Fig. 9-style join: 4 independent tasks on 4 procs feeding a sink;
	// independence is exact here (in-tree), so classic == MC.
	g := graphgen.Join(5, 0)
	scen := uniformScenario(g, 5, 10, 1.5)
	s := schedule.New(5, 5)
	for i := 0; i < 5; i++ {
		s.Assign(dag.Task(i), i)
	}
	rv, err := EvaluateClassic(scen, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := MonteCarlo(scen, s, 100000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rv.Mean(), emp.Mean(), 0.08) {
		t.Errorf("classic mean %g vs MC %g", rv.Mean(), emp.Mean())
	}
	if !almostEqual(rv.StdDev(), emp.StdDev(), 0.08) {
		t.Errorf("classic std %g vs MC %g", rv.StdDev(), emp.StdDev())
	}
}

func TestClassicDeterministicCase(t *testing.T) {
	// UL = 1: the makespan distribution collapses to the deterministic
	// makespan.
	g := graphgen.Chain(3, 5)
	scen := uniformScenario(g, 2, 10, 1)
	s := schedule.New(3, 2)
	s.Assign(0, 0)
	s.Assign(1, 1)
	s.Assign(2, 0)
	rv, err := EvaluateClassic(scen, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := schedule.NewSimulator(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.MinTiming().Makespan
	if !rv.IsPoint() {
		t.Error("deterministic case should be a point distribution")
	}
	if !almostEqual(rv.Mean(), want, 1e-9) {
		t.Errorf("deterministic makespan %g, want %g", rv.Mean(), want)
	}
}

func TestClassicRejectsInvalidSchedule(t *testing.T) {
	g := graphgen.Chain(3, 1)
	scen := uniformScenario(g, 2, 10, 1.1)
	if _, err := EvaluateClassic(scen, schedule.New(3, 2), 64); err == nil {
		t.Error("accepted incomplete schedule")
	}
}

func TestSpeldeChainMoments(t *testing.T) {
	// On a chain the Spelde moments are exact: sums of Beta moments.
	g := graphgen.Chain(5, 0)
	scen := uniformScenario(g, 1, 10, 1.4)
	s := allOnProc(t, g, 1, 0)
	res, err := EvaluateSpelde(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	d := scen.TaskDist(0, 0)
	wantMean := 5 * d.Mean()
	wantStd := math.Sqrt(5 * d.Variance())
	if !almostEqual(res.Mean, wantMean, 1e-9) {
		t.Errorf("Spelde mean = %g, want %g", res.Mean, wantMean)
	}
	if !almostEqual(res.Std, wantStd, 1e-9) {
		t.Errorf("Spelde std = %g, want %g", res.Std, wantStd)
	}
	rv := res.RV(64)
	if !almostEqual(rv.Mean(), wantMean, 0.1) {
		t.Errorf("Spelde RV mean = %g, want %g", rv.Mean(), wantMean)
	}
}

func TestClarkMaxKnownValues(t *testing.T) {
	// Max of two standard normals: mean = 1/sqrt(pi), var = 1 - 1/pi.
	mu, v := clarkMax(0, 1, 0, 1)
	if !almostEqual(mu, 1/math.Sqrt(math.Pi), 1e-9) {
		t.Errorf("Clark mean = %g, want %g", mu, 1/math.Sqrt(math.Pi))
	}
	if !almostEqual(v, 1-1/math.Pi, 1e-9) {
		t.Errorf("Clark var = %g, want %g", v, 1-1/math.Pi)
	}
	// Degenerate: max of constants.
	mu, v = clarkMax(3, 0, 7, 0)
	if mu != 7 || v != 0 {
		t.Errorf("Clark degenerate = (%g,%g), want (7,0)", mu, v)
	}
	// Widely separated: the larger dominates.
	mu, v = clarkMax(100, 1, 0, 1)
	if !almostEqual(mu, 100, 1e-6) || !almostEqual(v, 1, 1e-3) {
		t.Errorf("Clark separated = (%g,%g), want (100,1)", mu, v)
	}
}

func TestSpeldeAgreesWithMonteCarloOnRealCase(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graphgen.Cholesky(3, 10, 20, rng)
	tau, lat := platform.NewUniformNetwork(3, 1, 0)
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: 3, ETC: platform.GenerateETCUniform(g.N(), 3, 10, 20, rng), Tau: tau, Lat: lat},
		UL: 1.1,
	}
	res, err := heuristics.HEFT(scen)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := EvaluateSpelde(scen, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := MonteCarlo(scen, res.Schedule, 50000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sp.Mean, emp.Mean(), 0.02*emp.Mean()) {
		t.Errorf("Spelde mean %g vs MC %g", sp.Mean, emp.Mean())
	}
	if !almostEqual(sp.Std, emp.StdDev(), 0.5*emp.StdDev()+0.02) {
		t.Errorf("Spelde std %g vs MC %g", sp.Std, emp.StdDev())
	}
}

func TestDodinChainEqualsClassic(t *testing.T) {
	// A chain is fully series-reducible: Dodin and classic agree.
	g := graphgen.Chain(4, 0)
	scen := uniformScenario(g, 1, 10, 1.3)
	s := allOnProc(t, g, 1, 0)
	dod, err := EvaluateDodin(scen, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := EvaluateClassic(scen, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(dod.Mean(), cls.Mean(), 0.05) {
		t.Errorf("Dodin mean %g vs classic %g", dod.Mean(), cls.Mean())
	}
	if !almostEqual(dod.StdDev(), cls.StdDev(), 0.05) {
		t.Errorf("Dodin std %g vs classic %g", dod.StdDev(), cls.StdDev())
	}
}

func TestDodinForkJoin(t *testing.T) {
	// Fork-join is series-parallel: Dodin handles it without
	// duplication and should match Monte Carlo.
	g := graphgen.ForkJoin(3, 0)
	scen := uniformScenario(g, 3, 10, 1.5)
	s := schedule.New(5, 3)
	s.Assign(0, 0)
	s.Assign(1, 0)
	s.Assign(2, 1)
	s.Assign(3, 2)
	s.Assign(4, 0)
	dod, err := EvaluateDodin(scen, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := MonteCarlo(scen, s, 50000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(dod.Mean(), emp.Mean(), 0.15) {
		t.Errorf("Dodin mean %g vs MC %g", dod.Mean(), emp.Mean())
	}
	if !almostEqual(dod.StdDev(), emp.StdDev(), 0.15) {
		t.Errorf("Dodin std %g vs MC %g", dod.StdDev(), emp.StdDev())
	}
}

func TestDodinGeneralGraphCloseToClassic(t *testing.T) {
	// A non-SP random graph exercises the duplication path; Dodin and
	// classic make the same independence approximation and should stay
	// close.
	rng := rand.New(rand.NewSource(6))
	g, w := graphgen.Random(graphgen.DefaultRandomParams(15), rng)
	tau, lat := platform.NewUniformNetwork(3, 1, 0)
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: 3, ETC: platform.GenerateETCFromWeights(w, 3, 0.5, rng), Tau: tau, Lat: lat},
		UL: 1.1,
	}
	s := heuristics.RandomSchedule(scen, rng)
	dod, err := EvaluateDodin(scen, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := EvaluateClassic(scen, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(dod.Mean(), cls.Mean(), 0.05*cls.Mean()) {
		t.Errorf("Dodin mean %g vs classic %g", dod.Mean(), cls.Mean())
	}
}

func TestEvaluateDispatch(t *testing.T) {
	g := graphgen.Chain(3, 0)
	scen := uniformScenario(g, 1, 10, 1.2)
	s := allOnProc(t, g, 1, 0)
	for _, m := range []Method{Classic, Dodin, Spelde} {
		rv, err := Evaluate(scen, s, m, 64)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !almostEqual(rv.Mean(), 3*scen.TaskDist(0, 0).Mean(), 0.2) {
			t.Errorf("%v mean = %g", m, rv.Mean())
		}
	}
	if _, err := Evaluate(scen, s, Method(99), 64); err == nil {
		t.Error("unknown method accepted")
	}
	if Classic.String() != "classic" || Dodin.String() != "dodin" || Spelde.String() != "spelde" {
		t.Error("method names wrong")
	}
	if Method(99).String() == "" {
		t.Error("unknown method should still print")
	}
}

func TestClassicOnRandomScheduleAgainstMC(t *testing.T) {
	// End-to-end accuracy check mirroring Fig. 1's small-graph regime:
	// for a 10-task random graph the independence assumption is good.
	rng := rand.New(rand.NewSource(7))
	g, w := graphgen.Random(graphgen.DefaultRandomParams(10), rng)
	tau, lat := platform.NewUniformNetwork(3, 1, 0)
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: 3, ETC: platform.GenerateETCFromWeights(w, 3, 0.5, rng), Tau: tau, Lat: lat},
		UL: 1.1,
	}
	s := heuristics.RandomSchedule(scen, rng)
	rv, err := EvaluateClassic(scen, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := MonteCarlo(scen, s, 50000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rv.Mean(), emp.Mean(), 0.01*emp.Mean()) {
		t.Errorf("classic mean %g vs MC %g", rv.Mean(), emp.Mean())
	}
	if !almostEqual(rv.StdDev(), emp.StdDev(), 0.35*emp.StdDev()) {
		t.Errorf("classic std %g vs MC %g", rv.StdDev(), emp.StdDev())
	}
}

// MonteCarlo (kernel, exact mode) must remain byte-identical to the
// per-sample reference engine, and the table mode must agree in
// distribution.
func TestMonteCarloKernelModes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graphgen.Cholesky(3, 10, 20, rng)
	tau, lat := platform.NewUniformNetwork(3, 1, 0)
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: 3, ETC: platform.GenerateETCUniform(g.N(), 3, 10, 20, rng), Tau: tau, Lat: lat},
		UL: 1.2,
	}
	s := heuristics.RandomSchedule(scen, rng)
	sim, err := schedule.NewSimulator(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Realizations(4000, 11)
	sort.Float64s(want)
	emp, err := MonteCarlo(scen, s, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range emp.Sorted() {
		if x != want[i] {
			t.Fatalf("MonteCarlo diverges from the reference engine at %d", i)
		}
	}
	fast, err := MonteCarloWith(scen, s, 4000, 11, MCOptions{Sampler: stochastic.SamplerTable})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(fast.Mean()-emp.Mean()) / emp.Mean(); d > 0.01 {
		t.Errorf("table-mode mean off by %.3g%%", 100*d)
	}
	st, err := MonteCarloStats(scen, s, 4000, 11, MCOptions{Sampler: stochastic.SamplerTable})
	if err != nil {
		t.Fatal(err)
	}
	// Welford/block-merge summation order differs from the sorted
	// sample sum, so agreement is to rounding, not bit-exact.
	if st.Count() != 4000 || !almostEqual(st.Mean(), fast.Mean(), 1e-9*fast.Mean()) {
		t.Errorf("streaming stats disagree with samples: %g vs %g", st.Mean(), fast.Mean())
	}
}
