package makespan

import (
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

// MCOptions tunes the Monte-Carlo engine. The zero value reproduces
// the historical behaviour exactly: the compiled kernel in exact
// sampler mode at the default block size, which is bit-identical to
// the per-sample reference engine.
type MCOptions struct {
	// Sampler selects the realization samplers; SamplerTable trades
	// bit-compatibility for table-driven Beta sampling (several times
	// faster, within 1/stochastic.BetaTableSize in Kolmogorov
	// distance).
	Sampler stochastic.SamplerMode
	// BlockSize is the realizations-per-batch granularity
	// (schedule.DefaultBlockSize when <= 0). Results depend on it:
	// each block owns one RNG stream.
	BlockSize int
	// Workers bounds the kernel's goroutines; results are identical
	// for every value.
	Workers int
}

func (o MCOptions) kernelOptions() schedule.KernelOptions {
	return schedule.KernelOptions{BlockSize: o.BlockSize, Workers: o.Workers}
}

// MonteCarloWith draws count realizations of the schedule through the
// compiled batch kernel and returns the empirical makespan
// distribution.
func MonteCarloWith(scen *platform.Scenario, s *schedule.Schedule, count int, seed int64, opt MCOptions) (*stochastic.Empirical, error) {
	sim, err := schedule.NewSimulator(scen, s)
	if err != nil {
		return nil, err
	}
	return sim.Compile(opt.Sampler).Empirical(count, seed, opt.kernelOptions()), nil
}

// MonteCarloStats streams count realizations into the kernel's
// moment/histogram accumulator without materializing the sample
// slice — the metric path for realization counts where a sorted
// 100 000-float copy per schedule would dominate memory traffic.
func MonteCarloStats(scen *platform.Scenario, s *schedule.Schedule, count int, seed int64, opt MCOptions) (*schedule.MCStats, error) {
	sim, err := schedule.NewSimulator(scen, s)
	if err != nil {
		return nil, err
	}
	return sim.Compile(opt.Sampler).Stats(count, seed, 0, opt.kernelOptions()), nil
}
