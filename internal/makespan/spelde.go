package makespan

import (
	"math"

	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

// SpeldeResult is the makespan summary produced by Spelde's method:
// every random variable is reduced to its mean and standard deviation
// and only those two moments are propagated (no convolutions).
type SpeldeResult struct {
	Mean, Std float64
}

// RV materializes the result as a normal numeric variable (the CLT
// justification of the method), suitable wherever a full distribution
// is expected.
func (r SpeldeResult) RV(gridSize int) *stochastic.Numeric {
	if r.Std <= 0 {
		return stochastic.NewPoint(r.Mean)
	}
	return stochastic.FromDist(stochastic.Normal{Mu: r.Mean, Sigma: r.Std}, gridSize)
}

// moments extracts the first two moments of a distribution.
func moments(d stochastic.Dist) (mu, variance float64) {
	return d.Mean(), d.Variance()
}

// clarkMax returns the first two moments of max(X, Y) for independent
// normals X ~ (mu1, var1) and Y ~ (mu2, var2), by Clark's (1961)
// formulas.
func clarkMax(mu1, var1, mu2, var2 float64) (mu, variance float64) {
	a2 := var1 + var2
	if a2 <= 0 {
		// Both degenerate.
		if mu1 >= mu2 {
			return mu1, 0
		}
		return mu2, 0
	}
	a := math.Sqrt(a2)
	alpha := (mu1 - mu2) / a
	phi := math.Exp(-alpha*alpha/2) / math.Sqrt(2*math.Pi)
	Phi := 0.5 * (1 + math.Erf(alpha/math.Sqrt2))
	mu = mu1*Phi + mu2*(1-Phi) + a*phi
	second := (mu1*mu1+var1)*Phi + (mu2*mu2+var2)*(1-Phi) + (mu1+mu2)*a*phi
	variance = second - mu*mu
	if variance < 0 {
		variance = 0
	}
	return mu, variance
}

// EvaluateSpelde propagates (µ, σ²) through the disjunctive graph:
// sums add moments, maxima use Clark's normal approximation. This is
// the fast method of Ludwig, Möhring & Stork's study that the paper
// evaluates. It runs on the compiled evaluation model; callers with
// many schedules per scenario should hold an EvalCache and call
// Model(s).Spelde() directly.
func EvaluateSpelde(scen *platform.Scenario, s *schedule.Schedule) (SpeldeResult, error) {
	m, err := NewEvalCache(scen, 0).Model(s)
	if err != nil {
		return SpeldeResult{}, err
	}
	return m.Spelde(), nil
}

// ReferenceEvaluateSpelde is the retained uncompiled implementation:
// it rebuilds the disjunctive graph and re-derives every moment per
// call. The equivalence harness holds EvalModel.Spelde equal to it.
func ReferenceEvaluateSpelde(scen *platform.Scenario, s *schedule.Schedule) (SpeldeResult, error) {
	ctx, err := newEvalContext(scen, s)
	if err != nil {
		return SpeldeResult{}, err
	}
	n := scen.G.N()
	mu := make([]float64, n)
	variance := make([]float64, n)
	for _, t := range ctx.order {
		var sMu, sVar float64
		first := true
		for _, p := range ctx.dg.Pred(t) {
			aMu, aVar := mu[p], variance[p]
			if d, skip := ctx.commDist(p, t); !skip {
				cMu, cVar := moments(d)
				aMu += cMu
				aVar += cVar
			}
			if first {
				sMu, sVar = aMu, aVar
				first = false
			} else {
				sMu, sVar = clarkMax(sMu, sVar, aMu, aVar)
			}
		}
		if first {
			sMu, sVar = 0, 0 // entry task starts at time 0
		}
		dMu, dVar := moments(scen.TaskDist(t, s.Proc[t]))
		mu[t] = sMu + dMu
		variance[t] = sVar + dVar
	}
	var outMu, outVar float64
	firstSink := true
	for _, t := range ctx.dg.Sinks() {
		if firstSink {
			outMu, outVar = mu[t], variance[t]
			firstSink = false
		} else {
			outMu, outVar = clarkMax(outMu, outVar, mu[t], variance[t])
		}
	}
	return SpeldeResult{Mean: outMu, Std: math.Sqrt(outVar)}, nil
}
