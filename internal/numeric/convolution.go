package numeric

// ConvolveDirect computes the full linear convolution of a and b by the
// naive O(len(a)·len(b)) algorithm. The result has length
// len(a)+len(b)-1. It is exact up to floating-point rounding and is the
// reference implementation for the FFT-based variants.
func ConvolveDirect(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	return convolveDirectInto(make([]float64, len(a)+len(b)-1), a, b)
}

// convolveDirectInto writes the full convolution into out, which must
// have length len(a)+len(b)-1 (its prior contents are overwritten).
func convolveDirectInto(out, a, b []float64) []float64 {
	for i := range out {
		out[i] = 0
	}
	for i, av := range a {
		if av == 0 { //reprovet:allow floateq sparse skip of exactly-zero mass bins; near-zero bins must still convolve
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// ConvScratch holds the FFT work arrays of the convolution routines so
// hot loops can convolve without allocating. The zero value is ready to
// use.
type ConvScratch struct {
	are, aim, bre, bim []float64
}

func (ws *ConvScratch) grow(n int) (are, aim, bre, bim []float64) {
	if cap(ws.are) < n {
		ws.are = make([]float64, n)
		ws.aim = make([]float64, n)
		ws.bre = make([]float64, n)
		ws.bim = make([]float64, n)
	}
	return ws.are[:n], ws.aim[:n], ws.bre[:n], ws.bim[:n]
}

// ConvolveFFT computes the full linear convolution of a and b using a
// single zero-padded FFT of size NextPow2(len(a)+len(b)-1).
func ConvolveFFT(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	return convolveFFTInto(make([]float64, outLen), a, b, &ConvScratch{})
}

// convolveFFTInto is ConvolveFFT writing into out (length
// len(a)+len(b)-1) using ws for the transforms. Bit-identical to
// ConvolveFFT.
func convolveFFTInto(out, a, b []float64, ws *ConvScratch) []float64 {
	outLen := len(a) + len(b) - 1
	n := NextPow2(outLen)
	are, aim, bre, bim := ws.grow(n)
	for i := range are {
		are[i], aim[i], bre[i], bim[i] = 0, 0, 0, 0
	}
	copy(are, a)
	copy(bre, b)
	// Errors are impossible here: lengths are equal powers of two.
	_ = FFT(are, aim, false)
	_ = FFT(bre, bim, false)
	for i := 0; i < n; i++ {
		re := are[i]*bre[i] - aim[i]*bim[i]
		im := are[i]*bim[i] + aim[i]*bre[i]
		are[i], aim[i] = re, im
	}
	_ = FFT(are, aim, true)
	copy(out, are[:outLen])
	return out
}

// ConvolveOverlapAdd computes the full linear convolution of signal with
// kernel using the overlap-add method: the signal is cut into blocks,
// each block is convolved with the kernel by FFT, and the partial results
// are summed with the proper offsets. This is the optimization the paper
// names for convolving long densities with short kernels.
//
// blockSize controls the signal block length; values <= 0 select a block
// size automatically (4x the kernel length, rounded to a power of two).
func ConvolveOverlapAdd(signal, kernel []float64, blockSize int) []float64 {
	if len(signal) == 0 || len(kernel) == 0 {
		return nil
	}
	out := make([]float64, len(signal)+len(kernel)-1)
	return convolveOverlapAddInto(out, signal, kernel, blockSize, &ConvScratch{})
}

// convolveOverlapAddInto is ConvolveOverlapAdd writing into out (length
// len(signal)+len(kernel)-1) using ws for the transforms. Bit-identical
// to ConvolveOverlapAdd.
func convolveOverlapAddInto(out, signal, kernel []float64, blockSize int, ws *ConvScratch) []float64 {
	if len(kernel) > len(signal) {
		signal, kernel = kernel, signal
	}
	if blockSize <= 0 {
		blockSize = NextPow2(4 * len(kernel))
	}
	if blockSize < len(kernel) {
		blockSize = NextPow2(len(kernel))
	}
	outLen := len(signal) + len(kernel) - 1
	for i := range out {
		out[i] = 0
	}
	fftLen := NextPow2(blockSize + len(kernel) - 1)

	// Pre-transform the kernel once.
	kre, kim, bre, bim := ws.grow(fftLen)
	for i := 0; i < fftLen; i++ {
		kre[i], kim[i] = 0, 0
	}
	copy(kre, kernel)
	_ = FFT(kre, kim, false)

	for start := 0; start < len(signal); start += blockSize {
		end := start + blockSize
		if end > len(signal) {
			end = len(signal)
		}
		for i := range bre {
			bre[i], bim[i] = 0, 0
		}
		copy(bre, signal[start:end])
		_ = FFT(bre, bim, false)
		for i := 0; i < fftLen; i++ {
			re := bre[i]*kre[i] - bim[i]*kim[i]
			im := bre[i]*kim[i] + bim[i]*kre[i]
			bre[i], bim[i] = re, im
		}
		_ = FFT(bre, bim, true)
		segLen := end - start + len(kernel) - 1
		for i := 0; i < segLen && start+i < outLen; i++ {
			out[start+i] += bre[i]
		}
	}
	return out
}

// directKernelMax is the largest "short side" for which the direct
// algorithm beats the FFT strategies. The makespan evaluation's hot
// shape — a work grid of thousands of points convolved with a narrow
// duration or communication kernel of a few dozen — sits far below it
// (measured: direct wins up to ~128-point kernels against overlap-add
// on 8192-point signals), and the direct sum is exact, so the cutoff
// also removes FFT round-off from the narrow-kernel path.
const directKernelMax = 96

// Convolve picks a convolution strategy based on operand sizes: direct
// when either operand is short or the product is small (the direct sum
// is both faster and exact there), overlap-add when one operand is much
// shorter than the other, plain FFT otherwise.
func Convolve(a, b []float64) []float64 {
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return nil
	}
	return ConvolveInto(make([]float64, la+lb-1), a, b, &ConvScratch{})
}

// ConvolveInto is Convolve writing into out, which must have length
// len(a)+len(b)-1; ws carries the FFT scratch. The strategy choice and
// the arithmetic are identical to Convolve, so the results agree
// bit-for-bit.
func ConvolveInto(out, a, b []float64, ws *ConvScratch) []float64 {
	la, lb := len(a), len(b)
	switch {
	case la == 0 || lb == 0:
		return nil
	case la <= directKernelMax || lb <= directKernelMax || la*lb <= 4096:
		return convolveDirectInto(out, a, b)
	case la >= 8*lb || lb >= 8*la:
		return convolveOverlapAddInto(out, a, b, 0, ws)
	default:
		return convolveFFTInto(out, a, b, ws)
	}
}
