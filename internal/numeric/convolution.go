package numeric

// ConvolveDirect computes the full linear convolution of a and b by the
// naive O(len(a)·len(b)) algorithm. The result has length
// len(a)+len(b)-1. It is exact up to floating-point rounding and is the
// reference implementation for the FFT-based variants.
func ConvolveDirect(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// ConvolveFFT computes the full linear convolution of a and b using a
// single zero-padded FFT of size NextPow2(len(a)+len(b)-1).
func ConvolveFFT(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	n := NextPow2(outLen)
	are := make([]float64, n)
	aim := make([]float64, n)
	bre := make([]float64, n)
	bim := make([]float64, n)
	copy(are, a)
	copy(bre, b)
	// Errors are impossible here: lengths are equal powers of two.
	_ = FFT(are, aim, false)
	_ = FFT(bre, bim, false)
	for i := 0; i < n; i++ {
		re := are[i]*bre[i] - aim[i]*bim[i]
		im := are[i]*bim[i] + aim[i]*bre[i]
		are[i], aim[i] = re, im
	}
	_ = FFT(are, aim, true)
	return are[:outLen]
}

// ConvolveOverlapAdd computes the full linear convolution of signal with
// kernel using the overlap-add method: the signal is cut into blocks,
// each block is convolved with the kernel by FFT, and the partial results
// are summed with the proper offsets. This is the optimization the paper
// names for convolving long densities with short kernels.
//
// blockSize controls the signal block length; values <= 0 select a block
// size automatically (4x the kernel length, rounded to a power of two).
func ConvolveOverlapAdd(signal, kernel []float64, blockSize int) []float64 {
	if len(signal) == 0 || len(kernel) == 0 {
		return nil
	}
	if len(kernel) > len(signal) {
		signal, kernel = kernel, signal
	}
	if blockSize <= 0 {
		blockSize = NextPow2(4 * len(kernel))
	}
	if blockSize < len(kernel) {
		blockSize = NextPow2(len(kernel))
	}
	outLen := len(signal) + len(kernel) - 1
	out := make([]float64, outLen)
	fftLen := NextPow2(blockSize + len(kernel) - 1)

	// Pre-transform the kernel once.
	kre := make([]float64, fftLen)
	kim := make([]float64, fftLen)
	copy(kre, kernel)
	_ = FFT(kre, kim, false)

	bre := make([]float64, fftLen)
	bim := make([]float64, fftLen)
	for start := 0; start < len(signal); start += blockSize {
		end := start + blockSize
		if end > len(signal) {
			end = len(signal)
		}
		for i := range bre {
			bre[i], bim[i] = 0, 0
		}
		copy(bre, signal[start:end])
		_ = FFT(bre, bim, false)
		for i := 0; i < fftLen; i++ {
			re := bre[i]*kre[i] - bim[i]*kim[i]
			im := bre[i]*kim[i] + bim[i]*kre[i]
			bre[i], bim[i] = re, im
		}
		_ = FFT(bre, bim, true)
		segLen := end - start + len(kernel) - 1
		for i := 0; i < segLen && start+i < outLen; i++ {
			out[start+i] += bre[i]
		}
	}
	return out
}

// Convolve picks a convolution strategy based on operand sizes: direct
// for small products, overlap-add when one operand is much shorter than
// the other, plain FFT otherwise.
func Convolve(a, b []float64) []float64 {
	la, lb := len(a), len(b)
	switch {
	case la == 0 || lb == 0:
		return nil
	case la*lb <= 4096:
		return ConvolveDirect(a, b)
	case la >= 8*lb || lb >= 8*la:
		return ConvolveOverlapAdd(a, b, 0)
	default:
		return ConvolveFFT(a, b)
	}
}
