// Package numeric provides the numerical-analysis substrate the original
// study obtained from the GSL: FFT, convolution (direct, FFT-based and
// overlap-add), composite Simpson integration, natural cubic splines,
// smoothing and a handful of summation/statistics helpers.
//
// Everything operates on float64 slices; no external dependencies.
package numeric

import (
	"fmt"
	"math"
	"math/bits"
)

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of the complex sequence held in re and im. len(re) must equal
// len(im) and be a power of two. If inverse is true the inverse transform
// is computed (including the 1/n scaling).
func FFT(re, im []float64, inverse bool) error {
	n := len(re)
	if len(im) != n {
		return fmt.Errorf("numeric: FFT length mismatch %d != %d", n, len(im))
	}
	if !IsPow2(n) {
		return fmt.Errorf("numeric: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return nil
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			curRe, curIm := 1.0, 0.0
			half := length / 2
			for k := 0; k < half; k++ {
				i, j := start+k, start+k+half
				tRe := re[j]*curRe - im[j]*curIm
				tIm := re[j]*curIm + im[j]*curRe
				re[j], im[j] = re[i]-tRe, im[i]-tIm
				re[i], im[i] = re[i]+tRe, im[i]+tIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
	if inverse {
		inv := 1 / float64(n)
		for i := range re {
			re[i] *= inv
			im[i] *= inv
		}
	}
	return nil
}
