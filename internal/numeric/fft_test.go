package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {63, 64}, {64, 64}, {65, 128},
	}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Errorf("NextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false, want true", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true, want false", n)
		}
	}
}

func TestFFTLengthErrors(t *testing.T) {
	if err := FFT(make([]float64, 3), make([]float64, 3), false); err == nil {
		t.Error("FFT accepted non-power-of-two length")
	}
	if err := FFT(make([]float64, 4), make([]float64, 2), false); err == nil {
		t.Error("FFT accepted mismatched lengths")
	}
}

func TestFFTKnownValues(t *testing.T) {
	// DFT of [1,0,0,0] is all ones.
	re := []float64{1, 0, 0, 0}
	im := make([]float64, 4)
	if err := FFT(re, im, false); err != nil {
		t.Fatal(err)
	}
	for i := range re {
		if !almostEqual(re[i], 1, 1e-12) || !almostEqual(im[i], 0, 1e-12) {
			t.Errorf("impulse FFT bin %d = (%g,%g), want (1,0)", i, re[i], im[i])
		}
	}
	// DFT of constant signal concentrates in bin 0.
	re = []float64{2, 2, 2, 2}
	im = make([]float64, 4)
	if err := FFT(re, im, false); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(re[0], 8, 1e-12) {
		t.Errorf("constant FFT bin0 = %g, want 8", re[0])
	}
	for i := 1; i < 4; i++ {
		if !almostEqual(re[i], 0, 1e-12) || !almostEqual(im[i], 0, 1e-12) {
			t.Errorf("constant FFT bin %d = (%g,%g), want 0", i, re[i], im[i])
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 8, 64, 256} {
		re := make([]float64, n)
		im := make([]float64, n)
		orig := make([]float64, n)
		for i := range re {
			re[i] = rng.NormFloat64()
			orig[i] = re[i]
		}
		if err := FFT(re, im, false); err != nil {
			t.Fatal(err)
		}
		if err := FFT(re, im, true); err != nil {
			t.Fatal(err)
		}
		for i := range re {
			if !almostEqual(re[i], orig[i], 1e-9) || !almostEqual(im[i], 0, 1e-9) {
				t.Fatalf("n=%d: round trip [%d] = (%g,%g), want (%g,0)", n, i, re[i], im[i], orig[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 128
	re := make([]float64, n)
	im := make([]float64, n)
	var timeEnergy float64
	for i := range re {
		re[i] = rng.Float64() - 0.5
		timeEnergy += re[i] * re[i]
	}
	if err := FFT(re, im, false); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for i := range re {
		freqEnergy += re[i]*re[i] + im[i]*im[i]
	}
	freqEnergy /= float64(n)
	if !almostEqual(timeEnergy, freqEnergy, 1e-9) {
		t.Errorf("Parseval violated: time %g vs freq %g", timeEnergy, freqEnergy)
	}
}

func TestConvolveDirectKnown(t *testing.T) {
	got := ConvolveDirect([]float64{1, 2, 3}, []float64{4, 5})
	want := []float64{4, 13, 22, 15}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("conv[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if ConvolveDirect(nil, []float64{1}) != nil {
		t.Error("direct: expected nil for empty input")
	}
	if ConvolveFFT(nil, []float64{1}) != nil {
		t.Error("fft: expected nil for empty input")
	}
	if ConvolveOverlapAdd(nil, []float64{1}, 0) != nil {
		t.Error("overlap-add: expected nil for empty input")
	}
	if Convolve([]float64{1}, nil) != nil {
		t.Error("auto: expected nil for empty input")
	}
}

// Property: all convolution implementations agree with the direct one.
func TestConvolveImplementationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		la := 1 + rng.Intn(200)
		lb := 1 + rng.Intn(60)
		a := make([]float64, la)
		b := make([]float64, lb)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ref := ConvolveDirect(a, b)
		for name, got := range map[string][]float64{
			"fft":         ConvolveFFT(a, b),
			"overlap-add": ConvolveOverlapAdd(a, b, 0),
			"auto":        Convolve(a, b),
		} {
			if len(got) != len(ref) {
				t.Fatalf("%s: length %d, want %d", name, len(got), len(ref))
			}
			for i := range ref {
				if !almostEqual(got[i], ref[i], 1e-8) {
					t.Fatalf("%s trial %d: conv[%d] = %g, want %g", name, trial, i, got[i], ref[i])
				}
			}
		}
	}
}

// Property: convolution preserves total mass (sum of product of sums).
func TestConvolveMassProperty(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		rngA := rand.New(rand.NewSource(seedA))
		rngB := rand.New(rand.NewSource(seedB))
		a := make([]float64, 1+rngA.Intn(100))
		b := make([]float64, 1+rngB.Intn(100))
		var sa, sb float64
		for i := range a {
			a[i] = rngA.Float64()
			sa += a[i]
		}
		for i := range b {
			b[i] = rngB.Float64()
			sb += b[i]
		}
		c := Convolve(a, b)
		return almostEqual(KahanSum(c), sa*sb, 1e-6*(1+sa*sb))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConvolveOverlapAddBlockSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 300)
	b := make([]float64, 17)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ref := ConvolveDirect(a, b)
	for _, bs := range []int{1, 8, 16, 32, 100, 1024} {
		got := ConvolveOverlapAdd(a, b, bs)
		for i := range ref {
			if !almostEqual(got[i], ref[i], 1e-8) {
				t.Fatalf("blockSize=%d: conv[%d] = %g, want %g", bs, i, got[i], ref[i])
			}
		}
	}
}

func TestConvolveKernelLongerThanSignal(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4, 5, 6, 7}
	ref := ConvolveDirect(a, b)
	got := ConvolveOverlapAdd(a, b, 0)
	for i := range ref {
		if !almostEqual(got[i], ref[i], 1e-9) {
			t.Fatalf("conv[%d] = %g, want %g", i, got[i], ref[i])
		}
	}
}
