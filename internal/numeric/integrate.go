package numeric

// SimpsonUniform integrates samples of a function taken on a uniform grid
// with spacing h, using composite Simpson's rule. When the number of
// intervals is odd the final interval is handled with the trapezoidal
// rule. len(y) must be >= 2.
func SimpsonUniform(y []float64, h float64) float64 {
	n := len(y)
	switch {
	case n < 2:
		return 0
	case n == 2:
		return h * (y[0] + y[1]) / 2
	}
	intervals := n - 1
	end := n
	var tail float64
	if intervals%2 == 1 {
		// Peel off one trapezoid so Simpson sees an even interval count.
		tail = h * (y[n-2] + y[n-1]) / 2
		end = n - 1
	}
	sum := y[0] + y[end-1]
	for i := 1; i < end-1; i++ {
		if i%2 == 1 {
			sum += 4 * y[i]
		} else {
			sum += 2 * y[i]
		}
	}
	return h/3*sum + tail
}

// TrapezoidUniform integrates uniform-grid samples with the composite
// trapezoidal rule.
func TrapezoidUniform(y []float64, h float64) float64 {
	if len(y) < 2 {
		return 0
	}
	sum := (y[0] + y[len(y)-1]) / 2
	for _, v := range y[1 : len(y)-1] {
		sum += v
	}
	return sum * h
}

// CumTrapezoid returns the running trapezoidal integral of uniform-grid
// samples: out[i] = integral of y from x[0] to x[i]. out[0] = 0.
func CumTrapezoid(y []float64, h float64) []float64 {
	return CumTrapezoidInto(make([]float64, len(y)), y, h)
}

// CumTrapezoidInto is CumTrapezoid writing into a caller-owned slice of
// length len(y); prior contents are overwritten.
func CumTrapezoidInto(out, y []float64, h float64) []float64 {
	if len(out) > 0 {
		out[0] = 0
	}
	for i := 1; i < len(y); i++ {
		out[i] = out[i-1] + h*(y[i-1]+y[i])/2
	}
	return out
}

// SimpsonFunc integrates f over [a,b] with n subintervals (rounded up to
// even) using composite Simpson's rule.
func SimpsonFunc(f func(float64) float64, a, b float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return h / 3 * sum
}

// Derivative returns the numerical derivative of uniform-grid samples
// using central differences in the interior and one-sided differences at
// the boundaries.
func Derivative(y []float64, h float64) []float64 {
	n := len(y)
	out := make([]float64, n)
	if n < 2 || h == 0 { //reprovet:allow floateq degenerate step guard: only an exact zero divides by zero
		return out
	}
	out[0] = (y[1] - y[0]) / h
	out[n-1] = (y[n-1] - y[n-2]) / h
	for i := 1; i < n-1; i++ {
		out[i] = (y[i+1] - y[i-1]) / (2 * h)
	}
	return out
}
