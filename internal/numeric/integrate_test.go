package numeric

import (
	"math"
	"testing"
)

func TestSimpsonUniformPolynomial(t *testing.T) {
	// Simpson is exact for cubics.
	n := 65
	h := 1.0 / float64(n-1)
	y := make([]float64, n)
	for i := range y {
		x := float64(i) * h
		y[i] = x*x*x - 2*x + 1
	}
	want := 0.25 - 1.0 + 1.0 // integral over [0,1]
	if got := SimpsonUniform(y, h); !almostEqual(got, want, 1e-12) {
		t.Errorf("Simpson cubic = %g, want %g", got, want)
	}
}

func TestSimpsonUniformOddIntervals(t *testing.T) {
	// 4 points = 3 intervals: Simpson + trailing trapezoid.
	y := []float64{0, 1, 2, 3} // f(x)=x on grid h=1, integral over [0,3] = 4.5
	if got := SimpsonUniform(y, 1); !almostEqual(got, 4.5, 1e-12) {
		t.Errorf("Simpson linear odd = %g, want 4.5", got)
	}
}

func TestSimpsonUniformSmall(t *testing.T) {
	if got := SimpsonUniform([]float64{5}, 1); got != 0 {
		t.Errorf("single sample = %g, want 0", got)
	}
	if got := SimpsonUniform([]float64{1, 3}, 2); !almostEqual(got, 4, 1e-12) {
		t.Errorf("two samples = %g, want 4", got)
	}
}

func TestSimpsonSinAccuracy(t *testing.T) {
	n := 129
	h := math.Pi / float64(n-1)
	y := make([]float64, n)
	for i := range y {
		y[i] = math.Sin(float64(i) * h)
	}
	if got := SimpsonUniform(y, h); !almostEqual(got, 2, 1e-8) {
		t.Errorf("Simpson sin = %g, want 2", got)
	}
}

func TestTrapezoidUniform(t *testing.T) {
	y := []float64{0, 1, 2, 3}
	if got := TrapezoidUniform(y, 1); !almostEqual(got, 4.5, 1e-12) {
		t.Errorf("trapezoid = %g, want 4.5", got)
	}
	if got := TrapezoidUniform([]float64{1}, 1); got != 0 {
		t.Errorf("trapezoid single = %g, want 0", got)
	}
}

func TestCumTrapezoid(t *testing.T) {
	y := []float64{1, 1, 1, 1}
	cum := CumTrapezoid(y, 0.5)
	want := []float64{0, 0.5, 1.0, 1.5}
	for i := range want {
		if !almostEqual(cum[i], want[i], 1e-12) {
			t.Errorf("cum[%d] = %g, want %g", i, cum[i], want[i])
		}
	}
}

func TestSimpsonFunc(t *testing.T) {
	got := SimpsonFunc(func(x float64) float64 { return math.Exp(x) }, 0, 1, 33)
	if want := math.E - 1; !almostEqual(got, want, 1e-8) {
		t.Errorf("SimpsonFunc exp = %g, want %g", got, want)
	}
	// Odd n gets rounded up rather than mis-integrating.
	got = SimpsonFunc(func(x float64) float64 { return x }, 0, 2, 3)
	if !almostEqual(got, 2, 1e-12) {
		t.Errorf("SimpsonFunc odd n = %g, want 2", got)
	}
}

func TestDerivative(t *testing.T) {
	n := 11
	h := 0.1
	y := make([]float64, n)
	for i := range y {
		x := float64(i) * h
		y[i] = x * x
	}
	d := Derivative(y, h)
	// Central differences are exact for quadratics in the interior.
	for i := 1; i < n-1; i++ {
		want := 2 * float64(i) * h
		if !almostEqual(d[i], want, 1e-10) {
			t.Errorf("d[%d] = %g, want %g", i, d[i], want)
		}
	}
	if len(Derivative([]float64{1}, 0.1)) != 1 {
		t.Error("derivative of singleton should have length 1")
	}
}
