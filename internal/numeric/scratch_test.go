package numeric

import (
	"math/rand"
	"testing"
)

// The scratch-carrying convolution entry points must be bit-identical
// to their allocating counterparts — they are what lets the compiled
// evaluation layer claim bit-equality with the reference evaluators.
func TestConvolveIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][2]int{
		{5, 5}, {64, 64}, {64, 5}, {500, 64}, {1000, 3},
		{4096, 16}, {4096, 200}, {300, 300}, {1, 1}, {2, 7},
	}
	ws := &ConvScratch{} // reused across shapes to exercise staleness
	for _, sh := range shapes {
		a := make([]float64, sh[0])
		b := make([]float64, sh[1])
		for i := range a {
			a[i] = rng.Float64()
		}
		for i := range b {
			b[i] = rng.Float64()
		}
		want := Convolve(a, b)
		got := ConvolveInto(make([]float64, len(a)+len(b)-1), a, b, ws)
		if len(got) != len(want) {
			t.Fatalf("%v: length %d != %d", sh, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: ConvolveInto diverges at %d: %g != %g", sh, i, got[i], want[i])
			}
		}
	}
}

// Each strategy's Into variant must match its allocating form exactly,
// including when the scratch holds stale garbage from a previous call.
func TestStrategyIntoVariantsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 700)
	b := make([]float64, 40)
	for i := range a {
		a[i] = rng.Float64()
	}
	for i := range b {
		b[i] = rng.Float64()
	}
	ws := &ConvScratch{}
	// Poison the scratch with a previous, larger convolution.
	_ = convolveFFTInto(make([]float64, 2*len(a)-1), a, a, ws)

	out := make([]float64, len(a)+len(b)-1)
	for i := range out {
		out[i] = -1 // prior contents must be overwritten
	}
	if want, got := ConvolveOverlapAdd(a, b, 0), convolveOverlapAddInto(out, a, b, 0, ws); true {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("overlap-add Into diverges at %d", i)
			}
		}
	}
	if want, got := ConvolveFFT(a, b), convolveFFTInto(out, a, b, ws); true {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("FFT Into diverges at %d", i)
			}
		}
	}
	if want, got := ConvolveDirect(a, b), convolveDirectInto(out, a, b); true {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("direct Into diverges at %d", i)
			}
		}
	}
}

// Spline.Fit must reproduce NewSpline bit-for-bit while borrowing the
// knot slices and reusing scratch.
func TestSplineFitMatchesNewSpline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ws := &SplineScratch{}
	sp := &Spline{}
	// Sizes deliberately shrink after growing: a refit over a shorter
	// knot set must not read stale scratch from a longer one.
	for _, n := range []int{2, 3, 5, 64, 1000, 64, 7, 2, 333} {
		x := make([]float64, n)
		y := make([]float64, n)
		acc := 0.0
		for i := range x {
			acc += 0.1 + rng.Float64()
			x[i] = acc
			y[i] = rng.NormFloat64()
		}
		want, err := NewSpline(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if err := sp.Fit(x, y, ws); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			at := x[0] - 0.5 + rng.Float64()*(x[n-1]-x[0]+1)
			if g, w := sp.At(at), want.At(at); g != w {
				t.Fatalf("n=%d: Fit spline diverges at %g: %g != %g", n, at, g, w)
			}
		}
	}
}

// ResampleInto's forward segment walk must agree with per-point At
// (which is what Resample used to do), including at and beyond the knot
// boundaries and under zero extrapolation.
func TestResampleWalkMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 64)
	y := make([]float64, 64)
	acc := 0.0
	for i := range x {
		acc += 0.2 + rng.Float64()
		x[i] = acc
		y[i] = rng.Float64()
	}
	for _, zero := range []bool{false, true} {
		sp, err := NewSpline(x, y)
		if err != nil {
			t.Fatal(err)
		}
		sp.SetExtrapolateZero(zero)
		for _, span := range [][2]float64{
			{x[0], x[63]},
			{x[0] - 1, x[63] + 1},
			{x[10], x[20]},
			{x[5] - 0.3, x[5] + 0.3},
		} {
			for _, n := range []int{1, 2, 7, 333} {
				got := sp.Resample(span[0], span[1], n)
				step := 0.0
				if n > 1 {
					step = (span[1] - span[0]) / float64(n-1)
				}
				for i, g := range got {
					if w := sp.At(span[0] + float64(i)*step); g != w {
						t.Fatalf("zero=%v span=%v n=%d: walk diverges at %d: %g != %g",
							zero, span, n, i, g, w)
					}
				}
			}
		}
	}
}
