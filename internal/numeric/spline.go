package numeric

import "fmt"

// Spline is a natural cubic spline through a set of strictly increasing
// knots. It reproduces the cubic-spline interpolation the paper uses to
// resample 64-point densities.
type Spline struct {
	x, y       []float64
	m          []float64 // second derivatives at the knots
	extrapZero bool
}

// SplineScratch holds the Thomas-algorithm work arrays of a spline fit,
// so hot loops can rebuild splines without allocating. The zero value is
// ready to use.
type SplineScratch struct {
	a, b, c, d []float64
}

func (ws *SplineScratch) grow(n int) (a, b, c, d []float64) {
	if cap(ws.a) < n {
		ws.a = make([]float64, n)
		ws.b = make([]float64, n)
		ws.c = make([]float64, n)
		ws.d = make([]float64, n)
	}
	return ws.a[:n], ws.b[:n], ws.c[:n], ws.d[:n]
}

// NewSpline builds a natural cubic spline through (x[i], y[i]). x must be
// strictly increasing and have at least 2 points.
func NewSpline(x, y []float64) (*Spline, error) {
	s := &Spline{}
	var ws SplineScratch
	if err := s.fit(x, y, &ws, true); err != nil {
		return nil, err
	}
	return s, nil
}

// Fit (re)initializes the spline over x and y without copying them: the
// caller must keep both slices alive and unmodified for the spline's
// lifetime. The second-derivative vector and the scratch arrays are
// reused across calls, so steady-state refits are allocation-free. The
// fitted spline is bit-for-bit identical to NewSpline(x, y).
func (s *Spline) Fit(x, y []float64, ws *SplineScratch) error {
	s.extrapZero = false
	return s.fit(x, y, ws, false)
}

func (s *Spline) fit(x, y []float64, ws *SplineScratch, copyKnots bool) error {
	n := len(x)
	if n != len(y) {
		return fmt.Errorf("numeric: spline needs len(x)==len(y), got %d and %d", n, len(y))
	}
	if n < 2 {
		return fmt.Errorf("numeric: spline needs at least 2 points, got %d", n)
	}
	for i := 1; i < n; i++ {
		if x[i] <= x[i-1] {
			return fmt.Errorf("numeric: spline knots must be strictly increasing at index %d", i)
		}
	}
	if copyKnots {
		s.x = append(s.x[:0], x...)
		s.y = append(s.y[:0], y...)
	} else {
		s.x, s.y = x, y
	}
	if cap(s.m) < n {
		s.m = make([]float64, n)
	}
	s.m = s.m[:n]
	if n == 2 {
		s.m[0], s.m[1] = 0, 0 // linear segment; second derivatives stay zero
		return nil
	}
	// Solve the tridiagonal system for natural boundary conditions
	// (m[0] = m[n-1] = 0) with the Thomas algorithm. The boundary cells
	// the interior loop leaves untouched are zeroed explicitly, matching
	// the zeroed allocations the non-scratch path used.
	a, b, c, d := ws.grow(n)
	a[n-1], c[0], d[0], d[n-1] = 0, 0, 0, 0
	b[0], b[n-1] = 1, 1
	for i := 1; i < n-1; i++ {
		hi := x[i] - x[i-1]
		hi1 := x[i+1] - x[i]
		a[i] = hi
		b[i] = 2 * (hi + hi1)
		c[i] = hi1
		d[i] = 6 * ((y[i+1]-y[i])/hi1 - (y[i]-y[i-1])/hi)
	}
	for i := 1; i < n; i++ {
		w := a[i] / b[i-1]
		b[i] -= w * c[i-1]
		d[i] -= w * d[i-1]
	}
	s.m[n-1] = d[n-1] / b[n-1]
	for i := n - 2; i >= 0; i-- {
		s.m[i] = (d[i] - c[i]*s.m[i+1]) / b[i]
	}
	return nil
}

// SetExtrapolateZero makes out-of-range evaluations return 0 instead of
// clamping to the boundary value. Useful for probability densities whose
// support is exactly the knot range.
func (s *Spline) SetExtrapolateZero(zero bool) { s.extrapZero = zero }

// At evaluates the spline at t. Outside the knot range the value is
// either the nearest boundary value or 0, depending on
// SetExtrapolateZero.
func (s *Spline) At(t float64) float64 {
	n := len(s.x)
	if t <= s.x[0] {
		if t == s.x[0] { //reprovet:allow floateq exact knot hit returns the knot value; below-range behavior differs
			return s.y[0]
		}
		if s.extrapZero {
			return 0
		}
		return s.y[0]
	}
	if t >= s.x[n-1] {
		if t == s.x[n-1] { //reprovet:allow floateq exact knot hit returns the knot value; above-range behavior differs
			return s.y[n-1]
		}
		if s.extrapZero {
			return 0
		}
		return s.y[n-1]
	}
	// Binary search for the segment containing t.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s.x[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	return s.segmentAt(lo, t)
}

// segmentAt evaluates the cubic on segment [x[lo], x[lo+1]] at t.
func (s *Spline) segmentAt(lo int, t float64) float64 {
	hi := lo + 1
	h := s.x[hi] - s.x[lo]
	A := (s.x[hi] - t) / h
	B := (t - s.x[lo]) / h
	return A*s.y[lo] + B*s.y[hi] +
		((A*A*A-A)*s.m[lo]+(B*B*B-B)*s.m[hi])*h*h/6
}

// Resample evaluates the spline on a uniform grid of n points spanning
// [lo, hi] inclusive.
func (s *Spline) Resample(lo, hi float64, n int) []float64 {
	return s.ResampleInto(make([]float64, n), lo, hi)
}

// ResampleInto is Resample writing into a caller-owned slice whose
// length selects the grid size. The evaluation points are visited in
// increasing order, so the containing segment is tracked with a forward
// walk instead of a per-point binary search; each point's value is
// bit-identical to At.
func (s *Spline) ResampleInto(out []float64, lo, hi float64) []float64 {
	n := len(out)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[0] = s.At(lo)
		return out
	}
	step := (hi - lo) / float64(n-1)
	if step <= 0 { // non-increasing grid: fall back to direct evaluation
		for i := range out {
			out[i] = s.At(lo + float64(i)*step)
		}
		return out
	}
	nx := len(s.x)
	seg := 0
	for i := range out {
		t := lo + float64(i)*step
		switch {
		case t <= s.x[0]:
			if t == s.x[0] || !s.extrapZero { //reprovet:allow floateq exact knot hit returns the knot value; below-range behavior differs
				out[i] = s.y[0]
			} else {
				out[i] = 0
			}
		case t >= s.x[nx-1]:
			if t == s.x[nx-1] || !s.extrapZero { //reprovet:allow floateq exact knot hit returns the knot value; above-range behavior differs
				out[i] = s.y[nx-1]
			} else {
				out[i] = 0
			}
		default:
			// Same segment as At's binary search: the largest lo with
			// x[lo] <= t (t < x[nx-1] keeps seg < nx-1).
			for seg+1 < nx-1 && s.x[seg+1] <= t {
				seg++
			}
			out[i] = s.segmentAt(seg, t)
		}
	}
	return out
}
