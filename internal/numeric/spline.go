package numeric

import "fmt"

// Spline is a natural cubic spline through a set of strictly increasing
// knots. It reproduces the cubic-spline interpolation the paper uses to
// resample 64-point densities.
type Spline struct {
	x, y       []float64
	m          []float64 // second derivatives at the knots
	extrapZero bool
}

// NewSpline builds a natural cubic spline through (x[i], y[i]). x must be
// strictly increasing and have at least 2 points.
func NewSpline(x, y []float64) (*Spline, error) {
	n := len(x)
	if n != len(y) {
		return nil, fmt.Errorf("numeric: spline needs len(x)==len(y), got %d and %d", n, len(y))
	}
	if n < 2 {
		return nil, fmt.Errorf("numeric: spline needs at least 2 points, got %d", n)
	}
	for i := 1; i < n; i++ {
		if x[i] <= x[i-1] {
			return nil, fmt.Errorf("numeric: spline knots must be strictly increasing at index %d", i)
		}
	}
	s := &Spline{
		x: append([]float64(nil), x...),
		y: append([]float64(nil), y...),
		m: make([]float64, n),
	}
	if n == 2 {
		return s, nil // linear segment; second derivatives stay zero
	}
	// Solve the tridiagonal system for natural boundary conditions
	// (m[0] = m[n-1] = 0) with the Thomas algorithm.
	a := make([]float64, n) // sub-diagonal
	b := make([]float64, n) // diagonal
	c := make([]float64, n) // super-diagonal
	d := make([]float64, n) // rhs
	b[0], b[n-1] = 1, 1
	for i := 1; i < n-1; i++ {
		hi := x[i] - x[i-1]
		hi1 := x[i+1] - x[i]
		a[i] = hi
		b[i] = 2 * (hi + hi1)
		c[i] = hi1
		d[i] = 6 * ((y[i+1]-y[i])/hi1 - (y[i]-y[i-1])/hi)
	}
	for i := 1; i < n; i++ {
		w := a[i] / b[i-1]
		b[i] -= w * c[i-1]
		d[i] -= w * d[i-1]
	}
	s.m[n-1] = d[n-1] / b[n-1]
	for i := n - 2; i >= 0; i-- {
		s.m[i] = (d[i] - c[i]*s.m[i+1]) / b[i]
	}
	return s, nil
}

// SetExtrapolateZero makes out-of-range evaluations return 0 instead of
// clamping to the boundary value. Useful for probability densities whose
// support is exactly the knot range.
func (s *Spline) SetExtrapolateZero(zero bool) { s.extrapZero = zero }

// At evaluates the spline at t. Outside the knot range the value is
// either the nearest boundary value or 0, depending on
// SetExtrapolateZero.
func (s *Spline) At(t float64) float64 {
	n := len(s.x)
	if t <= s.x[0] {
		if t == s.x[0] {
			return s.y[0]
		}
		if s.extrapZero {
			return 0
		}
		return s.y[0]
	}
	if t >= s.x[n-1] {
		if t == s.x[n-1] {
			return s.y[n-1]
		}
		if s.extrapZero {
			return 0
		}
		return s.y[n-1]
	}
	// Binary search for the segment containing t.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s.x[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	h := s.x[hi] - s.x[lo]
	A := (s.x[hi] - t) / h
	B := (t - s.x[lo]) / h
	return A*s.y[lo] + B*s.y[hi] +
		((A*A*A-A)*s.m[lo]+(B*B*B-B)*s.m[hi])*h*h/6
}

// Resample evaluates the spline on a uniform grid of n points spanning
// [lo, hi] inclusive.
func (s *Spline) Resample(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = s.At(lo)
		return out
	}
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = s.At(lo + float64(i)*step)
	}
	return out
}
