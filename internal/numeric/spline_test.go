package numeric

import (
	"math"
	"math/rand"
	"testing"
)

func TestSplineErrors(t *testing.T) {
	if _, err := NewSpline([]float64{0, 1}, []float64{0}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := NewSpline([]float64{0}, []float64{0}); err == nil {
		t.Error("accepted single point")
	}
	if _, err := NewSpline([]float64{0, 0, 1}, []float64{0, 1, 2}); err == nil {
		t.Error("accepted non-increasing knots")
	}
}

func TestSplineInterpolatesKnots(t *testing.T) {
	x := []float64{0, 1, 2.5, 4, 7}
	y := []float64{1, -1, 3, 0, 2}
	s, err := NewSpline(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got := s.At(x[i]); !almostEqual(got, y[i], 1e-12) {
			t.Errorf("At(%g) = %g, want %g", x[i], got, y[i])
		}
	}
}

func TestSplineLinearExact(t *testing.T) {
	// A natural spline through collinear points reproduces the line.
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9}
	s, err := NewSpline(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, xt := range []float64{0.25, 1.5, 3.9} {
		if got := s.At(xt); !almostEqual(got, 1+2*xt, 1e-10) {
			t.Errorf("At(%g) = %g, want %g", xt, got, 1+2*xt)
		}
	}
}

func TestSplineTwoPoints(t *testing.T) {
	s, err := NewSpline([]float64{0, 2}, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(1); !almostEqual(got, 2, 1e-12) {
		t.Errorf("two-point spline At(1) = %g, want 2", got)
	}
}

func TestSplineSmoothFunctionAccuracy(t *testing.T) {
	// 64 knots over one sine period: interpolation error should be tiny.
	n := 64
	x := Linspace(0, 2*math.Pi, n)
	y := make([]float64, n)
	for i := range x {
		y[i] = math.Sin(x[i])
	}
	s, err := NewSpline(x, y)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		xt := rng.Float64() * 2 * math.Pi
		if got := s.At(xt); !almostEqual(got, math.Sin(xt), 1e-4) {
			t.Fatalf("At(%g) = %g, want %g", xt, got, math.Sin(xt))
		}
	}
}

func TestSplineExtrapolation(t *testing.T) {
	s, err := NewSpline([]float64{0, 1, 2}, []float64{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(-1); got != 5 {
		t.Errorf("clamped left = %g, want 5", got)
	}
	if got := s.At(3); got != 7 {
		t.Errorf("clamped right = %g, want 7", got)
	}
	s.SetExtrapolateZero(true)
	if got := s.At(-1); got != 0 {
		t.Errorf("zero left = %g, want 0", got)
	}
	if got := s.At(3); got != 0 {
		t.Errorf("zero right = %g, want 0", got)
	}
	// Boundary knots themselves still evaluate to their values.
	if got := s.At(0); got != 5 {
		t.Errorf("boundary At(0) = %g, want 5", got)
	}
	if got := s.At(2); got != 7 {
		t.Errorf("boundary At(2) = %g, want 7", got)
	}
}

func TestSplineResample(t *testing.T) {
	s, err := NewSpline([]float64{0, 1}, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	got := s.Resample(0, 1, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-10) {
			t.Errorf("resample[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if one := s.Resample(0.5, 0.5, 1); len(one) != 1 || !almostEqual(one[0], 5, 1e-10) {
		t.Errorf("resample n=1 = %v, want [5]", one)
	}
}
