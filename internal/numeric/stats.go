package numeric

import "math"

// KahanSum returns the compensated (Kahan) sum of xs, which keeps the
// rounding error bounded independently of len(xs).
func KahanSum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return KahanSum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than 2
// values), computed with a two-pass mean-centred algorithm.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mu := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - mu
		sum += d * d
	}
	return sum / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest values in xs. For an empty
// slice it returns (+Inf, -Inf) so that subsequent min/max folds work.
func MinMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// MovingAverage smooths uniform-grid samples with a centred window of
// the given half-width (window = 2*halfWidth+1), shrinking the window at
// the boundaries. halfWidth <= 0 returns a copy.
func MovingAverage(y []float64, halfWidth int) []float64 {
	out := make([]float64, len(y))
	if halfWidth <= 0 {
		copy(out, y)
		return out
	}
	for i := range y {
		lo := i - halfWidth
		if lo < 0 {
			lo = 0
		}
		hi := i + halfWidth
		if hi > len(y)-1 {
			hi = len(y) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += y[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// Linspace returns n uniformly spaced points covering [lo, hi]
// inclusive. n must be >= 2 for a non-degenerate grid; n == 1 yields
// {lo}.
func Linspace(lo, hi float64, n int) []float64 {
	return LinspaceInto(make([]float64, n), lo, hi)
}

// LinspaceInto is Linspace writing into a caller-owned slice whose
// length selects the point count.
func LinspaceInto(out []float64, lo, hi float64) []float64 {
	n := len(out)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[0] = lo
		return out
	}
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	// Guard against rounding drift on the last point.
	out[n-1] = hi
	return out
}

// Clamp limits v to the interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
