package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKahanSumCancellations(t *testing.T) {
	// 1 + tiny added many times: naive summation loses the tinies.
	xs := make([]float64, 0, 1_000_001)
	xs = append(xs, 1)
	for i := 0; i < 1_000_000; i++ {
		xs = append(xs, 1e-16)
	}
	got := KahanSum(xs)
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-14 {
		t.Errorf("KahanSum = %.18g, want %.18g", got, want)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestVarianceShiftInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		shifted := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			shifted[i] = xs[i] + 1e3
		}
		return almostEqual(Variance(xs), Variance(shifted), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%g,%g), want (-1,7)", lo, hi)
	}
	lo, hi = MinMax(nil)
	if !math.IsInf(lo, 1) || !math.IsInf(hi, -1) {
		t.Errorf("empty MinMax = (%g,%g), want (+Inf,-Inf)", lo, hi)
	}
}

func TestMovingAverage(t *testing.T) {
	y := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(y, 1)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("ma[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	got = MovingAverage(y, 0)
	for i := range y {
		if got[i] != y[i] {
			t.Errorf("halfWidth=0 should copy; ma[%d]=%g", i, got[i])
		}
	}
}

func TestMovingAveragePreservesConstant(t *testing.T) {
	y := []float64{3, 3, 3, 3, 3, 3}
	got := MovingAverage(y, 2)
	for i := range got {
		if !almostEqual(got[i], 3, 1e-12) {
			t.Errorf("constant smoothing changed value at %d: %g", i, got[i])
		}
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("linspace[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if got[len(got)-1] != 1 {
		t.Error("last point must be exactly hi")
	}
	if one := Linspace(2, 9, 1); len(one) != 1 || one[0] != 2 {
		t.Errorf("Linspace n=1 = %v, want [2]", one)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}
