package platform

import "repro/internal/stochastic"

// CommClasses groups the ordered processor pairs of a platform by
// their communication parameters: two off-diagonal pairs share a class
// exactly when their Lat and Tau entries agree, so any per-edge
// communication cost needs one evaluation per (class, edge) instead of
// one per (pair, edge). The diagonal is class -1: co-located tasks
// communicate for free. On the uniform networks of the paper's
// evaluation every off-diagonal pair collapses into a single class, so
// a full placement-dependent communication table costs O(e) instead of
// O(e·m²).
type CommClasses struct {
	M     int
	Class []int32   // m×m row-major: pair (i,j) → class id, -1 on the diagonal
	Lat   []float64 // per-class latency
	Tau   []float64 // per-class per-element transfer time
}

// CommClasses dedupes the platform's processor pairs.
func (p *Platform) CommClasses() CommClasses {
	cc := CommClasses{M: p.M, Class: make([]int32, p.M*p.M)}
	type key struct{ lat, tau float64 }
	seen := make(map[key]int32, p.M)
	for i := 0; i < p.M; i++ {
		for j := 0; j < p.M; j++ {
			if i == j {
				cc.Class[i*p.M+j] = -1
				continue
			}
			k := key{p.Lat[i][j], p.Tau[i][j]}
			id, ok := seen[k]
			if !ok {
				id = int32(len(cc.Lat))
				seen[k] = id
				cc.Lat = append(cc.Lat, k.lat)
				cc.Tau = append(cc.Tau, k.tau)
			}
			cc.Class[i*p.M+j] = id
		}
	}
	return cc
}

// BatchCommCosts evaluates eval over the communication-time
// distribution of every (class, volume) combination: out[c][k] applies
// eval to the scenario's duration distribution over the minimum time
// Lat[c] + vols[k]·Tau[c] at the global UL — the distribution CommDist
// builds for any processor pair of class c, constructed once instead
// of inside every scheduling inner loop. eval picks the statistic: the
// mean for the classic heuristics, mean + λσ for SDHEFT.
func (s *Scenario) BatchCommCosts(cc CommClasses, vols []float64, eval func(stochastic.Dist) float64) [][]float64 {
	out := make([][]float64, len(cc.Lat))
	for c := range out {
		lat, tau := cc.Lat[c], cc.Tau[c]
		row := make([]float64, len(vols))
		for k, v := range vols {
			row[k] = eval(s.durDist(lat+v*tau, s.UL))
		}
		out[c] = row
	}
	return out
}

// BatchCommMeans returns the mean communication time of every
// (class, volume) combination — exactly the value MeanComm computes
// for any processor pair of class c.
func (s *Scenario) BatchCommMeans(cc CommClasses, vols []float64) [][]float64 {
	return s.BatchCommCosts(cc, vols, stochastic.Dist.Mean)
}
