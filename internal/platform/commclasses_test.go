package platform

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
)

func TestCommClassesUniformNetwork(t *testing.T) {
	tau, lat := NewUniformNetwork(4, 1, 0)
	p := &Platform{M: 4, Tau: tau, Lat: lat}
	cc := p.CommClasses()
	if len(cc.Lat) != 1 {
		t.Fatalf("uniform network: %d classes, want 1", len(cc.Lat))
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			c := cc.Class[i*4+j]
			if i == j && c != -1 {
				t.Fatalf("diagonal (%d,%d) class %d, want -1", i, j, c)
			}
			if i != j && c != 0 {
				t.Fatalf("pair (%d,%d) class %d, want 0", i, j, c)
			}
		}
	}
	if cc.Tau[0] != 1 || cc.Lat[0] != 0 {
		t.Fatalf("class params (tau=%g, lat=%g), want (1, 0)", cc.Tau[0], cc.Lat[0])
	}
}

func TestCommClassesHeterogeneous(t *testing.T) {
	// Distinct (lat, tau) per direction of each pair: every off-diagonal
	// pair its own class.
	m := 3
	tauM := make([][]float64, m)
	latM := make([][]float64, m)
	for i := range tauM {
		tauM[i] = make([]float64, m)
		latM[i] = make([]float64, m)
		for j := range tauM[i] {
			if i != j {
				tauM[i][j] = float64(1 + i*m + j)
				latM[i][j] = float64(10 + i*m + j)
			}
		}
	}
	p := &Platform{M: m, Tau: tauM, Lat: latM}
	cc := p.CommClasses()
	if len(cc.Lat) != m*(m-1) {
		t.Fatalf("%d classes, want %d", len(cc.Lat), m*(m-1))
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i == j {
				continue
			}
			c := cc.Class[i*m+j]
			if cc.Lat[c] != latM[i][j] || cc.Tau[c] != tauM[i][j] {
				t.Fatalf("pair (%d,%d): class params diverge", i, j)
			}
		}
	}
}

// BatchCommMeans must reproduce MeanComm exactly (bitwise) for every
// pair and edge — the compiled heuristics rely on it.
func TestBatchCommMeansMatchesMeanComm(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, m := 12, 3
	g := dag.New(n)
	var vols []float64
	type edge struct{ from, to dag.Task }
	var edges []edge
	for i := 0; i < n-1; i++ {
		v := rng.Float64() * 20
		if err := g.AddEdge(dag.Task(i), dag.Task(i+1), v); err != nil {
			t.Fatal(err)
		}
		vols = append(vols, v)
		edges = append(edges, edge{dag.Task(i), dag.Task(i + 1)})
	}
	tau, lat := NewUniformNetwork(m, 0.7, 0.3)
	scen := &Scenario{
		G:  g,
		P:  &Platform{M: m, ETC: GenerateETCUniform(n, m, 10, 20, rng), Tau: tau, Lat: lat},
		UL: 1.4,
	}
	cc := scen.P.CommClasses()
	means := scen.BatchCommMeans(cc, vols)
	for ei, e := range edges {
		for pi := 0; pi < m; pi++ {
			for pj := 0; pj < m; pj++ {
				want := scen.MeanComm(e.from, e.to, pi, pj)
				var got float64
				if c := cc.Class[pi*m+pj]; c >= 0 {
					got = means[c][ei]
				}
				if got != want {
					t.Fatalf("edge %d pair (%d,%d): batch mean %v, MeanComm %v",
						ei, pi, pj, got, want)
				}
			}
		}
	}
}
