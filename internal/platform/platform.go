// Package platform models the heterogeneous target of the paper: m
// unrelated processors with per-task minimum computation times (the ETC
// matrix) and pairwise communication characteristics T = (τij) and
// L = (lij), with τii = lii = 0 so co-located tasks communicate for
// free.
package platform

import (
	"fmt"
	"math/rand"

	"repro/internal/stochastic"
)

// Platform describes the target system.
type Platform struct {
	M   int         // number of processors
	ETC [][]float64 // n×m: minimum computation time of task i on processor j
	Tau [][]float64 // m×m: per-data-element transfer time τij (τii = 0)
	Lat [][]float64 // m×m: network latency lij (lii = 0)
}

// N returns the number of tasks covered by the ETC matrix.
func (p *Platform) N() int { return len(p.ETC) }

// Validate checks structural invariants: matrix shapes, zero diagonals,
// non-negative entries.
func (p *Platform) Validate() error {
	if p.M <= 0 {
		return fmt.Errorf("platform: M = %d", p.M)
	}
	for i, row := range p.ETC {
		if len(row) != p.M {
			return fmt.Errorf("platform: ETC row %d has %d entries, want %d", i, len(row), p.M)
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("platform: ETC[%d][%d] = %g < 0", i, j, v)
			}
		}
	}
	// τ before latency, always: ranging over a map here made the
	// reported first error flip between runs when both matrices were
	// invalid (map iteration order is randomized — the exact bug class
	// cmd/reprovet's mapiter analyzer now rejects).
	for _, nm := range []struct {
		name string
		m    [][]float64
	}{{"tau", p.Tau}, {"lat", p.Lat}} {
		name, m := nm.name, nm.m
		if len(m) != p.M {
			return fmt.Errorf("platform: %s has %d rows, want %d", name, len(m), p.M)
		}
		for i, row := range m {
			if len(row) != p.M {
				return fmt.Errorf("platform: %s row %d has %d entries, want %d", name, i, len(row), p.M)
			}
			if row[i] != 0 { //reprovet:allow floateq zero diagonal is an exact structural invariant, not a computed value
				return fmt.Errorf("platform: %s[%d][%d] = %g, diagonal must be 0", name, i, i, row[i])
			}
			for j, v := range row {
				if v < 0 {
					return fmt.Errorf("platform: %s[%d][%d] = %g < 0", name, i, j, v)
				}
			}
		}
	}
	return nil
}

// MinCommTime returns the minimum time to ship `volume` data elements
// from processor pi to pj: lij + volume·τij, and 0 when pi == pj.
func (p *Platform) MinCommTime(volume float64, pi, pj int) float64 {
	if pi == pj {
		return 0
	}
	return p.Lat[pi][pj] + volume*p.Tau[pi][pj]
}

// AvgETC returns the average of task i's computation time over all
// processors (used by rank-based heuristics).
func (p *Platform) AvgETC(i int) float64 {
	var sum float64
	for _, v := range p.ETC[i] {
		sum += v
	}
	return sum / float64(p.M)
}

// AvgTau returns the average off-diagonal τ (used by rank-based
// heuristics to estimate communication costs before placement).
func (p *Platform) AvgTau() float64 {
	if p.M <= 1 {
		return 0
	}
	var sum float64
	for i := 0; i < p.M; i++ {
		for j := 0; j < p.M; j++ {
			if i != j {
				sum += p.Tau[i][j]
			}
		}
	}
	return sum / float64(p.M*(p.M-1))
}

// AvgLat returns the average off-diagonal latency.
func (p *Platform) AvgLat() float64 {
	if p.M <= 1 {
		return 0
	}
	var sum float64
	for i := 0; i < p.M; i++ {
		for j := 0; j < p.M; j++ {
			if i != j {
				sum += p.Lat[i][j]
			}
		}
	}
	return sum / float64(p.M*(p.M-1))
}

// uniformMatrix builds an m×m matrix with the given off-diagonal value.
func uniformMatrix(m int, v float64) [][]float64 {
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
		for j := range out[i] {
			if i != j {
				out[i][j] = v
			}
		}
	}
	return out
}

// NewUniformNetwork returns τ and latency matrices with homogeneous
// off-diagonal values (the paper found latency's influence negligible
// and uses comparable computation/communication magnitudes).
func NewUniformNetwork(m int, tau, lat float64) (tauM, latM [][]float64) {
	return uniformMatrix(m, tau), uniformMatrix(m, lat)
}

// ETCParams parameterize the coefficient-of-variation-based ETC
// generation of Ali et al. (the method the paper cites): first a task
// vector q_i ~ Gamma(mean=MuTask, CV=VTask), then each row
// ETC[i][j] ~ Gamma(mean=q_i, CV=VMach).
type ETCParams struct {
	MuTask float64 // average computation cost (paper: 20)
	VTask  float64 // task heterogeneity (paper: 0.5)
	VMach  float64 // machine heterogeneity (paper: 0.5)
}

// GenerateETC builds an n×m unrelated ETC matrix by the CV method.
func GenerateETC(n, m int, p ETCParams, rng *rand.Rand) [][]float64 {
	taskDist := stochastic.GammaFromMeanCV(p.MuTask, p.VTask)
	etc := make([][]float64, n)
	for i := 0; i < n; i++ {
		q := taskDist.Sample(rng)
		if q < 1e-3 {
			q = 1e-3
		}
		row := make([]float64, m)
		machDist := stochastic.GammaFromMeanCV(q, p.VMach)
		for j := 0; j < m; j++ {
			v := machDist.Sample(rng)
			if v < 1e-3 {
				v = 1e-3
			}
			row[j] = v
		}
		etc[i] = row
	}
	return etc
}

// GenerateETCFromWeights builds the ETC matrix used for the random
// graphs: the graph generator supplies per-task average costs, and each
// processor draws Gamma(mean=weight_i, CV=VMach).
func GenerateETCFromWeights(weights []float64, m int, vMach float64, rng *rand.Rand) [][]float64 {
	etc := make([][]float64, len(weights))
	for i, w := range weights {
		row := make([]float64, m)
		machDist := stochastic.GammaFromMeanCV(w, vMach)
		for j := 0; j < m; j++ {
			v := machDist.Sample(rng)
			if v < 1e-3 {
				v = 1e-3
			}
			row[j] = v
		}
		etc[i] = row
	}
	return etc
}

// GenerateETCUniform builds the real-application ETC of §V: for each
// task a random minimum value minVal_i ~ U[minLo, minHi], and each
// processor's time uniform in [minVal_i, 2·minVal_i].
func GenerateETCUniform(n, m int, minLo, minHi float64, rng *rand.Rand) [][]float64 {
	etc := make([][]float64, n)
	for i := 0; i < n; i++ {
		minVal := minLo + rng.Float64()*(minHi-minLo)
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			row[j] = minVal * (1 + rng.Float64())
		}
		etc[i] = row
	}
	return etc
}
