package platform

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/graphgen"
	"repro/internal/stochastic"
)

func testPlatform(n, m int, seed int64) *Platform {
	rng := rand.New(rand.NewSource(seed))
	tau, lat := NewUniformNetwork(m, 1, 0)
	return &Platform{
		M:   m,
		ETC: GenerateETC(n, m, ETCParams{MuTask: 20, VTask: 0.5, VMach: 0.5}, rng),
		Tau: tau,
		Lat: lat,
	}
}

func TestValidate(t *testing.T) {
	p := testPlatform(10, 3, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Tau[1][1] = 5
	if err := p.Validate(); err == nil {
		t.Error("accepted non-zero tau diagonal")
	}
	p.Tau[1][1] = 0
	p.ETC[0][0] = -1
	if err := p.Validate(); err == nil {
		t.Error("accepted negative ETC")
	}
	bad := &Platform{M: 0}
	if err := bad.Validate(); err == nil {
		t.Error("accepted M=0")
	}
}

// TestValidateDeterministicFirstError pins the fix for the map-range
// bug reprovet's mapiter analyzer flagged: when both network matrices
// are invalid, Validate must always report tau first instead of
// letting map iteration order pick the winner.
func TestValidateDeterministicFirstError(t *testing.T) {
	for i := 0; i < 50; i++ {
		p := testPlatform(4, 3, 7)
		p.Tau[2][2] = 1 // bad tau diagonal
		p.Lat[1][1] = 1 // bad lat diagonal
		err := p.Validate()
		if err == nil {
			t.Fatal("accepted two broken diagonals")
		}
		const want = "platform: tau[2][2] = 1, diagonal must be 0"
		if err.Error() != want {
			t.Fatalf("run %d: error = %q, want %q (first error must not depend on iteration order)", i, err, want)
		}
	}
}

func TestMinCommTime(t *testing.T) {
	p := testPlatform(4, 3, 2)
	p.Lat[0][1] = 2
	p.Tau[0][1] = 0.5
	if got := p.MinCommTime(10, 0, 1); got != 7 {
		t.Errorf("comm time = %g, want 7", got)
	}
	if p.MinCommTime(10, 1, 1) != 0 {
		t.Error("co-located comm must be free")
	}
}

func TestAverages(t *testing.T) {
	p := &Platform{
		M:   2,
		ETC: [][]float64{{2, 4}, {6, 8}},
		Tau: [][]float64{{0, 3}, {5, 0}},
		Lat: [][]float64{{0, 1}, {1, 0}},
	}
	if got := p.AvgETC(0); got != 3 {
		t.Errorf("AvgETC(0) = %g, want 3", got)
	}
	if got := p.AvgETC(1); got != 7 {
		t.Errorf("AvgETC(1) = %g, want 7", got)
	}
	if got := p.AvgTau(); got != 4 {
		t.Errorf("AvgTau = %g, want 4", got)
	}
	if got := p.AvgLat(); got != 1 {
		t.Errorf("AvgLat = %g, want 1", got)
	}
	single := &Platform{M: 1, Tau: [][]float64{{0}}, Lat: [][]float64{{0}}}
	if single.AvgTau() != 0 || single.AvgLat() != 0 {
		t.Error("single-machine averages must be 0")
	}
}

func TestGenerateETCStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, m := 3000, 4
	etc := GenerateETC(n, m, ETCParams{MuTask: 20, VTask: 0.5, VMach: 0.5}, rng)
	var all []float64
	for i := 0; i < n; i++ {
		if len(etc[i]) != m {
			t.Fatalf("row %d has %d cols", i, len(etc[i]))
		}
		for _, v := range etc[i] {
			if v <= 0 {
				t.Fatalf("non-positive ETC %g", v)
			}
			all = append(all, v)
		}
	}
	var sum float64
	for _, v := range all {
		sum += v
	}
	mean := sum / float64(len(all))
	if mean < 18 || mean > 22 {
		t.Errorf("ETC grand mean = %g, want ~20", mean)
	}
	// The CV method gives overall CV ≈ sqrt(Vt² + Vm² + Vt²Vm²) ≈ 0.75.
	var ss float64
	for _, v := range all {
		d := v - mean
		ss += d * d
	}
	cv := math.Sqrt(ss/float64(len(all))) / mean
	if cv < 0.6 || cv > 0.9 {
		t.Errorf("ETC CV = %g, want ~0.75", cv)
	}
}

func TestGenerateETCUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	etc := GenerateETCUniform(500, 3, 10, 20, rng)
	for i, row := range etc {
		lo := math.Inf(1)
		for _, v := range row {
			if v < lo {
				lo = v
			}
		}
		for _, v := range row {
			// Every value must lie in [minVal, 2·minVal] for SOME minVal in
			// [10,20]; at minimum, all values within [10, 40] and within 2x
			// of the row minimum.
			if v < 10 || v > 40 {
				t.Fatalf("row %d value %g outside [10,40]", i, v)
			}
			if v > 2*lo+1e-9 {
				t.Fatalf("row %d value %g exceeds 2×row-min %g", i, v, lo)
			}
		}
	}
}

func TestGenerateETCFromWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	weights := []float64{10, 100}
	etc := GenerateETCFromWeights(weights, 200, 0.3, rng)
	m0 := 0.0
	m1 := 0.0
	for _, v := range etc[0] {
		m0 += v
	}
	for _, v := range etc[1] {
		m1 += v
	}
	m0 /= 200
	m1 /= 200
	if math.Abs(m0-10) > 1.5 {
		t.Errorf("row 0 mean = %g, want ~10", m0)
	}
	if math.Abs(m1-100) > 15 {
		t.Errorf("row 1 mean = %g, want ~100", m1)
	}
}

func TestMeanFromMin(t *testing.T) {
	if MeanFromMin(10, 1) != 10 {
		t.Error("UL=1 must be deterministic")
	}
	// UL=1.1: mean = 10·(1 + 0.1·2/7).
	want := 10 * (1 + 0.1*2.0/7.0)
	if got := MeanFromMin(10, 1.1); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanFromMin = %g, want %g", got, want)
	}
}

func TestScenarioDists(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graphgen.Chain(3, 5)
	tau, lat := NewUniformNetwork(2, 1, 0)
	p := &Platform{M: 2, ETC: GenerateETCUniform(3, 2, 10, 20, rng), Tau: tau, Lat: lat}
	s := &Scenario{G: g, P: p, UL: 1.1}

	d := s.TaskDist(0, 1)
	b, ok := d.(stochastic.Beta)
	if !ok {
		t.Fatalf("task dist is %T, want Beta", d)
	}
	if b.Lo != p.ETC[0][1] || math.Abs(b.Hi-1.1*p.ETC[0][1]) > 1e-9 {
		t.Errorf("task dist support [%g,%g], want [%g,%g]", b.Lo, b.Hi, p.ETC[0][1], 1.1*p.ETC[0][1])
	}

	// Co-located communication is free.
	cd := s.CommDist(0, 1, 1, 1)
	if dd, ok := cd.(stochastic.Dirac); !ok || dd.Value != 0 {
		t.Errorf("co-located comm = %#v, want Dirac(0)", cd)
	}
	// Cross-processor communication: Beta over [5, 5.5] (vol 5 × τ 1).
	cd = s.CommDist(0, 1, 0, 1)
	cb, ok := cd.(stochastic.Beta)
	if !ok {
		t.Fatalf("comm dist is %T, want Beta", cd)
	}
	if cb.Lo != 5 || math.Abs(cb.Hi-5.5) > 1e-9 {
		t.Errorf("comm support [%g,%g], want [5,5.5]", cb.Lo, cb.Hi)
	}

	// Deterministic scenario degrades to Dirac.
	sDet := &Scenario{G: g, P: p, UL: 1}
	if _, ok := sDet.TaskDist(0, 0).(stochastic.Dirac); !ok {
		t.Error("UL=1 task dist should be Dirac")
	}

	// Samples stay within the Beta support.
	for i := 0; i < 1000; i++ {
		v := s.SampleTask(0, 1, rng)
		if v < b.Lo || v > b.Hi {
			t.Fatalf("sample %g outside [%g,%g]", v, b.Lo, b.Hi)
		}
	}
	if s.SampleComm(0, 1, 1, 1, rng) != 0 {
		t.Error("co-located comm sample must be 0")
	}
	if s.MeanComm(0, 1, 0, 1) <= 5 {
		t.Error("cross-proc mean comm should exceed the minimum")
	}
	if s.MeanTask(0, 0) <= p.ETC[0][0] {
		t.Error("mean task duration should exceed the minimum under UL>1")
	}
}

// A custom (additive) duration family must be consulted for zero-minimum
// cross-processor links — the zero-latency regime — while co-located
// communication stays exactly free regardless of the family. This is
// the scenario-layer half of the dropped zero-min-arc fix: before it,
// durDist short-circuited min <= 0 to Dirac(0) even under a DurFn, so
// no scenario could express a stochastic zero-min link at all.
func TestZeroMinCommUnderCustomDurFn(t *testing.T) {
	g := dag.New(3)
	if err := g.AddEdge(0, 2, 0); err != nil { // zero-volume edge
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 4); err != nil {
		t.Fatal(err)
	}
	etc := [][]float64{{10, 10}, {10, 10}, {10, 10}}
	tau, lat := NewUniformNetwork(2, 1, 0) // zero-latency network
	s := &Scenario{
		G:  g,
		P:  &Platform{M: 2, ETC: etc, Tau: tau, Lat: lat},
		UL: 1.5,
		// Additive noise family: min plus up to one time unit.
		DurFn: func(min, ul float64) stochastic.Dist {
			return stochastic.Uniform{Lo: min, Hi: min + (ul - 1)}
		},
	}

	// Cross-processor zero-min link: DurFn applies, mean is positive.
	cd := s.CommDist(0, 2, 0, 1)
	u, ok := cd.(stochastic.Uniform)
	if !ok {
		t.Fatalf("zero-min cross-proc comm is %T, want the DurFn's Uniform", cd)
	}
	if u.Lo != 0 || u.Hi != 0.5 {
		t.Errorf("zero-min comm support [%g,%g], want [0,0.5]", u.Lo, u.Hi)
	}
	if m := s.MeanComm(0, 2, 0, 1); m <= 0 {
		t.Errorf("zero-min cross-proc mean comm = %g, want > 0", m)
	}

	// Co-located communication is free even under the additive family.
	cd = s.CommDist(0, 2, 1, 1)
	if dd, ok := cd.(stochastic.Dirac); !ok || dd.Value != 0 {
		t.Errorf("co-located comm = %#v, want Dirac(0) despite DurFn", cd)
	}

	// The deterministic case still degrades everything to Dirac.
	det := *s
	det.UL = 1
	if dd, ok := det.CommDist(0, 2, 0, 1).(stochastic.Dirac); !ok || dd.Value != 0 {
		t.Error("UL=1 zero-min comm should stay Dirac(0)")
	}
}
