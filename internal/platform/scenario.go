package platform

import (
	"math/rand"

	"repro/internal/dag"
	"repro/internal/stochastic"
)

// Scenario bundles a task graph, a platform and an uncertainty level
// into the paper's stochastic scheduling problem: every ETC entry and
// every communication time is the minimum of a Beta(2,5) random
// variable stretched over [min, min·UL].
//
// Two extensions from the paper's future-work list (§VIII) are
// supported:
//
//   - TaskUL gives each task its own uncertainty level (a non-constant
//     UL breaks the proportionality between duration means and standard
//     deviations, which the paper conjectures degrades the makespan as a
//     robustness proxy);
//   - DurFn swaps the Beta(2,5) duration family for any other
//     distribution over [min, min·ul] (e.g. oscillating non-standard
//     densities).
type Scenario struct {
	G  *dag.Graph
	P  *Platform
	UL float64 // uncertainty level, >= 1 (1 = deterministic)

	// TaskUL optionally overrides UL per task (length must be G.N()
	// when non-nil). Communication times keep the global UL.
	TaskUL []float64

	// ProcUL optionally overrides the uncertainty level per processor
	// (length P.M when non-nil); it takes precedence over TaskUL and
	// UL for task durations. It models platforms where some machines
	// are time-shared/noisy and others dedicated/stable.
	ProcUL []float64

	// DurFn optionally builds the duration distribution for a minimum
	// value and an uncertainty level. nil selects the paper's
	// Beta(2,5) over [min, min·ul].
	DurFn func(min, ul float64) stochastic.Dist
}

// BetaMeanFactor is E[Beta(2,5)] on [0,1]: under the default model the
// mean duration is min·(1 + (UL-1)·BetaMeanFactor).
const BetaMeanFactor = 2.0 / 7.0

// MeanFromMin converts a minimum duration into its mean under the
// default Beta(2,5) uncertainty model with level ul.
func MeanFromMin(min, ul float64) float64 {
	if ul <= 1 {
		return min
	}
	return min * (1 + (ul-1)*BetaMeanFactor)
}

// ULFor returns the uncertainty level of task t (ignoring any
// per-processor override).
func (s *Scenario) ULFor(t dag.Task) float64 {
	if s.TaskUL != nil && int(t) < len(s.TaskUL) {
		return s.TaskUL[t]
	}
	return s.UL
}

// ULAt returns the uncertainty level of task t when it runs on
// processor proc: the per-processor override when set, otherwise the
// per-task/global level.
func (s *Scenario) ULAt(t dag.Task, proc int) float64 {
	if s.ProcUL != nil && proc < len(s.ProcUL) {
		return s.ProcUL[proc]
	}
	return s.ULFor(t)
}

// durDist builds a duration distribution for the given minimum and
// uncertainty level using the configured family. A custom DurFn is
// consulted even at min = 0: the paper's multiplicative families
// degenerate there (a distribution over [0, 0·UL] is Dirac(0)), but an
// additive family — e.g. a fixed network overhead plus noise — can
// carry mass above a zero minimum, which is exactly the zero-latency
// regime whose arcs the evaluators used to drop (see
// makespan.EvalModel). The default Beta family keeps its Dirac
// shortcut.
func (s *Scenario) durDist(min, ul float64) stochastic.Dist {
	if ul <= 1 {
		return stochastic.Dirac{Value: min}
	}
	if s.DurFn != nil {
		return s.DurFn(min, ul)
	}
	if min <= 0 {
		return stochastic.Dirac{Value: min}
	}
	return stochastic.NewBetaUL(min, ul)
}

// DurationAt builds the scenario's duration distribution for an
// arbitrary minimum value at the global UL (used by heuristics for
// placement-agnostic estimates).
func (s *Scenario) DurationAt(min float64) stochastic.Dist {
	return s.durDist(min, s.UL)
}

// DurDist builds the scenario's duration distribution for an arbitrary
// minimum value and uncertainty level — the family every TaskDist and
// CommDist draws from. A distribution is a pure function of
// (min, ul) for a fixed scenario, which is what lets evaluation caches
// deduplicate discretizations by that pair.
func (s *Scenario) DurDist(min, ul float64) stochastic.Dist {
	return s.durDist(min, ul)
}

// TaskDist returns the duration distribution of task t on processor
// proc.
func (s *Scenario) TaskDist(t dag.Task, proc int) stochastic.Dist {
	return s.durDist(s.P.ETC[t][proc], s.ULAt(t, proc))
}

// CommDist returns the distribution of the communication time of edge
// from→to when the endpoints run on pi and pj. Co-located tasks
// communicate in zero time (exactly Dirac at 0, by model definition —
// a custom DurFn never applies to the diagonal), while a cross-processor
// link with zero minimum time (zero-latency network) may still carry
// stochastic mass under an additive DurFn.
func (s *Scenario) CommDist(from, to dag.Task, pi, pj int) stochastic.Dist {
	if pi == pj {
		return stochastic.Dirac{Value: 0}
	}
	min := s.P.MinCommTime(s.G.Volume(from, to), pi, pj)
	return s.durDist(min, s.UL)
}

// MeanTask returns the mean duration of task t on processor proc.
func (s *Scenario) MeanTask(t dag.Task, proc int) float64 {
	return s.TaskDist(t, proc).Mean()
}

// MeanComm returns the mean communication time of edge from→to between
// processors pi and pj.
func (s *Scenario) MeanComm(from, to dag.Task, pi, pj int) float64 {
	return s.CommDist(from, to, pi, pj).Mean()
}

// SampleTask draws a realization of task t's duration on processor
// proc.
func (s *Scenario) SampleTask(t dag.Task, proc int, rng *rand.Rand) float64 {
	return s.TaskDist(t, proc).Sample(rng)
}

// SampleComm draws a realization of the communication time of edge
// from→to between pi and pj.
func (s *Scenario) SampleComm(from, to dag.Task, pi, pj int, rng *rand.Rand) float64 {
	return s.CommDist(from, to, pi, pj).Sample(rng)
}

// WithVariableUL returns a copy of the scenario whose tasks draw their
// uncertainty levels uniformly from [ulLo, ulHi] (the paper's §VIII
// variable-UL future work). The graph and platform are shared.
func (s *Scenario) WithVariableUL(ulLo, ulHi float64, rng *rand.Rand) *Scenario {
	c := *s
	uls := make([]float64, s.G.N())
	for i := range uls {
		uls[i] = ulLo + rng.Float64()*(ulHi-ulLo)
	}
	c.TaskUL = uls
	return &c
}

// WithNoisyProcessors returns a copy of the scenario where
// even-numbered processors are stable (UL = stableUL) and odd-numbered
// ones noisy (UL = noisyUL), with the noisy processors' ETC columns
// rescaled so that every task's MEAN duration is identical on a stable
// and on a noisy processor. In this setting a mean-based heuristic is
// blind to the noise while a σ-aware one (SDHEFT) can trade placement
// for robustness — the paper's §VIII proposal in its purest form.
func (s *Scenario) WithNoisyProcessors(stableUL, noisyUL float64) *Scenario {
	c := *s
	// Mean scale factor of the duration family per unit of minimum.
	factor := func(ul float64) float64 { return s.durDist(1, ul).Mean() }
	fs, fn := factor(stableUL), factor(noisyUL)
	etc := make([][]float64, len(s.P.ETC))
	for i, row := range s.P.ETC {
		r := append([]float64(nil), row...)
		for p := range r {
			if p%2 == 1 && fn > 0 {
				r[p] = r[p] * fs / fn // equalize means with the stable columns
			}
		}
		etc[i] = r
	}
	pc := *s.P
	pc.ETC = etc
	c.P = &pc
	uls := make([]float64, s.P.M)
	for p := range uls {
		if p%2 == 1 {
			uls[p] = noisyUL
		} else {
			uls[p] = stableUL
		}
	}
	c.ProcUL = uls
	return &c
}
