package resilience

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/seeds"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// KindPanic makes Hit panic at matched sites — exercising the
	// supervision path exactly like a real bug would.
	KindPanic Kind = iota + 1
	// KindDelay makes Hit sleep at matched sites — driving timeouts.
	KindDelay
	// KindError makes Hit return a plain error at matched sites.
	KindError
	// KindCorrupt makes Corrupt flip a byte of the payload at matched
	// sites — driving the cache-integrity path.
	KindCorrupt
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindError:
		return "error"
	case KindCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Fault is one injection rule. A fault applies at a site when Site is
// a substring of the site name ("" matches every site), the
// deterministic per-site coin (Rate) comes up, and the firing budget
// (Times) is not exhausted.
//
// Determinism: Rate-based selection hashes (injector seed, rule, site)
// — a given site either always or never fires, independent of workers
// and scheduling. A Times budget on a pattern matching several
// concurrently visited sites is consumed in scheduling order and is
// therefore NOT deterministic across runs; deterministic chaos tests
// use site patterns precise enough to match a single site, or Rate
// selection with an unlimited budget.
type Fault struct {
	Site  string        // substring matched against site names; "" = all
	Kind  Kind          //
	Delay time.Duration // sleep duration for KindDelay (default 50ms)
	Rate  float64       // (0,1): deterministic per-site probability; else: every matched site
	Times int           // max firings; <= 0 = unlimited
}

// Event records one fired fault.
type Event struct {
	Site string `json:"site"`
	Kind string `json:"kind"`
}

// Injector injects faults at named sites. The zero/nil injector is
// inert: every method is safe on a nil receiver and does nothing, so
// production paths carry at most a nil check.
type Injector struct {
	seed int64

	mu     sync.Mutex
	faults []Fault
	fired  []int // per-fault firing count, guarded by mu
	events []Event
}

// NewInjector builds an injector whose Rate coins derive from seed.
func NewInjector(seed int64, faults ...Fault) *Injector {
	return &Injector{seed: seed, faults: faults, fired: make([]int, len(faults))}
}

// match decides — and records — whether fault f (index i) fires at
// site. Caller holds no lock.
func (in *Injector) match(i int, site string) bool {
	f := in.faults[i]
	if f.Site != "" && !strings.Contains(site, f.Site) {
		return false
	}
	if f.Rate > 0 && f.Rate < 1 {
		h := uint64(seeds.Derive(in.seed, fmt.Sprintf("fault/%d/%s/%s", i, f.Kind, site)))
		if float64(h>>11)/float64(1<<53) >= f.Rate {
			return false
		}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if f.Times > 0 && in.fired[i] >= f.Times {
		return false
	}
	in.fired[i]++
	in.events = append(in.events, Event{Site: site, Kind: f.Kind.String()})
	return true
}

// Hit is the panic/delay/error injection point: call it with the
// current site name at any supervised step. It sleeps for each matched
// delay fault, then returns an error or panics if an error/panic fault
// matches. A nil injector returns nil immediately.
func (in *Injector) Hit(site string) error {
	if in == nil {
		return nil
	}
	for i, f := range in.faults {
		switch f.Kind {
		case KindDelay:
			if in.match(i, site) {
				d := f.Delay
				if d <= 0 {
					d = 50 * time.Millisecond
				}
				time.Sleep(d)
			}
		case KindPanic:
			if in.match(i, site) {
				panic(fmt.Sprintf("resilience: injected panic at %s", site))
			}
		case KindError:
			if in.match(i, site) {
				return fmt.Errorf("resilience: injected error at %s", site)
			}
		}
	}
	return nil
}

// Corrupt is the data-corruption injection point: when a corrupt fault
// matches the site, one byte of data (a deterministic position in the
// first len-80 bytes, keeping injected corruption inside the payload
// rather than its trailer) is flipped in a copy; otherwise data is
// returned unchanged. A nil injector returns data unchanged.
func (in *Injector) Corrupt(site string, data []byte) []byte {
	if in == nil || len(data) == 0 {
		return data
	}
	for i, f := range in.faults {
		if f.Kind != KindCorrupt || !in.match(i, site) {
			continue
		}
		span := len(data) - 80
		if span <= 0 {
			span = len(data)
		}
		pos := int(uint64(seeds.Derive(in.seed, "corrupt/"+site)) % uint64(span))
		mangled := append([]byte(nil), data...)
		mangled[pos] ^= 0xFF
		return mangled
	}
	return data
}

// Events returns a copy of the fired-fault log, in firing order.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// Scope carries an injector plus a site-name prefix through a context,
// so nested layers compose full site names ("case/<name>/attempt0/" +
// "eval/3") without threading parameters through every signature.
type Scope struct {
	inj    *Injector
	prefix string
}

// Hit fires the scope's injector at prefix+suffix. Safe on a nil
// scope (no-op), so callers hoist the ScopeFrom lookup and guard only
// to avoid the string concatenation.
func (s *Scope) Hit(suffix string) error {
	if s == nil {
		return nil
	}
	return s.inj.Hit(s.prefix + suffix)
}

type scopeKey struct{}

// WithScope attaches an injection scope to ctx; a nil injector
// returns ctx unchanged, keeping fault-free runs free of the context
// value entirely.
func WithScope(ctx context.Context, inj *Injector, prefix string) context.Context {
	if inj == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, &Scope{inj: inj, prefix: prefix})
}

// ScopeFrom returns the attached scope, or nil.
func ScopeFrom(ctx context.Context) *Scope {
	s, _ := ctx.Value(scopeKey{}).(*Scope)
	return s
}
