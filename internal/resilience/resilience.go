// Package resilience is the fault-tolerance substrate of the
// experiment pipeline: panic supervision that converts crashes into
// typed errors, deterministic retry backoff, and a seed-derived fault
// injector for chaos testing. The paper's subject is robustness of
// schedules under uncertainty; this package gives the pipeline itself
// the same operational contract — complete as much work as possible
// under adverse conditions, and report honestly what failed.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/seeds"
)

// PanicError is a recovered panic promoted to an error: the panic
// value plus the stack of the panicking goroutine, captured at the
// recovery site. A supervised pool job that panics fails its batch
// with a PanicError instead of crashing the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Protect runs fn, converting a panic into a *PanicError (with stack)
// instead of letting it unwind past the caller. The happy path costs
// one deferred function call.
func Protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// IsPanic reports whether err wraps a recovered panic.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// CaseError is the typed failure of one experimental case after
// supervision gave up: which case, how many attempts were made, the
// kind of the final failure, and the underlying error. The stack of a
// panicking attempt travels inside Err (a *PanicError).
type CaseError struct {
	Case     string
	Attempts int
	Kind     string // "panic", "timeout", or "error"
	Err      error
}

func (e *CaseError) Error() string {
	return fmt.Sprintf("case %q failed (%s) after %d attempt(s): %v",
		e.Case, e.Kind, e.Attempts, e.Err)
}

func (e *CaseError) Unwrap() error { return e.Err }

// ClassifyKind names the failure class of an attempt error: "panic"
// for recovered panics, "timeout" for deadline expiry, "error"
// otherwise. The caller is responsible for distinguishing its own
// deadline from an enclosing cancellation before calling this.
func ClassifyKind(err error) string {
	switch {
	case IsPanic(err):
		return "panic"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	default:
		return "error"
	}
}

// RetryPolicy bounds the supervised retry loop: up to MaxRetries
// re-attempts after the first failure, sleeping an exponentially
// growing, jittered, capped delay between attempts.
type RetryPolicy struct {
	MaxRetries int
	BaseDelay  time.Duration // first backoff (default 50ms)
	MaxDelay   time.Duration // backoff cap (default 2s)
}

// DefaultRetryPolicy returns the policy used when the caller only
// picks a retry count.
func DefaultRetryPolicy(maxRetries int) RetryPolicy {
	return RetryPolicy{MaxRetries: maxRetries, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// Backoff returns the delay before re-attempt number attempt (1-based:
// the delay after the first failure is Backoff(1)). The delay doubles
// per attempt from BaseDelay up to MaxDelay, with a deterministic
// jitter in [0.5, 1.0]× derived from (seed, label, attempt) — seeded
// jitter keeps retry storms decorrelated across cases while leaving
// runs reproducible.
func (p RetryPolicy) Backoff(attempt int, seed int64, label string) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	// Deterministic jitter in [0.5, 1.0]: a hash of the identity, not
	// the wall clock, so two runs of the same sweep back off alike.
	h := uint64(seeds.Derive(seed, fmt.Sprintf("backoff/%s/%d", label, attempt)))
	frac := float64(h>>11) / float64(1<<53) // uniform in [0, 1)
	return time.Duration((0.5 + 0.5*frac) * float64(d))
}

// Sleep blocks for d or until ctx is cancelled, returning ctx.Err() in
// the latter case.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
