package resilience

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProtectConvertsPanicWithStack(t *testing.T) {
	err := Protect(func() error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Protect returned %v, want *PanicError", err)
	}
	if pe.Value != "boom" {
		t.Errorf("panic value %v, want boom", pe.Value)
	}
	if !bytes.Contains(pe.Stack, []byte("resilience")) {
		t.Error("PanicError carries no stack")
	}
	if !IsPanic(err) {
		t.Error("IsPanic misses a PanicError")
	}
	if !IsPanic(fmt.Errorf("wrapped: %w", err)) {
		t.Error("IsPanic misses a wrapped PanicError")
	}
	if err := Protect(func() error { return nil }); err != nil {
		t.Errorf("clean fn returned %v", err)
	}
	want := errors.New("plain")
	if err := Protect(func() error { return want }); !errors.Is(err, want) {
		t.Errorf("plain error not passed through: %v", err)
	}
}

func TestClassifyKind(t *testing.T) {
	if k := ClassifyKind(Protect(func() error { panic(1) })); k != "panic" {
		t.Errorf("panic classified as %q", k)
	}
	if k := ClassifyKind(fmt.Errorf("x: %w", context.DeadlineExceeded)); k != "timeout" {
		t.Errorf("deadline classified as %q", k)
	}
	if k := ClassifyKind(errors.New("other")); k != "error" {
		t.Errorf("plain error classified as %q", k)
	}
}

func TestCaseErrorUnwraps(t *testing.T) {
	inner := Protect(func() error { panic("x") })
	ce := &CaseError{Case: "c", Attempts: 3, Kind: "panic", Err: inner}
	if !IsPanic(ce) {
		t.Error("CaseError does not unwrap to its PanicError")
	}
	for _, want := range []string{"c", "panic", "3"} {
		if !strings.Contains(ce.Error(), want) {
			t.Errorf("CaseError message %q lacks %q", ce.Error(), want)
		}
	}
}

func TestBackoffDeterministicBoundedGrowing(t *testing.T) {
	p := DefaultRetryPolicy(5)
	if a, b := p.Backoff(2, 7, "case-a"), p.Backoff(2, 7, "case-a"); a != b {
		t.Fatalf("backoff not deterministic: %v vs %v", a, b)
	}
	if a, b := p.Backoff(2, 7, "case-a"), p.Backoff(2, 7, "case-b"); a == b {
		t.Error("different labels share jitter")
	}
	prevMax := time.Duration(0)
	for attempt := 1; attempt <= 10; attempt++ {
		d := p.Backoff(attempt, 1, "x")
		// Jitter spans [0.5, 1.0]× the exponential step.
		lo, hi := time.Duration(0), p.MaxDelay
		if d < lo || d > hi {
			t.Errorf("attempt %d backoff %v outside [%v, %v]", attempt, d, lo, hi)
		}
		if d > prevMax {
			prevMax = d
		}
	}
	if prevMax > p.MaxDelay {
		t.Errorf("backoff exceeds cap: %v > %v", prevMax, p.MaxDelay)
	}
	if base := p.Backoff(1, 1, "x"); base < p.BaseDelay/2 || base > p.BaseDelay {
		t.Errorf("first backoff %v outside [base/2, base]", base)
	}
}

func TestSleepHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Sleep returned %v", err)
	}
	if err := Sleep(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("Sleep returned %v", err)
	}
}

func TestInjectorNilIsInert(t *testing.T) {
	var in *Injector
	if err := in.Hit("anything"); err != nil {
		t.Error("nil injector fired")
	}
	data := []byte("abc")
	if got := in.Corrupt("s", data); !bytes.Equal(got, data) {
		t.Error("nil injector corrupted data")
	}
	if in.Events() != nil {
		t.Error("nil injector has events")
	}
	var s *Scope
	if err := s.Hit("x"); err != nil {
		t.Error("nil scope fired")
	}
}

func TestInjectorExplicitRuleFiresOnce(t *testing.T) {
	in := NewInjector(1, Fault{Site: "case/a/attempt0/eval/3", Kind: KindPanic, Times: 1})
	if err := in.Hit("case/a/attempt0/eval/2"); err != nil {
		t.Fatal("non-matching site fired")
	}
	err := Protect(func() error { return in.Hit("case/a/attempt0/eval/3") })
	if !IsPanic(err) {
		t.Fatalf("matched panic site returned %v, want panic", err)
	}
	// Budget of 1 is spent: the same site no longer fires.
	if err := Protect(func() error { return in.Hit("case/a/attempt0/eval/3") }); err != nil {
		t.Fatalf("exhausted fault fired again: %v", err)
	}
	ev := in.Events()
	if len(ev) != 1 || ev[0].Kind != "panic" || ev[0].Site != "case/a/attempt0/eval/3" {
		t.Errorf("event log %+v, want one panic event", ev)
	}
}

func TestInjectorErrorAndDelay(t *testing.T) {
	in := NewInjector(1,
		Fault{Site: "slow", Kind: KindDelay, Delay: 10 * time.Millisecond},
		Fault{Site: "bad", Kind: KindError},
	)
	start := time.Now()
	if err := in.Hit("step/slow/1"); err != nil {
		t.Fatalf("delay site returned %v", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("delay fault did not sleep")
	}
	if err := in.Hit("step/bad/1"); err == nil {
		t.Error("error fault returned nil")
	}
}

func TestInjectorRateDeterministicPerSite(t *testing.T) {
	in := NewInjector(42, Fault{Kind: KindError, Rate: 0.3})
	fired := map[string]bool{}
	n := 0
	for i := 0; i < 200; i++ {
		site := fmt.Sprintf("case/%d/eval", i)
		fired[site] = in.Hit(site) != nil
		if fired[site] {
			n++
		}
	}
	if n == 0 || n == 200 {
		t.Fatalf("rate 0.3 fired %d/200 sites", n)
	}
	// Re-visiting the same sites reproduces the exact decision set.
	again := NewInjector(42, Fault{Kind: KindError, Rate: 0.3})
	for site, want := range fired {
		if got := again.Hit(site) != nil; got != want {
			t.Fatalf("site %s decision changed across injectors", site)
		}
	}
	// A different seed draws a different decision set.
	other := NewInjector(43, Fault{Kind: KindError, Rate: 0.3})
	diff := 0
	for site, want := range fired {
		if (other.Hit(site) != nil) != want {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seed does not influence rate decisions")
	}
}

func TestInjectorCorruptFlipsOneByteDeterministically(t *testing.T) {
	in := NewInjector(7, Fault{Site: "cache/put/k1", Kind: KindCorrupt, Times: 1})
	data := bytes.Repeat([]byte("0123456789"), 20)
	clean := in.Corrupt("cache/put/other", data)
	if !bytes.Equal(clean, data) {
		t.Fatal("non-matching site corrupted")
	}
	mangled := NewInjector(7, Fault{Site: "cache/put/k1", Kind: KindCorrupt}).Corrupt("cache/put/k1", data)
	if bytes.Equal(mangled, data) {
		t.Fatal("matching site not corrupted")
	}
	diff, diffAt := 0, -1
	for i := range data {
		if data[i] != mangled[i] {
			diff++
			diffAt = i
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes flipped, want 1", diff)
	}
	if diffAt >= len(data)-80 {
		t.Errorf("flip at %d lands in the %d-byte trailer zone", diffAt, 80)
	}
	again := NewInjector(7, Fault{Site: "cache/put/k1", Kind: KindCorrupt}).Corrupt("cache/put/k1", data)
	if !bytes.Equal(mangled, again) {
		t.Error("corruption not deterministic")
	}
}

func TestInjectorConcurrentBudget(t *testing.T) {
	in := NewInjector(1, Fault{Site: "hot", Kind: KindError, Times: 3})
	var hits int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if in.Hit("hot") != nil {
					mu.Lock()
					hits++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if hits != 3 {
		t.Errorf("budget 3 fired %d times under concurrency", hits)
	}
	if got := len(in.Events()); got != 3 {
		t.Errorf("event log has %d entries, want 3", got)
	}
}

func TestScopeComposesPrefix(t *testing.T) {
	in := NewInjector(1, Fault{Site: "case/x/attempt1/eval/2", Kind: KindError})
	ctx := WithScope(context.Background(), in, "case/x/attempt1/")
	s := ScopeFrom(ctx)
	if s == nil {
		t.Fatal("scope not attached")
	}
	if err := s.Hit("eval/1"); err != nil {
		t.Error("wrong suffix fired")
	}
	if err := s.Hit("eval/2"); err == nil {
		t.Error("composed site did not fire")
	}
	if WithScope(context.Background(), nil, "p") != context.Background() {
		t.Error("nil injector should not attach a scope")
	}
	if ScopeFrom(context.Background()) != nil {
		t.Error("empty context has a scope")
	}
}
