// Package robustness implements the eight robustness metrics compared
// by the paper (§IV): expected makespan, makespan standard deviation,
// makespan differential entropy, average slack, slack standard
// deviation, average lateness, and the absolute and relative
// probabilistic metrics. Metrics can be computed from an analytic
// makespan distribution (stochastic.Numeric) or directly from
// Monte-Carlo samples.
package robustness

import (
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/numeric"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

// dagTask keeps the signatures below readable.
type dagTask = dag.Task

// Params holds the metric hyper-parameters of §V.
type Params struct {
	Delta    float64 // absolute probabilistic half-width (paper: 0.1)
	Gamma    float64 // relative probabilistic factor (paper: 1.0003)
	GridSize int     // density grid (paper: 64); <= 0 selects the default
}

// DefaultParams returns the paper's δ = 0.1, γ = 1.0003.
func DefaultParams() Params { return Params{Delta: 0.1, Gamma: 1.0003} }

// Metrics is the paper's metric vector for one schedule. All metrics
// are reported raw (not inverted); the experiment layer flips the
// slack and the probabilistic metrics so that smaller is always better
// when correlating, exactly as the paper does for its plots.
type Metrics struct {
	Makespan    float64 // E(M), the expected makespan
	StdDev      float64 // σ_M, makespan standard deviation
	Entropy     float64 // h(M), differential entropy of the makespan
	AvgSlack    float64 // S = Σ_i (M − Bl(i) − Tl(i)) on mean durations
	SlackStdDev float64 // σ_S, standard deviation of per-task slacks
	Lateness    float64 // L = E(M | M > E(M)) − E(M)
	AbsProb     float64 // A(δ) = P(E(M)−δ ≤ M ≤ E(M)+δ)
	RelProb     float64 // R(γ) = P(E(M)/γ ≤ M ≤ γ·E(M))
}

// MetricNames lists the metric labels in Vector order, matching the
// figures of the paper.
var MetricNames = []string{
	"Average Makespan",
	"Makespan std. dev.",
	"Makespan entropy",
	"Average Slack",
	"Slack std. dev.",
	"Average lateness",
	"Abs. probabilistic",
	"Rel. probabilistic",
}

// NumMetrics is the size of the metric vector.
const NumMetrics = 8

// Vector returns the metrics in MetricNames order.
func (m Metrics) Vector() [NumMetrics]float64 {
	return [NumMetrics]float64{
		m.Makespan, m.StdDev, m.Entropy, m.AvgSlack,
		m.SlackStdDev, m.Lateness, m.AbsProb, m.RelProb,
	}
}

// RelProbByMakespan is the §VII variant: the relative probabilistic
// metric divided by the expected makespan, which the paper shows is
// almost perfectly correlated with σ_M once inverted.
func (m Metrics) RelProbByMakespan() float64 {
	if m.Makespan == 0 { //reprovet:allow floateq division guard: only an exactly-zero makespan is undefined
		return 0
	}
	return m.RelProb / m.Makespan
}

// String renders a short human-readable summary.
func (m Metrics) String() string {
	return fmt.Sprintf("E(M)=%.4g σ=%.4g h=%.4g S=%.4g σS=%.4g L=%.4g A=%.4g R=%.4g",
		m.Makespan, m.StdDev, m.Entropy, m.AvgSlack, m.SlackStdDev, m.Lateness, m.AbsProb, m.RelProb)
}

// FromDistribution computes the five distribution-based metrics from an
// analytic makespan distribution and fills the slack metrics from the
// schedule's mean-value disjunctive graph, which it rebuilds per call.
// This is the retained reference path; pipelines that already hold a
// compiled evaluation model (makespan.EvalModel) use
// FromDistributionSlacks with the model's slack vector instead, which
// is identical without the rebuild.
func FromDistribution(scen *platform.Scenario, s *schedule.Schedule, rv *stochastic.Numeric, p Params) (Metrics, error) {
	var m Metrics
	fillDistribution(&m, rv, p)
	if err := fillSlack(scen, s, &m); err != nil {
		return m, err
	}
	return m, nil
}

// FromDistributionSlacks computes the metric vector from an analytic
// makespan distribution and a precomputed per-task slack vector (§IV,
// mean durations) — the compiled-evaluation form of FromDistribution.
func FromDistributionSlacks(rv *stochastic.Numeric, slacks []float64, p Params) Metrics {
	var m Metrics
	fillDistribution(&m, rv, p)
	applySlacks(&m, slacks)
	return m
}

// fillDistribution fills the five distribution-based metrics.
func fillDistribution(m *Metrics, rv *stochastic.Numeric, p Params) {
	m.Makespan = rv.Mean()
	m.StdDev = rv.StdDev()
	m.Entropy = rv.Entropy()
	m.Lateness = latenessOf(rv, m.Makespan)
	m.AbsProb = probWithin(rv, m.Makespan-p.Delta, m.Makespan+p.Delta)
	if p.Gamma > 0 {
		m.RelProb = probWithin(rv, m.Makespan/p.Gamma, m.Makespan*p.Gamma)
	}
}

// applySlacks fills the two slack metrics from a per-task slack vector.
func applySlacks(m *Metrics, slacks []float64) {
	m.AvgSlack = numeric.KahanSum(slacks)
	m.SlackStdDev = numeric.StdDev(slacks)
}

// FromSamples computes the metrics from Monte-Carlo makespan samples;
// the entropy uses a histogram density with the same grid size as the
// analytic pipeline. This is the retained reference path: it rebuilds
// the schedule's disjunctive graph to derive the slack metrics.
// Pipelines that already hold a compiled evaluation model
// (makespan.EvalModel) call its MetricsFromSamples, which pairs
// FromSamplesSlacks with the model's slack vector — identical values,
// no rebuild.
func FromSamples(scen *platform.Scenario, s *schedule.Schedule, emp *stochastic.Empirical, p Params) (Metrics, error) {
	var m Metrics
	fillSampleDist(&m, emp, p)
	if err := fillSlack(scen, s, &m); err != nil {
		return m, err
	}
	return m, nil
}

// FromSamplesSlacks computes the metric vector from Monte-Carlo
// makespan samples and a precomputed per-task slack vector (§IV, mean
// durations) — the compiled-evaluation form of FromSamples.
func FromSamplesSlacks(emp *stochastic.Empirical, slacks []float64, p Params) Metrics {
	var m Metrics
	fillSampleDist(&m, emp, p)
	applySlacks(&m, slacks)
	return m
}

// fillSampleDist fills the distribution-based metrics from samples.
func fillSampleDist(m *Metrics, emp *stochastic.Empirical, p Params) {
	m.Makespan = emp.Mean()
	m.StdDev = emp.StdDev()
	m.Entropy = emp.ToNumeric(p.GridSize).Entropy()
	m.Lateness = emp.LatenessAboveMean()
	m.AbsProb = emp.ProbWithin(m.Makespan-p.Delta, m.Makespan+p.Delta)
	if p.Gamma > 0 {
		m.RelProb = emp.ProbWithin(m.Makespan/p.Gamma, m.Makespan*p.Gamma)
	}
}

// FromKernelStats computes the metrics from the realization kernel's
// streaming accumulator: the distribution-based metrics come from the
// exact streaming moments and the fixed-range histogram, so
// metric-only Monte-Carlo callers never materialize (or sort) the
// full sample slice. Quantile-shaped quantities (lateness, the
// probabilistic metrics, the entropy density) are histogram
// estimates, accurate to the accumulator's bin width.
func FromKernelStats(scen *platform.Scenario, s *schedule.Schedule, st *schedule.MCStats, p Params) (Metrics, error) {
	var m Metrics
	fillKernelDist(&m, st, p)
	if err := fillSlack(scen, s, &m); err != nil {
		return m, err
	}
	return m, nil
}

// FromKernelStatsSlacks computes the metric vector from the kernel's
// streaming accumulator and a precomputed per-task slack vector — the
// compiled-evaluation form of FromKernelStats.
func FromKernelStatsSlacks(st *schedule.MCStats, slacks []float64, p Params) Metrics {
	var m Metrics
	fillKernelDist(&m, st, p)
	applySlacks(&m, slacks)
	return m
}

// fillKernelDist fills the distribution-based metrics from the
// streaming accumulator.
func fillKernelDist(m *Metrics, st *schedule.MCStats, p Params) {
	m.Makespan = st.Mean()
	m.StdDev = st.StdDev()
	m.Entropy = st.ToNumeric(p.GridSize).Entropy()
	m.Lateness = st.LatenessAboveMean()
	m.AbsProb = st.ProbWithin(m.Makespan-p.Delta, m.Makespan+p.Delta)
	if p.Gamma > 0 {
		m.RelProb = st.ProbWithin(m.Makespan/p.Gamma, m.Makespan*p.Gamma)
	}
}

// latenessOf computes E(M') − E(M) where M' is M conditioned on
// exceeding its mean. The integrand is truncated at the mean, so the
// tail integrals are evaluated on a fine spline-resampled grid over
// [mean, hi] to avoid the discontinuity error a coarse quadrature
// would pick up.
func latenessOf(rv *stochastic.Numeric, mean float64) float64 {
	if rv.IsPoint() || mean >= rv.Hi() {
		return 0
	}
	lo := mean
	if lo < rv.Lo() {
		lo = rv.Lo()
	}
	const fine = 1025
	xs := numeric.Linspace(lo, rv.Hi(), fine)
	h := xs[1] - xs[0]
	mass := rv.PDFOnGrid(xs)
	mom := make([]float64, fine)
	for i, x := range xs {
		mom[i] = x * mass[i]
	}
	pm := numeric.SimpsonUniform(mass, h)
	if pm <= 1e-12 {
		return 0
	}
	return numeric.SimpsonUniform(mom, h)/pm - mean
}

// probWithin evaluates P(lo <= M <= hi) from the CDF.
func probWithin(rv *stochastic.Numeric, lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	v := rv.CDFAt(hi) - rv.CDFAt(lo)
	return numeric.Clamp(v, 0, 1)
}

// fillSlack computes the slack metrics of §IV on the schedule's
// disjunctive graph with all durations replaced by their means (the
// paper's approximation of the average slack): S = Σ_i s_i with
// s_i = M − Bl(i) − Tl(i), and σ_S the population standard deviation
// of the s_i. (The paper's printed σ_S formula omits the 1/n; any
// affine rescaling is invisible to the Pearson correlations the metric
// is used in.)
func fillSlack(scen *platform.Scenario, s *schedule.Schedule, m *Metrics) error {
	dg, err := s.Disjunctive(scen.G)
	if err != nil {
		return err
	}
	n := scen.G.N()
	nodeW := make([]float64, n)
	for i := 0; i < n; i++ {
		nodeW[i] = scen.MeanTask(dagTask(i), s.Proc[i])
	}
	edgeW := func(from, to dagTask) float64 {
		// Serialization edges carry volume 0 and join same-processor
		// tasks, so their mean communication time is 0.
		return scen.MeanComm(from, to, s.Proc[from], s.Proc[to])
	}
	slacks, err := dg.Slacks(nodeW, edgeW)
	if err != nil {
		return err
	}
	applySlacks(m, slacks)
	return nil
}

// VerifySlackIdentity checks the paper's §V consistency test: the
// bottom level of an entry task on the critical path equals the
// critical-path length, i.e. a zero-slack task exists. Returns the
// critical-path length on mean durations. This is the retained
// map-graph reference; the compiled path is
// makespan.EvalModel.SlackIdentity, which runs the same test on the
// model's flat slack vector.
func VerifySlackIdentity(scen *platform.Scenario, s *schedule.Schedule) (float64, error) {
	dg, err := s.Disjunctive(scen.G)
	if err != nil {
		return 0, err
	}
	n := scen.G.N()
	nodeW := make([]float64, n)
	for i := 0; i < n; i++ {
		nodeW[i] = scen.MeanTask(dagTask(i), s.Proc[i])
	}
	edgeW := func(from, to dagTask) float64 {
		return scen.MeanComm(from, to, s.Proc[from], s.Proc[to])
	}
	slacks, err := dg.Slacks(nodeW, edgeW)
	if err != nil {
		return 0, err
	}
	min := math.Inf(1)
	for _, v := range slacks {
		if v < min {
			min = v
		}
	}
	if min > 1e-6 {
		return 0, fmt.Errorf("robustness: no zero-slack task (min slack %g)", min)
	}
	return dg.CriticalPathLength(nodeW, edgeW)
}
