package robustness_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/graphgen"
	"repro/internal/makespan"
	"repro/internal/platform"
	. "repro/internal/robustness"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// simpleScenario: 3-task chain on 2 procs, ETC 10 everywhere.
func simpleScenario(ul float64) (*platform.Scenario, *schedule.Schedule) {
	g := graphgen.Chain(3, 0)
	etc := [][]float64{{10, 10}, {10, 10}, {10, 10}}
	tau, lat := platform.NewUniformNetwork(2, 1, 0)
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: 2, ETC: etc, Tau: tau, Lat: lat},
		UL: ul,
	}
	s := schedule.New(3, 2)
	s.Assign(0, 0)
	s.Assign(1, 0)
	s.Assign(2, 0)
	return scen, s
}

func TestMetricsOnNormalDistribution(t *testing.T) {
	// Closed forms for N(µ=100, σ=5): lateness = σ·sqrt(2/π),
	// entropy = ½ln(2πeσ²), A(δ) = 2Φ(δ/σ)−1.
	scen, s := simpleScenario(1.1)
	rv := stochastic.FromDist(stochastic.Normal{Mu: 100, Sigma: 5}, 256)
	p := Params{Delta: 2, Gamma: 1.02}
	m, err := FromDistribution(scen, s, rv, p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Makespan, 100, 0.05) {
		t.Errorf("mean = %g, want 100", m.Makespan)
	}
	if !almostEqual(m.StdDev, 5, 0.05) {
		t.Errorf("std = %g, want 5", m.StdDev)
	}
	wantEntropy := 0.5 * math.Log(2*math.Pi*math.E*25)
	if !almostEqual(m.Entropy, wantEntropy, 0.05) {
		t.Errorf("entropy = %g, want %g", m.Entropy, wantEntropy)
	}
	wantLateness := 5 * math.Sqrt(2/math.Pi)
	if !almostEqual(m.Lateness, wantLateness, 0.1) {
		t.Errorf("lateness = %g, want %g", m.Lateness, wantLateness)
	}
	wantA := 2*stochastic.Normal{Mu: 0, Sigma: 1}.CDF(2.0/5) - 1
	if !almostEqual(m.AbsProb, wantA, 0.01) {
		t.Errorf("A(2) = %g, want %g", m.AbsProb, wantA)
	}
	// R(1.02): P(100/1.02 <= M <= 102) — both bounds ~±2σ/5.
	if m.RelProb <= 0 || m.RelProb >= 1 {
		t.Errorf("R = %g, want in (0,1)", m.RelProb)
	}
}

func TestSlackChainIsZero(t *testing.T) {
	// A chain on one processor has no slack anywhere.
	scen, s := simpleScenario(1.2)
	rv, err := makespan.EvaluateClassic(scen, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromDistribution(scen, s, rv, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.AvgSlack, 0, 1e-9) {
		t.Errorf("chain slack = %g, want 0", m.AvgSlack)
	}
	if !almostEqual(m.SlackStdDev, 0, 1e-9) {
		t.Errorf("chain slack std = %g, want 0", m.SlackStdDev)
	}
}

func TestSlackParallelTasks(t *testing.T) {
	// Two independent tasks on two processors, durations 10 and 4
	// (UL=1): makespan 10, slacks {0, 6}. S = 6, σS = 3.
	g := dag.New(2)
	etc := [][]float64{{10, 10}, {4, 4}}
	tau, lat := platform.NewUniformNetwork(2, 1, 0)
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: 2, ETC: etc, Tau: tau, Lat: lat},
		UL: 1,
	}
	s := schedule.New(2, 2)
	s.Assign(0, 0)
	s.Assign(1, 1)
	rv, err := makespan.EvaluateClassic(scen, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromDistribution(scen, s, rv, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.AvgSlack, 6, 1e-9) {
		t.Errorf("S = %g, want 6", m.AvgSlack)
	}
	if !almostEqual(m.SlackStdDev, 3, 1e-9) {
		t.Errorf("σS = %g, want 3", m.SlackStdDev)
	}
	if !almostEqual(m.Makespan, 10, 1e-9) {
		t.Errorf("E(M) = %g, want 10", m.Makespan)
	}
	// Deterministic: σ, lateness 0; A and R are 1 (mass at the mean).
	if m.StdDev != 0 || m.Lateness != 0 {
		t.Error("deterministic schedule must have zero dispersion")
	}
	if m.AbsProb != 1 || m.RelProb != 1 {
		t.Errorf("A=%g R=%g, want 1", m.AbsProb, m.RelProb)
	}
}

func TestFromSamplesMatchesFromDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, w := graphgen.Random(graphgen.DefaultRandomParams(12), rng)
	tau, lat := platform.NewUniformNetwork(3, 1, 0)
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: 3, ETC: platform.GenerateETCFromWeights(w, 3, 0.5, rng), Tau: tau, Lat: lat},
		UL: 1.1,
	}
	s := schedule.New(g.N(), 3)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range order {
		s.Assign(task, rng.Intn(3))
	}
	rv, err := makespan.EvaluateClassic(scen, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := makespan.MonteCarlo(scen, s, 50000, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	ma, err := FromDistribution(scen, s, rv, p)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := FromSamples(scen, s, emp, p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ma.Makespan, mb.Makespan, 0.01*mb.Makespan) {
		t.Errorf("mean: analytic %g vs sampled %g", ma.Makespan, mb.Makespan)
	}
	if !almostEqual(ma.StdDev, mb.StdDev, 0.35*mb.StdDev+0.01) {
		t.Errorf("std: analytic %g vs sampled %g", ma.StdDev, mb.StdDev)
	}
	if !almostEqual(ma.Lateness, mb.Lateness, 0.35*mb.Lateness+0.01) {
		t.Errorf("lateness: analytic %g vs sampled %g", ma.Lateness, mb.Lateness)
	}
	// Slack metrics are identical: same deterministic computation.
	if ma.AvgSlack != mb.AvgSlack || ma.SlackStdDev != mb.SlackStdDev {
		t.Error("slack metrics must not depend on the distribution source")
	}
}

func TestVectorAndNames(t *testing.T) {
	m := Metrics{Makespan: 1, StdDev: 2, Entropy: 3, AvgSlack: 4, SlackStdDev: 5, Lateness: 6, AbsProb: 7, RelProb: 8}
	v := m.Vector()
	for i, want := range []float64{1, 2, 3, 4, 5, 6, 7, 8} {
		if v[i] != want {
			t.Errorf("vector[%d] = %g, want %g", i, v[i], want)
		}
	}
	if len(MetricNames) != NumMetrics {
		t.Error("MetricNames length mismatch")
	}
	if m.String() == "" {
		t.Error("empty String()")
	}
}

func TestRelProbByMakespan(t *testing.T) {
	m := Metrics{Makespan: 4, RelProb: 2}
	if m.RelProbByMakespan() != 0.5 {
		t.Error("RelProbByMakespan wrong")
	}
	if (Metrics{}).RelProbByMakespan() != 0 {
		t.Error("zero makespan should not divide")
	}
}

func TestLatenessMonotoneInSpread(t *testing.T) {
	scen, s := simpleScenario(1.1)
	narrow := stochastic.FromDist(stochastic.Normal{Mu: 50, Sigma: 1}, 128)
	wide := stochastic.FromDist(stochastic.Normal{Mu: 50, Sigma: 5}, 128)
	p := DefaultParams()
	mn, err := FromDistribution(scen, s, narrow, p)
	if err != nil {
		t.Fatal(err)
	}
	mw, err := FromDistribution(scen, s, wide, p)
	if err != nil {
		t.Fatal(err)
	}
	if mn.Lateness >= mw.Lateness {
		t.Errorf("lateness should grow with spread: %g vs %g", mn.Lateness, mw.Lateness)
	}
	if mn.AbsProb <= mw.AbsProb {
		t.Errorf("A(δ) should shrink with spread: %g vs %g", mn.AbsProb, mw.AbsProb)
	}
	if mn.Entropy >= mw.Entropy {
		t.Errorf("entropy should grow with spread: %g vs %g", mn.Entropy, mw.Entropy)
	}
}

func TestVerifySlackIdentity(t *testing.T) {
	scen, s := simpleScenario(1.1)
	cp, err := VerifySlackIdentity(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	// Chain of three tasks with mean duration 10·(1+0.1·2/7).
	want := 3 * 10 * (1 + 0.1*2.0/7.0)
	if !almostEqual(cp, want, 1e-9) {
		t.Errorf("critical path = %g, want %g", cp, want)
	}
}

// The streaming-accumulator metric path must agree with the
// materialized-sample path on the same realization stream: moments
// exactly (identical block merges), the histogram-estimated metrics
// within a couple of bin widths.
func TestFromKernelStatsMatchesFromSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, w := graphgen.Random(graphgen.DefaultRandomParams(15), rng)
	tau, lat := platform.NewUniformNetwork(3, 1, 0)
	scen := &platform.Scenario{
		G:  g,
		P:  &platform.Platform{M: 3, ETC: platform.GenerateETCFromWeights(w, 3, 0.5, rng), Tau: tau, Lat: lat},
		UL: 1.3,
	}
	s := schedule.New(g.N(), 3)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range order {
		s.Assign(task, rng.Intn(3))
	}
	const count = 30000
	opt := makespan.MCOptions{Sampler: stochastic.SamplerTable}
	emp, err := makespan.MonteCarloWith(scen, s, count, 7, opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := makespan.MonteCarloStats(scen, s, count, 7, opt)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	ms, err := FromSamples(scen, s, emp, p)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := FromKernelStats(scen, s, st, p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mk.Makespan, ms.Makespan, 1e-9*ms.Makespan) {
		t.Errorf("mean: streaming %g vs samples %g", mk.Makespan, ms.Makespan)
	}
	if !almostEqual(mk.StdDev, ms.StdDev, 1e-6*ms.StdDev) {
		t.Errorf("std: streaming %g vs samples %g", mk.StdDev, ms.StdDev)
	}
	binW := (st.Max() - st.Min()) / float64(schedule.DefaultHistBins)
	if !almostEqual(mk.Lateness, ms.Lateness, 2*binW+0.01*ms.Lateness) {
		t.Errorf("lateness: streaming %g vs samples %g", mk.Lateness, ms.Lateness)
	}
	if !almostEqual(mk.AbsProb, ms.AbsProb, 0.02) {
		t.Errorf("A(δ): streaming %g vs samples %g", mk.AbsProb, ms.AbsProb)
	}
	if !almostEqual(mk.RelProb, ms.RelProb, 0.02) {
		t.Errorf("R(γ): streaming %g vs samples %g", mk.RelProb, ms.RelProb)
	}
	// Both entropy paths histogram the same realizations onto the
	// same grid size; they differ only in the intermediate binning.
	if !almostEqual(mk.Entropy, ms.Entropy, 0.2) {
		t.Errorf("entropy: streaming %g vs samples %g", mk.Entropy, ms.Entropy)
	}
	if mk.AvgSlack != ms.AvgSlack || mk.SlackStdDev != ms.SlackStdDev {
		t.Error("slack metrics must not depend on the distribution source")
	}
}
