package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Cache is a disk-backed result store keyed by content hashes. It
// makes sweeps resumable: a finished job's encoded result is written
// under its key, and a rerun of the same sweep loads the stored bytes
// instead of recomputing. Writes are atomic (temp file + rename), so
// an interrupted run never leaves a truncated entry behind.
type Cache struct {
	dir string
}

// OpenCache opens (creating if necessary) a cache rooted at dir.
// Temp files orphaned by interrupted writes are swept on open.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("runner: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: open cache: %w", err)
	}
	if stale, err := filepath.Glob(filepath.Join(dir, "*.tmp-*")); err == nil {
		for _, f := range stale {
			// Age-gate the sweep: a live writer's temp file exists for
			// milliseconds before its rename, so only files old enough
			// to be orphans of a dead run are removed — never the
			// in-flight writes of another process sharing the dir.
			if fi, err := os.Stat(f); err == nil && time.Since(fi.ModTime()) > time.Hour {
				os.Remove(f)
			}
		}
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// path maps a key to its file. Keys are hex digests, so they are safe
// path components as-is.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the stored bytes for key, with ok = false when the entry
// does not exist.
func (c *Cache) Get(key string) (data []byte, ok bool, err error) {
	data, err = os.ReadFile(c.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("runner: cache get: %w", err)
	}
	return data, true, nil
}

// Put stores data under key atomically.
func (c *Cache) Put(key string, data []byte) error {
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("runner: cache put: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("runner: cache put: %w", werr)
		}
		return fmt.Errorf("runner: cache put: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache put: %w", err)
	}
	return nil
}

// Len reports the number of entries currently stored.
func (c *Cache) Len() (int, error) {
	matches, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return 0, err
	}
	return len(matches), nil
}

// Key derives a stable cache key from an ordered list of
// JSON-encodable parts (typically a format-version tag, the job spec,
// and the result-affecting configuration fields). Two jobs share a key
// exactly when every part encodes identically.
func Key(parts ...any) (string, error) {
	h := sha256.New()
	for _, p := range parts {
		b, err := json.Marshal(p)
		if err != nil {
			return "", fmt.Errorf("runner: cache key: %w", err)
		}
		h.Write(b)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
