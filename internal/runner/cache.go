package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Cache is a disk-backed result store keyed by content hashes. It
// makes sweeps resumable: a finished job's encoded result is written
// under its key, and a rerun of the same sweep loads the stored bytes
// instead of recomputing. Writes are atomic (temp file + rename), so
// an interrupted run never leaves a truncated entry behind.
//
// Entries carry an integrity trailer: Put appends a sha256 digest of
// the payload, Get verifies it and strips it. An entry whose digest no
// longer matches (bit rot, a torn write from a crashed kernel, a
// truncating copy) is moved to <dir>/quarantine/ and reported as a
// miss, so a resume recomputes the case instead of decoding garbage.
// Entries written before the trailer existed carry no digest and are
// served as-is.
type Cache struct {
	dir string

	// hookMu guards the hooks below against concurrent readers that
	// quarantine simultaneously.
	hookMu sync.Mutex
	// onQuarantine, when set, observes every quarantined entry.
	onQuarantine func(key, dest string)
	// corrupt, when set, transforms the sealed entry bytes before they
	// reach disk. Fault injection only (chaos tests, -chaos-corrupt).
	corrupt func(key string, data []byte) []byte
}

// sumMarker introduces the integrity trailer: a line appended after
// the payload holding the hex sha256 of everything before it. JSON
// payloads never contain a raw newline, so the last marker occurrence
// always belongs to the trailer, not the data.
const sumMarker = "\n//repro:sha256:"

// sealEntry appends the integrity trailer to a payload.
func sealEntry(data []byte) []byte {
	sum := sha256.Sum256(data)
	out := make([]byte, 0, len(data)+len(sumMarker)+sha256.Size*2+1)
	out = append(out, data...)
	out = append(out, sumMarker...)
	out = append(out, hex.EncodeToString(sum[:])...)
	return append(out, '\n')
}

// openEntry splits a stored entry into payload and verdict: ok=false
// means the trailer is present but does not verify — the file is
// corrupt. Files without a trailer are legacy entries, returned as-is.
func openEntry(raw []byte) (data []byte, ok bool) {
	idx := bytes.LastIndex(raw, []byte(sumMarker))
	if idx < 0 {
		return raw, true
	}
	tail := bytes.TrimSuffix(raw[idx+len(sumMarker):], []byte("\n"))
	if len(tail) != sha256.Size*2 {
		return nil, false
	}
	want, err := hex.DecodeString(string(tail))
	if err != nil {
		return nil, false
	}
	sum := sha256.Sum256(raw[:idx])
	if !bytes.Equal(sum[:], want) {
		return nil, false
	}
	return raw[:idx], true
}

// OpenCache opens (creating if necessary) a cache rooted at dir.
// Temp files orphaned by interrupted writes are swept on open.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("runner: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: open cache: %w", err)
	}
	if stale, err := filepath.Glob(filepath.Join(dir, "*.tmp-*")); err == nil {
		for _, f := range stale {
			// Age-gate the sweep: a live writer's temp file exists for
			// milliseconds before its rename, so only files old enough
			// to be orphans of a dead run are removed — never the
			// in-flight writes of another process sharing the dir.
			if fi, err := os.Stat(f); err == nil && time.Since(fi.ModTime()) > time.Hour { //reprovet:allow globalrand wall-clock age gates orphan-file cleanup only; results never depend on it
				os.Remove(f)
			}
		}
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// QuarantineDir returns the directory corrupt entries are moved to.
func (c *Cache) QuarantineDir() string { return filepath.Join(c.dir, "quarantine") }

// OnQuarantine registers fn to observe every entry the cache
// quarantines (corrupt digest, undecodable payload). fn may be called
// from concurrent readers; the cache serializes the calls.
func (c *Cache) OnQuarantine(fn func(key, dest string)) {
	c.hookMu.Lock()
	defer c.hookMu.Unlock()
	c.onQuarantine = fn
}

// SetCorruptor installs a fault-injection transform applied to the
// sealed entry bytes on every Put. Chaos testing only — it exists so
// injected disk corruption exercises exactly the bytes a real torn
// write would.
func (c *Cache) SetCorruptor(fn func(key string, data []byte) []byte) {
	c.hookMu.Lock()
	defer c.hookMu.Unlock()
	c.corrupt = fn
}

// path maps a key to its file. Keys are hex digests, so they are safe
// path components as-is.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the stored payload for key, with ok = false when the
// entry does not exist or failed integrity verification (in which case
// it has been quarantined — never silently deleted — and the caller
// should recompute).
func (c *Cache) Get(key string) (data []byte, ok bool, err error) {
	raw, err := os.ReadFile(c.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("runner: cache get: %w", err)
	}
	data, ok = openEntry(raw)
	if !ok {
		c.Quarantine(key)
		return nil, false, nil
	}
	return data, true, nil
}

// Quarantine moves the entry for key into the quarantine directory,
// preserving the corrupt bytes for post-mortem instead of deleting
// them, and returns the destination path. Concurrent readers may race
// to quarantine the same entry; exactly one wins the rename and fires
// the OnQuarantine hook, the others are no-ops.
func (c *Cache) Quarantine(key string) (dest string, err error) {
	qdir := c.QuarantineDir()
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return "", fmt.Errorf("runner: quarantine: %w", err)
	}
	dest = filepath.Join(qdir, key+".json")
	if err := os.Rename(c.path(key), dest); err != nil {
		// A concurrent reader already moved it (or it never existed);
		// either way the poisoned entry is out of the lookup path.
		return "", nil
	}
	c.hookMu.Lock()
	fn := c.onQuarantine
	if fn != nil {
		fn(key, dest)
	}
	c.hookMu.Unlock()
	return dest, nil
}

// Put stores data under key atomically, sealed with an integrity
// trailer.
func (c *Cache) Put(key string, data []byte) error {
	payload := sealEntry(data)
	c.hookMu.Lock()
	if c.corrupt != nil {
		payload = c.corrupt(key, payload)
	}
	c.hookMu.Unlock()
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("runner: cache put: %w", err)
	}
	_, werr := tmp.Write(payload)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("runner: cache put: %w", werr)
		}
		return fmt.Errorf("runner: cache put: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache put: %w", err)
	}
	return nil
}

// Len reports the number of entries currently stored (quarantined
// entries excluded).
func (c *Cache) Len() (int, error) {
	matches, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return 0, err
	}
	return len(matches), nil
}

// Key derives a stable cache key from an ordered list of
// JSON-encodable parts (typically a format-version tag, the job spec,
// and the result-affecting configuration fields). Two jobs share a key
// exactly when every part encodes identically.
func Key(parts ...any) (string, error) {
	h := sha256.New()
	for _, p := range parts {
		b, err := json.Marshal(p)
		if err != nil {
			return "", fmt.Errorf("runner: cache key: %w", err)
		}
		h.Write(b)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
