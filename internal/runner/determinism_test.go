package runner_test

// End-to-end determinism guarantees of the orchestrator, asserted on
// the real experiment pipeline: identical results at every worker
// count, and cache-resumed sweeps identical to uninterrupted ones.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/experiment"
	"repro/internal/runner"
)

// detConfig keeps the determinism sweeps fast: few schedules and a
// coarse density grid (determinism is scale-independent).
func detConfig() experiment.Config {
	cfg := experiment.DefaultConfig()
	cfg.Schedules = 10
	cfg.MCRealizations = 500
	cfg.GridSize = 32
	cfg.Seed = 7
	return cfg
}

// detSpecs returns a small mixed-family case list.
func detSpecs() []experiment.CaseSpec {
	derived := experiment.CaseSpec{Name: "det-derived-seed", Family: experiment.RandomFamily, N: 12, M: 3, UL: 1.01}
	return []experiment.CaseSpec{
		{Name: "det-cholesky", Family: experiment.CholeskyFamily, N: 10, M: 3, UL: 1.01, Seed: 11},
		{Name: "det-random", Family: experiment.RandomFamily, N: 20, M: 4, UL: 1.1, Seed: 12},
		{Name: "det-gauss", Family: experiment.GaussElimFamily, N: 15, M: 4, UL: 1.1, Seed: 13},
		derived.WithDerivedSeed(7),
	}
}

// encodeCases marshals results to canonical bytes (NaN-safe), the
// strictest practical equality for float-laden structs.
func encodeCases(t *testing.T, results []*experiment.CaseResult) []byte {
	t.Helper()
	data, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func runWithWorkers(t *testing.T, workers int, opts experiment.RunOptions) []byte {
	t.Helper()
	cfg := detConfig()
	cfg.Workers = workers
	pool := runner.NewPool(workers)
	defer pool.Close()
	opts.Pool = pool
	results, err := experiment.RunCases(context.Background(), detSpecs(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return encodeCases(t, results)
}

func TestRunCasesIdenticalAcrossWorkerCounts(t *testing.T) {
	serial := runWithWorkers(t, 1, experiment.RunOptions{})
	for _, workers := range []int{2, 8} {
		if parallel := runWithWorkers(t, workers, experiment.RunOptions{}); !bytes.Equal(serial, parallel) {
			t.Errorf("results differ between Workers=1 and Workers=%d", workers)
		}
	}
}

func TestFig6IdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig6 worker-count sweep is slow")
	}
	if raceEnabled {
		t.Skip("two full Fig6 sweeps exceed the race detector's budget; the weekly full tier runs this without -race")
	}
	run := func(workers int) []byte {
		cfg := detConfig()
		cfg.Workers = workers
		res, err := experiment.Fig6Run(context.Background(), cfg, experiment.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(run(1), run(8)) {
		t.Error("Fig6Result differs between Workers=1 and Workers=8")
	}
}

func TestCacheResumedRunMatchesUninterrupted(t *testing.T) {
	uncached := runWithWorkers(t, 4, experiment.RunOptions{})

	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := detSpecs()

	// Simulate an interrupted sweep: only the first half of the cases
	// completed and were cached.
	cfg := detConfig()
	if _, err := experiment.RunCases(context.Background(), specs[:2], cfg, experiment.RunOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if n, err := cache.Len(); err != nil || n != 2 {
		t.Fatalf("cache holds %d entries (err %v), want 2", n, err)
	}

	// The resumed full sweep must load those two and compute the rest,
	// producing exactly the uninterrupted results.
	resumed := runWithWorkers(t, 4, experiment.RunOptions{Cache: cache})
	if !bytes.Equal(uncached, resumed) {
		t.Error("cache-resumed sweep differs from the uninterrupted one")
	}
	if n, _ := cache.Len(); n != len(specs) {
		t.Errorf("cache holds %d entries after the full sweep, want %d", n, len(specs))
	}

	// A third run is served fully from cache and still matches.
	again := runWithWorkers(t, 4, experiment.RunOptions{Cache: cache})
	if !bytes.Equal(uncached, again) {
		t.Error("fully cached sweep differs from the uninterrupted one")
	}
}

// A sweep killed mid-run (context cancelled from the progress
// callback, as a crash or Ctrl-C would) must have cached the cases it
// finished, and a resume from that cache must produce byte-identical
// final output.
func TestCrashedSweepResumesByteIdentical(t *testing.T) {
	uncached := runWithWorkers(t, 4, experiment.RunOptions{})

	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := detSpecs()

	// Kill the sweep after the first finished case. One worker keeps
	// the crash point sharp: at most one more case can slip through the
	// admission race before cancellation lands.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := detConfig()
	cfg.Workers = 1
	_, err = experiment.RunCases(ctx, specs, cfg, experiment.RunOptions{
		Cache: cache,
		Progress: func(done, total int, name string) {
			if done == 1 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("killed sweep reported success")
	}
	n, err := cache.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || n >= len(specs) {
		t.Fatalf("crash left %d cached cases, want a strict non-empty prefix of %d", n, len(specs))
	}

	// The resume loads the finished prefix and computes the rest —
	// exactly the uninterrupted bytes, at a different worker count.
	resumed := runWithWorkers(t, 4, experiment.RunOptions{Cache: cache})
	if !bytes.Equal(uncached, resumed) {
		t.Error("crash-resumed sweep differs from the uninterrupted one")
	}
	if n, _ := cache.Len(); n != len(specs) {
		t.Errorf("cache holds %d entries after the resume, want %d", n, len(specs))
	}
}

func TestCacheKeyDistinguishesConfigs(t *testing.T) {
	spec := detSpecs()[0]
	base := detConfig()
	k1, err := experiment.CaseCacheKey(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	mod := base
	mod.Schedules++
	k2, _ := experiment.CaseCacheKey(spec, mod)
	if k1 == k2 {
		t.Error("schedule count not part of the cache key")
	}
	// Worker count and MC realizations do not affect case results and
	// must not fragment the cache.
	mod = base
	mod.Workers = 99
	mod.MCRealizations = 77777
	k3, _ := experiment.CaseCacheKey(spec, mod)
	if k1 != k3 {
		t.Error("result-neutral config fields fragment the cache")
	}
	spec2 := spec
	spec2.UL = 1.2
	k4, _ := experiment.CaseCacheKey(spec2, base)
	if k1 == k4 {
		t.Error("spec not part of the cache key")
	}
	// The Monte-Carlo kernel settings select a different realization
	// stream, so they must invalidate cached entries.
	mod = base
	mod.MCSampler = "table"
	k5, _ := experiment.CaseCacheKey(spec, mod)
	if k1 == k5 {
		t.Error("sampler mode not part of the cache key")
	}
	mod = base
	mod.MCBlockSize = 1024
	k6, _ := experiment.CaseCacheKey(spec, mod)
	if k1 == k6 {
		t.Error("MC block size not part of the cache key")
	}
}

func TestRunCasesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the sweep must bail out promptly
	_, err := experiment.RunCases(ctx, detSpecs(), detConfig(), experiment.RunOptions{})
	if err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
}
