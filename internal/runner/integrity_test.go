package runner

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/resilience"
)

func TestCachePutGetRoundTripsSealedEntries(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"answer":42}`)
	if err := c.Put("aaaa", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get("aaaa")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload round-trip mangled: %q", got)
	}
	// On disk the entry carries the trailer.
	raw, err := os.ReadFile(filepath.Join(c.Dir(), "aaaa.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(sumMarker)) {
		t.Error("stored entry has no integrity trailer")
	}
	if len(raw) <= len(payload) {
		t.Error("stored entry not longer than payload")
	}
}

func TestCacheLegacyEntryWithoutTrailerStillServed(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	legacy := []byte(`{"pre":"integrity"}`)
	if err := os.WriteFile(filepath.Join(c.Dir(), "bbbb.json"), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get("bbbb")
	if err != nil || !ok {
		t.Fatalf("legacy Get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, legacy) {
		t.Errorf("legacy payload mangled: %q", got)
	}
}

// corruptOnDisk flips one payload byte of a stored entry in place.
func corruptOnDisk(t *testing.T, c *Cache, key string) {
	t.Helper()
	p := filepath.Join(c.Dir(), key+".json")
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCacheCorruptEntryQuarantinedAsMiss(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var events [][2]string
	c.OnQuarantine(func(key, dest string) { events = append(events, [2]string{key, dest}) })
	if err := c.Put("cccc", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	corruptOnDisk(t, c, "cccc")

	_, ok, err := c.Get("cccc")
	if err != nil {
		t.Fatalf("corrupt Get errored: %v", err)
	}
	if ok {
		t.Fatal("corrupt entry served as a hit")
	}
	// The poisoned file moved to quarantine/ and is preserved there.
	if _, err := os.Stat(filepath.Join(c.Dir(), "cccc.json")); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt entry still in the lookup path")
	}
	qfile := filepath.Join(c.QuarantineDir(), "cccc.json")
	if _, err := os.Stat(qfile); err != nil {
		t.Errorf("quarantined bytes not preserved: %v", err)
	}
	if len(events) != 1 || events[0][0] != "cccc" || events[0][1] != qfile {
		t.Errorf("OnQuarantine events %v, want one for cccc", events)
	}
	if n, err := c.Len(); err != nil || n != 0 {
		t.Errorf("Len counts quarantined entries: %d (err %v)", n, err)
	}
	// The key is writable again and verifies after the recompute.
	if err := c.Put("cccc", []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := c.Get("cccc"); !ok || !bytes.Equal(got, []byte(`{"v":2}`)) {
		t.Error("recomputed entry not served")
	}
}

func TestCacheTruncatedTrailerQuarantined(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("dddd", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(c.Dir(), "dddd.json")
	raw, _ := os.ReadFile(p)
	if err := os.WriteFile(p, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get("dddd"); ok || err != nil {
		t.Fatalf("truncated entry: ok=%v err=%v, want miss", ok, err)
	}
	if _, err := os.Stat(filepath.Join(c.QuarantineDir(), "dddd.json")); err != nil {
		t.Error("truncated entry not quarantined")
	}
}

// Concurrent readers hitting the same corrupt entry must quarantine it
// exactly once, race-free (run under -race in CI).
func TestCacheConcurrentQuarantine(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	events := 0
	c.OnQuarantine(func(key, dest string) { mu.Lock(); events++; mu.Unlock() })
	if err := c.Put("eeee", bytes.Repeat([]byte("x"), 4096)); err != nil {
		t.Fatal(err)
	}
	corruptOnDisk(t, c, "eeee")
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok, err := c.Get("eeee"); ok || err != nil {
				t.Errorf("concurrent Get on corrupt entry: ok=%v err=%v", ok, err)
			}
		}()
	}
	wg.Wait()
	if events != 1 {
		t.Errorf("quarantine hook fired %d times, want 1", events)
	}
}

func TestCacheCorruptorInjectsBeforeDisk(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inj := resilience.NewInjector(3, resilience.Fault{Site: "ffff", Kind: resilience.KindCorrupt, Times: 1})
	c.SetCorruptor(inj.Corrupt)
	if err := c.Put("ffff", bytes.Repeat([]byte(`{"v":3}`), 40)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get("ffff"); ok || err != nil {
		t.Fatalf("injected corruption not detected: ok=%v err=%v", ok, err)
	}
	if got := len(inj.Events()); got != 1 {
		t.Errorf("injector fired %d times, want 1", got)
	}
}
