// Package runner provides the experiment orchestration substrate: a
// shared bounded worker pool that treats every schedule evaluation of
// every case as one job stream, a disk-backed result cache so
// interrupted sweeps resume instead of recomputing, and deterministic
// per-job seed derivation so results are byte-identical regardless of
// worker count or scheduling order.
package runner

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/resilience"
)

// Pool is a bounded worker pool. A single Pool is meant to be shared
// by every concurrently running case of a sweep: cases submit their
// per-schedule evaluation jobs into the same stream, so the pool stays
// saturated even while individual cases are in their serial phases.
//
// Jobs write their outputs into caller-owned, pre-indexed slots, which
// keeps results independent of the order in which workers pick jobs
// up.
type Pool struct {
	jobs    chan func()
	wg      sync.WaitGroup
	workers int

	closeOnce sync.Once
}

// NewPool starts a pool with the given number of workers; workers <= 0
// selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{jobs: make(chan func()), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				runSupervised(job)
			}
		}()
	}
	return p
}

// runSupervised executes one job, absorbing a panic so the worker
// goroutine — and with it the pool's ability to make progress — always
// survives. Batch jobs convert their own panics into typed errors
// before this last-ditch recovery is reached; it exists for raw Submit
// jobs, whose panic would otherwise kill the worker and deadlock
// Close.
func runSupervised(job func()) {
	defer func() { _ = recover() }()
	job()
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Submit hands a job to the pool, blocking until a worker accepts it
// or ctx is cancelled. It returns ctx.Err() on cancellation and nil
// otherwise.
func (p *Pool) Submit(ctx context.Context, job func()) error {
	// A cancelled context wins even when a worker is also ready.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case p.jobs <- job:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops accepting jobs and waits for in-flight ones to finish.
// It is safe to call multiple times.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		close(p.jobs)
		p.wg.Wait()
	})
}

// Batch runs fn(0) … fn(n-1) on the pool and waits for all of them.
// Submission stops early when ctx is cancelled or any job fails;
// already-submitted jobs always drain. Jobs are supervised: a
// panicking fn fails its batch with a typed *resilience.PanicError
// (panic value plus stack) instead of crashing the process. The
// returned error is the recorded failure with the lowest index —
// deterministic, because submission is in index order, so every index
// below the failure that triggered the abort was submitted and ran.
// Pure cancellation returns ctx.Err().
func (p *Pool) Batch(ctx context.Context, n int, fn func(i int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var wg sync.WaitGroup
	var submitErr error
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		if err := p.Submit(ctx, func() {
			defer wg.Done()
			if errs[i] = resilience.Protect(func() error { return fn(i) }); errs[i] != nil {
				cancel() // don't submit jobs whose batch already failed
			}
		}); err != nil {
			wg.Done()
			submitErr = err
			break
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return submitErr
}
