//go:build !race

package runner_test

const raceEnabled = false
