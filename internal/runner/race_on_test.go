//go:build race

package runner_test

// raceEnabled mirrors the race detector's build tag, so end-to-end
// sweeps too heavy for its ~10-20× slowdown can budget themselves.
const raceEnabled = true
