package runner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEveryJob(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 100
	var ran [n]int32
	err := p.Batch(context.Background(), n, func(i int) error {
		atomic.AddInt32(&ran[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ran {
		if v != 1 {
			t.Fatalf("job %d ran %d times", i, v)
		}
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Errorf("Workers() = %d, want >= 1", p.Workers())
	}
}

func TestPoolBatchReturnsFirstErrorByIndex(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	wantErr := errors.New("boom-3")
	err := p.Batch(context.Background(), 10, func(i int) error {
		if i == 3 {
			return wantErr
		}
		if i == 7 {
			return errors.New("boom-7")
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want %v (lowest failing index wins)", err, wantErr)
	}
}

func TestPoolBatchAbortsSubmissionAfterFailure(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	wantErr := errors.New("boom-3")
	var executed int32
	err := p.Batch(context.Background(), 100000, func(i int) error {
		atomic.AddInt32(&executed, 1)
		if i == 3 {
			return wantErr
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want %v", err, wantErr)
	}
	if n := atomic.LoadInt32(&executed); n == 100000 {
		t.Error("batch drained fully despite an early failure")
	}
}

func TestPoolSubmitCancelled(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	// Occupy the single worker so further submissions block.
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	if err := p.Submit(context.Background(), func() { <-release; wg.Done() }); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Drain the jobs channel's zero buffer: this submission blocks
		// until cancel fires.
		done <- p.Submit(ctx, func() {})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Submit did not unblock on cancellation")
	}
	close(release)
	wg.Wait()
}

func TestPoolBatchCancellation(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := p.Batch(ctx, 10000, func(i int) error {
		atomic.AddInt32(&started, 1)
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Batch returned %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&started); n == 10000 {
		t.Error("cancellation did not stop submission early")
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key, err := Key("v1", map[string]int{"a": 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(key); err != nil || ok {
		t.Fatalf("Get on empty cache = (ok=%v, err=%v)", ok, err)
	}
	want := []byte(`{"x": 1}`)
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put = (ok=%v, err=%v)", ok, err)
	}
	if string(got) != string(want) {
		t.Fatalf("Get = %q, want %q", got, want)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Fatalf("Len = (%d, %v), want 1", n, err)
	}
	// Overwrite is allowed and atomic.
	if err := c.Put(key, []byte("2")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = c.Get(key)
	if string(got) != "2" {
		t.Fatalf("after overwrite Get = %q", got)
	}
	// No temp files left behind.
	tmps, _ := filepath.Glob(filepath.Join(c.Dir(), "*.tmp-*"))
	if len(tmps) != 0 {
		t.Errorf("leftover temp files: %v", tmps)
	}
}

func TestCacheRejectsEmptyDir(t *testing.T) {
	if _, err := OpenCache(""); err == nil {
		t.Error("OpenCache(\"\") succeeded")
	}
}

func TestCacheSurvivesReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c")
	c1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := Key("k")
	if err := c1.Put(key, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := c2.Get(key)
	if err != nil || !ok || string(got) != "persisted" {
		t.Fatalf("reopened Get = (%q, %v, %v)", got, ok, err)
	}
}

func TestCacheIgnoresCorruptTempEntries(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c")
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := Key("k")
	// A crash between CreateTemp and Rename leaves a *.tmp-* file that
	// must not shadow the real entry.
	if err := os.WriteFile(filepath.Join(dir, key+".tmp-123"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(key); err != nil || ok {
		t.Fatalf("Get with only a temp file = (ok=%v, err=%v), want miss", ok, err)
	}
	// A fresh temp file (possibly another process's in-flight write)
	// survives a reopen; an old orphan is swept.
	if _, err := OpenCache(dir); err != nil {
		t.Fatal(err)
	}
	if live, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*")); len(live) != 1 {
		t.Errorf("fresh temp file did not survive reopen: %v", live)
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(filepath.Join(dir, key+".tmp-123"), old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCache(dir); err != nil {
		t.Fatal(err)
	}
	if stale, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*")); len(stale) != 0 {
		t.Errorf("aged-out temp files survived reopen: %v", stale)
	}
}

func TestKeyStability(t *testing.T) {
	k1, err := Key("v1", struct{ A, B int }{1, 2}, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Key("v1", struct{ A, B int }{1, 2}, 3.5)
	if k1 != k2 {
		t.Error("identical parts gave different keys")
	}
	if len(k1) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(k1))
	}
	k3, _ := Key("v2", struct{ A, B int }{1, 2}, 3.5)
	if k1 == k3 {
		t.Error("version tag did not change the key")
	}
	k4, _ := Key("v1", struct{ A, B int }{1, 2}, 3.6)
	if k1 == k4 {
		t.Error("changed part did not change the key")
	}
	// Moving bytes across part boundaries must change the key.
	ka, _ := Key("ab", "c")
	kb, _ := Key("a", "bc")
	if ka == kb {
		t.Error("part boundaries are not separated")
	}
	if _, err := Key(func() {}); err == nil {
		t.Error("unencodable part accepted")
	}
}
