package runner

import (
	"crypto/sha256"
	"encoding/binary"
)

// DeriveSeed deterministically derives a child RNG seed from a base
// seed and a job label. The derivation is a pure function of its
// inputs — independent of worker count, submission order, and wall
// clock — so every job of a sweep gets a stable, well-mixed seed no
// matter how the sweep is scheduled. Distinct labels give independent
// seeds even for adjacent base seeds (unlike base+i arithmetic, which
// makes neighbouring sweeps share most of their streams).
func DeriveSeed(base int64, label string) int64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(base))
	h := sha256.New()
	h.Write(buf[:])
	h.Write([]byte{0})
	h.Write([]byte(label))
	sum := h.Sum(nil)
	return int64(binary.LittleEndian.Uint64(sum[:8]))
}
