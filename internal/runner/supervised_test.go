package runner_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/resilience"
	"repro/internal/runner"
)

// A panicking batch job must surface as a typed *resilience.PanicError
// — deterministically the lowest-index failure — and leave the pool
// fully operational (run under -race in CI).
func TestBatchConvertsPanicIntoTypedError(t *testing.T) {
	pool := runner.NewPool(4)
	defer pool.Close()

	var ran int64
	err := pool.Batch(context.Background(), 50, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 3 {
			panic("job 3 exploded")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panicking batch returned nil")
	}
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("batch error %T %v, want *resilience.PanicError", err, err)
	}
	if pe.Value != "job 3 exploded" {
		t.Errorf("panic value %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}

	// The pool survives: a follow-up batch runs to completion.
	var after int64
	if err := pool.Batch(context.Background(), 20, func(i int) error {
		atomic.AddInt64(&after, 1)
		return nil
	}); err != nil {
		t.Fatalf("follow-up batch failed: %v", err)
	}
	if after != 20 {
		t.Errorf("follow-up batch ran %d/20 jobs", after)
	}
}

// Every worker panicking at once must not deadlock or kill the pool.
func TestBatchAllJobsPanic(t *testing.T) {
	pool := runner.NewPool(4)
	defer pool.Close()
	err := pool.Batch(context.Background(), 8, func(i int) error { panic(i) })
	if !resilience.IsPanic(err) {
		t.Fatalf("all-panic batch returned %v", err)
	}
	if err := pool.Batch(context.Background(), 4, func(int) error { return nil }); err != nil {
		t.Fatalf("pool dead after panics: %v", err)
	}
}

// A raw Submit job that panics must not kill its worker: Close would
// otherwise wait forever on the dead goroutine.
func TestSubmitPanicKeepsWorkerAlive(t *testing.T) {
	pool := runner.NewPool(1)
	done := make(chan struct{})
	if err := pool.Submit(context.Background(), func() { panic("raw submit") }); err != nil {
		t.Fatal(err)
	}
	if err := pool.Submit(context.Background(), func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	<-done // the single worker survived the first job's panic
	pool.Close()
}
