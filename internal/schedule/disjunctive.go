package schedule

import (
	"fmt"

	"repro/internal/dag"
)

// Disjunctive is the compiled flat form of Schedule.Disjunctive: the
// task graph's precedence arcs plus the zero-volume processor-sequencing
// arcs, in compressed-sparse-row layout, with the exact topological
// order, adjacency order and sink order the map-based
// Disjunctive(g).TopoOrder() path produces. Downstream evaluators
// accumulate floating-point maxima and distribution operators in
// adjacency order, so matching those orders bit-for-bit is what lets
// the compiled evaluation layer claim bit-identity with the reference
// evaluators — while this builder runs in O(n+e) with zero map traffic,
// replacing the clone-validate-clone triple build the evaluators used
// to perform per schedule.
//
// Per-task adjacency is the cloned graph's: precedence neighbours in
// ascending task order, then the sequencing neighbour appended last
// when it is not already a precedence neighbour (when it is, the arc
// keeps its communication volume, like AddEdge keeping the larger
// volume).
type Disjunctive struct {
	N     int
	Order []dag.Task // topological order (Kahn FIFO, min-index initial frontier)
	Sinks []dag.Task // tasks without disjunctive successors, ascending

	PredStart []int32   // len N+1
	PredTask  []int32   // predecessor task ids, cloned-graph order
	PredVol   []float64 // communication volume per arc (0 for pure sequencing arcs)

	SuccStart []int32 // len N+1
	SuccTask  []int32 // successor task ids, cloned-graph order
}

// PredRow returns the disjunctive predecessors of t.
func (d *Disjunctive) PredRow(t dag.Task) []int32 {
	return d.PredTask[d.PredStart[t]:d.PredStart[t+1]]
}

// SuccRow returns the disjunctive successors of t.
func (d *Disjunctive) SuccRow(t dag.Task) []int32 {
	return d.SuccTask[d.SuccStart[t]:d.SuccStart[t+1]]
}

// rowContains reports whether the ascending task row holds x.
func rowContains(row []int32, x int32) bool {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case row[mid] < x:
			lo = mid + 1
		case row[mid] > x:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// CompileDisjunctive validates the schedule against the graph flattened
// in csr — which must be the graph's SortedCSR so adjacency rows carry
// the cloned-graph order — and builds the compiled disjunctive form.
// The checks mirror Schedule.Validate: completeness, assignment
// consistency, and acyclicity of the combined precedence/sequencing
// relation.
func (s *Schedule) CompileDisjunctive(csr *dag.CSR) (*Disjunctive, error) {
	n := csr.NumTasks
	if n != s.N() {
		return nil, fmt.Errorf("schedule: %d tasks scheduled for a %d-task graph", s.N(), n)
	}
	seen := make([]int32, n)
	prev := make([]int32, n) // sequencing predecessor, -1 for proc heads
	next := make([]int32, n) // sequencing successor, -1 for proc tails
	for i := range prev {
		prev[i], next[i] = -1, -1
	}
	for p, order := range s.Order {
		for i, t := range order {
			if int(t) < 0 || int(t) >= n {
				return nil, fmt.Errorf("schedule: task %d out of range on processor %d", t, p)
			}
			if s.Proc[t] != p {
				return nil, fmt.Errorf("schedule: task %d in order of processor %d but assigned to %d", t, p, s.Proc[t])
			}
			seen[t]++
			if i > 0 {
				if order[i-1] == t {
					return nil, fmt.Errorf("schedule: task %d repeated consecutively", t)
				}
				prev[t] = int32(order[i-1])
				next[order[i-1]] = int32(t)
			}
		}
	}
	for t, c := range seen {
		if c == 0 {
			return nil, fmt.Errorf("schedule: task %d not scheduled", t)
		}
		if c > 1 {
			return nil, fmt.Errorf("schedule: task %d scheduled %d times", t, c)
		}
	}
	for t, p := range s.Proc {
		if p < 0 || p >= s.M {
			return nil, fmt.Errorf("schedule: task %d on invalid processor %d", t, p)
		}
	}

	d := &Disjunctive{
		N:         n,
		PredStart: make([]int32, n+1),
		SuccStart: make([]int32, n+1),
	}
	// Count rows: graph arcs plus novel sequencing arcs.
	seqNew := make([]bool, n) // whether prev[t]→t is a new arc
	extraArcs := 0
	for t := 0; t < n; t++ {
		gp := csr.PredAdj[csr.PredStart[t]:csr.PredStart[t+1]]
		if p := prev[t]; p >= 0 && !rowContains(gp, p) {
			seqNew[t] = true
			extraArcs++
		}
	}
	arcs := csr.NumEdges + extraArcs
	d.PredTask = make([]int32, 0, arcs)
	d.PredVol = make([]float64, 0, arcs)
	d.SuccTask = make([]int32, 0, arcs)
	for t := 0; t < n; t++ {
		d.PredStart[t] = int32(len(d.PredTask))
		for k := csr.PredStart[t]; k < csr.PredStart[t+1]; k++ {
			d.PredTask = append(d.PredTask, csr.PredAdj[k])
			d.PredVol = append(d.PredVol, csr.Vol[csr.PredEdge[k]])
		}
		if seqNew[t] {
			d.PredTask = append(d.PredTask, prev[t])
			d.PredVol = append(d.PredVol, 0)
		}
	}
	d.PredStart[n] = int32(len(d.PredTask))
	for t := 0; t < n; t++ {
		d.SuccStart[t] = int32(len(d.SuccTask))
		d.SuccTask = append(d.SuccTask, csr.SuccAdj[csr.SuccStart[t]:csr.SuccStart[t+1]]...)
		if nx := next[t]; nx >= 0 && seqNew[nx] {
			d.SuccTask = append(d.SuccTask, nx)
		}
	}
	d.SuccStart[n] = int32(len(d.SuccTask))

	// Kahn's algorithm, FIFO over an initially ascending frontier with
	// successors appended in adjacency order — the exact discipline of
	// Graph.TopoOrder on the cloned graph.
	indeg := make([]int32, n)
	for t := 0; t < n; t++ {
		indeg[t] = d.PredStart[t+1] - d.PredStart[t]
	}
	frontier := make([]dag.Task, 0, n)
	for t := 0; t < n; t++ {
		if indeg[t] == 0 {
			frontier = append(frontier, dag.Task(t))
		}
	}
	d.Order = make([]dag.Task, 0, n)
	for head := 0; head < len(frontier); head++ {
		t := frontier[head]
		d.Order = append(d.Order, t)
		for _, sc := range d.SuccRow(t) {
			indeg[sc]--
			if indeg[sc] == 0 {
				frontier = append(frontier, dag.Task(sc))
			}
		}
	}
	if len(d.Order) != n {
		return nil, fmt.Errorf("schedule: processor orders conflict with precedences (disjunctive graph cyclic)")
	}
	for t := 0; t < n; t++ {
		if d.SuccStart[t+1] == d.SuccStart[t] {
			d.Sinks = append(d.Sinks, dag.Task(t))
		}
	}
	return d, nil
}
