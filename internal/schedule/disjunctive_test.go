package schedule_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/experiment"
	"repro/internal/heuristics"
	"repro/internal/schedule"
)

// The compiled disjunctive builder must reproduce the map-based path —
// Disjunctive(g) then TopoOrder()/Pred()/Sinks() — exactly: same
// topological order, same per-task adjacency order, same volumes, same
// sinks. The evaluators' bit-identity claims rest on these orders.
func TestCompileDisjunctiveMatchesMapPath(t *testing.T) {
	for _, family := range experiment.FamilyNames() {
		for _, n := range []int{10, 100} {
			spec := experiment.CaseSpec{Name: "cd", Family: family, N: n, M: 4, UL: 1.2, Seed: 3}
			scen, err := spec.BuildScenario()
			var se *experiment.SizeError
			if errors.As(err, &se) {
				continue
			}
			if err != nil {
				t.Fatalf("%s/%d: %v", family, n, err)
			}
			csr := scen.G.SortedCSR()
			rng := rand.New(rand.NewSource(int64(n)))
			for trial := 0; trial < 3; trial++ {
				s := heuristics.RandomSchedule(scen, rng)
				d, err := s.CompileDisjunctive(csr)
				if err != nil {
					t.Fatalf("%s/%d: %v", family, n, err)
				}
				dg, err := s.Disjunctive(scen.G)
				if err != nil {
					t.Fatal(err)
				}
				wantOrder, err := dg.TopoOrder()
				if err != nil {
					t.Fatal(err)
				}
				if len(d.Order) != len(wantOrder) {
					t.Fatalf("%s/%d: order length %d != %d", family, n, len(d.Order), len(wantOrder))
				}
				for i := range wantOrder {
					if d.Order[i] != wantOrder[i] {
						t.Fatalf("%s/%d: topo order diverges at %d: %d != %d",
							family, n, i, d.Order[i], wantOrder[i])
					}
				}
				for task := 0; task < scen.G.N(); task++ {
					wantPred := dg.Pred(dag.Task(task))
					gotPred := d.PredRow(dag.Task(task))
					if len(gotPred) != len(wantPred) {
						t.Fatalf("%s/%d task %d: pred count %d != %d",
							family, n, task, len(gotPred), len(wantPred))
					}
					for k, p := range wantPred {
						if dag.Task(gotPred[k]) != p {
							t.Fatalf("%s/%d task %d: pred[%d] = %d, want %d",
								family, n, task, k, gotPred[k], p)
						}
						if vol := d.PredVol[int(d.PredStart[task])+k]; vol != dg.Volume(p, dag.Task(task)) {
							t.Fatalf("%s/%d task %d: pred vol %g != %g",
								family, n, task, vol, dg.Volume(p, dag.Task(task)))
						}
					}
					wantSucc := dg.Succ(dag.Task(task))
					gotSucc := d.SuccRow(dag.Task(task))
					if len(gotSucc) != len(wantSucc) {
						t.Fatalf("%s/%d task %d: succ count mismatch", family, n, task)
					}
					for k, sc := range wantSucc {
						if dag.Task(gotSucc[k]) != sc {
							t.Fatalf("%s/%d task %d: succ[%d] = %d, want %d",
								family, n, task, k, gotSucc[k], sc)
						}
					}
				}
				wantSinks := dg.Sinks()
				if len(d.Sinks) != len(wantSinks) {
					t.Fatalf("%s/%d: sink count %d != %d", family, n, len(d.Sinks), len(wantSinks))
				}
				for i, sk := range wantSinks {
					if d.Sinks[i] != sk {
						t.Fatalf("%s/%d: sink[%d] = %d, want %d", family, n, i, d.Sinks[i], sk)
					}
				}
			}
		}
	}
}

// SortedCSR must present the cloned graph's adjacency orders.
func TestSortedCSRMatchesCloneOrder(t *testing.T) {
	spec := experiment.CaseSpec{Name: "sc", Family: "random", N: 60, M: 4, UL: 1.2, Seed: 9}
	scen, err := spec.BuildScenario()
	if err != nil {
		t.Fatal(err)
	}
	clone := scen.G.Clone()
	csr := scen.G.SortedCSR()
	for task := 0; task < scen.G.N(); task++ {
		tt := dag.Task(task)
		pred := csr.PredAdj[csr.PredStart[task]:csr.PredStart[task+1]]
		if len(pred) != len(clone.Pred(tt)) {
			t.Fatalf("task %d: pred count mismatch", task)
		}
		for k, p := range clone.Pred(tt) {
			if dag.Task(pred[k]) != p {
				t.Fatalf("task %d: pred[%d] = %d, want %d", task, k, pred[k], p)
			}
			if vol := csr.Vol[csr.PredEdge[int(csr.PredStart[task])+k]]; vol != clone.Volume(p, tt) {
				t.Fatalf("task %d: vol mismatch", task)
			}
		}
		succ := csr.SuccAdj[csr.SuccStart[task]:csr.SuccStart[task+1]]
		for k, sc := range clone.Succ(tt) {
			if dag.Task(succ[k]) != sc {
				t.Fatalf("task %d: succ[%d] = %d, want %d", task, k, succ[k], sc)
			}
		}
	}
}

// The compiled builder must reject exactly what Validate rejects.
func TestCompileDisjunctiveRejectsInvalid(t *testing.T) {
	g := dag.New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	csr := g.SortedCSR()

	// Incomplete schedule.
	s := schedule.New(3, 2)
	if _, err := s.CompileDisjunctive(csr); err == nil {
		t.Error("accepted incomplete schedule")
	}
	// Wrong size.
	s2 := schedule.New(2, 2)
	s2.Assign(0, 0)
	s2.Assign(1, 1)
	if _, err := s2.CompileDisjunctive(csr); err == nil {
		t.Error("accepted wrong-size schedule")
	}
	// Cyclic: processor order contradicts precedence (1 before 0 on p0).
	s3 := schedule.New(3, 2)
	s3.Assign(1, 0)
	s3.Assign(0, 0)
	s3.Assign(2, 1)
	if _, err := s3.CompileDisjunctive(csr); err == nil {
		t.Error("accepted precedence-violating processor order")
	}
	if err := s3.Validate(g); err == nil {
		t.Error("Validate disagrees: accepted the same schedule")
	}
	// Valid schedule passes.
	s4 := schedule.New(3, 2)
	s4.Assign(0, 0)
	s4.Assign(1, 0)
	s4.Assign(2, 0)
	if _, err := s4.CompileDisjunctive(csr); err != nil {
		t.Errorf("rejected valid schedule: %v", err)
	}
}
