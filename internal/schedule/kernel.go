package schedule

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/numeric"
	"repro/internal/stochastic"
)

// RealizationKernel is the schedule simulator compiled into a flat
// batch program. Compilation resolves everything the per-sample engine
// re-decides on every realization:
//
//   - the predecessor lists become CSR-style int32/float64 arrays, so
//     the timing pass walks contiguous memory instead of a slice of
//     structs of interfaces;
//   - Dirac durations and arcs (deterministic tasks, co-located
//     communications) are folded into constants, so the inner loop has
//     zero type switches;
//   - every stochastic duration/arc gets a slot in a
//     structure-of-arrays sample block: the kernel samples all slots
//     for a block of B realizations at once through
//     stochastic.BatchSampler, then runs B branch-light timing passes
//     over the block.
//
// Realizations are seeded per block exactly like
// Simulator.Realizations, so the kernel's exact mode at
// DefaultBlockSize is bit-identical to the legacy per-sample path,
// and every mode is deterministic at any worker count.
type RealizationKernel struct {
	n    int
	mode stochastic.SamplerMode

	order    []int32
	prevProc []int32

	// CSR predecessor arrays indexed by task: the arcs of task t are
	// predTask/predVal/predSlot[predStart[t]:predStart[t+1]].
	predStart []int32
	predTask  []int32
	predVal   []float64 // constant arc weight when predSlot < 0
	predSlot  []int32   // sample-block slot, -1 when constant

	durVal  []float64 // constant duration when durSlot < 0
	durSlot []int32

	// samplers holds one batch sampler per stochastic slot, in the
	// draw order of the per-sample engine (tasks in disjunctive
	// topological order, each task's arcs before its duration), so
	// exact-mode realization-major sampling consumes the RNG stream in
	// the legacy order.
	samplers []stochastic.BatchSampler
	slotMin  []float64
	slotMax  []float64

	minMakespan float64
	maxMakespan float64

	workerPool sync.Pool // *kernelWorker, reused across Run calls
}

// KernelOptions tunes a kernel run. The zero value selects
// DefaultBlockSize and GOMAXPROCS workers.
type KernelOptions struct {
	// BlockSize is the number of realizations sampled and timed per
	// batch. Results depend on the block size (each block owns an RNG
	// stream); DefaultBlockSize matches Simulator.Realizations.
	BlockSize int
	// Workers bounds the goroutines of a run; results are identical
	// for every value.
	Workers int
}

func (o KernelOptions) block() int {
	if o.BlockSize > 0 {
		return o.BlockSize
	}
	return DefaultBlockSize
}

func (o KernelOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Compile builds the batch realization kernel for the simulator's
// schedule. mode selects the samplers: SamplerExact reproduces the
// per-sample engine bit-for-bit (at DefaultBlockSize), SamplerTable
// swaps Beta durations/arcs for inverse-CDF table lookups — the fast
// path for bulk Monte Carlo.
func (sim *Simulator) Compile(mode stochastic.SamplerMode) *RealizationKernel {
	n := len(sim.dur)
	k := &RealizationKernel{
		n:         n,
		mode:      mode,
		order:     make([]int32, len(sim.order)),
		prevProc:  make([]int32, n),
		predStart: make([]int32, n+1),
		durVal:    make([]float64, n),
		durSlot:   make([]int32, n),
	}
	for i, t := range sim.order {
		k.order[i] = int32(t)
	}
	for t := 0; t < n; t++ {
		k.prevProc[t] = int32(sim.prevProc[t])
		k.predStart[t+1] = k.predStart[t] + int32(len(sim.preds[t]))
	}
	nArcs := int(k.predStart[n])
	k.predTask = make([]int32, nArcs)
	k.predVal = make([]float64, nArcs)
	k.predSlot = make([]int32, nArcs)

	// Slots are allocated in legacy draw order: walk tasks in the
	// disjunctive topological order, arcs before the task's own
	// duration.
	addSlot := func(d stochastic.Dist, lo, hi float64) int32 {
		k.samplers = append(k.samplers, stochastic.NewBatchSampler(d, mode))
		k.slotMin = append(k.slotMin, lo)
		k.slotMax = append(k.slotMax, hi)
		return int32(len(k.samplers) - 1)
	}
	for _, t := range sim.order {
		base := k.predStart[t]
		for i := range sim.preds[t] {
			pi := &sim.preds[t][i]
			j := base + int32(i)
			k.predTask[j] = int32(pi.pred)
			if _, isPoint := pi.comm.(stochastic.Dirac); isPoint {
				k.predVal[j] = pi.min
				k.predSlot[j] = -1
			} else {
				k.predSlot[j] = addSlot(pi.comm, pi.min, pi.max)
			}
		}
		if _, isPoint := sim.dur[t].(stochastic.Dirac); isPoint {
			k.durVal[t] = sim.durMin[t]
			k.durSlot[t] = -1
		} else {
			k.durSlot[t] = addSlot(sim.dur[t], sim.durMin[t], sim.durMax[t])
		}
	}
	k.minMakespan = sim.MinTiming().Makespan
	k.maxMakespan = sim.MaxTiming().Makespan
	return k
}

// Mode returns the sampler mode the kernel was compiled with.
func (k *RealizationKernel) Mode() stochastic.SamplerMode { return k.mode }

// Slots returns the number of stochastic sample slots per realization
// (zero for a fully deterministic schedule).
func (k *RealizationKernel) Slots() int { return len(k.samplers) }

// Bounds returns the support of the makespan as reported by the
// distributions: the timings with every duration at the bottom and
// the top of its Support(). For the paper's bounded models (Beta,
// Uniform, Dirac) this is exact; distributions whose Support() is a
// heuristic truncation of an unbounded tail (Normal, LogNormal,
// Exponential, Gamma) can sample past it, in which case the streaming
// histogram clamps the draw into its edge bin while Min and Max still
// report the true observed extremes. MCStats.Clamped counts those
// draws, so callers can tell how much tail mass their histogram-based
// estimates are missing.
func (k *RealizationKernel) Bounds() (lo, hi float64) {
	return k.minMakespan, k.maxMakespan
}

// kernelWorker is the reusable per-goroutine state of a run: one RNG
// (reseeded per block), the structure-of-arrays sample block, and the
// finish vector of the timing pass. Workers are pooled on the kernel,
// so steady-state runs do not allocate per realization or per call.
type kernelWorker struct {
	rng    *rand.Rand
	block  []float64
	finish []float64
}

func (k *RealizationKernel) getWorker(blockLen int) *kernelWorker {
	w, _ := k.workerPool.Get().(*kernelWorker)
	if w == nil {
		w = &kernelWorker{rng: rand.New(rand.NewSource(0))}
	}
	if need := len(k.samplers) * blockLen; cap(w.block) < need {
		w.block = make([]float64, need)
	}
	if cap(w.finish) < k.n {
		w.finish = make([]float64, k.n)
	}
	return w
}

// sampleBlock fills the structure-of-arrays block with m realizations
// worth of variates. Batch modes sample slot-major (each sampler
// amortizes over the whole block); exact mode samples
// realization-major so the RNG stream matches the per-sample engine.
func (k *RealizationKernel) sampleBlock(w *kernelWorker, m int) {
	buf := w.block
	if k.mode == stochastic.SamplerExact {
		for r := 0; r < m; r++ {
			for s := range k.samplers {
				off := s*m + r
				k.samplers[s].SampleN(buf[off:off+1], w.rng)
			}
		}
		return
	}
	for s := range k.samplers {
		k.samplers[s].SampleN(buf[s*m:(s+1)*m], w.rng)
	}
}

// pass runs one branch-light timing pass over realization r of an
// m-realization block and returns its makespan. The arithmetic
// mirrors Simulator.timing exactly (same operations, same order), so
// identical samples produce bit-identical makespans.
func (k *RealizationKernel) pass(w *kernelWorker, r, m int) float64 {
	buf := w.block
	finish := w.finish
	var makespan float64
	for _, t := range k.order {
		st := 0.0
		if p := k.prevProc[t]; p >= 0 {
			st = finish[p]
		}
		for j := k.predStart[t]; j < k.predStart[t+1]; j++ {
			c := k.predVal[j]
			if s := k.predSlot[j]; s >= 0 {
				c = buf[int(s)*m+r]
			}
			if arr := finish[k.predTask[j]] + c; arr > st {
				st = arr
			}
		}
		d := k.durVal[t]
		if s := k.durSlot[t]; s >= 0 {
			d = buf[int(s)*m+r]
		}
		f := st + d
		finish[t] = f
		if f > makespan {
			makespan = f
		}
	}
	return makespan
}

// run streams every block of a count-realization job through perBlock,
// fanning whole blocks out over the option's workers. perBlock is
// called concurrently with the block index and the block's makespans
// (valid only during the call).
func (k *RealizationKernel) run(count int, seed int64, opt KernelOptions, perBlock func(kb int, lo int, ms []float64)) {
	if count <= 0 {
		return
	}
	block := opt.block()
	bs := blockSeeds(count, block, seed)
	workers := opt.workers()
	if workers > len(bs) {
		workers = len(bs)
	}
	var next int64
	runWorker := func() {
		w := k.getWorker(block)
		defer k.workerPool.Put(w)
		ms := make([]float64, block)
		for {
			kb := int(atomic.AddInt64(&next, 1)) - 1
			if kb >= len(bs) {
				return
			}
			lo := kb * block
			m := block
			if lo+m > count {
				m = count - lo
			}
			w.rng.Seed(bs[kb])
			k.sampleBlock(w, m)
			for r := 0; r < m; r++ {
				ms[r] = k.pass(w, r, m)
			}
			perBlock(kb, lo, ms[:m])
		}
	}
	if workers <= 1 {
		runWorker()
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runWorker()
		}()
	}
	wg.Wait()
}

// Realizations draws count makespan realizations. Deterministic for a
// fixed (count, seed, block size, mode) at any worker count; in exact
// mode at DefaultBlockSize it is bit-identical to
// Simulator.Realizations.
func (k *RealizationKernel) Realizations(count int, seed int64, opt KernelOptions) []float64 {
	out := make([]float64, count)
	k.RealizationsInto(out, seed, opt)
	return out
}

// RealizationsInto is Realizations writing into a caller-owned slice,
// for steady-state loops that want zero per-call sample allocations.
func (k *RealizationKernel) RealizationsInto(out []float64, seed int64, opt KernelOptions) {
	k.run(len(out), seed, opt, func(_, lo int, ms []float64) {
		copy(out[lo:], ms)
	})
}

// Empirical draws count realizations and wraps them as an empirical
// distribution.
func (k *RealizationKernel) Empirical(count int, seed int64, opt KernelOptions) *stochastic.Empirical {
	return stochastic.NewEmpirical(k.Realizations(count, seed, opt))
}

// DefaultHistBins is the histogram resolution of streaming statistics:
// fine enough that rebinning to the paper's 64-point metric grid is
// exact to the bin, coarse enough to stay cache-resident.
const DefaultHistBins = 2048

// MCStats accumulates makespan realizations block by block: exact
// streaming moments plus a fixed-range histogram over the schedule's
// analytic makespan support. Metric-only callers get means, standard
// deviations, quantiles and tail expectations without ever
// materializing the full sample slice. All merges happen in block
// order, so the result is deterministic at any worker count.
type MCStats struct {
	mcMoments

	lo, hi  float64 // histogram range (analytic makespan support)
	bins    []int64
	clamped int64 // draws outside [lo, hi], forced into the edge bins
}

// newMCStats builds an empty accumulator over [lo, hi].
func newMCStats(lo, hi float64, bins int) *MCStats {
	if bins <= 0 {
		bins = DefaultHistBins
	}
	return &MCStats{
		mcMoments: newMCMoments(),
		lo:        lo, hi: hi,
		bins: make([]int64, bins),
	}
}

// mcMoments is the streaming moment state, both the per-block partial
// and (embedded in MCStats) the running total. Partials are tiny (one
// struct per block) and merged in block order, so the floating-point
// moment sums are identical at any worker count.
type mcMoments struct {
	count    int
	mean, m2 float64
	min, max float64
}

// newMCMoments returns an empty partial.
func newMCMoments() mcMoments {
	return mcMoments{min: math.Inf(1), max: math.Inf(-1)}
}

// observe folds ms into the partial with Welford's exact one-pass
// update.
func (p *mcMoments) observe(ms []float64) {
	for _, x := range ms {
		p.count++
		d := x - p.mean
		p.mean += d / float64(p.count)
		p.m2 += d * (x - p.mean)
		if x < p.min {
			p.min = x
		}
		if x > p.max {
			p.max = x
		}
	}
}

// merge folds a partial into st (Chan et al. pairwise merge); callers
// must merge in block order for cross-worker determinism.
func (st *mcMoments) merge(p mcMoments) {
	if p.count == 0 {
		return
	}
	if st.count == 0 {
		st.count, st.mean, st.m2 = p.count, p.mean, p.m2
	} else {
		na, nb := float64(st.count), float64(p.count)
		d := p.mean - st.mean
		n := na + nb
		st.mean += d * nb / n
		st.m2 += p.m2 + d*d*na*nb/n
		st.count += p.count
	}
	if p.min < st.min {
		st.min = p.min
	}
	if p.max > st.max {
		st.max = p.max
	}
}

// binAll histograms ms into the accumulator's fixed-range bins,
// counting draws that fall outside the range (possible only when a
// duration distribution's Support() truncates an unbounded tail).
// Integer counts commute, so concurrent blocks may bin in any order
// (under the caller's lock) without affecting the result.
func (st *MCStats) binAll(ms []float64) {
	scale := 0.0
	if st.hi > st.lo {
		scale = float64(len(st.bins)) / (st.hi - st.lo)
	}
	top := len(st.bins) - 1
	for _, x := range ms {
		if x < st.lo || x > st.hi {
			st.clamped++
		}
		b := int((x - st.lo) * scale)
		if b < 0 {
			b = 0
		}
		if b > top {
			b = top
		}
		st.bins[b]++
	}
}

// Count returns the number of accumulated realizations.
func (st *MCStats) Count() int { return st.count }

// Clamped returns how many realizations fell outside the analytic
// makespan support [Bounds] and were clamped into the histogram's
// edge bins. It is always zero for the paper's bounded duration
// models (Beta, Uniform, Dirac); a positive count appears when a
// Scenario.DurFn swaps in an unbounded-tail distribution (Normal,
// LogNormal, ...) whose Support() is a heuristic truncation. Moments
// and extremes (Mean, StdDev, Min, Max) stay exact regardless;
// histogram-backed estimates (CDFAt, Quantile, ProbWithin,
// LatenessAboveMean) degrade gracefully, attributing the clamped mass
// to the edge bins. Callers needing exact tail quantiles under such
// models should use the materialized-sample path instead.
func (st *MCStats) Clamped() int64 { return st.clamped }

// Mean returns the sample mean.
func (st *MCStats) Mean() float64 { return st.mean }

// Variance returns the population sample variance.
func (st *MCStats) Variance() float64 {
	if st.count == 0 {
		return 0
	}
	return st.m2 / float64(st.count)
}

// StdDev returns the sample standard deviation.
func (st *MCStats) StdDev() float64 { return math.Sqrt(st.Variance()) }

// Min returns the smallest observed makespan (0 when empty).
func (st *MCStats) Min() float64 {
	if st.count == 0 {
		return 0
	}
	return st.min
}

// Max returns the largest observed makespan (0 when empty).
func (st *MCStats) Max() float64 {
	if st.count == 0 {
		return 0
	}
	return st.max
}

// binWidth returns the histogram cell width.
func (st *MCStats) binWidth() float64 {
	return (st.hi - st.lo) / float64(len(st.bins))
}

// CDFAt returns the histogram estimate of P(M <= x), interpolating
// linearly inside the cell containing x.
func (st *MCStats) CDFAt(x float64) float64 {
	if st.count == 0 {
		return 0
	}
	if x < st.lo {
		return 0
	}
	if x >= st.hi {
		return 1
	}
	w := st.binWidth()
	if w <= 0 {
		return 1
	}
	pos := (x - st.lo) / w
	cell := int(pos)
	if cell >= len(st.bins) {
		cell = len(st.bins) - 1
	}
	var below int64
	for i := 0; i < cell; i++ {
		below += st.bins[i]
	}
	frac := pos - float64(cell)
	return (float64(below) + frac*float64(st.bins[cell])) / float64(st.count)
}

// ProbWithin returns the histogram estimate of P(lo <= M <= hi).
func (st *MCStats) ProbWithin(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	v := st.CDFAt(hi) - st.CDFAt(lo)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Quantile returns the histogram estimate of the p-quantile.
func (st *MCStats) Quantile(p float64) float64 {
	if st.count == 0 {
		return 0
	}
	if p <= 0 {
		return st.Min()
	}
	if p >= 1 {
		return st.Max()
	}
	target := p * float64(st.count)
	var cum float64
	w := st.binWidth()
	for i, c := range st.bins {
		next := cum + float64(c)
		if next >= target {
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return st.lo + (float64(i)+frac)*w
		}
		cum = next
	}
	return st.Max()
}

// LatenessAboveMean returns the histogram estimate of
// E[M | M > E(M)] − E(M), the paper's average-lateness metric,
// evaluated at cell midpoints with the boundary cell split linearly.
func (st *MCStats) LatenessAboveMean() float64 {
	if st.count == 0 {
		return 0
	}
	mu := st.mean
	w := st.binWidth()
	if w <= 0 {
		return 0
	}
	var mass, moment float64
	for i, c := range st.bins {
		if c == 0 {
			continue
		}
		left := st.lo + float64(i)*w
		right := left + w
		if right <= mu {
			continue
		}
		frac := 1.0
		lo := left
		if left < mu {
			frac = (right - mu) / w
			lo = mu
		}
		m := float64(c) * frac
		mass += m
		moment += m * (lo + right) / 2
	}
	if mass == 0 { //reprovet:allow floateq guard against dividing by an exactly-zero accumulated mass
		return 0
	}
	return moment/mass - mu
}

// ToNumeric converts the histogram into a grid-PDF random variable
// with the given grid size (the entropy path of the robustness
// metrics), mirroring Empirical.ToNumeric's smoothing.
func (st *MCStats) ToNumeric(gridSize int) *stochastic.Numeric {
	if gridSize <= 0 {
		gridSize = stochastic.DefaultGridSize
	}
	if st.count == 0 {
		return stochastic.NewPoint(0)
	}
	lo, hi := st.Min(), st.Max()
	if hi <= lo {
		return stochastic.NewPoint(lo)
	}
	// Rebin the histogram onto a gridSize-point density over the
	// observed range, assigning each source cell's count to the grid
	// knot nearest its center (the source bins are much finer than
	// the grid, so at most a knot's worth of mass aliases).
	pdf := make([]float64, gridSize)
	w := st.binWidth()
	gw := (hi - lo) / float64(gridSize-1)
	for i, c := range st.bins {
		if c == 0 {
			continue
		}
		center := st.lo + (float64(i)+0.5)*w
		b := int((center-lo)/gw + 0.5)
		if b < 0 {
			b = 0
		}
		if b >= gridSize {
			b = gridSize - 1
		}
		pdf[b] += float64(c)
	}
	// Same 3-point smoothing Empirical.ToNumeric applies to its
	// histogram before normalizing.
	rv, err := stochastic.FromPDF(lo, hi, numeric.MovingAverage(pdf, 1))
	if err != nil {
		return stochastic.NewPoint(lo)
	}
	return rv
}

// Stats streams count realizations into an MCStats accumulator without
// materializing the sample slice: per-block partial accumulators are
// computed in parallel and merged in block order, so the result is
// deterministic at any worker count. histBins <= 0 selects
// DefaultHistBins.
func (k *RealizationKernel) Stats(count int, seed int64, histBins int, opt KernelOptions) *MCStats {
	lo, hi := k.Bounds()
	total := newMCStats(lo, hi, histBins)
	if count <= 0 {
		return total
	}
	block := opt.block()
	nb := (count + block - 1) / block
	parts := make([]mcMoments, nb)
	var histMu sync.Mutex
	k.run(count, seed, opt, func(kb, _ int, ms []float64) {
		p := newMCMoments()
		p.observe(ms)
		parts[kb] = p
		histMu.Lock()
		total.binAll(ms)
		histMu.Unlock()
	})
	for _, p := range parts {
		total.merge(p)
	}
	return total
}
