package schedule

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graphgen"
	"repro/internal/platform"
	"repro/internal/stochastic"
)

// randomSimulator builds a moderately sized random-scenario simulator
// with stochastic durations and cross-processor arcs.
func randomSimulator(t *testing.T, n, m int, ul float64, seed int64) *Simulator {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, w := graphgen.Random(graphgen.DefaultRandomParams(n), rng)
	tau, lat := platform.NewUniformNetwork(m, 1, 0)
	p := &platform.Platform{
		M:   m,
		ETC: platform.GenerateETCFromWeights(w, m, 0.5, rng),
		Tau: tau,
		Lat: lat,
	}
	scen := &platform.Scenario{G: g, P: p, UL: ul}
	s := New(n, m)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range order {
		s.Assign(task, rng.Intn(m))
	}
	sim, err := NewSimulator(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// The kernel's exact mode at the default block size must reproduce the
// per-sample engine bit for bit.
func TestKernelExactBitIdenticalToLegacy(t *testing.T) {
	sim := randomSimulator(t, 25, 4, 1.3, 3)
	k := sim.Compile(stochastic.SamplerExact)
	for _, count := range []int{1, 100, DefaultBlockSize, 3000} {
		legacy := sim.Realizations(count, 42)
		got := k.Realizations(count, 42, KernelOptions{})
		for i := range legacy {
			if got[i] != legacy[i] {
				t.Fatalf("count %d: realization %d = %v, legacy %v (not bit-identical)",
					count, i, got[i], legacy[i])
			}
		}
	}
}

// Every mode must be deterministic at any worker count and block
// assignment.
func TestKernelDeterministicAcrossWorkers(t *testing.T) {
	sim := randomSimulator(t, 20, 3, 1.4, 5)
	for _, mode := range []stochastic.SamplerMode{stochastic.SamplerExact, stochastic.SamplerTable} {
		k := sim.Compile(mode)
		base := k.Realizations(4000, 9, KernelOptions{Workers: 1})
		for _, workers := range []int{2, 4, 8} {
			got := k.Realizations(4000, 9, KernelOptions{Workers: workers})
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("mode %v: workers=%d diverges at %d", mode, workers, i)
				}
			}
		}
		s1 := k.Stats(4000, 9, 0, KernelOptions{Workers: 1})
		s8 := k.Stats(4000, 9, 0, KernelOptions{Workers: 8})
		if s1.Mean() != s8.Mean() || s1.StdDev() != s8.StdDev() ||
			s1.Min() != s8.Min() || s1.Max() != s8.Max() {
			t.Fatalf("mode %v: streaming stats depend on worker count", mode)
		}
	}
}

// Table mode is a different (approximate) sampler, so it cannot be
// bit-identical — but its distribution must match the legacy engine's
// within Monte-Carlo tolerance at every block size: close moments and
// a small two-sample KS distance.
func TestKernelTableMatchesLegacyDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison")
	}
	sim := randomSimulator(t, 25, 4, 1.3, 7)
	const count = 60000
	legacy := stochastic.NewEmpirical(sim.Realizations(count, 11))
	k := sim.Compile(stochastic.SamplerTable)
	for _, block := range []int{64, DefaultBlockSize, 1024} {
		emp := k.Empirical(count, 13, KernelOptions{BlockSize: block})
		relMean := math.Abs(emp.Mean()-legacy.Mean()) / legacy.Mean()
		if relMean > 0.005 {
			t.Errorf("block %d: mean off by %.3g%%", block, 100*relMean)
		}
		relStd := math.Abs(emp.StdDev()-legacy.StdDev()) / legacy.StdDev()
		if relStd > 0.05 {
			t.Errorf("block %d: stddev off by %.3g%%", block, 100*relStd)
		}
		// Two-sample KS over the pooled support; noise floor for two
		// 60k samples is ~0.008.
		var ks float64
		for _, q := range []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
			x := legacy.Quantile(q)
			if d := math.Abs(emp.CDFAt(x) - legacy.CDFAt(x)); d > ks {
				ks = d
			}
			x = emp.Quantile(q)
			if d := math.Abs(emp.CDFAt(x) - legacy.CDFAt(x)); d > ks {
				ks = d
			}
		}
		if ks > 0.015 {
			t.Errorf("block %d: KS distance %g between table and legacy", block, ks)
		}
	}
}

// All realizations must stay inside the kernel's analytic makespan
// bounds, and the bounds must match the simulator's extreme timings.
func TestKernelBounds(t *testing.T) {
	sim := randomSimulator(t, 15, 3, 1.5, 17)
	k := sim.Compile(stochastic.SamplerTable)
	lo, hi := k.Bounds()
	if want := sim.MinTiming().Makespan; lo != want {
		t.Fatalf("lower bound %g, want %g", lo, want)
	}
	if want := sim.MaxTiming().Makespan; hi != want {
		t.Fatalf("upper bound %g, want %g", hi, want)
	}
	if hi <= lo {
		t.Fatalf("degenerate bounds [%g, %g]", lo, hi)
	}
	for _, ms := range k.Realizations(5000, 3, KernelOptions{}) {
		if ms < lo-1e-9 || ms > hi+1e-9 {
			t.Fatalf("realization %g outside [%g, %g]", ms, lo, hi)
		}
	}
}

// A deterministic scenario (UL = 1) compiles to a kernel with zero
// stochastic slots whose every realization is the deterministic
// makespan.
func TestKernelFullyDeterministicSchedule(t *testing.T) {
	scen := chainScenario(1)
	s := New(3, 2)
	s.Assign(0, 1)
	s.Assign(1, 0)
	s.Assign(2, 1)
	sim, err := NewSimulator(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.Compile(stochastic.SamplerTable)
	if k.Slots() != 0 {
		t.Fatalf("deterministic schedule compiled to %d slots", k.Slots())
	}
	want := sim.MinTiming().Makespan
	for _, ms := range k.Realizations(100, 1, KernelOptions{}) {
		if ms != want {
			t.Fatalf("deterministic realization %g, want %g", ms, want)
		}
	}
	st := k.Stats(100, 1, 0, KernelOptions{})
	if st.Mean() != want || st.StdDev() != 0 {
		t.Fatalf("stats mean %g std %g, want %g and 0", st.Mean(), st.StdDev(), want)
	}
}

// Streaming statistics must agree with the materialized sample slice:
// moments exactly (same merge order), histogram estimates within a
// bin width.
func TestKernelStatsMatchSamples(t *testing.T) {
	sim := randomSimulator(t, 20, 3, 1.4, 23)
	k := sim.Compile(stochastic.SamplerTable)
	const count = 20000
	samples := k.Realizations(count, 31, KernelOptions{})
	emp := stochastic.NewEmpirical(samples)
	st := k.Stats(count, 31, 0, KernelOptions{})
	if st.Count() != count {
		t.Fatalf("count %d", st.Count())
	}
	if math.Abs(st.Mean()-emp.Mean()) > 1e-9*emp.Mean() {
		t.Errorf("streaming mean %g, sample mean %g", st.Mean(), emp.Mean())
	}
	if math.Abs(st.StdDev()-emp.StdDev()) > 1e-6*emp.StdDev() {
		t.Errorf("streaming stddev %g, sample stddev %g", st.StdDev(), emp.StdDev())
	}
	if st.Min() != emp.Min() || st.Max() != emp.Max() {
		t.Errorf("streaming range [%g,%g], sample range [%g,%g]",
			st.Min(), st.Max(), emp.Min(), emp.Max())
	}
	lo, hi := k.Bounds()
	binW := (hi - lo) / DefaultHistBins
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		if d := math.Abs(st.Quantile(p) - emp.Quantile(p)); d > 2*binW {
			t.Errorf("quantile %g: streaming %g vs sample %g (> 2 bins)", p, st.Quantile(p), emp.Quantile(p))
		}
	}
	mu := emp.Mean()
	if d := math.Abs(st.ProbWithin(mu-1, mu+1) - emp.ProbWithin(mu-1, mu+1)); d > 0.01 {
		t.Errorf("ProbWithin differs by %g", d)
	}
	if d := math.Abs(st.LatenessAboveMean() - emp.LatenessAboveMean()); d > 2*binW {
		t.Errorf("lateness: streaming %g vs sample %g", st.LatenessAboveMean(), emp.LatenessAboveMean())
	}
	if st.ToNumeric(64).IsPoint() {
		t.Error("histogram density collapsed to a point")
	}
}

// truncLogNormal is a LogNormal whose Support() is an aggressively
// truncated tail — the shape of a heuristic DurFn model: a real mass
// of draws (~2% at 2σ) lands beyond the reported upper bound.
type truncLogNormal struct{ stochastic.LogNormal }

func (d truncLogNormal) Support() (float64, float64) {
	return math.Exp(d.Mu - 2*d.Sigma), math.Exp(d.Mu + 2*d.Sigma)
}

// An unbounded-tail DurFn makes realizations overshoot the analytic
// histogram range. The clamp must be counted and visible on MCStats,
// the exact moments must be untouched, and the histogram quantile
// estimates must degrade gracefully (finite, monotone, inside the
// observed range) instead of silently pretending the support held.
func TestKernelStatsCountsClampedTailDraws(t *testing.T) {
	scen := chainScenario(1.3)
	scen.DurFn = func(min, ul float64) stochastic.Dist {
		return truncLogNormal{stochastic.LogNormal{Mu: math.Log(min), Sigma: 0.5}}
	}
	s := New(3, 2)
	s.Assign(0, 0)
	s.Assign(1, 1)
	s.Assign(2, 0)
	sim, err := NewSimulator(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.Compile(stochastic.SamplerExact)
	const count = 20000
	st := k.Stats(count, 7, 0, KernelOptions{})

	if st.Clamped() == 0 {
		t.Fatal("truncated-support DurFn produced no clamped draws; the counter is dead")
	}
	if st.Clamped() > int64(count)/4 {
		t.Fatalf("clamped %d of %d draws — truncation accounting implausible", st.Clamped(), count)
	}
	// Moments and extremes come from the streamed samples, not the
	// histogram: Max must prove draws really left the analytic range.
	_, hi := k.Bounds()
	if st.Max() <= hi {
		t.Fatalf("max %g within bounds hi %g, expected overshoot", st.Max(), hi)
	}
	if st.Mean() <= 0 || math.IsNaN(st.StdDev()) {
		t.Fatalf("moments corrupted: mean %g std %g", st.Mean(), st.StdDev())
	}
	// Quantiles degrade gracefully: finite, non-decreasing in p, and
	// never outside the observed sample range.
	prev := math.Inf(-1)
	for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		q := st.Quantile(p)
		if math.IsNaN(q) || math.IsInf(q, 0) {
			t.Fatalf("Quantile(%g) = %g", p, q)
		}
		if q < prev {
			t.Fatalf("Quantile(%g) = %g below previous %g (not monotone)", p, q, prev)
		}
		if q < st.Min()-1e-9 || q > st.Max()+1e-9 {
			t.Fatalf("Quantile(%g) = %g outside observed range [%g, %g]", p, q, st.Min(), st.Max())
		}
		prev = q
	}
	// The clamped mass sits in the edge bins, so mid-range estimates
	// stay close to the materialized-sample truth.
	emp := stochastic.NewEmpirical(k.Realizations(count, 7, KernelOptions{}))
	if d := math.Abs(st.Quantile(0.5) - emp.Quantile(0.5)); d > 0.05*emp.Quantile(0.5) {
		t.Errorf("median drifted by %g under clamping", d)
	}
	// A bounded-model kernel must never report clamps.
	bounded := randomSimulator(t, 10, 3, 1.3, 41).Compile(stochastic.SamplerExact)
	if c := bounded.Stats(5000, 3, 0, KernelOptions{}).Clamped(); c != 0 {
		t.Fatalf("Beta-model kernel clamped %d draws, want 0", c)
	}
}

// RealizationsInto must not allocate per realization once the worker
// pool is warm.
func TestKernelSteadyStateAllocations(t *testing.T) {
	sim := randomSimulator(t, 20, 3, 1.3, 29)
	k := sim.Compile(stochastic.SamplerTable)
	out := make([]float64, 4096)
	opt := KernelOptions{Workers: 1}
	k.RealizationsInto(out, 1, opt) // warm the pool
	allocs := testing.AllocsPerRun(5, func() {
		k.RealizationsInto(out, 2, opt)
	})
	// Per call: the block-seed slice and small scheduling state — far
	// below one allocation per realization (4096 realizations/call).
	if allocs > 8 {
		t.Errorf("RealizationsInto allocates %g times per 4096 realizations", allocs)
	}
}
