// Package schedule represents eager schedules — assignments of tasks to
// processors together with a per-processor execution order, where every
// task starts as soon as its predecessors' data has arrived and its
// processor is free (no deliberate slack; §II of the paper). It
// provides validation, deterministic timing, the disjunctive-graph
// augmentation, and a fast Monte-Carlo realization simulator.
package schedule

import (
	"fmt"

	"repro/internal/dag"
)

// Schedule is an eager schedule: task→processor assignment plus the
// execution order on each processor.
type Schedule struct {
	M     int          // number of processors
	Proc  []int        // task → processor (-1 while unassigned)
	Order [][]dag.Task // per-processor task sequence
}

// New creates an empty schedule for n tasks on m processors.
func New(n, m int) *Schedule {
	proc := make([]int, n)
	for i := range proc {
		proc[i] = -1
	}
	return &Schedule{M: m, Proc: proc, Order: make([][]dag.Task, m)}
}

// N returns the number of tasks.
func (s *Schedule) N() int { return len(s.Proc) }

// Assign places task t at the end of processor p's order.
func (s *Schedule) Assign(t dag.Task, p int) {
	s.Proc[t] = p
	s.Order[p] = append(s.Order[p], t)
}

// Clone returns a deep copy.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{M: s.M, Proc: append([]int(nil), s.Proc...), Order: make([][]dag.Task, s.M)}
	for p := range s.Order {
		c.Order[p] = append([]dag.Task(nil), s.Order[p]...)
	}
	return c
}

// PrevOnProc returns, for every task, the task scheduled immediately
// before it on the same processor (-1 for the first task of each
// processor).
func (s *Schedule) PrevOnProc() []dag.Task {
	prev := make([]dag.Task, s.N())
	for i := range prev {
		prev[i] = -1
	}
	for _, order := range s.Order {
		for i := 1; i < len(order); i++ {
			prev[order[i]] = order[i-1]
		}
	}
	return prev
}

// Validate checks that the schedule is complete and feasible for g:
// every task assigned to a valid processor, appearing exactly once in
// its processor's order, and the disjunctive graph (precedences plus
// processor sequencing) acyclic.
func (s *Schedule) Validate(g *dag.Graph) error {
	if g.N() != s.N() {
		return fmt.Errorf("schedule: %d tasks scheduled for a %d-task graph", s.N(), g.N())
	}
	seen := make([]int, s.N())
	for p, order := range s.Order {
		for _, t := range order {
			if int(t) < 0 || int(t) >= s.N() {
				return fmt.Errorf("schedule: task %d out of range on processor %d", t, p)
			}
			if s.Proc[t] != p {
				return fmt.Errorf("schedule: task %d in order of processor %d but assigned to %d", t, p, s.Proc[t])
			}
			seen[t]++
		}
	}
	for t, c := range seen {
		if c == 0 {
			return fmt.Errorf("schedule: task %d not scheduled", t)
		}
		if c > 1 {
			return fmt.Errorf("schedule: task %d scheduled %d times", t, c)
		}
	}
	for t, p := range s.Proc {
		if p < 0 || p >= s.M {
			return fmt.Errorf("schedule: task %d on invalid processor %d", t, p)
		}
	}
	dg, err := s.Disjunctive(g)
	if err != nil {
		return err
	}
	if !dg.IsAcyclic() {
		return fmt.Errorf("schedule: processor orders conflict with precedences (disjunctive graph cyclic)")
	}
	return nil
}

// Disjunctive returns the disjunctive graph of the schedule: the task
// graph augmented with zero-volume edges between consecutive tasks on
// the same processor (Shi, Jeannot & Dongarra; §II of the paper). The
// makespan distribution of the schedule is the completion-time
// distribution of this graph.
func (s *Schedule) Disjunctive(g *dag.Graph) (*dag.Graph, error) {
	if g.N() != s.N() {
		return nil, fmt.Errorf("schedule: %d tasks scheduled for a %d-task graph", s.N(), g.N())
	}
	dg := g.Clone()
	for _, order := range s.Order {
		for i := 1; i < len(order); i++ {
			if order[i-1] == order[i] {
				return nil, fmt.Errorf("schedule: task %d repeated consecutively", order[i])
			}
			if err := dg.AddEdge(order[i-1], order[i], 0); err != nil {
				return nil, err
			}
		}
	}
	return dg, nil
}
