package schedule

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/graphgen"
	"repro/internal/platform"
)

// chainScenario: 3-task chain, 2 procs, deterministic ETC.
func chainScenario(ul float64) *platform.Scenario {
	g := graphgen.Chain(3, 4) // volumes 4
	tau, lat := platform.NewUniformNetwork(2, 1, 0)
	p := &platform.Platform{
		M:   2,
		ETC: [][]float64{{10, 20}, {10, 20}, {10, 20}},
		Tau: tau,
		Lat: lat,
	}
	return &platform.Scenario{G: g, P: p, UL: ul}
}

func TestAssignAndValidate(t *testing.T) {
	scen := chainScenario(1)
	s := New(3, 2)
	s.Assign(0, 0)
	s.Assign(1, 1)
	s.Assign(2, 0)
	if err := s.Validate(scen.G); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	g := graphgen.Chain(3, 1)

	// Unscheduled task.
	s := New(3, 2)
	s.Assign(0, 0)
	if err := s.Validate(g); err == nil {
		t.Error("accepted incomplete schedule")
	}

	// Task scheduled twice.
	s = New(3, 2)
	s.Assign(0, 0)
	s.Assign(1, 1)
	s.Assign(2, 0)
	s.Order[1] = append(s.Order[1], 2) // duplicate entry for task 2
	if err := s.Validate(g); err == nil {
		t.Error("accepted duplicated task")
	}

	// Order contradicting precedence on one processor.
	s = New(3, 1)
	s.Proc[0], s.Proc[1], s.Proc[2] = 0, 0, 0
	s.Order[0] = []dag.Task{2, 1, 0} // reversed chain
	if err := s.Validate(g); err == nil {
		t.Error("accepted precedence-violating order")
	}

	// Wrong graph size.
	if err := New(2, 1).Validate(g); err == nil {
		t.Error("accepted size mismatch")
	}
}

func TestDisjunctive(t *testing.T) {
	// Two independent tasks serialized on one processor must gain an
	// edge.
	g := dag.New(2)
	s := New(2, 1)
	s.Assign(1, 0)
	s.Assign(0, 0)
	dg, err := s.Disjunctive(g)
	if err != nil {
		t.Fatal(err)
	}
	if !dg.HasEdge(1, 0) {
		t.Error("disjunctive edge 1→0 missing")
	}
	if dg.Volume(1, 0) != 0 {
		t.Error("disjunctive edge must carry no communication volume")
	}
	// The original graph is untouched.
	if g.EdgeCount() != 0 {
		t.Error("Disjunctive mutated the input graph")
	}
}

func TestPrevOnProc(t *testing.T) {
	s := New(4, 2)
	s.Assign(2, 0)
	s.Assign(0, 0)
	s.Assign(1, 1)
	s.Assign(3, 1)
	prev := s.PrevOnProc()
	want := []dag.Task{2, -1, -1, 1}
	for i := range want {
		if prev[i] != want[i] {
			t.Errorf("prev[%d] = %d, want %d", i, prev[i], want[i])
		}
	}
}

func TestMinTimingChainSameProc(t *testing.T) {
	scen := chainScenario(1)
	s := New(3, 2)
	s.Assign(0, 0)
	s.Assign(1, 0)
	s.Assign(2, 0)
	sim, err := NewSimulator(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	tm := sim.MinTiming()
	// Same processor: no communication; makespan = 30.
	if tm.Makespan != 30 {
		t.Errorf("makespan = %g, want 30", tm.Makespan)
	}
	wantStart := []float64{0, 10, 20}
	for i := range wantStart {
		if tm.Start[i] != wantStart[i] {
			t.Errorf("start[%d] = %g, want %g", i, tm.Start[i], wantStart[i])
		}
	}
}

func TestMinTimingChainCrossProc(t *testing.T) {
	scen := chainScenario(1)
	s := New(3, 2)
	s.Assign(0, 0)
	s.Assign(1, 1)
	s.Assign(2, 0)
	sim, err := NewSimulator(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	tm := sim.MinTiming()
	// t0 on p0: [0,10]; comm 4 → t1 starts 14 on p1, dur 20 → 34;
	// comm 4 → t2 starts 38 on p0, dur 10 → 48.
	if tm.Makespan != 48 {
		t.Errorf("makespan = %g, want 48", tm.Makespan)
	}
}

func TestEagerRespectsProcessorOrder(t *testing.T) {
	// Two independent tasks on one processor: the schedule order wins
	// even if reversing would be faster.
	g := dag.New(2)
	tau, lat := platform.NewUniformNetwork(1, 0, 0)
	p := &platform.Platform{M: 1, ETC: [][]float64{{5}, {1}}, Tau: tau, Lat: lat}
	scen := &platform.Scenario{G: g, P: p, UL: 1}
	s := New(2, 1)
	s.Assign(0, 0) // long task first
	s.Assign(1, 0)
	sim, err := NewSimulator(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	tm := sim.MinTiming()
	if tm.Start[1] != 5 {
		t.Errorf("task 1 start = %g, want 5 (after task 0)", tm.Start[1])
	}
}

func TestMeanTimingExceedsMin(t *testing.T) {
	scen := chainScenario(1.5)
	s := New(3, 2)
	s.Assign(0, 0)
	s.Assign(1, 1)
	s.Assign(2, 0)
	sim, err := NewSimulator(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	min := sim.MinTiming().Makespan
	mean := sim.MeanTiming().Makespan
	if mean <= min {
		t.Errorf("mean makespan %g should exceed min %g under UL>1", mean, min)
	}
}

func TestRealizationBounds(t *testing.T) {
	scen := chainScenario(1.2)
	s := New(3, 2)
	s.Assign(0, 0)
	s.Assign(1, 1)
	s.Assign(2, 0)
	sim, err := NewSimulator(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	min := sim.MinTiming().Makespan
	// Upper bound: every duration at min·UL.
	max := min * 1.2
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		ms := sim.Realize(rng)
		if ms < min-1e-9 || ms > max+1e-9 {
			t.Fatalf("realization %g outside [%g,%g]", ms, min, max)
		}
	}
}

func TestRealizationsDeterministicAndParallel(t *testing.T) {
	scen := chainScenario(1.3)
	s := New(3, 2)
	s.Assign(0, 0)
	s.Assign(1, 0)
	s.Assign(2, 1)
	sim, err := NewSimulator(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	a := sim.Realizations(5000, 42)
	b := sim.Realizations(5000, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different realizations")
		}
	}
	c := sim.Realizations(5000, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical realizations")
	}
}

func TestRealizationsMatchSequential(t *testing.T) {
	// With UL=1 every realization equals the deterministic makespan.
	scen := chainScenario(1)
	s := New(3, 2)
	s.Assign(0, 1)
	s.Assign(1, 0)
	s.Assign(2, 1)
	sim, err := NewSimulator(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.MinTiming().Makespan
	for _, ms := range sim.Realizations(100, 7) {
		if ms != want {
			t.Fatalf("deterministic realization = %g, want %g", ms, want)
		}
	}
}

func TestEmpiricalFromSimulator(t *testing.T) {
	scen := chainScenario(1.4)
	s := New(3, 2)
	s.Assign(0, 0)
	s.Assign(1, 0)
	s.Assign(2, 0)
	sim, err := NewSimulator(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	emp := sim.Empirical(20000, 3)
	if emp.Len() != 20000 {
		t.Fatalf("empirical len = %d", emp.Len())
	}
	// Same processor chain: makespan = sum of three Beta(2,5) over
	// [10,14]: mean = 3·10·(1+0.4·2/7) ≈ 33.43.
	want := 3 * 10 * (1 + 0.4*2.0/7.0)
	if math.Abs(emp.Mean()-want) > 0.2 {
		t.Errorf("empirical mean = %g, want ~%g", emp.Mean(), want)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(2, 2)
	s.Assign(0, 0)
	s.Assign(1, 1)
	c := s.Clone()
	c.Proc[0] = 1
	c.Order[0] = nil
	if s.Proc[0] != 0 || len(s.Order[0]) != 1 {
		t.Error("clone shares storage with original")
	}
}

// Property: realized makespan is never below the critical path of the
// minimum durations (lower bound ignoring resources).
func TestRealizationAboveCriticalPathProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(20)
		g, w := graphgen.Random(graphgen.DefaultRandomParams(n), rng)
		m := 2 + rng.Intn(3)
		tau, lat := platform.NewUniformNetwork(m, 1, 0)
		p := &platform.Platform{
			M:   m,
			ETC: platform.GenerateETCFromWeights(w, m, 0.5, rng),
			Tau: tau,
			Lat: lat,
		}
		scen := &platform.Scenario{G: g, P: p, UL: 1.1}
		s := New(n, m)
		// Random valid schedule via topological order.
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range order {
			s.Assign(task, rng.Intn(m))
		}
		sim, err := NewSimulator(scen, s)
		if err != nil {
			t.Fatal(err)
		}
		// Critical path with min durations on assigned procs, ignoring comm.
		nodeW := make([]float64, n)
		for i := range nodeW {
			nodeW[i] = p.ETC[i][s.Proc[i]]
		}
		cp, err := g.CriticalPathLength(nodeW, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if ms := sim.Realize(rng); ms < cp-1e-9 {
				t.Fatalf("trial %d: realization %g below critical path %g", trial, ms, cp)
			}
		}
	}
}
