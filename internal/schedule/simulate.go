package schedule

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/seeds"
	"repro/internal/stochastic"
)

// Timing is the outcome of executing a schedule with concrete
// durations.
type Timing struct {
	Start, Finish []float64
	Makespan      float64
}

// predInfo is a precedence arc seen from the consumer side, carrying
// the communication-time distribution between the assigned processors.
type predInfo struct {
	pred dag.Task
	comm stochastic.Dist // Dirac(0) for co-located tasks
	mean float64
	min  float64
	max  float64
}

// Simulator evaluates one schedule repeatedly: it freezes the
// disjunctive topological order and the per-task / per-arc duration
// distributions so that each realization is a single O(V+E) pass with
// only the sampling as per-iteration work. This is the engine behind
// the paper's 100 000-realization ground-truth distributions.
//
// Simulator is the per-sample reference engine; Compile builds the
// batch kernel that runs the same realizations without per-sample
// interface dispatch.
type Simulator struct {
	scen     *platform.Scenario
	sched    *Schedule
	order    []dag.Task
	prevProc []dag.Task
	dur      []stochastic.Dist
	durMean  []float64
	durMin   []float64
	durMax   []float64
	preds    [][]predInfo

	// The deterministic timings are immutable per simulator, so they
	// are computed once on first use instead of allocating fresh
	// start/finish vectors on every call.
	minOnce, meanOnce, maxOnce sync.Once
	minTiming                  Timing
	meanTiming                 Timing
	maxTiming                  Timing
}

// NewSimulator validates the schedule against the scenario's graph and
// precomputes the realization machinery. Validation and the disjunctive
// topological order come from the compiled CSR builder — one O(n+e)
// pass that reproduces the map-based Disjunctive(g).TopoOrder() order
// bit-for-bit, so the realization streams (which draw in order) are
// unchanged.
func NewSimulator(scen *platform.Scenario, s *Schedule) (*Simulator, error) {
	d, err := s.CompileDisjunctive(scen.G.SortedCSR())
	if err != nil {
		return nil, err
	}
	order := d.Order
	n := scen.G.N()
	sim := &Simulator{
		scen:     scen,
		sched:    s,
		order:    order,
		prevProc: s.PrevOnProc(),
		dur:      make([]stochastic.Dist, n),
		durMean:  make([]float64, n),
		durMin:   make([]float64, n),
		durMax:   make([]float64, n),
		preds:    make([][]predInfo, n),
	}
	for t := 0; t < n; t++ {
		task := dag.Task(t)
		d := scen.TaskDist(task, s.Proc[t])
		sim.dur[t] = d
		sim.durMean[t] = d.Mean()
		sim.durMin[t], sim.durMax[t] = d.Support()
		for _, p := range scen.G.Pred(task) {
			cd := scen.CommDist(p, task, s.Proc[p], s.Proc[t])
			min, max := cd.Support()
			sim.preds[t] = append(sim.preds[t], predInfo{
				pred: p, comm: cd, mean: cd.Mean(), min: min, max: max,
			})
		}
	}
	return sim, nil
}

// Schedule returns the schedule being simulated.
func (sim *Simulator) Schedule() *Schedule { return sim.sched }

// Scenario returns the underlying scenario.
func (sim *Simulator) Scenario() *platform.Scenario { return sim.scen }

// durationKind selects which value each duration takes during a
// timing pass.
type durationKind int

const (
	durMin durationKind = iota
	durMean
	durMax
	durSample
)

// timing runs the eager execution once.
func (sim *Simulator) timing(kind durationKind, rng *rand.Rand, buf []float64) Timing {
	n := len(sim.dur)
	var start []float64
	if cap(buf) >= 2*n {
		start = buf[:2*n]
	} else {
		start = make([]float64, 2*n)
	}
	finish := start[n:]
	start = start[:n]
	var makespan float64
	for _, t := range sim.order {
		st := 0.0
		if p := sim.prevProc[t]; p >= 0 {
			st = finish[p]
		}
		for i := range sim.preds[t] {
			pi := &sim.preds[t][i]
			var c float64
			switch kind {
			case durMin:
				c = pi.min
			case durMean:
				c = pi.mean
			case durMax:
				c = pi.max
			default:
				if _, isPoint := pi.comm.(stochastic.Dirac); isPoint {
					c = pi.min
				} else {
					c = pi.comm.Sample(rng)
				}
			}
			arr := finish[pi.pred] + c
			if arr > st {
				st = arr
			}
		}
		var d float64
		switch kind {
		case durMin:
			d = sim.durMin[t]
		case durMean:
			d = sim.durMean[t]
		case durMax:
			d = sim.durMax[t]
		default:
			if _, isPoint := sim.dur[t].(stochastic.Dirac); isPoint {
				d = sim.durMin[t]
			} else {
				d = sim.dur[t].Sample(rng)
			}
		}
		start[t] = st
		finish[t] = st + d
		if finish[t] > makespan {
			makespan = finish[t]
		}
	}
	return Timing{Start: start, Finish: finish, Makespan: makespan}
}

// MinTiming executes the schedule with every duration at its minimum
// (the deterministic base case). The timing is computed once and
// cached; treat the returned vectors as read-only.
func (sim *Simulator) MinTiming() Timing {
	sim.minOnce.Do(func() { sim.minTiming = sim.timing(durMin, nil, nil) })
	return sim.minTiming
}

// MeanTiming executes the schedule with every duration at its mean;
// this is the approximation the paper uses for the slack metrics. The
// timing is computed once and cached; treat the returned vectors as
// read-only.
func (sim *Simulator) MeanTiming() Timing {
	sim.meanOnce.Do(func() { sim.meanTiming = sim.timing(durMean, nil, nil) })
	return sim.meanTiming
}

// MaxTiming executes the schedule with every duration at the top of
// its support: the worst-case makespan, and the upper bound of every
// realization (the makespan is monotone in the durations). The timing
// is computed once and cached; treat the returned vectors as
// read-only.
func (sim *Simulator) MaxTiming() Timing {
	sim.maxOnce.Do(func() { sim.maxTiming = sim.timing(durMax, nil, nil) })
	return sim.maxTiming
}

// Realize samples one realization of every duration and returns the
// resulting makespan.
func (sim *Simulator) Realize(rng *rand.Rand) float64 {
	return sim.timing(durSample, rng, nil).Makespan
}

// RealizeTiming is Realize but returns the full start/finish vectors;
// buf, when at least 2n long, avoids allocations.
func (sim *Simulator) RealizeTiming(rng *rand.Rand, buf []float64) Timing {
	return sim.timing(durSample, rng, buf)
}

// DefaultBlockSize is the realization-block granularity shared by the
// per-sample engine and the compiled kernel: realizations are
// partitioned into blocks of this size, and block k draws from an RNG
// seeded with seeds.NewFamily(seed, "mc-block").Seed(k). Because the
// seeding is per block — not per worker — results are identical at
// every worker count and GOMAXPROCS setting, and the kernel's exact
// mode reproduces Realizations bit-for-bit at this block size.
const DefaultBlockSize = 256

// blockSeeds precomputes the per-block RNG seeds for count
// realizations in blocks of size block.
func blockSeeds(count, block int, seed int64) []int64 {
	fam := seeds.NewFamily(seed, "mc-block")
	nb := (count + block - 1) / block
	out := make([]int64, nb)
	for k := range out {
		out[k] = fam.Seed(k)
	}
	return out
}

// Realizations draws count makespan realizations with the per-sample
// reference engine, distributing whole blocks of DefaultBlockSize
// realizations over GOMAXPROCS goroutines. Each block derives its own
// RNG stream from seed, so results are deterministic for a given
// (count, seed) pair at any worker count.
func (sim *Simulator) Realizations(count int, seed int64) []float64 {
	out := make([]float64, count)
	if count == 0 {
		return out
	}
	bs := blockSeeds(count, DefaultBlockSize, seed)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(bs) {
		workers = len(bs)
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(0))
			buf := make([]float64, 2*len(sim.dur))
			for {
				k := int(atomic.AddInt64(&next, 1)) - 1
				if k >= len(bs) {
					return
				}
				rng.Seed(bs[k])
				lo := k * DefaultBlockSize
				hi := lo + DefaultBlockSize
				if hi > count {
					hi = count
				}
				for i := lo; i < hi; i++ {
					out[i] = sim.timing(durSample, rng, buf).Makespan
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// Empirical draws count realizations and wraps them as an empirical
// distribution.
func (sim *Simulator) Empirical(count int, seed int64) *stochastic.Empirical {
	return stochastic.NewEmpirical(sim.Realizations(count, seed))
}
