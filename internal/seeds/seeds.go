// Package seeds centralizes deterministic RNG seed derivation. Every
// layer that fans work out over goroutines — the experiment sweep
// orchestrator, the Monte-Carlo realization engine — derives child
// seeds here, so parallel decompositions never share streams and never
// depend on scheduling, worker count, or wall clock.
package seeds

import (
	"crypto/sha256"
	"encoding/binary"
)

// Derive deterministically derives a child RNG seed from a base seed
// and a job label. The derivation is a pure function of its inputs —
// independent of worker count, submission order, and wall clock — so
// every job of a sweep gets a stable, well-mixed seed no matter how the
// sweep is scheduled. Distinct labels give independent seeds even for
// adjacent base seeds (unlike base+i arithmetic, which makes
// neighbouring sweeps share most of their streams).
func Derive(base int64, label string) int64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(base))
	h := sha256.New()
	h.Write(buf[:])
	h.Write([]byte{0})
	h.Write([]byte(label))
	sum := h.Sum(nil)
	return int64(binary.LittleEndian.Uint64(sum[:8]))
}

// Family is an indexed family of derived seeds rooted at one
// (base, label) pair: Family(base, label).Seed(i) is as well-mixed as
// Derive but costs one integer mix per index instead of one hash, so
// hot loops (e.g. per-block Monte-Carlo reseeding) can draw thousands
// of family members without allocating.
type Family struct {
	root uint64
}

// NewFamily hashes (base, label) once into a family root.
func NewFamily(base int64, label string) Family {
	return Family{root: uint64(Derive(base, label))}
}

// Seed returns the i-th member of the family via a SplitMix64 step:
// consecutive indices land in unrelated streams.
func (f Family) Seed(i int) int64 {
	return int64(splitmix64(f.root + uint64(i)*0x9E3779B97F4A7C15))
}

// splitmix64 is the finalizer of the SplitMix64 generator (Steele,
// Lea & Flood), a full-period bijective mixer on 64-bit integers.
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}
