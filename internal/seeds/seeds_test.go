package seeds

import "testing"

func TestDeriveDeterministicAndMixed(t *testing.T) {
	a := Derive(1, "case-a")
	if a != Derive(1, "case-a") {
		t.Fatal("Derive is not deterministic")
	}
	seen := map[int64]string{}
	for base := int64(0); base < 4; base++ {
		for _, label := range []string{"case-a", "case-b", "case-c"} {
			s := Derive(base, label)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %q and (%d,%q)", prev, base, label)
			}
			seen[s] = label
		}
	}
}

func TestFamilyMatchesRootAndMixes(t *testing.T) {
	f := NewFamily(7, "mc-block")
	if f.Seed(3) != NewFamily(7, "mc-block").Seed(3) {
		t.Fatal("Family is not deterministic")
	}
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := f.Seed(i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("family seed collision between indices %d and %d", prev, i)
		}
		seen[s] = i
	}
	// Families with different labels or bases must diverge.
	if f.Seed(0) == NewFamily(7, "other").Seed(0) {
		t.Error("different labels share seeds")
	}
	if f.Seed(0) == NewFamily(8, "mc-block").Seed(0) {
		t.Error("different bases share seeds")
	}
}

func TestFamilySeedZeroAllocs(t *testing.T) {
	f := NewFamily(1, "x")
	allocs := testing.AllocsPerRun(1000, func() {
		_ = f.Seed(42)
	})
	if allocs != 0 {
		t.Errorf("Family.Seed allocates %g times per call, want 0", allocs)
	}
}
