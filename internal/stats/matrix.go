package stats

import (
	"fmt"
	"math"
	"strings"
)

// CorrMatrix computes the K×K Pearson matrix of a dataset given as K
// column vectors of equal length (one row per schedule, one column per
// metric). The diagonal is 1.
//
// A zero-variance column — e.g. the makespan standard deviation of a
// deterministic (Dirac-duration) case, or the probabilistic metrics
// when every schedule hits probability 1 — has no defined correlation:
// its off-diagonal entries are NaN (see Pearson). Downstream
// aggregation (AggregateMatrices) and rendering (FormatMatrix, the
// JSON/CSV encoders) treat NaN as "not available" rather than
// propagating it, so one degenerate case never poisons a sweep.
func CorrMatrix(cols [][]float64) ([][]float64, error) {
	k := len(cols)
	if k == 0 {
		return nil, fmt.Errorf("stats: no columns")
	}
	n := len(cols[0])
	for i, c := range cols {
		if len(c) != n {
			return nil, fmt.Errorf("stats: column %d has %d rows, want %d", i, len(c), n)
		}
	}
	out := make([][]float64, k)
	for i := range out {
		out[i] = make([]float64, k)
		out[i][i] = 1
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			r := Pearson(cols[i], cols[j])
			out[i][j], out[j][i] = r, r
		}
	}
	return out, nil
}

// AggregateMatrices returns the element-wise mean and standard
// deviation of a set of equally-sized matrices, skipping NaN entries
// (degenerate correlations, see CorrMatrix): a cell averages the cases
// where it was defined, and is NaN only when it was defined in none.
// This builds the paper's Fig. 6: mean on the upper triangle, std-dev
// on the lower.
func AggregateMatrices(ms [][][]float64) (mean, std [][]float64, err error) {
	if len(ms) == 0 {
		return nil, nil, fmt.Errorf("stats: no matrices")
	}
	k := len(ms[0])
	mean = make([][]float64, k)
	std = make([][]float64, k)
	for i := range mean {
		mean[i] = make([]float64, k)
		std[i] = make([]float64, k)
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			var vals []float64
			for _, m := range ms {
				if len(m) != k || len(m[i]) != k {
					return nil, nil, fmt.Errorf("stats: matrix size mismatch")
				}
				if v := m[i][j]; !math.IsNaN(v) {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				mean[i][j] = math.NaN()
				std[i][j] = math.NaN()
				continue
			}
			var sum float64
			for _, v := range vals {
				sum += v
			}
			mu := sum / float64(len(vals))
			var ss float64
			for _, v := range vals {
				d := v - mu
				ss += d * d
			}
			mean[i][j] = mu
			std[i][j] = math.Sqrt(ss / float64(len(vals)))
		}
	}
	return mean, std, nil
}

// FormatMatrix renders a labelled correlation matrix. When std is
// non-nil the upper triangle shows mean values and the lower triangle
// standard deviations, reproducing the layout of the paper's Fig. 6.
func FormatMatrix(labels []string, mean, std [][]float64) string {
	k := len(labels)
	var b strings.Builder
	width := 10
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "")
	for _, l := range labels {
		fmt.Fprintf(&b, "%*s", width+2, truncate(l, width))
	}
	b.WriteByte('\n')
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "%-*s", width+2, truncate(labels[i], width))
		for j := 0; j < k; j++ {
			var v float64
			switch {
			case i == j:
				fmt.Fprintf(&b, "%*s", width+2, "—")
				continue
			case std != nil && i > j:
				v = std[i][j]
			default:
				v = mean[i][j]
			}
			if math.IsNaN(v) {
				fmt.Fprintf(&b, "%*s", width+2, "n/a")
			} else {
				fmt.Fprintf(&b, "%*.3f", width+2, v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
