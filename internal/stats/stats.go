// Package stats provides the statistical machinery of the comparison:
// Pearson correlation coefficients and their aggregation across
// experiments, least-squares regression (the scatter-plot fits), and
// the two CDF distances the paper uses to validate the makespan
// evaluation — Kolmogorov–Smirnov and the area variant of
// Cramér–von-Mises.
package stats

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/stochastic"
)

// Pearson returns the Pearson correlation coefficient of xs and ys.
// Degenerate inputs (length < 2, mismatched lengths, or zero variance)
// return NaN.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	mx, my := numeric.Mean(xs), numeric.Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 { //reprovet:allow floateq correlation is undefined only at exactly zero variance
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinReg fits y = slope·x + intercept by least squares and returns the
// fit together with the correlation coefficient.
func LinReg(xs, ys []float64) (slope, intercept, r float64, err error) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0, 0, 0, fmt.Errorf("stats: need two same-length samples, got %d and %d", len(xs), len(ys))
	}
	mx, my := numeric.Mean(xs), numeric.Mean(ys)
	var sxy, sxx float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 { //reprovet:allow floateq regression is undefined only at exactly zero variance
		return 0, 0, 0, fmt.Errorf("stats: x has zero variance")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	return slope, intercept, Pearson(xs, ys), nil
}

// CDF is anything that can evaluate its cumulative distribution — both
// stochastic.Numeric and stochastic.Empirical satisfy it.
type CDF interface {
	CDFAt(x float64) float64
}

var (
	_ CDF = (*stochastic.Numeric)(nil)
	_ CDF = (*stochastic.Empirical)(nil)
)

// KS returns the Kolmogorov–Smirnov distance sup|F1−F2| between two
// CDFs, estimated on a uniform grid of gridN points over [lo, hi]
// (gridN <= 0 selects 512).
func KS(f1, f2 CDF, lo, hi float64, gridN int) float64 {
	if gridN <= 0 {
		gridN = 512
	}
	var d float64
	for _, x := range numeric.Linspace(lo, hi, gridN) {
		if v := math.Abs(f1.CDFAt(x) - f2.CDFAt(x)); v > d {
			d = v
		}
	}
	return d
}

// KSAgainstEmpirical returns the exact KS distance between a
// continuous CDF and an empirical one, evaluated at the sample jump
// points (both sides of each step).
func KSAgainstEmpirical(f CDF, emp *stochastic.Empirical) float64 {
	sorted := emp.Sorted()
	n := len(sorted)
	if n == 0 {
		return 0
	}
	var d float64
	for i, x := range sorted {
		fx := f.CDFAt(x)
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if v := math.Abs(fx - lo); v > d {
			d = v
		}
		if v := math.Abs(fx - hi); v > d {
			d = v
		}
	}
	return d
}

// CMArea returns the paper's Cramér–von-Mises variant: the area
// between the two CDFs, ∫|F1−F2| dx over [lo, hi] (gridN <= 0 selects
// 512 Simpson points).
func CMArea(f1, f2 CDF, lo, hi float64, gridN int) float64 {
	if gridN <= 0 {
		gridN = 512
	}
	if hi <= lo {
		return 0
	}
	xs := numeric.Linspace(lo, hi, gridN)
	y := make([]float64, gridN)
	for i, x := range xs {
		y[i] = math.Abs(f1.CDFAt(x) - f2.CDFAt(x))
	}
	return numeric.SimpsonUniform(y, xs[1]-xs[0])
}

// CvMSquared returns the classical Cramér–von-Mises statistic
// ω² = ∫ (F1(x) − F2(x))² dF2(x), integrated on a uniform grid over
// [lo, hi] (gridN <= 0 selects 512). Unlike CMArea it is scale-free in
// x, so it is comparable across distributions with different supports.
func CvMSquared(f1, f2 CDF, lo, hi float64, gridN int) float64 {
	if gridN <= 0 {
		gridN = 512
	}
	if hi <= lo {
		return 0
	}
	xs := numeric.Linspace(lo, hi, gridN)
	// dF2 between consecutive grid points, midpoint value of (ΔF)².
	var sum float64
	prevF2 := f2.CDFAt(xs[0])
	prevD := f1.CDFAt(xs[0]) - prevF2
	for i := 1; i < gridN; i++ {
		curF2 := f2.CDFAt(xs[i])
		curD := f1.CDFAt(xs[i]) - curF2
		mid := (prevD + curD) / 2
		sum += mid * mid * (curF2 - prevF2)
		prevF2, prevD = curF2, curD
	}
	if sum < 0 {
		return 0
	}
	return sum
}

// SupportUnion returns a common evaluation interval for a numeric and
// an empirical distribution.
func SupportUnion(rv *stochastic.Numeric, emp *stochastic.Empirical) (lo, hi float64) {
	lo, hi = rv.Lo(), rv.Hi()
	if emp.Len() > 0 {
		if emp.Min() < lo {
			lo = emp.Min()
		}
		if emp.Max() > hi {
			hi = emp.Max()
		}
	}
	return lo, hi
}
