package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/stochastic"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almostEqual(r, 1, 1e-12) {
		t.Errorf("r = %g, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almostEqual(r, -1, 1e-12) {
		t.Errorf("r = %g, want -1", r)
	}
}

func TestPearsonInvariances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = 0.5*xs[i] + rng.NormFloat64()
	}
	r := Pearson(xs, ys)
	// Affine transforms leave |r| unchanged.
	xs2 := make([]float64, len(xs))
	for i := range xs {
		xs2[i] = 3*xs[i] + 7
	}
	if r2 := Pearson(xs2, ys); !almostEqual(r, r2, 1e-12) {
		t.Errorf("affine x changed r: %g vs %g", r, r2)
	}
	ys2 := make([]float64, len(ys))
	for i := range ys {
		ys2[i] = -2 * ys[i]
	}
	if r2 := Pearson(xs, ys2); !almostEqual(r, -r2, 1e-12) {
		t.Errorf("negation should flip sign: %g vs %g", r, r2)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1}, []float64{2})) {
		t.Error("single point should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Error("constant x should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 2}, []float64{1, 2, 3})) {
		t.Error("length mismatch should be NaN")
	}
}

func TestLinReg(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x+1
	slope, intercept, r, err := LinReg(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(slope, 2, 1e-12) || !almostEqual(intercept, 1, 1e-12) || !almostEqual(r, 1, 1e-12) {
		t.Errorf("fit = (%g,%g,r=%g), want (2,1,1)", slope, intercept, r)
	}
	if _, _, _, err := LinReg([]float64{1}, []float64{1}); err == nil {
		t.Error("accepted single point")
	}
	if _, _, _, err := LinReg([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("accepted zero-variance x")
	}
}

func TestKSIdenticalIsZero(t *testing.T) {
	rv := stochastic.FromDist(stochastic.Normal{Mu: 0, Sigma: 1}, 128)
	if d := KS(rv, rv, -8, 8, 0); d != 0 {
		t.Errorf("KS(self) = %g, want 0", d)
	}
	if d := CMArea(rv, rv, -8, 8, 0); d != 0 {
		t.Errorf("CM(self) = %g, want 0", d)
	}
}

func TestKSShiftedNormals(t *testing.T) {
	// KS between N(0,1) and N(d,1) is 2Φ(d/2) − 1.
	a := stochastic.FromDist(stochastic.Normal{Mu: 0, Sigma: 1}, 512)
	b := stochastic.FromDist(stochastic.Normal{Mu: 1, Sigma: 1}, 512)
	want := 2*stochastic.Normal{Mu: 0, Sigma: 1}.CDF(0.5) - 1
	if d := KS(a, b, -8, 9, 2048); !almostEqual(d, want, 0.01) {
		t.Errorf("KS = %g, want %g", d, want)
	}
	// CM area between N(0,1) and N(d,1) is exactly d.
	if cm := CMArea(a, b, -8, 9, 2048); !almostEqual(cm, 1, 0.02) {
		t.Errorf("CM area = %g, want 1", cm)
	}
}

func TestKSAgainstEmpirical(t *testing.T) {
	n := stochastic.Normal{Mu: 10, Sigma: 2}
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = n.Sample(rng)
	}
	emp := stochastic.NewEmpirical(samples)
	rv := stochastic.FromDist(n, 512)
	d := KSAgainstEmpirical(rv, emp)
	// With 20k samples the KS distance to the truth is ~1/sqrt(n)≈0.01.
	if d > 0.03 {
		t.Errorf("KS vs empirical = %g, want < 0.03", d)
	}
	if KSAgainstEmpirical(rv, stochastic.NewEmpirical(nil)) != 0 {
		t.Error("empty empirical should give 0")
	}
}

func TestSupportUnion(t *testing.T) {
	rv := stochastic.FromDist(stochastic.Uniform{Lo: 2, Hi: 5}, 64)
	emp := stochastic.NewEmpirical([]float64{1, 4, 7})
	lo, hi := SupportUnion(rv, emp)
	if lo != 1 || hi != 7 {
		t.Errorf("union = [%g,%g], want [1,7]", lo, hi)
	}
}

func TestCorrMatrix(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	zs := []float64{4, 3, 2, 1}
	m, err := CorrMatrix([][]float64{xs, ys, zs})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m[0][1], 1, 1e-12) || !almostEqual(m[0][2], -1, 1e-12) {
		t.Errorf("matrix = %v", m)
	}
	for i := 0; i < 3; i++ {
		if m[i][i] != 1 {
			t.Error("diagonal must be 1")
		}
		for j := 0; j < 3; j++ {
			if m[i][j] != m[j][i] {
				t.Error("matrix must be symmetric")
			}
		}
	}
	if _, err := CorrMatrix(nil); err == nil {
		t.Error("accepted empty input")
	}
	if _, err := CorrMatrix([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("accepted ragged input")
	}
}

// A zero-variance (constant) metric column must yield NaN off-diagonal
// entries — never a panic, an Inf, or a spurious ±1 — and leave every
// other entry untouched.
func TestCorrMatrixConstantColumn(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	konst := []float64{5, 5, 5, 5} // e.g. σ_M of a Dirac-duration case
	ys := []float64{8, 6, 4, 2}
	m, err := CorrMatrix([][]float64{xs, konst, ys})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{0, 2} {
		if !math.IsNaN(m[1][j]) || !math.IsNaN(m[j][1]) {
			t.Errorf("constant column vs %d = %g, want NaN", j, m[1][j])
		}
	}
	if m[1][1] != 1 {
		t.Error("diagonal of a constant column must stay 1")
	}
	if !almostEqual(m[0][2], -1, 1e-12) {
		t.Errorf("non-degenerate pair disturbed: %g", m[0][2])
	}
}

func TestAggregateMatricesAllNaNCell(t *testing.T) {
	// A cell that is NaN in every case has no data at all: the
	// aggregate must mark it NaN, not zero.
	m1 := [][]float64{{1, math.NaN()}, {math.NaN(), 1}}
	m2 := [][]float64{{1, math.NaN()}, {math.NaN(), 1}}
	mean, std, err := AggregateMatrices([][][]float64{m1, m2})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(mean[0][1]) || !math.IsNaN(std[0][1]) {
		t.Errorf("all-NaN cell aggregated to %g/%g, want NaN", mean[0][1], std[0][1])
	}
	if mean[0][0] != 1 {
		t.Error("diagonal lost")
	}
}

func TestAggregateMatrices(t *testing.T) {
	m1 := [][]float64{{1, 0.5}, {0.5, 1}}
	m2 := [][]float64{{1, 0.7}, {0.7, 1}}
	mean, std, err := AggregateMatrices([][][]float64{m1, m2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mean[0][1], 0.6, 1e-12) {
		t.Errorf("mean[0][1] = %g, want 0.6", mean[0][1])
	}
	if !almostEqual(std[0][1], 0.1, 1e-12) {
		t.Errorf("std[0][1] = %g, want 0.1", std[0][1])
	}
	// NaN entries are skipped.
	m3 := [][]float64{{1, math.NaN()}, {math.NaN(), 1}}
	mean, std, err = AggregateMatrices([][][]float64{m1, m3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mean[0][1], 0.5, 1e-12) || std[0][1] != 0 {
		t.Errorf("NaN skipping failed: mean %g std %g", mean[0][1], std[0][1])
	}
	if _, _, err := AggregateMatrices(nil); err == nil {
		t.Error("accepted empty input")
	}
}

func TestFormatMatrix(t *testing.T) {
	mean := [][]float64{{1, 0.981}, {0.981, 1}}
	std := [][]float64{{0, 0.022}, {0.022, 0}}
	out := FormatMatrix([]string{"lateness", "absprob"}, mean, std)
	if !strings.Contains(out, "0.981") || !strings.Contains(out, "0.022") {
		t.Errorf("formatted matrix missing values:\n%s", out)
	}
	if !strings.Contains(out, "lateness") {
		t.Error("labels missing")
	}
}

func TestCvMSquared(t *testing.T) {
	rv := stochastic.FromDist(stochastic.Normal{Mu: 0, Sigma: 1}, 512)
	if d := CvMSquared(rv, rv, -8, 8, 0); d != 0 {
		t.Errorf("CvM(self) = %g, want 0", d)
	}
	// Shifted normals: omega^2 positive, bounded by KS^2.
	b := stochastic.FromDist(stochastic.Normal{Mu: 0.5, Sigma: 1}, 512)
	w := CvMSquared(rv, b, -8, 8.5, 1024)
	ks := KS(rv, b, -8, 8.5, 1024)
	if w <= 0 {
		t.Error("CvM of distinct distributions must be positive")
	}
	if w > ks*ks {
		t.Errorf("omega2 = %g exceeds KS^2 = %g", w, ks*ks)
	}
	// Scale-free: stretching x by 10 leaves omega^2 unchanged.
	a10 := stochastic.FromDist(stochastic.Normal{Mu: 0, Sigma: 10}, 512)
	b10 := stochastic.FromDist(stochastic.Normal{Mu: 5, Sigma: 10}, 512)
	w10 := CvMSquared(a10, b10, -80, 85, 1024)
	if math.Abs(w-w10) > 0.05*w {
		t.Errorf("omega2 not scale-free: %g vs %g", w, w10)
	}
	if CvMSquared(rv, b, 5, 5, 0) != 0 {
		t.Error("degenerate interval should give 0")
	}
}
