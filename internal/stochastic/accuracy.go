package stochastic

import (
	"fmt"
	"strconv"
	"strings"
)

// EvalAccuracy is the discretization contract of the numeric evaluation
// stack: how many PDF samples represent a random variable, and how fine
// the intermediate convolution grid of Add may get. The paper fixes the
// first at 64 spline-interpolated points; the second was an implicit
// 8192-point cap. Making both explicit turns the ~75%-of-runtime spline
// fit + resample inside Add into a measured speed/accuracy trade-off
// instead of a hard-coded constant.
//
// The zero value means "the paper's contract": Canon resolves it to
// AccuracyReference, and every consumer canonicalizes before use, so
// EvalAccuracy{} and AccuracyReference are interchangeable.
type EvalAccuracy struct {
	// GridSize is the number of PDF samples of every materialized
	// density (<= 0 selects DefaultGridSize).
	GridSize int
	// WorkGrid caps the intermediate convolution grid of Add: summing a
	// wide density with a narrow one resamples both onto the narrow
	// step, bounded to at most WorkGrid points over the result support
	// (<= 0 selects DefaultMaxWorkGrid). This is the resampling policy:
	// lowering it caps the cost of the dominant wide×narrow sums.
	WorkGrid int
}

// Named accuracy presets. Reference reproduces the paper's contract
// bit-for-bit; Fast keeps the 64-point densities but caps intermediate
// convolution grids at 256 points; Coarse halves the density grid too.
// The measured per-metric error of Fast and Coarse is reported by the
// accuracy study (cmd/experiments -fig accuracy) and quoted in the
// README.
var (
	AccuracyReference = EvalAccuracy{GridSize: DefaultGridSize, WorkGrid: DefaultMaxWorkGrid}
	AccuracyFast      = EvalAccuracy{GridSize: DefaultGridSize, WorkGrid: 256}
	AccuracyCoarse    = EvalAccuracy{GridSize: 32, WorkGrid: 128}
)

// AccuracyNames lists the named presets accepted by ParseEvalAccuracy,
// in decreasing fidelity.
func AccuracyNames() []string { return []string{"reference", "fast", "coarse"} }

// AccuracyByName resolves a preset name (as listed by AccuracyNames).
func AccuracyByName(name string) (EvalAccuracy, bool) {
	switch name {
	case "", "reference":
		return AccuracyReference, true
	case "fast":
		return AccuracyFast, true
	case "coarse":
		return AccuracyCoarse, true
	}
	return EvalAccuracy{}, false
}

// Canon resolves defaulted fields, returning the canonical form:
// Canon of the zero value is AccuracyReference.
func (a EvalAccuracy) Canon() EvalAccuracy {
	if a.GridSize <= 0 {
		a.GridSize = DefaultGridSize
	}
	if a.WorkGrid <= 0 {
		a.WorkGrid = DefaultMaxWorkGrid
	}
	return a
}

// IsReference reports whether the accuracy (canonicalized) is the
// paper's reference contract — the setting whose output is bit-identical
// to the pre-EvalAccuracy evaluators.
func (a EvalAccuracy) IsReference() bool { return a.Canon() == AccuracyReference }

// Degrade returns the next coarser named preset — the degradation
// ladder of the fault-tolerant experiment runner: reference → fast →
// coarse. ok is false when no strictly coarser preset exists (already
// coarse, or a custom accuracy below every preset), in which case the
// receiver is returned unchanged. "Coarser" means no larger on both
// axes and different: degrading never silently raises either grid.
func (a EvalAccuracy) Degrade() (EvalAccuracy, bool) {
	c := a.Canon()
	for _, p := range []EvalAccuracy{AccuracyFast, AccuracyCoarse} {
		if p != c && p.GridSize <= c.GridSize && p.WorkGrid <= c.WorkGrid {
			return p, true
		}
	}
	return c, false
}

// String renders the canonical spelling: a preset name when the value
// matches one, otherwise the explicit "grid=G,work=W" form. The output
// round-trips through ParseEvalAccuracy.
func (a EvalAccuracy) String() string {
	c := a.Canon()
	switch c {
	case AccuracyReference:
		return "reference"
	case AccuracyFast:
		return "fast"
	case AccuracyCoarse:
		return "coarse"
	}
	return fmt.Sprintf("grid=%d,work=%d", c.GridSize, c.WorkGrid)
}

// ParseEvalAccuracy parses an accuracy spelling: empty or a preset name
// ("reference", "fast", "coarse"), or explicit "grid=G", "work=W",
// "grid=G,work=W" fields (any order; omitted fields take the reference
// defaults). Unknown names and malformed fields are errors — never a
// silent fallback.
func ParseEvalAccuracy(s string) (EvalAccuracy, error) {
	s = strings.TrimSpace(s)
	if acc, ok := AccuracyByName(s); ok {
		return acc, nil
	}
	if !strings.Contains(s, "=") {
		return EvalAccuracy{}, fmt.Errorf(
			"stochastic: unknown accuracy preset %q (want %s or grid=G[,work=W])",
			s, strings.Join(AccuracyNames(), "|"))
	}
	acc := EvalAccuracy{}
	for _, field := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return EvalAccuracy{}, fmt.Errorf("stochastic: malformed accuracy field %q in %q", field, s)
		}
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 2 {
			return EvalAccuracy{}, fmt.Errorf("stochastic: accuracy field %q needs an integer >= 2 in %q", k, s)
		}
		switch strings.TrimSpace(k) {
		case "grid":
			acc.GridSize = n
		case "work":
			acc.WorkGrid = n
		default:
			return EvalAccuracy{}, fmt.Errorf("stochastic: unknown accuracy field %q in %q (want grid or work)", k, s)
		}
	}
	return acc.Canon(), nil
}
