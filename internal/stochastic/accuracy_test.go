package stochastic

import (
	"math"
	"math/rand"
	"testing"
)

func TestAccuracyCanonAndPresets(t *testing.T) {
	if got := (EvalAccuracy{}).Canon(); got != AccuracyReference {
		t.Errorf("Canon(zero) = %+v, want AccuracyReference %+v", got, AccuracyReference)
	}
	if !(EvalAccuracy{}).IsReference() {
		t.Error("zero value must report IsReference")
	}
	if !AccuracyReference.IsReference() || AccuracyFast.IsReference() || AccuracyCoarse.IsReference() {
		t.Error("IsReference must single out the reference preset")
	}
	if AccuracyReference.GridSize != DefaultGridSize || AccuracyReference.WorkGrid != DefaultMaxWorkGrid {
		t.Errorf("AccuracyReference %+v does not match the package defaults", AccuracyReference)
	}
	// Partially-defaulted values canonicalize field-wise.
	if got := (EvalAccuracy{GridSize: 48}).Canon(); got.WorkGrid != DefaultMaxWorkGrid || got.GridSize != 48 {
		t.Errorf("Canon(grid=48) = %+v", got)
	}
	for _, name := range AccuracyNames() {
		if _, ok := AccuracyByName(name); !ok {
			t.Errorf("AccuracyNames lists %q but AccuracyByName rejects it", name)
		}
	}
}

func TestAccuracyDegradeLadder(t *testing.T) {
	steps := []struct {
		from EvalAccuracy
		want EvalAccuracy
		ok   bool
	}{
		{EvalAccuracy{}, AccuracyFast, true}, // zero value = reference
		{AccuracyReference, AccuracyFast, true},
		{AccuracyFast, AccuracyCoarse, true},
		{AccuracyCoarse, AccuracyCoarse, false},
		// A custom accuracy coarser than every preset cannot degrade:
		// Degrade must never raise a grid.
		{EvalAccuracy{GridSize: 16, WorkGrid: 64}, EvalAccuracy{GridSize: 16, WorkGrid: 64}, false},
		// A custom accuracy finer than fast degrades onto the ladder.
		{EvalAccuracy{GridSize: 96, WorkGrid: 4096}, AccuracyFast, true},
	}
	for _, s := range steps {
		got, ok := s.from.Degrade()
		if got != s.want || ok != s.ok {
			t.Errorf("Degrade(%v) = (%v, %v), want (%v, %v)", s.from, got, ok, s.want, s.ok)
		}
	}
	// The ladder terminates from every start.
	for _, start := range []EvalAccuracy{AccuracyReference, AccuracyFast, AccuracyCoarse, {GridSize: 128, WorkGrid: 16384}} {
		a, hops := start, 0
		for {
			next, ok := a.Degrade()
			if !ok {
				break
			}
			a = next
			if hops++; hops > 4 {
				t.Fatalf("Degrade from %v does not terminate", start)
			}
		}
	}
}

func TestAccuracyStringParseRoundTrip(t *testing.T) {
	cases := []EvalAccuracy{
		{}, AccuracyReference, AccuracyFast, AccuracyCoarse,
		{GridSize: 48}, {WorkGrid: 512}, {GridSize: 96, WorkGrid: 1024},
	}
	for _, acc := range cases {
		s := acc.String()
		back, err := ParseEvalAccuracy(s)
		if err != nil {
			t.Errorf("ParseEvalAccuracy(%q): %v", s, err)
			continue
		}
		if back != acc.Canon() {
			t.Errorf("round trip %+v -> %q -> %+v", acc, s, back)
		}
	}
	// Spellings with reordered or omitted fields.
	for spec, want := range map[string]EvalAccuracy{
		"":                  AccuracyReference,
		"  fast ":           AccuracyFast,
		"work=512":          {GridSize: DefaultGridSize, WorkGrid: 512},
		"work=256, grid=32": {GridSize: 32, WorkGrid: 256},
	} {
		got, err := ParseEvalAccuracy(spec)
		if err != nil {
			t.Errorf("ParseEvalAccuracy(%q): %v", spec, err)
		} else if got != want.Canon() {
			t.Errorf("ParseEvalAccuracy(%q) = %+v, want %+v", spec, got, want.Canon())
		}
	}
	// Malformed spellings must error, never fall back silently.
	for _, bad := range []string{
		"speedy", "grid", "grid=", "grid=abc", "grid=1", "work=-8",
		"grid=64;work=256", "step=4", "grid=64,work",
	} {
		if acc, err := ParseEvalAccuracy(bad); err == nil {
			t.Errorf("ParseEvalAccuracy(%q) = %+v, want error", bad, acc)
		}
	}
}

// The accuracy-parameterized operators at the reference preset must be
// bit-identical to the fixed-grid originals — this is the contract that
// keeps every pre-EvalAccuracy golden and cache entry valid.
func TestAddAccReferenceBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ops := &Ops{}
	for trial := 0; trial < 10; trial++ {
		a := FromDist(NewBetaUL(1+9*rng.Float64(), 1.05+rng.Float64()), DefaultGridSize)
		b := FromDist(NewBetaUL(1+9*rng.Float64(), 1.05+rng.Float64()), DefaultGridSize)
		want := a.Add(b, DefaultGridSize)
		for name, got := range map[string]*Numeric{
			"Numeric.AddAcc(zero)": a.AddAcc(b, EvalAccuracy{}),
			"Numeric.AddAcc(ref)":  a.AddAcc(b, AccuracyReference),
			"Ops.AddAcc(ref)":      ops.AddAcc(a, b, AccuracyReference),
			"Ops.Add":              ops.Add(a, b, DefaultGridSize),
		} {
			if got.Lo() != want.Lo() || got.Hi() != want.Hi() {
				t.Fatalf("trial %d %s: support [%g,%g], want [%g,%g]",
					trial, name, got.Lo(), got.Hi(), want.Lo(), want.Hi())
			}
			gp, wp := got.PDFGrid(), want.PDFGrid()
			if len(gp) != len(wp) {
				t.Fatalf("trial %d %s: grid %d, want %d", trial, name, len(gp), len(wp))
			}
			for i := range gp {
				if gp[i] != wp[i] {
					t.Fatalf("trial %d %s: pdf[%d] = %g, want %g (bit-identity broken)",
						trial, name, i, gp[i], wp[i])
				}
			}
		}
	}
}

// sumAt folds k beta variables with AddAcc/MaxAcc at the given accuracy
// — a miniature of the classical evaluation recurrence.
func sumAt(rng *rand.Rand, mins, uls []float64, acc EvalAccuracy) *Numeric {
	acc = acc.Canon()
	out := FromDist(NewBetaUL(mins[0], uls[0]), acc.GridSize)
	for i := 1; i < len(mins); i++ {
		next := FromDist(NewBetaUL(mins[i], uls[i]), acc.GridSize)
		if i%3 == 2 {
			out = out.MaxAcc(out.AddAcc(next, acc), acc)
		} else {
			out = out.AddAcc(next, acc)
		}
	}
	return out
}

// Property: as the density grid grows toward the 64-point reference,
// the moment and quantile errors of a composite Add/Max pipeline
// converge (monotonically, up to 10% slack) toward zero.
func TestAccuracyGridConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const k = 12
	mins := make([]float64, k)
	uls := make([]float64, k)
	for i := range mins {
		mins[i] = 1 + 9*rng.Float64()
		uls[i] = 1.05 + rng.Float64()
	}
	ref := sumAt(rng, mins, uls, AccuracyReference)
	grids := []int{8, 16, 32, 48}
	errAt := func(g int) float64 {
		rv := sumAt(rng, mins, uls, EvalAccuracy{GridSize: g, WorkGrid: DefaultMaxWorkGrid})
		e := math.Abs(rv.Mean()-ref.Mean()) / ref.Mean()
		e = math.Max(e, math.Abs(rv.StdDev()-ref.StdDev())/(ref.StdDev()+1e-12))
		for _, q := range []float64{0.1, 0.5, 0.9} {
			e = math.Max(e, math.Abs(rv.Quantile(q)-ref.Quantile(q))/ref.Mean())
		}
		return e
	}
	prev := math.Inf(1)
	for _, g := range grids {
		e := errAt(g)
		t.Logf("grid %2d: max relative error %.3e", g, e)
		if e > 1.1*prev+1e-12 {
			t.Errorf("grid %d error %.3e worse than coarser grid's %.3e — not converging", g, e, prev)
		}
		prev = e
	}
	if prev > 0.02 {
		t.Errorf("grid 48 error %.3e, want < 2%% of the reference", prev)
	}
	// Tightening only the work-grid cap must also converge: the fast
	// preset's 256-point cap stays within 1% of reference on this
	// pipeline, and raising the cap back to the default recovers
	// bit-identity (covered above).
	fast := sumAt(rng, mins, uls, AccuracyFast)
	if e := math.Abs(fast.Mean()-ref.Mean()) / ref.Mean(); e > 0.01 {
		t.Errorf("fast preset mean error %.3e, want < 1%%", e)
	}
}

// Degenerate inputs must survive every preset: Dirac points stay exact
// under Add/Max at any grid, and zero-width mixtures never divide by
// zero.
func TestAccuracyDegenerateAtEveryPreset(t *testing.T) {
	for _, name := range AccuracyNames() {
		acc, _ := AccuracyByName(name)
		t.Run(name, func(t *testing.T) {
			a := NewPoint(3)
			b := NewPoint(4)
			if got := a.AddAcc(b, acc); !got.IsPoint() || got.Lo() != 7 {
				t.Errorf("Dirac(3)+Dirac(4) = %v, want point at 7", got)
			}
			if got := a.MaxAcc(b, acc); !got.IsPoint() || got.Lo() != 4 {
				t.Errorf("max(Dirac(3),Dirac(4)) = %v, want point at 4", got)
			}
			zero := NewPoint(0)
			if got := zero.AddAcc(zero, acc); !got.IsPoint() || got.Lo() != 0 {
				t.Errorf("Dirac(0)+Dirac(0) = %v, want point at 0", got)
			}
			// Dirac + continuous: the shift must be exact at any accuracy.
			c := FromDist(NewBetaUL(2, 1.5), acc.Canon().GridSize)
			got := c.AddAcc(a, acc)
			if math.Abs(got.Mean()-(c.Mean()+3)) > 1e-9*got.Mean() {
				t.Errorf("beta+Dirac(3) mean %g, want %g", got.Mean(), c.Mean()+3)
			}
		})
	}
}
