package stochastic

import (
	"fmt"
	"math/rand"
	"sync"
)

// BatchSampler draws many variates at once. It is the sampling side of
// the compiled realization kernel: specializing the sampler per
// concrete distribution removes the per-sample interface dispatch of
// Dist.Sample from the Monte-Carlo hot loop, and batch-sized calls let
// table-driven samplers amortize their setup over a whole block of
// realizations.
type BatchSampler interface {
	// SampleN fills dst with independent variates drawn from rng.
	SampleN(dst []float64, rng *rand.Rand)
}

// SamplerMode selects how NewBatchSampler realizes a distribution.
type SamplerMode int

const (
	// SamplerExact draws through the distribution's own Sample method
	// (specialized per concrete type but with identical arithmetic),
	// so the stream is bit-compatible with per-sample Dist.Sample
	// calls on the same rng.
	SamplerExact SamplerMode = iota
	// SamplerTable replaces the Beta rejection/ratio sampler with a
	// precomputed inverse-CDF lookup table: one uniform draw and one
	// linear interpolation per variate. Distributions without a table
	// implementation fall back to exact sampling. The table
	// distribution differs from the exact one by at most
	// 1/BetaTableSize in Kolmogorov distance.
	SamplerTable
)

// String names the mode the way flags spell it.
func (m SamplerMode) String() string {
	switch m {
	case SamplerExact:
		return "exact"
	case SamplerTable:
		return "table"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseSamplerMode converts a flag value into a SamplerMode.
func ParseSamplerMode(s string) (SamplerMode, error) {
	switch s {
	case "", "exact":
		return SamplerExact, nil
	case "table":
		return SamplerTable, nil
	default:
		return 0, fmt.Errorf("stochastic: unknown sampler mode %q (want exact or table)", s)
	}
}

// NewBatchSampler returns a batch sampler for d under the given mode.
// The exact-mode samplers call the concrete type's Sample directly
// (devirtualized, inlinable), so their streams are bit-identical to
// looping d.Sample on the same rng.
func NewBatchSampler(d Dist, mode SamplerMode) BatchSampler {
	switch v := d.(type) {
	case Dirac:
		return constSampler{v.Value}
	case Uniform:
		return uniformSampler{v}
	case Normal:
		return normalSampler{v}
	case Exponential:
		return expSampler{v}
	case LogNormal:
		return logNormalSampler{v}
	case Beta:
		if mode == SamplerTable {
			return newBetaTableSampler(v)
		}
		return betaSampler{v}
	case Shifted:
		return shiftedSampler{inner: NewBatchSampler(v.D, mode), off: v.Off}
	default:
		return genericSampler{d}
	}
}

type constSampler struct{ v float64 }

func (s constSampler) SampleN(dst []float64, _ *rand.Rand) {
	for i := range dst {
		dst[i] = s.v
	}
}

type uniformSampler struct{ d Uniform }

func (s uniformSampler) SampleN(dst []float64, rng *rand.Rand) {
	for i := range dst {
		dst[i] = s.d.Sample(rng)
	}
}

type normalSampler struct{ d Normal }

func (s normalSampler) SampleN(dst []float64, rng *rand.Rand) {
	for i := range dst {
		dst[i] = s.d.Sample(rng)
	}
}

type expSampler struct{ d Exponential }

func (s expSampler) SampleN(dst []float64, rng *rand.Rand) {
	for i := range dst {
		dst[i] = s.d.Sample(rng)
	}
}

type logNormalSampler struct{ d LogNormal }

func (s logNormalSampler) SampleN(dst []float64, rng *rand.Rand) {
	for i := range dst {
		dst[i] = s.d.Sample(rng)
	}
}

type betaSampler struct{ d Beta }

func (s betaSampler) SampleN(dst []float64, rng *rand.Rand) {
	for i := range dst {
		dst[i] = s.d.Sample(rng)
	}
}

type shiftedSampler struct {
	inner BatchSampler
	off   float64
}

func (s shiftedSampler) SampleN(dst []float64, rng *rand.Rand) {
	s.inner.SampleN(dst, rng)
	for i := range dst {
		dst[i] += s.off
	}
}

// genericSampler covers distributions with no specialized batch path
// (e.g. the Special oscillating family); it pays the interface call
// per sample, exactly like the legacy engine.
type genericSampler struct{ d Dist }

func (s genericSampler) SampleN(dst []float64, rng *rand.Rand) {
	for i := range dst {
		dst[i] = s.d.Sample(rng)
	}
}

// BetaTableSize is the number of cells of the Beta inverse-CDF lookup
// table. The table sampler's Kolmogorov error is bounded by one cell of
// quantile mass, 1/BetaTableSize ≈ 2.4e-4 — far below the Monte-Carlo
// noise floor of the paper's 100 000-realization runs (KS ≈ 4e-3).
const BetaTableSize = 4096

// betaTableCache shares unit-Beta quantile tables across tasks: the
// paper's model uses one shape (2, 5) for every duration and arc, so
// the table is built once per process and every sampler holds only its
// own [Lo, Hi] rescaling.
var betaTableCache sync.Map // [2]float64{alpha, beta} -> []float64

type betaTableSampler struct {
	lo, width float64
	q         []float64 // unit quantiles at i/BetaTableSize, len BetaTableSize+1
}

func newBetaTableSampler(b Beta) betaTableSampler {
	return betaTableSampler{lo: b.Lo, width: b.Hi - b.Lo, q: unitBetaQuantiles(b.Alpha, b.Beta)}
}

func (s betaTableSampler) SampleN(dst []float64, rng *rand.Rand) {
	q := s.q
	for i := range dst {
		// rng.Float64() < 1, so cell < BetaTableSize and cell+1 is in
		// range.
		u := rng.Float64() * BetaTableSize
		cell := int(u)
		frac := u - float64(cell)
		lo := q[cell]
		dst[i] = s.lo + s.width*(lo+(q[cell+1]-lo)*frac)
	}
}

// unitBetaQuantiles returns (building and caching on first use) the
// quantiles of the unit Beta(alpha, beta) at i/BetaTableSize.
func unitBetaQuantiles(alpha, beta float64) []float64 {
	key := [2]float64{alpha, beta}
	if v, ok := betaTableCache.Load(key); ok {
		return v.([]float64)
	}
	q := make([]float64, BetaTableSize+1)
	q[BetaTableSize] = 1
	for i := 1; i < BetaTableSize; i++ {
		// The CDF is monotone, so the previous knot brackets from
		// below and bisection cannot escape [q[i-1], 1].
		q[i] = invRegIncBeta(alpha, beta, float64(i)/BetaTableSize, q[i-1])
	}
	actual, _ := betaTableCache.LoadOrStore(key, q)
	return actual.([]float64)
}

// invRegIncBeta inverts the regularized incomplete beta by bisection:
// the smallest x in [lo, 1] with I_x(a, b) >= u, to ~1e-14 in x.
func invRegIncBeta(a, b, u, lo float64) float64 {
	hi := 1.0
	for i := 0; i < 52; i++ {
		mid := (lo + hi) / 2
		if RegIncBeta(a, b, mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
