package stochastic

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Exact-mode samplers must be bit-compatible with looping Sample on
// the same rng, for every concrete distribution family.
func TestExactSamplersBitIdentical(t *testing.T) {
	dists := []Dist{
		Dirac{Value: 3.5},
		Uniform{Lo: 2, Hi: 5},
		Normal{Mu: 10, Sigma: 2},
		Exponential{Rate: 0.5},
		LogNormal{Mu: 0.5, Sigma: 0.25},
		NewBetaUL(10, 1.4),
		Shifted{D: Uniform{Lo: 0, Hi: 1}, Off: 7},
		NewSpecial(), // generic fallback
	}
	for _, d := range dists {
		s := NewBatchSampler(d, SamplerExact)
		const n = 500
		want := make([]float64, n)
		rngA := rand.New(rand.NewSource(11))
		for i := range want {
			want[i] = d.Sample(rngA)
		}
		got := make([]float64, n)
		s.SampleN(got, rand.New(rand.NewSource(11)))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%T: sample %d = %v, want %v (not bit-identical)", d, i, got[i], want[i])
			}
		}
	}
}

// The table sampler's empirical CDF must stay within the advertised
// Kolmogorov bound of the analytic Beta CDF (plus Monte-Carlo noise).
func TestBetaTableSamplerKS(t *testing.T) {
	b := NewBetaUL(10, 1.5)
	s := NewBatchSampler(b, SamplerTable)
	if _, ok := s.(betaTableSampler); !ok {
		t.Fatalf("table mode built %T, want betaTableSampler", s)
	}
	const n = 200000
	samples := make([]float64, n)
	s.SampleN(samples, rand.New(rand.NewSource(5)))
	sort.Float64s(samples)
	var ks float64
	for i, x := range samples {
		if x < b.Lo || x > b.Hi {
			t.Fatalf("sample %g outside support [%g,%g]", x, b.Lo, b.Hi)
		}
		fx := b.CDF(x)
		for _, e := range []float64{float64(i) / n, float64(i+1) / n} {
			if v := math.Abs(fx - e); v > ks {
				ks = v
			}
		}
	}
	// KS noise floor at n=200000 is ~0.003; the table adds <= 1/4096.
	if ks > 0.005 {
		t.Errorf("table sampler KS distance %g too large", ks)
	}
	// Moments should agree with the analytic values well within
	// Monte-Carlo noise.
	var sum, sumsq float64
	for _, x := range samples {
		sum += x
	}
	mean := sum / n
	for _, x := range samples {
		d := x - mean
		sumsq += d * d
	}
	if math.Abs(mean-b.Mean()) > 0.01 {
		t.Errorf("table mean %g, want %g", mean, b.Mean())
	}
	if sd := math.Sqrt(sumsq / n); math.Abs(sd-math.Sqrt(b.Variance())) > 0.01 {
		t.Errorf("table stddev %g, want %g", sd, math.Sqrt(b.Variance()))
	}
}

func TestUnitBetaQuantilesMonotone(t *testing.T) {
	q := unitBetaQuantiles(2, 5)
	if len(q) != BetaTableSize+1 {
		t.Fatalf("table length %d", len(q))
	}
	if q[0] != 0 || q[BetaTableSize] != 1 {
		t.Fatalf("endpoints %g, %g", q[0], q[BetaTableSize])
	}
	for i := 1; i < len(q); i++ {
		if q[i] < q[i-1] {
			t.Fatalf("quantiles not monotone at %d", i)
		}
	}
	// Spot-check the median against direct inversion.
	med := q[BetaTableSize/2]
	if v := RegIncBeta(2, 5, med); math.Abs(v-0.5) > 1e-9 {
		t.Errorf("median knot CDF = %g, want 0.5", v)
	}
}

func TestShiftedTableSampler(t *testing.T) {
	base := NewBetaUL(10, 1.5)
	sh := Shifted{D: base, Off: 100}
	s := NewBatchSampler(sh, SamplerTable)
	dst := make([]float64, 1000)
	s.SampleN(dst, rand.New(rand.NewSource(1)))
	for _, x := range dst {
		if x < base.Lo+100 || x > base.Hi+100 {
			t.Fatalf("shifted sample %g outside [%g,%g]", x, base.Lo+100, base.Hi+100)
		}
	}
}

func TestSamplerModeParseAndString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SamplerMode
	}{{"", SamplerExact}, {"exact", SamplerExact}, {"table", SamplerTable}} {
		got, err := ParseSamplerMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSamplerMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSamplerMode("nope"); err == nil {
		t.Error("unknown mode accepted")
	}
	if SamplerExact.String() != "exact" || SamplerTable.String() != "table" {
		t.Error("mode names drifted")
	}
}
