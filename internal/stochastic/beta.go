package stochastic

import (
	"math"
	"math/rand"
)

// Beta is a Beta(Alpha, Beta) distribution linearly rescaled to the
// interval [Lo, Hi]. The paper's uncertainty model is Beta(2, 5) over
// [min, min·UL]: right-skewed (β > α) with a well-defined non-zero mode
// (α > 1), so most realizations land near the minimum duration with a
// tail toward the maximum.
type Beta struct {
	Alpha, Beta float64 // shape parameters, > 0
	Lo, Hi      float64 // support of the rescaled variable
}

// NewBetaUL builds the paper's duration distribution: Beta(2,5) scaled
// to [min, min·ul]. ul must be >= 1; ul == 1 collapses to a Dirac and
// callers should special-case that (see DurationDist).
func NewBetaUL(min, ul float64) Beta {
	return Beta{Alpha: 2, Beta: 5, Lo: min, Hi: min * ul}
}

// DurationDist returns the distribution of an uncertain duration with
// the given minimum value and uncertainty level: Dirac(min) when ul <= 1
// or min == 0, otherwise Beta(2,5) over [min, min·ul].
func DurationDist(min, ul float64) Dist {
	if ul <= 1 || min <= 0 {
		return Dirac{Value: min}
	}
	return NewBetaUL(min, ul)
}

func (b Beta) width() float64 { return b.Hi - b.Lo }

// Mean returns Lo + width·α/(α+β).
func (b Beta) Mean() float64 {
	return b.Lo + b.width()*b.Alpha/(b.Alpha+b.Beta)
}

// Variance returns width²·αβ/((α+β)²(α+β+1)).
func (b Beta) Variance() float64 {
	s := b.Alpha + b.Beta
	w := b.width()
	return w * w * b.Alpha * b.Beta / (s * s * (s + 1))
}

// Mode returns the mode of the rescaled distribution (requires α > 1,
// β > 1; otherwise returns the nearest support endpoint).
func (b Beta) Mode() float64 {
	if b.Alpha > 1 && b.Beta > 1 {
		return b.Lo + b.width()*(b.Alpha-1)/(b.Alpha+b.Beta-2)
	}
	if b.Alpha <= 1 {
		return b.Lo
	}
	return b.Hi
}

// PDF returns the density of the rescaled beta variable.
func (b Beta) PDF(x float64) float64 {
	w := b.width()
	if w <= 0 || x < b.Lo || x > b.Hi {
		return 0
	}
	t := (x - b.Lo) / w
	if t == 0 { //reprovet:allow floateq density special case at the exact lower support endpoint
		if b.Alpha < 1 {
			return math.Inf(1)
		}
		if b.Alpha == 1 { //reprovet:allow floateq Alpha is a configured parameter compared to its exact special-case value
			return b.Beta / w
		}
		return 0
	}
	if t == 1 { //reprovet:allow floateq density special case at the exact upper support endpoint
		if b.Beta < 1 {
			return math.Inf(1)
		}
		if b.Beta == 1 { //reprovet:allow floateq Beta is a configured parameter compared to its exact special-case value
			return b.Alpha / w
		}
		return 0
	}
	lb := lgamma(b.Alpha+b.Beta) - lgamma(b.Alpha) - lgamma(b.Beta)
	return math.Exp(lb+(b.Alpha-1)*math.Log(t)+(b.Beta-1)*math.Log(1-t)) / w
}

// CDF returns the regularized incomplete beta of the rescaled argument.
func (b Beta) CDF(x float64) float64 {
	w := b.width()
	if w <= 0 {
		if x < b.Lo {
			return 0
		}
		return 1
	}
	return RegIncBeta(b.Alpha, b.Beta, (x-b.Lo)/w)
}

// Support returns [Lo, Hi].
func (b Beta) Support() (float64, float64) { return b.Lo, b.Hi }

// Sample draws a beta variate via the ratio of gammas:
// X = G(α)/(G(α)+G(β)).
func (b Beta) Sample(rng *rand.Rand) float64 {
	ga := sampleGamma(rng, b.Alpha)
	gb := sampleGamma(rng, b.Beta)
	return b.Lo + b.width()*ga/(ga+gb)
}
