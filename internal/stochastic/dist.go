// Package stochastic implements the random-variable substrate of the
// study: parametric distributions (Beta, Gamma, Normal, Uniform, Dirac,
// Exponential, LogNormal), numerically represented random variables on a
// uniform PDF grid with sum (convolution) and maximum (CDF product)
// operators, empirical distributions built from Monte-Carlo samples, and
// the "special" concatenated-Beta distribution of Figure 7.
//
// The paper models every uncertain duration as a right-skewed Beta(2,5)
// random variable stretched over [min, min·UL], where UL is the
// uncertainty level; this package provides exactly that plus everything
// needed to propagate such variables through a schedule.
package stochastic

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a one-dimensional probability distribution. Support returns a
// finite interval that carries (essentially) all of the probability
// mass; unbounded distributions report a high-coverage truncation (e.g.
// µ ± 8σ for the normal) so densities can be discretized.
type Dist interface {
	Sample(rng *rand.Rand) float64
	Mean() float64
	Variance() float64
	PDF(x float64) float64
	CDF(x float64) float64
	Support() (lo, hi float64)
}

// StdDev returns the standard deviation of d.
func StdDev(d Dist) float64 { return math.Sqrt(d.Variance()) }

// Dirac is the degenerate distribution concentrated at Value.
type Dirac struct{ Value float64 }

// Sample returns the constant value.
func (d Dirac) Sample(*rand.Rand) float64 { return d.Value }

// Mean returns the constant value.
func (d Dirac) Mean() float64 { return d.Value }

// Variance returns 0.
func (d Dirac) Variance() float64 { return 0 }

// PDF is +Inf at the atom and 0 elsewhere (a true density does not
// exist; callers treat Dirac specially).
func (d Dirac) PDF(x float64) float64 {
	if x == d.Value { //reprovet:allow floateq a Dirac atom is a point mass; its density is infinite at exactly the atom
		return math.Inf(1)
	}
	return 0
}

// CDF is the unit step at Value.
func (d Dirac) CDF(x float64) float64 {
	if x < d.Value {
		return 0
	}
	return 1
}

// Support returns the degenerate interval [Value, Value].
func (d Dirac) Support() (float64, float64) { return d.Value, d.Value }

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

// Sample draws a uniform variate.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Variance returns (Hi-Lo)²/12.
func (u Uniform) Variance() float64 {
	w := u.Hi - u.Lo
	return w * w / 12
}

// PDF returns the uniform density.
func (u Uniform) PDF(x float64) float64 {
	if x < u.Lo || x > u.Hi || u.Hi <= u.Lo {
		return 0
	}
	return 1 / (u.Hi - u.Lo)
}

// CDF returns the uniform CDF.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

// Support returns [Lo, Hi].
func (u Uniform) Support() (float64, float64) { return u.Lo, u.Hi }

// Normal is the Gaussian distribution with mean Mu and standard
// deviation Sigma (> 0).
type Normal struct{ Mu, Sigma float64 }

// Sample draws a Gaussian variate.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// Variance returns Sigma².
func (n Normal) Variance() float64 { return n.Sigma * n.Sigma }

// PDF returns the Gaussian density.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma <= 0 {
		return 0
	}
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns the Gaussian CDF via erf.
func (n Normal) CDF(x float64) float64 {
	if n.Sigma <= 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-n.Mu)/(n.Sigma*math.Sqrt2)))
}

// Support truncates at Mu ± 8 Sigma (mass beyond is ~1e-15).
func (n Normal) Support() (float64, float64) {
	return n.Mu - 8*n.Sigma, n.Mu + 8*n.Sigma
}

// Exponential is the exponential distribution with the given Rate (> 0).
type Exponential struct{ Rate float64 }

// Sample draws an exponential variate by inversion.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / e.Rate
}

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Variance returns 1/Rate².
func (e Exponential) Variance() float64 { return 1 / (e.Rate * e.Rate) }

// PDF returns the exponential density.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*x)
}

// CDF returns 1 - exp(-Rate x).
func (e Exponential) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Exp(-e.Rate*x)
}

// Support truncates where the CDF reaches 1-1e-12.
func (e Exponential) Support() (float64, float64) {
	return 0, -math.Log(1e-12) / e.Rate
}

// LogNormal is the distribution of exp(N(Mu, Sigma²)).
type LogNormal struct{ Mu, Sigma float64 }

// Sample draws a log-normal variate.
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Mean returns exp(Mu + Sigma²/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Variance returns (exp(Sigma²)-1)·exp(2Mu+Sigma²).
func (l LogNormal) Variance() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

// PDF returns the log-normal density.
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 || l.Sigma <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return math.Exp(-z*z/2) / (x * l.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns the log-normal CDF.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{l.Mu, l.Sigma}.CDF(math.Log(x))
}

// Support truncates at exp(Mu ± 8 Sigma).
func (l LogNormal) Support() (float64, float64) {
	return math.Exp(l.Mu - 8*l.Sigma), math.Exp(l.Mu + 8*l.Sigma)
}

// Shifted translates a distribution by Off: the law of D + Off. It is
// used to move zero-based families (like the oscillating Special
// distribution) onto a duration interval [min, min·UL].
type Shifted struct {
	D   Dist
	Off float64
}

// Sample draws D + Off.
func (s Shifted) Sample(rng *rand.Rand) float64 { return s.D.Sample(rng) + s.Off }

// Mean returns E[D] + Off.
func (s Shifted) Mean() float64 { return s.D.Mean() + s.Off }

// Variance is unchanged by translation.
func (s Shifted) Variance() float64 { return s.D.Variance() }

// PDF evaluates the translated density.
func (s Shifted) PDF(x float64) float64 { return s.D.PDF(x - s.Off) }

// CDF evaluates the translated CDF.
func (s Shifted) CDF(x float64) float64 { return s.D.CDF(x - s.Off) }

// Support returns the translated support.
func (s Shifted) Support() (float64, float64) {
	lo, hi := s.D.Support()
	return lo + s.Off, hi + s.Off
}

// Validate sanity-checks common distribution invariants and is used by
// property tests: CDF monotone in [0,1], support ordered.
func Validate(d Dist) error {
	lo, hi := d.Support()
	if lo > hi {
		return fmt.Errorf("stochastic: support [%g,%g] inverted", lo, hi)
	}
	if math.IsNaN(d.Mean()) {
		return fmt.Errorf("stochastic: NaN mean")
	}
	if d.Variance() < 0 {
		return fmt.Errorf("stochastic: negative variance %g", d.Variance())
	}
	return nil
}
