package stochastic

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// checkMoments draws samples and compares sample mean/variance with the
// analytic values.
func checkMoments(t *testing.T, name string, d Dist, n int, meanTol, varTol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := d.Sample(rng)
		sum += x
		sum2 += x * x
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if !almostEqual(mean, d.Mean(), meanTol) {
		t.Errorf("%s: sample mean %g vs analytic %g", name, mean, d.Mean())
	}
	if !almostEqual(variance, d.Variance(), varTol) {
		t.Errorf("%s: sample variance %g vs analytic %g", name, variance, d.Variance())
	}
}

// checkCDFMatchesSamples verifies the analytic CDF against the empirical
// CDF at several quantile points.
func checkCDFMatchesSamples(t *testing.T, name string, d Dist, n int, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(123))
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = d.Sample(rng)
	}
	emp := NewEmpirical(samples)
	lo, hi := d.Support()
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		x := lo + frac*(hi-lo)
		if got, want := d.CDF(x), emp.CDFAt(x); !almostEqual(got, want, tol) {
			t.Errorf("%s: CDF(%g) = %g vs empirical %g", name, x, got, want)
		}
	}
}

func TestDirac(t *testing.T) {
	d := Dirac{Value: 3}
	if d.Mean() != 3 || d.Variance() != 0 {
		t.Error("Dirac moments wrong")
	}
	if d.CDF(2.999) != 0 || d.CDF(3) != 1 || d.CDF(4) != 1 {
		t.Error("Dirac CDF wrong")
	}
	if d.Sample(rand.New(rand.NewSource(1))) != 3 {
		t.Error("Dirac sample wrong")
	}
	lo, hi := d.Support()
	if lo != 3 || hi != 3 {
		t.Error("Dirac support wrong")
	}
}

func TestUniform(t *testing.T) {
	u := Uniform{Lo: 2, Hi: 6}
	if !almostEqual(u.Mean(), 4, 1e-12) || !almostEqual(u.Variance(), 16.0/12, 1e-12) {
		t.Error("Uniform moments wrong")
	}
	if !almostEqual(u.PDF(3), 0.25, 1e-12) || u.PDF(7) != 0 {
		t.Error("Uniform PDF wrong")
	}
	if !almostEqual(u.CDF(4), 0.5, 1e-12) {
		t.Error("Uniform CDF wrong")
	}
	checkMoments(t, "uniform", u, 200000, 0.02, 0.03)
}

func TestNormal(t *testing.T) {
	n := Normal{Mu: 10, Sigma: 2}
	if !almostEqual(n.CDF(10), 0.5, 1e-12) {
		t.Error("Normal CDF(mu) != 0.5")
	}
	if !almostEqual(n.CDF(12)-n.CDF(8), 0.6826894921, 1e-6) {
		t.Error("Normal 1-sigma mass wrong")
	}
	if !almostEqual(n.PDF(10), 1/(2*math.Sqrt(2*math.Pi)), 1e-12) {
		t.Error("Normal PDF(mu) wrong")
	}
	checkMoments(t, "normal", n, 200000, 0.03, 0.05)
	checkCDFMatchesSamples(t, "normal", n, 100000, 0.01)
}

func TestExponential(t *testing.T) {
	e := Exponential{Rate: 0.5}
	if !almostEqual(e.Mean(), 2, 1e-12) || !almostEqual(e.Variance(), 4, 1e-12) {
		t.Error("Exponential moments wrong")
	}
	if !almostEqual(e.CDF(e.Mean()), 1-math.Exp(-1), 1e-12) {
		t.Error("Exponential CDF wrong")
	}
	checkMoments(t, "exponential", e, 300000, 0.03, 0.12)
}

func TestLogNormal(t *testing.T) {
	l := LogNormal{Mu: 0, Sigma: 0.5}
	checkMoments(t, "lognormal", l, 300000, 0.02, 0.03)
	if l.CDF(0) != 0 || l.PDF(-1) != 0 {
		t.Error("LogNormal must vanish at non-positive x")
	}
	if !almostEqual(l.CDF(1), 0.5, 1e-12) {
		t.Error("LogNormal median wrong")
	}
}

func TestGammaMomentsAndCDF(t *testing.T) {
	for _, g := range []Gamma{{Alpha: 0.5, Theta: 2}, {Alpha: 1, Theta: 1}, {Alpha: 4, Theta: 5}, {Alpha: 9, Theta: 0.5}} {
		if err := Validate(g); err != nil {
			t.Fatal(err)
		}
		checkMoments(t, "gamma", g, 200000, 0.05*g.Mean()+0.02, 0.08*g.Variance()+0.05)
		checkCDFMatchesSamples(t, "gamma", g, 80000, 0.012)
	}
	// Known value: P(1, x) = 1 - e^-x.
	g := Gamma{Alpha: 1, Theta: 1}
	for _, x := range []float64{0.1, 1, 3} {
		if !almostEqual(g.CDF(x), 1-math.Exp(-x), 1e-10) {
			t.Errorf("Gamma(1,1).CDF(%g) = %g, want %g", x, g.CDF(x), 1-math.Exp(-x))
		}
	}
}

func TestGammaFromMeanCV(t *testing.T) {
	g := GammaFromMeanCV(20, 0.5)
	if !almostEqual(g.Mean(), 20, 1e-9) {
		t.Errorf("mean = %g, want 20", g.Mean())
	}
	cv := math.Sqrt(g.Variance()) / g.Mean()
	if !almostEqual(cv, 0.5, 1e-9) {
		t.Errorf("cv = %g, want 0.5", cv)
	}
}

func TestBetaMomentsPDFCDF(t *testing.T) {
	b := Beta{Alpha: 2, Beta: 5, Lo: 0, Hi: 1}
	if !almostEqual(b.Mean(), 2.0/7, 1e-12) {
		t.Errorf("Beta mean = %g, want %g", b.Mean(), 2.0/7)
	}
	wantVar := 2.0 * 5 / (49 * 8)
	if !almostEqual(b.Variance(), wantVar, 1e-12) {
		t.Errorf("Beta variance = %g, want %g", b.Variance(), wantVar)
	}
	if !almostEqual(b.Mode(), 0.2, 1e-12) {
		t.Errorf("Beta mode = %g, want 0.2", b.Mode())
	}
	// PDF integrates to 1.
	var sum float64
	n := 20001
	h := 1.0 / float64(n-1)
	for i := 0; i < n; i++ {
		sum += b.PDF(float64(i) * h)
	}
	if !almostEqual(sum*h, 1, 1e-3) {
		t.Errorf("Beta PDF mass = %g, want 1", sum*h)
	}
	checkMoments(t, "beta", b, 200000, 0.005, 0.005)
	checkCDFMatchesSamples(t, "beta", b, 80000, 0.01)
}

func TestBetaScaled(t *testing.T) {
	// Beta(2,5) over [10, 11] — the paper's UL = 1.1 at min = 10.
	b := NewBetaUL(10, 1.1)
	if b.Lo != 10 || !almostEqual(b.Hi, 11, 1e-12) {
		t.Errorf("support [%g,%g], want [10,11]", b.Lo, b.Hi)
	}
	if !almostEqual(b.Mean(), 10+2.0/7, 1e-12) {
		t.Errorf("scaled mean = %g", b.Mean())
	}
	if b.CDF(10) != 0 || b.CDF(11) != 1 {
		t.Error("scaled CDF endpoints wrong")
	}
	if b.PDF(9.99) != 0 || b.PDF(11.01) != 0 {
		t.Error("scaled PDF outside support must be 0")
	}
	// Right-skew: mode below midpoint.
	if b.Mode() >= 10.5 {
		t.Errorf("mode %g not right-skewed", b.Mode())
	}
}

func TestDurationDist(t *testing.T) {
	if _, ok := DurationDist(10, 1.0).(Dirac); !ok {
		t.Error("UL=1 should give Dirac")
	}
	if _, ok := DurationDist(0, 1.5).(Dirac); !ok {
		t.Error("zero minimum should give Dirac")
	}
	if _, ok := DurationDist(10, 1.1).(Beta); !ok {
		t.Error("UL>1 should give Beta")
	}
}

func TestRegIncGammaPProperties(t *testing.T) {
	if RegIncGammaP(2, 0) != 0 {
		t.Error("P(a,0) must be 0")
	}
	if !almostEqual(RegIncGammaP(2, 1e9), 1, 1e-12) {
		t.Error("P(a,inf) must be 1")
	}
	// Monotone in x.
	prev := 0.0
	for x := 0.0; x <= 20; x += 0.25 {
		v := RegIncGammaP(3, x)
		if v < prev-1e-12 {
			t.Fatalf("P(3,x) not monotone at %g", x)
		}
		prev = v
	}
}

func TestRegIncBetaProperties(t *testing.T) {
	if RegIncBeta(2, 5, 0) != 0 || RegIncBeta(2, 5, 1) != 1 {
		t.Error("I_x endpoints wrong")
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.1, 0.3, 0.5, 0.8} {
		if !almostEqual(RegIncBeta(2, 5, x), 1-RegIncBeta(5, 2, 1-x), 1e-10) {
			t.Errorf("symmetry violated at %g", x)
		}
	}
	// I_x(1,1) = x.
	for _, x := range []float64{0.2, 0.7} {
		if !almostEqual(RegIncBeta(1, 1, x), x, 1e-10) {
			t.Errorf("I_x(1,1) = %g, want %g", RegIncBeta(1, 1, x), x)
		}
	}
}

func TestValidate(t *testing.T) {
	for _, d := range []Dist{Dirac{1}, Uniform{0, 1}, Normal{0, 1}, Gamma{2, 3}, Beta{2, 5, 0, 1}, Exponential{1}, LogNormal{0, 1}, NewSpecial()} {
		if err := Validate(d); err != nil {
			t.Errorf("Validate(%T): %v", d, err)
		}
	}
}
