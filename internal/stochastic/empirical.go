package stochastic

import (
	"math"
	"sort"

	"repro/internal/numeric"
)

// Empirical is a distribution estimated from Monte-Carlo samples: the
// 100 000-realization ground truth the paper validates the analytic
// makespan evaluation against.
type Empirical struct {
	sorted []float64
}

// NewEmpirical builds an empirical distribution from samples (copied and
// sorted).
func NewEmpirical(samples []float64) *Empirical {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &Empirical{sorted: s}
}

// Len returns the number of samples.
func (e *Empirical) Len() int { return len(e.sorted) }

// Sorted returns the sorted sample slice (not a copy; do not mutate).
func (e *Empirical) Sorted() []float64 { return e.sorted }

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 { return numeric.Mean(e.sorted) }

// Variance returns the population sample variance.
func (e *Empirical) Variance() float64 { return numeric.Variance(e.sorted) }

// StdDev returns the sample standard deviation.
func (e *Empirical) StdDev() float64 { return numeric.StdDev(e.sorted) }

// Min returns the smallest sample (0 if empty).
func (e *Empirical) Min() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[0]
}

// Max returns the largest sample (0 if empty).
func (e *Empirical) Max() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[len(e.sorted)-1]
}

// CDFAt returns the empirical CDF: the fraction of samples <= x.
func (e *Empirical) CDFAt(x float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	return float64(sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))) / float64(n)
}

// CDFOnGrid evaluates the empirical CDF at each point of xs (which need
// not be sorted).
func (e *Empirical) CDFOnGrid(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = e.CDFAt(x)
	}
	return out
}

// Quantile returns the p-quantile by the nearest-rank method.
func (e *Empirical) Quantile(p float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	p = numeric.Clamp(p, 0, 1)
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return e.sorted[idx]
}

// ToNumeric converts the empirical distribution into a grid-PDF variable
// by histogramming into gridSize bins and smoothing with a short moving
// average, mirroring how the paper plots "experimental" densities.
func (e *Empirical) ToNumeric(gridSize int) *Numeric {
	if gridSize <= 0 {
		gridSize = DefaultGridSize
	}
	n := len(e.sorted)
	if n == 0 {
		return NewPoint(0)
	}
	lo, hi := e.Min(), e.Max()
	if hi <= lo {
		return NewPoint(lo)
	}
	counts := make([]float64, gridSize)
	w := (hi - lo) / float64(gridSize-1)
	for _, x := range e.sorted {
		// Bins are centred on the grid points so the histogram carries
		// no half-bin mean bias.
		b := int((x-lo)/w + 0.5)
		if b >= gridSize {
			b = gridSize - 1
		}
		counts[b]++
	}
	smoothed := numeric.MovingAverage(counts, 1)
	rv := &Numeric{lo: lo, hi: hi, pdf: smoothed}
	rv.clampNormalize()
	return rv
}

// LatenessAboveMean returns E[X | X > mean] − mean, the average lateness
// metric computed directly on samples.
func (e *Empirical) LatenessAboveMean() float64 {
	mu := e.Mean()
	var sum float64
	var count int
	for _, x := range e.sorted {
		if x > mu {
			sum += x
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum/float64(count) - mu
}

// ProbWithin returns the fraction of samples in [lo, hi].
func (e *Empirical) ProbWithin(lo, hi float64) float64 {
	if len(e.sorted) == 0 || hi < lo {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, lo)
	j := sort.SearchFloat64s(e.sorted, math.Nextafter(hi, math.Inf(1)))
	return float64(j-i) / float64(len(e.sorted))
}
