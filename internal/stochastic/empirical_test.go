package stochastic

import (
	"math"
	"math/rand"
	"testing"
)

func TestEmpiricalBasics(t *testing.T) {
	e := NewEmpirical([]float64{3, 1, 2, 4})
	if e.Len() != 4 || e.Min() != 1 || e.Max() != 4 {
		t.Error("basic stats wrong")
	}
	if !almostEqual(e.Mean(), 2.5, 1e-12) {
		t.Errorf("mean = %g, want 2.5", e.Mean())
	}
	if !almostEqual(e.Variance(), 1.25, 1e-12) {
		t.Errorf("variance = %g, want 1.25", e.Variance())
	}
}

func TestEmpiricalCDF(t *testing.T) {
	e := NewEmpirical([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.5}, {4, 1}, {5, 1},
	}
	for _, c := range cases {
		if got := e.CDFAt(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("CDF(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestEmpiricalQuantile(t *testing.T) {
	e := NewEmpirical([]float64{10, 20, 30, 40, 50})
	if e.Quantile(0.5) != 30 {
		t.Errorf("median = %g, want 30", e.Quantile(0.5))
	}
	if e.Quantile(0) != 10 || e.Quantile(1) != 50 {
		t.Error("extreme quantiles wrong")
	}
}

func TestEmpiricalProbWithin(t *testing.T) {
	e := NewEmpirical([]float64{1, 2, 3, 4, 5})
	if got := e.ProbWithin(2, 4); !almostEqual(got, 0.6, 1e-12) {
		t.Errorf("ProbWithin(2,4) = %g, want 0.6", got)
	}
	if e.ProbWithin(6, 7) != 0 || e.ProbWithin(4, 2) != 0 {
		t.Error("out-of-range / inverted interval should be 0")
	}
}

func TestEmpiricalLateness(t *testing.T) {
	// Samples {0, 10}: mean 5; late samples {10}; lateness = 5.
	e := NewEmpirical([]float64{0, 10})
	if !almostEqual(e.LatenessAboveMean(), 5, 1e-12) {
		t.Errorf("lateness = %g, want 5", e.LatenessAboveMean())
	}
	// All equal: no late realizations.
	if NewEmpirical([]float64{3, 3, 3}).LatenessAboveMean() != 0 {
		t.Error("constant samples should have 0 lateness")
	}
}

func TestEmpiricalToNumericRecoversMoments(t *testing.T) {
	b := NewBetaUL(10, 1.5)
	rng := rand.New(rand.NewSource(11))
	samples := make([]float64, 100000)
	for i := range samples {
		samples[i] = b.Sample(rng)
	}
	e := NewEmpirical(samples)
	rv := e.ToNumeric(64)
	if !almostEqual(rv.Mean(), b.Mean(), 0.03) {
		t.Errorf("histogram mean = %g, want %g", rv.Mean(), b.Mean())
	}
	if !almostEqual(rv.StdDev(), math.Sqrt(b.Variance()), 0.05) {
		t.Errorf("histogram stddev = %g, want %g", rv.StdDev(), math.Sqrt(b.Variance()))
	}
}

func TestEmpiricalDegenerate(t *testing.T) {
	if !NewEmpirical([]float64{5, 5, 5}).ToNumeric(64).IsPoint() {
		t.Error("constant samples should convert to a point")
	}
	if NewEmpirical(nil).ToNumeric(64).Lo() != 0 {
		t.Error("empty empirical should convert to point 0")
	}
	if NewEmpirical(nil).CDFAt(1) != 0 {
		t.Error("empty CDF should be 0")
	}
}
