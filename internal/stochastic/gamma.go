package stochastic

import (
	"math"
	"math/rand"
)

// Gamma is the gamma distribution with shape Alpha (k) and scale Theta,
// mean Alpha·Theta. The experimental setup of the paper draws the
// deterministic task and communication weights from a gamma distribution
// parameterized by a mean and a coefficient of variation (Ali et al.),
// see FromMeanCV.
type Gamma struct {
	Alpha float64 // shape, > 0
	Theta float64 // scale, > 0
}

// GammaFromMeanCV builds the gamma distribution with the given mean and
// coefficient of variation V (= σ/µ), the parameterization used by the
// CV-based heterogeneity model: Alpha = 1/V², Theta = mean·V².
func GammaFromMeanCV(mean, v float64) Gamma {
	alpha := 1 / (v * v)
	return Gamma{Alpha: alpha, Theta: mean / alpha}
}

// Mean returns Alpha·Theta.
func (g Gamma) Mean() float64 { return g.Alpha * g.Theta }

// Variance returns Alpha·Theta².
func (g Gamma) Variance() float64 { return g.Alpha * g.Theta * g.Theta }

// PDF returns the gamma density.
func (g Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 { //reprovet:allow floateq density special case at the exact support endpoint
		if g.Alpha < 1 {
			return math.Inf(1)
		}
		if g.Alpha == 1 { //reprovet:allow floateq Alpha is a configured parameter compared to its exact special-case value
			return 1 / g.Theta
		}
		return 0
	}
	lg, _ := math.Lgamma(g.Alpha)
	return math.Exp((g.Alpha-1)*math.Log(x) - x/g.Theta - lg - g.Alpha*math.Log(g.Theta))
}

// CDF returns the regularized lower incomplete gamma P(Alpha, x/Theta).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegIncGammaP(g.Alpha, x/g.Theta)
}

// Support truncates at the ~1e-12 upper quantile estimated from the
// mean and standard deviation (mean + 12σ is ample for the shapes used
// here).
func (g Gamma) Support() (float64, float64) {
	return 0, g.Mean() + 12*math.Sqrt(g.Variance())
}

// Sample draws a gamma variate using the Marsaglia–Tsang squeeze method
// (with the alpha < 1 boost).
func (g Gamma) Sample(rng *rand.Rand) float64 {
	return sampleGamma(rng, g.Alpha) * g.Theta
}

func sampleGamma(rng *rand.Rand, alpha float64) float64 {
	if alpha < 1 {
		// Boost: G(a) = G(a+1) * U^(1/a).
		u := rng.Float64()
		for u == 0 { //reprovet:allow floateq rejection of the exact zero the boost step cannot take log of
			u = rng.Float64()
		}
		return sampleGamma(rng, alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
