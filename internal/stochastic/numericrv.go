package stochastic

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// DefaultGridSize is the number of PDF samples used to represent a
// numeric random variable. The paper found 64 points with cubic-spline
// interpolation "largely sufficient".
const DefaultGridSize = 64

// DefaultMaxWorkGrid caps the intermediate grid used during convolution
// so that summing a very wide density with a very narrow one stays
// bounded. It is the reference value of EvalAccuracy.WorkGrid; lower
// caps trade accuracy on wide×narrow sums for speed.
const DefaultMaxWorkGrid = 8192

// Numeric is a random variable represented numerically by its density
// sampled on a uniform grid over [lo, hi] (endpoints included). It
// supports the two operators the makespan computation needs — the sum of
// independent variables (convolution of densities, via FFT) and the
// maximum of independent variables (product of CDFs) — plus moments,
// differential entropy, CDF evaluation and quantiles.
//
// A degenerate (Dirac) variable is represented exactly with the point
// flag rather than as a spike, so sums degrade to shifts and maxima to
// truncations.
type Numeric struct {
	lo, hi float64
	pdf    []float64
	point  bool
}

// NewPoint returns the degenerate variable concentrated at v.
func NewPoint(v float64) *Numeric {
	return &Numeric{lo: v, hi: v, point: true}
}

// FromPDF builds a numeric variable from density samples on a uniform
// grid over [lo, hi]. The density is clamped at 0 and renormalized.
func FromPDF(lo, hi float64, pdf []float64) (*Numeric, error) {
	if hi < lo {
		return nil, fmt.Errorf("stochastic: inverted support [%g,%g]", lo, hi)
	}
	if hi == lo { //reprovet:allow floateq exactly-degenerate support collapses to a point mass; any wider support discretizes
		return NewPoint(lo), nil
	}
	if len(pdf) < 2 {
		return nil, fmt.Errorf("stochastic: need at least 2 density samples, got %d", len(pdf))
	}
	rv := &Numeric{lo: lo, hi: hi, pdf: append([]float64(nil), pdf...)}
	rv.clampNormalize()
	return rv, nil
}

// FromDist discretizes d on an n-point grid over its support. Dirac
// distributions become exact point variables. n <= 0 selects
// DefaultGridSize.
func FromDist(d Dist, n int) *Numeric {
	if n <= 0 {
		n = DefaultGridSize
	}
	lo, hi := d.Support()
	if hi <= lo {
		return NewPoint(lo)
	}
	if dd, ok := d.(Dirac); ok {
		return NewPoint(dd.Value)
	}
	xs := numeric.Linspace(lo, hi, n)
	pdf := make([]float64, n)
	for i, x := range xs {
		v := d.PDF(x)
		if math.IsInf(v, 1) || math.IsNaN(v) {
			v = 0 // endpoint singularities carry no mass on a grid
		}
		pdf[i] = v
	}
	rv := &Numeric{lo: lo, hi: hi, pdf: pdf}
	rv.clampNormalize()
	return rv
}

// Lo returns the lower end of the support.
func (rv *Numeric) Lo() float64 { return rv.lo }

// Hi returns the upper end of the support.
func (rv *Numeric) Hi() float64 { return rv.hi }

// IsPoint reports whether the variable is degenerate.
func (rv *Numeric) IsPoint() bool { return rv.point }

// GridSize returns the number of density samples (0 for a point).
func (rv *Numeric) GridSize() int { return len(rv.pdf) }

// Step returns the grid spacing (0 for a point).
func (rv *Numeric) Step() float64 {
	if rv.point || len(rv.pdf) < 2 {
		return 0
	}
	return (rv.hi - rv.lo) / float64(len(rv.pdf)-1)
}

// PDFGrid returns a copy of the density samples.
func (rv *Numeric) PDFGrid() []float64 { return append([]float64(nil), rv.pdf...) }

// XGrid returns the abscissa grid matching PDFGrid.
func (rv *Numeric) XGrid() []float64 {
	if rv.point {
		return []float64{rv.lo}
	}
	return numeric.Linspace(rv.lo, rv.hi, len(rv.pdf))
}

// Clone returns a deep copy.
func (rv *Numeric) Clone() *Numeric {
	c := *rv
	c.pdf = append([]float64(nil), rv.pdf...)
	return &c
}

// Shift returns the variable translated by c.
func (rv *Numeric) Shift(c float64) *Numeric {
	out := rv.Clone()
	out.lo += c
	out.hi += c
	return out
}

func (rv *Numeric) clampNormalize() {
	for i, v := range rv.pdf {
		if v < 0 || math.IsNaN(v) {
			rv.pdf[i] = 0
		}
	}
	mass := numeric.TrapezoidUniform(rv.pdf, rv.Step())
	if mass <= 0 {
		// No usable mass: collapse to the midpoint.
		mid := (rv.lo + rv.hi) / 2
		rv.lo, rv.hi, rv.pdf, rv.point = mid, mid, nil, true
		return
	}
	inv := 1 / mass
	for i := range rv.pdf {
		rv.pdf[i] *= inv
	}
}

// PDFAt evaluates the density at x by cubic-spline interpolation
// (0 outside the support, 0 for point variables).
func (rv *Numeric) PDFAt(x float64) float64 {
	if rv.point || x < rv.lo || x > rv.hi {
		return 0
	}
	sp, err := numeric.NewSpline(rv.XGrid(), rv.pdf)
	if err != nil {
		return 0
	}
	sp.SetExtrapolateZero(true)
	v := sp.At(x)
	if v < 0 {
		return 0
	}
	return v
}

// CDFAt evaluates the CDF at x by linear interpolation of the cumulative
// trapezoidal integral of the density.
func (rv *Numeric) CDFAt(x float64) float64 {
	if rv.point {
		if x < rv.lo {
			return 0
		}
		return 1
	}
	if x <= rv.lo {
		return 0
	}
	if x >= rv.hi {
		return 1
	}
	h := rv.Step()
	cum := numeric.CumTrapezoid(rv.pdf, h)
	pos := (x - rv.lo) / h
	i := int(pos)
	if i >= len(cum)-1 {
		return numeric.Clamp(cum[len(cum)-1], 0, 1)
	}
	frac := pos - float64(i)
	v := cum[i] + frac*(cum[i+1]-cum[i])
	return numeric.Clamp(v, 0, 1)
}

// CDFOnGrid evaluates the CDF at each point of xs.
func (rv *Numeric) CDFOnGrid(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if rv.point {
		for i, x := range xs {
			if x >= rv.lo {
				out[i] = 1
			}
		}
		return out
	}
	h := rv.Step()
	cum := numeric.CumTrapezoid(rv.pdf, h)
	total := cum[len(cum)-1]
	for i, x := range xs {
		switch {
		case x <= rv.lo:
			out[i] = 0
		case x >= rv.hi:
			out[i] = 1
		default:
			pos := (x - rv.lo) / h
			j := int(pos)
			if j >= len(cum)-1 {
				out[i] = 1
				continue
			}
			frac := pos - float64(j)
			v := cum[j] + frac*(cum[j+1]-cum[j])
			if total > 0 {
				v /= total
			}
			out[i] = numeric.Clamp(v, 0, 1)
		}
	}
	return out
}

// Mean returns E[X] via Simpson integration of x·f(x), normalized by
// the Simpson mass of f so that grid-cell spikes (atoms folded into a
// cell by MaxWith) do not bias the moments.
func (rv *Numeric) Mean() float64 {
	if rv.point {
		return rv.lo
	}
	xs := rv.XGrid()
	y := make([]float64, len(xs))
	for i := range xs {
		y[i] = xs[i] * rv.pdf[i]
	}
	h := rv.Step()
	mass := numeric.SimpsonUniform(rv.pdf, h)
	if mass <= 0 {
		return (rv.lo + rv.hi) / 2
	}
	return numeric.SimpsonUniform(y, h) / mass
}

// Variance returns Var[X] = E[(X−E[X])²], with the same Simpson-mass
// normalization as Mean.
func (rv *Numeric) Variance() float64 {
	if rv.point {
		return 0
	}
	mu := rv.Mean()
	xs := rv.XGrid()
	y := make([]float64, len(xs))
	for i := range xs {
		d := xs[i] - mu
		y[i] = d * d * rv.pdf[i]
	}
	h := rv.Step()
	mass := numeric.SimpsonUniform(rv.pdf, h)
	if mass <= 0 {
		return 0
	}
	v := numeric.SimpsonUniform(y, h) / mass
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the standard deviation.
func (rv *Numeric) StdDev() float64 { return math.Sqrt(rv.Variance()) }

// Entropy returns the differential entropy h(X) = −∫ f ln f, with the
// convention 0·ln 0 = 0. A point variable has entropy −Inf. Note the
// paper prints the formula without the minus sign; we use the standard
// definition so that smaller entropy means a narrower (more robust)
// distribution, matching how the paper ranks schedules.
func (rv *Numeric) Entropy() float64 {
	if rv.point {
		return math.Inf(-1)
	}
	y := make([]float64, len(rv.pdf))
	for i, f := range rv.pdf {
		if f > 0 {
			y[i] = -f * math.Log(f)
		}
	}
	return numeric.SimpsonUniform(y, rv.Step())
}

// Quantile returns the smallest x with CDF(x) >= p (p clamped to
// [0,1]).
func (rv *Numeric) Quantile(p float64) float64 {
	p = numeric.Clamp(p, 0, 1)
	if rv.point {
		return rv.lo
	}
	h := rv.Step()
	cum := numeric.CumTrapezoid(rv.pdf, h)
	total := cum[len(cum)-1]
	if total <= 0 {
		return rv.lo
	}
	target := p * total
	for i := 1; i < len(cum); i++ {
		if cum[i] >= target {
			span := cum[i] - cum[i-1]
			frac := 0.0
			if span > 0 {
				frac = (target - cum[i-1]) / span
			}
			return rv.lo + (float64(i-1)+frac)*h
		}
	}
	return rv.hi
}

// Resample returns the variable re-gridded to n points via cubic
// splines.
func (rv *Numeric) Resample(n int) *Numeric {
	if rv.point {
		return rv.Clone()
	}
	if n <= 1 {
		n = 2
	}
	sp, err := numeric.NewSpline(rv.XGrid(), rv.pdf)
	if err != nil {
		return rv.Clone()
	}
	sp.SetExtrapolateZero(true)
	out := &Numeric{lo: rv.lo, hi: rv.hi, pdf: sp.Resample(rv.lo, rv.hi, n)}
	out.clampNormalize()
	return out
}

// resampleStep resamples rv to the given step size, returning the grid
// values; guarantees at least 2 points.
func (rv *Numeric) resampleStep(h float64) []float64 {
	n := int(math.Round((rv.hi-rv.lo)/h)) + 1
	if n < 2 {
		n = 2
	}
	sp, err := numeric.NewSpline(rv.XGrid(), rv.pdf)
	if err != nil {
		return []float64{0, 0}
	}
	sp.SetExtrapolateZero(true)
	out := sp.Resample(rv.lo, rv.hi, n)
	for i, v := range out {
		if v < 0 {
			out[i] = 0
		}
	}
	return out
}

// Add returns the distribution of X+Y assuming independence, by
// convolving the densities (FFT / overlap-add) and resampling the result
// to gridSize points. gridSize <= 0 selects DefaultGridSize. The
// intermediate grid uses the reference work-grid cap; AddAcc exposes
// the cap as part of an EvalAccuracy.
func (rv *Numeric) Add(other *Numeric, gridSize int) *Numeric {
	return rv.AddAcc(other, EvalAccuracy{GridSize: gridSize})
}

// AddAcc is Add under an explicit accuracy contract: the result density
// has acc.GridSize samples and the intermediate convolution grid is
// capped at acc.WorkGrid points. AddAcc with a reference accuracy is
// bit-identical to Add.
func (rv *Numeric) AddAcc(other *Numeric, acc EvalAccuracy) *Numeric {
	acc = acc.Canon()
	gridSize := acc.GridSize
	if rv.point {
		return other.Shift(rv.lo)
	}
	if other.point {
		return rv.Shift(other.lo)
	}
	lo := rv.lo + other.lo
	hi := rv.hi + other.hi
	h := math.Min(rv.Step(), other.Step())
	if w, wcap := hi-lo, float64(acc.WorkGrid); w/h > wcap {
		h = w / wcap
	}
	pa := rv.resampleStep(h)
	pb := other.resampleStep(h)
	conv := numeric.Convolve(pa, pb)
	for i := range conv {
		conv[i] *= h
		if conv[i] < 0 {
			conv[i] = 0
		}
	}
	// The convolution grid spans [lo, lo+(len-1)h]; resample onto the
	// requested grid over the exact support.
	convHi := lo + float64(len(conv)-1)*h
	xs := numeric.Linspace(lo, convHi, len(conv))
	sp, err := numeric.NewSpline(xs, conv)
	if err != nil {
		return NewPoint((lo + hi) / 2)
	}
	sp.SetExtrapolateZero(true)
	out := &Numeric{lo: lo, hi: hi, pdf: sp.Resample(lo, hi, gridSize)}
	out.clampNormalize()
	return out
}

// AddConst returns X + c.
func (rv *Numeric) AddConst(c float64) *Numeric { return rv.Shift(c) }

// MaxAcc is MaxWith under an explicit accuracy contract. The maximum
// never builds an intermediate grid, so only acc.GridSize matters;
// MaxAcc with a reference accuracy is bit-identical to MaxWith.
func (rv *Numeric) MaxAcc(other *Numeric, acc EvalAccuracy) *Numeric {
	return rv.MaxWith(other, acc.Canon().GridSize)
}

// MaxWith returns the distribution of max(X, Y) assuming independence:
// F(x) = F_X(x)·F_Y(x), densified by f = f_X·F_Y + F_X·f_Y on a
// gridSize-point grid. gridSize <= 0 selects DefaultGridSize.
func (rv *Numeric) MaxWith(other *Numeric, gridSize int) *Numeric {
	if gridSize <= 0 {
		gridSize = DefaultGridSize
	}
	a, b := rv, other
	// Point cases.
	if a.point && b.point {
		return NewPoint(math.Max(a.lo, b.lo))
	}
	if a.point {
		a, b = b, a
	}
	if b.point {
		c := b.lo
		switch {
		case c <= a.lo:
			return a.Clone()
		case c >= a.hi:
			return NewPoint(c)
		default:
			// Truncate below c; the atom P(X<=c) is folded into the
			// first grid cell (a documented approximation — in the
			// scheduling pipeline constants only arise at 0, below any
			// duration support).
			atom := a.CDFAt(c)
			n := gridSize
			xs := numeric.Linspace(c, a.hi, n)
			pdf := make([]float64, n)
			for i, x := range xs {
				pdf[i] = a.PDFAt(x)
			}
			h := (a.hi - c) / float64(n-1)
			if h > 0 && atom > 0 {
				pdf[0] += 2 * atom / h // triangle of mass `atom` at the left edge
			}
			out := &Numeric{lo: c, hi: a.hi, pdf: pdf}
			out.clampNormalize()
			return out
		}
	}
	// Disjoint supports: one variable dominates.
	if a.hi <= b.lo {
		return b.Clone()
	}
	if b.hi <= a.lo {
		return a.Clone()
	}
	lo := math.Max(a.lo, b.lo)
	hi := math.Max(a.hi, b.hi)
	xs := numeric.Linspace(lo, hi, gridSize)
	fa := a.pdfOnGrid(xs)
	fb := b.pdfOnGrid(xs)
	Fa := a.CDFOnGrid(xs)
	Fb := b.CDFOnGrid(xs)
	pdf := make([]float64, gridSize)
	for i := range xs {
		pdf[i] = fa[i]*Fb[i] + Fa[i]*fb[i]
	}
	out := &Numeric{lo: lo, hi: hi, pdf: pdf}
	out.clampNormalize()
	return out
}

// PDFOnGrid evaluates the density at each point of xs with a single
// spline construction (0 outside the support).
func (rv *Numeric) PDFOnGrid(xs []float64) []float64 { return rv.pdfOnGrid(xs) }

func (rv *Numeric) pdfOnGrid(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if rv.point {
		return out
	}
	sp, err := numeric.NewSpline(rv.XGrid(), rv.pdf)
	if err != nil {
		return out
	}
	sp.SetExtrapolateZero(true)
	for i, x := range xs {
		if x < rv.lo || x > rv.hi {
			continue
		}
		v := sp.At(x)
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

// MaxConst returns max(X, c).
func (rv *Numeric) MaxConst(c float64, gridSize int) *Numeric {
	return rv.MaxWith(NewPoint(c), gridSize)
}
