package stochastic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromDistUniformMoments(t *testing.T) {
	rv := FromDist(Uniform{Lo: 0, Hi: 4}, 64)
	if !almostEqual(rv.Mean(), 2, 0.01) {
		t.Errorf("mean = %g, want 2", rv.Mean())
	}
	if !almostEqual(rv.Variance(), 16.0/12, 0.02) {
		t.Errorf("variance = %g, want %g", rv.Variance(), 16.0/12)
	}
}

func TestFromDistBetaMoments(t *testing.T) {
	b := NewBetaUL(10, 1.5) // Beta(2,5) over [10,15]
	rv := FromDist(b, 64)
	if !almostEqual(rv.Mean(), b.Mean(), 0.02) {
		t.Errorf("mean = %g, want %g", rv.Mean(), b.Mean())
	}
	if !almostEqual(rv.StdDev(), math.Sqrt(b.Variance()), 0.02) {
		t.Errorf("stddev = %g, want %g", rv.StdDev(), math.Sqrt(b.Variance()))
	}
}

func TestFromDistDiracIsPoint(t *testing.T) {
	rv := FromDist(Dirac{Value: 7}, 64)
	if !rv.IsPoint() || rv.Lo() != 7 {
		t.Error("Dirac should discretize to a point variable")
	}
	if rv.Mean() != 7 || rv.Variance() != 0 {
		t.Error("point moments wrong")
	}
	if rv.CDFAt(6.9) != 0 || rv.CDFAt(7) != 1 {
		t.Error("point CDF wrong")
	}
	if !math.IsInf(rv.Entropy(), -1) {
		t.Error("point entropy should be -Inf")
	}
}

func TestNumericCDFMonotone(t *testing.T) {
	rv := FromDist(NewBetaUL(5, 2), 64)
	prev := -1.0
	for _, x := range rv.XGrid() {
		v := rv.CDFAt(x)
		if v < prev-1e-12 {
			t.Fatalf("CDF not monotone at %g", x)
		}
		prev = v
	}
	if !almostEqual(rv.CDFAt(rv.Hi()), 1, 1e-9) {
		t.Errorf("CDF at hi = %g, want 1", rv.CDFAt(rv.Hi()))
	}
}

func TestAddOfUniformsIsTriangle(t *testing.T) {
	a := FromDist(Uniform{0, 1}, 64)
	b := FromDist(Uniform{0, 1}, 64)
	sum := a.Add(b, 128)
	if !almostEqual(sum.Lo(), 0, 1e-9) || !almostEqual(sum.Hi(), 2, 1e-9) {
		t.Errorf("sum support [%g,%g], want [0,2]", sum.Lo(), sum.Hi())
	}
	if !almostEqual(sum.Mean(), 1, 0.01) {
		t.Errorf("sum mean = %g, want 1", sum.Mean())
	}
	if !almostEqual(sum.Variance(), 2.0/12, 0.01) {
		t.Errorf("sum variance = %g, want %g", sum.Variance(), 2.0/12)
	}
	// Triangle density peaks at 1 with height ~1.
	if peak := sum.PDFAt(1); !almostEqual(peak, 1, 0.08) {
		t.Errorf("triangle peak = %g, want ~1", peak)
	}
}

func TestAddMeansAndVariancesCompose(t *testing.T) {
	// E[X+Y] = E[X]+E[Y]; Var[X+Y] = Var[X]+Var[Y] for independent RVs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mkBeta := func() Beta {
			min := 1 + 10*rng.Float64()
			ul := 1.05 + rng.Float64()
			return NewBetaUL(min, ul)
		}
		da, db := mkBeta(), mkBeta()
		a, b := FromDist(da, 64), FromDist(db, 64)
		sum := a.Add(b, 64)
		wantMean := da.Mean() + db.Mean()
		wantVar := da.Variance() + db.Variance()
		return almostEqual(sum.Mean(), wantMean, 0.02*wantMean) &&
			almostEqual(sum.Variance(), wantVar, 0.1*wantVar+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAddWithPointIsShift(t *testing.T) {
	a := FromDist(Uniform{2, 3}, 64)
	p := NewPoint(5)
	sum := a.Add(p, 64)
	if !almostEqual(sum.Lo(), 7, 1e-9) || !almostEqual(sum.Hi(), 8, 1e-9) {
		t.Errorf("shift support [%g,%g], want [7,8]", sum.Lo(), sum.Hi())
	}
	sum2 := p.Add(a, 64)
	if !almostEqual(sum2.Mean(), sum.Mean(), 1e-9) {
		t.Error("point+rv and rv+point disagree")
	}
	pp := NewPoint(1).Add(NewPoint(2), 64)
	if !pp.IsPoint() || pp.Lo() != 3 {
		t.Error("point+point should be a point at the sum")
	}
}

func TestMaxWithDominatedSupport(t *testing.T) {
	a := FromDist(Uniform{0, 1}, 64)
	b := FromDist(Uniform{5, 6}, 64)
	m := a.MaxWith(b, 64)
	if !almostEqual(m.Mean(), 5.5, 0.02) {
		t.Errorf("dominated max mean = %g, want 5.5", m.Mean())
	}
	m2 := b.MaxWith(a, 64)
	if !almostEqual(m2.Mean(), 5.5, 0.02) {
		t.Errorf("dominated max (reversed) mean = %g, want 5.5", m2.Mean())
	}
}

func TestMaxOfTwoUniforms(t *testing.T) {
	// max of two U(0,1): CDF x², mean 2/3, var 1/18.
	a := FromDist(Uniform{0, 1}, 128)
	b := FromDist(Uniform{0, 1}, 128)
	m := a.MaxWith(b, 128)
	if !almostEqual(m.Mean(), 2.0/3, 0.01) {
		t.Errorf("max mean = %g, want 2/3", m.Mean())
	}
	if !almostEqual(m.Variance(), 1.0/18, 0.01) {
		t.Errorf("max variance = %g, want 1/18", m.Variance())
	}
	if !almostEqual(m.CDFAt(0.5), 0.25, 0.02) {
		t.Errorf("max CDF(0.5) = %g, want 0.25", m.CDFAt(0.5))
	}
}

func TestMaxAgainstMonteCarlo(t *testing.T) {
	da := NewBetaUL(10, 1.4)
	db := NewBetaUL(11, 1.2)
	m := FromDist(da, 64).MaxWith(FromDist(db, 64), 64)
	rng := rand.New(rand.NewSource(17))
	n := 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := math.Max(da.Sample(rng), db.Sample(rng))
		sum += x
		sum2 += x * x
	}
	mcMean := sum / float64(n)
	mcVar := sum2/float64(n) - mcMean*mcMean
	if !almostEqual(m.Mean(), mcMean, 0.02) {
		t.Errorf("max mean = %g, MC %g", m.Mean(), mcMean)
	}
	if !almostEqual(m.Variance(), mcVar, 0.05*mcVar+0.005) {
		t.Errorf("max variance = %g, MC %g", m.Variance(), mcVar)
	}
}

func TestMaxWithPointCases(t *testing.T) {
	a := FromDist(Uniform{2, 4}, 64)
	// Constant below support: identity.
	m := a.MaxConst(1, 64)
	if !almostEqual(m.Mean(), 3, 0.02) {
		t.Errorf("max(X, low) mean = %g, want 3", m.Mean())
	}
	// Constant above support: the constant.
	m = a.MaxConst(9, 64)
	if !m.IsPoint() || m.Lo() != 9 {
		t.Error("max(X, high) should be the point")
	}
	// Constant inside support: truncated with atom; mean between.
	m = a.MaxConst(3, 64)
	if m.Mean() < 3 || m.Mean() > 3.6 {
		t.Errorf("max(X, mid) mean = %g, want in (3, 3.6)", m.Mean())
	}
	// Two points.
	m = NewPoint(2).MaxWith(NewPoint(5), 64)
	if !m.IsPoint() || m.Lo() != 5 {
		t.Error("max of points should be the larger point")
	}
}

func TestEntropyOrdering(t *testing.T) {
	// A wider distribution has larger differential entropy.
	narrow := FromDist(Uniform{0, 1}, 64)
	wide := FromDist(Uniform{0, 10}, 64)
	if narrow.Entropy() >= wide.Entropy() {
		t.Errorf("entropy ordering violated: narrow %g >= wide %g", narrow.Entropy(), wide.Entropy())
	}
	// Uniform(0,1) has differential entropy 0.
	if !almostEqual(narrow.Entropy(), 0, 0.05) {
		t.Errorf("U(0,1) entropy = %g, want ~0", narrow.Entropy())
	}
	// N(0,1) entropy = 0.5 ln(2πe) ≈ 1.4189.
	gauss := FromDist(Normal{0, 1}, 256)
	if !almostEqual(gauss.Entropy(), 0.5*math.Log(2*math.Pi*math.E), 0.02) {
		t.Errorf("N(0,1) entropy = %g, want %g", gauss.Entropy(), 0.5*math.Log(2*math.Pi*math.E))
	}
}

func TestQuantile(t *testing.T) {
	rv := FromDist(Uniform{0, 10}, 128)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if got := rv.Quantile(p); !almostEqual(got, 10*p, 0.15) {
			t.Errorf("quantile(%g) = %g, want %g", p, got, 10*p)
		}
	}
	if NewPoint(4).Quantile(0.3) != 4 {
		t.Error("point quantile should be the point")
	}
}

func TestResample(t *testing.T) {
	rv := FromDist(NewBetaUL(10, 1.5), 64)
	re := rv.Resample(128)
	if re.GridSize() != 128 {
		t.Fatalf("resampled grid = %d, want 128", re.GridSize())
	}
	if !almostEqual(re.Mean(), rv.Mean(), 0.01) {
		t.Errorf("resample changed mean: %g vs %g", re.Mean(), rv.Mean())
	}
	if !almostEqual(re.StdDev(), rv.StdDev(), 0.01) {
		t.Errorf("resample changed stddev: %g vs %g", re.StdDev(), rv.StdDev())
	}
}

func TestFromPDFValidation(t *testing.T) {
	if _, err := FromPDF(1, 0, []float64{1, 1}); err == nil {
		t.Error("accepted inverted support")
	}
	if _, err := FromPDF(0, 1, []float64{1}); err == nil {
		t.Error("accepted single sample")
	}
	rv, err := FromPDF(0, 0, nil)
	if err != nil || !rv.IsPoint() {
		t.Error("zero-width support should be a point")
	}
	// Negative densities are clamped and the result normalized.
	rv, err = FromPDF(0, 1, []float64{-5, 1, 1, -5})
	if err != nil {
		t.Fatal(err)
	}
	var mass float64
	grid := rv.PDFGrid()
	h := rv.Step()
	for i, v := range grid {
		if v < 0 {
			t.Error("negative density survived clamp")
		}
		if i > 0 {
			mass += h * (grid[i-1] + grid[i]) / 2
		}
	}
	if !almostEqual(mass, 1, 1e-9) {
		t.Errorf("normalized mass = %g, want 1", mass)
	}
}

func TestAddConstAndShift(t *testing.T) {
	rv := FromDist(Uniform{0, 2}, 64)
	sh := rv.AddConst(10)
	if !almostEqual(sh.Mean(), rv.Mean()+10, 1e-9) {
		t.Error("AddConst mean wrong")
	}
	if !almostEqual(sh.Variance(), rv.Variance(), 1e-9) {
		t.Error("AddConst must not change variance")
	}
}

// Property: repeated self-sums approach normality (CLT — the Fig. 8
// machinery in miniature): skew of the k-fold sum shrinks.
func TestCLTSelfSum(t *testing.T) {
	b := FromDist(NewBetaUL(1, 3), 64) // quite skewed
	sum := b.Clone()
	for i := 0; i < 9; i++ {
		sum = sum.Add(b, 64)
	}
	// Compare CDF of 10-fold sum with matched normal at several points.
	n := Normal{Mu: sum.Mean(), Sigma: sum.StdDev()}
	for _, frac := range []float64{0.3, 0.5, 0.7} {
		x := sum.Lo() + frac*(sum.Hi()-sum.Lo())
		if d := math.Abs(sum.CDFAt(x) - n.CDF(x)); d > 0.03 {
			t.Errorf("10-fold sum CDF deviates from normal by %g at %g", d, x)
		}
	}
}
