package stochastic

import (
	"math"

	"repro/internal/numeric"
)

// Ops is a workspace for the two hot Numeric operators of the makespan
// evaluation: Add (convolution) and Max (CDF product). The methods
// produce results bit-for-bit identical to Numeric.Add and
// Numeric.MaxWith — they mirror the same floating-point operations in
// the same order — but draw every intermediate grid from reusable
// scratch and every result density from a free list fed by Recycle, so
// a steady-state evaluation loop performs no per-operation allocations.
//
// An Ops value is not safe for concurrent use; evaluation pipelines
// keep one per worker. Input variables are never mutated, so cached
// (shared) Numerics may be passed freely.
type Ops struct {
	spline numeric.SplineScratch
	conv   numeric.ConvScratch
	sp     numeric.Spline

	knotXs []float64 // spline knot grid of the operand being fitted
	gridXs []float64 // output evaluation grid (must outlive knotXs uses)
	convXs []float64 // convolution knot grid
	pa, pb []float64 // work-grid resamples of the two operands
	cv     []float64 // convolution output
	fa, fb []float64 // densities on the output grid
	ca, cb []float64 // CDFs on the output grid
	cum    []float64 // cumulative-integral scratch

	free [][]float64 // recycled result densities
}

// grow returns buf resized to n, reallocating only when capacity is
// short.
func grow(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// linspaceInto fills out with the shared uniform-grid formula — one
// definition (numeric.LinspaceInto) for both the allocating Numeric
// paths and the scratch paths, so the grids can never drift apart.
func linspaceInto(out []float64, lo, hi float64) []float64 {
	return numeric.LinspaceInto(out, lo, hi)
}

// getBuf pops a recycled density buffer of capacity >= n, or allocates
// one.
func (o *Ops) getBuf(n int) []float64 {
	for i := len(o.free) - 1; i >= 0; i-- {
		if b := o.free[i]; cap(b) >= n {
			o.free[i] = o.free[len(o.free)-1]
			o.free = o.free[:len(o.free)-1]
			return b[:n]
		}
	}
	return make([]float64, n)
}

// Recycle returns rv's density buffer to the free list. The caller must
// not use rv afterwards; rv must have been produced by this Ops (or
// otherwise own its buffer exclusively).
func (o *Ops) Recycle(rv *Numeric) {
	if rv == nil || rv.pdf == nil {
		return
	}
	o.free = append(o.free, rv.pdf)
	rv.pdf = nil
}

// Copy mirrors Numeric.Clone with the copy's density drawn from the
// free list: the result is owned by the caller and may be Recycled.
// Dodin's cone duplication clones shared sub-structures through it so
// the copies stay inside the workspace's buffer discipline.
func (o *Ops) Copy(rv *Numeric) *Numeric { return o.copyOf(rv) }

// copyOf mirrors Numeric.Clone with the copy drawn from the free list.
func (o *Ops) copyOf(rv *Numeric) *Numeric {
	out := &Numeric{lo: rv.lo, hi: rv.hi, point: rv.point}
	if rv.pdf != nil {
		out.pdf = o.getBuf(len(rv.pdf))
		copy(out.pdf, rv.pdf)
	}
	return out
}

// shiftCopy mirrors Numeric.Shift (a clone translated by c).
func (o *Ops) shiftCopy(rv *Numeric, c float64) *Numeric {
	out := o.copyOf(rv)
	out.lo += c
	out.hi += c
	return out
}

// fitOperand builds the workspace spline over rv's knot grid, mirroring
// the spline every Numeric method constructs from XGrid()/pdf.
func (o *Ops) fitOperand(rv *Numeric) error {
	xs := linspaceInto(grow(&o.knotXs, len(rv.pdf)), rv.lo, rv.hi)
	if err := o.sp.Fit(xs, rv.pdf, &o.spline); err != nil {
		return err
	}
	o.sp.SetExtrapolateZero(true)
	return nil
}

// resampleStepInto mirrors Numeric.resampleStep into dst.
func (o *Ops) resampleStepInto(dst *[]float64, rv *Numeric, h float64) []float64 {
	n := int(math.Round((rv.hi-rv.lo)/h)) + 1
	if n < 2 {
		n = 2
	}
	if err := o.fitOperand(rv); err != nil {
		out := grow(dst, 2)
		out[0], out[1] = 0, 0
		return out
	}
	out := o.sp.ResampleInto(grow(dst, n), rv.lo, rv.hi)
	for i, v := range out {
		if v < 0 {
			out[i] = 0
		}
	}
	return out
}

// Add returns the distribution of a+b, bit-identical to
// a.Add(b, gridSize), with all intermediates drawn from the workspace.
func (o *Ops) Add(a, b *Numeric, gridSize int) *Numeric {
	return o.AddAcc(a, b, EvalAccuracy{GridSize: gridSize})
}

// AddAcc is Add under an explicit accuracy contract, bit-identical to
// a.AddAcc(b, acc): the result density has acc.GridSize samples and the
// intermediate convolution grid is capped at acc.WorkGrid points.
func (o *Ops) AddAcc(a, b *Numeric, acc EvalAccuracy) *Numeric {
	acc = acc.Canon()
	gridSize := acc.GridSize
	if a.point {
		return o.shiftCopy(b, a.lo)
	}
	if b.point {
		return o.shiftCopy(a, b.lo)
	}
	lo := a.lo + b.lo
	hi := a.hi + b.hi
	h := math.Min(a.Step(), b.Step())
	if w, wcap := hi-lo, float64(acc.WorkGrid); w/h > wcap {
		h = w / wcap
	}
	pa := o.resampleStepInto(&o.pa, a, h)
	pb := o.resampleStepInto(&o.pb, b, h)
	conv := numeric.ConvolveInto(grow(&o.cv, len(pa)+len(pb)-1), pa, pb, &o.conv)
	for i := range conv {
		conv[i] *= h
		if conv[i] < 0 {
			conv[i] = 0
		}
	}
	// The convolution grid spans [lo, lo+(len-1)h]; resample onto the
	// requested grid over the exact support.
	convHi := lo + float64(len(conv)-1)*h
	xs := linspaceInto(grow(&o.convXs, len(conv)), lo, convHi)
	if err := o.sp.Fit(xs, conv, &o.spline); err != nil {
		return NewPoint((lo + hi) / 2)
	}
	o.sp.SetExtrapolateZero(true)
	out := &Numeric{lo: lo, hi: hi, pdf: o.sp.ResampleInto(o.getBuf(gridSize), lo, hi)}
	out.clampNormalize()
	return out
}

// cdfAt mirrors Numeric.CDFAt with scratch for the cumulative integral.
func (o *Ops) cdfAt(rv *Numeric, x float64) float64 {
	if rv.point {
		if x < rv.lo {
			return 0
		}
		return 1
	}
	if x <= rv.lo {
		return 0
	}
	if x >= rv.hi {
		return 1
	}
	h := rv.Step()
	cum := numeric.CumTrapezoidInto(grow(&o.cum, len(rv.pdf)), rv.pdf, h)
	pos := (x - rv.lo) / h
	i := int(pos)
	if i >= len(cum)-1 {
		return numeric.Clamp(cum[len(cum)-1], 0, 1)
	}
	frac := pos - float64(i)
	v := cum[i] + frac*(cum[i+1]-cum[i])
	return numeric.Clamp(v, 0, 1)
}

// pdfOnGridInto mirrors Numeric.pdfOnGrid into dst.
func (o *Ops) pdfOnGridInto(dst *[]float64, rv *Numeric, xs []float64) []float64 {
	out := grow(dst, len(xs))
	for i := range out {
		out[i] = 0
	}
	if rv.point {
		return out
	}
	if err := o.fitOperand(rv); err != nil {
		return out
	}
	for i, x := range xs {
		if x < rv.lo || x > rv.hi {
			continue
		}
		v := o.sp.At(x)
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

// cdfOnGridInto mirrors Numeric.CDFOnGrid into dst.
func (o *Ops) cdfOnGridInto(dst *[]float64, rv *Numeric, xs []float64) []float64 {
	out := grow(dst, len(xs))
	if rv.point {
		for i, x := range xs {
			if x >= rv.lo {
				out[i] = 1
			} else {
				out[i] = 0
			}
		}
		return out
	}
	h := rv.Step()
	cum := numeric.CumTrapezoidInto(grow(&o.cum, len(rv.pdf)), rv.pdf, h)
	total := cum[len(cum)-1]
	for i, x := range xs {
		switch {
		case x <= rv.lo:
			out[i] = 0
		case x >= rv.hi:
			out[i] = 1
		default:
			pos := (x - rv.lo) / h
			j := int(pos)
			if j >= len(cum)-1 {
				out[i] = 1
				continue
			}
			frac := pos - float64(j)
			v := cum[j] + frac*(cum[j+1]-cum[j])
			if total > 0 {
				v /= total
			}
			out[i] = numeric.Clamp(v, 0, 1)
		}
	}
	return out
}

// MaxAcc is Max under an explicit accuracy contract (the maximum never
// builds an intermediate grid, so only acc.GridSize matters).
func (o *Ops) MaxAcc(x, y *Numeric, acc EvalAccuracy) *Numeric {
	return o.Max(x, y, acc.Canon().GridSize)
}

// Max returns the distribution of max(x, y), bit-identical to
// x.MaxWith(y, gridSize), with all intermediates drawn from the
// workspace.
func (o *Ops) Max(x, y *Numeric, gridSize int) *Numeric {
	if gridSize <= 0 {
		gridSize = DefaultGridSize
	}
	a, b := x, y
	// Point cases.
	if a.point && b.point {
		return NewPoint(math.Max(a.lo, b.lo))
	}
	if a.point {
		a, b = b, a
	}
	if b.point {
		c := b.lo
		switch {
		case c <= a.lo:
			return o.copyOf(a)
		case c >= a.hi:
			return NewPoint(c)
		default:
			// Truncate below c; the atom P(X<=c) is folded into the
			// first grid cell. The reference path evaluates PDFAt per
			// grid point, rebuilding the same spline each time; one
			// fit yields the same per-point values.
			atom := o.cdfAt(a, c)
			n := gridSize
			xs := linspaceInto(grow(&o.gridXs, n), c, a.hi)
			pdf := o.getBuf(n)
			fitErr := o.fitOperand(a)
			for i, xv := range xs {
				pdf[i] = 0
				if fitErr != nil || xv < a.lo || xv > a.hi {
					continue
				}
				if v := o.sp.At(xv); v > 0 {
					pdf[i] = v
				}
			}
			h := (a.hi - c) / float64(n-1)
			if h > 0 && atom > 0 {
				pdf[0] += 2 * atom / h // triangle of mass `atom` at the left edge
			}
			out := &Numeric{lo: c, hi: a.hi, pdf: pdf}
			out.clampNormalize()
			return out
		}
	}
	// Disjoint supports: one variable dominates.
	if a.hi <= b.lo {
		return o.copyOf(b)
	}
	if b.hi <= a.lo {
		return o.copyOf(a)
	}
	lo := math.Max(a.lo, b.lo)
	hi := math.Max(a.hi, b.hi)
	xs := linspaceInto(grow(&o.gridXs, gridSize), lo, hi)
	fa := o.pdfOnGridInto(&o.fa, a, xs)
	fb := o.pdfOnGridInto(&o.fb, b, xs)
	Fa := o.cdfOnGridInto(&o.ca, a, xs)
	Fb := o.cdfOnGridInto(&o.cb, b, xs)
	pdf := o.getBuf(gridSize)
	for i := range xs {
		pdf[i] = fa[i]*Fb[i] + Fa[i]*fb[i]
	}
	out := &Numeric{lo: lo, hi: hi, pdf: pdf}
	out.clampNormalize()
	return out
}
