package stochastic

import (
	"math/rand"
	"testing"
)

// randomRV builds a non-degenerate numeric variable with a random Beta
// density over a random support.
func randomRV(rng *rand.Rand, grid int) *Numeric {
	lo := rng.Float64() * 20
	width := 0.5 + rng.Float64()*30
	return FromDist(NewBetaUL(lo+1, 1+width/(lo+1)), grid)
}

// sameRV asserts exact structural and bitwise equality.
func sameRV(t *testing.T, label string, got, want *Numeric) {
	t.Helper()
	if got.point != want.point || got.lo != want.lo || got.hi != want.hi {
		t.Fatalf("%s: header differs: point=%v lo=%v hi=%v, want point=%v lo=%v hi=%v",
			label, got.point, got.lo, got.hi, want.point, want.lo, want.hi)
	}
	if len(got.pdf) != len(want.pdf) {
		t.Fatalf("%s: grid %d != %d", label, len(got.pdf), len(want.pdf))
	}
	for i := range want.pdf {
		if got.pdf[i] != want.pdf[i] {
			t.Fatalf("%s: pdf diverges at %d: %g != %g", label, i, got.pdf[i], want.pdf[i])
		}
	}
}

// Ops.Add and Ops.Max must be bit-identical to Numeric.Add and
// Numeric.MaxWith across the operand shapes the evaluators produce:
// generic pairs, wide-vs-narrow (the overlap-add/direct regime), point
// operands on either side, truncating and dominating constants, and
// disjoint supports. The workspace is reused throughout, so stale
// scratch from one case must never leak into the next.
func TestOpsBitIdenticalToNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := &Ops{}
	grids := []int{64, 128}
	for trial := 0; trial < 200; trial++ {
		grid := grids[trial%len(grids)]
		a := randomRV(rng, grid)
		b := randomRV(rng, grid)
		// Periodically widen a to push Add into the capped work-grid
		// regime (wide signal, narrow kernel).
		if trial%5 == 0 {
			a = a.Add(FromDist(Uniform{Lo: 0, Hi: 400 + rng.Float64()*400}, grid), grid)
		}
		sameRV(t, "add", ops.Add(a, b, grid), a.Add(b, grid))
		sameRV(t, "max", ops.Max(a, b, grid), a.MaxWith(b, grid))

		p := NewPoint(rng.Float64() * 50)
		sameRV(t, "add-point-l", ops.Add(p, a, grid), p.Add(a, grid))
		sameRV(t, "add-point-r", ops.Add(a, p, grid), a.Add(p, grid))
		sameRV(t, "max-point-l", ops.Max(p, a, grid), p.MaxWith(a, grid))
		sameRV(t, "max-point-r", ops.Max(a, p, grid), a.MaxWith(p, grid))

		// Truncating constant strictly inside the support.
		c := NewPoint(a.Lo() + (a.Hi()-a.Lo())*(0.1+0.8*rng.Float64()))
		sameRV(t, "max-trunc", ops.Max(a, c, grid), a.MaxWith(c, grid))
		// Dominating and dominated constants.
		sameRV(t, "max-dom", ops.Max(a, NewPoint(a.Hi()+1), grid), a.MaxWith(NewPoint(a.Hi()+1), grid))
		sameRV(t, "max-sub", ops.Max(a, NewPoint(a.Lo()-1), grid), a.MaxWith(NewPoint(a.Lo()-1), grid))

		// Disjoint supports.
		far := FromDist(NewBetaUL(a.Hi()+10, 1.2), grid)
		sameRV(t, "max-disjoint", ops.Max(a, far, grid), a.MaxWith(far, grid))
		sameRV(t, "max-disjoint-r", ops.Max(far, a, grid), far.MaxWith(a, grid))

		// Two points.
		q := NewPoint(rng.Float64() * 50)
		sameRV(t, "max-pp", ops.Max(p, q, grid), p.MaxWith(q, grid))
		sameRV(t, "add-pp", ops.Add(p, q, grid), p.Add(q, grid))
	}
}

// Recycled buffers must never alias a live result: interleave
// evaluations with recycling and re-check values computed earlier.
func TestOpsRecycleDoesNotCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ops := &Ops{}
	a := randomRV(rng, 64)
	b := randomRV(rng, 64)
	keep := ops.Add(a, b, 64)
	want := append([]float64(nil), keep.pdf...)

	// Produce and recycle a stream of temporaries.
	for i := 0; i < 50; i++ {
		tmp := ops.Add(randomRV(rng, 64), randomRV(rng, 64), 64)
		tmp2 := ops.Max(tmp, randomRV(rng, 64), 64)
		ops.Recycle(tmp)
		ops.Recycle(tmp2)
	}
	for i, v := range want {
		if keep.pdf[i] != v {
			t.Fatalf("live result corrupted at %d after recycling", i)
		}
	}
	if got := ops.Add(a, b, 64); got.Mean() != keep.Mean() {
		t.Fatal("Ops.Add not deterministic after heavy recycling")
	}
}

// Steady-state Ops operations must not allocate once the scratch and
// free list are warm.
func TestOpsSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ops := &Ops{}
	a := randomRV(rng, 64)
	b := randomRV(rng, 64)
	// Warm up: seed the free list with enough result buffers.
	for i := 0; i < 4; i++ {
		ops.Recycle(ops.Add(a, b, 64))
		ops.Recycle(ops.Max(a, b, 64))
	}
	allocs := testing.AllocsPerRun(100, func() {
		r := ops.Add(a, b, 64)
		m := ops.Max(r, b, 64)
		ops.Recycle(r)
		ops.Recycle(m)
	})
	// Two Numeric headers per iteration escape to the heap; the grids
	// themselves must all come from the free list.
	if allocs > 2 {
		t.Errorf("steady-state Ops allocates %g objects per Add+Max, want <= 2 headers", allocs)
	}
}
