package stochastic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Add is commutative in distribution (same moments and CDF).
func TestAddCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := FromDist(NewBetaUL(1+9*rng.Float64(), 1.05+rng.Float64()), 64)
		b := FromDist(NewBetaUL(1+9*rng.Float64(), 1.05+rng.Float64()), 64)
		ab := a.Add(b, 64)
		ba := b.Add(a, 64)
		if !almostEqual(ab.Mean(), ba.Mean(), 1e-6*ab.Mean()) {
			return false
		}
		if !almostEqual(ab.StdDev(), ba.StdDev(), 1e-4*ab.StdDev()+1e-9) {
			return false
		}
		for _, q := range []float64{0.25, 0.5, 0.75} {
			if !almostEqual(ab.Quantile(q), ba.Quantile(q), 1e-3*ab.Mean()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: MaxWith is commutative and dominates both operands in mean.
func TestMaxCommutativeDominantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := FromDist(NewBetaUL(1+9*rng.Float64(), 1.05+rng.Float64()), 64)
		b := FromDist(NewBetaUL(1+9*rng.Float64(), 1.05+rng.Float64()), 64)
		ab := a.MaxWith(b, 64)
		ba := b.MaxWith(a, 64)
		if !almostEqual(ab.Mean(), ba.Mean(), 1e-4*ab.Mean()) {
			return false
		}
		// E[max(X,Y)] >= max(E[X], E[Y]) (within grid tolerance).
		tol := 0.01 * ab.Mean()
		return ab.Mean() >= a.Mean()-tol && ab.Mean() >= b.Mean()-tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile inverts CDFAt on the interior of the support.
func TestQuantileCDFRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rv := FromDist(NewBetaUL(5+5*rng.Float64(), 1.2+rng.Float64()), 128)
		for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			x := rv.Quantile(p)
			if !almostEqual(rv.CDFAt(x), p, 0.02) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestShiftedDistribution(t *testing.T) {
	base := Uniform{Lo: 0, Hi: 2}
	sh := Shifted{D: base, Off: 10}
	if sh.Mean() != 11 {
		t.Errorf("mean = %g, want 11", sh.Mean())
	}
	if sh.Variance() != base.Variance() {
		t.Error("translation must not change variance")
	}
	lo, hi := sh.Support()
	if lo != 10 || hi != 12 {
		t.Errorf("support [%g,%g], want [10,12]", lo, hi)
	}
	if sh.PDF(11) != base.PDF(1) || sh.CDF(11) != base.CDF(1) {
		t.Error("translated PDF/CDF wrong")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if x := sh.Sample(rng); x < 10 || x > 12 {
			t.Fatalf("sample %g outside support", x)
		}
	}
	if err := Validate(sh); err != nil {
		t.Error(err)
	}
}

// Failure injection: a density of all-zeros collapses to a point
// rather than dividing by zero.
func TestZeroMassCollapse(t *testing.T) {
	rv, err := FromPDF(0, 1, []float64{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !rv.IsPoint() {
		t.Error("zero-mass density should collapse to a point")
	}
	if math.IsNaN(rv.Mean()) {
		t.Error("NaN mean after collapse")
	}
}

// Failure injection: NaN densities are sanitized.
func TestNaNDensitySanitized(t *testing.T) {
	rv, err := FromPDF(0, 1, []float64{math.NaN(), 1, 1, math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rv.PDFGrid() {
		if math.IsNaN(v) {
			t.Fatal("NaN survived sanitization")
		}
	}
	if math.IsNaN(rv.Mean()) || math.IsNaN(rv.Variance()) {
		t.Error("NaN moments")
	}
}
