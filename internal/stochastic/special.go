package stochastic

import (
	"math/rand"

	"repro/internal/numeric"
)

// Special is the deliberately non-normal distribution of Figure 7: a
// concatenation of Beta lobes laid side by side over [0, Width],
// producing an oscillating, right-heavy density that is far from
// Gaussian. Figure 8 convolves it with itself n times to show how fast
// the central limit theorem washes the oscillations out (the paper finds
// ~5 sums make it almost normal, 10 indistinguishable).
type Special struct {
	Width   float64   // total support [0, Width]
	Weights []float64 // mass of each lobe (normalized internally)
	lobes   []Beta
}

// NewSpecial builds the default Figure-7 distribution: three Beta(2,5)
// lobes of decreasing weight over [0, 40].
func NewSpecial() *Special {
	return NewSpecialWith(40, []float64{0.5, 0.3, 0.2})
}

// NewSpecialWith builds a concatenated-Beta distribution with the given
// total width and per-lobe weights (each lobe is Beta(2,5) over an equal
// share of the width).
func NewSpecialWith(width float64, weights []float64) *Special {
	k := len(weights)
	if k == 0 {
		weights = []float64{1}
		k = 1
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	norm := make([]float64, k)
	for i, w := range weights {
		norm[i] = w / total
	}
	lobeW := width / float64(k)
	lobes := make([]Beta, k)
	for i := range lobes {
		lobes[i] = Beta{Alpha: 2, Beta: 5, Lo: float64(i) * lobeW, Hi: float64(i+1) * lobeW}
	}
	return &Special{Width: width, Weights: norm, lobes: lobes}
}

// Mean returns the mixture mean.
func (s *Special) Mean() float64 {
	var mu float64
	for i, l := range s.lobes {
		mu += s.Weights[i] * l.Mean()
	}
	return mu
}

// Variance returns the mixture variance.
func (s *Special) Variance() float64 {
	mu := s.Mean()
	var v float64
	for i, l := range s.lobes {
		d := l.Mean() - mu
		v += s.Weights[i] * (l.Variance() + d*d)
	}
	return v
}

// PDF returns the mixture density.
func (s *Special) PDF(x float64) float64 {
	var f float64
	for i, l := range s.lobes {
		f += s.Weights[i] * l.PDF(x)
	}
	return f
}

// CDF returns the mixture CDF.
func (s *Special) CDF(x float64) float64 {
	var f float64
	for i, l := range s.lobes {
		f += s.Weights[i] * l.CDF(x)
	}
	return numeric.Clamp(f, 0, 1)
}

// Support returns [0, Width].
func (s *Special) Support() (float64, float64) { return 0, s.Width }

// Sample draws from the mixture.
func (s *Special) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for i, w := range s.Weights {
		if u < w || i == len(s.Weights)-1 {
			return s.lobes[i].Sample(rng)
		}
		u -= w
	}
	return s.lobes[len(s.lobes)-1].Sample(rng)
}

// MatchedNormal returns the normal distribution with the same mean and
// standard deviation, the comparison target in Figures 7 and 8.
func (s *Special) MatchedNormal() Normal {
	return Normal{Mu: s.Mean(), Sigma: StdDev(s)}
}

var _ Dist = (*Special)(nil)
