package stochastic

import (
	"math"
	"math/rand"
	"testing"
)

func TestSpecialIsProperDistribution(t *testing.T) {
	s := NewSpecial()
	lo, hi := s.Support()
	if lo != 0 || hi != 40 {
		t.Errorf("support [%g,%g], want [0,40]", lo, hi)
	}
	// PDF integrates to ~1.
	n := 8001
	h := hi / float64(n-1)
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.PDF(float64(i) * h)
	}
	if !almostEqual(sum*h, 1, 1e-3) {
		t.Errorf("special PDF mass = %g, want 1", sum*h)
	}
	// CDF endpoints.
	if s.CDF(-1) != 0 || s.CDF(41) != 1 {
		t.Error("special CDF endpoints wrong")
	}
	checkMoments(t, "special", s, 200000, 0.1, 2.0)
}

func TestSpecialIsMultimodal(t *testing.T) {
	s := NewSpecial()
	// Each lobe should produce a local max near its Beta(2,5) mode.
	lobeW := 40.0 / 3
	for i := 0; i < 3; i++ {
		mode := float64(i)*lobeW + lobeW*0.2
		if s.PDF(mode) <= s.PDF(float64(i)*lobeW+lobeW*0.95) {
			t.Errorf("lobe %d: density at mode not above right edge", i)
		}
	}
	// The lobe boundaries are density valleys (Beta(2,5) vanishes there).
	if s.PDF(lobeW) > 0.2*s.PDF(lobeW*0.2) {
		t.Error("no valley between lobes; distribution not oscillating")
	}
}

func TestSpecialDiffersFromMatchedNormal(t *testing.T) {
	// Fig. 7: the special and the matched normal share mean/σ but have
	// very different densities.
	s := NewSpecial()
	n := s.MatchedNormal()
	if !almostEqual(n.Mu, s.Mean(), 1e-12) || !almostEqual(n.Sigma, StdDev(s), 1e-12) {
		t.Fatal("matched normal does not match moments")
	}
	var maxDiff float64
	for x := 0.0; x <= 40; x += 0.1 {
		if d := math.Abs(s.PDF(x) - n.PDF(x)); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 0.01 {
		t.Errorf("special too close to normal: max PDF diff %g", maxDiff)
	}
}

func TestSpecialSamplingRespectsWeights(t *testing.T) {
	s := NewSpecialWith(30, []float64{1, 1, 2})
	rng := rand.New(rand.NewSource(4))
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		x := s.Sample(rng)
		b := int(x / 10)
		if b > 2 {
			b = 2
		}
		counts[b]++
	}
	// Expected fractions 0.25, 0.25, 0.5.
	for i, want := range []float64{0.25, 0.25, 0.5} {
		got := float64(counts[i]) / float64(n)
		if !almostEqual(got, want, 0.01) {
			t.Errorf("lobe %d fraction = %g, want %g", i, got, want)
		}
	}
}

func TestSpecialDegenerateWeights(t *testing.T) {
	s := NewSpecialWith(10, nil)
	if s.PDF(2) <= 0 {
		t.Error("defaulted special should have positive density")
	}
}
