package stochastic

import "math"

// Special functions needed for the Gamma and Beta CDFs: the regularized
// lower incomplete gamma P(a,x) and the regularized incomplete beta
// I_x(a,b). Classic series/continued-fraction evaluations (Numerical
// Recipes style), accurate to ~1e-12 over the ranges used here.

const (
	sfMaxIter = 500
	sfEps     = 3e-14
	sfFPMin   = 1e-300
)

// RegIncGammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a,x)/Γ(a) for a > 0, x >= 0.
func RegIncGammaP(a, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case math.IsInf(x, 1):
		return 1
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

// gammaSeries evaluates P(a,x) by its power series (x < a+1).
func gammaSeries(a, x float64) float64 {
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < sfMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*sfEps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedFraction evaluates Q(a,x) = 1-P(a,x) by its continued
// fraction (x >= a+1), using the modified Lentz algorithm.
func gammaContinuedFraction(a, x float64) float64 {
	b := x + 1 - a
	c := 1 / sfFPMin
	d := 1 / b
	h := d
	for i := 1; i <= sfMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < sfFPMin {
			d = sfFPMin
		}
		c = b + an/c
		if math.Abs(c) < sfFPMin {
			c = sfFPMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < sfEps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// RegIncBeta returns the regularized incomplete beta function
// I_x(a, b) for a, b > 0 and x in [0,1].
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaContinuedFraction(a, b, x) / a
	}
	return 1 - front*betaContinuedFraction(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaContinuedFraction evaluates the continued fraction for the
// incomplete beta function by the modified Lentz method.
func betaContinuedFraction(a, b, x float64) float64 {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < sfFPMin {
		d = sfFPMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= sfMaxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < sfFPMin {
			d = sfFPMin
		}
		c = 1 + aa/c
		if math.Abs(c) < sfFPMin {
			c = sfFPMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < sfFPMin {
			d = sfFPMin
		}
		c = 1 + aa/c
		if math.Abs(c) < sfFPMin {
			c = sfFPMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < sfEps {
			break
		}
	}
	return h
}
