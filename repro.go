// Package repro is the public facade of the reproduction of
// Canon & Jeannot, "A Comparison of Robustness Metrics for Scheduling
// DAGs on Heterogeneous Systems" (HeteroPar'07).
//
// It re-exports the core types and wires the internal packages into a
// small high-level API: build a scenario (task graph + heterogeneous
// platform + uncertainty level), produce schedules (random or with the
// HEFT / BIL / Hyb.BMCT heuristics), evaluate the schedule's makespan
// distribution (analytically or by Monte Carlo), and compute the
// paper's eight robustness metrics.
//
//	scen, _ := repro.NewCholeskyScenario(3, 3, 1.01, 42)
//	res, _ := repro.HEFT(scen)
//	m, _ := repro.ComputeMetrics(scen, res.Schedule)
//	fmt.Println(m)
//
// The full experiment drivers (Figs. 1–9 of the paper) are exposed via
// the experiment sub-package and the cmd/experiments tool.
package repro

import (
	"math/rand"

	"repro/internal/dag"
	"repro/internal/experiment"
	"repro/internal/graphgen"
	"repro/internal/heuristics"
	"repro/internal/makespan"
	"repro/internal/platform"
	"repro/internal/robustness"
	"repro/internal/schedule"
	"repro/internal/stochastic"
)

// Re-exported core types.
type (
	// Graph is a task DAG with communication volumes on its edges.
	Graph = dag.Graph
	// Task identifies a node of a Graph.
	Task = dag.Task
	// Platform is the heterogeneous target (ETC + network matrices).
	Platform = platform.Platform
	// Scenario bundles a graph, a platform and an uncertainty level.
	Scenario = platform.Scenario
	// Schedule is an eager schedule (assignment + per-processor order).
	Schedule = schedule.Schedule
	// Simulator draws realizations of a schedule.
	Simulator = schedule.Simulator
	// Metrics is the paper's eight-metric robustness vector.
	Metrics = robustness.Metrics
	// MetricParams are the δ/γ hyper-parameters of the probabilistic
	// metrics.
	MetricParams = robustness.Params
	// HeuristicResult is a heuristic's schedule plus its makespan
	// estimate.
	HeuristicResult = heuristics.Result
	// MakespanRV is a numerically represented makespan distribution.
	MakespanRV = stochastic.Numeric
	// EmpiricalRV is a Monte-Carlo sampled makespan distribution.
	EmpiricalRV = stochastic.Empirical
	// RealizationKernel is the compiled batch Monte-Carlo engine
	// (built with Simulator.Compile).
	RealizationKernel = schedule.RealizationKernel
	// MCOptions tunes the Monte-Carlo kernel (sampler mode, block
	// size, workers).
	MCOptions = makespan.MCOptions
	// MCStats is the kernel's streaming moment/quantile accumulator.
	MCStats = schedule.MCStats
	// EvalCache is the per-scenario compiled evaluation state: cached
	// discretizations and graph tables shared by every schedule of a
	// case (build one per scenario when evaluating many schedules).
	EvalCache = makespan.EvalCache
	// EvalModel is a per-(scenario, schedule) compiled evaluation
	// context: classical makespan density, Spelde moments, slack
	// vector and the full metric vector, bit-identical to the
	// uncompiled reference evaluators.
	EvalModel = makespan.EvalModel
	// EvalAccuracy is the discretization contract of the numeric
	// evaluation stack: density grid size plus the resampling policy
	// (work-grid cap) of the convolution operators. The zero value is
	// the paper's reference contract.
	EvalAccuracy = stochastic.EvalAccuracy
)

// Named evaluation-accuracy presets. AccuracyReference reproduces the
// paper's published contract bit-for-bit; AccuracyFast and
// AccuracyCoarse trade measured per-metric error (see the README's
// "Evaluation accuracy" section) for speed.
var (
	AccuracyReference = stochastic.AccuracyReference
	AccuracyFast      = stochastic.AccuracyFast
	AccuracyCoarse    = stochastic.AccuracyCoarse
)

// ParseEvalAccuracy parses an accuracy spelling: a preset name
// ("reference", "fast", "coarse") or explicit "grid=G[,work=W]" fields.
// Malformed spellings are errors, never a silent fallback.
func ParseEvalAccuracy(s string) (EvalAccuracy, error) {
	return stochastic.ParseEvalAccuracy(s)
}

// Sampler modes re-exported from the stochastic package.
const (
	// SamplerExact draws through each distribution's own sampler:
	// bit-identical to the per-sample reference engine.
	SamplerExact = stochastic.SamplerExact
	// SamplerTable swaps Beta sampling for precomputed inverse-CDF
	// tables — several times faster, identical within
	// 1/stochastic.BetaTableSize in Kolmogorov distance.
	SamplerTable = stochastic.SamplerTable
)

// Evaluation method names re-exported from the makespan package.
const (
	MethodClassic = makespan.Classic
	MethodDodin   = makespan.Dodin
	MethodSpelde  = makespan.Spelde
)

// Families returns the names of every registered workload family —
// the paper's three application structures plus the elementary join
// and the extended generator set (trees, series-parallel, FFT,
// Strassen, layered STG). Any returned name is valid for NewScenario.
func Families() []string { return experiment.FamilyNames() }

// NewScenario builds a scenario from any registered workload family:
// a graph of ~n tasks (families round the request onto their size
// grid and return an error — never a silently clamped graph — when no
// achievable size is within a factor of two) on m processors with
// uncertainty level ul.
func NewScenario(family string, n, m int, ul float64, seed int64) (*Scenario, error) {
	return experiment.CaseSpec{
		Name: family, Family: family, N: n, M: m, UL: ul, Seed: seed,
	}.BuildScenario()
}

// NewRandomScenario generates the paper's layered random DAG with n
// tasks (CCR = 0.1, µtask = 20, Vtask = Vmach = 0.5) on m processors
// with uncertainty level ul.
func NewRandomScenario(n, m int, ul float64, seed int64) (*Scenario, error) {
	return NewScenario(experiment.RandomFamily, n, m, ul, seed)
}

// NewCholeskyScenario builds the tiled-Cholesky DAG for a tiles×tiles
// matrix on m processors (tiles = 3 gives the paper's 10-task graph).
func NewCholeskyScenario(tiles, m int, ul float64, seed int64) (*Scenario, error) {
	return NewScenario(experiment.CholeskyFamily, graphgen.CholeskyTaskCount(tiles), m, ul, seed)
}

// NewGaussElimScenario builds the Gaussian-elimination DAG for a
// size×size matrix on m processors (size = 14 gives the paper's
// ~103-task graph).
func NewGaussElimScenario(size, m int, ul float64, seed int64) (*Scenario, error) {
	return NewScenario(experiment.GaussElimFamily, graphgen.GaussElimTaskCount(size), m, ul, seed)
}

// RandomSchedule draws one random eager schedule by the paper's
// three-phase process.
func RandomSchedule(scen *Scenario, seed int64) *Schedule {
	return heuristics.RandomSchedule(scen, rand.New(rand.NewSource(seed)))
}

// HEFT schedules the scenario with Heterogeneous Earliest Finish Time.
func HEFT(scen *Scenario) (HeuristicResult, error) { return heuristics.HEFT(scen) }

// BIL schedules the scenario with the Best Imaginary Level heuristic.
func BIL(scen *Scenario) (HeuristicResult, error) { return heuristics.BIL(scen) }

// HBMCT schedules the scenario with the hybrid BMCT heuristic.
func HBMCT(scen *Scenario) (HeuristicResult, error) { return heuristics.HBMCT(scen) }

// CPOP schedules the scenario with Critical-Path-on-a-Processor
// (an additional makespan-centric baseline cited by the paper).
func CPOP(scen *Scenario) (HeuristicResult, error) { return heuristics.CPOP(scen) }

// SDHEFT schedules the scenario with the σ-aware list heuristic the
// paper proposes as future work: every cost is mean + lambda·σ.
func SDHEFT(scen *Scenario, lambda float64) (HeuristicResult, error) {
	return heuristics.SDHEFT(scen, lambda)
}

// MakespanDistribution evaluates the makespan distribution of s with
// the given method on the paper's 64-point grid.
func MakespanDistribution(scen *Scenario, s *Schedule, method makespan.Method) (*MakespanRV, error) {
	return makespan.Evaluate(scen, s, method, 0)
}

// MonteCarlo draws count makespan realizations of s through the
// compiled kernel in exact mode (bit-identical to the per-sample
// reference engine).
func MonteCarlo(scen *Scenario, s *Schedule, count int, seed int64) (*EmpiricalRV, error) {
	return makespan.MonteCarlo(scen, s, count, seed)
}

// MonteCarloWith is MonteCarlo with explicit kernel options (e.g.
// MCOptions{Sampler: SamplerTable} for bulk runs).
func MonteCarloWith(scen *Scenario, s *Schedule, count int, seed int64, opt MCOptions) (*EmpiricalRV, error) {
	return makespan.MonteCarloWith(scen, s, count, seed, opt)
}

// MonteCarloStats streams count realizations into the kernel's
// moment/quantile accumulator without materializing the sample slice.
func MonteCarloStats(scen *Scenario, s *Schedule, count int, seed int64, opt MCOptions) (*MCStats, error) {
	return makespan.MonteCarloStats(scen, s, count, seed, opt)
}

// NewEvalCache builds the compiled evaluation state for a scenario.
// gridSize <= 0 selects the paper's 64-point densities. Evaluating many
// schedules of one scenario through a shared cache discretizes each
// distinct duration/communication distribution once instead of once
// per schedule.
func NewEvalCache(scen *Scenario, gridSize int) *EvalCache {
	return makespan.NewEvalCache(scen, gridSize)
}

// NewEvalCacheAccuracy is NewEvalCache with a full accuracy contract:
// the zero value (or AccuracyReference) reproduces the paper's
// evaluation bit-for-bit, AccuracyFast and AccuracyCoarse trade
// measured error for speed.
func NewEvalCacheAccuracy(scen *Scenario, acc EvalAccuracy) *EvalCache {
	return makespan.NewEvalCacheAccuracy(scen, acc)
}

// ComputeMetrics evaluates the makespan distribution with the
// classical method and returns the paper's eight robustness metrics
// with the default δ = 0.1, γ = 1.0003. It runs through the compiled
// evaluation model; batch callers should hold a NewEvalCache and call
// Model(s).Metrics themselves.
func ComputeMetrics(scen *Scenario, s *Schedule) (Metrics, error) {
	m, err := makespan.NewEvalCache(scen, 0).Model(s)
	if err != nil {
		return Metrics{}, err
	}
	return m.Metrics(robustness.DefaultParams()), nil
}

// ComputeMetricsWith is ComputeMetrics with explicit parameters and a
// pre-computed distribution.
func ComputeMetricsWith(scen *Scenario, s *Schedule, rv *MakespanRV, p MetricParams) (Metrics, error) {
	return robustness.FromDistribution(scen, s, rv, p)
}

// NewSimulator builds a realization simulator for the schedule.
func NewSimulator(scen *Scenario, s *Schedule) (*Simulator, error) {
	return schedule.NewSimulator(scen, s)
}
