package repro

import (
	"math"
	"testing"
)

func TestFacadeScenarios(t *testing.T) {
	cases := []struct {
		name string
		fn   func() (*Scenario, error)
		n    int
	}{
		{"random", func() (*Scenario, error) { return NewRandomScenario(20, 4, 1.1, 1) }, 20},
		{"cholesky", func() (*Scenario, error) { return NewCholeskyScenario(3, 3, 1.01, 2) }, 10},
		{"gausselim", func() (*Scenario, error) { return NewGaussElimScenario(5, 3, 1.1, 3) }, 14},
	}
	for _, c := range cases {
		scen, err := c.fn()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if scen.G.N() != c.n {
			t.Errorf("%s: %d tasks, want %d", c.name, scen.G.N(), c.n)
		}
	}
}

func TestFacadeWorkloadRegistry(t *testing.T) {
	fams := Families()
	if len(fams) < 9 {
		t.Fatalf("only %d workload families: %v", len(fams), fams)
	}
	for _, name := range []string{"random", "cholesky", "gausselim", "join",
		"intree", "outtree", "seriesparallel", "fft", "strassen", "stg"} {
		found := false
		for _, f := range fams {
			if f == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("family %q missing from Families(): %v", name, fams)
			continue
		}
		n := 12
		if name == "strassen" {
			n = 25
		}
		scen, err := NewScenario(name, n, 3, 1.1, 7)
		if err != nil {
			t.Fatalf("NewScenario(%q, %d): %v", name, n, err)
		}
		if scen.G.N() == 0 || !scen.G.IsAcyclic() {
			t.Errorf("NewScenario(%q): degenerate graph", name)
		}
	}
	if _, err := NewScenario("no-such-family", 10, 3, 1.1, 1); err == nil {
		t.Error("unknown family accepted")
	}
	// Unachievable sizes are errors, not clamped graphs.
	if _, err := NewScenario("strassen", 100, 3, 1.1, 1); err == nil {
		t.Error("unachievable strassen size accepted")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	scen, err := NewCholeskyScenario(3, 3, 1.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []struct {
		name string
		fn   func(*Scenario) (HeuristicResult, error)
	}{{"HEFT", HEFT}, {"BIL", BIL}, {"HBMCT", HBMCT}} {
		res, err := h.fn(scen)
		if err != nil {
			t.Fatalf("%s: %v", h.name, err)
		}
		if err := res.Schedule.Validate(scen.G); err != nil {
			t.Fatalf("%s: invalid schedule: %v", h.name, err)
		}
		m, err := ComputeMetrics(scen, res.Schedule)
		if err != nil {
			t.Fatalf("%s: %v", h.name, err)
		}
		if m.Makespan <= 0 || m.StdDev <= 0 {
			t.Errorf("%s: degenerate metrics %+v", h.name, m)
		}
		// The analytic mean matches Monte Carlo within 1%.
		emp, err := MonteCarlo(scen, res.Schedule, 20000, 5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.Makespan-emp.Mean()) > 0.01*emp.Mean() {
			t.Errorf("%s: analytic mean %g vs MC %g", h.name, m.Makespan, emp.Mean())
		}
	}
}

func TestFacadeMethodsAgree(t *testing.T) {
	scen, err := NewRandomScenario(15, 3, 1.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := RandomSchedule(scen, 11)
	rvClassic, err := MakespanDistribution(scen, s, MethodClassic)
	if err != nil {
		t.Fatal(err)
	}
	rvDodin, err := MakespanDistribution(scen, s, MethodDodin)
	if err != nil {
		t.Fatal(err)
	}
	rvSpelde, err := MakespanDistribution(scen, s, MethodSpelde)
	if err != nil {
		t.Fatal(err)
	}
	means := []float64{rvClassic.Mean(), rvDodin.Mean(), rvSpelde.Mean()}
	for i := 1; i < len(means); i++ {
		if math.Abs(means[i]-means[0]) > 0.05*means[0] {
			t.Errorf("method %d mean %g deviates from classic %g", i, means[i], means[0])
		}
	}
	sim, err := NewSimulator(scen, s)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.MinTiming().Makespan; got > means[0] {
		t.Errorf("min-duration makespan %g exceeds expected makespan %g", got, means[0])
	}
}
